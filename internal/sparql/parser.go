package sparql

import (
	"fmt"
	"strings"

	"nl2cm/internal/rdf"
)

// ParseOptions configures identifier resolution during parsing.
type ParseOptions struct {
	// Base is the namespace prefix prepended to bare identifiers to form
	// IRIs (e.g. "http://nl2cm.org/onto/"). When empty, bare identifiers
	// become IRIs with the identifier as the full value, which keeps
	// queries readable in tests and matches the OASSIS-QL surface syntax.
	Base string
	// Resolve, when non-nil, overrides Base for bare identifiers.
	Resolve func(ident string) rdf.Term
}

func (o *ParseOptions) ident(name string) rdf.Term {
	if o != nil && o.Resolve != nil {
		return o.Resolve(name)
	}
	base := ""
	if o != nil {
		base = o.Base
	}
	return rdf.NewIRI(base + name)
}

// Parse parses a SELECT query.
func Parse(input string) (*Query, error) { return ParseWith(input, nil) }

// ParseWith parses a SELECT query with explicit options.
func ParseWith(input string, opts *ParseOptions) (*Query, error) {
	lx, err := NewLexer(input)
	if err != nil {
		return nil, err
	}
	p := &parser{lx: lx, opts: opts}
	q, err := p.query()
	if err != nil {
		return nil, fmt.Errorf("sparql: %w", err)
	}
	if t := lx.Peek(); t.Kind != TokEOF {
		return nil, fmt.Errorf("sparql: %v", lx.Errf("trailing input %q", t.Text))
	}
	return q, nil
}

type parser struct {
	lx   *Lexer
	opts *ParseOptions
	anon int
	// inHaving is set while parsing a HAVING expression, the only
	// expression position where aggregate calls are legal.
	inHaving bool
	// optionals and unions collect OPTIONAL groups and UNION blocks
	// parsed inside the most recent top-level group pattern. Only the
	// SELECT grammar consumes them; embedded-pattern hosts (OASSIS-QL,
	// IX patterns) reject them.
	optionals [][]rdf.Triple
	unions    [][][]rdf.Triple
}

func (p *parser) keyword(words ...string) bool {
	t := p.lx.Peek()
	if t.Kind != TokIdent {
		return false
	}
	for _, w := range words {
		if strings.EqualFold(t.Text, w) {
			p.lx.Next()
			return true
		}
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	t := p.lx.Peek()
	if t.Kind == TokPunct && t.Text == s {
		p.lx.Next()
		return nil
	}
	return p.lx.Errf("expected %q, found %q", s, t.Text)
}

func (p *parser) query() (*Query, error) {
	q := &Query{Limit: -1}
	if !p.keyword("SELECT") {
		return nil, p.lx.Errf("expected SELECT")
	}
	if p.keyword("DISTINCT") {
		q.Distinct = true
	}
	// projection: * or a list of variables and aggregate expressions
	t := p.lx.Peek()
	if t.Kind == TokOp && t.Text == "*" {
		p.lx.Next()
	} else {
		for {
			t := p.lx.Peek()
			if t.Kind == TokVar {
				p.lx.Next()
				q.Vars = append(q.Vars, t.Text)
				continue
			}
			if t.Kind == TokIdent && AggFuncs[strings.ToUpper(t.Text)] {
				if n := p.lx.PeekAhead(1); n.Kind == TokPunct && n.Text == "(" {
					if err := p.selectAggregate(q); err != nil {
						return nil, err
					}
					continue
				}
			}
			break
		}
		if len(q.Vars) == 0 {
			return nil, p.lx.Errf("expected * or variables after SELECT")
		}
	}
	if !p.keyword("WHERE") {
		return nil, p.lx.Errf("expected WHERE")
	}
	where, filters, err := p.GroupPattern()
	if err != nil {
		return nil, err
	}
	q.Where, q.Filters = where, filters
	q.Optionals, q.Unions = p.optionals, p.unions
	// modifiers
	for {
		switch {
		case p.keyword("GROUP"):
			if !p.keyword("BY") {
				return nil, p.lx.Errf("expected BY after GROUP")
			}
			defined := q.patternVars()
			for p.lx.Peek().Kind == TokVar {
				v := p.lx.Next()
				if !defined[v.Text] {
					return nil, p.lx.Errf("GROUP BY of undefined variable $%s", v.Text)
				}
				q.GroupBy = append(q.GroupBy, v.Text)
			}
			if len(q.GroupBy) == 0 {
				return nil, p.lx.Errf("expected variables after GROUP BY")
			}
		case p.keyword("HAVING"):
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			p.inHaving = true
			e, err := p.expr()
			p.inHaving = false
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			q.Having = append(q.Having, e)
		case p.keyword("ORDER"):
			if !p.keyword("BY") {
				return nil, p.lx.Errf("expected BY after ORDER")
			}
			keys, err := p.orderKeys()
			if err != nil {
				return nil, err
			}
			q.OrderBy = append(q.OrderBy, keys...)
		case p.keyword("LIMIT"):
			n := p.lx.Next()
			if n.Kind != TokNumber {
				return nil, p.lx.Errf("expected number after LIMIT")
			}
			q.Limit = int(n.Num)
		case p.keyword("OFFSET"):
			n := p.lx.Next()
			if n.Kind != TokNumber {
				return nil, p.lx.Errf("expected number after OFFSET")
			}
			q.Offset = int(n.Num)
		default:
			if err := p.finishAggregates(q); err != nil {
				return nil, err
			}
			return q, nil
		}
	}
}

// selectAggregate parses one aggregate projection: FUNC($v) or COUNT(*),
// optionally followed by AS $alias. The alias (explicit or derived from
// the function and argument) joins the projected variable list.
func (p *parser) selectAggregate(q *Query) error {
	fn := strings.ToUpper(p.lx.Next().Text)
	p.lx.Next() // "(" (checked by the caller)
	varName, err := p.aggArg(fn)
	if err != nil {
		return err
	}
	alias := ""
	if p.keyword("AS") {
		v := p.lx.Next()
		if v.Kind != TokVar {
			return p.lx.Errf("expected variable after AS")
		}
		alias = v.Text
	} else {
		alias = freshAlias(fn, varName, func(name string) bool {
			for _, a := range q.Aggs {
				if a.As == name {
					return true
				}
			}
			for _, v := range q.Vars {
				if v == name {
					return true
				}
			}
			return false
		})
	}
	q.Aggs = append(q.Aggs, Aggregate{Func: fn, Var: varName, As: alias})
	q.Vars = append(q.Vars, alias)
	return nil
}

// aggArg parses the argument of an aggregate call after its opening
// parenthesis: a variable, or * (COUNT only), consuming the closing ")".
func (p *parser) aggArg(fn string) (string, error) {
	varName := ""
	switch a := p.lx.Peek(); {
	case a.Kind == TokOp && a.Text == "*":
		p.lx.Next()
		if fn != "COUNT" {
			return "", p.lx.Errf("%s(*) is not valid; only COUNT takes *", fn)
		}
	case a.Kind == TokVar:
		p.lx.Next()
		varName = a.Text
	default:
		return "", p.lx.Errf("expected variable or * in %s()", fn)
	}
	if err := p.expectPunct(")"); err != nil {
		return "", err
	}
	return varName, nil
}

// finishAggregates runs after all modifiers: aggregate calls inside
// HAVING are hoisted into hidden Aggs entries, and the grouping
// invariants Validate enforces are checked here so that a successfully
// parsed query always validates (the fuzz target relies on this).
func (p *parser) finishAggregates(q *Query) error {
	if len(q.Having) > 0 {
		having, aggs, err := resolveHavingAggs(q.Having, q.Aggs, q.patternVars())
		if err != nil {
			return p.lx.Errf("%v", err)
		}
		q.Having, q.Aggs = having, aggs
	}
	if !q.Aggregated() {
		if len(q.Having) > 0 {
			return p.lx.Errf("HAVING requires GROUP BY or an aggregate")
		}
		return nil
	}
	if err := q.validateAggregation([][]rdf.Triple{q.patternVarTriples()}); err != nil {
		return p.lx.Errf("%v", strings.TrimPrefix(err.Error(), "sparql: "))
	}
	return nil
}

// patternVars collects every variable bound by a triple pattern anywhere
// in the query (WHERE, UNION alternatives, OPTIONAL groups).
func (q *Query) patternVars() map[string]bool {
	out := map[string]bool{}
	for _, t := range q.patternVarTriples() {
		t.EachVar(func(v string) { out[v] = true })
	}
	return out
}

// patternVarTriples flattens every pattern group into one slice.
func (q *Query) patternVarTriples() []rdf.Triple {
	var all []rdf.Triple
	all = append(all, q.Where...)
	for _, block := range q.Unions {
		for _, alt := range block {
			all = append(all, alt...)
		}
	}
	for _, opt := range q.Optionals {
		all = append(all, opt...)
	}
	return all
}

func (p *parser) orderKeys() ([]OrderKey, error) {
	var keys []OrderKey
	for {
		t := p.lx.Peek()
		switch {
		case t.Kind == TokIdent && (strings.EqualFold(t.Text, "ASC") || strings.EqualFold(t.Text, "DESC")):
			desc := strings.EqualFold(t.Text, "DESC")
			p.lx.Next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			v := p.lx.Next()
			if v.Kind != TokVar {
				return nil, p.lx.Errf("expected variable in ORDER BY")
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			keys = append(keys, OrderKey{Var: v.Text, Desc: desc})
		case t.Kind == TokVar:
			p.lx.Next()
			keys = append(keys, OrderKey{Var: t.Text})
		default:
			if len(keys) == 0 {
				return nil, p.lx.Errf("expected sort key in ORDER BY")
			}
			return keys, nil
		}
	}
}

// GroupPattern parses "{ triples and FILTERs }". It is exported for reuse
// by the OASSIS-QL parser, which embeds the same pattern syntax in its
// WHERE and SATISFYING clauses.
func (p *parser) GroupPattern() ([]rdf.Triple, []Expr, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, nil, err
	}
	var triples []rdf.Triple
	var filters []Expr
	for {
		t := p.lx.Peek()
		if t.Kind == TokPunct && t.Text == "}" {
			p.lx.Next()
			return triples, filters, nil
		}
		if t.Kind == TokEOF {
			return nil, nil, p.lx.Errf("unterminated group pattern")
		}
		if t.Kind == TokIdent && strings.EqualFold(t.Text, "OPTIONAL") {
			p.lx.Next()
			optTriples, optFilters, err := p.subGroup()
			if err != nil {
				return nil, nil, err
			}
			if len(optFilters) > 0 {
				return nil, nil, p.lx.Errf("FILTER inside OPTIONAL is not supported")
			}
			p.optionals = append(p.optionals, optTriples)
			p.optDot()
			continue
		}
		if t.Kind == TokPunct && t.Text == "{" {
			// union block: { alt1 } UNION { alt2 } [UNION { alt3 } ...]
			var block [][]rdf.Triple
			for {
				altTriples, altFilters, err := p.subGroup()
				if err != nil {
					return nil, nil, err
				}
				if len(altFilters) > 0 {
					return nil, nil, p.lx.Errf("FILTER inside UNION alternatives is not supported")
				}
				block = append(block, altTriples)
				if n := p.lx.Peek(); n.Kind == TokIdent && strings.EqualFold(n.Text, "UNION") {
					p.lx.Next()
					continue
				}
				break
			}
			if len(block) < 2 {
				return nil, nil, p.lx.Errf("a braced group must be part of a UNION")
			}
			p.unions = append(p.unions, block)
			p.optDot()
			continue
		}
		if t.Kind == TokIdent && strings.EqualFold(t.Text, "FILTER") {
			p.lx.Next()
			if err := p.expectPunct("("); err != nil {
				return nil, nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, nil, err
			}
			filters = append(filters, e)
			p.optDot()
			continue
		}
		tr, err := p.triple()
		if err != nil {
			return nil, nil, err
		}
		triples = append(triples, tr)
		p.optDot()
	}
}

func (p *parser) optDot() {
	if t := p.lx.Peek(); t.Kind == TokPunct && t.Text == "." {
		p.lx.Next()
	}
}

func (p *parser) triple() (rdf.Triple, error) {
	s, err := p.term(false)
	if err != nil {
		return rdf.Triple{}, err
	}
	pr, err := p.term(false)
	if err != nil {
		return rdf.Triple{}, err
	}
	o, err := p.term(true)
	if err != nil {
		return rdf.Triple{}, err
	}
	return rdf.T(s, pr, o), nil
}

// term parses one triple component. Literals are only allowed in object
// position.
func (p *parser) term(object bool) (rdf.Term, error) {
	t := p.lx.Peek()
	switch t.Kind {
	case TokVar:
		p.lx.Next()
		return rdf.NewVar(t.Text), nil
	case TokIRI:
		p.lx.Next()
		return rdf.NewIRI(t.Text), nil
	case TokIdent:
		p.lx.Next()
		return p.opts.ident(t.Text), nil
	case TokAnon:
		p.lx.Next()
		p.anon++
		return rdf.NewVar(fmt.Sprintf("_anon%d", p.anon)), nil
	case TokString:
		if !object {
			return rdf.Term{}, p.lx.Errf("literal %q only allowed in object position", t.Text)
		}
		p.lx.Next()
		return rdf.NewLiteral(t.Text), nil
	case TokNumber:
		if !object {
			return rdf.Term{}, p.lx.Errf("number only allowed in object position")
		}
		p.lx.Next()
		if t.Num == float64(int64(t.Num)) && !strings.Contains(t.Text, ".") {
			return rdf.NewIntLiteral(int64(t.Num)), nil
		}
		return rdf.NewFloatLiteral(t.Num), nil
	default:
		return rdf.Term{}, p.lx.Errf("expected term, found %q", t.Text)
	}
}

// ---- filter expression parsing (precedence climbing) ----

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lx.Peek()
		if t.Kind == TokOp && t.Text == "||" {
			p.lx.Next()
			r, err := p.andExpr()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "||", L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lx.Peek()
		if t.Kind == TokOp && t.Text == "&&" {
			p.lx.Next()
			r, err := p.cmpExpr()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: "&&", L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	t := p.lx.Peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "==", "!=", "<", "<=", ">", ">=":
			p.lx.Next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinExpr{Op: t.Text, L: l, R: r}, nil
		}
	}
	// IN / NOT IN
	if t.Kind == TokIdent && (strings.EqualFold(t.Text, "IN") || strings.EqualFold(t.Text, "NOT")) {
		negated := false
		if strings.EqualFold(t.Text, "NOT") {
			if n := p.lx.PeekAhead(1); !(n.Kind == TokIdent && strings.EqualFold(n.Text, "IN")) {
				return l, nil
			}
			p.lx.Next()
			negated = true
		}
		p.lx.Next() // IN
		nt := p.lx.Peek()
		if nt.Kind == TokIdent {
			p.lx.Next()
			return &InExpr{X: l, SetName: nt.Text, Negated: negated}, nil
		}
		if nt.Kind == TokPunct && nt.Text == "(" {
			p.lx.Next()
			var list []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				sep := p.lx.Peek()
				if sep.Kind == TokPunct && sep.Text == "," {
					p.lx.Next()
					continue
				}
				break
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &InExpr{X: l, List: list, Negated: negated}, nil
		}
		return nil, p.lx.Errf("expected vocabulary name or list after IN")
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lx.Peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.lx.Next()
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: t.Text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.lx.Peek()
	if t.Kind == TokOp && t.Text == "!" {
		p.lx.Next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.lx.Peek()
	switch t.Kind {
	case TokVar:
		p.lx.Next()
		return &VarExpr{Name: t.Text}, nil
	case TokString:
		p.lx.Next()
		return &LitExpr{Val: StrVal(t.Text)}, nil
	case TokNumber:
		p.lx.Next()
		return &LitExpr{Val: NumVal(t.Num)}, nil
	case TokIRI:
		p.lx.Next()
		return &LitExpr{Val: TermVal(rdf.NewIRI(t.Text))}, nil
	case TokPunct:
		if t.Text == "(" {
			p.lx.Next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case TokIdent:
		switch {
		case strings.EqualFold(t.Text, "true"):
			p.lx.Next()
			return &LitExpr{Val: BoolVal(true)}, nil
		case strings.EqualFold(t.Text, "false"):
			p.lx.Next()
			return &LitExpr{Val: BoolVal(false)}, nil
		}
		// function call?
		if n := p.lx.PeekAhead(1); n.Kind == TokPunct && n.Text == "(" {
			if fn := strings.ToUpper(t.Text); AggFuncs[fn] {
				// Aggregate calls are only legal in the SELECT list and
				// inside HAVING; a FILTER runs before grouping, where no
				// aggregate value exists yet.
				if !p.inHaving {
					return nil, p.lx.Errf("aggregate %s() is only allowed in SELECT or HAVING", fn)
				}
				p.lx.Next()
				p.lx.Next()
				varName, err := p.aggArg(fn)
				if err != nil {
					return nil, err
				}
				var args []Expr
				if varName != "" {
					args = []Expr{&VarExpr{Name: varName}}
				}
				return &CallExpr{Name: fn, Args: args}, nil
			}
			p.lx.Next()
			p.lx.Next()
			var args []Expr
			if pt := p.lx.Peek(); !(pt.Kind == TokPunct && pt.Text == ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					sep := p.lx.Peek()
					if sep.Kind == TokPunct && sep.Text == "," {
						p.lx.Next()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.Text, Args: args}, nil
		}
		// bare identifier: a constant term
		p.lx.Next()
		return &LitExpr{Val: TermVal(p.opts.ident(t.Text))}, nil
	}
	return nil, p.lx.Errf("expected expression, found %q", t.Text)
}

// PatternParser exposes the group-pattern grammar over a shared lexer so
// that host languages embedding SPARQL patterns (OASSIS-QL, the IX
// detection pattern language) can interleave their own keywords with
// pattern parsing.
type PatternParser struct{ p *parser }

// NewPatternParser wraps a lexer for embedded pattern parsing.
func NewPatternParser(lx *Lexer, opts *ParseOptions) *PatternParser {
	return &PatternParser{p: &parser{lx: lx, opts: opts}}
}

// AggregateCall parses one aggregate call — FUNC($v) or COUNT(*),
// optionally followed by AS $alias — when the lexer sits on an aggregate
// function name followed by "(". It reports ok=false without consuming
// input otherwise. taken reports alias names already in use, so a
// derived alias (no explicit AS) stays fresh. Host languages (OASSIS-QL)
// embed this to accept aggregate outputs in their SELECT clauses.
func (pp *PatternParser) AggregateCall(taken func(string) bool) (Aggregate, bool, error) {
	p := pp.p
	t := p.lx.Peek()
	if t.Kind != TokIdent || !AggFuncs[strings.ToUpper(t.Text)] {
		return Aggregate{}, false, nil
	}
	if n := p.lx.PeekAhead(1); n.Kind != TokPunct || n.Text != "(" {
		return Aggregate{}, false, nil
	}
	fn := strings.ToUpper(p.lx.Next().Text)
	p.lx.Next() // "("
	varName, err := p.aggArg(fn)
	if err != nil {
		return Aggregate{}, true, err
	}
	alias := ""
	if p.keyword("AS") {
		v := p.lx.Next()
		if v.Kind != TokVar {
			return Aggregate{}, true, p.lx.Errf("expected variable after AS")
		}
		alias = v.Text
	} else {
		alias = freshAlias(fn, varName, taken)
	}
	return Aggregate{Func: fn, Var: varName, As: alias}, true, nil
}

// HavingExpr parses a parenthesised HAVING condition "( expr )" at the
// current position, with aggregate calls allowed inside the expression.
func (pp *PatternParser) HavingExpr() (Expr, error) {
	p := pp.p
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	p.inHaving = true
	e, err := p.expr()
	p.inHaving = false
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return e, nil
}

// OrderKeys parses ORDER BY sort keys — "$v", "ASC($v)", "DESC($v)" — at
// the current position (after the ORDER BY keywords themselves).
func (pp *PatternParser) OrderKeys() ([]OrderKey, error) { return pp.p.orderKeys() }

// GroupPattern parses "{ triples and FILTERs }" at the current lexer
// position. Host languages embedding the pattern grammar do not support
// OPTIONAL or UNION; their presence is an error here.
func (pp *PatternParser) GroupPattern() ([]rdf.Triple, []Expr, error) {
	pp.p.optionals, pp.p.unions = nil, nil
	triples, filters, err := pp.p.GroupPattern()
	if err != nil {
		return nil, nil, err
	}
	if len(pp.p.optionals) > 0 || len(pp.p.unions) > 0 {
		return nil, nil, fmt.Errorf("sparql: OPTIONAL/UNION not supported in embedded patterns")
	}
	return triples, filters, nil
}

// subGroup parses a nested "{ triples }" group without touching the
// parser's optional/union collections.
func (p *parser) subGroup() ([]rdf.Triple, []Expr, error) {
	savedOpt, savedUni := p.optionals, p.unions
	p.optionals, p.unions = nil, nil
	triples, filters, err := p.GroupPattern()
	if err != nil {
		return nil, nil, err
	}
	if len(p.optionals) > 0 || len(p.unions) > 0 {
		return nil, nil, p.lx.Errf("nested OPTIONAL/UNION groups are not supported")
	}
	p.optionals, p.unions = savedOpt, savedUni
	return triples, filters, nil
}

// ParsePattern parses a bare group pattern "{ ... }" (triples plus
// filters) without the SELECT wrapper. The OASSIS-QL parser and the IX
// pattern language build on this.
func ParsePattern(input string, opts *ParseOptions) ([]rdf.Triple, []Expr, error) {
	lx, err := NewLexer(input)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{lx: lx, opts: opts}
	triples, filters, err := p.GroupPattern()
	if err != nil {
		return nil, nil, fmt.Errorf("sparql: %w", err)
	}
	if len(p.optionals) > 0 || len(p.unions) > 0 {
		return nil, nil, fmt.Errorf("sparql: OPTIONAL/UNION not supported in embedded patterns")
	}
	if t := lx.Peek(); t.Kind != TokEOF {
		return nil, nil, fmt.Errorf("sparql: %v", lx.Errf("trailing input %q", t.Text))
	}
	return triples, filters, nil
}
