package sparql

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"nl2cm/internal/rdf"
)

// The differential property test pins the optimized evaluator's
// semantics to the retained naive evaluator: for randomized stores and
// randomized queries mixing BGPs, OPTIONAL, UNION, FILTER, DISTINCT,
// ORDER BY, projection and OFFSET/LIMIT, Eval and EvalReference must
// produce the same solution multiset.

var diffVarPool = []string{"a", "b", "c", "d", "e"}

func diffEntity(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("e%d", i)) }
func diffPred(i int) rdf.Term   { return rdf.NewIRI(fmt.Sprintf("p%d", i)) }

const (
	diffEntities = 8
	diffPreds    = 4
)

// diffNumPred is a dedicated predicate whose objects are numeric
// literals of mixed widths (and the occasional exactly-representable
// float), exercising the typed comparator in ORDER BY and aggregates.
// It sits outside the 0..diffPreds-1 pool used for random positions.
func diffNumPred() rdf.Term { return diffPred(diffPreds) }

func diffNumLiteral(r *rand.Rand) rdf.Term {
	if r.Intn(4) == 0 {
		// Quarters are exact in float64, so SUM/AVG accumulation is
		// order-independent and both evaluators agree bit-for-bit.
		return rdf.NewFloatLiteral(float64(r.Intn(600)) / 4)
	}
	return rdf.NewIntLiteral(int64(r.Intn(150))) // 1-3 digit widths
}

func randomStore(r *rand.Rand) *rdf.Store {
	st := rdf.NewStore()
	n := 20 + r.Intn(30)
	for i := 0; i < n; i++ {
		st.MustAdd(rdf.T(
			diffEntity(r.Intn(diffEntities)),
			diffPred(r.Intn(diffPreds)),
			diffEntity(r.Intn(diffEntities)),
		))
	}
	for i := 5 + r.Intn(10); i > 0; i-- {
		st.MustAdd(rdf.T(
			diffEntity(r.Intn(diffEntities)),
			diffNumPred(),
			diffNumLiteral(r),
		))
	}
	return st
}

// randomPosition yields a variable (biased) or a concrete term for one
// triple-pattern position.
func randomPosition(r *rand.Rand, pred bool) rdf.Term {
	if r.Intn(3) > 0 {
		return rdf.NewVar(diffVarPool[r.Intn(len(diffVarPool))])
	}
	if pred {
		return diffPred(r.Intn(diffPreds))
	}
	return diffEntity(r.Intn(diffEntities))
}

func randomPatterns(r *rand.Rand, n int) []rdf.Triple {
	out := make([]rdf.Triple, n)
	for i := range out {
		out[i] = rdf.T(
			randomPosition(r, false),
			randomPosition(r, true),
			randomPosition(r, false),
		)
	}
	return out
}

func randomFilter(r *rand.Rand) Expr {
	x := &VarExpr{Name: diffVarPool[r.Intn(len(diffVarPool))]}
	switch r.Intn(3) {
	case 0:
		return &BinExpr{Op: "!=", L: x, R: &VarExpr{Name: diffVarPool[r.Intn(len(diffVarPool))]}}
	case 1:
		return &BinExpr{Op: "=", L: x, R: &LitExpr{Val: TermVal(diffEntity(r.Intn(diffEntities)))}}
	default:
		return &NotExpr{X: &BinExpr{Op: "=", L: x, R: &LitExpr{Val: TermVal(diffEntity(r.Intn(diffEntities)))}}}
	}
}

func randomQuery(r *rand.Rand) *Query {
	q := &Query{Limit: -1}
	q.Where = randomPatterns(r, 1+r.Intn(3))
	if r.Intn(3) == 0 {
		// Bind one variable to the numeric literals so ORDER BY keys and
		// aggregate arguments see numbers of mixed widths.
		q.Where = append(q.Where, rdf.T(
			randomPosition(r, false),
			diffNumPred(),
			rdf.NewVar(diffVarPool[r.Intn(len(diffVarPool))]),
		))
	}
	if r.Intn(10) < 3 {
		q.Unions = [][][]rdf.Triple{{randomPatterns(r, 1), randomPatterns(r, 1)}}
	}
	for i := r.Intn(3); i > 0; i-- {
		q.Optionals = append(q.Optionals, randomPatterns(r, 1+r.Intn(2)))
	}
	for i := r.Intn(3); i > 0; i-- {
		q.Filters = append(q.Filters, randomFilter(r))
	}
	if r.Intn(10) < 3 {
		return finishAggregateQuery(r, q)
	}
	if r.Intn(2) == 0 {
		for _, v := range diffVarPool {
			if r.Intn(2) == 0 {
				q.Vars = append(q.Vars, v)
			}
		}
	}
	q.Distinct = r.Intn(10) < 3
	if r.Intn(10) < 3 {
		// OFFSET/LIMIT cut rows by position, which is only comparable
		// across evaluators under a total order: sort by every variable,
		// so tied rows are identical and any cut yields the same multiset.
		for _, v := range diffVarPool {
			q.OrderBy = append(q.OrderBy, OrderKey{Var: v, Desc: r.Intn(2) == 0})
		}
		q.Offset = r.Intn(4)
		if r.Intn(2) == 0 {
			q.Limit = r.Intn(6)
		}
	} else if r.Intn(10) < 3 {
		q.OrderBy = append(q.OrderBy, OrderKey{Var: diffVarPool[r.Intn(len(diffVarPool))], Desc: r.Intn(2) == 0})
	}
	return q
}

// finishAggregateQuery turns a random pattern skeleton into a GROUP BY /
// aggregate query. Output rows carry exactly the group variables plus
// the aggregate aliases, so sorting by all of them is a total order and
// OFFSET/LIMIT windows stay comparable across evaluators.
func finishAggregateQuery(r *rand.Rand, q *Query) *Query {
	var used []string
	seen := map[string]bool{}
	for _, tr := range q.patternVarTriples() {
		tr.EachVar(func(v string) {
			if !seen[v] {
				seen[v] = true
				used = append(used, v)
			}
		})
	}
	if len(used) == 0 {
		return q
	}
	var groupBy []string
	for _, v := range used {
		if r.Intn(3) == 0 {
			groupBy = append(groupBy, v)
		}
	}
	pick := used[r.Intn(len(used))]
	aggs := []Aggregate{{Func: "COUNT", As: "cnt"}}
	switch r.Intn(5) {
	case 0:
		aggs = append(aggs, Aggregate{Func: "MIN", Var: pick, As: "agg"})
	case 1:
		aggs = append(aggs, Aggregate{Func: "MAX", Var: pick, As: "agg"})
	case 2:
		aggs = append(aggs, Aggregate{Func: "SUM", Var: pick, As: "agg"})
	case 3:
		aggs = append(aggs, Aggregate{Func: "AVG", Var: pick, As: "agg"})
	default:
		aggs[0].Var = pick // COUNT($v) instead of COUNT(*)
	}
	q.GroupBy, q.Aggs = groupBy, aggs
	if r.Intn(3) == 0 {
		q.Having = append(q.Having, &BinExpr{
			Op: ">",
			L:  &VarExpr{Name: "cnt"},
			R:  &LitExpr{Val: NumVal(float64(r.Intn(4)))},
		})
	}
	if r.Intn(2) == 0 {
		q.Vars = append(q.Vars, groupBy...)
		for _, a := range aggs {
			q.Vars = append(q.Vars, a.As)
		}
	}
	q.Distinct = r.Intn(10) < 2
	if r.Intn(2) == 0 {
		for _, v := range groupBy {
			q.OrderBy = append(q.OrderBy, OrderKey{Var: v, Desc: r.Intn(2) == 0})
		}
		for _, a := range aggs {
			q.OrderBy = append(q.OrderBy, OrderKey{Var: a.As, Desc: r.Intn(2) == 0})
		}
		q.Offset = r.Intn(3)
		if r.Intn(2) == 0 {
			q.Limit = r.Intn(4)
		}
	}
	return q
}

func multiset(bs []Binding) []string {
	keys := make([]string, len(bs))
	for i, b := range bs {
		keys[i] = BindingKey(b)
	}
	sort.Strings(keys)
	return keys
}

func TestDifferentialEvalMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		r := rand.New(rand.NewSource(seed))
		st := randomStore(r)
		q := randomQuery(r)
		got, gerr := Eval(q, st, nil)
		want, werr := EvalReference(q, st, nil)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("seed %d: error mismatch: Eval=%v EvalReference=%v\nquery: %+v", seed, gerr, werr, q)
		}
		if gerr != nil {
			continue
		}
		gm, wm := multiset(got), multiset(want)
		if len(gm) != len(wm) {
			t.Fatalf("seed %d: row count mismatch: Eval=%d EvalReference=%d\nquery: %+v", seed, len(gm), len(wm), q)
		}
		for i := range gm {
			if gm[i] != wm[i] {
				t.Fatalf("seed %d: multiset mismatch at %d:\n  eval: %s\n  ref:  %s\nquery: %+v", seed, i, gm[i], wm[i], q)
			}
		}
		// Under a total order (every variable a sort key) the sequences
		// must agree exactly, not just as multisets.
		if len(q.OrderBy) == len(diffVarPool) {
			for i := range got {
				if BindingKey(got[i]) != BindingKey(want[i]) {
					t.Fatalf("seed %d: ordered row %d differs:\n  eval: %v\n  ref:  %v", seed, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDifferentialFallbackWideQuery forces the >64-variable fallback
// path and checks it degrades to the reference evaluator, not an error.
func TestDifferentialFallbackWideQuery(t *testing.T) {
	st := rdf.NewStore()
	st.MustAdd(rdf.T(diffEntity(0), diffPred(0), diffEntity(1)))
	q := &Query{Limit: -1}
	for i := 0; i < maxSlots+2; i++ {
		q.Where = append(q.Where, rdf.T(
			rdf.NewVar(fmt.Sprintf("v%d", i)), diffPred(0), diffEntity(1)))
	}
	if _, ok := compileQuery(q); ok {
		t.Fatalf("expected compileQuery to report too many slots")
	}
	got, err := Eval(q, st, nil)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("want 1 row from wide query, got %d", len(got))
	}
}

func TestBindingKeyCollisionFree(t *testing.T) {
	// Under the old "name=value;" concatenation both bindings encoded to
	// `x=<a>;y=<b>;`: the first value smuggles the delimiter characters.
	b1 := Binding{"x": rdf.NewIRI("a>;y=<b")}
	b2 := Binding{"x": rdf.NewIRI("a"), "y": rdf.NewIRI("b")}
	if BindingKey(b1) == BindingKey(b2) {
		t.Fatalf("BindingKey collision: %q", BindingKey(b1))
	}
	// Literal vs IRI with the same text must also stay distinct, as must
	// language-tagged vs plain literals.
	if BindingKey(Binding{"x": rdf.NewIRI("v")}) == BindingKey(Binding{"x": rdf.NewLiteral("v")}) {
		t.Fatalf("BindingKey conflates IRI and literal")
	}
	if BindingKey(Binding{"x": rdf.NewLangLiteral("v", "en")}) == BindingKey(Binding{"x": rdf.NewLiteral("v")}) {
		t.Fatalf("BindingKey conflates language-tagged and plain literal")
	}
	if BindingKey(b1) != BindingKey(Binding{"x": rdf.NewIRI("a>;y=<b")}) {
		t.Fatalf("BindingKey not deterministic")
	}
}

// TestOffsetLimitWindowIsCopied pins the fix for the slice-aliasing bug:
// the returned window must not retain capacity into (and thereby pin or
// expose) the full pre-OFFSET result.
func TestOffsetLimitWindowIsCopied(t *testing.T) {
	st := rdf.NewStore()
	for i := 0; i < 6; i++ {
		st.MustAdd(rdf.T(diffEntity(i), diffPred(0), diffEntity(0)))
	}
	q := &Query{
		Where:   []rdf.Triple{rdf.T(rdf.NewVar("x"), diffPred(0), diffEntity(0))},
		OrderBy: []OrderKey{{Var: "x"}},
		Offset:  1,
		Limit:   2,
	}
	for name, eval := range map[string]func(*Query, Source, *Env) ([]Binding, error){
		"Eval": Eval, "EvalReference": EvalReference,
	} {
		rows, err := eval(q, st, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != 2 {
			t.Fatalf("%s: want 2 rows, got %d", name, len(rows))
		}
		if cap(rows) != len(rows) {
			t.Fatalf("%s: window aliases a larger backing array: len=%d cap=%d", name, len(rows), cap(rows))
		}
	}
}
