package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"nl2cm/internal/rdf"
)

// ValueKind discriminates filter-expression values.
type ValueKind int

// Value kinds.
const (
	VTerm ValueKind = iota
	VBool
	VNum
	VStr
)

// Value is the result of evaluating a filter expression.
type Value struct {
	Kind ValueKind
	Term rdf.Term
	Bool bool
	Num  float64
	Str  string
}

// BoolVal, NumVal, StrVal and TermVal construct values.
func BoolVal(b bool) Value     { return Value{Kind: VBool, Bool: b} }
func NumVal(f float64) Value   { return Value{Kind: VNum, Num: f} }
func StrVal(s string) Value    { return Value{Kind: VStr, Str: s} }
func TermVal(t rdf.Term) Value { return Value{Kind: VTerm, Term: t} }

// Truthy reports the boolean interpretation of the value.
func (v Value) Truthy() bool {
	switch v.Kind {
	case VBool:
		return v.Bool
	case VNum:
		return v.Num != 0
	case VStr:
		return v.Str != ""
	case VTerm:
		return v.Term.Value() != ""
	}
	return false
}

// text returns a string view used by string comparisons.
func (v Value) text() string {
	switch v.Kind {
	case VStr:
		return v.Str
	case VTerm:
		return v.Term.Value()
	case VNum:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case VBool:
		return strconv.FormatBool(v.Bool)
	}
	return ""
}

// num returns a numeric view, with ok=false for non-numeric values.
func (v Value) num() (float64, bool) {
	switch v.Kind {
	case VNum:
		return v.Num, true
	case VStr:
		f, err := strconv.ParseFloat(v.Str, 64)
		return f, err == nil
	case VTerm:
		return v.Term.Float()
	}
	return 0, false
}

// Env provides the evaluation context for filter expressions: functions
// (e.g. POS, LEMMA over dependency nodes) and named vocabularies for the
// IN operator (e.g. V_participant in the paper's example pattern).
type Env struct {
	// Funcs maps upper-cased function names to implementations.
	Funcs map[string]func(args []Value) (Value, error)
	// Sets maps vocabulary names to membership predicates.
	Sets map[string]func(Value) bool
}

// Vars is the read-only variable environment a filter expression
// evaluates against. Binding satisfies it through its Get method, and
// the optimized evaluator passes a view over its slot-indexed rows
// without building a map.
type Vars interface {
	Get(name string) (rdf.Term, bool)
}

// Expr is a filter expression.
type Expr interface {
	// Eval evaluates the expression under a variable environment.
	Eval(b Vars, env *Env) (Value, error)
	fmt.Stringer
}

// VarExpr references a variable.
type VarExpr struct{ Name string }

// Eval implements Expr.
func (e *VarExpr) Eval(b Vars, _ *Env) (Value, error) {
	t, ok := b.Get(e.Name)
	if !ok {
		return Value{}, fmt.Errorf("sparql: unbound variable $%s in filter", e.Name)
	}
	return TermVal(t), nil
}

func (e *VarExpr) String() string { return "$" + e.Name }

// LitExpr is a constant.
type LitExpr struct{ Val Value }

// Eval implements Expr.
func (e *LitExpr) Eval(Vars, *Env) (Value, error) { return e.Val, nil }

func (e *LitExpr) String() string {
	switch e.Val.Kind {
	case VStr:
		return strconv.Quote(e.Val.Str)
	case VNum:
		return strconv.FormatFloat(e.Val.Num, 'g', -1, 64)
	case VBool:
		return strconv.FormatBool(e.Val.Bool)
	default:
		return e.Val.Term.String()
	}
}

// CallExpr invokes a registered function.
type CallExpr struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (e *CallExpr) Eval(b Vars, env *Env) (Value, error) {
	if env == nil || env.Funcs == nil {
		return Value{}, fmt.Errorf("sparql: no function environment for %s()", e.Name)
	}
	fn, ok := env.Funcs[strings.ToUpper(e.Name)]
	if !ok {
		return Value{}, fmt.Errorf("sparql: unknown function %s()", e.Name)
	}
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(b, env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return fn(args)
}

func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// NotExpr negates its operand.
type NotExpr struct{ X Expr }

// Eval implements Expr.
func (e *NotExpr) Eval(b Vars, env *Env) (Value, error) {
	v, err := e.X.Eval(b, env)
	if err != nil {
		return Value{}, err
	}
	return BoolVal(!v.Truthy()), nil
}

func (e *NotExpr) String() string { return "!" + e.X.String() }

// BinExpr is a binary operation: && || = != < <= > >= + -.
type BinExpr struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.
func (e *BinExpr) Eval(b Vars, env *Env) (Value, error) {
	switch e.Op {
	case "&&":
		l, err := e.L.Eval(b, env)
		if err != nil {
			return Value{}, err
		}
		if !l.Truthy() {
			return BoolVal(false), nil
		}
		r, err := e.R.Eval(b, env)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(r.Truthy()), nil
	case "||":
		l, err := e.L.Eval(b, env)
		if err != nil {
			return Value{}, err
		}
		if l.Truthy() {
			return BoolVal(true), nil
		}
		r, err := e.R.Eval(b, env)
		if err != nil {
			return Value{}, err
		}
		return BoolVal(r.Truthy()), nil
	}
	l, err := e.L.Eval(b, env)
	if err != nil {
		return Value{}, err
	}
	r, err := e.R.Eval(b, env)
	if err != nil {
		return Value{}, err
	}
	switch e.Op {
	case "=", "==":
		return BoolVal(equalValues(l, r)), nil
	case "!=":
		return BoolVal(!equalValues(l, r)), nil
	case "<", "<=", ">", ">=":
		c, err := compareValues(l, r)
		if err != nil {
			return Value{}, err
		}
		switch e.Op {
		case "<":
			return BoolVal(c < 0), nil
		case "<=":
			return BoolVal(c <= 0), nil
		case ">":
			return BoolVal(c > 0), nil
		default:
			return BoolVal(c >= 0), nil
		}
	case "+", "-":
		ln, lok := l.num()
		rn, rok := r.num()
		if !lok || !rok {
			return Value{}, fmt.Errorf("sparql: arithmetic on non-numeric values")
		}
		if e.Op == "+" {
			return NumVal(ln + rn), nil
		}
		return NumVal(ln - rn), nil
	}
	return Value{}, fmt.Errorf("sparql: unknown operator %q", e.Op)
}

func (e *BinExpr) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

// InExpr tests membership of a value in a named vocabulary or an explicit
// list, e.g. `$y IN V_participant` or `POS($x) IN ("VB", "VBP")`.
type InExpr struct {
	X Expr
	// SetName is the registered vocabulary name; empty when List is used.
	SetName string
	List    []Expr
	Negated bool
}

// Eval implements Expr.
func (e *InExpr) Eval(b Vars, env *Env) (Value, error) {
	v, err := e.X.Eval(b, env)
	if err != nil {
		return Value{}, err
	}
	in := false
	if e.SetName != "" {
		if env == nil || env.Sets == nil {
			return Value{}, fmt.Errorf("sparql: no vocabulary environment for %s", e.SetName)
		}
		pred, ok := env.Sets[e.SetName]
		if !ok {
			return Value{}, fmt.Errorf("sparql: unknown vocabulary %s", e.SetName)
		}
		in = pred(v)
	} else {
		for _, item := range e.List {
			iv, err := item.Eval(b, env)
			if err != nil {
				return Value{}, err
			}
			if equalValues(v, iv) {
				in = true
				break
			}
		}
	}
	if e.Negated {
		in = !in
	}
	return BoolVal(in), nil
}

func (e *InExpr) String() string {
	op := "IN"
	if e.Negated {
		op = "NOT IN"
	}
	if e.SetName != "" {
		return e.X.String() + " " + op + " " + e.SetName
	}
	parts := make([]string, len(e.List))
	for i, it := range e.List {
		parts[i] = it.String()
	}
	return e.X.String() + " " + op + " (" + strings.Join(parts, ", ") + ")"
}

// equalValues compares two values, numerically when both are numeric,
// otherwise textually.
func equalValues(l, r Value) bool {
	if ln, ok := l.num(); ok {
		if rn, ok := r.num(); ok {
			return ln == rn
		}
	}
	if l.Kind == VTerm && r.Kind == VTerm {
		return l.Term.Equal(r.Term)
	}
	return l.text() == r.text()
}

// compareValues orders two values, numerically when possible. Two bound
// terms are ordered by rdf.Term.Compare — the same typed comparator ORDER
// BY uses — so FILTER and HAVING comparisons over aggregate outputs (which
// are numeric literals) never fall back to string comparison.
func compareValues(l, r Value) (int, error) {
	if ln, lok := l.num(); lok {
		if rn, rok := r.num(); rok {
			switch {
			case ln < rn:
				return -1, nil
			case ln > rn:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if l.Kind == VTerm && r.Kind == VTerm {
		return l.Term.Compare(r.Term), nil
	}
	lt, rt := l.text(), r.text()
	switch {
	case lt < rt:
		return -1, nil
	case lt > rt:
		return 1, nil
	default:
		return 0, nil
	}
}
