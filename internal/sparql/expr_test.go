package sparql

import (
	"strings"
	"testing"

	"nl2cm/internal/rdf"
)

func evalExpr(t *testing.T, src string, b Binding, env *Env) Value {
	t.Helper()
	q, err := Parse(`SELECT * WHERE { $x p $y . FILTER(` + src + `) }`)
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	v, err := q.Filters[0].Eval(b, env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", src, err)
	}
	return v
}

func TestExprArithmetic(t *testing.T) {
	b := Binding{}
	if v := evalExpr(t, "1 + 2 = 3", b, nil); !v.Bool {
		t.Error("1+2=3 false")
	}
	if v := evalExpr(t, "5 - 2 > 2", b, nil); !v.Bool {
		t.Error("5-2>2 false")
	}
	if v := evalExpr(t, `1 + 2 - 1 = 2`, b, nil); !v.Bool {
		t.Error("chained arithmetic failed")
	}
}

func TestExprArithmeticTypeError(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { $x p $y . FILTER("abc" + 1 = 2) }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Filters[0].Eval(Binding{}, nil); err == nil {
		t.Error("string arithmetic succeeded")
	}
}

func TestExprNot(t *testing.T) {
	if v := evalExpr(t, "!false", Binding{}, nil); !v.Bool {
		t.Error("!false = false")
	}
	if v := evalExpr(t, "!(1 = 1)", Binding{}, nil); v.Bool {
		t.Error("!(1=1) = true")
	}
}

func TestExprBooleanShortCircuit(t *testing.T) {
	// The right operand of && is not evaluated when the left is false:
	// an unbound variable there must not error.
	q, err := Parse(`SELECT * WHERE { $x p $y . FILTER(false && $nope = 1) }`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := q.Filters[0].Eval(Binding{}, nil)
	if err != nil || v.Bool {
		t.Errorf("short circuit failed: %v %v", v, err)
	}
	q2, err := Parse(`SELECT * WHERE { $x p $y . FILTER(true || $nope = 1) }`)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := q2.Filters[0].Eval(Binding{}, nil)
	if err != nil || !v2.Bool {
		t.Errorf("or short circuit failed: %v %v", v2, err)
	}
}

func TestExprUnboundVariableErrors(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { $x p $y . FILTER($zzz = 1) }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Filters[0].Eval(Binding{}, nil); err == nil {
		t.Error("unbound variable evaluated")
	}
}

func TestExprStringComparisons(t *testing.T) {
	b := Binding{"x": rdf.NewLiteral("apple"), "y": rdf.NewLiteral("banana")}
	if v := evalExpr(t, "$x < $y", b, nil); !v.Bool {
		t.Error("apple < banana false")
	}
	if v := evalExpr(t, `$x >= "apple"`, b, nil); !v.Bool {
		t.Error("apple >= apple false")
	}
	if v := evalExpr(t, `$x != $y`, b, nil); !v.Bool {
		t.Error("apple != banana false")
	}
}

func TestExprTermEquality(t *testing.T) {
	b := Binding{"x": rdf.NewIRI("a"), "y": rdf.NewIRI("a")}
	if v := evalExpr(t, "$x = $y", b, nil); !v.Bool {
		t.Error("same IRIs unequal")
	}
}

func TestExprStrings(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		$x p $y .
		FILTER(!($x = 1) && POS($x) IN ("VB", "NN") || $y NOT IN V_set && true)
	}`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Filters[0].String()
	for _, want := range []string{"!", "POS(", "IN (", "NOT IN V_set", "&&", "||", "true"} {
		if !strings.Contains(s, want) {
			t.Errorf("expression string %q missing %q", s, want)
		}
	}
	// Literal string rendering quotes properly.
	q2, err := Parse(`SELECT * WHERE { $x p $y . FILTER($x = "a\"b") }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q2.Filters[0].String(), `"a\"b"`) {
		t.Errorf("string literal rendering: %s", q2.Filters[0])
	}
}

func TestBindingGetAndClone(t *testing.T) {
	b := Binding{"x": rdf.NewIRI("a")}
	if v, ok := b.Get("x"); !ok || v != rdf.NewIRI("a") {
		t.Error("Get(x) wrong")
	}
	if _, ok := b.Get("y"); ok {
		t.Error("Get(y) ok")
	}
	c := b.Clone()
	c["x"] = rdf.NewIRI("b")
	if b["x"] != rdf.NewIRI("a") {
		t.Error("Clone shares storage")
	}
}

func TestValueTextViews(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{StrVal("s"), "s"},
		{TermVal(rdf.NewIRI("iri")), "iri"},
		{NumVal(2.5), "2.5"},
		{BoolVal(true), "true"},
	}
	for _, c := range cases {
		if got := c.v.text(); got != c.want {
			t.Errorf("text(%+v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	lx, err := NewLexer(`"a\nb\tc\\d\"e"`)
	if err != nil {
		t.Fatal(err)
	}
	tok := lx.Next()
	if tok.Kind != TokString || tok.Text != "a\nb\tc\\d\"e" {
		t.Errorf("lexed %q", tok.Text)
	}
	// Bad escapes and unterminated strings error.
	for _, bad := range []string{`"dangling\`, `"bad\q"`, `"unterminated`} {
		if _, err := NewLexer(bad); err == nil {
			t.Errorf("NewLexer(%q) succeeded", bad)
		}
	}
}

func TestLexerPeekAheadAndErrf(t *testing.T) {
	lx, err := NewLexer("SELECT $x\nWHERE")
	if err != nil {
		t.Fatal(err)
	}
	if lx.PeekAhead(2).Kind != TokIdent {
		t.Error("PeekAhead(2) wrong")
	}
	lx.Next()
	lx.Next()
	e := lx.Errf("boom")
	if !strings.Contains(e.Error(), "line 2") {
		t.Errorf("Errf = %v, want line 2", e)
	}
}

func TestParsePatternStandalone(t *testing.T) {
	triples, filters, err := ParsePattern(`{$x nsubj $y . FILTER($x != $y)}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) != 1 || len(filters) != 1 {
		t.Errorf("triples=%d filters=%d", len(triples), len(filters))
	}
	if _, _, err := ParsePattern(`{$x nsubj $y} extra`, nil); err == nil {
		t.Error("trailing input accepted")
	}
	if _, _, err := ParsePattern(`{$x`, nil); err == nil {
		t.Error("unterminated pattern accepted")
	}
}

func TestParseTermErrors(t *testing.T) {
	// numbers in subject position
	if _, err := Parse(`SELECT $x WHERE { 5 p $y }`); err == nil {
		t.Error("number subject accepted")
	}
	// comparison chain rendering
	q, err := Parse(`SELECT $x WHERE { $x p $y . FILTER($x = 1) } ORDER BY $x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Desc {
		t.Errorf("bare order key = %+v", q.OrderBy)
	}
}
