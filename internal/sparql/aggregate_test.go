package sparql

import (
	"strings"
	"testing"

	"nl2cm/internal/rdf"
)

// bothEvals runs a query through the streaming and reference evaluators,
// failing unless both succeed; the caller checks the rows of each.
func bothEvals(t *testing.T, q *Query, src Source) map[string][]Binding {
	t.Helper()
	out := map[string][]Binding{}
	for name, eval := range map[string]func(*Query, Source, *Env) ([]Binding, error){
		"Eval": Eval, "EvalReference": EvalReference,
	} {
		rows, err := eval(q, src, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = rows
	}
	return out
}

// aggStore holds cities with attractions and sizes: buffalo has 3
// attractions, vegas 12, nyc 1 — counts with 1 and 2 digits so that
// numeric ordering over COUNT results is observable.
func aggStore() *rdf.Store {
	s := rdf.NewStore()
	addAttraction := func(city string, n int) {
		for i := 0; i < n; i++ {
			a := rdf.NewIRI(city + "_sight_" + string(rune('a'+i)))
			s.MustAdd(rdf.T(a, iri("locatedIn"), iri(city)))
			s.MustAdd(rdf.T(a, iri("instanceOf"), iri("Place")))
		}
	}
	addAttraction("Buffalo", 3)
	addAttraction("Vegas", 12)
	addAttraction("NYC", 1)
	return s
}

func TestEvalOrderNumeric(t *testing.T) {
	// ["9", "10", "2"]: lexicographic ordering would yield 10 < 2 < 9.
	s := rdf.NewStore()
	for _, e := range []struct {
		name string
		size int64
	}{{"a", 9}, {"b", 10}, {"c", 2}} {
		s.MustAdd(rdf.T(iri(e.name), iri("size"), rdf.NewIntLiteral(e.size)))
	}
	q, err := Parse(`SELECT $x $s WHERE { $x size $s } ORDER BY ASC($s)`)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range bothEvals(t, q, s) {
		got := make([]string, len(rows))
		for i, b := range rows {
			got[i] = b["x"].Value()
		}
		if want := "c a b"; strings.Join(got, " ") != want {
			t.Errorf("%s: ascending numeric order = %v, want %s", name, got, want)
		}
	}
	// Mixed-width keys descending: 400 must beat 9 even though "9" > "4".
	s.MustAdd(rdf.T(iri("d"), iri("size"), rdf.NewIntLiteral(400)))
	q.OrderBy = []OrderKey{{Var: "s", Desc: true}}
	for name, rows := range bothEvals(t, q, s) {
		if rows[0]["x"].Value() != "d" || rows[len(rows)-1]["x"].Value() != "c" {
			t.Errorf("%s: descending mixed-width order wrong: first=%v last=%v",
				name, rows[0]["x"], rows[len(rows)-1]["x"])
		}
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse(`SELECT $city COUNT($a) AS $n WHERE { $a locatedIn $city } GROUP BY $city HAVING(COUNT($a) > 2) ORDER BY DESC($n) LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 1 || q.Aggs[0] != (Aggregate{Func: "COUNT", Var: "a", As: "n"}) {
		t.Fatalf("Aggs = %+v", q.Aggs)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "city" {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
	if len(q.Having) != 1 {
		t.Fatalf("Having = %v", q.Having)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "city" || q.Vars[1] != "n" {
		t.Fatalf("Vars = %v", q.Vars)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The HAVING call references the SELECT aggregate rather than adding
	// a hidden duplicate.
	if len(q.Aggs) != 1 {
		t.Fatalf("HAVING duplicated the aggregate: %+v", q.Aggs)
	}
	// String() round-trips through the parser.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", q.String(), q2.String())
	}
}

func TestParseAggregateAutoAliasAndCountStar(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) SUM($s) WHERE { $x size $s }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 2 || q.Aggs[0].As != "count" || q.Aggs[1].As != "sum_s" {
		t.Fatalf("auto aliases = %+v", q.Aggs)
	}
	if q.Aggs[0].Var != "" {
		t.Fatalf("COUNT(*) Var = %q, want empty", q.Aggs[0].Var)
	}
	// HAVING-only aggregation (global group).
	q2, err := Parse(`SELECT COUNT(*) AS $n WHERE { $x size $s } HAVING(MIN($s) > 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Aggs) != 2 {
		t.Fatalf("hidden HAVING aggregate not hoisted: %+v", q2.Aggs)
	}
	if err := q2.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseAggregateErrors(t *testing.T) {
	bad := map[string]string{
		// Aggregates outside SELECT/HAVING are rejected where they stand.
		`SELECT $x WHERE { $x size $s . FILTER(COUNT($s) > 1) }`: "only allowed in SELECT or HAVING",
		// GROUP BY of a variable no pattern binds.
		`SELECT COUNT(*) AS $n WHERE { $x size $s } GROUP BY $nope`: "GROUP BY of undefined variable $nope",
		// Projected variables must be grouped or aggregated.
		`SELECT $x COUNT($s) AS $n WHERE { $x size $s } GROUP BY $s`: "neither grouped nor an aggregate alias",
		// * only belongs to COUNT.
		`SELECT SUM(*) AS $n WHERE { $x size $s }`: "only COUNT takes *",
		// HAVING without any grouping step.
		`SELECT $x WHERE { $x size $s } HAVING($s > 1)`: "HAVING requires GROUP BY",
		// Aggregate alias colliding with a pattern variable.
		`SELECT COUNT($s) AS $x WHERE { $x size $s }`: "collides with a pattern variable",
		// Empty GROUP BY list.
		`SELECT COUNT(*) AS $n WHERE { $x size $s } GROUP BY LIMIT 1`: "expected variables after GROUP BY",
	}
	for in, want := range bad {
		_, err := Parse(in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", in, want)
			continue
		}
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Parse(%q) error = %v, want containing %q", in, err, want)
		}
		if !strings.Contains(err.Error(), "line") {
			t.Errorf("Parse(%q) error %v carries no position", in, err)
		}
	}
}

func TestEvalGroupByCount(t *testing.T) {
	q, err := Parse(`SELECT $city COUNT($a) AS $n WHERE { $a locatedIn $city } GROUP BY $city ORDER BY DESC($n) $city`)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range bothEvals(t, q, aggStore()) {
		if len(rows) != 3 {
			t.Fatalf("%s: got %d groups, want 3", name, len(rows))
		}
		// Vegas (12) must sort before Buffalo (3) despite "12" < "3"
		// lexicographically.
		want := []struct {
			city string
			n    int64
		}{{"Vegas", 12}, {"Buffalo", 3}, {"NYC", 1}}
		for i, w := range want {
			if rows[i]["city"].Value() != w.city {
				t.Errorf("%s: row %d city = %v, want %s", name, i, rows[i]["city"], w.city)
			}
			if n, _ := rows[i]["n"].Int(); n != w.n {
				t.Errorf("%s: row %d count = %v, want %d", name, i, rows[i]["n"], w.n)
			}
		}
	}
}

// TestEvalSuperlativeShape pins the "which city has the most
// attractions?" query shape end-to-end at the SPARQL layer.
func TestEvalSuperlativeShape(t *testing.T) {
	q, err := Parse(`SELECT $city COUNT($a) AS $n WHERE { $a locatedIn $city . $a instanceOf Place } GROUP BY $city ORDER BY DESC($n) LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range bothEvals(t, q, aggStore()) {
		if len(rows) != 1 || rows[0]["city"].Value() != "Vegas" {
			t.Errorf("%s: superlative = %v, want Vegas", name, rows)
		}
	}
}

// TestEvalHavingNumericCounts is the satellite table test: HAVING over
// COUNT with 1-, 2- and 3-digit group sizes must compare numerically —
// a string comparison would call "100" < "9".
func TestEvalHavingNumericCounts(t *testing.T) {
	s := rdf.NewStore()
	for city, n := range map[string]int{"small": 8, "mid": 40, "big": 100} {
		for i := 0; i < n; i++ {
			a := rdf.NewIRI(city + "_a" + string(rune('0'+i/10)) + string(rune('0'+i%10)))
			s.MustAdd(rdf.T(a, iri("locatedIn"), iri(city)))
		}
	}
	cases := []struct {
		having string
		want   map[string]bool
	}{
		{`HAVING(COUNT($a) > 9)`, map[string]bool{"mid": true, "big": true}},
		{`HAVING(COUNT($a) > 99)`, map[string]bool{"big": true}},
		{`HAVING(COUNT($a) <= 40)`, map[string]bool{"small": true, "mid": true}},
		{`HAVING(COUNT($a) > 100)`, map[string]bool{}},
	}
	for _, c := range cases {
		q, err := Parse(`SELECT $city WHERE { $a locatedIn $city } GROUP BY $city ` + c.having)
		if err != nil {
			t.Fatalf("%s: %v", c.having, err)
		}
		for name, rows := range bothEvals(t, q, s) {
			got := map[string]bool{}
			for _, b := range rows {
				got[b["city"].Value()] = true
			}
			if len(got) != len(c.want) {
				t.Errorf("%s %s: groups = %v, want %v", name, c.having, got, c.want)
				continue
			}
			for city := range c.want {
				if !got[city] {
					t.Errorf("%s %s: missing group %s", name, c.having, city)
				}
			}
		}
	}
}

func TestEvalAggregateFunctions(t *testing.T) {
	s := rdf.NewStore()
	add := func(x string, v rdf.Term) { s.MustAdd(rdf.T(iri(x), iri("size"), v)) }
	add("a", rdf.NewIntLiteral(10))
	add("b", rdf.NewIntLiteral(2))
	add("c", rdf.NewIntLiteral(9))
	q, err := Parse(`SELECT COUNT(*) AS $n SUM($s) AS $sum AVG($s) AS $avg MIN($s) AS $min MAX($s) AS $max WHERE { $x size $s }`)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range bothEvals(t, q, s) {
		if len(rows) != 1 {
			t.Fatalf("%s: got %d rows, want 1 global group", name, len(rows))
		}
		b := rows[0]
		wantInt := map[string]int64{"n": 3, "sum": 21, "min": 2, "max": 10}
		for k, w := range wantInt {
			if v, ok := b[k].Int(); !ok || v != w {
				t.Errorf("%s: %s = %v, want %d", name, k, b[k], w)
			}
		}
		if v, ok := b["avg"].Float(); !ok || v != 7 {
			t.Errorf("%s: avg = %v, want 7", name, b["avg"])
		}
		if b["avg"].Datatype() != rdf.XSDDouble {
			t.Errorf("%s: avg datatype = %q, want xsd:double", name, b["avg"].Datatype())
		}
	}
	// Mixed int/float input makes SUM a double.
	add("d", rdf.NewFloatLiteral(0.5))
	q2, err := Parse(`SELECT SUM($s) AS $sum WHERE { $x size $s }`)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range bothEvals(t, q2, s) {
		if v, ok := rows[0]["sum"].Float(); !ok || v != 21.5 {
			t.Errorf("%s: mixed sum = %v, want 21.5", name, rows[0]["sum"])
		}
		if rows[0]["sum"].Datatype() != rdf.XSDDouble {
			t.Errorf("%s: mixed sum datatype = %q", name, rows[0]["sum"].Datatype())
		}
	}
}

func TestEvalAggregateEmptyInput(t *testing.T) {
	s := rdf.NewStore()
	s.MustAdd(rdf.T(iri("a"), iri("other"), iri("b")))
	// Global group over zero matching rows: COUNT is 0, MIN unbound.
	q, err := Parse(`SELECT COUNT(*) AS $n MIN($s) AS $min WHERE { $x size $s }`)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range bothEvals(t, q, s) {
		if len(rows) != 1 {
			t.Fatalf("%s: got %d rows, want 1", name, len(rows))
		}
		if v, ok := rows[0]["n"].Int(); !ok || v != 0 {
			t.Errorf("%s: COUNT over empty = %v, want 0", name, rows[0]["n"])
		}
		if _, ok := rows[0]["min"]; ok {
			t.Errorf("%s: MIN over empty bound to %v, want unbound", name, rows[0]["min"])
		}
	}
	// With GROUP BY, zero rows means zero groups.
	q2, err := Parse(`SELECT $x COUNT(*) AS $n WHERE { $x size $s } GROUP BY $x`)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range bothEvals(t, q2, s) {
		if len(rows) != 0 {
			t.Errorf("%s: grouped empty input gave %d rows, want 0", name, len(rows))
		}
	}
}

// TestAggregateValidate covers the programmatic construction paths the
// parser cannot reach.
func TestAggregateValidate(t *testing.T) {
	base := func() *Query {
		return &Query{
			Limit:   -1,
			Where:   []rdf.Triple{rdf.T(rdf.NewVar("a"), iri("locatedIn"), rdf.NewVar("city"))},
			GroupBy: []string{"city"},
			Aggs:    []Aggregate{{Func: "COUNT", Var: "a", As: "n"}},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid aggregate query rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Query)
		want string
	}{
		{"unknown func", func(q *Query) { q.Aggs[0].Func = "MEDIAN" }, "unknown aggregate function"},
		{"missing alias", func(q *Query) { q.Aggs[0].As = "" }, "no output alias"},
		{"star non-count", func(q *Query) { q.Aggs[0].Func, q.Aggs[0].Var = "SUM", "" }, "only COUNT takes *"},
		{"alias collision", func(q *Query) { q.Aggs[0].As = "city" }, "collides with a pattern variable"},
		{"dup alias", func(q *Query) { q.Aggs = append(q.Aggs, Aggregate{Func: "SUM", Var: "a", As: "n"}) }, "duplicate aggregate alias"},
		{"undefined group var", func(q *Query) { q.GroupBy = []string{"ghost"} }, "GROUP BY of undefined variable"},
		{"ungrouped projection", func(q *Query) { q.Vars = []string{"a"} }, "neither grouped nor an aggregate alias"},
		{"nil having", func(q *Query) { q.Having = []Expr{nil} }, "nil HAVING"},
		{"having without grouping", func(q *Query) {
			q.GroupBy, q.Aggs = nil, nil
			q.Having = []Expr{&LitExpr{Val: BoolVal(true)}}
		}, "HAVING without GROUP BY"},
	}
	for _, c := range cases {
		q := base()
		c.mut(q)
		err := q.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate = %v, want containing %q", c.name, err, c.want)
		}
	}
}

// TestProgrammaticHavingCalls checks that queries built in code with raw
// aggregate CallExprs in HAVING (as the crowd engine does) are
// normalized identically by both evaluators.
func TestProgrammaticHavingCalls(t *testing.T) {
	q := &Query{
		Limit:   -1,
		Where:   []rdf.Triple{rdf.T(rdf.NewVar("a"), iri("locatedIn"), rdf.NewVar("city"))},
		GroupBy: []string{"city"},
		Having: []Expr{&BinExpr{
			Op: ">",
			L:  &CallExpr{Name: "count", Args: []Expr{&VarExpr{Name: "a"}}},
			R:  &LitExpr{Val: NumVal(2)},
		}},
	}
	for name, rows := range bothEvals(t, q, aggStore()) {
		got := map[string]bool{}
		for _, b := range rows {
			got[b["city"].Value()] = true
		}
		if len(got) != 2 || !got["Vegas"] || !got["Buffalo"] {
			t.Errorf("%s: groups = %v, want Vegas+Buffalo", name, got)
		}
	}
}
