package sparql

import (
	"testing"
)

// FuzzParse asserts the parser never panics and that every accepted
// query satisfies Validate. (A print/re-parse round trip is NOT asserted:
// typed literals print with a ^^datatype suffix the lexer does not read.)
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * WHERE { $x <near> $y . }",
		"SELECT DISTINCT $x WHERE { $x <instanceOf> <Place> . FILTER($x != <Forest>) } ORDER BY DESC($x) LIMIT 5 OFFSET 2",
		"SELECT $a $b WHERE { { $a <p> $b . } UNION { $b <p> $a . } OPTIONAL { $a <q> \"lit\" . } }",
		"SELECT * WHERE { [] <visit> $x . $x <in> \"Fall\" }",
		"SELECT * WHERE { ?s ?p 42 . FILTER(?s = ?p || !(?p < 3)) }",
		"SELECT * WHERE { $x <p> $y . } # trailing comment",
		"SELECT",
		"",
		"SELECT * WHERE { $x",
		"SELECT * WHERE { \"subject\" <p> $y }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if q == nil {
			t.Fatal("Parse returned nil query with nil error")
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("accepted query fails Validate: %v\ninput: %q", err, input)
		}
		_ = q.String() // printing must not panic either
	})
}
