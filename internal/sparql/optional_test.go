package sparql

import (
	"strings"
	"testing"

	"nl2cm/internal/rdf"
)

// optStore: places with optional labels, two relation kinds.
func optStore() *rdf.Store {
	s := rdf.NewStore()
	add := func(sub, p, o string) { s.AddTriple(iri(sub), iri(p), iri(o)) }
	add("park", "instanceOf", "Place")
	add("zoo", "instanceOf", "Place")
	add("museum", "instanceOf", "Place")
	s.AddTriple(iri("park"), iri("label"), rdf.NewLiteral("Delaware Park"))
	s.AddTriple(iri("zoo"), iri("label"), rdf.NewLiteral("Buffalo Zoo"))
	// museum has no label
	add("park", "near", "hotel")
	add("museum", "adjacentTo", "hotel")
	return s
}

func TestParseOptional(t *testing.T) {
	q, err := Parse(`SELECT $x $l WHERE {
		$x instanceOf Place .
		OPTIONAL { $x label $l }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Optionals) != 1 || len(q.Optionals[0]) != 1 {
		t.Fatalf("Optionals = %v", q.Optionals)
	}
	if !strings.Contains(q.String(), "OPTIONAL {") {
		t.Errorf("String() lost OPTIONAL:\n%s", q)
	}
}

func TestEvalOptionalLeftJoin(t *testing.T) {
	q, err := Parse(`SELECT $x $l WHERE {
		$x instanceOf Place .
		OPTIONAL { $x label $l }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, optStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (left join keeps the unlabeled museum)", len(rows))
	}
	labeled := 0
	for _, b := range rows {
		if _, ok := b["l"]; ok {
			labeled++
		}
	}
	if labeled != 2 {
		t.Errorf("labeled rows = %d, want 2", labeled)
	}
}

func TestParseUnion(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE {
		$x instanceOf Place .
		{ $x near hotel } UNION { $x adjacentTo hotel }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Unions) != 1 || len(q.Unions[0]) != 2 {
		t.Fatalf("Unions = %v", q.Unions)
	}
	if !strings.Contains(q.String(), "UNION") {
		t.Errorf("String() lost UNION:\n%s", q)
	}
}

func TestEvalUnion(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE {
		$x instanceOf Place .
		{ $x near hotel } UNION { $x adjacentTo hotel }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, optStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, b := range rows {
		got[b["x"].Local()] = true
	}
	if len(got) != 2 || !got["park"] || !got["museum"] {
		t.Errorf("rows = %v, want park+museum", got)
	}
}

func TestEvalUnionThreeAlternatives(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE {
		{ $x near hotel } UNION { $x adjacentTo hotel } UNION { $x instanceOf Place }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, optStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// park appears via two alternatives; DISTINCT not requested.
	if len(rows) != 5 {
		t.Errorf("rows = %d, want 5 (bag semantics)", len(rows))
	}
}

func TestOptionalAndUnionRejectedInEmbeddedPatterns(t *testing.T) {
	if _, _, err := ParsePattern(`{ $x a b . OPTIONAL { $x c $d } }`, nil); err == nil {
		t.Error("OPTIONAL accepted in embedded pattern")
	}
	if _, _, err := ParsePattern(`{ { $x a b } UNION { $x c d } }`, nil); err == nil {
		t.Error("UNION accepted in embedded pattern")
	}
}

func TestParseOptionalErrors(t *testing.T) {
	bad := []string{
		`SELECT $x WHERE { OPTIONAL { FILTER($x = 1) } }`,
		`SELECT $x WHERE { { $x a b } }`,                          // lone braced group
		`SELECT $x WHERE { { $x a b } UNION { FILTER($x = 1) } }`, // filter in union
		`SELECT $x WHERE { OPTIONAL { OPTIONAL { $x a b } } }`,    // nesting
		`SELECT $x WHERE { OPTIONAL { { $x a b } UNION { $x c d } } }`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestOptionalStringRoundTrip(t *testing.T) {
	in := `SELECT $x $l WHERE {
		$x instanceOf Place .
		{ $x near hotel } UNION { $x adjacentTo hotel }
		OPTIONAL { $x label $l }
	}`
	q, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse of:\n%s\n%v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip:\n%s\nvs\n%s", q.String(), q2.String())
	}
}
