package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokVar    // $x or ?x
	TokIRI    // <...>
	TokString // "..."
	TokNumber
	TokPunct // { } ( ) . , ; [ ]
	TokOp    // && || ! = != < <= > >= + - *
	TokAnon  // []
)

// Tok is one lexed token.
type Tok struct {
	Kind TokKind
	Text string
	Num  float64
	Pos  int // byte offset in the input
}

// Lexer tokenizes SPARQL-like and OASSIS-QL query text. It is shared by
// this package's parser, the OASSIS-QL parser and the IX detection
// pattern parser.
type Lexer struct {
	in   string
	pos  int
	toks []Tok
	i    int
}

// NewLexer lexes the whole input eagerly and returns a token cursor, or
// an error describing the first bad token.
func NewLexer(in string) (*Lexer, error) {
	l := &Lexer{in: in}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l, nil
}

// Peek returns the current token without consuming it.
func (l *Lexer) Peek() Tok { return l.at(l.i) }

// PeekAhead returns the token n positions ahead (0 = current).
func (l *Lexer) PeekAhead(n int) Tok { return l.at(l.i + n) }

// Next consumes and returns the current token.
func (l *Lexer) Next() Tok {
	t := l.at(l.i)
	if t.Kind != TokEOF {
		l.i++
	}
	return t
}

func (l *Lexer) at(i int) Tok {
	if i < len(l.toks) {
		return l.toks[i]
	}
	return Tok{Kind: TokEOF, Pos: len(l.in)}
}

// Errf formats a parse error with position context.
func (l *Lexer) Errf(format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	t := l.Peek()
	line := 1 + strings.Count(l.in[:min(t.Pos, len(l.in))], "\n")
	return fmt.Errorf("line %d: %s", line, msg)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (l *Lexer) run() error {
	in := l.in
	for l.pos < len(in) {
		c := in[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#':
			// comment to end of line
			for l.pos < len(in) && in[l.pos] != '\n' {
				l.pos++
			}
		case c == '$' || c == '?':
			start := l.pos
			l.pos++
			for l.pos < len(in) && isIdentByte(in[l.pos]) {
				l.pos++
			}
			name := in[start+1 : l.pos]
			if name == "" {
				return fmt.Errorf("sparql: empty variable name at offset %d", start)
			}
			l.emit(Tok{Kind: TokVar, Text: name, Pos: start})
		case c == '<':
			start := l.pos
			end := strings.IndexByte(in[l.pos:], '>')
			// "<" is an IRI delimiter only when a ">" closes it with no
			// whitespace in between; otherwise it is the less-than
			// operator ("$s <= 400").
			if end < 0 || strings.ContainsAny(in[l.pos+1:l.pos+end], " \t\n") {
				l.lexOp()
				continue
			}
			body := in[l.pos+1 : l.pos+end]
			l.pos += end + 1
			l.emit(Tok{Kind: TokIRI, Text: body, Pos: start})
		case c == '"':
			start := l.pos
			s, n, err := lexString(in[l.pos:])
			if err != nil {
				return fmt.Errorf("sparql: %v at offset %d", err, start)
			}
			l.pos += n
			l.emit(Tok{Kind: TokString, Text: s, Pos: start})
		case c == '[' && l.pos+1 < len(in) && in[l.pos+1] == ']':
			l.emit(Tok{Kind: TokAnon, Text: "[]", Pos: l.pos})
			l.pos += 2
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(in) && (in[l.pos] >= '0' && in[l.pos] <= '9' || in[l.pos] == '.') {
				l.pos++
			}
			text := in[start:l.pos]
			// trailing '.' is a statement terminator, not part of the number
			text = strings.TrimSuffix(text, ".")
			l.pos = start + len(text)
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return fmt.Errorf("sparql: bad number %q at offset %d", text, start)
			}
			l.emit(Tok{Kind: TokNumber, Text: text, Num: f, Pos: start})
		case isIdentStartByte(c):
			start := l.pos
			for l.pos < len(in) {
				b := in[l.pos]
				if isIdentByte(b) {
					l.pos++
					continue
				}
				// OASSIS-QL entity names embed commas before underscores:
				// Forest_Hotel,_Buffalo,_NY
				if b == ',' && l.pos+1 < len(in) && in[l.pos+1] == '_' {
					l.pos++
					continue
				}
				break
			}
			l.emit(Tok{Kind: TokIdent, Text: in[start:l.pos], Pos: start})
		case strings.IndexByte("{}().,;", c) >= 0:
			l.emit(Tok{Kind: TokPunct, Text: string(c), Pos: l.pos})
			l.pos++
		case strings.IndexByte("&|!=<>+-*", c) >= 0:
			l.lexOp()
		default:
			if unicode.IsPrint(rune(c)) {
				return fmt.Errorf("sparql: unexpected character %q at offset %d", c, l.pos)
			}
			return fmt.Errorf("sparql: unexpected byte 0x%02x at offset %d", c, l.pos)
		}
	}
	return nil
}

func (l *Lexer) lexOp() {
	in := l.in
	start := l.pos
	two := ""
	if l.pos+1 < len(in) {
		two = in[l.pos : l.pos+2]
	}
	switch two {
	case "&&", "||", "!=", "<=", ">=", "==":
		l.pos += 2
		l.emit(Tok{Kind: TokOp, Text: two, Pos: start})
		return
	}
	l.emit(Tok{Kind: TokOp, Text: string(in[l.pos]), Pos: start})
	l.pos++
}

func (l *Lexer) emit(t Tok) { l.toks = append(l.toks, t) }

func isIdentStartByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentByte(c byte) bool {
	return isIdentStartByte(c) || c >= '0' && c <= '9' || c == '\'' || c == '-'
}

// lexString lexes a double-quoted string with backslash escapes,
// returning the unescaped value and the number of input bytes consumed.
func lexString(in string) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(in) {
		c := in[i]
		if c == '\\' {
			if i+1 >= len(in) {
				return "", 0, fmt.Errorf("dangling escape in string")
			}
			switch in[i+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return "", 0, fmt.Errorf("unsupported escape \\%c", in[i+1])
			}
			i += 2
			continue
		}
		if c == '"' {
			return b.String(), i + 1, nil
		}
		b.WriteByte(c)
		i++
	}
	return "", 0, fmt.Errorf("unterminated string")
}
