// Package sparql implements the SPARQL subset that NL2CM depends on: a
// parser and evaluator for SELECT queries with basic graph patterns,
// FILTER expressions, DISTINCT, ORDER BY, LIMIT and OFFSET.
//
// The engine serves two roles in the system. First, it evaluates the
// WHERE clause of OASSIS-QL queries against the general-knowledge
// ontology. Second, it is the execution core of the IX detection pattern
// language (paper §2.3): detection patterns are SPARQL-like selections
// over the dependency graph, with dedicated functions (POS, LEMMA, ...)
// and vocabulary membership tests provided through an Env.
package sparql

import (
	"fmt"
	"strings"

	"nl2cm/internal/rdf"
)

// Query is a parsed SELECT query.
type Query struct {
	// Vars lists the projected variable names; empty means "*" (all).
	Vars []string
	// Distinct removes duplicate rows.
	Distinct bool
	// Where is the basic graph pattern: triples that may contain
	// variables.
	Where []rdf.Triple
	// Optionals are OPTIONAL groups, each left-joined to the main
	// pattern: rows keep their bindings even when a group has no match.
	Optionals [][]rdf.Triple
	// Unions are union blocks; each block holds alternative basic graph
	// patterns whose solutions are combined.
	Unions [][][]rdf.Triple
	// Filters are the FILTER constraints, all of which must hold.
	Filters []Expr
	// GroupBy lists the grouping variable names. Empty with non-empty
	// Aggs means one global group over all solutions.
	GroupBy []string
	// Aggs are the aggregate computations evaluated per group. Their
	// aliases become ordinary output variables, usable in ORDER BY and
	// projected like pattern variables.
	Aggs []Aggregate
	// Having are post-grouping constraints over group variables and
	// aggregate aliases; rows of groups failing any constraint are
	// dropped (an erroring constraint drops the group, like FILTER).
	Having []Expr
	// OrderBy lists sort keys applied in order.
	OrderBy []OrderKey
	// Limit caps the number of rows; negative means unlimited.
	Limit int
	// Offset skips rows after ordering.
	Offset int
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  string
	Desc bool
}

// Aggregate is one aggregate computation: Func applied to Var within each
// group, bound to the alias As in the output rows. An empty Var means "*"
// and is only valid for COUNT.
type Aggregate struct {
	Func string // COUNT, SUM, AVG, MIN or MAX (upper-case)
	Var  string // argument variable; empty means * (COUNT only)
	As   string // output alias, bound in every group row
}

// AggFuncs names the supported aggregate functions.
var AggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// Aggregated reports whether the query has a grouping/aggregation step.
func (q *Query) Aggregated() bool { return len(q.GroupBy) > 0 || len(q.Aggs) > 0 }

func (a Aggregate) String() string {
	arg := "*"
	if a.Var != "" {
		arg = "$" + a.Var
	}
	return fmt.Sprintf("%s(%s) AS $%s", a.Func, arg, a.As)
}

// Validate checks the structural invariants every successfully parsed
// query satisfies: projected and sort variables are named, subjects and
// predicates are IRIs or variables (literals only bind in object
// position), variable terms carry names, filter expressions are present
// and the offset is non-negative. Fuzzing asserts it on parser output.
func (q *Query) Validate() error {
	for _, v := range q.Vars {
		if v == "" {
			return fmt.Errorf("sparql: empty projected variable name")
		}
	}
	groups := [][]rdf.Triple{q.Where}
	groups = append(groups, q.Optionals...)
	for _, block := range q.Unions {
		groups = append(groups, block...)
	}
	for _, g := range groups {
		for _, t := range g {
			if k := t.S.Kind(); k != rdf.KindIRI && k != rdf.KindVariable && k != rdf.KindBlank {
				return fmt.Errorf("sparql: subject of %s is a %s", t, k)
			}
			if k := t.P.Kind(); k != rdf.KindIRI && k != rdf.KindVariable {
				return fmt.Errorf("sparql: predicate of %s is a %s", t, k)
			}
			for _, term := range []rdf.Term{t.S, t.P, t.O} {
				if term.Kind() == rdf.KindVariable && term.Value() == "" {
					return fmt.Errorf("sparql: unnamed variable in %s", t)
				}
			}
		}
	}
	for _, f := range q.Filters {
		if f == nil {
			return fmt.Errorf("sparql: nil filter expression")
		}
	}
	if err := q.validateAggregation(groups); err != nil {
		return err
	}
	for _, k := range q.OrderBy {
		if k.Var == "" {
			return fmt.Errorf("sparql: empty ORDER BY variable")
		}
	}
	if q.Offset < 0 {
		return fmt.Errorf("sparql: negative offset %d", q.Offset)
	}
	return nil
}

// validateAggregation checks the grouping invariants: GROUP BY variables
// are defined by some pattern, aggregate functions are known, aliases are
// named, unique and distinct from pattern variables, HAVING only appears
// on aggregated queries, and — when aggregating — every projected
// variable is a group variable or an aggregate alias (other pattern
// variables have no single value per group).
func (q *Query) validateAggregation(groups [][]rdf.Triple) error {
	if !q.Aggregated() {
		if len(q.Having) > 0 {
			return fmt.Errorf("sparql: HAVING without GROUP BY or aggregates")
		}
		return nil
	}
	patternVars := map[string]bool{}
	for _, g := range groups {
		for _, t := range g {
			t.EachVar(func(v string) { patternVars[v] = true })
		}
	}
	grouped := map[string]bool{}
	for _, v := range q.GroupBy {
		if v == "" {
			return fmt.Errorf("sparql: empty GROUP BY variable")
		}
		if !patternVars[v] {
			return fmt.Errorf("sparql: GROUP BY of undefined variable $%s", v)
		}
		grouped[v] = true
	}
	aliases := map[string]bool{}
	for _, a := range q.Aggs {
		if !AggFuncs[a.Func] {
			return fmt.Errorf("sparql: unknown aggregate function %s()", a.Func)
		}
		if a.Var == "" && a.Func != "COUNT" {
			return fmt.Errorf("sparql: %s(*) is not valid; only COUNT takes *", a.Func)
		}
		if a.As == "" {
			return fmt.Errorf("sparql: aggregate %s has no output alias", a.Func)
		}
		if patternVars[a.As] {
			return fmt.Errorf("sparql: aggregate alias $%s collides with a pattern variable", a.As)
		}
		if aliases[a.As] {
			return fmt.Errorf("sparql: duplicate aggregate alias $%s", a.As)
		}
		aliases[a.As] = true
	}
	for _, v := range q.Vars {
		if !grouped[v] && !aliases[v] {
			return fmt.Errorf("sparql: projected variable $%s is neither grouped nor an aggregate alias", v)
		}
	}
	for _, h := range q.Having {
		if h == nil {
			return fmt.Errorf("sparql: nil HAVING expression")
		}
	}
	return nil
}

// String reconstructs a textual form of the query.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(q.Vars) == 0 {
		b.WriteString("*")
	} else {
		byAlias := map[string]Aggregate{}
		for _, a := range q.Aggs {
			byAlias[a.As] = a
		}
		for i, v := range q.Vars {
			if i > 0 {
				b.WriteByte(' ')
			}
			if a, ok := byAlias[v]; ok {
				b.WriteString(a.String())
			} else {
				b.WriteString("$" + v)
			}
		}
	}
	b.WriteString("\nWHERE {\n")
	for _, t := range q.Where {
		fmt.Fprintf(&b, "  %s %s %s .\n", termStr(t.S), termStr(t.P), termStr(t.O))
	}
	for _, block := range q.Unions {
		for i, alt := range block {
			if i > 0 {
				b.WriteString("  UNION\n")
			}
			b.WriteString("  {\n")
			for _, t := range alt {
				fmt.Fprintf(&b, "    %s %s %s .\n", termStr(t.S), termStr(t.P), termStr(t.O))
			}
			b.WriteString("  }\n")
		}
	}
	for _, opt := range q.Optionals {
		b.WriteString("  OPTIONAL {\n")
		for _, t := range opt {
			fmt.Fprintf(&b, "    %s %s %s .\n", termStr(t.S), termStr(t.P), termStr(t.O))
		}
		b.WriteString("  }\n")
	}
	for _, f := range q.Filters {
		fmt.Fprintf(&b, "  FILTER(%s)\n", f)
	}
	b.WriteString("}")
	if len(q.GroupBy) > 0 {
		b.WriteString("\nGROUP BY")
		for _, v := range q.GroupBy {
			b.WriteString(" $" + v)
		}
	}
	for _, h := range q.Having {
		fmt.Fprintf(&b, "\nHAVING(%s)", h)
	}
	for _, k := range q.OrderBy {
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		fmt.Fprintf(&b, "\nORDER BY %s($%s)", dir, k.Var)
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, "\nLIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, "\nOFFSET %d", q.Offset)
	}
	return b.String()
}

// termStr renders a term in query syntax: bare local names for IRIs in
// the default namespace would require context, so IRIs print in angle
// brackets and variables with "$".
func termStr(t rdf.Term) string { return t.String() }

// Binding is one solution row: variable name to bound term.
type Binding map[string]rdf.Term

// Clone copies the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Get returns the term bound to the variable, with ok reporting presence.
func (b Binding) Get(name string) (rdf.Term, bool) {
	t, ok := b[name]
	return t, ok
}
