package sparql

import (
	"math"

	"nl2cm/internal/rdf"
)

// Counter is an optional Source capability: a cheap cardinality estimate
// for a pattern (variables act as wildcards). *rdf.Store answers every
// bound-position combination from a posting-list length in O(1); the IX
// detector's GraphSource counts exactly over its per-relation edge
// index. Sources that implement it get cardinality-driven join planning;
// others fall back to the unbound-variable heuristic.
type Counter interface {
	CountMatch(pattern rdf.Triple) int
}

// planBGP orders the triple patterns of one basic graph pattern for a
// left-deep streaming join. bound names the variables the seed rows may
// already bind (the planner treats them as selective join keys, not as
// wildcards). The input slice is not modified.
//
// With a Counter source the plan is greedy by estimated result size:
// at each step the cheapest remaining pattern is picked, where a
// pattern's base estimate is the index count with only its concrete
// positions bound, discounted for every already-bound variable position
// (a bound variable turns an enumeration into a per-row lookup).
// Patterns disconnected from the bound set are penalized so cartesian
// products run last. Ties resolve by input position, keeping plans
// deterministic.
//
// Without a Counter the order is the previous evaluator's heuristic —
// fewest unbound variables first, ties by input position — so sources
// like scripted test doubles see identical behavior.
func planBGP(patterns []rdf.Triple, bound map[string]bool, src Source) []rdf.Triple {
	if len(patterns) <= 1 {
		return patterns
	}
	counter, _ := src.(Counter)
	isBound := map[string]bool{}
	for v := range bound {
		isBound[v] = true
	}
	remaining := make([]rdf.Triple, len(patterns))
	copy(remaining, patterns)
	plan := make([]rdf.Triple, 0, len(patterns))
	for len(remaining) > 0 {
		best, bestCost := 0, math.Inf(1)
		for i, p := range remaining {
			var cost float64
			if counter != nil {
				cost = estimateCost(p, isBound, counter)
			} else {
				unbound := 0
				p.EachVar(func(v string) {
					if !isBound[v] {
						unbound++
					}
				})
				cost = float64(unbound)
			}
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		p := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		plan = append(plan, p)
		p.EachVar(func(v string) { isBound[v] = true })
	}
	return plan
}

// estimateCost scores one pattern against the current bound-variable
// set. The base is the index cardinality with concrete positions only;
// each bound variable divides it (the join key makes the per-row match
// far smaller than the whole posting list), and a pattern sharing no
// bound variable at all is pushed behind connected ones by a large
// cartesian-product penalty.
func estimateCost(p rdf.Triple, bound map[string]bool, counter Counter) float64 {
	wildcard := func(t rdf.Term, name string) rdf.Term {
		if t.IsVar() {
			return rdf.NewVar(name)
		}
		return t
	}
	base := float64(counter.CountMatch(rdf.T(
		wildcard(p.S, "s"), wildcard(p.P, "p"), wildcard(p.O, "o"))))
	boundVars, unboundVars := 0, 0
	p.EachVar(func(v string) {
		if bound[v] {
			boundVars++
		} else {
			unboundVars++
		}
	})
	cost := base
	for i := 0; i < boundVars; i++ {
		// Each bound position acts as an equality selection. The divisor
		// is a fixed selectivity guess; exact per-value counts are
		// unknown at plan time because the join value differs per row.
		cost /= 16
	}
	if boundVars == 0 && unboundVars > 0 && len(bound) > 0 {
		// Disconnected from everything bound so far: a cartesian
		// product multiplies the intermediate result by this pattern's
		// full cardinality. Schedule after connected patterns.
		cost = cost*1e6 + 1e6
	}
	return cost
}

// compiled is the per-Eval query compilation: a dense slot table over
// every variable that a triple pattern anywhere in the query can bind.
type compiled struct {
	slots map[string]int
	names []string
}

// maxSlots is the widest query the slotted row representation handles;
// wider queries fall back to EvalReference (the row's bound-mask is one
// 64-bit word).
const maxSlots = 64

// compileQuery assigns slots in first-appearance order, or reports
// ok=false when the query has too many distinct pattern variables.
func compileQuery(q *Query) (*compiled, bool) {
	c := &compiled{slots: map[string]int{}}
	add := func(patterns []rdf.Triple) {
		for _, p := range patterns {
			p.EachVar(func(v string) {
				if _, ok := c.slots[v]; !ok {
					c.slots[v] = len(c.names)
					c.names = append(c.names, v)
				}
			})
		}
	}
	add(q.Where)
	for _, block := range q.Unions {
		for _, alt := range block {
			add(alt)
		}
	}
	for _, opt := range q.Optionals {
		add(opt)
	}
	return c, len(c.names) <= maxSlots
}

// exprVars collects the variable names referenced by a filter
// expression. ok is false for expression types the walker does not know,
// in which case the caller must not push the filter into the join.
func exprVars(e Expr, out map[string]bool) bool {
	switch x := e.(type) {
	case *VarExpr:
		out[x.Name] = true
	case *LitExpr:
	case *NotExpr:
		return exprVars(x.X, out)
	case *BinExpr:
		return exprVars(x.L, out) && exprVars(x.R, out)
	case *CallExpr:
		for _, a := range x.Args {
			if !exprVars(a, out) {
				return false
			}
		}
	case *InExpr:
		if !exprVars(x.X, out) {
			return false
		}
		for _, it := range x.List {
			if !exprVars(it, out) {
				return false
			}
		}
	default:
		return false
	}
	return true
}
