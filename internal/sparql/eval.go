package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nl2cm/internal/rdf"
)

// Source is any triple collection that can enumerate matches for a
// pattern. *rdf.Store implements it; the IX detector provides an adapter
// that exposes a dependency graph as triples. Sources that additionally
// implement Counter get cardinality-driven join planning.
type Source interface {
	MatchFunc(pattern rdf.Triple, fn func(rdf.Triple) bool)
}

// pin resolves a mutable source to an immutable point-in-time view when
// the source supports it (*rdf.ShardedStore does). Both evaluators pin
// once at query start, so planning and every join step of one query see
// a single epoch even while write batches publish concurrently;
// mid-query reads never mix epochs.
func pin(src Source) Source {
	if s, ok := src.(interface{ Snapshot() *rdf.Snapshot }); ok {
		return s.Snapshot()
	}
	return src
}

// Eval evaluates the query against the source and returns the solution
// bindings, projected, filtered, ordered and limited per the query.
//
// Internally rows are slot-indexed term slices that share storage with
// their parent row until a join step binds a new variable; the map-form
// Binding is only materialized at this API boundary. Basic graph
// patterns stream depth-first through the planned join order without
// materializing per-pattern intermediate row sets, and filters whose
// variables are all bound by the main pattern run inside the join,
// pruning rows before they fan out. The result multiset is identical to
// EvalReference's (assuming pure Env functions and sets); row order
// before ORDER BY is unspecified in both.
func Eval(q *Query, src Source, env *Env) ([]Binding, error) {
	if src == nil {
		return nil, fmt.Errorf("sparql: nil source")
	}
	src = pin(src)
	spec, err := aggregationSpec(q)
	if err != nil {
		return nil, err
	}
	c, ok := compileQuery(q)
	if ok && spec != nil {
		// Aggregate aliases occupy slots of their own so that HAVING,
		// ORDER BY and projection address them like pattern variables.
		for _, a := range spec.aggs {
			if _, exists := c.slots[a.As]; !exists {
				c.slots[a.As] = len(c.names)
				c.names = append(c.names, a.As)
			}
		}
		ok = len(c.names) <= maxSlots
	}
	if !ok {
		// Wider than the slotted row's 64-variable bound mask.
		return EvalReference(q, src, env)
	}
	e := &exec{c: c, src: src, env: env, view: &rowView{c: c}}

	// Main basic graph pattern: plan once, attach every filter whose
	// variables are certainly bound by it, stream the join.
	plan := planBGP(q.Where, nil, src)
	steps, postFilters := attachFilters(plan, q.Filters, c)
	rows := e.extendAll(nil, steps)
	if len(q.Where) == 0 {
		rows = []row{{}} // one empty row, as the empty BGP's solution
	}

	// Union blocks: each block extends the rows through any of its
	// alternative patterns (bag semantics: a row reached through two
	// alternatives appears twice). mayBind tracks which variables earlier
	// parts may have bound, informing the planner; it is only needed when
	// there is anything beyond the main pattern to plan.
	var mayBind map[string]bool
	markVars := func(patterns []rdf.Triple) {
		for _, p := range patterns {
			p.EachVar(func(v string) { mayBind[v] = true })
		}
	}
	if len(q.Unions) > 0 || len(q.Optionals) > 0 {
		mayBind = map[string]bool{}
		markVars(q.Where)
	}
	for _, block := range q.Unions {
		var merged []row
		for _, alt := range block {
			altSteps := toSteps(planBGP(alt, mayBind, src))
			for _, r := range rows {
				merged = e.extend(r, altSteps, 0, merged)
			}
		}
		for _, alt := range block {
			markVars(alt)
		}
		rows = merged
		if len(rows) == 0 {
			break
		}
	}

	// Optional groups: left join — a row without a match survives
	// unchanged. Each group is planned once, not once per row.
	for _, opt := range q.Optionals {
		optSteps := toSteps(planBGP(opt, mayBind, src))
		joined := make([]row, 0, len(rows))
		for _, r := range rows {
			n := len(joined)
			joined = e.extend(r, optSteps, 0, joined)
			if len(joined) == n {
				joined = append(joined, r)
			}
		}
		markVars(opt)
		rows = joined
	}

	// Filters that could not run inside the main join (variables bound
	// only by OPTIONAL/UNION parts, or not at all).
	if len(postFilters) > 0 {
		kept := rows[:0]
		for _, r := range rows {
			if e.filtersPass(postFilters, r) {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	// Grouping and aggregation: collapse rows into per-group rows binding
	// the GROUP BY variables and aggregate aliases, then apply HAVING.
	if spec != nil {
		rows = e.aggregateRows(spec, rows)
	}

	// Order. Per SPARQL ordering semantics, an unbound sort variable
	// sorts before any bound value (so under DESC it sorts last); two
	// unbound values compare equal and fall through to the next key.
	if len(q.OrderBy) > 0 {
		keys := make([]struct {
			slot int
			has  bool
			desc bool
		}, len(q.OrderBy))
		for i, k := range q.OrderBy {
			keys[i].slot, keys[i].has = c.slots[k.Var]
			keys[i].desc = k.Desc
		}
		sort.SliceStable(rows, func(i, j int) bool {
			for _, k := range keys {
				if !k.has {
					continue // variable no pattern can bind: all equal
				}
				ti, iok := rows[i].get(k.slot)
				tj, jok := rows[j].get(k.slot)
				if !iok || !jok {
					if iok == jok {
						continue
					}
					less := !iok // unbound before bound
					if k.desc {
						return !less
					}
					return less
				}
				c := ti.Compare(tj)
				if c == 0 {
					continue
				}
				if k.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// Projection: narrowing the bound mask is enough — dropped slots are
	// invisible to DISTINCT and to materialization.
	if len(q.Vars) > 0 {
		var projMask uint64
		for _, v := range q.Vars {
			if slot, ok := c.slots[v]; ok {
				projMask |= 1 << slot
			}
		}
		for i := range rows {
			rows[i].mask &= projMask
		}
	}

	// Distinct.
	if q.Distinct {
		seen := map[string]bool{}
		kept := rows[:0]
		var sb strings.Builder
		for _, r := range rows {
			sb.Reset()
			writeRowKey(&sb, r, c)
			key := sb.String()
			if !seen[key] {
				seen[key] = true
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	// Offset / limit.
	if q.Offset > 0 {
		if q.Offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(rows) {
		rows = rows[:q.Limit]
	}

	// Materialize map-form bindings at the API boundary. The output is
	// freshly allocated, so OFFSET/LIMIT windows never pin a larger
	// backing array.
	out := make([]Binding, len(rows))
	for i, r := range rows {
		b := make(Binding)
		for slot, name := range c.names {
			if r.mask&(1<<slot) != 0 {
				b[name] = r.vals[slot]
			}
		}
		out[i] = b
	}
	return out, nil
}

// EvalPattern evaluates a bare graph pattern (triples + filters) and
// returns all satisfying bindings.
func EvalPattern(where []rdf.Triple, filters []Expr, src Source, env *Env) ([]Binding, error) {
	q := &Query{Where: where, Filters: filters, Limit: -1}
	return Eval(q, src, env)
}

// row is one solution during evaluation: terms indexed by compiled slot,
// with a bitmask of bound slots. Extending a row copies the term slice
// once (copy-on-write); rows that bind nothing new share their parent's
// storage.
type row struct {
	vals []rdf.Term
	mask uint64
}

func (r row) get(slot int) (rdf.Term, bool) {
	if r.mask&(1<<slot) == 0 {
		return rdf.Term{}, false
	}
	return r.vals[slot], true
}

// rowView adapts a row to the Vars interface for filter evaluation; one
// view per execution is re-pointed between rows to avoid allocating an
// adapter per filter call.
type rowView struct {
	c *compiled
	r row
}

// Get implements Vars.
func (v *rowView) Get(name string) (rdf.Term, bool) {
	slot, ok := v.c.slots[name]
	if !ok {
		return rdf.Term{}, false
	}
	return v.r.get(slot)
}

// planStep is one joined pattern plus the filters that become decidable
// once its variables are bound.
type planStep struct {
	pat     rdf.Triple
	filters []Expr
}

func toSteps(plan []rdf.Triple) []planStep {
	steps := make([]planStep, len(plan))
	for i, p := range plan {
		steps[i].pat = p
	}
	return steps
}

// attachFilters assigns each filter to the earliest step of the main
// plan at which all its variables are bound. Filters referencing
// variables outside the plan (or expression types the variable walker
// does not know) are returned for post-join evaluation. Pushing a filter
// into the join is sound because variables bind exactly once — later
// OPTIONAL/UNION extensions cannot change a slot the main pattern bound
// — and Env functions and sets are assumed pure.
func attachFilters(plan []rdf.Triple, filters []Expr, c *compiled) ([]planStep, []Expr) {
	steps := toSteps(plan)
	var post []Expr
	for _, f := range filters {
		vars := map[string]bool{}
		if !exprVars(f, vars) {
			post = append(post, f)
			continue
		}
		at := -1
		if len(steps) > 0 {
			need := len(vars)
			have := map[string]bool{}
			for i, st := range steps {
				st.pat.EachVar(func(v string) {
					if vars[v] {
						have[v] = true
					}
				})
				if len(have) == need {
					at = i
					break
				}
			}
		}
		if at < 0 {
			post = append(post, f)
			continue
		}
		steps[at].filters = append(steps[at].filters, f)
	}
	return steps, post
}

// exec carries the per-Eval state shared by the join recursion.
type exec struct {
	c    *compiled
	src  Source
	env  *Env
	view *rowView
}

// extendAll runs every seed row (nil means the single empty row) through
// the join steps and returns the produced rows.
func (e *exec) extendAll(seed []row, steps []planStep) []row {
	var out []row
	if seed == nil {
		return e.extend(row{}, steps, 0, out)
	}
	for _, r := range seed {
		out = e.extend(r, steps, 0, out)
	}
	return out
}

// extend streams r depth-first through steps[depth:], appending every
// complete solution to out. Pattern matches flow straight into the next
// join level; no per-level row set is materialized.
func (e *exec) extend(r row, steps []planStep, depth int, out []row) []row {
	if depth == len(steps) {
		return append(out, r)
	}
	st := steps[depth]
	concrete := e.substituteRow(st.pat, r)
	e.src.MatchFunc(concrete, func(t rdf.Triple) bool {
		nr, ok := e.unifyRow(concrete, t, r)
		if !ok {
			return true
		}
		if len(st.filters) > 0 && !e.filtersPass(st.filters, nr) {
			return true
		}
		out = e.extend(nr, steps, depth+1, out)
		return true
	})
	return out
}

// substituteRow replaces variables the row binds with their terms.
func (e *exec) substituteRow(p rdf.Triple, r row) rdf.Triple {
	sub := func(t rdf.Term) rdf.Term {
		if t.IsVar() {
			if bt, ok := r.get(e.c.slots[t.Value()]); ok {
				return bt
			}
		}
		return t
	}
	return rdf.T(sub(p.S), sub(p.P), sub(p.O))
}

// unifyRow extends r with the variable assignments implied by matching
// pattern p against ground triple t. The term slice is copied at most
// once, on the first new binding; a repeated variable must take the same
// value in all positions.
func (e *exec) unifyRow(p rdf.Triple, t rdf.Triple, r row) (row, bool) {
	nr := r
	copied := false
	bind := func(pt, gt rdf.Term) bool {
		if !pt.IsVar() {
			return pt.Equal(gt)
		}
		slot := e.c.slots[pt.Value()]
		if prev, ok := nr.get(slot); ok {
			return prev.Equal(gt)
		}
		if !copied {
			nv := make([]rdf.Term, len(e.c.names))
			copy(nv, nr.vals)
			nr.vals = nv
			copied = true
		}
		nr.vals[slot] = gt
		nr.mask |= 1 << slot
		return true
	}
	if !bind(p.S, t.S) || !bind(p.P, t.P) || !bind(p.O, t.O) {
		return row{}, false
	}
	return nr, true
}

// filtersPass reports whether the row satisfies every filter; an
// erroring filter removes the row, per SPARQL semantics for type errors.
func (e *exec) filtersPass(filters []Expr, r row) bool {
	e.view.r = r
	for _, f := range filters {
		v, err := f.Eval(e.view, e.env)
		if err != nil || !v.Truthy() {
			return false
		}
	}
	return true
}

// BindingKey returns a canonical, collision-free key for a binding's
// (variable, term) set, suitable for DISTINCT-style deduplication. Every
// variable-length component is length-prefixed, so no choice of variable
// names or term contents can make two distinct bindings collide.
func BindingKey(b Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(strconv.Itoa(len(k)))
		sb.WriteByte(':')
		sb.WriteString(k)
		writeTermKey(&sb, b[k])
	}
	return sb.String()
}

// writeRowKey writes the collision-free key of a row's bound slots. The
// slot table is fixed for the whole query, so the slot index substitutes
// for the variable name.
func writeRowKey(sb *strings.Builder, r row, c *compiled) {
	for slot := range c.names {
		if r.mask&(1<<slot) == 0 {
			continue
		}
		sb.WriteString(strconv.Itoa(slot))
		writeTermKey(sb, r.vals[slot])
	}
}

// writeTermKey writes a length-prefixed encoding of every term field.
func writeTermKey(sb *strings.Builder, t rdf.Term) {
	sb.WriteByte(byte('0' + t.Kind()))
	for _, part := range [3]string{t.Value(), t.Datatype(), t.Lang()} {
		sb.WriteString(strconv.Itoa(len(part)))
		sb.WriteByte(':')
		sb.WriteString(part)
	}
}
