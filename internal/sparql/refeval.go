package sparql

import (
	"fmt"

	"nl2cm/internal/rdf"
)

// EvalReference is the retained naive evaluator: map-backed bindings
// cloned on every unification, join order chosen by counting unbound
// variables, OPTIONAL groups re-planned per row. It computes the same
// solution multiset as Eval and serves two purposes: it is the oracle of
// the differential property tests that pin the optimized evaluator's
// semantics, and the fallback for queries with more distinct pattern
// variables than the slotted row representation supports.
func EvalReference(q *Query, src Source, env *Env) ([]Binding, error) {
	src = pin(src)
	spec, err := aggregationSpec(q)
	if err != nil {
		return nil, err
	}
	rows, err := refEvalBGP(q.Where, src)
	if err != nil {
		return nil, err
	}
	// Union blocks: each block extends the rows through any of its
	// alternative patterns.
	for _, block := range q.Unions {
		var merged []Binding
		for _, alt := range block {
			ext, err := refExtendBGP(rows, alt, src)
			if err != nil {
				return nil, err
			}
			merged = append(merged, ext...)
		}
		rows = merged
		if len(rows) == 0 {
			break
		}
	}
	// Optional groups: left join — a row without a match survives
	// unchanged.
	for _, opt := range q.Optionals {
		var joined []Binding
		for _, b := range rows {
			ext, err := refExtendBGP([]Binding{b}, opt, src)
			if err != nil {
				return nil, err
			}
			if len(ext) == 0 {
				joined = append(joined, b)
			} else {
				joined = append(joined, ext...)
			}
		}
		rows = joined
	}
	// Filters.
	if len(q.Filters) > 0 {
		var kept []Binding
		for _, b := range rows {
			ok := true
			for _, f := range q.Filters {
				v, err := f.Eval(b, env)
				if err != nil {
					// An erroring filter removes the row, per SPARQL
					// semantics for type errors.
					ok = false
					break
				}
				if !v.Truthy() {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, b)
			}
		}
		rows = kept
	}
	// Grouping and aggregation, then HAVING, before ordering.
	if spec != nil {
		rows = refAggregate(spec, rows, env)
	}
	// Order. Per SPARQL ordering semantics, an unbound sort variable
	// sorts before any bound value (so under DESC it sorts last); two
	// unbound values compare equal and fall through to the next key.
	SortBindings(rows, q.OrderBy)
	// Projection.
	if len(q.Vars) > 0 {
		proj := make([]Binding, len(rows))
		for i, b := range rows {
			nb := make(Binding, len(q.Vars))
			for _, v := range q.Vars {
				if t, ok := b[v]; ok {
					nb[v] = t
				}
			}
			proj[i] = nb
		}
		rows = proj
	}
	// Distinct.
	if q.Distinct {
		seen := map[string]bool{}
		var kept []Binding
		for _, b := range rows {
			key := BindingKey(b)
			if !seen[key] {
				seen[key] = true
				kept = append(kept, b)
			}
		}
		rows = kept
	}
	// Offset / limit. The retained window is copied so the full result's
	// backing array does not outlive the slice handed to the caller.
	if q.Offset > 0 || (q.Limit >= 0 && q.Limit < len(rows)) {
		if q.Offset >= len(rows) {
			return nil, nil
		}
		w := rows[q.Offset:]
		if q.Limit >= 0 && q.Limit < len(w) {
			w = w[:q.Limit]
		}
		out := make([]Binding, len(w))
		copy(out, w)
		rows = out
	}
	return rows, nil
}

// refEvalBGP joins the triple patterns left-to-right, at each step
// choosing the most selective remaining pattern (fewest unbound
// variables).
func refEvalBGP(patterns []rdf.Triple, src Source) ([]Binding, error) {
	return refExtendBGP([]Binding{{}}, patterns, src)
}

// refExtendBGP extends existing solution rows with the triple patterns,
// joining on shared variables.
func refExtendBGP(seed []Binding, patterns []rdf.Triple, src Source) ([]Binding, error) {
	if src == nil {
		return nil, fmt.Errorf("sparql: nil source")
	}
	if len(patterns) == 0 {
		return seed, nil
	}
	remaining := make([]rdf.Triple, len(patterns))
	copy(remaining, patterns)
	rows := seed
	bound := map[string]bool{}
	for _, b := range seed {
		for v := range b {
			bound[v] = true
		}
	}
	for len(remaining) > 0 {
		// Pick the pattern with the fewest unbound variables.
		best, bestScore := 0, -1
		for i, p := range remaining {
			score := 0
			for _, v := range p.Vars() {
				if !bound[v] {
					score++
				}
			}
			if bestScore == -1 || score < bestScore {
				best, bestScore = i, score
			}
		}
		p := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		for _, v := range p.Vars() {
			bound[v] = true
		}
		var next []Binding
		for _, b := range rows {
			concrete := substitute(p, b)
			src.MatchFunc(concrete, func(t rdf.Triple) bool {
				nb, ok := unify(concrete, t, b)
				if ok {
					next = append(next, nb)
				}
				return true
			})
		}
		rows = next
		if len(rows) == 0 {
			return nil, nil
		}
	}
	return rows, nil
}

// substitute replaces bound variables in the pattern with their terms.
func substitute(p rdf.Triple, b Binding) rdf.Triple {
	sub := func(t rdf.Term) rdf.Term {
		if t.IsVar() {
			if bt, ok := b[t.Value()]; ok {
				return bt
			}
		}
		return t
	}
	return rdf.T(sub(p.S), sub(p.P), sub(p.O))
}

// unify extends binding b with the variable assignments implied by
// matching pattern p against ground triple t. A repeated variable must
// take the same value in all positions.
func unify(p rdf.Triple, t rdf.Triple, b Binding) (Binding, bool) {
	nb := b.Clone()
	bind := func(pt, gt rdf.Term) bool {
		if !pt.IsVar() {
			return pt.Equal(gt)
		}
		if prev, ok := nb[pt.Value()]; ok {
			return prev.Equal(gt)
		}
		nb[pt.Value()] = gt
		return true
	}
	if !bind(p.S, t.S) || !bind(p.P, t.P) || !bind(p.O, t.O) {
		return nil, false
	}
	return nb, true
}
