package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nl2cm/internal/rdf"
)

// This file holds the grouping/aggregation step shared by both
// evaluators: the normalized aggregation spec (HAVING aggregate calls
// hoisted into hidden Aggregate entries), the per-group accumulator, and
// the semantics both implementations must agree on:
//
//   - Grouping keys are the GROUP BY variables; an unbound group
//     variable is its own key component, distinct from every bound value.
//     No GROUP BY with aggregates means one global group — which exists
//     (COUNT = 0) even over zero input rows.
//   - COUNT(*) counts rows; COUNT($v) counts rows where $v is bound.
//   - SUM/AVG accumulate the numeric values of bound terms (non-numeric
//     terms are ignored); SUM is an xsd:integer when every contribution
//     is an integer, else an xsd:double; AVG is always an xsd:double;
//     both are the integer 0 over no numeric contributions.
//   - MIN/MAX return the original bound term that is least/greatest
//     under the typed rdf.Term.Compare ordering (numbers before strings,
//     numeric forms compared by value), or stay unbound in an empty
//     column.
//   - HAVING expressions run per group row — group variables and
//     aggregate aliases are bound — and an erroring expression drops the
//     group, like FILTER.
//
// Output rows carry exactly the group variables and aggregate aliases;
// ORDER BY, projection, DISTINCT and OFFSET/LIMIT then apply unchanged.

// AggRefExpr references an aggregate's per-group result inside a HAVING
// expression. It evaluates to the term bound to the aggregate's alias,
// and prints as the original call, so Query.String round-trips.
type AggRefExpr struct{ Agg Aggregate }

// Eval implements Expr.
func (e *AggRefExpr) Eval(b Vars, _ *Env) (Value, error) {
	t, ok := b.Get(e.Agg.As)
	if !ok {
		return Value{}, fmt.Errorf("sparql: aggregate %s unbound in group", e.Agg)
	}
	return TermVal(t), nil
}

func (e *AggRefExpr) String() string {
	arg := "*"
	if e.Agg.Var != "" {
		arg = "$" + e.Agg.Var
	}
	return e.Agg.Func + "(" + arg + ")"
}

// freshAlias derives an output alias for an aggregate without an
// explicit AS: count, count_x, sum_x, ... suffixed with _2, _3 … until
// it collides with nothing the taken predicate knows.
func freshAlias(fn, varName string, taken func(string) bool) string {
	base := strings.ToLower(fn)
	if varName != "" {
		base += "_" + varName
	}
	name := base
	for i := 2; taken(name); i++ {
		name = fmt.Sprintf("%s_%d", base, i)
	}
	return name
}

// resolveHavingAggs rewrites aggregate calls inside HAVING expressions
// into AggRefExpr references, reusing an existing Aggregate with the
// same function and argument or appending a hidden one (hidden aliases
// never join the projection). The inputs are not modified.
func resolveHavingAggs(having []Expr, aggs []Aggregate, patternVars map[string]bool) ([]Expr, []Aggregate, error) {
	out := make([]Aggregate, len(aggs))
	copy(out, aggs)
	resolve := func(fn, varName string) Aggregate {
		for _, a := range out {
			if a.Func == fn && a.Var == varName {
				return a
			}
		}
		alias := freshAlias(fn, varName, func(name string) bool {
			if patternVars[name] {
				return true
			}
			for _, a := range out {
				if a.As == name {
					return true
				}
			}
			return false
		})
		a := Aggregate{Func: fn, Var: varName, As: alias}
		out = append(out, a)
		return a
	}
	rewritten := make([]Expr, len(having))
	for i, h := range having {
		e, err := rewriteAggCalls(h, resolve)
		if err != nil {
			return nil, nil, err
		}
		rewritten[i] = e
	}
	return rewritten, out, nil
}

// rewriteAggCalls walks an expression, replacing every aggregate-named
// CallExpr with the AggRefExpr the resolve callback assigns. An existing
// AggRefExpr is re-resolved too, so a programmatically built expression
// referencing an aggregate the query does not list still gets a hidden
// Aggregate entry instead of evaluating against an unbound alias.
func rewriteAggCalls(e Expr, resolve func(fn, varName string) Aggregate) (Expr, error) {
	switch x := e.(type) {
	case *AggRefExpr:
		return &AggRefExpr{Agg: resolve(x.Agg.Func, x.Agg.Var)}, nil
	case *CallExpr:
		fn := strings.ToUpper(x.Name)
		if AggFuncs[fn] {
			varName := ""
			switch len(x.Args) {
			case 0:
				if fn != "COUNT" {
					return nil, fmt.Errorf("%s(*) is not valid; only COUNT takes *", fn)
				}
			case 1:
				v, ok := x.Args[0].(*VarExpr)
				if !ok {
					return nil, fmt.Errorf("%s() takes a variable argument", fn)
				}
				varName = v.Name
			default:
				return nil, fmt.Errorf("%s() takes one argument", fn)
			}
			return &AggRefExpr{Agg: resolve(fn, varName)}, nil
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := rewriteAggCalls(a, resolve)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &CallExpr{Name: x.Name, Args: args}, nil
	case *NotExpr:
		nx, err := rewriteAggCalls(x.X, resolve)
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: nx}, nil
	case *BinExpr:
		l, err := rewriteAggCalls(x.L, resolve)
		if err != nil {
			return nil, err
		}
		r, err := rewriteAggCalls(x.R, resolve)
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: x.Op, L: l, R: r}, nil
	case *InExpr:
		nx, err := rewriteAggCalls(x.X, resolve)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, it := range x.List {
			ni, err := rewriteAggCalls(it, resolve)
			if err != nil {
				return nil, err
			}
			list[i] = ni
		}
		return &InExpr{X: nx, SetName: x.SetName, List: list, Negated: x.Negated}, nil
	default:
		return e, nil
	}
}

// aggSpec is the normalized grouping step of one query.
type aggSpec struct {
	groupBy []string
	aggs    []Aggregate
	having  []Expr
}

// aggregationSpec resolves a query's grouping step without modifying the
// query. It returns nil when the query has none. Parsed queries arrive
// pre-normalized (no aggregate calls left in HAVING), so the rewrite is
// a no-op for them; programmatically built queries may still carry raw
// calls and get them hoisted here.
func aggregationSpec(q *Query) (*aggSpec, error) {
	if !q.Aggregated() && len(q.Having) == 0 {
		return nil, nil
	}
	having, aggs, err := resolveHavingAggs(q.Having, q.Aggs, q.patternVars())
	if err != nil {
		return nil, fmt.Errorf("sparql: %w", err)
	}
	return &aggSpec{groupBy: q.GroupBy, aggs: aggs, having: having}, nil
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	count  int64
	n      int64 // numeric contributions (SUM/AVG)
	sumI   int64
	sumF   float64
	allInt bool
	best   rdf.Term // MIN/MAX candidate
	has    bool
}

func (s *aggState) add(a Aggregate, t rdf.Term, bound bool) {
	switch a.Func {
	case "COUNT":
		if a.Var == "" || bound {
			s.count++
		}
	case "SUM", "AVG":
		if !bound {
			return
		}
		f, ok := t.Float()
		if !ok {
			return
		}
		s.n++
		s.sumF += f
		if i, ok := t.Int(); ok {
			s.sumI += i
		} else {
			s.allInt = false
		}
	case "MIN":
		if bound && (!s.has || t.Compare(s.best) < 0) {
			s.best, s.has = t, true
		}
	case "MAX":
		if bound && (!s.has || t.Compare(s.best) > 0) {
			s.best, s.has = t, true
		}
	}
}

// result materializes the accumulated value; ok=false means the alias
// stays unbound (MIN/MAX over an empty column).
func (s *aggState) result(a Aggregate) (rdf.Term, bool) {
	switch a.Func {
	case "COUNT":
		return rdf.NewIntLiteral(s.count), true
	case "SUM":
		if s.n == 0 {
			return rdf.NewIntLiteral(0), true
		}
		if s.allInt {
			return rdf.NewIntLiteral(s.sumI), true
		}
		return rdf.NewFloatLiteral(s.sumF), true
	case "AVG":
		if s.n == 0 {
			return rdf.NewIntLiteral(0), true
		}
		return rdf.NewFloatLiteral(s.sumF / float64(s.n)), true
	case "MIN", "MAX":
		return s.best, s.has
	}
	return rdf.Term{}, false
}

// aggArena hands out per-group aggregate-state slices from chunked
// blocks, so building many groups costs a handful of allocations instead
// of one per group. Blocks are abandoned (not grown) when full, so
// handed-out slices stay valid as more groups arrive.
type aggArena struct {
	n    int // states per group
	buf  []aggState
	used int
}

func newAggArena(n int) *aggArena { return &aggArena{n: n} }

func (a *aggArena) take() []aggState {
	if a.n == 0 {
		return nil
	}
	if len(a.buf)-a.used < a.n {
		a.buf = make([]aggState, 256*a.n)
		a.used = 0
	}
	s := a.buf[a.used : a.used+a.n : a.used+a.n]
	a.used += a.n
	for i := range s {
		s[i].allInt = true
	}
	return s
}

// termArena is the same chunked allocator for per-group slot-row term
// slices (the streaming evaluator's group representatives).
type termArena struct {
	w    int // row width
	buf  []rdf.Term
	used int
}

func newTermArena(w int) *termArena { return &termArena{w: w} }

func (a *termArena) take() []rdf.Term {
	if a.w == 0 {
		return nil
	}
	if len(a.buf)-a.used < a.w {
		a.buf = make([]rdf.Term, 256*a.w)
		a.used = 0
	}
	s := a.buf[a.used : a.used+a.w : a.used+a.w]
	a.used += a.w
	return s
}

// groupSizeHint sizes the group map and emission-order slice: most
// grouped queries collapse many rows per group, so a fraction of the row
// count avoids both rehashing and gross over-allocation.
func groupSizeHint(rows int) int {
	hint := rows/8 + 1
	if hint > 1024 {
		hint = 1024
	}
	return hint
}

// refAggregate is the reference evaluator's grouping step over map-form
// bindings. Groups emit in first-appearance order of their keys.
//
// The group key is assembled in a reused byte buffer and looked up via
// groups[string(key)] — the compiler elides that conversion's
// allocation — so only the first row of each group materializes a key
// string. At 100k rows this removes one allocation per row.
func refAggregate(spec *aggSpec, rows []Binding, env *Env) []Binding {
	type group struct {
		rep    Binding
		states []aggState
	}
	hint := groupSizeHint(len(rows))
	// Groups live in a slice in first-appearance order; the map holds
	// indexes into it, so no per-group pointer allocation and no separate
	// emission-order slice are needed.
	arr := make([]group, 0, hint)
	groups := make(map[string]int32, hint)
	states := newAggArena(len(spec.aggs))
	var keyBuf []byte
	for _, b := range rows {
		keyBuf = keyBuf[:0]
		for _, v := range spec.groupBy {
			t, ok := b[v]
			keyBuf = appendGroupKeyPart(keyBuf, t, ok)
		}
		idx, ok := groups[string(keyBuf)]
		if !ok {
			rep := make(Binding, len(spec.groupBy)+len(spec.aggs))
			for _, v := range spec.groupBy {
				if t, ok := b[v]; ok {
					rep[v] = t
				}
			}
			idx = int32(len(arr))
			arr = append(arr, group{rep: rep, states: states.take()})
			groups[string(keyBuf)] = idx
		}
		g := &arr[idx]
		for i, a := range spec.aggs {
			t, ok := b[a.Var]
			g.states[i].add(a, t, ok)
		}
	}
	if len(arr) == 0 && len(spec.groupBy) == 0 {
		// A global aggregate over zero rows still produces one group.
		arr = append(arr, group{rep: Binding{}, states: states.take()})
	}
	out := make([]Binding, 0, len(arr))
	for gi := range arr {
		g := &arr[gi]
		b := g.rep
		for i, a := range spec.aggs {
			if t, ok := g.states[i].result(a); ok {
				b[a.As] = t
			}
		}
		if havingPass(spec.having, b, env) {
			out = append(out, b)
		}
	}
	return out
}

// SortBindings orders map-form solution rows in place under the SPARQL
// ordering semantics both evaluators share: an unbound sort variable
// sorts before any bound value (so under DESC it sorts last), two
// unbound values compare equal and fall through to the next key, and
// bound terms compare under the typed rdf.Term.Compare ordering.
func SortBindings(rows []Binding, keys []OrderKey) {
	if len(keys) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			ti, iok := rows[i][k.Var]
			tj, jok := rows[j][k.Var]
			if !iok || !jok {
				if iok == jok {
					continue
				}
				less := !iok // unbound before bound
				if k.Desc {
					return !less
				}
				return less
			}
			c := ti.Compare(tj)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// AggregateBindings applies a query's analytic step — grouping,
// aggregates, HAVING, ORDER BY and the OFFSET/LIMIT window — to
// already-computed solution rows. It is the post-hoc counterpart of the
// grouping step inside the evaluators, for callers (the crowd engine)
// that interleave their own filtering between pattern matching and
// aggregation. Only the query's analytic fields are consulted; Where is
// read solely to resolve HAVING aggregate aliases against pattern
// variables. Rows are not modified; a fresh slice is returned whenever
// any step applies.
func AggregateBindings(q *Query, rows []Binding, env *Env) ([]Binding, error) {
	spec, err := aggregationSpec(q)
	if err != nil {
		return nil, err
	}
	if spec != nil {
		rows = refAggregate(spec, rows, env)
	} else if len(q.OrderBy) > 0 || q.Offset > 0 || q.Limit >= 0 {
		// Sorting and windowing reorder/retain in place below; keep the
		// caller's slice intact.
		rows = append([]Binding(nil), rows...)
	}
	SortBindings(rows, q.OrderBy)
	if q.Offset > 0 || (q.Limit >= 0 && q.Limit < len(rows)) {
		if q.Offset >= len(rows) {
			return nil, nil
		}
		w := rows[q.Offset:]
		if q.Limit >= 0 && q.Limit < len(w) {
			w = w[:q.Limit]
		}
		out := make([]Binding, len(w))
		copy(out, w)
		rows = out
	}
	return rows, nil
}

func havingPass(having []Expr, b Vars, env *Env) bool {
	for _, h := range having {
		v, err := h.Eval(b, env)
		if err != nil || !v.Truthy() {
			return false
		}
	}
	return true
}

// appendGroupKeyPart appends one group-key component: a bound marker so
// an unbound variable can never collide with any bound value, then the
// collision-free term encoding. The append-based form lets both grouping
// paths reuse one buffer across rows instead of allocating a string per
// row.
func appendGroupKeyPart(buf []byte, t rdf.Term, bound bool) []byte {
	if !bound {
		return append(buf, '-')
	}
	buf = append(buf, '+')
	return appendTermKey(buf, t)
}

// appendTermKey appends the length-prefixed encoding of every term field
// (the []byte counterpart of writeTermKey).
func appendTermKey(buf []byte, t rdf.Term) []byte {
	buf = append(buf, byte('0'+t.Kind()))
	for _, part := range [3]string{t.Value(), t.Datatype(), t.Lang()} {
		buf = strconv.AppendInt(buf, int64(len(part)), 10)
		buf = append(buf, ':')
		buf = append(buf, part...)
	}
	return buf
}

// aggregateRows is the streaming evaluator's grouping step over
// slot-indexed rows. Aggregate aliases occupy slots registered by
// compileQuery; output rows bind exactly the group slots and the alias
// slots. Groups emit in first-appearance order, like refAggregate.
func (e *exec) aggregateRows(spec *aggSpec, rows []row) []row {
	type group struct {
		rep    row
		states []aggState
	}
	groupSlots := make([]int, len(spec.groupBy))
	for i, v := range spec.groupBy {
		slot, ok := e.c.slots[v]
		if !ok {
			slot = -1 // variable no pattern binds: always unbound
		}
		groupSlots[i] = slot
	}
	argSlots := make([]int, len(spec.aggs))
	for i, a := range spec.aggs {
		slot, ok := e.c.slots[a.Var]
		if !ok || a.Var == "" {
			slot = -1
		}
		argSlots[i] = slot
	}
	hint := groupSizeHint(len(rows))
	// Groups live in a slice in first-appearance order; the map holds
	// indexes into it. Group representatives and aggregate states come
	// from chunked arenas — with many small groups (the superlative-plan
	// shape) the per-row and per-group allocations dominate the analytic
	// path, so each is amortized over a chunk.
	arr := make([]group, 0, hint)
	groups := make(map[string]int32, hint)
	states := newAggArena(len(spec.aggs))
	terms := newTermArena(len(e.c.names))
	var keyBuf []byte
	for _, r := range rows {
		keyBuf = keyBuf[:0]
		for _, slot := range groupSlots {
			var t rdf.Term
			ok := false
			if slot >= 0 {
				t, ok = r.get(slot)
			}
			keyBuf = appendGroupKeyPart(keyBuf, t, ok)
		}
		idx, ok := groups[string(keyBuf)]
		if !ok {
			rep := row{vals: terms.take()}
			for _, slot := range groupSlots {
				if slot < 0 {
					continue
				}
				if t, ok := r.get(slot); ok {
					rep.vals[slot] = t
					rep.mask |= 1 << slot
				}
			}
			idx = int32(len(arr))
			arr = append(arr, group{rep: rep, states: states.take()})
			groups[string(keyBuf)] = idx
		}
		g := &arr[idx]
		for i, a := range spec.aggs {
			var t rdf.Term
			ok := false
			if argSlots[i] >= 0 {
				t, ok = r.get(argSlots[i])
			}
			g.states[i].add(a, t, ok)
		}
	}
	if len(arr) == 0 && len(spec.groupBy) == 0 {
		arr = append(arr, group{rep: row{vals: terms.take()}, states: states.take()})
	}
	out := make([]row, 0, len(arr))
	for gi := range arr {
		g := &arr[gi]
		for i, a := range spec.aggs {
			if t, ok := g.states[i].result(a); ok {
				slot := e.c.slots[a.As]
				g.rep.vals[slot] = t
				g.rep.mask |= 1 << slot
			}
		}
		if len(spec.having) > 0 {
			e.view.r = g.rep
			if !havingPass(spec.having, e.view, e.env) {
				continue
			}
		}
		out = append(out, g.rep)
	}
	return out
}
