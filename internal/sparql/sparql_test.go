package sparql

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nl2cm/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI(s) }

// testStore builds a small geo ontology in the spirit of the paper's
// LinkedGeoData excerpt.
func testStore() *rdf.Store {
	s := rdf.NewStore()
	add := func(sub, p, o string) { s.AddTriple(iri(sub), iri(p), iri(o)) }
	add("Delaware_Park", "instanceOf", "Place")
	add("Buffalo_Zoo", "instanceOf", "Place")
	add("Niagara_Falls", "instanceOf", "Place")
	add("Forest_Hotel", "instanceOf", "Hotel")
	add("Delaware_Park", "near", "Forest_Hotel")
	add("Buffalo_Zoo", "near", "Forest_Hotel")
	s.AddTriple(iri("Delaware_Park"), iri("label"), rdf.NewLiteral("Delaware Park"))
	s.AddTriple(iri("Delaware_Park"), iri("size"), rdf.NewIntLiteral(350))
	s.AddTriple(iri("Buffalo_Zoo"), iri("size"), rdf.NewIntLiteral(23))
	s.AddTriple(iri("Niagara_Falls"), iri("size"), rdf.NewIntLiteral(400))
	return s
}

func TestParseSimpleQuery(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE { $x instanceOf Place . $x near Forest_Hotel }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Vars) != 1 || q.Vars[0] != "x" {
		t.Errorf("Vars = %v", q.Vars)
	}
	if len(q.Where) != 2 {
		t.Errorf("Where has %d triples, want 2", len(q.Where))
	}
	if q.Limit != -1 {
		t.Errorf("Limit = %d, want -1", q.Limit)
	}
}

func TestParseModifiers(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT $x $y WHERE { $x near $y } ORDER BY DESC($x) $y LIMIT 5 OFFSET 2`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !q.Distinct {
		t.Error("Distinct = false")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[0].Var != "x" ||
		q.OrderBy[1].Desc || q.OrderBy[1].Var != "y" {
		t.Errorf("OrderBy = %+v", q.OrderBy)
	}
	if q.Limit != 5 || q.Offset != 2 {
		t.Errorf("Limit/Offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseFilterExpressions(t *testing.T) {
	q, err := Parse(`SELECT * WHERE {
		$x size $s .
		FILTER($s > 100 && $s <= 400)
		FILTER(POS($x) = "NN" || $x IN V_thing)
		FILTER(!($s = 350))
	}`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Filters) != 3 {
		t.Fatalf("got %d filters, want 3", len(q.Filters))
	}
}

func TestParseAnonTerm(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { [] visit $x . [] in Fall }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// Each [] becomes a distinct fresh variable.
	s0 := q.Where[0].S
	s1 := q.Where[1].S
	if !s0.IsVar() || !s1.IsVar() || s0.Equal(s1) {
		t.Errorf("anonymous terms = %v, %v; want distinct variables", s0, s1)
	}
}

func TestParseCommaEntityNames(t *testing.T) {
	// OASSIS-QL embeds commas in entity identifiers (Figure 1, line 4).
	q, err := Parse(`SELECT $x WHERE { $x near Forest_Hotel,_Buffalo,_NY }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Where[0].O.Value(); got != "Forest_Hotel,_Buffalo,_NY" {
		t.Errorf("entity = %q", got)
	}
}

func TestParseWithBase(t *testing.T) {
	q, err := ParseWith(`SELECT $x WHERE { $x instanceOf Place }`,
		&ParseOptions{Base: "http://onto/"})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Where[0].P.Value(); got != "http://onto/instanceOf" {
		t.Errorf("predicate = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`WHERE { $x a b }`,
		`SELECT WHERE { }`,
		`SELECT $x { $x a b }`,
		`SELECT $x WHERE { $x a }`,
		`SELECT $x WHERE { $x a b`,
		`SELECT $x WHERE { $x a b } LIMIT x`,
		`SELECT $x WHERE { "lit" a b }`,
		`SELECT $x WHERE { $x a b } trailing`,
		`SELECT $x WHERE { FILTER() }`,
		`SELECT $x WHERE { FILTER($x IN ) }`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestEvalBasicJoin(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE { $x instanceOf Place . $x near Forest_Hotel }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, b := range rows {
		got[b["x"].Value()] = true
	}
	if len(got) != 2 || !got["Delaware_Park"] || !got["Buffalo_Zoo"] {
		t.Errorf("rows = %v", got)
	}
}

func TestEvalFilterNumeric(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE { $x size $s . FILTER($s > 100) }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
}

func TestEvalOrderLimit(t *testing.T) {
	q, err := Parse(`SELECT $x $s WHERE { $x size $s } ORDER BY DESC($s) LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	// Term.Compare orders numeric literals by value, so 400 sorts first
	// regardless of digit width (TestEvalOrderNumeric pins the
	// mixed-width cases this test used to dodge).
	if rows[0]["x"].Value() != "Niagara_Falls" {
		t.Errorf("first row = %v, want Niagara_Falls", rows[0]["x"])
	}
	if rows[1]["x"].Value() != "Delaware_Park" {
		t.Errorf("second row = %v, want Delaware_Park", rows[1]["x"])
	}
}

func TestEvalDistinctAndProjection(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT $y WHERE { $x near $y }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["y"].Value() != "Forest_Hotel" {
		t.Errorf("rows = %v", rows)
	}
	if _, ok := rows[0]["x"]; ok {
		t.Error("projection kept variable x")
	}
}

func TestEvalOffset(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE { $x size $s } ORDER BY ASC($s) OFFSET 1`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	q.Offset = 10
	rows, err = Eval(q, testStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("offset beyond data: got %d rows", len(rows))
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	s := rdf.NewStore()
	s.AddTriple(iri("a"), iri("knows"), iri("a"))
	s.AddTriple(iri("a"), iri("knows"), iri("b"))
	q, err := Parse(`SELECT $x WHERE { $x knows $x }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["x"].Value() != "a" {
		t.Errorf("rows = %v, want just a", rows)
	}
}

func TestEvalEmptyPatternYieldsOneEmptyRow(t *testing.T) {
	rows, err := EvalPattern(nil, nil, testStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 0 {
		t.Errorf("rows = %v, want one empty binding", rows)
	}
}

func TestEvalNoMatch(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE { $x instanceOf Unicorn }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %v, want none", rows)
	}
}

func TestEvalFunctionsAndSets(t *testing.T) {
	env := &Env{
		Funcs: map[string]func([]Value) (Value, error){
			"LOCAL": func(args []Value) (Value, error) {
				if len(args) != 1 {
					return Value{}, fmt.Errorf("LOCAL wants 1 arg")
				}
				return StrVal(args[0].Term.Local()), nil
			},
		},
		Sets: map[string]func(Value) bool{
			"V_parks": func(v Value) bool { return strings.Contains(v.text(), "Park") },
		},
	}
	q, err := Parse(`SELECT $x WHERE { $x instanceOf Place . FILTER(LOCAL($x) != "Buffalo_Zoo" && $x IN V_parks) }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0]["x"].Value() != "Delaware_Park" {
		t.Errorf("rows = %v", rows)
	}
}

func TestEvalUnknownFunctionDropsRow(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE { $x instanceOf Place . FILTER(NOPE($x)) }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), &Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %v, want none (erroring filter)", rows)
	}
}

func TestEvalNotIn(t *testing.T) {
	env := &Env{Sets: map[string]func(Value) bool{
		"V_hotels": func(v Value) bool { return strings.Contains(v.text(), "Hotel") },
	}}
	q, err := Parse(`SELECT $y WHERE { $x near $y . FILTER($y NOT IN V_hotels) }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %v, want none", rows)
	}
}

func TestEvalInList(t *testing.T) {
	q, err := Parse(`SELECT $x WHERE { $x size $s . FILTER($s IN (23, 400)) }`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Eval(q, testStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("got %d rows, want 2", len(rows))
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	in := `SELECT DISTINCT $x WHERE { $x <instanceOf> <Place> . FILTER(($x = "q")) } ORDER BY DESC($x) LIMIT 3`
	q, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", q.String(), q2.String())
	}
}

func TestValueTruthyAndNum(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{BoolVal(true), true}, {BoolVal(false), false},
		{NumVal(1), true}, {NumVal(0), false},
		{StrVal("x"), true}, {StrVal(""), false},
		{TermVal(iri("a")), true},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%+v) = %v", c.v, c.v.Truthy())
		}
	}
	if n, ok := StrVal("2.5").num(); !ok || n != 2.5 {
		t.Errorf("num(\"2.5\") = %v, %v", n, ok)
	}
	if _, ok := StrVal("abc").num(); ok {
		t.Error("num(abc) ok = true")
	}
}

// Property: the BGP evaluator agrees with a brute-force join on random
// small stores and two-pattern queries.
func TestEvalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := rdf.NewStore()
		ents := []string{"a", "b", "c", "d"}
		preds := []string{"p", "q"}
		for i := 0; i < 12; i++ {
			s.AddTriple(
				iri(ents[r.Intn(len(ents))]),
				iri(preds[r.Intn(len(preds))]),
				iri(ents[r.Intn(len(ents))]),
			)
		}
		q, err := Parse(`SELECT $x $y $z WHERE { $x p $y . $y q $z }`)
		if err != nil {
			return false
		}
		rows, err := Eval(q, s, nil)
		if err != nil {
			return false
		}
		// Brute force.
		want := map[string]bool{}
		for _, t1 := range s.Match(rdf.T(rdf.NewVar("s"), iri("p"), rdf.NewVar("o"))) {
			for _, t2 := range s.Match(rdf.T(rdf.NewVar("s"), iri("q"), rdf.NewVar("o"))) {
				if t1.O == t2.S {
					want[t1.S.Value()+"|"+t1.O.Value()+"|"+t2.O.Value()] = true
				}
			}
		}
		got := map[string]bool{}
		for _, b := range rows {
			got[b["x"].Value()+"|"+b["y"].Value()+"|"+b["z"].Value()] = true
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LIMIT n never returns more than n rows and is a prefix of the
// unlimited result.
func TestEvalLimitPrefix(t *testing.T) {
	f := func(limit uint8) bool {
		s := testStore()
		unlimited, err := Parse(`SELECT $x $s WHERE { $x size $s } ORDER BY ASC($s)`)
		if err != nil {
			return false
		}
		all, err := Eval(unlimited, s, nil)
		if err != nil {
			return false
		}
		lim := int(limit % 6)
		unlimited.Limit = lim
		some, err := Eval(unlimited, s, nil)
		if err != nil {
			return false
		}
		if len(some) > lim {
			return false
		}
		for i := range some {
			if some[i]["x"] != all[i]["x"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// SPARQL ordering semantics: an unbound sort variable sorts before any
// bound value (and therefore after every bound value under DESC).
// Previously unbound compared equal to everything, leaving such rows
// wherever the join happened to produce them.
func TestOrderByUnboundSortsFirst(t *testing.T) {
	s := rdf.NewStore()
	add := func(sub, p, o string) { s.AddTriple(iri(sub), iri(p), iri(o)) }
	add("a1", "p", "b1")
	add("a2", "p", "b2")
	add("a3", "p", "b3")
	add("b2", "q", "c2")
	q := &Query{
		Where:     []rdf.Triple{rdf.T(rdf.NewVar("x"), iri("p"), rdf.NewVar("y"))},
		Optionals: [][]rdf.Triple{{rdf.T(rdf.NewVar("y"), iri("q"), rdf.NewVar("z"))}},
		OrderBy:   []OrderKey{{Var: "z"}},
		Limit:     -1,
	}
	rows, err := Eval(q, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	// Ascending: the single bound row (x=a2, z=c2) must come last.
	if _, ok := rows[2]["z"]; !ok || !rows[2]["x"].Equal(iri("a2")) {
		t.Errorf("ascending: bound row not last: %v", rows)
	}
	for _, r := range rows[:2] {
		if _, ok := r["z"]; ok {
			t.Errorf("ascending: bound row among leading unbound rows: %v", rows)
		}
	}
	// Descending: the bound row must come first.
	q.OrderBy = []OrderKey{{Var: "z", Desc: true}}
	rows, err = Eval(q, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rows[0]["z"]; !ok || !rows[0]["x"].Equal(iri("a2")) {
		t.Errorf("descending: bound row not first: %v", rows)
	}
}
