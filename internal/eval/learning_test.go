package eval

import (
	"testing"

	"nl2cm/internal/corpus"
	"nl2cm/internal/ix"
	"nl2cm/internal/ontology"
)

// A3: the disambiguation ranking improves with user feedback. Before any
// correction the generator prefers Buffalo, NY (the better-connected
// entity); after one or two corrections towards Buffalo, IL, the intended
// entity wins even in non-interactive mode.
func TestA3FeedbackLearningCurve(t *testing.T) {
	onto := ontology.NewDemoOntology()
	intended := ontology.E("Buffalo,_IL")
	curve, err := FeedbackLearningCurve(onto, "Where do you visit in Buffalo?", "Buffalo", intended, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 5 {
		t.Fatalf("curve has %d points, want 5", len(curve))
	}
	if curve[0].AutoCorrect {
		t.Error("round 0 already auto-correct; the ambiguity is gone")
	}
	if curve[0].Rank <= 1 {
		t.Errorf("round 0 rank = %d, want > 1", curve[0].Rank)
	}
	last := curve[len(curve)-1]
	if !last.AutoCorrect || last.Rank != 1 {
		t.Errorf("after %d corrections: rank=%d auto=%v, want rank 1", last.Round, last.Rank, last.AutoCorrect)
	}
	// Monotone non-worsening ranks.
	for i := 1; i < len(curve); i++ {
		if curve[i].Rank > curve[i-1].Rank {
			t.Errorf("rank worsened at round %d: %d -> %d", curve[i].Round, curve[i-1].Rank, curve[i].Rank)
		}
	}
}

func TestFeedbackLearningCurveUnknownEntity(t *testing.T) {
	onto := ontology.NewDemoOntology()
	_, err := FeedbackLearningCurve(onto, "Where do you visit in Buffalo?", "Buffalo", ontology.E("Nowhere"), 1)
	if err == nil {
		t.Error("unknown intended entity accepted")
	}
}

// TestCorpusQuality is the named entry point referenced by DESIGN.md's
// experiment index: detection quality and translation success on the
// corpus stay above the recorded thresholds.
func TestCorpusQuality(t *testing.T) {
	t.Run("detection", TestE7IXDetectionQuality)
	t.Run("translation", TestE8TranslationSuccess)
}

// Type accuracy: detected IXs carry the gold individuality types.
func TestIXTypeAccuracy(t *testing.T) {
	correct, total, err := ScoreIXTypes(ix.NewDetector(), corpus.All())
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no matched anchors to type-check")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 {
		t.Errorf("type accuracy = %.2f (%d/%d), want >= 0.85", acc, correct, total)
	}
}
