// Package eval implements the measurement harness behind the paper's
// evaluation claims: IX-detection quality against the corpus gold
// annotations (experiment E7, backing §4.1's "the quality of our
// developed translation is high for real user questions even without
// interacting with the user"), verification accuracy (E3/E10), end-to-end
// translation reports per domain (E8), the naive KB-mismatch baseline the
// introduction argues against (ablation A1), and per-pattern-type
// ablations (A2).
package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"nl2cm/internal/core"
	"nl2cm/internal/corpus"
	"nl2cm/internal/crowd"
	"nl2cm/internal/interact"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/ontology"
	"nl2cm/internal/qgen"
	"nl2cm/internal/rdf"
	"nl2cm/internal/verify"
)

// Score is a precision/recall summary.
type Score struct {
	TP, FP, FN int
}

// Precision returns TP/(TP+FP), 1 when nothing was predicted.
func (s Score) Precision() float64 {
	if s.TP+s.FP == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.TP+s.FP)
}

// Recall returns TP/(TP+FN), 1 when nothing was expected.
func (s Score) Recall() float64 {
	if s.TP+s.FN == 0 {
		return 1
	}
	return float64(s.TP) / float64(s.TP+s.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (s Score) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (s Score) String() string {
	return fmt.Sprintf("P=%.2f R=%.2f F1=%.2f (tp=%d fp=%d fn=%d)",
		s.Precision(), s.Recall(), s.F1(), s.TP, s.FP, s.FN)
}

// detectedAnchors runs the detector and returns the set of anchor lemmas.
func detectedAnchors(d *ix.Detector, text string) (map[string]bool, error) {
	g, err := nlp.Parse(text)
	if err != nil {
		return nil, err
	}
	ixs, err := d.Detect(context.Background(), g)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, x := range ixs {
		out[g.Nodes[x.Anchor].Lemma] = true
	}
	return out, nil
}

// ScoreIXDetection scores a detector against the gold IX annotations of
// the supported corpus questions, matching by anchor lemma.
func ScoreIXDetection(d *ix.Detector, questions []corpus.Question) (Score, error) {
	var s Score
	for _, q := range questions {
		if !q.Supported {
			continue
		}
		got, err := detectedAnchors(d, q.Text)
		if err != nil {
			return s, fmt.Errorf("eval: %s: %w", q.ID, err)
		}
		gold := map[string]bool{}
		for _, g := range q.Gold {
			gold[g.AnchorLemma] = true
		}
		for a := range got {
			if gold[a] {
				s.TP++
			} else {
				s.FP++
			}
		}
		for a := range gold {
			if !got[a] {
				s.FN++
			}
		}
	}
	return s, nil
}

// ScoreIXTypes measures, over correctly detected anchors, how often the
// detector's individuality types cover the gold types (type accuracy).
func ScoreIXTypes(d *ix.Detector, questions []corpus.Question) (correct, total int, err error) {
	for _, q := range questions {
		if !q.Supported {
			continue
		}
		g, err := nlp.Parse(q.Text)
		if err != nil {
			return 0, 0, fmt.Errorf("eval: %s: %w", q.ID, err)
		}
		ixs, err := d.Detect(context.Background(), g)
		if err != nil {
			return 0, 0, fmt.Errorf("eval: %s: %w", q.ID, err)
		}
		byLemma := map[string]*ix.IX{}
		for _, x := range ixs {
			byLemma[g.Nodes[x.Anchor].Lemma] = x
		}
		for _, gold := range q.Gold {
			x, ok := byLemma[gold.AnchorLemma]
			if !ok {
				continue // recall miss, measured elsewhere
			}
			total++
			covered := true
			for _, ty := range gold.Types {
				if !x.HasType(ty) {
					covered = false
				}
			}
			if covered {
				correct++
			}
		}
	}
	return correct, total, nil
}

// VerificationReport is the confusion summary of the verification step.
type VerificationReport struct {
	Correct, Total int
	// WrongAccepts are unsupported questions that slipped through;
	// WrongRejects are supported questions wrongly rejected.
	WrongAccepts, WrongRejects []string
}

// Accuracy returns the fraction of correct verdicts.
func (r VerificationReport) Accuracy() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Total)
}

// ScoreVerification checks verification verdicts against the corpus.
func ScoreVerification(questions []corpus.Question) VerificationReport {
	var rep VerificationReport
	for _, q := range questions {
		rep.Total++
		v := verify.Check(q.Text)
		switch {
		case v.Supported == q.Supported:
			rep.Correct++
		case v.Supported:
			rep.WrongAccepts = append(rep.WrongAccepts, q.ID)
		default:
			rep.WrongRejects = append(rep.WrongRejects, q.ID)
		}
	}
	return rep
}

// TranslationOutcome is one question's end-to-end translation result.
type TranslationOutcome struct {
	ID         string
	Domain     string
	Question   string
	Supported  bool
	OK         bool
	Err        string
	Query      string
	Subclauses int
	// GoldParts is the number of gold IXs (expected subclauses).
	GoldParts int
}

// TranslateAll runs the full non-interactive pipeline over questions.
func TranslateAll(tr *core.Translator, questions []corpus.Question) []TranslationOutcome {
	var out []TranslationOutcome
	for _, q := range questions {
		o := TranslationOutcome{ID: q.ID, Domain: q.Domain, Question: q.Text, GoldParts: len(q.Gold)}
		res, err := tr.Translate(context.Background(), q.Text, core.Options{})
		switch {
		case err != nil:
			o.Err = err.Error()
		case !res.Verdict.Supported:
			o.Supported = false
			o.OK = !q.Supported // correctly rejected
			o.Err = res.Verdict.Reason
		default:
			o.Supported = true
			o.Query = res.Query.String()
			o.Subclauses = len(res.Query.Satisfying)
			o.OK = q.Supported
		}
		out = append(out, o)
	}
	return out
}

// SuccessRate is the fraction of outcomes that are OK.
func SuccessRate(outcomes []TranslationOutcome) float64 {
	if len(outcomes) == 0 {
		return 1
	}
	n := 0
	for _, o := range outcomes {
		if o.OK {
			n++
		}
	}
	return float64(n) / float64(len(outcomes))
}

// NaiveDetector is the A1 baseline the paper's introduction dismisses:
// treat as individual every content word that does not match the
// knowledge base ("checking which parts of the query do not match the
// knowledge base cannot facilitate this task since most knowledge bases
// are incomplete"). It fails in both directions: opinion words that
// happen to match ontology relations ("good" ~ goodFor) are missed, and
// general words absent from the incomplete KB are false positives.
type NaiveDetector struct {
	Onto *ontology.Ontology
}

// Anchors returns the naive baseline's predicted IX anchor lemmas.
func (n *NaiveDetector) Anchors(text string) (map[string]bool, error) {
	g, err := nlp.Parse(text)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for i := range g.Nodes {
		node := &g.Nodes[i]
		if !strings.HasPrefix(node.POS, "VB") && !strings.HasPrefix(node.POS, "JJ") {
			continue
		}
		if node.Lemma == "be" || node.Lemma == "do" || node.Lemma == "have" {
			continue
		}
		if len(n.Onto.Lookup(node.Lemma)) > 0 {
			continue
		}
		if _, ok := n.Onto.LookupRelation(node.Lemma); ok {
			continue
		}
		// "rich in", "good for" style keys
		if _, ok := n.Onto.LookupRelation(node.Lemma + " in"); ok {
			continue
		}
		if _, ok := n.Onto.LookupRelation(node.Lemma + " for"); ok {
			continue
		}
		out[node.Lemma] = true
	}
	return out, nil
}

// ScoreNaive scores the naive baseline against the gold annotations.
func ScoreNaive(n *NaiveDetector, questions []corpus.Question) (Score, error) {
	var s Score
	for _, q := range questions {
		if !q.Supported {
			continue
		}
		got, err := n.Anchors(q.Text)
		if err != nil {
			return s, fmt.Errorf("eval: %s: %w", q.ID, err)
		}
		gold := map[string]bool{}
		for _, g := range q.Gold {
			gold[g.AnchorLemma] = true
		}
		for a := range got {
			if gold[a] {
				s.TP++
			} else {
				s.FP++
			}
		}
		for a := range gold {
			if !got[a] {
				s.FN++
			}
		}
	}
	return s, nil
}

// AblationResult is the A2 leave-one-type-out measurement.
type AblationResult struct {
	// Dropped is the removed pattern type ("" for the full detector).
	Dropped string
	Score   Score
}

// PatternTypeAblation scores the detector with each individuality type's
// patterns removed in turn, quantifying every type's contribution.
func PatternTypeAblation(questions []corpus.Question) ([]AblationResult, error) {
	full := ix.NewDetector()
	fullScore, err := ScoreIXDetection(full, questions)
	if err != nil {
		return nil, err
	}
	out := []AblationResult{{Dropped: "", Score: fullScore}}
	types := []string{ix.TypeLexical, ix.TypeParticipant, ix.TypeSyntactic}
	for _, drop := range types {
		d := ix.NewDetector()
		var kept []*ix.Pattern
		for _, p := range d.Patterns {
			if p.Type != drop {
				kept = append(kept, p)
			}
		}
		d.Patterns = kept
		s, err := ScoreIXDetection(d, questions)
		if err != nil {
			return nil, err
		}
		out = append(out, AblationResult{Dropped: drop, Score: s})
	}
	return out, nil
}

// LearningPoint is one round of the A3 feedback-learning measurement.
type LearningPoint struct {
	// Round counts completed user corrections (0 = before any feedback).
	Round int
	// Rank is the 1-based position of the intended entity among the
	// generator's candidates for the phrase.
	Rank int
	// AutoCorrect reports whether non-interactive mode would now pick
	// the intended entity.
	AutoCorrect bool
}

// FeedbackLearningCurve measures how disambiguation feedback improves
// ranking (paper §4.1: "The response of the user is recorded and serves
// to improve the ranking of optional entities in subsequent user
// interactions"). A simulated user repeatedly asks a question containing
// the ambiguous phrase and always corrects the system to the intended
// entity; after each round the intended entity's rank is recorded.
func FeedbackLearningCurve(onto *ontology.Ontology, question, phrase string,
	intended rdf.Term, rounds int) ([]LearningPoint, error) {
	gen := qgen.New(onto)
	rank := func() (int, bool, error) {
		cands := gen.RankCandidates(phrase)
		for i, c := range cands {
			if c.Term.Equal(intended) {
				return i + 1, i == 0, nil
			}
		}
		return 0, false, fmt.Errorf("eval: intended entity %v not a candidate of %q", intended, phrase)
	}
	var out []LearningPoint
	for round := 0; round <= rounds; round++ {
		r, top, err := rank()
		if err != nil {
			return nil, err
		}
		out = append(out, LearningPoint{Round: round, Rank: r, AutoCorrect: top})
		if round == rounds {
			break
		}
		// One interactive session in which the user picks the intended
		// entity.
		dg, err := nlp.Parse(question)
		if err != nil {
			return nil, err
		}
		pick := &intendedPicker{intended: intended, onto: onto}
		_, err = gen.Generate(context.Background(), dg, qgen.Options{
			Interactor: pick,
			Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointDisambiguation: true}},
		})
		if err != nil {
			return nil, err
		}
		if !pick.asked {
			// The system no longer asks (or never asked); record the
			// choice directly so the curve keeps progressing, as a
			// user confirming via the editable query would.
			gen.Feedback.Record(phrase, intended)
		}
	}
	return out, nil
}

// intendedPicker is an Interactor that always chooses the option whose
// label+description matches the intended entity.
type intendedPicker struct {
	intended rdf.Term
	onto     *ontology.Ontology
	asked    bool
}

// VerifyIXs implements interact.Interactor.
func (p *intendedPicker) VerifyIXs(ctx context.Context, q string, spans []interact.IXSpan) ([]bool, error) {
	return interact.Auto{}.VerifyIXs(ctx, q, spans)
}

// Disambiguate implements interact.Interactor.
func (p *intendedPicker) Disambiguate(ctx context.Context, phrase string, options []interact.Choice) (int, error) {
	p.asked = true
	want := p.onto.Description(p.intended)
	for i, o := range options {
		if o.Description == want {
			return i, nil
		}
	}
	return 0, nil
}

// SelectTopK implements interact.Interactor.
func (p *intendedPicker) SelectTopK(ctx context.Context, d string, def int) (int, error) {
	return def, nil
}

// SelectThreshold implements interact.Interactor.
func (p *intendedPicker) SelectThreshold(ctx context.Context, d string, def float64) (float64, error) {
	return def, nil
}

// SelectProjection implements interact.Interactor.
func (p *intendedPicker) SelectProjection(ctx context.Context, cs []interact.VarChoice) ([]bool, error) {
	return interact.Auto{}.SelectProjection(ctx, cs)
}

// ExecutionStats summarizes an end-to-end translate-and-execute run
// over the corpus (experiment E12): crowd-side workload and support-cache
// effectiveness across queries that share fact patterns.
type ExecutionStats struct {
	// Queries is the number of corpus questions that translated into an
	// executable query; Executed counts those that ran without error.
	Queries, Executed int
	// Tasks, CacheHits and CacheMisses aggregate the engine metrics over
	// all executions.
	Tasks, CacheHits, CacheMisses int
	// Elapsed is the total engine wall-clock time.
	Elapsed time.Duration
}

// HitRate returns the fraction of support lookups served from cache.
func (s ExecutionStats) HitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// ExecuteCorpus translates every supported corpus question and executes
// the resulting queries on the engine, aggregating the engine metrics.
// Questions that do not translate are skipped (translation quality is
// E8's concern); a context cancellation aborts the run.
func ExecuteCorpus(ctx context.Context, tr *core.Translator, eng *crowd.Engine, questions []corpus.Question) (ExecutionStats, error) {
	var stats ExecutionStats
	for _, q := range questions {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		res, err := tr.Translate(ctx, q.Text, core.Options{})
		if err != nil || !res.Verdict.Supported || res.Query == nil {
			continue
		}
		stats.Queries++
		out, err := eng.Execute(ctx, res.Query)
		if err != nil {
			if ctx.Err() != nil {
				return stats, err
			}
			continue
		}
		stats.Executed++
		stats.Tasks += out.TasksIssued
		stats.CacheHits += out.CacheHits
		stats.CacheMisses += out.CacheMisses
		stats.Elapsed += out.Elapsed
	}
	return stats, nil
}

// DomainBreakdown groups outcomes per domain, sorted by domain name.
func DomainBreakdown(outcomes []TranslationOutcome) []struct {
	Domain  string
	OK, All int
} {
	agg := map[string][2]int{}
	for _, o := range outcomes {
		v := agg[o.Domain]
		if o.OK {
			v[0]++
		}
		v[1]++
		agg[o.Domain] = v
	}
	var domains []string
	for d := range agg {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	out := make([]struct {
		Domain  string
		OK, All int
	}, 0, len(domains))
	for _, d := range domains {
		out = append(out, struct {
			Domain  string
			OK, All int
		}{d, agg[d][0], agg[d][1]})
	}
	return out
}
