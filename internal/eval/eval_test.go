package eval

import (
	"context"
	"errors"
	"testing"

	"nl2cm/internal/core"
	"nl2cm/internal/corpus"
	"nl2cm/internal/crowd"
	"nl2cm/internal/ix"
	"nl2cm/internal/ontology"
)

func TestScoreArithmetic(t *testing.T) {
	s := Score{TP: 8, FP: 2, FN: 2}
	if p := s.Precision(); p != 0.8 {
		t.Errorf("Precision = %g", p)
	}
	if r := s.Recall(); r != 0.8 {
		t.Errorf("Recall = %g", r)
	}
	if f := s.F1(); f < 0.799 || f > 0.801 {
		t.Errorf("F1 = %g", f)
	}
	empty := Score{}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty score should default to 1.0")
	}
	zero := Score{FP: 1, FN: 1}
	if zero.F1() != 0 {
		t.Errorf("F1 of all-wrong = %g", zero.F1())
	}
}

// E7: the paper claims translation quality is high without interaction.
// Our reproduction requires the shipped detector to reach high precision
// and recall on the gold corpus.
func TestE7IXDetectionQuality(t *testing.T) {
	s, err := ScoreIXDetection(ix.NewDetector(), corpus.All())
	if err != nil {
		t.Fatal(err)
	}
	if s.Precision() < 0.9 {
		t.Errorf("precision = %s, want >= 0.9", s)
	}
	if s.Recall() < 0.85 {
		t.Errorf("recall = %s, want >= 0.85", s)
	}
}

func TestE3VerificationAccuracy(t *testing.T) {
	rep := ScoreVerification(corpus.All())
	if rep.Accuracy() < 0.95 {
		t.Errorf("verification accuracy = %.2f (wrong accepts %v, rejects %v)",
			rep.Accuracy(), rep.WrongAccepts, rep.WrongRejects)
	}
	if rep.Total != len(corpus.All()) {
		t.Errorf("Total = %d", rep.Total)
	}
}

// E8: end-to-end translation over the whole corpus succeeds, including
// correct rejection of unsupported questions.
func TestE8TranslationSuccess(t *testing.T) {
	tr := core.New(ontology.NewDemoOntology())
	outcomes := TranslateAll(tr, corpus.All())
	if len(outcomes) != len(corpus.All()) {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	if r := SuccessRate(outcomes); r < 0.95 {
		for _, o := range outcomes {
			if !o.OK {
				t.Logf("FAIL %s: %s (%s)", o.ID, o.Question, o.Err)
			}
		}
		t.Errorf("success rate = %.2f, want >= 0.95", r)
	}
	// Every supported translation must produce a query with as many
	// subclauses as gold IXs (the composition groups one subclause per
	// semantic event).
	for _, o := range outcomes {
		if o.OK && o.Supported && o.Subclauses != o.GoldParts {
			t.Logf("note %s: %d subclauses for %d gold IXs", o.ID, o.Subclauses, o.GoldParts)
		}
	}
}

// A1: the naive KB-mismatch baseline must be clearly worse than the
// pattern-based detector, reproducing the introduction's argument that
// "naive approaches ... cannot facilitate this task".
func TestA1NaiveBaselineWorse(t *testing.T) {
	d, err := ScoreIXDetection(ix.NewDetector(), corpus.All())
	if err != nil {
		t.Fatal(err)
	}
	n, err := ScoreNaive(&NaiveDetector{Onto: ontology.NewDemoOntology()}, corpus.All())
	if err != nil {
		t.Fatal(err)
	}
	if n.F1() >= d.F1() {
		t.Errorf("naive baseline F1 %.2f >= detector F1 %.2f", n.F1(), d.F1())
	}
	if n.Recall() >= d.Recall() {
		t.Errorf("naive baseline recall %.2f >= detector recall %.2f", n.Recall(), d.Recall())
	}
}

// A2: each pattern type contributes recall; dropping lexical or
// participant patterns must hurt.
func TestA2PatternTypeAblation(t *testing.T) {
	res, err := PatternTypeAblation(corpus.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("ablation rows = %d, want 4", len(res))
	}
	full := res[0].Score
	for _, r := range res[1:] {
		if r.Score.Recall() > full.Recall() {
			t.Errorf("dropping %s increased recall: %.2f > %.2f", r.Dropped, r.Score.Recall(), full.Recall())
		}
	}
	byType := map[string]Score{}
	for _, r := range res[1:] {
		byType[r.Dropped] = r.Score
	}
	if byType[ix.TypeLexical].Recall() >= full.Recall() {
		t.Error("lexical patterns contribute nothing")
	}
	if byType[ix.TypeParticipant].Recall() >= full.Recall() {
		t.Error("participant patterns contribute nothing")
	}
}

func TestDomainBreakdown(t *testing.T) {
	tr := core.New(ontology.NewDemoOntology())
	outcomes := TranslateAll(tr, corpus.All())
	rows := DomainBreakdown(outcomes)
	if len(rows) < 5 {
		t.Fatalf("domains = %d", len(rows))
	}
	total := 0
	for _, r := range rows {
		if r.OK > r.All {
			t.Errorf("domain %s: OK %d > All %d", r.Domain, r.OK, r.All)
		}
		total += r.All
	}
	if total != len(outcomes) {
		t.Errorf("breakdown total = %d, want %d", total, len(outcomes))
	}
}

func TestNaiveDetectorBehaviour(t *testing.T) {
	n := &NaiveDetector{Onto: ontology.NewDemoOntology()}
	// "good" matches the ontology's goodFor relation, so the naive
	// baseline misses it — the paper's incompleteness argument inverted.
	anchors, err := n.Anchors("Is chocolate milk good for kids?")
	if err != nil {
		t.Fatal(err)
	}
	if anchors["good"] {
		t.Error("naive baseline detected 'good' although it matches the KB")
	}
}

func TestExecuteCorpus(t *testing.T) {
	onto := ontology.NewDemoOntology()
	tr := core.New(onto)
	c := crowd.NewCrowd(40, 7)
	c.Truth = crowd.DemoTruth()
	eng := crowd.NewEngine(onto, c)
	qs := corpus.All()[:6]
	stats, err := ExecuteCorpus(context.Background(), tr, eng, qs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries == 0 || stats.Executed == 0 {
		t.Fatalf("nothing executed: %+v", stats)
	}
	if stats.Executed > stats.Queries || stats.Queries > len(qs) {
		t.Errorf("inconsistent counts: %+v", stats)
	}
	if stats.Tasks > 0 && stats.CacheMisses == 0 {
		t.Errorf("tasks issued but no cache misses: %+v", stats)
	}
	if hr := stats.HitRate(); hr < 0 || hr > 1 {
		t.Errorf("hit rate = %g", hr)
	}

	// Cancellation aborts the run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteCorpus(ctx, tr, eng, qs); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v", err)
	}
}
