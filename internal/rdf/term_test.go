package rdf

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestTermConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		name string
		term Term
		kind Kind
		val  string
	}{
		{"iri", NewIRI("http://ex.org/a"), KindIRI, "http://ex.org/a"},
		{"literal", NewLiteral("hello"), KindLiteral, "hello"},
		{"blank", NewBlank("b0"), KindBlank, "b0"},
		{"variable", NewVar("x"), KindVariable, "x"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.term.Kind() != c.kind {
				t.Errorf("Kind() = %v, want %v", c.term.Kind(), c.kind)
			}
			if c.term.Value() != c.val {
				t.Errorf("Value() = %q, want %q", c.term.Value(), c.val)
			}
		})
	}
}

func TestTermPredicates(t *testing.T) {
	if !NewIRI("a").IsIRI() || NewIRI("a").IsVar() {
		t.Error("IRI predicates wrong")
	}
	if !NewLiteral("a").IsLiteral() {
		t.Error("IsLiteral wrong")
	}
	if !NewBlank("a").IsBlank() {
		t.Error("IsBlank wrong")
	}
	if !NewVar("a").IsVar() || NewVar("a").IsConcrete() {
		t.Error("variable predicates wrong")
	}
	if !NewIRI("a").IsConcrete() {
		t.Error("IRI should be concrete")
	}
}

func TestTypedLiterals(t *testing.T) {
	i := NewIntLiteral(42)
	if v, ok := i.Int(); !ok || v != 42 {
		t.Errorf("Int() = %d, %v; want 42, true", v, ok)
	}
	f := NewFloatLiteral(0.25)
	if v, ok := f.Float(); !ok || v != 0.25 {
		t.Errorf("Float() = %g, %v; want 0.25, true", v, ok)
	}
	if _, ok := NewLiteral("abc").Int(); ok {
		t.Error("non-numeric literal should not parse as int")
	}
	if _, ok := NewIRI("abc").Float(); ok {
		t.Error("IRI should not parse as float")
	}
	if i.Datatype() != XSDInteger {
		t.Errorf("Datatype() = %q, want xsd:integer", i.Datatype())
	}
}

func TestLangLiteral(t *testing.T) {
	l := NewLangLiteral("bonjour", "fr")
	if l.Lang() != "fr" {
		t.Errorf("Lang() = %q, want fr", l.Lang())
	}
	if got := l.String(); got != `"bonjour"@fr` {
		t.Errorf("String() = %q", got)
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex.org/a"), "<http://ex.org/a>"},
		{NewLiteral("hi"), `"hi"`},
		{NewLiteral(`say "hi"`), `"say \"hi\""`},
		{NewTypedLiteral("5", XSDInteger), `"5"^^<` + XSDInteger + `>`},
		{NewBlank("n1"), "_:n1"},
		{NewVar("x"), "$x"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.term.Kind(), got, c.want)
		}
	}
}

func TestTermLocal(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://ex.org/ns#Place"), "Place"},
		{NewIRI("http://ex.org/resource/Buffalo_Zoo"), "Buffalo_Zoo"},
		{NewIRI("plain"), "plain"},
		{NewVar("x"), "x"},
		{NewLiteral("lit"), "lit"},
	}
	for _, c := range cases {
		if got := c.term.Local(); got != c.want {
			t.Errorf("Local(%v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermCompareOrdering(t *testing.T) {
	a := NewIRI("a")
	b := NewIRI("b")
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("Compare ordering on values broken")
	}
	if NewIRI("z").Compare(NewLiteral("a")) >= 0 {
		t.Error("IRIs should sort before literals")
	}
	if NewLiteral("x").Compare(NewVar("a")) >= 0 {
		t.Error("concrete terms should sort before variables")
	}
}

func TestTermCompareNumeric(t *testing.T) {
	// The pre-fix comparator ordered literals lexicographically, so "9"
	// sorted after "10". Numeric lexical forms must compare by value.
	terms := []Term{NewLiteral("9"), NewLiteral("10"), NewLiteral("2")}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Compare(terms[j]) < 0 })
	got := []string{terms[0].Value(), terms[1].Value(), terms[2].Value()}
	want := []string{"2", "9", "10"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("numeric sort = %v, want %v", got, want)
		}
	}
	// Mixed widths and types: ints vs floats vs typed literals.
	cases := []struct {
		a, b Term
		want int
	}{
		{NewLiteral("9"), NewLiteral("10"), -1},
		{NewLiteral("100"), NewLiteral("99"), 1},
		{NewIntLiteral(7), NewIntLiteral(11), -1},
		{NewFloatLiteral(2.5), NewIntLiteral(3), -1},
		{NewIntLiteral(3), NewLiteral("2.75"), 1},
		// Numbers order before non-numeric strings.
		{NewLiteral("10"), NewLiteral("apple"), -1},
		{NewLiteral("zoo"), NewLiteral("999"), 1},
		// Numeric ties fall back to the lexical form, keeping the order
		// total and consistent with Equal.
		{NewLiteral("01"), NewLiteral("1"), -1},
		{NewLiteral("1"), NewLiteral("1"), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
	// Non-literal kinds keep plain lexicographic ordering: IRI names are
	// identifiers, not measures.
	if NewIRI("9").Compare(NewIRI("10")) <= 0 {
		t.Error("IRI comparison should stay lexicographic")
	}
}

// randomTerm builds an arbitrary valid term for property tests. The
// value pool mixes numeric lexical forms of different widths (and a
// leading-zero tie) so the property tests cover the typed comparator.
func randomTerm(r *rand.Rand) Term {
	vals := []string{"a", "b", "http://ex.org/x", "42", "Buffalo", "9", "10", "2", "10.5", "01", "1"}
	v := vals[r.Intn(len(vals))]
	switch r.Intn(4) {
	case 0:
		return NewIRI(v)
	case 1:
		if r.Intn(2) == 0 {
			return NewLangLiteral(v, "en")
		}
		return NewLiteral(v)
	case 2:
		return NewBlank(v)
	default:
		return NewVar(v)
	}
}

// Generate implements quick.Generator for Term.
func (Term) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomTerm(r))
}

func TestCompareIsAntisymmetricAndConsistent(t *testing.T) {
	f := func(a, b Term) bool {
		c1, c2 := a.Compare(b), b.Compare(a)
		if c1 != -c2 {
			return false
		}
		if (c1 == 0) != (a == b) {
			return false
		}
		return a.Compare(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareIsTransitive(t *testing.T) {
	f := func(a, b, c Term) bool {
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
