package rdf

import "sync"

// Dict is a concurrency-safe symbol table mapping Terms to dense uint32
// IDs and back. Interning lets the store index triples as fixed-size
// integer keys (one hash over a machine word instead of a four-field
// struct with three strings) and lets posting lists hold packed integers
// instead of Term values.
//
// IDs are allocated contiguously from 0 in first-intern order and are
// never reused; a Dict only grows. The zero value is not usable — create
// one with NewDict.
type Dict struct {
	mu  sync.RWMutex
	ids map[Term]uint32
	// list[id] is the interned term. Entries are immutable once written,
	// and the slice is append-only, so a snapshot of the header taken
	// under the read lock can be indexed without further locking.
	list []Term
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: map[Term]uint32{}}
}

// Intern returns the ID for the term, allocating the next dense ID on
// first sight.
func (d *Dict) Intern(t Term) uint32 {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	id = uint32(len(d.list))
	d.ids[t] = id
	d.list = append(d.list, t)
	return id
}

// Lookup returns the term's ID without allocating one; ok is false when
// the term has never been interned.
func (d *Dict) Lookup(t Term) (uint32, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	return id, ok
}

// TermOf returns the term for an interned ID. It panics when the ID was
// never allocated, mirroring slice indexing.
func (d *Dict) TermOf(id uint32) Term {
	return d.snapshot()[id]
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.list)
	d.mu.RUnlock()
	return n
}

// snapshot returns the current id->Term table. The returned slice is
// safe to index concurrently with further interning: existing entries
// are never rewritten, and appends beyond the snapshot's length touch
// memory the snapshot cannot reach.
func (d *Dict) snapshot() []Term {
	d.mu.RLock()
	s := d.list
	d.mu.RUnlock()
	return s
}
