package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func iri(s string) Term { return NewIRI("http://ex.org/" + s) }

func TestStoreAddContainsRemove(t *testing.T) {
	s := NewStore()
	tr := T(iri("delaware_park"), iri("instanceOf"), iri("Place"))
	added, err := s.Add(tr)
	if err != nil || !added {
		t.Fatalf("Add = %v, %v; want true, nil", added, err)
	}
	if !s.Contains(tr) {
		t.Fatal("Contains after Add = false")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// Duplicate insert is a no-op.
	added, err = s.Add(tr)
	if err != nil || added {
		t.Fatalf("duplicate Add = %v, %v; want false, nil", added, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len after dup = %d, want 1", s.Len())
	}
	if !s.Remove(tr) {
		t.Fatal("Remove = false, want true")
	}
	if s.Contains(tr) || s.Len() != 0 {
		t.Fatal("triple still present after Remove")
	}
	if s.Remove(tr) {
		t.Fatal("second Remove = true, want false")
	}
}

func TestStoreRejectsNonGround(t *testing.T) {
	s := NewStore()
	if _, err := s.Add(T(NewVar("x"), iri("p"), iri("o"))); err == nil {
		t.Fatal("Add of non-ground triple succeeded, want error")
	}
}

func TestStoreZeroValueUsable(t *testing.T) {
	var s Store
	if s.Len() != 0 || s.Contains(T(iri("a"), iri("b"), iri("c"))) {
		t.Fatal("zero-value store not empty")
	}
	if got := s.Match(T(NewVar("s"), NewVar("p"), NewVar("o"))); got != nil {
		t.Fatalf("zero-value Match = %v, want nil", got)
	}
	s.AddTriple(iri("a"), iri("b"), iri("c"))
	if s.Len() != 1 {
		t.Fatal("zero-value store Add failed")
	}
}

// buildTestStore populates a store with a small mixed dataset.
func buildTestStore() *Store {
	s := NewStore()
	s.AddTriple(iri("park"), iri("instanceOf"), iri("Place"))
	s.AddTriple(iri("zoo"), iri("instanceOf"), iri("Place"))
	s.AddTriple(iri("hotel"), iri("instanceOf"), iri("Hotel"))
	s.AddTriple(iri("park"), iri("near"), iri("hotel"))
	s.AddTriple(iri("zoo"), iri("near"), iri("hotel"))
	s.AddTriple(iri("park"), iri("label"), NewLiteral("Delaware Park"))
	return s
}

func TestStoreMatchPatterns(t *testing.T) {
	s := buildTestStore()
	v := NewVar
	cases := []struct {
		name    string
		pattern Triple
		want    int
	}{
		{"all", T(v("s"), v("p"), v("o")), 6},
		{"bound s", T(iri("park"), v("p"), v("o")), 3},
		{"bound p", T(v("s"), iri("instanceOf"), v("o")), 3},
		{"bound o", T(v("s"), v("p"), iri("hotel")), 2},
		{"bound sp", T(iri("park"), iri("near"), v("o")), 1},
		{"bound po", T(v("s"), iri("instanceOf"), iri("Place")), 2},
		{"bound so", T(iri("park"), v("p"), iri("hotel")), 1},
		{"ground hit", T(iri("zoo"), iri("near"), iri("hotel")), 1},
		{"ground miss", T(iri("zoo"), iri("near"), iri("park")), 0},
		{"no match", T(iri("nothing"), v("p"), v("o")), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := s.Match(c.pattern)
			if len(got) != c.want {
				t.Errorf("Match(%v) returned %d triples, want %d", c.pattern, len(got), c.want)
			}
			for _, tr := range got {
				if !s.Contains(tr) {
					t.Errorf("Match returned triple not in store: %v", tr)
				}
			}
			if n := s.CountMatch(c.pattern); n != c.want {
				t.Errorf("CountMatch = %d, want %d", n, c.want)
			}
		})
	}
}

func TestStoreMatchFuncEarlyStop(t *testing.T) {
	s := buildTestStore()
	n := 0
	s.MatchFunc(T(NewVar("s"), NewVar("p"), NewVar("o")), func(Triple) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d triples, want 2", n)
	}
}

func TestStoreSubjectsObjects(t *testing.T) {
	s := buildTestStore()
	subs := s.Subjects(iri("instanceOf"), iri("Place"))
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v, want 2 results", subs)
	}
	objs := s.Objects(iri("park"), iri("near"))
	if len(objs) != 1 || objs[0] != iri("hotel") {
		t.Fatalf("Objects = %v, want [hotel]", objs)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.AddTriple(iri(fmt.Sprintf("s%d_%d", w, i)), iri("p"), iri("o"))
				s.Match(T(NewVar("s"), iri("p"), NewVar("o")))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

// Property: after inserting a random set of ground triples, Match with the
// full wildcard pattern returns exactly the distinct set.
func TestStoreMatchAllEqualsInserted(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		want := map[Triple]bool{}
		for i := 0; i < int(n%40); i++ {
			tr := T(
				iri(fmt.Sprintf("s%d", r.Intn(5))),
				iri(fmt.Sprintf("p%d", r.Intn(3))),
				iri(fmt.Sprintf("o%d", r.Intn(5))),
			)
			want[tr] = true
			s.MustAdd(tr)
		}
		got := s.All()
		if len(got) != len(want) {
			return false
		}
		for _, tr := range got {
			if !want[tr] {
				return false
			}
		}
		return s.Len() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: removal truly removes and leaves all other triples intact.
func TestStoreRemovePreservesOthers(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		var all []Triple
		for i := 0; i < 20; i++ {
			tr := T(iri(fmt.Sprintf("s%d", r.Intn(6))), iri("p"), iri(fmt.Sprintf("o%d", r.Intn(6))))
			if ok, _ := s.Add(tr); ok {
				all = append(all, tr)
			}
		}
		if len(all) == 0 {
			return true
		}
		victim := all[r.Intn(len(all))]
		s.Remove(victim)
		if s.Contains(victim) {
			return false
		}
		for _, tr := range all {
			if tr != victim && !s.Contains(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStoreRemoveHeavyLenAndDictRetention drives the store through a
// remove-heavy churn cycle: Len must track exactly through interleaved
// adds/removes, every index must agree after draining to empty, and
// the dictionary must retain all interned IDs (intentional: IDs are
// dense array indexes and are never reused).
func TestStoreRemoveHeavyLenAndDictRetention(t *testing.T) {
	s := NewStore()
	var all []Triple
	for i := 0; i < 250; i++ {
		all = append(all, T(iri(fmt.Sprintf("s%d", i%50)), iri(fmt.Sprintf("p%d", i%5)), iri(fmt.Sprintf("o%d", i))))
	}
	for _, tr := range all {
		s.MustAdd(tr)
	}
	dictLen := s.Dict().Len()
	r := rand.New(rand.NewSource(7))
	live := append([]Triple(nil), all...)
	// Remove 80% in random order, spot-checking Len each step.
	for len(live) > 50 {
		i := r.Intn(len(live))
		victim := live[i]
		live = append(live[:i], live[i+1:]...)
		if !s.Remove(victim) {
			t.Fatalf("Remove(%v) = false for live triple", victim)
		}
		if s.Remove(victim) {
			t.Fatalf("double Remove(%v) = true", victim)
		}
		if s.Len() != len(live) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(live))
		}
	}
	// The survivors are fully queryable through every index shape.
	for _, tr := range live {
		if !s.Contains(tr) {
			t.Fatalf("survivor missing: %v", tr)
		}
		if got := s.CountMatch(T(tr.S, tr.P, NewVar("o"))); got < 1 {
			t.Fatalf("CountMatch SP for %v = %d", tr, got)
		}
	}
	if got := s.CountMatch(T(NewVar("s"), NewVar("p"), NewVar("o"))); got != len(live) {
		t.Fatalf("CountMatch all = %d, want %d", got, len(live))
	}
	// Drain to empty, then rebuild: IDs are reused from the dict, not
	// reallocated.
	for _, tr := range live {
		s.Remove(tr)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", s.Len())
	}
	if got := len(s.All()); got != 0 {
		t.Fatalf("All after drain = %d triples", got)
	}
	if s.Dict().Len() != dictLen {
		t.Fatalf("dict changed across removes: %d -> %d", dictLen, s.Dict().Len())
	}
	for _, tr := range all {
		s.MustAdd(tr)
	}
	if s.Len() != len(all) || s.Dict().Len() != dictLen {
		t.Fatalf("rebuild: Len=%d dict=%d, want %d, %d", s.Len(), s.Dict().Len(), len(all), dictLen)
	}
}

func TestGraphAddRemoveOrder(t *testing.T) {
	g := NewGraph()
	t1 := T(iri("a"), iri("p"), iri("b"))
	t2 := T(iri("c"), iri("p"), iri("d"))
	if !g.Add(t1) || !g.Add(t2) {
		t.Fatal("Add returned false for new triples")
	}
	if g.Add(t1) {
		t.Fatal("duplicate Add returned true")
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	ts := g.Triples()
	if ts[0] != t1 || ts[1] != t2 {
		t.Fatalf("insertion order not preserved: %v", ts)
	}
	if !g.Remove(t1) || g.Contains(t1) || g.Len() != 1 {
		t.Fatal("Remove failed")
	}
	if g.Remove(t1) {
		t.Fatal("double Remove returned true")
	}
}

func TestGraphVarsFirstAppearanceOrder(t *testing.T) {
	g := NewGraph()
	g.AddAll(
		T(NewVar("x"), iri("near"), NewVar("y")),
		T(NewVar("y"), iri("instanceOf"), NewVar("z")),
		T(NewVar("x"), iri("label"), NewLiteral("l")),
	)
	vars := g.Vars()
	want := []string{"x", "y", "z"}
	if len(vars) != len(want) {
		t.Fatalf("Vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", vars, want)
		}
	}
}

func TestGraphCloneIsDeep(t *testing.T) {
	g := NewGraph()
	g.Add(T(iri("a"), iri("p"), iri("b")))
	c := g.Clone()
	c.Add(T(iri("x"), iri("p"), iri("y")))
	if g.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: g=%d c=%d", g.Len(), c.Len())
	}
}

func TestTripleVars(t *testing.T) {
	tr := T(NewVar("x"), iri("p"), NewVar("x"))
	vars := tr.Vars()
	if len(vars) != 1 || vars[0] != "x" {
		t.Fatalf("Vars = %v, want [x]", vars)
	}
	if got := T(iri("a"), iri("b"), iri("c")).Vars(); got != nil {
		t.Fatalf("ground triple Vars = %v, want nil", got)
	}
}

func TestSortTriples(t *testing.T) {
	ts := []Triple{
		T(iri("b"), iri("p"), iri("o")),
		T(iri("a"), iri("q"), iri("o")),
		T(iri("a"), iri("p"), iri("o")),
	}
	SortTriples(ts)
	if ts[0].S != iri("a") || ts[0].P != iri("p") || ts[2].S != iri("b") {
		t.Fatalf("SortTriples order wrong: %v", ts)
	}
}
