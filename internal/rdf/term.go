// Package rdf provides the RDF data substrate used throughout NL2CM: terms
// (IRIs, literals, blank nodes, variables), triples, and an indexed
// in-memory triple store with N-Triples I/O.
//
// The store backs both the general-knowledge ontologies queried by the
// SPARQL engine and the dependency-graph encoding matched by the IX
// detection patterns.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the lexical category of a Term.
type Kind int

// Term kinds, ordered so that sorting by Kind groups concrete terms before
// variables.
const (
	KindIRI Kind = iota
	KindLiteral
	KindBlank
	KindVariable
)

func (k Kind) String() string {
	switch k {
	case KindIRI:
		return "iri"
	case KindLiteral:
		return "literal"
	case KindBlank:
		return "blank"
	case KindVariable:
		return "variable"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Term is a single RDF term. The zero value is the empty IRI, which is not
// valid in a graph; construct terms with NewIRI, NewLiteral, NewBlank or
// NewVar.
type Term struct {
	kind Kind
	// value holds the IRI string, literal lexical form, blank node label,
	// or variable name (without the leading "$" or "?").
	value string
	// datatype holds the literal datatype IRI; empty means xsd:string.
	datatype string
	// lang holds the literal language tag, if any.
	lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{kind: KindIRI, value: iri} }

// NewLiteral returns a plain string literal term.
func NewLiteral(lex string) Term { return Term{kind: KindLiteral, value: lex} }

// NewLangLiteral returns a language-tagged literal term.
func NewLangLiteral(lex, lang string) Term {
	return Term{kind: KindLiteral, value: lex, lang: lang}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lex, datatype string) Term {
	return Term{kind: KindLiteral, value: lex, datatype: datatype}
}

// NewIntLiteral returns an xsd:integer literal.
func NewIntLiteral(v int64) Term {
	return NewTypedLiteral(strconv.FormatInt(v, 10), XSDInteger)
}

// NewFloatLiteral returns an xsd:double literal.
func NewFloatLiteral(v float64) Term {
	return NewTypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), XSDDouble)
}

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{kind: KindBlank, value: label} }

// NewVar returns a query variable term. The name must not include a
// leading "$" or "?" sigil.
func NewVar(name string) Term { return Term{kind: KindVariable, value: name} }

// Common XSD datatype IRIs.
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
)

// Kind reports the term's kind.
func (t Term) Kind() Kind { return t.kind }

// Value returns the IRI string, literal lexical form, blank label, or
// variable name, depending on the kind.
func (t Term) Value() string { return t.value }

// Datatype returns the literal datatype IRI (empty for plain literals and
// non-literals).
func (t Term) Datatype() string { return t.datatype }

// Lang returns the literal language tag, if any.
func (t Term) Lang() string { return t.lang }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.kind == KindIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.kind == KindBlank }

// IsVar reports whether the term is a query variable.
func (t Term) IsVar() bool { return t.kind == KindVariable }

// IsConcrete reports whether the term is ground data (not a variable).
func (t Term) IsConcrete() bool { return t.kind != KindVariable }

// Int returns the literal's integer value. ok is false when the term is
// not a numeric literal.
func (t Term) Int() (v int64, ok bool) {
	if t.kind != KindLiteral {
		return 0, false
	}
	v, err := strconv.ParseInt(t.value, 10, 64)
	return v, err == nil
}

// Float returns the literal's floating-point value. ok is false when the
// term is not a numeric literal.
func (t Term) Float() (v float64, ok bool) {
	if t.kind != KindLiteral {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.value, 64)
	return v, err == nil
}

// Equal reports whether two terms are identical.
func (t Term) Equal(o Term) bool { return t == o }

// Compare orders terms by kind first; within literals, numeric lexical
// forms compare by value and sort before non-numeric forms, so ORDER BY
// over counts and measures is numeric ("2" < "9" < "10") rather than
// lexicographic. Numeric ties (e.g. "1" vs "01" vs "1.0") and all
// non-numeric literals fall back to value, then datatype, then lang,
// keeping Compare a total order consistent with Equal (zero only for
// identical terms). It returns -1, 0 or +1.
func (t Term) Compare(o Term) int {
	switch {
	case t.kind != o.kind:
		if t.kind < o.kind {
			return -1
		}
		return 1
	case t.kind == KindLiteral:
		tf, tok := t.Float()
		of, ook := o.Float()
		switch {
		case tok && ook:
			if tf != of {
				if tf < of {
					return -1
				}
				return 1
			}
		case tok:
			return -1 // numbers order before strings
		case ook:
			return 1
		}
	}
	switch {
	case t.value != o.value:
		if t.value < o.value {
			return -1
		}
		return 1
	case t.datatype != o.datatype:
		if t.datatype < o.datatype {
			return -1
		}
		return 1
	case t.lang != o.lang:
		if t.lang < o.lang {
			return -1
		}
		return 1
	}
	return 0
}

// String renders the term in N-Triples-like syntax: IRIs in angle
// brackets, literals quoted, blank nodes with a "_:" prefix and variables
// with a "$" sigil (OASSIS-QL style).
func (t Term) String() string {
	switch t.kind {
	case KindIRI:
		return "<" + t.value + ">"
	case KindLiteral:
		s := strconv.Quote(t.value)
		if t.lang != "" {
			return s + "@" + t.lang
		}
		if t.datatype != "" && t.datatype != XSDString {
			return s + "^^<" + t.datatype + ">"
		}
		return s
	case KindBlank:
		return "_:" + t.value
	case KindVariable:
		return "$" + t.value
	default:
		return "?!invalid"
	}
}

// Local returns the local name of an IRI (the fragment after the last '#'
// or '/'), or the term value unchanged for other kinds. It is what the
// OASSIS-QL printer shows for ontology entities.
func (t Term) Local() string {
	if t.kind != KindIRI {
		return t.value
	}
	v := t.value
	if i := strings.LastIndexAny(v, "#/"); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}
