package rdf

import (
	"fmt"
	"sync"
)

// Store is an in-memory, thread-safe triple store. Terms are interned to
// dense uint32 IDs through a per-store Dict, and the six access paths
// (S, P, O, SP, PO, OS) are flat posting lists of packed integer keys
// rather than nested maps of Term structs: one hash over a machine word
// replaces three hashes over four-field structs, and enumeration walks a
// contiguous slice instead of chasing map buckets. Lookups with any
// combination of bound positions run against the most selective index,
// and CountMatch answers from posting-list lengths in O(1).
//
// The zero value is ready to use.
type Store struct {
	mu   sync.RWMutex
	dict *Dict
	// pos maps a triple to its position in trips, for O(1) membership
	// and swap-delete removal.
	pos   map[ids3]int
	trips []ids3
	// Single-position indexes: subject -> packed (p,o), predicate ->
	// packed (o,s), object -> packed (s,p).
	bySubj map[uint32][]uint64
	byPred map[uint32][]uint64
	byObj  map[uint32][]uint64
	// Pair indexes: packed (s,p) -> o, packed (p,o) -> s, packed (o,s)
	// -> p.
	bySP map[uint64][]uint32
	byPO map[uint64][]uint32
	byOS map[uint64][]uint32
}

// ids3 is a triple of interned term IDs.
type ids3 struct{ s, p, o uint32 }

// pack combines two interned IDs into one 64-bit index key.
func pack(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

func unpackHi(k uint64) uint32 { return uint32(k >> 32) }
func unpackLo(k uint64) uint32 { return uint32(k) }

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

func (s *Store) init() {
	if s.dict == nil {
		s.dict = NewDict()
		s.pos = map[ids3]int{}
		s.bySubj = map[uint32][]uint64{}
		s.byPred = map[uint32][]uint64{}
		s.byObj = map[uint32][]uint64{}
		s.bySP = map[uint64][]uint32{}
		s.byPO = map[uint64][]uint32{}
		s.byOS = map[uint64][]uint32{}
	}
}

// Dict exposes the store's symbol table. Interning through it is safe
// concurrently with store reads; IDs it allocates are only referenced by
// the store once the corresponding triple is added.
func (s *Store) Dict() *Dict {
	s.mu.Lock()
	s.init()
	d := s.dict
	s.mu.Unlock()
	return d
}

// Add inserts a ground triple and reports whether it was newly added.
// Adding a non-ground triple returns an error.
func (s *Store) Add(t Triple) (bool, error) {
	if !t.IsGround() {
		return false, fmt.Errorf("rdf: cannot store non-ground triple %v", t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	k := ids3{s.dict.Intern(t.S), s.dict.Intern(t.P), s.dict.Intern(t.O)}
	if _, ok := s.pos[k]; ok {
		return false, nil
	}
	s.pos[k] = len(s.trips)
	s.trips = append(s.trips, k)
	s.bySubj[k.s] = append(s.bySubj[k.s], pack(k.p, k.o))
	s.byPred[k.p] = append(s.byPred[k.p], pack(k.o, k.s))
	s.byObj[k.o] = append(s.byObj[k.o], pack(k.s, k.p))
	s.bySP[pack(k.s, k.p)] = append(s.bySP[pack(k.s, k.p)], k.o)
	s.byPO[pack(k.p, k.o)] = append(s.byPO[pack(k.p, k.o)], k.s)
	s.byOS[pack(k.o, k.s)] = append(s.byOS[pack(k.o, k.s)], k.p)
	return true, nil
}

// MustAdd inserts a ground triple and panics on error; it is intended for
// building embedded ontologies whose data is known to be well-formed.
func (s *Store) MustAdd(t Triple) {
	if _, err := s.Add(t); err != nil {
		panic(err)
	}
}

// AddTriple is a convenience for MustAdd(T(sub, pred, obj)).
func (s *Store) AddTriple(sub, pred, obj Term) {
	s.MustAdd(T(sub, pred, obj))
}

// dropPacked removes one occurrence of v from m[key] by swap-delete,
// deleting the empty list.
func dropPacked(m map[uint32][]uint64, key uint32, v uint64) {
	l := m[key]
	for i, x := range l {
		if x == v {
			l[i] = l[len(l)-1]
			l = l[:len(l)-1]
			break
		}
	}
	if len(l) == 0 {
		delete(m, key)
	} else {
		m[key] = l
	}
}

// dropID removes one occurrence of v from m[key] by swap-delete.
func dropID(m map[uint64][]uint32, key uint64, v uint32) {
	l := m[key]
	for i, x := range l {
		if x == v {
			l[i] = l[len(l)-1]
			l = l[:len(l)-1]
			break
		}
	}
	if len(l) == 0 {
		delete(m, key)
	} else {
		m[key] = l
	}
}

// Remove deletes a triple and reports whether it was present. Interned
// term IDs are intentionally retained — only the posting lists shrink.
// IDs are dense array indexes into the dictionary's append-only table
// and may still be referenced by concurrent readers' dict snapshots,
// so reclaiming them would require a stop-the-world renumber; a store
// that churns the same vocabulary re-uses the retained IDs at zero
// cost.
func (s *Store) Remove(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dict == nil {
		return false
	}
	k, ok := s.lookupIDs(t)
	if !ok {
		return false
	}
	i, ok := s.pos[k]
	if !ok {
		return false
	}
	last := len(s.trips) - 1
	s.trips[i] = s.trips[last]
	s.pos[s.trips[i]] = i
	s.trips = s.trips[:last]
	delete(s.pos, k)
	dropPacked(s.bySubj, k.s, pack(k.p, k.o))
	dropPacked(s.byPred, k.p, pack(k.o, k.s))
	dropPacked(s.byObj, k.o, pack(k.s, k.p))
	dropID(s.bySP, pack(k.s, k.p), k.o)
	dropID(s.byPO, pack(k.p, k.o), k.s)
	dropID(s.byOS, pack(k.o, k.s), k.p)
	return true
}

// lookupIDs resolves a ground triple to interned IDs without interning;
// ok is false when any term was never seen. Callers hold a lock.
func (s *Store) lookupIDs(t Triple) (ids3, bool) {
	sid, ok := s.dict.Lookup(t.S)
	if !ok {
		return ids3{}, false
	}
	pid, ok := s.dict.Lookup(t.P)
	if !ok {
		return ids3{}, false
	}
	oid, ok := s.dict.Lookup(t.O)
	if !ok {
		return ids3{}, false
	}
	return ids3{sid, pid, oid}, true
}

// Contains reports whether the ground triple is in the store.
func (s *Store) Contains(t Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.dict == nil {
		return false
	}
	k, ok := s.lookupIDs(t)
	if !ok {
		return false
	}
	_, ok = s.pos[k]
	return ok
}

// Len returns the number of stored triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.trips)
}

// Match returns all ground triples matching the pattern, where variables
// (and only variables) act as wildcards. The result order is unspecified.
func (s *Store) Match(pattern Triple) []Triple {
	var out []Triple
	s.MatchFunc(pattern, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// MatchFunc streams all triples matching the pattern to fn; iteration
// stops early when fn returns false.
func (s *Store) MatchFunc(pattern Triple, fn func(Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.dict == nil {
		return
	}
	s.match(pattern, fn)
}

// resolve interns nothing: each concrete pattern position is looked up in
// the dictionary, and a miss means the pattern cannot match anything.
func (s *Store) resolve(p Triple) (k ids3, sb, pb, ob, possible bool) {
	possible = true
	if sb = p.S.IsConcrete(); sb {
		if k.s, possible = s.dict.Lookup(p.S); !possible {
			return
		}
	}
	if pb = p.P.IsConcrete(); pb {
		if k.p, possible = s.dict.Lookup(p.P); !possible {
			return
		}
	}
	if ob = p.O.IsConcrete(); ob {
		k.o, possible = s.dict.Lookup(p.O)
	}
	return
}

// match dispatches to the best index for the pattern's bound positions.
// Callers must hold at least a read lock.
func (s *Store) match(p Triple, fn func(Triple) bool) {
	k, sb, pb, ob, possible := s.resolve(p)
	if !possible {
		return
	}
	terms := s.dict.snapshot()
	switch {
	case sb && pb && ob:
		if _, ok := s.pos[k]; ok {
			fn(p)
		}
	case sb && pb:
		for _, o := range s.bySP[pack(k.s, k.p)] {
			if !fn(T(p.S, p.P, terms[o])) {
				return
			}
		}
	case pb && ob:
		for _, sub := range s.byPO[pack(k.p, k.o)] {
			if !fn(T(terms[sub], p.P, p.O)) {
				return
			}
		}
	case sb && ob:
		for _, pred := range s.byOS[pack(k.o, k.s)] {
			if !fn(T(p.S, terms[pred], p.O)) {
				return
			}
		}
	case sb:
		for _, po := range s.bySubj[k.s] {
			if !fn(T(p.S, terms[unpackHi(po)], terms[unpackLo(po)])) {
				return
			}
		}
	case pb:
		for _, os := range s.byPred[k.p] {
			if !fn(T(terms[unpackLo(os)], p.P, terms[unpackHi(os)])) {
				return
			}
		}
	case ob:
		for _, sp := range s.byObj[k.o] {
			if !fn(T(terms[unpackHi(sp)], terms[unpackLo(sp)], p.O)) {
				return
			}
		}
	default:
		for _, t := range s.trips {
			if !fn(T(terms[t.s], terms[t.p], terms[t.o])) {
				return
			}
		}
	}
}

// CountMatch returns the number of triples matching the pattern without
// materializing them. Every bound-position combination answers from a
// posting-list length in O(1), which is what the query planner's
// cardinality estimates rely on.
func (s *Store) CountMatch(pattern Triple) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.dict == nil {
		return 0
	}
	k, sb, pb, ob, possible := s.resolve(pattern)
	if !possible {
		return 0
	}
	switch {
	case sb && pb && ob:
		if _, ok := s.pos[k]; ok {
			return 1
		}
		return 0
	case sb && pb:
		return len(s.bySP[pack(k.s, k.p)])
	case pb && ob:
		return len(s.byPO[pack(k.p, k.o)])
	case sb && ob:
		return len(s.byOS[pack(k.o, k.s)])
	case sb:
		return len(s.bySubj[k.s])
	case pb:
		return len(s.byPred[k.p])
	case ob:
		return len(s.byObj[k.o])
	default:
		return len(s.trips)
	}
}

// Subjects returns the distinct subjects of triples with the given
// predicate and object.
func (s *Store) Subjects(pred, obj Term) []Term {
	var out []Term
	s.MatchFunc(T(NewVar("s"), pred, obj), func(t Triple) bool {
		out = append(out, t.S)
		return true
	})
	return out
}

// Objects returns the distinct objects of triples with the given subject
// and predicate.
func (s *Store) Objects(sub, pred Term) []Term {
	var out []Term
	s.MatchFunc(T(sub, pred, NewVar("o")), func(t Triple) bool {
		out = append(out, t.O)
		return true
	})
	return out
}

// All returns every stored triple in unspecified order.
func (s *Store) All() []Triple {
	return s.Match(T(NewVar("s"), NewVar("p"), NewVar("o")))
}
