package rdf

import (
	"fmt"
	"sync"
)

// Store is an in-memory, thread-safe triple store with SPO, POS and OSP
// hash indexes. Lookups with any combination of bound positions run
// against the most selective index.
//
// The zero value is ready to use.
type Store struct {
	mu sync.RWMutex
	// spo maps subject -> predicate -> set of objects.
	spo map[Term]map[Term]map[Term]struct{}
	// pos maps predicate -> object -> set of subjects.
	pos map[Term]map[Term]map[Term]struct{}
	// osp maps object -> subject -> set of predicates.
	osp map[Term]map[Term]map[Term]struct{}
	n   int
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

func (s *Store) init() {
	if s.spo == nil {
		s.spo = map[Term]map[Term]map[Term]struct{}{}
		s.pos = map[Term]map[Term]map[Term]struct{}{}
		s.osp = map[Term]map[Term]map[Term]struct{}{}
	}
}

func idxAdd(m map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	mb, ok := m[a]
	if !ok {
		mb = map[Term]map[Term]struct{}{}
		m[a] = mb
	}
	mc, ok := mb[b]
	if !ok {
		mc = map[Term]struct{}{}
		mb[b] = mc
	}
	if _, ok := mc[c]; ok {
		return false
	}
	mc[c] = struct{}{}
	return true
}

func idxRemove(m map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	mb, ok := m[a]
	if !ok {
		return false
	}
	mc, ok := mb[b]
	if !ok {
		return false
	}
	if _, ok := mc[c]; !ok {
		return false
	}
	delete(mc, c)
	if len(mc) == 0 {
		delete(mb, b)
	}
	if len(mb) == 0 {
		delete(m, a)
	}
	return true
}

// Add inserts a ground triple and reports whether it was newly added.
// Adding a non-ground triple returns an error.
func (s *Store) Add(t Triple) (bool, error) {
	if !t.IsGround() {
		return false, fmt.Errorf("rdf: cannot store non-ground triple %v", t)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.init()
	if !idxAdd(s.spo, t.S, t.P, t.O) {
		return false, nil
	}
	idxAdd(s.pos, t.P, t.O, t.S)
	idxAdd(s.osp, t.O, t.S, t.P)
	s.n++
	return true, nil
}

// MustAdd inserts a ground triple and panics on error; it is intended for
// building embedded ontologies whose data is known to be well-formed.
func (s *Store) MustAdd(t Triple) {
	if _, err := s.Add(t); err != nil {
		panic(err)
	}
}

// AddTriple is a convenience for MustAdd(T(sub, pred, obj)).
func (s *Store) AddTriple(sub, pred, obj Term) {
	s.MustAdd(T(sub, pred, obj))
}

// Remove deletes a triple and reports whether it was present.
func (s *Store) Remove(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.spo == nil {
		return false
	}
	if !idxRemove(s.spo, t.S, t.P, t.O) {
		return false
	}
	idxRemove(s.pos, t.P, t.O, t.S)
	idxRemove(s.osp, t.O, t.S, t.P)
	s.n--
	return true
}

// Contains reports whether the ground triple is in the store.
func (s *Store) Contains(t Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	mb, ok := s.spo[t.S]
	if !ok {
		return false
	}
	mc, ok := mb[t.P]
	if !ok {
		return false
	}
	_, ok = mc[t.O]
	return ok
}

// Len returns the number of stored triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Match returns all ground triples matching the pattern, where variables
// (and only variables) act as wildcards. The result order is unspecified.
func (s *Store) Match(pattern Triple) []Triple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.spo == nil {
		return nil
	}
	var out []Triple
	s.match(pattern, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// MatchFunc streams all triples matching the pattern to fn; iteration
// stops early when fn returns false.
func (s *Store) MatchFunc(pattern Triple, fn func(Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.spo == nil {
		return
	}
	s.match(pattern, fn)
}

// match dispatches to the best index for the pattern's bound positions.
// Callers must hold at least a read lock.
func (s *Store) match(p Triple, fn func(Triple) bool) {
	sb, pb, ob := p.S.IsConcrete(), p.P.IsConcrete(), p.O.IsConcrete()
	switch {
	case sb && pb && ob:
		if mb, ok := s.spo[p.S]; ok {
			if mc, ok := mb[p.P]; ok {
				if _, ok := mc[p.O]; ok {
					fn(p)
				}
			}
		}
	case sb && pb:
		if mb, ok := s.spo[p.S]; ok {
			for o := range mb[p.P] {
				if !fn(T(p.S, p.P, o)) {
					return
				}
			}
		}
	case pb && ob:
		if mb, ok := s.pos[p.P]; ok {
			for sub := range mb[p.O] {
				if !fn(T(sub, p.P, p.O)) {
					return
				}
			}
		}
	case sb && ob:
		if mb, ok := s.osp[p.O]; ok {
			for pred := range mb[p.S] {
				if !fn(T(p.S, pred, p.O)) {
					return
				}
			}
		}
	case sb:
		if mb, ok := s.spo[p.S]; ok {
			for pred, objs := range mb {
				for o := range objs {
					if !fn(T(p.S, pred, o)) {
						return
					}
				}
			}
		}
	case pb:
		if mb, ok := s.pos[p.P]; ok {
			for o, subs := range mb {
				for sub := range subs {
					if !fn(T(sub, p.P, o)) {
						return
					}
				}
			}
		}
	case ob:
		if mb, ok := s.osp[p.O]; ok {
			for sub, preds := range mb {
				for pred := range preds {
					if !fn(T(sub, pred, p.O)) {
						return
					}
				}
			}
		}
	default:
		for sub, mb := range s.spo {
			for pred, objs := range mb {
				for o := range objs {
					if !fn(T(sub, pred, o)) {
						return
					}
				}
			}
		}
	}
}

// CountMatch returns the number of triples matching the pattern without
// materializing them.
func (s *Store) CountMatch(pattern Triple) int {
	n := 0
	s.MatchFunc(pattern, func(Triple) bool { n++; return true })
	return n
}

// Subjects returns the distinct subjects of triples with the given
// predicate and object.
func (s *Store) Subjects(pred, obj Term) []Term {
	var out []Term
	s.MatchFunc(T(NewVar("s"), pred, obj), func(t Triple) bool {
		out = append(out, t.S)
		return true
	})
	return out
}

// Objects returns the distinct objects of triples with the given subject
// and predicate.
func (s *Store) Objects(sub, pred Term) []Term {
	var out []Term
	s.MatchFunc(T(sub, pred, NewVar("o")), func(t Triple) bool {
		out = append(out, t.O)
		return true
	})
	return out
}

// All returns every stored triple in unspecified order.
func (s *Store) All() []Triple {
	return s.Match(T(NewVar("s"), NewVar("p"), NewVar("o")))
}
