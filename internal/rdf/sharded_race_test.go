package rdf

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// renderAll returns a canonical string rendering of every triple a
// snapshot can see, used to assert byte-identical reads across
// concurrent publishes.
func renderAll(sn *Snapshot) string {
	ts := sn.All()
	SortTriples(ts)
	var b strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&b, "%v\n", t)
	}
	return b.String()
}

// TestShardedSnapshotStableUnderConcurrentPublish is the epoch-publish
// stress test: writers keep applying batches (publishing new epochs)
// while readers hold old snapshots; each reader renders its snapshot
// before and during the write storm and the bytes must be identical.
// Run under -race it also proves publication is properly synchronized.
func TestShardedSnapshotStableUnderConcurrentPublish(t *testing.T) {
	st := NewShardedStore(8)
	for _, tr := range shardedTriples(200) {
		st.MustAdd(tr)
	}

	const (
		writers        = 4
		readers        = 8
		batchesEach    = 50
		readsPerReader = 30
	)
	var wg sync.WaitGroup
	start := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < batchesEach; i++ {
				ins := T(iri(fmt.Sprintf("w%d-s%d", w, i)), iri("p"), iri(fmt.Sprintf("w%d-o%d", w, i)))
				del := T(iri(fmt.Sprintf("w%d-s%d", w, i-5)), iri("p"), iri(fmt.Sprintf("w%d-o%d", w, i-5)))
				if _, _, _, err := st.Apply(Batch{Insert: []Triple{ins}, Delete: []Triple{del}}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	errs := make(chan string, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			<-start
			for i := 0; i < readsPerReader; i++ {
				snap := st.Snapshot()
				before := renderAll(snap)
				cnt := snap.CountMatch(T(NewVar("s"), iri("p"), NewVar("o")))
				// Publishes land between these two renders; the held
				// snapshot must not move.
				after := renderAll(snap)
				if before != after {
					errs <- fmt.Sprintf("reader %d: snapshot epoch %d changed under publish", r, snap.Epoch())
					return
				}
				if cnt2 := snap.CountMatch(T(NewVar("s"), iri("p"), NewVar("o"))); cnt2 != cnt {
					errs <- fmt.Sprintf("reader %d: CountMatch moved %d -> %d within one snapshot", r, cnt, cnt2)
					return
				}
			}
		}(r)
	}

	close(start)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// Epochs advanced and the final state is internally consistent.
	if st.Epoch() == 0 {
		t.Fatal("no epochs published")
	}
	sizes := st.ShardSizes()
	sum := 0
	for _, n := range sizes {
		sum += n
	}
	if sum != st.Len() {
		t.Fatalf("shard sizes sum %d != Len %d", sum, st.Len())
	}
}

// TestShardedOldSnapshotSurvivesDeleteAll holds a snapshot, deletes
// every triple through many epochs, and verifies the held snapshot
// still serves its full original contents byte-identically.
func TestShardedOldSnapshotSurvivesDeleteAll(t *testing.T) {
	st := NewShardedStore(4)
	trips := shardedTriples(300)
	for _, tr := range trips {
		st.MustAdd(tr)
	}
	snap := st.Snapshot()
	want := renderAll(snap)

	// Delete in many small batches so plenty of epochs are published
	// while the snapshot is held.
	sort.Slice(trips, func(i, j int) bool { return trips[i].String() < trips[j].String() })
	for i := 0; i < len(trips); i += 10 {
		end := i + 10
		if end > len(trips) {
			end = len(trips)
		}
		if _, _, _, err := st.Apply(Batch{Delete: trips[i:end]}); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 0 {
		t.Fatalf("store not emptied: Len=%d", st.Len())
	}
	if got := renderAll(snap); got != want {
		t.Fatal("held snapshot changed after delete-all epochs")
	}
	if snap.Len() != 300 {
		t.Fatalf("held snapshot Len = %d, want 300", snap.Len())
	}
}
