package rdf

// shardBuilder accumulates one epoch's mutations for a single shard.
// It starts as a shallow clone of the base shardData — maps are
// copied, posting slices are shared — and copies each posting slice
// the first time it is touched this epoch ("owned"), so a batch that
// mutates k keys pays O(k) slice copies while untouched postings keep
// sharing memory with every older snapshot. freeze converts the
// builder into the immutable shardData for the next epoch.
type shardBuilder struct {
	data shardData
	// owned* record which posting slices have been copied this epoch
	// and may be mutated in place from now on.
	ownedSubj map[uint32]bool
	ownedPred map[uint32]bool
	ownedObj  map[uint32]bool
	ownedSP   map[uint64]bool
	ownedPO   map[uint64]bool
	ownedOS   map[uint64]bool
}

func newShardBuilder(base *shardData) *shardBuilder {
	b := &shardBuilder{
		data: shardData{
			pos:    make(map[ids3]int, len(base.pos)),
			trips:  append([]ids3(nil), base.trips...),
			bySubj: clonePostings(base.bySubj),
			byPred: clonePostings(base.byPred),
			byObj:  clonePostings(base.byObj),
			bySP:   cloneIDs(base.bySP),
			byPO:   cloneIDs(base.byPO),
			byOS:   cloneIDs(base.byOS),
		},
		ownedSubj: map[uint32]bool{},
		ownedPred: map[uint32]bool{},
		ownedObj:  map[uint32]bool{},
		ownedSP:   map[uint64]bool{},
		ownedPO:   map[uint64]bool{},
		ownedOS:   map[uint64]bool{},
	}
	for k, i := range base.pos {
		b.data.pos[k] = i
	}
	return b
}

// clonePostings shallow-copies a posting map: new map, shared slices.
func clonePostings(m map[uint32][]uint64) map[uint32][]uint64 {
	out := make(map[uint32][]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// cloneIDs shallow-copies a pair-index map: new map, shared slices.
func cloneIDs(m map[uint64][]uint32) map[uint64][]uint32 {
	out := make(map[uint64][]uint32, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ownPacked ensures m[key] is a private copy this epoch and returns it.
func ownPacked(m map[uint32][]uint64, owned map[uint32]bool, key uint32) []uint64 {
	l := m[key]
	if !owned[key] {
		l = append(make([]uint64, 0, len(l)+1), l...)
		owned[key] = true
	}
	return l
}

// ownID ensures m[key] is a private copy this epoch and returns it.
func ownID(m map[uint64][]uint32, owned map[uint64]bool, key uint64) []uint32 {
	l := m[key]
	if !owned[key] {
		l = append(make([]uint32, 0, len(l)+1), l...)
		owned[key] = true
	}
	return l
}

// dropPacked64 swap-deletes one occurrence of v from l.
func dropPacked64(l []uint64, v uint64) []uint64 {
	for i, x := range l {
		if x == v {
			l[i] = l[len(l)-1]
			return l[:len(l)-1]
		}
	}
	return l
}

// dropID32 swap-deletes one occurrence of v from l.
func dropID32(l []uint32, v uint32) []uint32 {
	for i, x := range l {
		if x == v {
			l[i] = l[len(l)-1]
			return l[:len(l)-1]
		}
	}
	return l
}

// add buffers an insert and reports whether the triple was absent.
func (b *shardBuilder) add(k ids3) bool {
	if _, ok := b.data.pos[k]; ok {
		return false
	}
	d := &b.data
	d.pos[k] = len(d.trips)
	d.trips = append(d.trips, k)
	d.bySubj[k.s] = append(ownPacked(d.bySubj, b.ownedSubj, k.s), pack(k.p, k.o))
	d.byPred[k.p] = append(ownPacked(d.byPred, b.ownedPred, k.p), pack(k.o, k.s))
	d.byObj[k.o] = append(ownPacked(d.byObj, b.ownedObj, k.o), pack(k.s, k.p))
	d.bySP[pack(k.s, k.p)] = append(ownID(d.bySP, b.ownedSP, pack(k.s, k.p)), k.o)
	d.byPO[pack(k.p, k.o)] = append(ownID(d.byPO, b.ownedPO, pack(k.p, k.o)), k.s)
	d.byOS[pack(k.o, k.s)] = append(ownID(d.byOS, b.ownedOS, pack(k.o, k.s)), k.p)
	return true
}

// remove buffers a delete and reports whether the triple was present.
func (b *shardBuilder) remove(k ids3) bool {
	d := &b.data
	i, ok := d.pos[k]
	if !ok {
		return false
	}
	last := len(d.trips) - 1
	d.trips[i] = d.trips[last]
	d.pos[d.trips[i]] = i
	d.trips = d.trips[:last]
	delete(d.pos, k)
	setPacked(d.bySubj, k.s, dropPacked64(ownPacked(d.bySubj, b.ownedSubj, k.s), pack(k.p, k.o)))
	setPacked(d.byPred, k.p, dropPacked64(ownPacked(d.byPred, b.ownedPred, k.p), pack(k.o, k.s)))
	setPacked(d.byObj, k.o, dropPacked64(ownPacked(d.byObj, b.ownedObj, k.o), pack(k.s, k.p)))
	setID(d.bySP, pack(k.s, k.p), dropID32(ownID(d.bySP, b.ownedSP, pack(k.s, k.p)), k.o))
	setID(d.byPO, pack(k.p, k.o), dropID32(ownID(d.byPO, b.ownedPO, pack(k.p, k.o)), k.s))
	setID(d.byOS, pack(k.o, k.s), dropID32(ownID(d.byOS, b.ownedOS, pack(k.o, k.s)), k.p))
	return true
}

// setPacked stores a posting slice back, deleting emptied keys so map
// size tracks live postings.
func setPacked(m map[uint32][]uint64, key uint32, l []uint64) {
	if len(l) == 0 {
		delete(m, key)
	} else {
		m[key] = l
	}
}

// setID stores a pair-index slice back, deleting emptied keys.
func setID(m map[uint64][]uint32, key uint64, l []uint32) {
	if len(l) == 0 {
		delete(m, key)
	} else {
		m[key] = l
	}
}

// freeze releases the builder's data as the next epoch's immutable
// shard.
func (b *shardBuilder) freeze() *shardData {
	d := b.data
	return &d
}
