package rdf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseNTriplesBasic(t *testing.T) {
	in := `
# a comment
<http://ex.org/park> <http://ex.org/instanceOf> <http://ex.org/Place> .
<http://ex.org/park> <http://ex.org/label> "Delaware Park" .
<http://ex.org/park> <http://ex.org/name> "parc"@fr .
<http://ex.org/park> <http://ex.org/size> "42"^^<` + XSDInteger + `> .
_:b0 <http://ex.org/p> _:b1 .
`
	ts, err := ParseNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseNTriples: %v", err)
	}
	if len(ts) != 5 {
		t.Fatalf("parsed %d triples, want 5", len(ts))
	}
	if ts[0].S != NewIRI("http://ex.org/park") {
		t.Errorf("triple 0 subject = %v", ts[0].S)
	}
	if ts[1].O != NewLiteral("Delaware Park") {
		t.Errorf("triple 1 object = %v", ts[1].O)
	}
	if ts[2].O != NewLangLiteral("parc", "fr") {
		t.Errorf("triple 2 object = %v", ts[2].O)
	}
	if ts[3].O != NewTypedLiteral("42", XSDInteger) {
		t.Errorf("triple 3 object = %v", ts[3].O)
	}
	if ts[4].S != NewBlank("b0") || ts[4].O != NewBlank("b1") {
		t.Errorf("triple 4 = %v", ts[4])
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	in := `<http://e/s> <http://e/p> "line\nbreak \"quoted\" tab\tdone" .`
	ts, err := ParseNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseNTriples: %v", err)
	}
	want := "line\nbreak \"quoted\" tab\tdone"
	if ts[0].O.Value() != want {
		t.Fatalf("unescaped literal = %q, want %q", ts[0].O.Value(), want)
	}
}

func TestParseNTriplesErrors(t *testing.T) {
	bad := []string{
		`<http://e/s> <http://e/p> <http://e/o>`,     // missing dot
		`<http://e/s> <http://e/p "lit" .`,           // unterminated IRI
		`<http://e/s> <http://e/p> "unterminated .`,  // unterminated literal
		`<http://e/s> <http://e/p> "x"@ .`,           // empty lang
		`<http://e/s> <http://e/p> "x"^^<noend .`,    // unterminated datatype
		`<http://e/s> <http://e/p> "bad\q escape" .`, // bad escape
		`<http://e/s> %bogus <http://e/o> .`,         // bad predicate
		`_: <http://e/p> <http://e/o> .`,             // empty blank label
		`<http://e/s> <http://e/p> .`,                // missing object
	}
	for _, in := range bad {
		if _, err := ParseNTriples(strings.NewReader(in)); err == nil {
			t.Errorf("ParseNTriples(%q) succeeded, want error", in)
		}
	}
}

func TestWriteNTriplesRejectsVariables(t *testing.T) {
	err := WriteNTriples(&bytes.Buffer{}, []Triple{T(NewVar("x"), NewIRI("p"), NewIRI("o"))})
	if err == nil {
		t.Fatal("WriteNTriples accepted a variable, want error")
	}
}

func TestLoadNTriples(t *testing.T) {
	in := `<http://e/a> <http://e/p> <http://e/b> .
<http://e/a> <http://e/p> <http://e/b> .
<http://e/c> <http://e/p> <http://e/d> .`
	s := NewStore()
	n, err := LoadNTriples(s, strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadNTriples: %v", err)
	}
	if n != 2 {
		t.Fatalf("added %d, want 2 (one duplicate)", n)
	}
	if s.Len() != 2 {
		t.Fatalf("store Len = %d, want 2", s.Len())
	}
}

// Property: serialize → parse round-trips any set of ground triples whose
// literals use the escapes we support.
func TestNTriplesRoundTrip(t *testing.T) {
	lexemes := []string{"a", "hello world", "with \"quotes\"", "tab\tand\nnewline", "Ünïcøde 東京"}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var ts []Triple
		for i := 0; i < int(n%20)+1; i++ {
			var o Term
			switch r.Intn(4) {
			case 0:
				o = NewIRI("http://e/o" + string(rune('a'+r.Intn(5))))
			case 1:
				o = NewLiteral(lexemes[r.Intn(len(lexemes))])
			case 2:
				o = NewLangLiteral(lexemes[r.Intn(len(lexemes)-2)], "en")
			default:
				o = NewTypedLiteral("7", XSDInteger)
			}
			ts = append(ts, T(NewIRI("http://e/s"), NewIRI("http://e/p"), o))
		}
		var buf bytes.Buffer
		if err := WriteNTriples(&buf, ts); err != nil {
			return false
		}
		got, err := ParseNTriples(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(ts) {
			return false
		}
		for i := range ts {
			if got[i] != ts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
