package rdf

import (
	"fmt"
	"testing"
)

func shardedTriples(n int) []Triple {
	ts := make([]Triple, n)
	for i := range ts {
		ts[i] = T(iri(fmt.Sprintf("s%d", i%97)), iri(fmt.Sprintf("p%d", i%7)), iri(fmt.Sprintf("o%d", i)))
	}
	return ts
}

func TestShardedAddSnapshotReadYourWrites(t *testing.T) {
	st := NewShardedStore(4)
	tr := T(iri("a"), iri("p"), iri("b"))
	if st.Len() != 0 || st.Epoch() != 0 {
		t.Fatalf("empty store: Len=%d Epoch=%d, want 0,0", st.Len(), st.Epoch())
	}
	ok, err := st.Add(tr)
	if err != nil || !ok {
		t.Fatalf("Add = %v, %v", ok, err)
	}
	// Read methods publish pending writes: read-your-writes.
	if !st.Contains(tr) {
		t.Fatal("Contains after Add = false")
	}
	if st.Epoch() != 1 {
		t.Fatalf("Epoch after first publish = %d, want 1", st.Epoch())
	}
	ok, err = st.Add(tr)
	if err != nil || ok {
		t.Fatalf("duplicate Add = %v, %v, want false, nil", ok, err)
	}
	// A no-op re-add marks the shard dirty but publishing it must not
	// change contents.
	if got := st.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestShardedSnapshotIsolation(t *testing.T) {
	st := NewShardedStore(4)
	old := T(iri("a"), iri("p"), iri("b"))
	st.MustAdd(old)
	snap := st.Snapshot()
	if snap.Len() != 1 {
		t.Fatalf("snap.Len = %d, want 1", snap.Len())
	}

	newT := T(iri("a"), iri("p"), iri("c"))
	if _, _, _, err := st.Apply(Batch{Insert: []Triple{newT}, Delete: []Triple{old}}); err != nil {
		t.Fatal(err)
	}
	// Old snapshot is frozen: still sees old, not newT.
	if !snap.Contains(old) || snap.Contains(newT) {
		t.Fatalf("old snapshot changed: Contains(old)=%v Contains(new)=%v", snap.Contains(old), snap.Contains(newT))
	}
	if got := snap.CountMatch(T(iri("a"), NewVar("p"), NewVar("o"))); got != 1 {
		t.Fatalf("old snapshot CountMatch = %d, want 1", got)
	}
	// New snapshot sees the batch.
	cur := st.Snapshot()
	if cur.Contains(old) || !cur.Contains(newT) {
		t.Fatalf("new snapshot wrong: Contains(old)=%v Contains(new)=%v", cur.Contains(old), cur.Contains(newT))
	}
	if cur.Epoch() <= snap.Epoch() {
		t.Fatalf("epoch not monotonic: %d then %d", snap.Epoch(), cur.Epoch())
	}
}

func TestShardedApplyReportsCountsAndEpoch(t *testing.T) {
	st := NewShardedStore(0)
	a := T(iri("a"), iri("p"), iri("b"))
	b := T(iri("c"), iri("p"), iri("d"))
	added, removed, epoch, err := st.Apply(Batch{Insert: []Triple{a, b, a}})
	if err != nil || added != 2 || removed != 0 {
		t.Fatalf("Apply = %d, %d, %v; want 2, 0, nil", added, removed, err)
	}
	if epoch != st.Epoch() {
		t.Fatalf("Apply epoch %d != store epoch %d", epoch, st.Epoch())
	}
	added, removed, epoch2, err := st.Apply(Batch{Delete: []Triple{a, T(iri("x"), iri("y"), iri("z"))}})
	if err != nil || added != 0 || removed != 1 {
		t.Fatalf("Apply = %d, %d, %v; want 0, 1, nil", added, removed, err)
	}
	if epoch2 <= epoch {
		t.Fatalf("epoch did not advance: %d then %d", epoch, epoch2)
	}
}

func TestShardedApplyRejectsNonGroundBatchWhole(t *testing.T) {
	st := NewShardedStore(2)
	good := T(iri("a"), iri("p"), iri("b"))
	bad := T(iri("a"), iri("p"), NewVar("x"))
	before := st.Epoch()
	added, removed, epoch, err := st.Apply(Batch{Insert: []Triple{good, bad}})
	if err == nil {
		t.Fatal("Apply with non-ground insert: err = nil")
	}
	if added != 0 || removed != 0 || epoch != before {
		t.Fatalf("rejected batch leaked state: added=%d removed=%d epoch=%d (before %d)", added, removed, epoch, before)
	}
	if st.Contains(good) {
		t.Fatal("rejected batch inserted a triple")
	}
}

func TestShardedShardSizesSumToLen(t *testing.T) {
	st := NewShardedStore(8)
	for _, tr := range shardedTriples(500) {
		st.MustAdd(tr)
	}
	sizes := st.ShardSizes()
	if len(sizes) != st.NumShards() {
		t.Fatalf("len(ShardSizes) = %d, want %d", len(sizes), st.NumShards())
	}
	sum, populated := 0, 0
	for _, n := range sizes {
		sum += n
		if n > 0 {
			populated++
		}
	}
	if sum != st.Len() {
		t.Fatalf("shard sizes sum %d != Len %d", sum, st.Len())
	}
	// 97 distinct subjects over 8 shards: the hash should populate
	// more than one shard or sharding is broken.
	if populated < 2 {
		t.Fatalf("only %d shard populated for 97 subjects", populated)
	}
}

func TestShardedMatchPatterns(t *testing.T) {
	st := NewShardedStore(4)
	trips := []Triple{
		T(iri("alice"), iri("knows"), iri("bob")),
		T(iri("alice"), iri("knows"), iri("carol")),
		T(iri("bob"), iri("knows"), iri("carol")),
		T(iri("alice"), iri("likes"), iri("dave")),
	}
	for _, tr := range trips {
		st.MustAdd(tr)
	}
	cases := []struct {
		pat  Triple
		want int
	}{
		{T(iri("alice"), NewVar("p"), NewVar("o")), 3},
		{T(NewVar("s"), iri("knows"), NewVar("o")), 3},
		{T(NewVar("s"), NewVar("p"), iri("carol")), 2},
		{T(iri("alice"), iri("knows"), NewVar("o")), 2},
		{T(NewVar("s"), iri("knows"), iri("carol")), 2},
		{T(iri("alice"), NewVar("p"), iri("dave")), 1},
		{T(iri("alice"), iri("likes"), iri("dave")), 1},
		{T(NewVar("s"), NewVar("p"), NewVar("o")), 4},
		{T(iri("nobody"), NewVar("p"), NewVar("o")), 0},
	}
	for _, c := range cases {
		if got := len(st.Match(c.pat)); got != c.want {
			t.Errorf("Match(%v) = %d results, want %d", c.pat, got, c.want)
		}
		if got := st.CountMatch(c.pat); got != c.want {
			t.Errorf("CountMatch(%v) = %d, want %d", c.pat, got, c.want)
		}
	}
	if got := len(st.Subjects(iri("knows"), iri("carol"))); got != 2 {
		t.Errorf("Subjects = %d, want 2", got)
	}
	if got := len(st.Objects(iri("alice"), iri("knows"))); got != 2 {
		t.Errorf("Objects = %d, want 2", got)
	}
}

func TestShardedMatchFuncEarlyStop(t *testing.T) {
	st := NewShardedStore(4)
	for _, tr := range shardedTriples(100) {
		st.MustAdd(tr)
	}
	n := 0
	st.MatchFunc(T(NewVar("s"), NewVar("p"), NewVar("o")), func(Triple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d triples, want 5", n)
	}
}

func TestShardedRemoveHeavyAndDictRetention(t *testing.T) {
	st := NewShardedStore(4)
	trips := shardedTriples(300)
	for _, tr := range trips {
		st.MustAdd(tr)
	}
	dictBefore := st.Dict().Len()
	// Remove everything in two interleaved batches, re-adding a third
	// of it in between, so swap-delete bookkeeping is exercised under
	// churn.
	if _, removed, _, err := st.Apply(Batch{Delete: trips[:150]}); err != nil || removed != 150 {
		t.Fatalf("Apply delete = %d, %v", removed, err)
	}
	if added, _, _, err := st.Apply(Batch{Insert: trips[:100]}); err != nil || added != 100 {
		t.Fatalf("Apply re-insert = %d, %v", added, err)
	}
	if got, want := st.Len(), 300-150+100; got != want {
		t.Fatalf("Len after churn = %d, want %d", got, want)
	}
	for _, tr := range trips[:100] {
		if !st.Contains(tr) {
			t.Fatalf("re-inserted triple missing: %v", tr)
		}
	}
	for _, tr := range trips[100:150] {
		if st.Contains(tr) {
			t.Fatalf("deleted triple still present: %v", tr)
		}
	}
	if _, removed, _, err := st.Apply(Batch{Delete: trips}); err != nil || removed != 250 {
		t.Fatalf("Apply delete-all = %d, %v", removed, err)
	}
	if st.Len() != 0 {
		t.Fatalf("Len after delete-all = %d, want 0", st.Len())
	}
	if got := st.CountMatch(T(NewVar("s"), NewVar("p"), NewVar("o"))); got != 0 {
		t.Fatalf("CountMatch all after delete-all = %d, want 0", got)
	}
	// Interned IDs are intentionally retained: every live snapshot
	// indexes the same dense term table.
	if st.Dict().Len() != dictBefore {
		t.Fatalf("dict shrank: %d -> %d", dictBefore, st.Dict().Len())
	}
}
