package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteNTriples serializes the triples to w in N-Triples syntax, one
// statement per line. Variables are rejected because N-Triples is a data
// format.
func WriteNTriples(w io.Writer, triples []Triple) error {
	bw := bufio.NewWriter(w)
	for _, t := range triples {
		if !t.IsGround() {
			return fmt.Errorf("rdf: cannot serialize non-ground triple %v", t)
		}
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n", t.S, t.P, t.O); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseNTriples reads N-Triples statements from r. Lines that are empty or
// start with '#' are skipped. The supported grammar covers IRIs, plain,
// language-tagged and datatyped literals, and blank nodes.
func ParseNTriples(r io.Reader) ([]Triple, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Triple
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseNTLine(line)
		if err != nil {
			return nil, fmt.Errorf("rdf: line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("rdf: reading n-triples: %w", err)
	}
	return out, nil
}

// LoadNTriples parses N-Triples from r and adds every statement to the
// store, returning the number of newly added triples.
func LoadNTriples(s *Store, r io.Reader) (int, error) {
	triples, err := ParseNTriples(r)
	if err != nil {
		return 0, err
	}
	added := 0
	for _, t := range triples {
		ok, err := s.Add(t)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

func parseNTLine(line string) (Triple, error) {
	p := &ntParser{in: line}
	s, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pr, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	o, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipSpace()
	if !p.eat('.') {
		return Triple{}, fmt.Errorf("missing terminating '.' in %q", line)
	}
	return T(s, pr, o), nil
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) skipSpace() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) eat(c byte) bool {
	if p.pos < len(p.in) && p.in[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *ntParser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.in[p.pos] {
	case '<':
		end := strings.IndexByte(p.in[p.pos:], '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.in[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return NewIRI(iri), nil
	case '"':
		return p.literal()
	case '_':
		if p.pos+1 >= len(p.in) || p.in[p.pos+1] != ':' {
			return Term{}, fmt.Errorf("malformed blank node")
		}
		start := p.pos + 2
		end := start
		for end < len(p.in) && p.in[end] != ' ' && p.in[end] != '\t' {
			end++
		}
		label := p.in[start:end]
		if label == "" {
			return Term{}, fmt.Errorf("empty blank node label")
		}
		p.pos = end
		return NewBlank(label), nil
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.in[p.pos])
	}
}

func (p *ntParser) literal() (Term, error) {
	// p.in[p.pos] == '"'
	var b strings.Builder
	i := p.pos + 1
	for i < len(p.in) {
		c := p.in[i]
		if c == '\\' {
			if i+1 >= len(p.in) {
				return Term{}, fmt.Errorf("dangling escape in literal")
			}
			switch p.in[i+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Term{}, fmt.Errorf("unsupported escape \\%c", p.in[i+1])
			}
			i += 2
			continue
		}
		if c == '"' {
			break
		}
		b.WriteByte(c)
		i++
	}
	if i >= len(p.in) {
		return Term{}, fmt.Errorf("unterminated literal")
	}
	p.pos = i + 1 // past closing quote
	lex := b.String()
	// Optional language tag or datatype.
	if p.pos < len(p.in) && p.in[p.pos] == '@' {
		start := p.pos + 1
		end := start
		for end < len(p.in) && p.in[end] != ' ' && p.in[end] != '\t' {
			end++
		}
		lang := p.in[start:end]
		if lang == "" {
			return Term{}, fmt.Errorf("empty language tag")
		}
		p.pos = end
		return NewLangLiteral(lex, lang), nil
	}
	if strings.HasPrefix(p.in[p.pos:], "^^<") {
		rest := p.in[p.pos+3:]
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			return Term{}, fmt.Errorf("unterminated datatype IRI")
		}
		dt := rest[:end]
		p.pos += 3 + end + 1
		return NewTypedLiteral(lex, dt), nil
	}
	return NewLiteral(lex), nil
}
