package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is a single RDF statement. Any position may hold a variable when
// the triple is used as a query pattern; triples stored in a Store must be
// ground.
type Triple struct {
	S, P, O Term
}

// T is shorthand for constructing a Triple.
func T(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// IsGround reports whether no position holds a variable.
func (t Triple) IsGround() bool {
	return t.S.IsConcrete() && t.P.IsConcrete() && t.O.IsConcrete()
}

// Vars returns the names of the variables appearing in the triple, in
// subject-predicate-object order, without duplicates.
func (t Triple) Vars() []string {
	var out []string
	t.EachVar(func(v string) { out = append(out, v) })
	return out
}

// EachVar calls fn for each distinct variable name in the triple, in
// subject-predicate-object order, without allocating. Query planning and
// compilation walk pattern variables in inner loops, where the slice
// Vars builds per call is measurable.
func (t Triple) EachVar(fn func(string)) {
	sv := t.S.IsVar()
	pv := t.P.IsVar()
	if sv {
		fn(t.S.Value())
	}
	if pv && !(sv && t.P.Value() == t.S.Value()) {
		fn(t.P.Value())
	}
	if t.O.IsVar() &&
		!(sv && t.O.Value() == t.S.Value()) &&
		!(pv && t.O.Value() == t.P.Value()) {
		fn(t.O.Value())
	}
}

// Equal reports componentwise equality.
func (t Triple) Equal(o Triple) bool { return t == o }

// Compare orders triples lexicographically by S, P, O.
func (t Triple) Compare(o Triple) int {
	if c := t.S.Compare(o.S); c != 0 {
		return c
	}
	if c := t.P.Compare(o.P); c != 0 {
		return c
	}
	return t.O.Compare(o.O)
}

func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// SortTriples sorts a slice of triples in place in S, P, O order.
func SortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// Graph is an ordered collection of triples with set-like helpers. Unlike
// Store it preserves insertion order and permits non-ground triples, which
// makes it suitable for carrying query patterns between pipeline modules.
type Graph struct {
	triples []Triple
	index   map[Triple]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{index: map[Triple]bool{}}
}

// Add appends the triple if it is not already present and reports whether
// it was inserted.
func (g *Graph) Add(t Triple) bool {
	if g.index == nil {
		g.index = map[Triple]bool{}
	}
	if g.index[t] {
		return false
	}
	g.index[t] = true
	g.triples = append(g.triples, t)
	return true
}

// AddAll adds every triple in ts.
func (g *Graph) AddAll(ts ...Triple) {
	for _, t := range ts {
		g.Add(t)
	}
}

// Remove deletes the triple if present and reports whether it was removed.
func (g *Graph) Remove(t Triple) bool {
	if g.index == nil || !g.index[t] {
		return false
	}
	delete(g.index, t)
	for i, x := range g.triples {
		if x == t {
			g.triples = append(g.triples[:i], g.triples[i+1:]...)
			break
		}
	}
	return true
}

// Contains reports whether the triple is present.
func (g *Graph) Contains(t Triple) bool { return g.index != nil && g.index[t] }

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.triples) }

// Triples returns a copy of the triples in insertion order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, len(g.triples))
	copy(out, g.triples)
	return out
}

// Vars returns the variable names appearing anywhere in the graph, in
// first-appearance order.
func (g *Graph) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range g.triples {
		for _, v := range t.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := NewGraph()
	c.AddAll(g.triples...)
	return c
}

func (g *Graph) String() string {
	var b strings.Builder
	for _, t := range g.triples {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
