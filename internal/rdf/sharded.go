package rdf

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count used when NewShardedStore is given a
// non-positive value. Sixteen shards keep per-shard clone cost small at
// the scales we load-test while leaving the per-snapshot fan-out (counts
// with an unbound subject sum across shards) cheap.
const DefaultShards = 16

// ShardedStore is a mutable triple store partitioned by subject hash
// whose readers never observe a half-applied write. Writes buffer into
// per-shard copy-on-write builders and become visible only when a new
// immutable Snapshot is published under a monotonically increasing
// epoch; every read path (including the ShardedStore's own convenience
// read methods) runs against one published Snapshot, so a query that
// pins a snapshot sees a single consistent epoch for its whole
// lifetime no matter how many batches land meanwhile.
//
// Publication is read-triggered: mutators only mark the store dirty,
// and the next Snapshot call freezes all pending builders into one new
// epoch. Bulk loads therefore cost one publish, not one per Add, while
// read-your-writes still holds. Apply publishes eagerly so callers
// learn the epoch their batch landed in.
//
// The per-shard index layout is identical to Store's flat posting
// lists; see that type for the rationale. The zero value is not usable
// — create one with NewShardedStore.
type ShardedStore struct {
	mu       sync.Mutex // serializes mutators and publication
	dict     *Dict
	mask     uint32
	pending  []*shardBuilder // nil entries are clean shards
	dirty    atomic.Bool
	snap     atomic.Pointer[Snapshot]
	epochGen uint64 // last published epoch; guarded by mu
}

// Snapshot is an immutable point-in-time view of a ShardedStore. It
// implements the same read API as Store (Match, MatchFunc, CountMatch,
// Subjects, Objects, Contains, Len, All) and therefore satisfies the
// sparql Source and Counter interfaces; a consumer that holds a
// Snapshot across an entire query is isolated from concurrent writes.
type Snapshot struct {
	epoch  uint64
	dict   *Dict
	mask   uint32
	shards []*shardData
	total  int
}

// shardData is one shard's immutable index set, laid out exactly like
// the flat Store. Posting slices may be shared with older and newer
// snapshots; they are copied before the first mutation in each epoch.
type shardData struct {
	pos    map[ids3]int
	trips  []ids3
	bySubj map[uint32][]uint64
	byPred map[uint32][]uint64
	byObj  map[uint32][]uint64
	bySP   map[uint64][]uint32
	byPO   map[uint64][]uint32
	byOS   map[uint64][]uint32
}

var emptyShard = &shardData{}

// Batch is a set of mutations applied and published atomically:
// readers observe all of a batch's triples or none of them. Deletes
// are applied before inserts.
type Batch struct {
	Insert []Triple
	Delete []Triple
}

// NewShardedStore returns an empty store with the given shard count,
// rounded up to a power of two; non-positive means DefaultShards.
func NewShardedStore(shards int) *ShardedStore {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	st := &ShardedStore{
		dict:    NewDict(),
		mask:    uint32(n - 1),
		pending: make([]*shardBuilder, n),
	}
	empty := &Snapshot{dict: st.dict, mask: st.mask, shards: make([]*shardData, n)}
	for i := range empty.shards {
		empty.shards[i] = emptyShard
	}
	st.snap.Store(empty)
	return st
}

// shardOf maps a subject ID to its shard. IDs are dense and
// first-intern ordered, so a Fibonacci multiplicative hash spreads
// consecutively allocated subjects instead of striping them.
func (st *ShardedStore) shardOf(sid uint32) uint32 {
	return (sid * 0x9E3779B1) >> 16 & st.mask
}

func (sn *Snapshot) shardOf(sid uint32) uint32 {
	return (sid * 0x9E3779B1) >> 16 & sn.mask
}

// Dict exposes the store's symbol table, shared by all snapshots.
func (st *ShardedStore) Dict() *Dict { return st.dict }

// builder returns the pending builder for a shard, creating it from
// the current snapshot's shard on first mutation this epoch. Callers
// hold mu.
func (st *ShardedStore) builder(shard uint32) *shardBuilder {
	if b := st.pending[shard]; b != nil {
		return b
	}
	b := newShardBuilder(st.snap.Load().shards[shard])
	st.pending[shard] = b
	st.dirty.Store(true)
	return b
}

// add buffers one insert; callers hold mu.
func (st *ShardedStore) add(t Triple) (bool, error) {
	if !t.IsGround() {
		return false, fmt.Errorf("rdf: cannot store non-ground triple %v", t)
	}
	k := ids3{st.dict.Intern(t.S), st.dict.Intern(t.P), st.dict.Intern(t.O)}
	return st.builder(st.shardOf(k.s)).add(k), nil
}

// remove buffers one delete; callers hold mu.
func (st *ShardedStore) remove(t Triple) bool {
	sid, ok := st.dict.Lookup(t.S)
	if !ok {
		return false
	}
	pid, ok := st.dict.Lookup(t.P)
	if !ok {
		return false
	}
	oid, ok := st.dict.Lookup(t.O)
	if !ok {
		return false
	}
	return st.builder(st.shardOf(sid)).remove(ids3{sid, pid, oid})
}

// Add buffers a ground triple for the next epoch and reports whether
// it was absent. The triple becomes visible to the next Snapshot call
// (including the store's own read methods), not to snapshots already
// held by readers.
func (st *ShardedStore) Add(t Triple) (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.add(t)
}

// MustAdd inserts a ground triple and panics on error; it is intended
// for building embedded ontologies whose data is known well-formed.
func (st *ShardedStore) MustAdd(t Triple) {
	if _, err := st.Add(t); err != nil {
		panic(err)
	}
}

// AddTriple is a convenience for MustAdd(T(sub, pred, obj)).
func (st *ShardedStore) AddTriple(sub, pred, obj Term) {
	st.MustAdd(T(sub, pred, obj))
}

// Remove buffers a delete for the next epoch and reports whether the
// triple was present. As in Store, interned term IDs are retained
// forever by design: IDs are dense array indexes shared by every live
// snapshot, so reclaiming them would require a global rewrite.
func (st *ShardedStore) Remove(t Triple) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.remove(t)
}

// Apply applies a batch (deletes first, then inserts) and publishes
// the resulting epoch immediately. It returns the number of triples
// actually inserted and deleted and the epoch now serving them. A
// batch containing a non-ground insert is rejected whole: nothing is
// buffered and the current epoch is returned.
func (st *ShardedStore) Apply(b Batch) (added, removed int, epoch uint64, err error) {
	for _, t := range b.Insert {
		if !t.IsGround() {
			return 0, 0, st.Epoch(), fmt.Errorf("rdf: cannot store non-ground triple %v", t)
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, t := range b.Delete {
		if st.remove(t) {
			removed++
		}
	}
	for _, t := range b.Insert {
		if ok, _ := st.add(t); ok {
			added++
		}
	}
	return added, removed, st.publishLocked().epoch, nil
}

// publishLocked freezes all pending builders into a new snapshot and
// publishes it under the next epoch. Callers hold mu. Publishing with
// no pending writes returns the current snapshot unchanged.
func (st *ShardedStore) publishLocked() *Snapshot {
	cur := st.snap.Load()
	if !st.dirty.Load() {
		return cur
	}
	next := &Snapshot{
		dict:   st.dict,
		mask:   st.mask,
		shards: make([]*shardData, len(cur.shards)),
	}
	for i, b := range st.pending {
		if b == nil {
			next.shards[i] = cur.shards[i]
		} else {
			next.shards[i] = b.freeze()
			st.pending[i] = nil
		}
		next.total += len(next.shards[i].trips)
	}
	st.epochGen++
	next.epoch = st.epochGen
	// The dirty flag must drop before the pointer swaps so a racing
	// reader that sees dirty==false loads the new snapshot or an older
	// one, never a torn state; both orders are correct, this one spares
	// the reader a needless lock acquisition.
	st.dirty.Store(false)
	st.snap.Store(next)
	return next
}

// Snapshot returns the current published view, first publishing any
// pending writes. The common clean path is a single atomic load.
func (st *ShardedStore) Snapshot() *Snapshot {
	if !st.dirty.Load() {
		return st.snap.Load()
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.publishLocked()
}

// Epoch returns the epoch of the current published view (pending
// writes are published first, as in Snapshot).
func (st *ShardedStore) Epoch() uint64 { return st.Snapshot().epoch }

// ShardSizes returns the triple count per shard of the current view.
func (st *ShardedStore) ShardSizes() []int { return st.Snapshot().ShardSizes() }

// NumShards returns the shard count.
func (st *ShardedStore) NumShards() int { return int(st.mask) + 1 }

// The ShardedStore read methods below delegate to the current
// snapshot. Two calls may observe different epochs; consumers that
// need one consistent view for several reads must pin a Snapshot.

// Match returns all ground triples matching the pattern.
func (st *ShardedStore) Match(pattern Triple) []Triple { return st.Snapshot().Match(pattern) }

// MatchFunc streams all triples matching the pattern to fn.
func (st *ShardedStore) MatchFunc(pattern Triple, fn func(Triple) bool) {
	st.Snapshot().MatchFunc(pattern, fn)
}

// CountMatch returns the number of triples matching the pattern.
func (st *ShardedStore) CountMatch(pattern Triple) int { return st.Snapshot().CountMatch(pattern) }

// Contains reports whether the ground triple is in the store.
func (st *ShardedStore) Contains(t Triple) bool { return st.Snapshot().Contains(t) }

// Len returns the number of stored triples.
func (st *ShardedStore) Len() int { return st.Snapshot().Len() }

// Subjects returns the subjects of triples with the given predicate
// and object.
func (st *ShardedStore) Subjects(pred, obj Term) []Term { return st.Snapshot().Subjects(pred, obj) }

// Objects returns the objects of triples with the given subject and
// predicate.
func (st *ShardedStore) Objects(sub, pred Term) []Term { return st.Snapshot().Objects(sub, pred) }

// All returns every stored triple in unspecified order.
func (st *ShardedStore) All() []Triple { return st.Snapshot().All() }

// Epoch returns the snapshot's publication epoch; 0 is the empty
// pre-publication view.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// Len returns the number of triples in the snapshot.
func (sn *Snapshot) Len() int { return sn.total }

// ShardSizes returns the snapshot's triple count per shard.
func (sn *Snapshot) ShardSizes() []int {
	sizes := make([]int, len(sn.shards))
	for i, sh := range sn.shards {
		sizes[i] = len(sh.trips)
	}
	return sizes
}

// resolve looks each concrete pattern position up in the dictionary
// without interning; a miss means the pattern cannot match.
func (sn *Snapshot) resolve(p Triple) (k ids3, sb, pb, ob, possible bool) {
	possible = true
	if sb = p.S.IsConcrete(); sb {
		if k.s, possible = sn.dict.Lookup(p.S); !possible {
			return
		}
	}
	if pb = p.P.IsConcrete(); pb {
		if k.p, possible = sn.dict.Lookup(p.P); !possible {
			return
		}
	}
	if ob = p.O.IsConcrete(); ob {
		k.o, possible = sn.dict.Lookup(p.O)
	}
	return
}

// Contains reports whether the ground triple is in the snapshot.
func (sn *Snapshot) Contains(t Triple) bool {
	k, sb, pb, ob, possible := sn.resolve(t)
	if !possible || !sb || !pb || !ob {
		return false
	}
	_, ok := sn.shards[sn.shardOf(k.s)].pos[k]
	return ok
}

// Match returns all ground triples matching the pattern, where
// variables (and only variables) act as wildcards.
func (sn *Snapshot) Match(pattern Triple) []Triple {
	var out []Triple
	sn.MatchFunc(pattern, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// MatchFunc streams all triples matching the pattern to fn; iteration
// stops early when fn returns false. A subject-bound pattern touches
// exactly one shard; other shapes fan out across shards.
func (sn *Snapshot) MatchFunc(pattern Triple, fn func(Triple) bool) {
	k, sb, pb, ob, possible := sn.resolve(pattern)
	if !possible {
		return
	}
	terms := sn.dict.snapshot()
	p := pattern
	if sb {
		sh := sn.shards[sn.shardOf(k.s)]
		switch {
		case pb && ob:
			if _, ok := sh.pos[k]; ok {
				fn(p)
			}
		case pb:
			for _, o := range sh.bySP[pack(k.s, k.p)] {
				if !fn(T(p.S, p.P, terms[o])) {
					return
				}
			}
		case ob:
			for _, pred := range sh.byOS[pack(k.o, k.s)] {
				if !fn(T(p.S, terms[pred], p.O)) {
					return
				}
			}
		default:
			for _, po := range sh.bySubj[k.s] {
				if !fn(T(p.S, terms[unpackHi(po)], terms[unpackLo(po)])) {
					return
				}
			}
		}
		return
	}
	for _, sh := range sn.shards {
		switch {
		case pb && ob:
			for _, sub := range sh.byPO[pack(k.p, k.o)] {
				if !fn(T(terms[sub], p.P, p.O)) {
					return
				}
			}
		case pb:
			for _, os := range sh.byPred[k.p] {
				if !fn(T(terms[unpackLo(os)], p.P, terms[unpackHi(os)])) {
					return
				}
			}
		case ob:
			for _, sp := range sh.byObj[k.o] {
				if !fn(T(terms[unpackHi(sp)], terms[unpackLo(sp)], p.O)) {
					return
				}
			}
		default:
			for _, t := range sh.trips {
				if !fn(T(terms[t.s], terms[t.p], terms[t.o])) {
					return
				}
			}
		}
	}
}

// CountMatch returns the number of triples matching the pattern
// without materializing them. Subject-bound shapes answer from one
// shard's posting-list length in O(1); the rest sum one length per
// shard, O(shards).
func (sn *Snapshot) CountMatch(pattern Triple) int {
	k, sb, pb, ob, possible := sn.resolve(pattern)
	if !possible {
		return 0
	}
	if sb {
		sh := sn.shards[sn.shardOf(k.s)]
		switch {
		case pb && ob:
			if _, ok := sh.pos[k]; ok {
				return 1
			}
			return 0
		case pb:
			return len(sh.bySP[pack(k.s, k.p)])
		case ob:
			return len(sh.byOS[pack(k.o, k.s)])
		default:
			return len(sh.bySubj[k.s])
		}
	}
	n := 0
	for _, sh := range sn.shards {
		switch {
		case pb && ob:
			n += len(sh.byPO[pack(k.p, k.o)])
		case pb:
			n += len(sh.byPred[k.p])
		case ob:
			n += len(sh.byObj[k.o])
		default:
			n += len(sh.trips)
		}
	}
	return n
}

// Subjects returns the subjects of triples with the given predicate
// and object.
func (sn *Snapshot) Subjects(pred, obj Term) []Term {
	var out []Term
	sn.MatchFunc(T(NewVar("s"), pred, obj), func(t Triple) bool {
		out = append(out, t.S)
		return true
	})
	return out
}

// Objects returns the objects of triples with the given subject and
// predicate.
func (sn *Snapshot) Objects(sub, pred Term) []Term {
	var out []Term
	sn.MatchFunc(T(sub, pred, NewVar("o")), func(t Triple) bool {
		out = append(out, t.O)
		return true
	})
	return out
}

// All returns every triple in the snapshot in unspecified order.
func (sn *Snapshot) All() []Triple {
	return sn.Match(T(NewVar("s"), NewVar("p"), NewVar("o")))
}
