package rdf

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentInternAndRead hammers a Dict with concurrent interning,
// lookups and snapshot-based reads. Run under -race this exercises the
// append-only snapshot contract: entries visible through a snapshot are
// immutable, and appends beyond its length touch memory the snapshot
// cannot reach.
func TestConcurrentInternAndRead(t *testing.T) {
	d := NewDict()
	const (
		workers = 8
		terms   = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < terms; i++ {
				// Half the term space is shared across workers, so the
				// same term races to be interned by several goroutines.
				var t Term
				if i%2 == 0 {
					t = NewIRI(fmt.Sprintf("shared-%d", i))
				} else {
					t = NewIRI(fmt.Sprintf("own-%d-%d", w, i))
				}
				id := d.Intern(t)
				if got := d.TermOf(id); !got.Equal(t) {
					panic(fmt.Sprintf("TermOf(%d) = %v, want %v", id, got, t))
				}
				if lid, ok := d.Lookup(t); !ok || lid != id {
					panic(fmt.Sprintf("Lookup(%v) = %d,%v want %d", t, lid, ok, id))
				}
			}
		}(w)
	}
	wg.Wait()
	// Every shared term interned exactly once.
	want := workers*terms/2 + terms/2
	if d.Len() != want {
		t.Fatalf("Dict.Len() = %d, want %d", d.Len(), want)
	}
}

// TestConcurrentStoreWritesAndMatches interleaves store mutation with
// pattern matching and counting from many goroutines. The store promises
// full thread safety (mutating calls exclude readers), so under -race
// this must be clean.
func TestConcurrentStoreWritesAndMatches(t *testing.T) {
	s := NewStore()
	pred := NewIRI("p")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.MustAdd(T(NewIRI(fmt.Sprintf("s%d-%d", w, i)), pred, NewIRI(fmt.Sprintf("o%d", i%10))))
				if i%3 == 0 {
					s.Remove(T(NewIRI(fmt.Sprintf("s%d-%d", w, i-3)), pred, NewIRI(fmt.Sprintf("o%d", (i-3)%10))))
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 0
				s.MatchFunc(T(NewVar("s"), pred, NewIRI(fmt.Sprintf("o%d", i%10))), func(Triple) bool {
					n++
					return true
				})
				if c := s.CountMatch(T(NewVar("s"), pred, NewVar("o"))); c < 0 {
					t.Errorf("negative count %d", c)
				}
				_ = s.Len()
			}
		}()
	}
	wg.Wait()
}
