package rdf

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestShardedDifferentialFlat pins the sharded snapshot's Match and
// CountMatch against the flat Store as oracle: the same randomized
// add/remove history is applied to both, then every bound-position
// combination is probed with randomized patterns and must agree
// exactly (as sets; result order is unspecified for both).
func TestShardedDifferentialFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	term := func(prefix string, n int) Term {
		return NewIRI(fmt.Sprintf("http://ex.org/%s%d", prefix, rng.Intn(n)))
	}
	randTriple := func() Triple {
		return T(term("s", 40), term("p", 6), term("o", 25))
	}

	for round := 0; round < 20; round++ {
		flat := NewStore()
		sharded := NewShardedStore(1 << rng.Intn(4)) // 1, 2, 4 or 8 shards
		live := []Triple{}
		for op := 0; op < 400; op++ {
			if rng.Intn(4) == 0 && len(live) > 0 {
				i := rng.Intn(len(live))
				tr := live[i]
				live = append(live[:i], live[i+1:]...)
				fok := flat.Remove(tr)
				sok := sharded.Remove(tr)
				if fok != sok {
					t.Fatalf("round %d op %d: Remove(%v) flat=%v sharded=%v", round, op, tr, fok, sok)
				}
			} else {
				tr := randTriple()
				fok, _ := flat.Add(tr)
				sok, _ := sharded.Add(tr)
				if fok != sok {
					t.Fatalf("round %d op %d: Add(%v) flat=%v sharded=%v", round, op, tr, fok, sok)
				}
				if fok {
					live = append(live, tr)
				}
			}
		}

		snap := sharded.Snapshot()
		if flat.Len() != snap.Len() {
			t.Fatalf("round %d: Len flat=%d sharded=%d", round, flat.Len(), snap.Len())
		}
		// All 8 bound-position combinations, with terms drawn from the
		// live alphabet (so some patterns hit, some miss) plus an
		// always-unknown term.
		for probe := 0; probe < 200; probe++ {
			s, p, o := Term(NewVar("s")), Term(NewVar("p")), Term(NewVar("o"))
			if probe&1 != 0 {
				s = term("s", 41)
			}
			if probe&2 != 0 {
				p = term("p", 7)
			}
			if probe&4 != 0 {
				o = term("o", 26)
			}
			pat := T(s, p, o)
			if fc, sc := flat.CountMatch(pat), snap.CountMatch(pat); fc != sc {
				t.Fatalf("round %d: CountMatch(%v) flat=%d sharded=%d", round, pat, fc, sc)
			}
			fm, sm := flat.Match(pat), snap.Match(pat)
			SortTriples(fm)
			SortTriples(sm)
			if len(fm) != len(sm) {
				t.Fatalf("round %d: Match(%v) flat=%d sharded=%d results", round, pat, len(fm), len(sm))
			}
			for i := range fm {
				if fm[i] != sm[i] {
					t.Fatalf("round %d: Match(%v)[%d] flat=%v sharded=%v", round, pat, i, fm[i], sm[i])
				}
			}
		}
	}
}
