// Package ix implements NL2CM's core contribution: the Individual
// eXpression (IX) Detector (paper §2.3). It distinguishes the individual
// parts of a parsed NL request from the general parts using declarative,
// administrator-editable detection patterns — SPARQL-like selections over
// the dependency graph — together with dedicated vocabularies.
//
// The detector is split, as in the paper's architecture (Figure 2), into
// the IXFinder, which matches detection patterns, and the IXCreator,
// which completes each partial IX to its full semantic subgraph.
package ix

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Vocabulary is a named word set used by detection patterns through the
// IN operator (e.g. V_participant in the paper's example pattern).
type Vocabulary struct {
	Name  string
	words map[string]bool
}

// NewVocabulary builds a vocabulary from words (matched lower-cased).
func NewVocabulary(name string, words ...string) *Vocabulary {
	v := &Vocabulary{Name: name, words: map[string]bool{}}
	v.Add(words...)
	return v
}

// Add inserts words.
func (v *Vocabulary) Add(words ...string) {
	for _, w := range words {
		w = strings.ToLower(strings.TrimSpace(w))
		if w != "" {
			v.words[w] = true
		}
	}
}

// Remove deletes words.
func (v *Vocabulary) Remove(words ...string) {
	for _, w := range words {
		delete(v.words, strings.ToLower(strings.TrimSpace(w)))
	}
}

// Contains reports membership of a lower-cased word.
func (v *Vocabulary) Contains(word string) bool {
	return v.words[strings.ToLower(word)]
}

// Len returns the vocabulary size.
func (v *Vocabulary) Len() int { return len(v.words) }

// Words returns the sorted word list.
func (v *Vocabulary) Words() []string {
	out := make([]string, 0, len(v.words))
	for w := range v.words {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}

// Vocabularies is the registry the IX Detector consults. The paper uses
// the Opinion Lexicon for lexical individuality and vocabularies "of our
// own making" for the other types; this registry ships with equivalents
// of all of them and stays administrator-editable.
type Vocabularies struct {
	byName map[string]*Vocabulary
}

// NewVocabularies returns an empty registry.
func NewVocabularies() *Vocabularies {
	return &Vocabularies{byName: map[string]*Vocabulary{}}
}

// Register adds or replaces a vocabulary.
func (vs *Vocabularies) Register(v *Vocabulary) { vs.byName[v.Name] = v }

// Get returns a vocabulary by name.
func (vs *Vocabularies) Get(name string) (*Vocabulary, bool) {
	v, ok := vs.byName[name]
	return v, ok
}

// Names returns the sorted vocabulary names.
func (vs *Vocabularies) Names() []string {
	out := make([]string, 0, len(vs.byName))
	for n := range vs.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LoadVocabulary reads a vocabulary from a text stream: one word per
// line, '#' comments and blank lines ignored. This is the administrator
// file format.
func LoadVocabulary(name string, r io.Reader) (*Vocabulary, error) {
	v := NewVocabulary(name)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v.Add(line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ix: loading vocabulary %s: %w", name, err)
	}
	return v, nil
}

// Default vocabulary names.
const (
	VocabSentiment    = "V_sentiment"
	VocabParticipant  = "V_participant"
	VocabModal        = "V_modal"
	VocabOpinionVerbs = "V_opinion_verb"
	VocabHabitVerbs   = "V_habit_verb"
)

// sentimentWords is the embedded substitute for the Opinion Lexicon
// (Hu & Liu) the paper plugs in for lexical individuality: words whose
// presence signals an opinion or subjective judgement.
var sentimentWords = []string{
	// positive
	"good", "great", "best", "better", "nice", "fine", "excellent",
	"amazing", "awesome", "wonderful", "fantastic", "fabulous", "superb",
	"outstanding", "brilliant", "perfect", "lovely", "beautiful",
	"gorgeous", "stunning", "charming", "delightful", "pleasant",
	"enjoyable", "fun", "exciting", "thrilling", "interesting",
	"fascinating", "impressive", "remarkable", "memorable", "romantic",
	"cozy", "comfortable", "convenient", "friendly", "welcoming",
	"helpful", "tasty", "delicious", "yummy", "flavorful", "fresh",
	"crisp", "juicy", "savory", "sweet", "satisfying", "hearty",
	"healthy", "nutritious", "wholesome", "affordable", "cheap",
	"reasonable", "worthwhile", "valuable", "reliable", "trustworthy",
	"durable", "sturdy", "solid", "quality", "premium", "stylish",
	"elegant", "classy", "trendy", "cool", "popular", "famous",
	"renowned", "iconic", "legendary", "authentic", "unique", "special",
	"favorite", "ideal", "recommended", "top", "superior", "safe",
	"clean", "quiet", "peaceful", "relaxing", "scenic", "picturesque",
	"vibrant", "lively", "happy", "glad", "pleased", "worth",
	// negative
	"bad", "worse", "worst", "poor", "awful", "terrible", "horrible",
	"dreadful", "disappointing", "mediocre", "lousy", "unpleasant",
	"boring", "dull", "tedious", "annoying", "irritating", "frustrating",
	"noisy", "crowded", "dirty", "filthy", "smelly", "disgusting",
	"gross", "bland", "tasteless", "stale", "soggy", "greasy", "salty",
	"bitter", "overpriced", "expensive", "pricey", "cheaply", "flimsy",
	"fragile", "unreliable", "defective", "broken", "useless",
	"worthless", "dangerous", "unsafe", "risky", "scary", "creepy",
	"shady", "sketchy", "rude", "unfriendly", "slow", "cramped",
	"uncomfortable", "inconvenient", "ugly", "hideous", "outdated",
	"rundown", "shabby", "unhealthy", "fattening", "sad", "angry",
	"upset", "worried", "afraid", "tired", "sick", "painful",
	// judgement / preference nouns and adjectives
	"interestingness", "preference", "preferable", "suitable",
	"appropriate", "proper", "decent", "adequate", "acceptable",
	"overrated", "underrated", "must-see", "must-visit", "must-try",
	"kid-friendly", "family-friendly", "dog-friendly",
}

// participantWords are agents relative to the person addressed by the
// request (participant individuality, paper §2.3: "you" in "Where do you
// visit in Buffalo?").
var participantWords = []string{
	"i", "me", "my", "mine", "myself",
	"we", "us", "our", "ours", "ourselves",
	"you", "your", "yours", "yourself", "yourselves",
	"people", "one", "everyone", "everybody", "anyone", "anybody",
	"someone", "somebody", "folks", "family", "friend", "friends",
	"locals", "local", "resident", "residents", "visitor", "visitors",
	"tourist", "tourists", "traveler", "travelers", "crowd", "parents",
	"guys", "person", "kid", "kids", "child", "children", "teenager",
	"teenagers", "toddler", "toddlers", "families",
}

// modalWords are verb auxiliaries that denote the speaker's opinion or a
// recommendation (syntactic individuality, paper §2.3: "should" in
// "Obama should visit Buffalo").
var modalWords = []string{
	"should", "must", "ought", "shall", "need", "better", "would",
	"recommended", "worth",
}

// opinionVerbWords are verbs whose meaning is inherently subjective
// (lexical individuality carried by a verb).
var opinionVerbWords = []string{
	"like", "love", "hate", "dislike", "enjoy", "prefer", "recommend",
	"suggest", "advise", "think", "believe", "feel", "favor", "adore",
	"appreciate", "mind", "fancy", "rate", "review",
}

// habitVerbWords are verbs of personal practice; combined with an
// individual participant they express habits ("where do you eat").
var habitVerbWords = []string{
	"visit", "go", "eat", "drink", "cook", "bake", "buy", "shop",
	"order", "wear", "use", "read", "watch", "play", "travel", "stay",
	"sleep", "exercise", "run", "walk", "hike", "swim", "store", "keep",
	"bring", "take", "spend", "celebrate", "avoid",
}

// DefaultVocabularies builds the registry that ships with NL2CM.
func DefaultVocabularies() *Vocabularies {
	vs := NewVocabularies()
	vs.Register(NewVocabulary(VocabSentiment, sentimentWords...))
	vs.Register(NewVocabulary(VocabParticipant, participantWords...))
	vs.Register(NewVocabulary(VocabModal, modalWords...))
	vs.Register(NewVocabulary(VocabOpinionVerbs, opinionVerbWords...))
	vs.Register(NewVocabulary(VocabHabitVerbs, habitVerbWords...))
	return vs
}
