package ix

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nl2cm/internal/nlp"
	"nl2cm/internal/sparql"
)

// Match is one detection-pattern match: a binding of pattern variables to
// graph nodes.
type Match struct {
	Pattern *Pattern
	// Anchor is the graph node bound to the pattern's anchor variable.
	Anchor int
	// Nodes are all graph nodes bound by the match, sorted ascending.
	Nodes []int
}

// IX is a completed Individual eXpression: a connected subgraph of the
// dependency graph that must be translated into individual (SATISFYING)
// query parts rather than general (WHERE) parts.
type IX struct {
	// Anchor is the head node of the expression (verb or opinion word).
	Anchor int
	// Nodes are the token indices of the completed semantic unit,
	// sorted ascending.
	Nodes []int
	// Types are the individuality types that fired, sorted
	// (lexical/participant/syntactic); an IX can exhibit several.
	Types []string
	// Patterns are the detection patterns that contributed.
	Patterns []*Pattern
	// Uncertain is true when any contributing pattern is uncertain, in
	// which case the user is asked to verify the IX (Figure 4).
	Uncertain bool
}

// HasType reports whether the IX exhibits the individuality type.
func (x *IX) HasType(t string) bool {
	for _, ty := range x.Types {
		if ty == t {
			return true
		}
	}
	return false
}

// Contains reports whether the token index is part of the IX.
func (x *IX) Contains(node int) bool {
	for _, n := range x.Nodes {
		if n == node {
			return true
		}
	}
	return false
}

// Span returns the token range [start, end] covered by the IX, for UI
// highlighting.
func (x *IX) Span() (start, end int) {
	if len(x.Nodes) == 0 {
		return x.Anchor, x.Anchor
	}
	return x.Nodes[0], x.Nodes[len(x.Nodes)-1]
}

// Text renders the IX's surface form over its graph.
func (x *IX) Text(g *nlp.DepGraph) string {
	parts := make([]string, 0, len(x.Nodes))
	for _, n := range x.Nodes {
		parts = append(parts, g.Nodes[n].Text)
	}
	return strings.Join(parts, " ")
}

// Detector is the IX Detector of the paper's architecture: the IXFinder
// (pattern matching) plus the IXCreator (subgraph completion).
//
// A Detector is safe for concurrent use once built: Detect only reads
// Patterns and Vocabs. Administrator reconfiguration (swapping pattern or
// vocabulary sets) must not race with in-flight detections.
type Detector struct {
	Patterns []*Pattern
	Vocabs   *Vocabularies
	// Stats, when non-nil, records every Find's pattern matches for the
	// administrator page. MatchStats is internally synchronized.
	Stats *MatchStats
}

// NewDetector returns a detector with the default pattern set and
// vocabularies.
func NewDetector() *Detector {
	return &Detector{Patterns: DefaultPatterns(), Vocabs: DefaultVocabularies()}
}

// Find runs the IXFinder: every detection pattern is matched against the
// dependency graph, yielding partial IXs (paper: "uses vocabularies and a
// set of predefined patterns in order to find IXs within the dependency
// graph").
func (d *Detector) Find(ctx context.Context, g *nlp.DepGraph) ([]Match, error) {
	src := NewGraphSource(g)
	env := src.Env(d.Vocabs)
	var out []Match
	for _, p := range d.Patterns {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rows, err := sparql.EvalPattern(p.Triples, p.Filters, src, env)
		if err != nil {
			return nil, fmt.Errorf("ix: matching pattern %s: %w", p.Name, err)
		}
		seen := map[int]bool{}
		for _, b := range rows {
			at, ok := b[p.Anchor]
			if !ok {
				continue
			}
			anchor, ok := NodeIndex(at)
			if !ok {
				continue
			}
			if seen[anchor] {
				continue // one match per anchor per pattern
			}
			seen[anchor] = true
			m := Match{Pattern: p, Anchor: anchor}
			nodeSet := map[int]bool{}
			for _, t := range b {
				if i, ok := NodeIndex(t); ok {
					nodeSet[i] = true
				}
			}
			for i := range nodeSet {
				m.Nodes = append(m.Nodes, i)
			}
			sort.Ints(m.Nodes)
			out = append(out, m)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Anchor < out[j].Anchor })
	d.Stats.Record(g, out)
	return out, nil
}

// Create runs the IXCreator: matches sharing an anchor merge into one IX,
// whose subgraph is completed with the remaining parts of the same
// semantic unit (paper: "if some verb is found to have an individual
// subject, this component further retrieves other parts belonging to the
// same semantic unit, e.g., the verb's objects").
func (d *Detector) Create(g *nlp.DepGraph, matches []Match) []*IX {
	byAnchor := map[int]*IX{}
	var order []int
	for _, m := range matches {
		x, ok := byAnchor[m.Anchor]
		if !ok {
			x = &IX{Anchor: m.Anchor}
			byAnchor[m.Anchor] = x
			order = append(order, m.Anchor)
		}
		x.Patterns = append(x.Patterns, m.Pattern)
		if m.Pattern.Uncertain {
			x.Uncertain = true
		}
		x.Types = appendUniqueStr(x.Types, m.Pattern.Type)
		for _, n := range m.Nodes {
			x.Nodes = appendUniqueInt(x.Nodes, n)
		}
	}
	sort.Ints(order)
	var out []*IX
	for _, a := range order {
		x := byAnchor[a]
		d.complete(g, x)
		sort.Ints(x.Nodes)
		sort.Strings(x.Types)
		out = append(out, x)
	}
	return out
}

// Detect runs Find then Create, honoring cancellation between patterns.
func (d *Detector) Detect(ctx context.Context, g *nlp.DepGraph) ([]*IX, error) {
	matches, err := d.Find(ctx, g)
	if err != nil {
		return nil, err
	}
	return d.Create(g, matches), nil
}

// complete extends the IX subgraph to the full semantic unit of its
// anchor.
func (d *Detector) complete(g *nlp.DepGraph, x *IX) {
	anchor := &g.Nodes[x.Anchor]
	add := func(n int) { x.Nodes = appendUniqueInt(x.Nodes, n) }

	if strings.HasPrefix(anchor.POS, "VB") {
		// Verb anchor: subject, objects (tree and gap-filling extra
		// edges), auxiliaries, negation, particles, adverbs and the
		// verb's prepositional phrases.
		for _, dep := range g.Dependents(x.Anchor,
			nlp.RelNSubj, nlp.RelDObj, nlp.RelIObj, nlp.RelAux,
			nlp.RelAuxPass, nlp.RelNeg, nlp.RelPrt, nlp.RelAdvMod) {
			add(dep)
		}
		for _, dep := range g.DependentsAll(x.Anchor, nlp.RelDObj, nlp.RelNSubj) {
			add(dep)
		}
		// Prepositional phrases: the preposition and its object head.
		for _, prep := range g.Dependents(x.Anchor, nlp.RelPrep) {
			add(prep)
			for _, pobj := range g.Dependents(prep, nlp.RelPObj) {
				add(pobj)
			}
		}
		// Open clausal complements ("want to buy X") join the unit.
		for _, xc := range g.Dependents(x.Anchor, nlp.RelXComp) {
			add(xc)
			for _, dep := range g.Dependents(xc, nlp.RelDObj, nlp.RelAux) {
				add(dep)
			}
		}
		return
	}
	if strings.HasPrefix(anchor.POS, "JJ") {
		// Opinion adjective: its adverbial modifiers ("most
		// interesting") and the noun it qualifies — the amod head, or
		// the subject for a copular predicate.
		for _, dep := range g.Dependents(x.Anchor, nlp.RelAdvMod, nlp.RelNeg) {
			add(dep)
		}
		if anchor.Head >= 0 && anchor.Rel == nlp.RelAMod {
			add(anchor.Head)
		}
		for _, dep := range g.Dependents(x.Anchor, nlp.RelNSubj) {
			add(dep)
		}
	}
}

func appendUniqueInt(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func appendUniqueStr(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}
