package ix

import (
	"sort"
	"sync"
	"time"

	"nl2cm/internal/nlp"
	"nl2cm/internal/prov"
)

// MatchInfo is one pattern match recorded for the administrator page: the
// pattern that fired, the anchor token, and the exact source text the
// match covered.
type MatchInfo struct {
	Pattern string    `json:"pattern"`
	Anchor  string    `json:"anchor"`
	Span    prov.Span `json:"span"`
	Text    string    `json:"text"`
}

// TranslationMatches groups the matches of one translated question.
type TranslationMatches struct {
	Question string      `json:"question"`
	When     time.Time   `json:"when"`
	Matches  []MatchInfo `json:"matches"`
}

// PatternCount is a per-pattern match tally, for sorted display.
type PatternCount struct {
	Pattern string `json:"pattern"`
	Count   int    `json:"count"`
}

// MatchStats accumulates per-pattern match counts and keeps the matched
// span text of the last N translations. It backs the administrator page's
// pattern-effectiveness table and is safe for concurrent use.
type MatchStats struct {
	mu     sync.Mutex
	limit  int
	counts map[string]int
	recent []TranslationMatches // newest last
}

// NewMatchStats returns a recorder keeping the last limit translations
// (minimum 1).
func NewMatchStats(limit int) *MatchStats {
	if limit < 1 {
		limit = 1
	}
	return &MatchStats{limit: limit, counts: map[string]int{}}
}

// Record tallies the matches of one translation. The graph provides the
// question text and the byte spans of each match's nodes.
func (s *MatchStats) Record(g *nlp.DepGraph, matches []Match) {
	if s == nil {
		return
	}
	tm := TranslationMatches{Question: g.Source, When: time.Now()}
	for _, m := range matches {
		set := prov.NewTokenSet(m.Nodes...)
		info := MatchInfo{
			Pattern: m.Pattern.Name,
			Span:    spanHull(g.Spans(set)),
			Text:    g.Excerpt(set),
		}
		if m.Anchor >= 0 && m.Anchor < len(g.Nodes) {
			info.Anchor = g.Nodes[m.Anchor].Text
		}
		tm.Matches = append(tm.Matches, info)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range tm.Matches {
		s.counts[m.Pattern]++
	}
	s.recent = append(s.recent, tm)
	if len(s.recent) > s.limit {
		s.recent = s.recent[len(s.recent)-s.limit:]
	}
}

// Counts returns the per-pattern totals, sorted by count descending then
// name.
func (s *MatchStats) Counts() []PatternCount {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PatternCount, 0, len(s.counts))
	for p, c := range s.counts {
		out = append(out, PatternCount{Pattern: p, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

// Recent returns the recorded translations, newest first.
func (s *MatchStats) Recent() []TranslationMatches {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TranslationMatches, len(s.recent))
	for i, tm := range s.recent {
		out[len(s.recent)-1-i] = tm
	}
	return out
}

// spanHull returns the covering byte range of the spans.
func spanHull(spans []prov.Span) prov.Span {
	if len(spans) == 0 {
		return prov.Span{}
	}
	out := spans[0]
	for _, s := range spans[1:] {
		if s.Start < out.Start {
			out.Start = s.Start
		}
		if s.End > out.End {
			out.End = s.End
		}
	}
	return out
}
