package ix

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteAndLoadDefaultPatterns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "patterns.ixp")
	if err := WriteDefaultPatterns(path); err != nil {
		t.Fatal(err)
	}
	ps, err := LoadPatternsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != len(DefaultPatterns()) {
		t.Errorf("loaded %d patterns, want %d", len(ps), len(DefaultPatterns()))
	}
}

func TestLoadPatternsFileErrors(t *testing.T) {
	if _, err := LoadPatternsFile("/nonexistent/patterns.ixp"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ixp")
	if err := os.WriteFile(bad, []byte("PATTERN broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPatternsFile(bad); err == nil {
		t.Error("malformed file accepted")
	}
}

func TestWriteAndLoadVocabularyDir(t *testing.T) {
	dir := t.TempDir()
	defaults := DefaultVocabularies()
	if err := WriteVocabularyDir(defaults, dir); err != nil {
		t.Fatal(err)
	}
	vs := NewVocabularies()
	n, err := LoadVocabularyDir(vs, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(defaults.Names()) {
		t.Errorf("loaded %d vocabularies, want %d", n, len(defaults.Names()))
	}
	for _, name := range defaults.Names() {
		orig, _ := defaults.Get(name)
		got, ok := vs.Get(name)
		if !ok || got.Len() != orig.Len() {
			t.Errorf("vocabulary %s round trip lost words", name)
		}
	}
}

func TestLoadVocabularyDirOverridesDefaults(t *testing.T) {
	// An administrator shrinking a vocabulary changes detection.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, VocabModal+".txt"), []byte("must\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vs := DefaultVocabularies()
	if _, err := LoadVocabularyDir(vs, dir); err != nil {
		t.Fatal(err)
	}
	modal, _ := vs.Get(VocabModal)
	if modal.Contains("should") || !modal.Contains("must") {
		t.Errorf("override failed: %v", modal.Words())
	}
}

func TestLoadVocabularyDirMissing(t *testing.T) {
	if _, err := LoadVocabularyDir(NewVocabularies(), "/nonexistent"); err == nil {
		t.Error("missing dir accepted")
	}
}
