package ix

import (
	"nl2cm/internal/nlp"
	"nl2cm/internal/prov"
)

// TokenSet returns the IX's completed node set as a provenance token set.
func (x *IX) TokenSet() prov.TokenSet {
	return prov.NewTokenSet(x.Nodes...)
}

// PredicateTokens returns the tokens through which the IX expresses its
// individual predicate rather than its entity arguments: the anchor plus
// every non-noun node. General (WHERE) triples whose origin intersects
// this set restate the IX's predicate and must be dropped during
// composition; noun nodes are excluded because entity-typing triples
// ("$x instanceOf Place") remain valid alongside the individual form.
func (x *IX) PredicateTokens(g *nlp.DepGraph) prov.TokenSet {
	set := prov.NewTokenSet(x.Anchor)
	for _, n := range x.Nodes {
		if n < 0 || n >= len(g.Nodes) {
			continue
		}
		if pos := g.Nodes[n].POS; len(pos) >= 2 && pos[:2] == "NN" {
			continue
		}
		set = set.Add(n)
	}
	return set
}

// Spans returns the byte spans of the IX's nodes in the source sentence.
func (x *IX) Spans(g *nlp.DepGraph) []prov.Span {
	return g.Spans(x.TokenSet())
}

// SourceText returns the IX's exact source excerpt (gaps elided with
// "..."), in contrast to Text which reconstructs a phrase by re-joining
// token surface forms.
func (x *IX) SourceText(g *nlp.DepGraph) string {
	return g.Excerpt(x.TokenSet())
}

// ByteSpan returns the overall byte range [start, end) the IX covers in
// the source sentence, from the first covered byte to the last.
func (x *IX) ByteSpan(g *nlp.DepGraph) prov.Span {
	spans := x.Spans(g)
	if len(spans) == 0 {
		return prov.Span{}
	}
	out := spans[0]
	for _, s := range spans[1:] {
		if s.Start < out.Start {
			out.Start = s.Start
		}
		if s.End > out.End {
			out.End = s.End
		}
	}
	return out
}
