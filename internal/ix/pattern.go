package ix

import (
	"fmt"
	"strings"

	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// IX pattern types (paper §2.3).
const (
	TypeLexical     = "lexical"
	TypeParticipant = "participant"
	TypeSyntactic   = "syntactic"
)

// Pattern is one declarative IX detection pattern: a SPARQL-like
// selection over the dependency graph. Variables bind to graph nodes;
// triples constrain dependency edges ($head rel $dependent); filters use
// the node functions (POS, TAG, LEMMA, WORD) and vocabulary membership.
type Pattern struct {
	// Name identifies the pattern in admin tooling and IX provenance.
	Name string
	// Type is the individuality type: lexical, participant or syntactic.
	Type string
	// Uncertain marks the pattern for user verification (Figure 4):
	// matches are shown to the user before being treated as IXs.
	Uncertain bool
	// Anchor is the variable whose binding anchors the IX (typically the
	// verb or the opinion word).
	Anchor string
	// Triples are the edge constraints; Filters the boolean constraints.
	Triples []rdf.Triple
	Filters []sparql.Expr
}

// String renders the pattern in its declaration syntax.
func (p *Pattern) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PATTERN %s TYPE %s", p.Name, p.Type)
	if p.Uncertain {
		b.WriteString(" UNCERTAIN")
	}
	fmt.Fprintf(&b, " ANCHOR $%s\n{", p.Anchor)
	for i, t := range p.Triples {
		if i > 0 {
			b.WriteString(" .\n ")
		}
		fmt.Fprintf(&b, "%s %s %s", patTerm(t.S), patTerm(t.P), patTerm(t.O))
	}
	for _, f := range p.Filters {
		fmt.Fprintf(&b, "\n FILTER(%s)", f)
	}
	b.WriteString("}")
	return b.String()
}

func patTerm(t rdf.Term) string {
	if t.IsVar() {
		return "$" + t.Value()
	}
	return t.Local()
}

// ParsePatterns parses a pattern file: a sequence of declarations
//
//	PATTERN <name> TYPE <lexical|participant|syntactic> [UNCERTAIN] ANCHOR $<var>
//	{ $x <rel> $y . ... FILTER(...) }
//
// Dependency relations may be written with their Stanford names (nsubj,
// dobj, amod, aux, ...) or with the paper's friendlier aliases (subject,
// object, modifier, auxiliary).
func ParsePatterns(input string) ([]*Pattern, error) {
	lx, err := sparql.NewLexer(input)
	if err != nil {
		return nil, fmt.Errorf("ix: %w", err)
	}
	pp := sparql.NewPatternParser(lx, &sparql.ParseOptions{Resolve: resolveRel})
	var out []*Pattern
	for lx.Peek().Kind != sparql.TokEOF {
		p, err := parseOne(lx, pp)
		if err != nil {
			return nil, fmt.Errorf("ix: %w", err)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("ix: no patterns in input")
	}
	return out, nil
}

// relAliases maps the paper's friendly relation names onto the parser's
// Stanford labels.
var relAliases = map[string]string{
	"subject":    "nsubj",
	"object":     "dobj",
	"modifier":   "amod",
	"auxiliary":  "aux",
	"adverb":     "advmod",
	"possessor":  "poss",
	"copula":     "cop",
	"complement": "xcomp",
}

func resolveRel(ident string) rdf.Term {
	if canon, ok := relAliases[strings.ToLower(ident)]; ok {
		return rdf.NewIRI(canon)
	}
	return rdf.NewIRI(ident)
}

func parseOne(lx *sparql.Lexer, pp *sparql.PatternParser) (*Pattern, error) {
	expectIdent := func(word string) error {
		t := lx.Next()
		if t.Kind != sparql.TokIdent || !strings.EqualFold(t.Text, word) {
			return fmt.Errorf("expected %s, found %q", word, t.Text)
		}
		return nil
	}
	if err := expectIdent("PATTERN"); err != nil {
		return nil, err
	}
	name := lx.Next()
	if name.Kind != sparql.TokIdent {
		return nil, fmt.Errorf("expected pattern name, found %q", name.Text)
	}
	if err := expectIdent("TYPE"); err != nil {
		return nil, err
	}
	typ := lx.Next()
	if typ.Kind != sparql.TokIdent {
		return nil, fmt.Errorf("expected pattern type, found %q", typ.Text)
	}
	typeName := strings.ToLower(typ.Text)
	switch typeName {
	case TypeLexical, TypeParticipant, TypeSyntactic:
	default:
		return nil, fmt.Errorf("unknown pattern type %q", typ.Text)
	}
	p := &Pattern{Name: name.Text, Type: typeName}
	if t := lx.Peek(); t.Kind == sparql.TokIdent && strings.EqualFold(t.Text, "UNCERTAIN") {
		lx.Next()
		p.Uncertain = true
	}
	if err := expectIdent("ANCHOR"); err != nil {
		return nil, err
	}
	anchor := lx.Next()
	if anchor.Kind != sparql.TokVar {
		return nil, fmt.Errorf("expected anchor variable, found %q", anchor.Text)
	}
	p.Anchor = anchor.Text
	triples, filters, err := pp.GroupPattern()
	if err != nil {
		return nil, err
	}
	p.Triples, p.Filters = triples, filters
	if len(p.Triples) == 0 && len(p.Filters) == 0 {
		return nil, fmt.Errorf("pattern %s is empty", p.Name)
	}
	// The anchor must appear in the pattern.
	found := false
	for _, t := range p.Triples {
		for _, v := range t.Vars() {
			if v == p.Anchor {
				found = true
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("pattern %s: anchor $%s not used in pattern", p.Name, p.Anchor)
	}
	return p, nil
}

// DefaultPatternSource is the pattern set that ships with NL2CM, written
// in the administrator file format. The first pattern is the paper's own
// §2.3 example (a verb with an individual subject); the others cover the
// remaining individuality types identified by the paper's analysis of
// user requests.
const DefaultPatternSource = `
# Participant individuality: a verb whose grammatical subject is an
# individual participant ("we should visit", "where do you eat").
# This is the example pattern of paper §2.3.
PATTERN participant_subject TYPE participant ANCHOR $x
{$x subject $y
FILTER(POS($x) = "verb" && $y IN V_participant)}

# Participant individuality carried by a possessive: "where do my kids eat".
PATTERN participant_possessive TYPE participant ANCHOR $v
{$v subject $s .
$s possessor $p
FILTER(POS($v) = "verb" && $p IN V_participant)}

# Lexical individuality: an opinion adjective modifying a noun
# ("interesting places", "the best thrill ride").
PATTERN lexical_adjective TYPE lexical UNCERTAIN ANCHOR $a
{$n modifier $a
FILTER(POS($a) = "adjective" && LEMMA($a) IN V_sentiment)}

# Lexical individuality: an opinion adjective as copular predicate
# ("Is chocolate milk good for kids?").
PATTERN lexical_predicate TYPE lexical UNCERTAIN ANCHOR $a
{$a copula $c
FILTER(POS($a) = "adjective" && LEMMA($a) IN V_sentiment)}

# Lexical individuality: a participial opinion predicate
# ("Which dish is overrated?").
PATTERN lexical_participle TYPE lexical UNCERTAIN ANCHOR $a
{$a auxpass $c
FILTER($a IN V_sentiment)}

# Lexical individuality: an inherently subjective verb
# ("which camera do you recommend", "dishes people like").
PATTERN lexical_verb TYPE lexical UNCERTAIN ANCHOR $v
{$v subject $s
FILTER(LEMMA($v) IN V_opinion_verb)}

# Syntactic individuality: a verb with a recommendation modal
# ("Obama should visit Buffalo").
PATTERN syntactic_modal TYPE syntactic ANCHOR $v
{$v auxiliary $m
FILTER(POS($v) = "verb" && LEMMA($m) IN V_modal)}
`

// DefaultPatterns parses DefaultPatternSource; it panics on error since
// the source is embedded and covered by tests.
func DefaultPatterns() []*Pattern {
	ps, err := ParsePatterns(DefaultPatternSource)
	if err != nil {
		panic(err)
	}
	return ps
}
