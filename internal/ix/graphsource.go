package ix

import (
	"fmt"
	"strconv"

	"nl2cm/internal/nlp"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// NodeTerm encodes dependency-graph node i as an RDF term so that
// detection patterns can bind variables to nodes.
func NodeTerm(i int) rdf.Term { return rdf.NewBlank("n" + strconv.Itoa(i)) }

// NodeIndex decodes a term produced by NodeTerm; ok is false for foreign
// terms.
func NodeIndex(t rdf.Term) (int, bool) {
	if !t.IsBlank() {
		return 0, false
	}
	v := t.Value()
	if len(v) < 2 || v[0] != 'n' {
		return 0, false
	}
	i, err := strconv.Atoi(v[1:])
	if err != nil {
		return 0, false
	}
	return i, true
}

// GraphSource exposes a dependency graph as a triple source for the
// SPARQL pattern matcher: one triple (head, relation, dependent) per
// dependency edge, including the Extra gap-filling edges. Detection
// patterns almost always fix the relation, so edges are also indexed by
// predicate.
type GraphSource struct {
	G     *nlp.DepGraph
	edges []rdf.Triple
	byRel map[rdf.Term][]rdf.Triple
}

// NewGraphSource builds the adapter.
func NewGraphSource(g *nlp.DepGraph) *GraphSource {
	src := &GraphSource{G: g, byRel: map[rdf.Term][]rdf.Triple{}}
	for _, e := range g.Edges() {
		t := rdf.T(NodeTerm(e.Head), rdf.NewIRI(e.Rel), NodeTerm(e.Dep))
		src.edges = append(src.edges, t)
		src.byRel[t.P] = append(src.byRel[t.P], t)
	}
	return src
}

// candidates returns the narrowest edge list for the pattern: the
// per-relation bucket when the predicate is concrete, else every edge.
func (s *GraphSource) candidates(pattern rdf.Triple) []rdf.Triple {
	if pattern.P.IsConcrete() {
		return s.byRel[pattern.P]
	}
	return s.edges
}

// MatchFunc implements sparql.Source. Graphs are sentence-sized, so a
// scan of the relation bucket (or, for variable predicates, the whole
// edge list) is appropriate.
func (s *GraphSource) MatchFunc(pattern rdf.Triple, fn func(rdf.Triple) bool) {
	match := func(p, g rdf.Term) bool { return p.IsVar() || p.Equal(g) }
	for _, e := range s.candidates(pattern) {
		if match(pattern.S, e.S) && match(pattern.P, e.P) && match(pattern.O, e.O) {
			if !fn(e) {
				return
			}
		}
	}
}

// CountMatch implements sparql.Counter with exact counts, so pattern
// joins over the graph are ordered most-selective-first. Exact counting
// is affordable here because a dependency graph has at most a few dozen
// edges.
func (s *GraphSource) CountMatch(pattern rdf.Triple) int {
	match := func(p, g rdf.Term) bool { return p.IsVar() || p.Equal(g) }
	n := 0
	for _, e := range s.candidates(pattern) {
		if match(pattern.S, e.S) && match(pattern.P, e.P) && match(pattern.O, e.O) {
			n++
		}
	}
	return n
}

// coarsePOS maps a Penn tag to the coarse category names the paper's
// patterns use (POS($x) = "verb").
func coarsePOS(tag string) string {
	switch {
	case len(tag) >= 2 && tag[:2] == "VB":
		return "verb"
	case len(tag) >= 2 && tag[:2] == "NN":
		return "noun"
	case len(tag) >= 2 && tag[:2] == "JJ":
		return "adjective"
	case len(tag) >= 2 && tag[:2] == "RB":
		return "adverb"
	case tag == "PRP" || tag == "PRP$":
		return "pronoun"
	case tag == "MD":
		return "modal"
	case len(tag) >= 1 && tag[0] == 'W':
		return "wh"
	case tag == "DT" || tag == "PDT":
		return "determiner"
	case tag == "IN" || tag == "TO":
		return "preposition"
	case tag == "CD":
		return "number"
	case tag == "CC":
		return "conjunction"
	default:
		return "other"
	}
}

// Env builds the sparql evaluation environment for IX patterns over the
// graph: node functions and vocabulary membership sets.
//
// Functions: POS($x) coarse category, TAG($x) Penn tag, LEMMA($x),
// WORD($x) lower-cased surface form, INDEX($x) token position.
//
// Vocabulary sets test a node's lemma and surface form against the word
// list, so "V_participant" matches both "we" and "us".
func (s *GraphSource) Env(vocabs *Vocabularies) *sparql.Env {
	node := func(v sparql.Value) (*nlp.Node, error) {
		if v.Kind != sparql.VTerm {
			return nil, fmt.Errorf("ix: expected a graph node, got %+v", v)
		}
		i, ok := NodeIndex(v.Term)
		if !ok || i < 0 || i >= len(s.G.Nodes) {
			return nil, fmt.Errorf("ix: term %v is not a graph node", v.Term)
		}
		return &s.G.Nodes[i], nil
	}
	unary := func(get func(*nlp.Node) string) func([]sparql.Value) (sparql.Value, error) {
		return func(args []sparql.Value) (sparql.Value, error) {
			if len(args) != 1 {
				return sparql.Value{}, fmt.Errorf("ix: node function wants 1 argument, got %d", len(args))
			}
			n, err := node(args[0])
			if err != nil {
				return sparql.Value{}, err
			}
			return sparql.StrVal(get(n)), nil
		}
	}
	env := &sparql.Env{
		Funcs: map[string]func([]sparql.Value) (sparql.Value, error){
			"POS":   unary(func(n *nlp.Node) string { return coarsePOS(n.POS) }),
			"TAG":   unary(func(n *nlp.Node) string { return n.POS }),
			"LEMMA": unary(func(n *nlp.Node) string { return n.Lemma }),
			"WORD":  unary(func(n *nlp.Node) string { return n.Lower }),
			"INDEX": func(args []sparql.Value) (sparql.Value, error) {
				if len(args) != 1 {
					return sparql.Value{}, fmt.Errorf("ix: INDEX wants 1 argument")
				}
				n, err := node(args[0])
				if err != nil {
					return sparql.Value{}, err
				}
				return sparql.NumVal(float64(n.Index)), nil
			},
		},
		Sets: map[string]func(sparql.Value) bool{},
	}
	if vocabs != nil {
		for _, name := range vocabs.Names() {
			v, _ := vocabs.Get(name)
			voc := v
			env.Sets[name] = func(val sparql.Value) bool {
				n, err := node(val)
				if err != nil {
					// Non-node values test their text form.
					return voc.Contains(valText(val))
				}
				return voc.Contains(n.Lemma) || voc.Contains(n.Lower)
			}
		}
	}
	return env
}

func valText(v sparql.Value) string {
	switch v.Kind {
	case sparql.VStr:
		return v.Str
	case sparql.VTerm:
		return v.Term.Value()
	default:
		return ""
	}
}
