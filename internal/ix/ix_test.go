package ix

import (
	"context"
	"strings"
	"testing"

	"nl2cm/internal/nlp"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

func parse(t *testing.T, sentence string) *nlp.DepGraph {
	t.Helper()
	g, err := nlp.Parse(sentence)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sentence, err)
	}
	return g
}

func detect(t *testing.T, sentence string) (*nlp.DepGraph, []*IX) {
	t.Helper()
	g := parse(t, sentence)
	d := NewDetector()
	ixs, err := d.Detect(context.Background(), g)
	if err != nil {
		t.Fatalf("Detect(%q): %v", sentence, err)
	}
	return g, ixs
}

// findIX returns the IX anchored at the token with the given text.
func findIX(t *testing.T, g *nlp.DepGraph, ixs []*IX, anchorText string) *IX {
	t.Helper()
	for _, x := range ixs {
		if g.Nodes[x.Anchor].Text == anchorText {
			return x
		}
	}
	var anchors []string
	for _, x := range ixs {
		anchors = append(anchors, g.Nodes[x.Anchor].Text)
	}
	t.Fatalf("no IX anchored at %q; anchors = %v", anchorText, anchors)
	return nil
}

func TestVocabularyBasics(t *testing.T) {
	v := NewVocabulary("V_test", "Alpha", " beta ", "")
	if !v.Contains("alpha") || !v.Contains("BETA") {
		t.Error("Contains is not case-insensitive")
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
	v.Remove("alpha")
	if v.Contains("alpha") || v.Len() != 1 {
		t.Error("Remove failed")
	}
	words := v.Words()
	if len(words) != 1 || words[0] != "beta" {
		t.Errorf("Words = %v", words)
	}
}

func TestLoadVocabulary(t *testing.T) {
	src := "# comment\nword1\n\n  word2  \n#another\nWord3\n"
	v, err := LoadVocabulary("V_file", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 || !v.Contains("word3") {
		t.Errorf("loaded %v", v.Words())
	}
}

func TestDefaultVocabulariesPresent(t *testing.T) {
	vs := DefaultVocabularies()
	for _, name := range []string{VocabSentiment, VocabParticipant, VocabModal, VocabOpinionVerbs, VocabHabitVerbs} {
		v, ok := vs.Get(name)
		if !ok || v.Len() == 0 {
			t.Errorf("vocabulary %s missing or empty", name)
		}
	}
	s, _ := vs.Get(VocabSentiment)
	for _, w := range []string{"interesting", "good", "best", "terrible"} {
		if !s.Contains(w) {
			t.Errorf("sentiment vocabulary missing %q", w)
		}
	}
	p, _ := vs.Get(VocabParticipant)
	for _, w := range []string{"we", "you", "i", "people"} {
		if !p.Contains(w) {
			t.Errorf("participant vocabulary missing %q", w)
		}
	}
}

func TestParsePaperExamplePattern(t *testing.T) {
	// The exact pattern from paper §2.3.
	ps, err := ParsePatterns(`PATTERN p TYPE participant ANCHOR $x
{$x subject $y
filter(POS($x) = "verb" && $y in V_participant)}`)
	if err != nil {
		t.Fatalf("ParsePatterns: %v", err)
	}
	p := ps[0]
	if p.Type != TypeParticipant || p.Anchor != "x" || p.Uncertain {
		t.Errorf("pattern = %+v", p)
	}
	if len(p.Triples) != 1 || p.Triples[0].P.Value() != "nsubj" {
		t.Errorf("relation alias not resolved: %v", p.Triples)
	}
	if len(p.Filters) != 1 {
		t.Errorf("filters = %v", p.Filters)
	}
}

func TestParsePatternsErrors(t *testing.T) {
	bad := []string{
		``,
		`PATTERN p TYPE bogus ANCHOR $x {$x subject $y}`,
		`PATTERN p TYPE lexical {$x subject $y}`,           // no anchor
		`PATTERN p TYPE lexical ANCHOR $z {$x subject $y}`, // anchor unused
		`PATTERN p TYPE lexical ANCHOR $x {}`,              // empty
		`TYPE lexical ANCHOR $x {$x subject $y}`,           // missing keyword
		`PATTERN p TYPE lexical ANCHOR $x {$x subject $y`,  // unterminated
	}
	for _, in := range bad {
		if _, err := ParsePatterns(in); err == nil {
			t.Errorf("ParsePatterns(%q) succeeded, want error", in)
		}
	}
}

func TestDefaultPatternsParse(t *testing.T) {
	ps := DefaultPatterns()
	if len(ps) < 6 {
		t.Fatalf("only %d default patterns", len(ps))
	}
	types := map[string]bool{}
	for _, p := range ps {
		types[p.Type] = true
	}
	for _, want := range []string{TypeLexical, TypeParticipant, TypeSyntactic} {
		if !types[want] {
			t.Errorf("no default pattern of type %s", want)
		}
	}
}

func TestPatternStringRoundTrip(t *testing.T) {
	for _, p := range DefaultPatterns() {
		rendered := p.String()
		ps, err := ParsePatterns(rendered)
		if err != nil {
			t.Fatalf("reparse of %s:\n%s\n%v", p.Name, rendered, err)
		}
		if ps[0].String() != rendered {
			t.Errorf("round trip mismatch for %s:\n%s\nvs\n%s", p.Name, rendered, ps[0].String())
		}
	}
}

func TestNodeTermRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, 42, 1000} {
		j, ok := NodeIndex(NodeTerm(i))
		if !ok || j != i {
			t.Errorf("NodeIndex(NodeTerm(%d)) = %d, %v", i, j, ok)
		}
	}
	if _, ok := NodeIndex(NodeTerm(3)); !ok {
		t.Error("round trip failed")
	}
}

func TestDetectRunningExample(t *testing.T) {
	g, ixs := detect(t, "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?")
	if len(ixs) != 2 {
		var texts []string
		for _, x := range ixs {
			texts = append(texts, x.Text(g))
		}
		t.Fatalf("detected %d IXs, want 2: %v", len(ixs), texts)
	}
	// Lexical IX: "interesting" (with "most" and the modified noun).
	lex := findIX(t, g, ixs, "interesting")
	if !lex.HasType(TypeLexical) {
		t.Errorf("interesting IX types = %v", lex.Types)
	}
	if !lex.Uncertain {
		t.Error("lexical IX should be uncertain (verification dialogue)")
	}
	if !strings.Contains(lex.Text(g), "most interesting places") {
		t.Errorf("lexical IX text = %q", lex.Text(g))
	}
	// Habit IX: "we should visit ... in the fall" — both participant
	// (subject "we") and syntactic (modal "should") individuality.
	visit := findIX(t, g, ixs, "visit")
	if !visit.HasType(TypeParticipant) || !visit.HasType(TypeSyntactic) {
		t.Errorf("visit IX types = %v, want participant+syntactic", visit.Types)
	}
	text := visit.Text(g)
	for _, want := range []string{"we", "should", "visit", "in", "fall", "places"} {
		if !strings.Contains(text, want) {
			t.Errorf("visit IX text %q missing %q", text, want)
		}
	}
	// The IX must NOT contain the general part "near Forest Hotel".
	if strings.Contains(text, "Hotel") || strings.Contains(text, "near") {
		t.Errorf("visit IX leaked general content: %q", text)
	}
}

func TestDetectParticipantSubject(t *testing.T) {
	g, ixs := detect(t, "Where do you visit in Buffalo?")
	x := findIX(t, g, ixs, "visit")
	if !x.HasType(TypeParticipant) {
		t.Errorf("types = %v", x.Types)
	}
	if !strings.Contains(x.Text(g), "you visit in Buffalo") {
		t.Errorf("text = %q", x.Text(g))
	}
}

func TestDetectSyntacticModalOnly(t *testing.T) {
	// "Obama" is not an individual participant; only the modal fires.
	g, ixs := detect(t, "Obama should visit Buffalo.")
	x := findIX(t, g, ixs, "visit")
	if !x.HasType(TypeSyntactic) {
		t.Errorf("types = %v", x.Types)
	}
	if x.HasType(TypeParticipant) {
		t.Error("Obama wrongly detected as individual participant")
	}
}

func TestDetectLexicalPredicate(t *testing.T) {
	g, ixs := detect(t, "Is chocolate milk good for kids?")
	x := findIX(t, g, ixs, "good")
	if !x.HasType(TypeLexical) {
		t.Errorf("types = %v", x.Types)
	}
	if !strings.Contains(x.Text(g), "milk good") {
		t.Errorf("text = %q", x.Text(g))
	}
}

func TestDetectOpinionVerb(t *testing.T) {
	g, ixs := detect(t, "Which camera do you recommend?")
	x := findIX(t, g, ixs, "recommend")
	if !x.HasType(TypeLexical) && !x.HasType(TypeParticipant) {
		t.Errorf("types = %v", x.Types)
	}
}

func TestDetectPossessiveParticipant(t *testing.T) {
	g, ixs := detect(t, "Which snacks do my kids eat?")
	x := findIX(t, g, ixs, "eat")
	if !x.HasType(TypeParticipant) {
		t.Errorf("types = %v", x.Types)
	}
}

func TestNoIXInPureGeneralQuestion(t *testing.T) {
	// A purely general question: no opinions, participants or modals.
	_, ixs := detect(t, "Which parks are in Buffalo?")
	for _, x := range ixs {
		t.Errorf("unexpected IX: %v (types %v)", x.Nodes, x.Types)
	}
}

func TestDetectSuperlativeOpinion(t *testing.T) {
	g, ixs := detect(t, "Which hotel in Vegas has the best thrill ride?")
	x := findIX(t, g, ixs, "best")
	if !x.HasType(TypeLexical) {
		t.Errorf("types = %v", x.Types)
	}
	if !strings.Contains(x.Text(g), "ride") {
		t.Errorf("completed IX %q misses the modified noun", x.Text(g))
	}
}

func TestIXMergesAcrossPatterns(t *testing.T) {
	// "we should visit": participant_subject and syntactic_modal share
	// the anchor "visit" and must merge into one IX.
	g, ixs := detect(t, "We should visit museums.")
	if len(ixs) != 1 {
		t.Fatalf("got %d IXs, want 1 merged", len(ixs))
	}
	x := findIX(t, g, ixs, "visit")
	if len(x.Types) != 2 {
		t.Errorf("types = %v, want 2", x.Types)
	}
	if len(x.Patterns) < 2 {
		t.Errorf("patterns = %d, want >= 2", len(x.Patterns))
	}
}

func TestIXSpanAndContains(t *testing.T) {
	g, ixs := detect(t, "We should visit museums.")
	x := findIX(t, g, ixs, "visit")
	start, end := x.Span()
	if start > x.Anchor || end < x.Anchor {
		t.Errorf("span [%d,%d] excludes anchor %d", start, end, x.Anchor)
	}
	if !x.Contains(x.Anchor) {
		t.Error("Contains(anchor) = false")
	}
	if x.Contains(999) {
		t.Error("Contains(999) = true")
	}
}

func TestCustomPatternAndVocabulary(t *testing.T) {
	// Administrators can add patterns and vocabularies (paper: "allows a
	// system administrator to easily manage, change or add the
	// predefined set of patterns").
	d := NewDetector()
	ps, err := ParsePatterns(`PATTERN future_wish TYPE syntactic ANCHOR $v
{$v auxiliary $m
FILTER(WORD($m) IN V_wish)}`)
	if err != nil {
		t.Fatal(err)
	}
	d.Patterns = append(d.Patterns, ps...)
	d.Vocabs.Register(NewVocabulary("V_wish", "wanna"))
	g := parse(t, "Trips I wanna take.")
	_, err = d.Detect(context.Background(), g)
	if err != nil {
		t.Fatalf("Detect with custom pattern: %v", err)
	}
}

func TestGraphSourceMatch(t *testing.T) {
	g := parse(t, "We visit parks.")
	src := NewGraphSource(g)
	count := 0
	src.MatchFunc(rdf.T(rdf.NewVar("h"), rdf.NewIRI("nsubj"), rdf.NewVar("d")),
		func(tr rdf.Triple) bool { count++; return true })
	if count != 1 {
		t.Errorf("nsubj edges = %d, want 1", count)
	}
	// Early stop.
	count = 0
	src.MatchFunc(rdf.T(rdf.NewVar("h"), rdf.NewVar("r"), rdf.NewVar("d")),
		func(tr rdf.Triple) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop visited %d edges", count)
	}
}

func TestGraphSourceEnvFunctions(t *testing.T) {
	g := parse(t, "We visit parks.")
	src := NewGraphSource(g)
	env := src.Env(DefaultVocabularies())
	visitIdx := -1
	for i := range g.Nodes {
		if g.Nodes[i].Text == "visit" {
			visitIdx = i
		}
	}
	val := sparql.TermVal(NodeTerm(visitIdx))
	cases := []struct{ fn, want string }{
		{"POS", "verb"},
		{"TAG", "VBP"},
		{"LEMMA", "visit"},
		{"WORD", "visit"},
	}
	for _, c := range cases {
		got, err := env.Funcs[c.fn]([]sparql.Value{val})
		if err != nil {
			t.Fatalf("%s: %v", c.fn, err)
		}
		if got.Str != c.want {
			t.Errorf("%s(visit) = %q, want %q", c.fn, got.Str, c.want)
		}
	}
	// INDEX returns the position.
	idx, err := env.Funcs["INDEX"]([]sparql.Value{val})
	if err != nil || idx.Num != float64(visitIdx) {
		t.Errorf("INDEX = %v, %v", idx, err)
	}
	// Errors: wrong arity and non-node argument.
	if _, err := env.Funcs["POS"](nil); err == nil {
		t.Error("POS() with no args succeeded")
	}
	if _, err := env.Funcs["POS"]([]sparql.Value{sparql.StrVal("x")}); err == nil {
		t.Error("POS(non-node) succeeded")
	}
}

func TestCoarsePOS(t *testing.T) {
	cases := []struct{ tag, want string }{
		{"VB", "verb"}, {"VBZ", "verb"}, {"NN", "noun"}, {"NNPS", "noun"},
		{"JJ", "adjective"}, {"RB", "adverb"}, {"PRP", "pronoun"},
		{"MD", "modal"}, {"WP", "wh"}, {"DT", "determiner"},
		{"IN", "preposition"}, {"TO", "preposition"}, {"CD", "number"},
		{"CC", "conjunction"}, {".", "other"},
	}
	for _, c := range cases {
		if got := coarsePOS(c.tag); got != c.want {
			t.Errorf("coarsePOS(%s) = %s, want %s", c.tag, got, c.want)
		}
	}
}
