package ix

import (
	"context"
	"strings"
	"testing"

	"nl2cm/internal/nlp"
)

func TestMatchStatsRecord(t *testing.T) {
	d := NewDetector()
	d.Stats = NewMatchStats(2)
	questions := []string{
		"What are the most interesting places in Buffalo?",
		"Where should I buy a tent?",
		"What are the most interesting places in Buffalo?",
	}
	for _, q := range questions {
		g, err := nlp.Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		if _, err := d.Detect(context.Background(), g); err != nil {
			t.Fatalf("Detect(%q): %v", q, err)
		}
	}
	counts := d.Stats.Counts()
	if len(counts) == 0 {
		t.Fatal("no pattern counts recorded")
	}
	for i := 1; i < len(counts); i++ {
		if counts[i].Count > counts[i-1].Count {
			t.Errorf("counts not sorted: %v", counts)
		}
	}
	recent := d.Stats.Recent()
	if len(recent) != 2 {
		t.Fatalf("Recent kept %d translations, want 2 (ring limit)", len(recent))
	}
	if recent[0].Question != questions[2] {
		t.Errorf("Recent[0] = %q, want newest question", recent[0].Question)
	}
	// Matched span text must quote the source, not a reconstruction.
	var sawText bool
	for _, tm := range recent {
		for _, m := range tm.Matches {
			if m.Text == "" {
				continue
			}
			sawText = true
			for _, part := range strings.Split(m.Text, " ... ") {
				if !strings.Contains(tm.Question, part) {
					t.Errorf("match text %q not a substring of %q", m.Text, tm.Question)
				}
			}
		}
	}
	if !sawText {
		t.Error("no match recorded any span text")
	}
}

func TestMatchStatsNilSafe(t *testing.T) {
	var s *MatchStats
	g, err := nlp.Parse("Where should I buy a tent?")
	if err != nil {
		t.Fatal(err)
	}
	s.Record(g, nil) // must not panic
	if s.Counts() != nil || s.Recent() != nil {
		t.Error("nil MatchStats should report empty")
	}
}

func TestIXProvenanceHelpers(t *testing.T) {
	q := "What are the most interesting places in Buffalo?"
	g, err := nlp.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	ixs, err := NewDetector().Detect(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ixs) == 0 {
		t.Fatal("no IXs detected")
	}
	for _, x := range ixs {
		set := x.TokenSet()
		if set.Empty() {
			t.Fatalf("IX anchored at %d has empty token set", x.Anchor)
		}
		src := x.SourceText(g)
		if src == "" {
			t.Fatalf("IX anchored at %d has empty source text", x.Anchor)
		}
		for _, part := range strings.Split(src, " ... ") {
			if !strings.Contains(q, part) {
				t.Errorf("SourceText part %q not in question", part)
			}
		}
		bs := x.ByteSpan(g)
		if bs.Empty() {
			t.Errorf("IX anchored at %d has empty byte span", x.Anchor)
		}
		pred := x.PredicateTokens(g)
		if !pred.Contains(x.Anchor) {
			t.Errorf("PredicateTokens misses anchor %d", x.Anchor)
		}
		for _, id := range pred {
			if id == x.Anchor {
				continue
			}
			if pos := g.Nodes[id].POS; strings.HasPrefix(pos, "NN") {
				t.Errorf("PredicateTokens contains noun token %d (%s)", id, pos)
			}
		}
	}
}
