package ix

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// LoadPatternsFile reads an administrator pattern file (the
// DefaultPatternSource format) from disk.
func LoadPatternsFile(path string) ([]*Pattern, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ix: reading pattern file: %w", err)
	}
	ps, err := ParsePatterns(string(data))
	if err != nil {
		return nil, fmt.Errorf("ix: %s: %w", path, err)
	}
	return ps, nil
}

// LoadVocabularyDir loads every "*.txt" file in dir as a vocabulary named
// after the file (e.g. "V_participant.txt" -> V_participant), one word
// per line with '#' comments. Loaded vocabularies are registered into vs,
// replacing same-named defaults — the administrator editing model of
// paper §2.3.
func LoadVocabularyDir(vs *Vocabularies, dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("ix: reading vocabulary dir: %w", err)
	}
	loaded := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".txt")
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return loaded, fmt.Errorf("ix: opening vocabulary %s: %w", e.Name(), err)
		}
		v, err := LoadVocabulary(name, f)
		f.Close()
		if err != nil {
			return loaded, err
		}
		vs.Register(v)
		loaded++
	}
	return loaded, nil
}

// WriteDefaultPatterns writes the shipped pattern set to a file so an
// administrator can start editing from the defaults.
func WriteDefaultPatterns(path string) error {
	if err := os.WriteFile(path, []byte(strings.TrimLeft(DefaultPatternSource, "\n")), 0o644); err != nil {
		return fmt.Errorf("ix: writing default patterns: %w", err)
	}
	return nil
}

// WriteVocabularyDir dumps every vocabulary in vs to "<name>.txt" files
// under dir, creating it if needed.
func WriteVocabularyDir(vs *Vocabularies, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("ix: creating vocabulary dir: %w", err)
	}
	for _, name := range vs.Names() {
		v, _ := vs.Get(name)
		var b strings.Builder
		fmt.Fprintf(&b, "# vocabulary %s (%d words)\n", name, v.Len())
		for _, w := range v.Words() {
			b.WriteString(w)
			b.WriteByte('\n')
		}
		if err := os.WriteFile(filepath.Join(dir, name+".txt"), []byte(b.String()), 0o644); err != nil {
			return fmt.Errorf("ix: writing vocabulary %s: %w", name, err)
		}
	}
	return nil
}
