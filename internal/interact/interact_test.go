package interact

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

var spans = []IXSpan{
	{Text: "most interesting places", Type: "lexical", Uncertain: true},
	{Text: "we should visit in the fall", Type: "participant+syntactic"},
}

var choices = []Choice{
	{Label: "Buffalo", Description: "city in New York, USA"},
	{Label: "Buffalo", Description: "village in Illinois, USA"},
}

func TestPolicyDefaults(t *testing.T) {
	auto := Automatic()
	for _, p := range []Point{PointIXVerification, PointDisambiguation, PointSignificance, PointProjection} {
		if auto.Asks(p) {
			t.Errorf("Automatic policy asks %v", p)
		}
	}
	inter := Interactive()
	for _, p := range []Point{PointIXVerification, PointDisambiguation, PointSignificance, PointProjection} {
		if !inter.Asks(p) {
			t.Errorf("Interactive policy does not ask %v", p)
		}
	}
}

func TestPointString(t *testing.T) {
	names := map[Point]string{
		PointIXVerification: "ix-verification",
		PointDisambiguation: "disambiguation",
		PointSignificance:   "significance",
		PointProjection:     "projection",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestAutoDefaults(t *testing.T) {
	a := Auto{}
	ans, err := a.VerifyIXs(context.Background(), "q", spans)
	if err != nil || len(ans) != 2 || !ans[0] || !ans[1] {
		t.Errorf("VerifyIXs = %v, %v", ans, err)
	}
	i, err := a.Disambiguate(context.Background(), "Buffalo", choices)
	if err != nil || i != 0 {
		t.Errorf("Disambiguate = %d, %v", i, err)
	}
	if _, err := a.Disambiguate(context.Background(), "x", nil); err == nil {
		t.Error("Disambiguate with no options succeeded")
	}
	if k, _ := a.SelectTopK(context.Background(), "d", 5); k != 5 {
		t.Errorf("SelectTopK = %d", k)
	}
	if th, _ := a.SelectThreshold(context.Background(), "d", 0.1); th != 0.1 {
		t.Errorf("SelectThreshold = %g", th)
	}
	keep, _ := a.SelectProjection(context.Background(), []VarChoice{{Var: "x"}, {Var: "y"}})
	if len(keep) != 2 || !keep[0] || !keep[1] {
		t.Errorf("SelectProjection = %v", keep)
	}
}

func TestScriptedAnswersAndFallback(t *testing.T) {
	s := &Scripted{
		IXAnswers:             [][]bool{{true, false}},
		DisambiguationAnswers: []int{1},
		TopKAnswers:           []int{3},
		ThresholdAnswers:      []float64{0.25},
		ProjectionAnswers:     [][]bool{{false, true}},
	}
	ans, err := s.VerifyIXs(context.Background(), "q", spans)
	if err != nil || ans[0] != true || ans[1] != false {
		t.Errorf("VerifyIXs = %v, %v", ans, err)
	}
	// Second call falls back to Auto (accept all).
	ans, err = s.VerifyIXs(context.Background(), "q", spans)
	if err != nil || !ans[0] || !ans[1] {
		t.Errorf("fallback VerifyIXs = %v, %v", ans, err)
	}
	i, err := s.Disambiguate(context.Background(), "Buffalo", choices)
	if err != nil || i != 1 {
		t.Errorf("Disambiguate = %d, %v", i, err)
	}
	if i, _ := s.Disambiguate(context.Background(), "Buffalo", choices); i != 0 {
		t.Errorf("fallback Disambiguate = %d", i)
	}
	if k, _ := s.SelectTopK(context.Background(), "d", 5); k != 3 {
		t.Errorf("SelectTopK = %d", k)
	}
	if th, _ := s.SelectThreshold(context.Background(), "d", 0.1); th != 0.25 {
		t.Errorf("SelectThreshold = %g", th)
	}
	keep, err := s.SelectProjection(context.Background(), []VarChoice{{Var: "x"}, {Var: "y"}})
	if err != nil || keep[0] || !keep[1] {
		t.Errorf("SelectProjection = %v, %v", keep, err)
	}
}

func TestScriptedShapeMismatch(t *testing.T) {
	s := &Scripted{IXAnswers: [][]bool{{true}}}
	if _, err := s.VerifyIXs(context.Background(), "q", spans); err == nil {
		t.Error("shape mismatch accepted")
	}
	s2 := &Scripted{DisambiguationAnswers: []int{7}}
	if _, err := s2.Disambiguate(context.Background(), "x", choices); err == nil {
		t.Error("out-of-range choice accepted")
	}
	s3 := &Scripted{ProjectionAnswers: [][]bool{{true}}}
	if _, err := s3.SelectProjection(context.Background(), []VarChoice{{Var: "x"}, {Var: "y"}}); err == nil {
		t.Error("projection shape mismatch accepted")
	}
}

func TestConsoleDialogue(t *testing.T) {
	in := strings.NewReader("y\nn\n2\n7\n0.4\n\nn\n")
	var out strings.Builder
	c := &Console{R: in, W: &out}
	ans, err := c.VerifyIXs(context.Background(), "q", spans)
	if err != nil || ans[0] != true || ans[1] != false {
		t.Fatalf("VerifyIXs = %v, %v", ans, err)
	}
	i, err := c.Disambiguate(context.Background(), "Buffalo", choices)
	if err != nil || i != 1 {
		t.Fatalf("Disambiguate = %d, %v", i, err)
	}
	k, err := c.SelectTopK(context.Background(), "interesting places", 5)
	if err != nil || k != 7 {
		t.Fatalf("SelectTopK = %d, %v", k, err)
	}
	th, err := c.SelectThreshold(context.Background(), "visit in the fall", 0.1)
	if err != nil || th != 0.4 {
		t.Fatalf("SelectThreshold = %g, %v", th, err)
	}
	keep, err := c.SelectProjection(context.Background(), []VarChoice{{Var: "x", Phrase: "places"}, {Var: "y", Phrase: "guide"}})
	if err != nil || !keep[0] || keep[1] {
		t.Fatalf("SelectProjection = %v, %v", keep, err)
	}
	text := out.String()
	for _, want := range []string{"most interesting places", "Buffalo", "interesting places", "visit in the fall", "places"} {
		if !strings.Contains(text, want) {
			t.Errorf("console output missing %q", want)
		}
	}
}

func TestConsoleDefaultsOnEmptyLine(t *testing.T) {
	in := strings.NewReader("\n\n\n")
	var out strings.Builder
	c := &Console{R: in, W: &out}
	if i, err := c.Disambiguate(context.Background(), "x", choices); err != nil || i != 0 {
		t.Errorf("Disambiguate default = %d, %v", i, err)
	}
	if k, err := c.SelectTopK(context.Background(), "d", 5); err != nil || k != 5 {
		t.Errorf("SelectTopK default = %d, %v", k, err)
	}
	if th, err := c.SelectThreshold(context.Background(), "d", 0.1); err != nil || th != 0.1 {
		t.Errorf("SelectThreshold default = %g, %v", th, err)
	}
}

func TestConsoleInvalidInput(t *testing.T) {
	c := &Console{R: strings.NewReader("nope\n"), W: &strings.Builder{}}
	if _, err := c.Disambiguate(context.Background(), "x", choices); err == nil {
		t.Error("invalid choice accepted")
	}
	c2 := &Console{R: strings.NewReader("-3\n"), W: &strings.Builder{}}
	if _, err := c2.SelectTopK(context.Background(), "d", 5); err == nil {
		t.Error("negative k accepted")
	}
	c3 := &Console{R: strings.NewReader("1.5\n"), W: &strings.Builder{}}
	if _, err := c3.SelectThreshold(context.Background(), "d", 0.1); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestRecorderTranscript(t *testing.T) {
	r := &Recorder{Inner: Auto{}}
	if _, err := r.VerifyIXs(context.Background(), "q", spans); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Disambiguate(context.Background(), "Buffalo", choices); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SelectTopK(context.Background(), "interesting places", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SelectThreshold(context.Background(), "visit in fall", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SelectProjection(context.Background(), []VarChoice{{Var: "x"}}); err != nil {
		t.Fatal(err)
	}
	if len(r.Log) != 5 {
		t.Fatalf("transcript has %d exchanges, want 5", len(r.Log))
	}
	points := []Point{PointIXVerification, PointDisambiguation, PointSignificance, PointSignificance, PointProjection}
	for i, ex := range r.Log {
		if ex.Point != points[i] {
			t.Errorf("exchange %d point = %v, want %v", i, ex.Point, points[i])
		}
		if ex.Question == "" || ex.Answer == "" {
			t.Errorf("exchange %d incomplete: %+v", i, ex)
		}
	}
}

func TestPointStringUnknown(t *testing.T) {
	if got := Point(99).String(); !strings.Contains(got, "99") {
		t.Errorf("String = %q", got)
	}
}

func TestScriptedStrictExhausted(t *testing.T) {
	s := &Scripted{
		IXAnswers:             [][]bool{{true, false}},
		DisambiguationAnswers: []int{1},
		Strict:                true,
	}
	if _, err := s.VerifyIXs(context.Background(), "q", spans); err != nil {
		t.Fatalf("scripted answer failed: %v", err)
	}
	if _, err := s.VerifyIXs(context.Background(), "q", spans); !errors.Is(err, ErrScriptExhausted) {
		t.Errorf("exhausted VerifyIXs err = %v, want ErrScriptExhausted", err)
	}
	if _, err := s.Disambiguate(context.Background(), "Buffalo", choices); err != nil {
		t.Fatalf("scripted answer failed: %v", err)
	}
	if _, err := s.Disambiguate(context.Background(), "Buffalo", choices); !errors.Is(err, ErrScriptExhausted) {
		t.Errorf("exhausted Disambiguate err = %v, want ErrScriptExhausted", err)
	}
	if _, err := s.SelectTopK(context.Background(), "d", 5); !errors.Is(err, ErrScriptExhausted) {
		t.Errorf("exhausted SelectTopK err = %v, want ErrScriptExhausted", err)
	}
	if _, err := s.SelectThreshold(context.Background(), "d", 0.1); !errors.Is(err, ErrScriptExhausted) {
		t.Errorf("exhausted SelectThreshold err = %v, want ErrScriptExhausted", err)
	}
	if _, err := s.SelectProjection(context.Background(), []VarChoice{{Var: "x"}}); !errors.Is(err, ErrScriptExhausted) {
		t.Errorf("exhausted SelectProjection err = %v, want ErrScriptExhausted", err)
	}
}

// TestScriptedNonStrictStillFallsBack pins the backward-compatible
// default: without Strict, exhausted queues keep answering with Auto.
func TestScriptedNonStrictStillFallsBack(t *testing.T) {
	s := &Scripted{}
	if ans, err := s.VerifyIXs(context.Background(), "q", spans); err != nil || !ans[0] || !ans[1] {
		t.Errorf("fallback VerifyIXs = %v, %v", ans, err)
	}
}

// TestConsoleReadHonorsContext verifies the -interactive Ctrl-C path: a
// prompt whose reader never delivers a line unblocks as soon as the
// context is cancelled.
func TestConsoleReadHonorsContext(t *testing.T) {
	pr, pw := io.Pipe() // a read that never completes
	defer pw.Close()
	c := &Console{R: pr, W: &strings.Builder{}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Disambiguate(ctx, "Buffalo", choices)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Disambiguate still blocked after cancellation")
	}
}

// TestRecorderConcurrent hammers one Recorder from parallel translations
// (the session subsystem shares a Recorder-wrapped bridge per session,
// and the daemon runs sessions concurrently); -race verifies the locking.
func TestRecorderConcurrent(t *testing.T) {
	r := &Recorder{Inner: Auto{}}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if _, err := r.VerifyIXs(context.Background(), "q", spans); err != nil {
					t.Error(err)
					return
				}
				if _, err := r.Disambiguate(context.Background(), "Buffalo", choices); err != nil {
					t.Error(err)
					return
				}
				if len(r.Transcript()) == 0 {
					t.Error("empty transcript during recording")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(r.Transcript()); got != 8*50*2 {
		t.Errorf("transcript has %d exchanges, want %d", got, 8*50*2)
	}
}
