// Package interact models NL2CM's optional user-interaction points
// (paper §4.1, Figures 3–6): verifying detected individual expressions,
// disambiguating NL terms against the ontology, choosing LIMIT/THRESHOLD
// significance values, and selecting which variables' bindings to return.
//
// Each point can be independently disabled ("the system may be configured
// to always skip certain interaction points, or skip them when there is
// no uncertainty"); disabled or unanswered points fall back to defaults.
//
// Every Interactor method receives the translation's context.Context and
// must return promptly (with ctx.Err()) once the context is cancelled, so
// a slow or abandoned dialogue cannot hold a pipeline stage forever.
package interact

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// Point identifies one of the four interaction points.
type Point int

// Interaction points, in pipeline order.
const (
	PointIXVerification Point = iota
	PointDisambiguation
	PointSignificance
	PointProjection
)

func (p Point) String() string {
	switch p {
	case PointIXVerification:
		return "ix-verification"
	case PointDisambiguation:
		return "disambiguation"
	case PointSignificance:
		return "significance"
	case PointProjection:
		return "projection"
	default:
		return fmt.Sprintf("point(%d)", int(p))
	}
}

// Policy selects which interaction points are active. The zero value
// disables all interaction (fully automatic translation, the §4.1
// "without interacting with the user" mode).
type Policy struct {
	// Ask enables each point.
	Ask map[Point]bool
	// OnlyWhenUncertain limits IX verification to spans whose detection
	// pattern is marked uncertain (paper: 'an IX detection pattern can be
	// marked as "uncertain"').
	OnlyWhenUncertain bool
}

// Interactive returns a policy with every interaction point enabled.
func Interactive() Policy {
	return Policy{Ask: map[Point]bool{
		PointIXVerification: true,
		PointDisambiguation: true,
		PointSignificance:   true,
		PointProjection:     true,
	}}
}

// Automatic returns the no-interaction policy.
func Automatic() Policy { return Policy{} }

// Asks reports whether the policy activates the point.
func (p Policy) Asks(pt Point) bool { return p.Ask != nil && p.Ask[pt] }

// IXSpan is a detected individual expression shown to the user for
// verification (Figure 4 highlights each in a different color).
type IXSpan struct {
	// Text is the surface text of the expression.
	Text string
	// Start and End are token indices [Start, End) in the question.
	Start, End int
	// ByteStart and ByteEnd delimit the expression's byte range
	// [ByteStart, ByteEnd) in the original question, for highlighting.
	ByteStart, ByteEnd int
	// Source is the exact source phrase the expression covers, quoted
	// from the question (gaps elided with "..."), in contrast to Text,
	// which re-joins token surface forms.
	Source string
	// Type is the individuality type: "lexical", "participant" or
	// "syntactic".
	Type string
	// Pattern names the detection pattern that fired.
	Pattern string
	// Uncertain marks spans from patterns flagged as uncertain.
	Uncertain bool
}

// Choice is one option in a disambiguation question.
type Choice struct {
	Label       string
	Description string
}

// VarChoice is one projectable variable with the question phrase it
// corresponds to.
type VarChoice struct {
	Var    string
	Phrase string
}

// Interactor answers the system's questions. Implementations must be
// safe for sequential use during one translation; an Interactor with
// mutable answer state (e.g. Scripted) must not be shared between
// concurrent translations. Each method receives the translation's
// context and should abort with ctx.Err() when it is cancelled.
type Interactor interface {
	// VerifyIXs asks which detected IXs really are individual; it
	// returns one accept flag per span.
	VerifyIXs(ctx context.Context, question string, spans []IXSpan) ([]bool, error)
	// Disambiguate picks one of the candidate meanings for a phrase; it
	// returns the chosen index.
	Disambiguate(ctx context.Context, phrase string, options []Choice) (int, error)
	// SelectTopK asks for the k of a top-k significance selection.
	SelectTopK(ctx context.Context, description string, def int) (int, error)
	// SelectThreshold asks for a minimal support threshold in [0,1].
	SelectThreshold(ctx context.Context, description string, def float64) (float64, error)
	// SelectProjection asks which variables to return bindings for; it
	// returns one keep flag per choice.
	SelectProjection(ctx context.Context, choices []VarChoice) ([]bool, error)
}

// ---------------------------------------------------------------------
// Auto: every question answered with its default.

// Auto is the non-interactive Interactor: it accepts all IXs, keeps the
// top-ranked disambiguation candidate, uses default significance values
// and projects every variable. It is stateless and safe for concurrent
// use.
type Auto struct{}

// VerifyIXs implements Interactor.
func (Auto) VerifyIXs(ctx context.Context, _ string, spans []IXSpan) ([]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]bool, len(spans))
	for i := range out {
		out[i] = true
	}
	return out, nil
}

// Disambiguate implements Interactor.
func (Auto) Disambiguate(ctx context.Context, _ string, options []Choice) (int, error) {
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	if len(options) == 0 {
		return -1, fmt.Errorf("interact: no options to disambiguate")
	}
	return 0, nil
}

// SelectTopK implements Interactor.
func (Auto) SelectTopK(ctx context.Context, _ string, def int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return def, nil
}

// SelectThreshold implements Interactor.
func (Auto) SelectThreshold(ctx context.Context, _ string, def float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return def, nil
}

// SelectProjection implements Interactor.
func (Auto) SelectProjection(ctx context.Context, choices []VarChoice) ([]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]bool, len(choices))
	for i := range out {
		out[i] = true
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Scripted: canned answers for tests and demo scripts.

// ErrScriptExhausted reports that a Scripted interactor in Strict mode
// was asked more questions than its script answers. Tests match it with
// errors.Is.
var ErrScriptExhausted = errors.New("interact: script exhausted")

// Scripted replays pre-recorded answers; when a queue is exhausted it
// falls back to the Auto defaults, unless Strict is set, in which case
// the exhausted call fails with ErrScriptExhausted. It implements the
// volunteer-user scripts of the demonstration scenario. A Scripted
// interactor carries per-dialogue cursors and therefore serves exactly
// one translation at a time; build a fresh one per request under
// concurrency.
type Scripted struct {
	// IXAnswers holds one []bool per VerifyIXs call.
	IXAnswers [][]bool
	// DisambiguationAnswers holds chosen indices per Disambiguate call.
	DisambiguationAnswers []int
	// TopKAnswers and ThresholdAnswers per corresponding call.
	TopKAnswers      []int
	ThresholdAnswers []float64
	// ProjectionAnswers holds one []bool per SelectProjection call.
	ProjectionAnswers [][]bool
	// Strict turns silent fallback-to-default on an exhausted answer
	// queue into an ErrScriptExhausted failure, so a test whose dialogue
	// asks more questions than scripted fails loudly instead of passing
	// on defaults.
	Strict bool

	ixi, disi, ki, thi, pri int
}

// VerifyIXs implements Interactor.
func (s *Scripted) VerifyIXs(ctx context.Context, q string, spans []IXSpan) ([]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.ixi < len(s.IXAnswers) {
		ans := s.IXAnswers[s.ixi]
		s.ixi++
		if len(ans) != len(spans) {
			return nil, fmt.Errorf("interact: scripted IX answer has %d flags for %d spans", len(ans), len(spans))
		}
		return ans, nil
	}
	if s.Strict {
		return nil, fmt.Errorf("%w: no IX answer for call %d", ErrScriptExhausted, s.ixi+1)
	}
	return Auto{}.VerifyIXs(ctx, q, spans)
}

// Disambiguate implements Interactor.
func (s *Scripted) Disambiguate(ctx context.Context, phrase string, options []Choice) (int, error) {
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	if s.disi < len(s.DisambiguationAnswers) {
		i := s.DisambiguationAnswers[s.disi]
		s.disi++
		if i < 0 || i >= len(options) {
			return -1, fmt.Errorf("interact: scripted choice %d out of range (%d options for %q)", i, len(options), phrase)
		}
		return i, nil
	}
	if s.Strict {
		return -1, fmt.Errorf("%w: no disambiguation answer for %q (call %d)", ErrScriptExhausted, phrase, s.disi+1)
	}
	return Auto{}.Disambiguate(ctx, phrase, options)
}

// SelectTopK implements Interactor.
func (s *Scripted) SelectTopK(ctx context.Context, desc string, def int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.ki < len(s.TopKAnswers) {
		k := s.TopKAnswers[s.ki]
		s.ki++
		return k, nil
	}
	if s.Strict {
		return 0, fmt.Errorf("%w: no top-k answer for call %d", ErrScriptExhausted, s.ki+1)
	}
	return def, nil
}

// SelectThreshold implements Interactor.
func (s *Scripted) SelectThreshold(ctx context.Context, desc string, def float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if s.thi < len(s.ThresholdAnswers) {
		t := s.ThresholdAnswers[s.thi]
		s.thi++
		return t, nil
	}
	if s.Strict {
		return 0, fmt.Errorf("%w: no threshold answer for call %d", ErrScriptExhausted, s.thi+1)
	}
	return def, nil
}

// SelectProjection implements Interactor.
func (s *Scripted) SelectProjection(ctx context.Context, choices []VarChoice) ([]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.pri < len(s.ProjectionAnswers) {
		ans := s.ProjectionAnswers[s.pri]
		s.pri++
		if len(ans) != len(choices) {
			return nil, fmt.Errorf("interact: scripted projection answer has %d flags for %d vars", len(ans), len(choices))
		}
		return ans, nil
	}
	if s.Strict {
		return nil, fmt.Errorf("%w: no projection answer for call %d", ErrScriptExhausted, s.pri+1)
	}
	return Auto{}.SelectProjection(ctx, choices)
}

// ---------------------------------------------------------------------
// Console: interactive prompts over an io stream (the CLI front end).

// Console prompts the user on W and reads answers from R, mirroring the
// web UI dialogues of Figures 3–6 in plain text. Reads run on a
// dedicated goroutine so every prompt honors its context: cancelling
// (Ctrl-C, timeout) unblocks the dialogue immediately with ctx.Err().
// The underlying read itself is not interruptible — an abandoned read
// keeps running until the next line or EOF arrives on R, and its line is
// discarded; for stdin this is moot because the process is exiting.
type Console struct {
	R io.Reader
	W io.Writer

	once  sync.Once
	lines chan lineRead
}

// lineRead is one reader-goroutine result.
type lineRead struct {
	line string
	err  error
}

// start launches the reader goroutine on first use. It reads at most one
// line ahead (the channel is unbuffered) and exits on read error/EOF.
func (c *Console) start() {
	c.once.Do(func() {
		c.lines = make(chan lineRead)
		go func() {
			br := bufio.NewReader(c.R)
			for {
				line, err := br.ReadString('\n')
				if err != nil && line == "" {
					c.lines <- lineRead{"", err}
					return
				}
				c.lines <- lineRead{strings.TrimSpace(line), nil}
				if err != nil {
					return
				}
			}
		}()
	})
}

func (c *Console) readLine(ctx context.Context) (string, error) {
	c.start()
	select {
	case r := <-c.lines:
		return r.line, r.err
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// VerifyIXs implements Interactor.
func (c *Console) VerifyIXs(ctx context.Context, question string, spans []IXSpan) ([]bool, error) {
	fmt.Fprintf(c.W, "Please verify: which parts of your question should be asked to the crowd?\n")
	out := make([]bool, len(spans))
	for i, sp := range spans {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fmt.Fprintf(c.W, "  [%d] %q (%s individuality) — ask the crowd? [Y/n] ", i+1, sp.Text, sp.Type)
		line, err := c.readLine(ctx)
		if err != nil {
			return nil, fmt.Errorf("interact: reading IX answer: %w", err)
		}
		out[i] = line == "" || strings.EqualFold(line, "y") || strings.EqualFold(line, "yes")
	}
	return out, nil
}

// Disambiguate implements Interactor.
func (c *Console) Disambiguate(ctx context.Context, phrase string, options []Choice) (int, error) {
	if err := ctx.Err(); err != nil {
		return -1, err
	}
	if len(options) == 0 {
		return -1, fmt.Errorf("interact: no options to disambiguate")
	}
	fmt.Fprintf(c.W, "Which %q did you mean?\n", phrase)
	for i, o := range options {
		fmt.Fprintf(c.W, "  [%d] %s — %s\n", i+1, o.Label, o.Description)
	}
	fmt.Fprintf(c.W, "Enter choice [1]: ")
	line, err := c.readLine(ctx)
	if err != nil {
		return -1, fmt.Errorf("interact: reading choice: %w", err)
	}
	if line == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(line)
	if err != nil || n < 1 || n > len(options) {
		return -1, fmt.Errorf("interact: invalid choice %q", line)
	}
	return n - 1, nil
}

// SelectTopK implements Interactor.
func (c *Console) SelectTopK(ctx context.Context, desc string, def int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	fmt.Fprintf(c.W, "How many results for %s? [%d]: ", desc, def)
	line, err := c.readLine(ctx)
	if err != nil {
		return 0, fmt.Errorf("interact: reading k: %w", err)
	}
	if line == "" {
		return def, nil
	}
	n, err := strconv.Atoi(line)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("interact: invalid k %q", line)
	}
	return n, nil
}

// SelectThreshold implements Interactor.
func (c *Console) SelectThreshold(ctx context.Context, desc string, def float64) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	fmt.Fprintf(c.W, "Minimal frequency for %s, between 0 and 1? [%g]: ", desc, def)
	line, err := c.readLine(ctx)
	if err != nil {
		return 0, fmt.Errorf("interact: reading threshold: %w", err)
	}
	if line == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(line, 64)
	if err != nil || f < 0 || f > 1 {
		return 0, fmt.Errorf("interact: invalid threshold %q", line)
	}
	return f, nil
}

// SelectProjection implements Interactor.
func (c *Console) SelectProjection(ctx context.Context, choices []VarChoice) ([]bool, error) {
	out := make([]bool, len(choices))
	fmt.Fprintf(c.W, "For which terms do you want to receive instances?\n")
	for i, ch := range choices {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fmt.Fprintf(c.W, "  $%s (%q) — include? [Y/n] ", ch.Var, ch.Phrase)
		line, err := c.readLine(ctx)
		if err != nil {
			return nil, fmt.Errorf("interact: reading projection answer: %w", err)
		}
		out[i] = line == "" || strings.EqualFold(line, "y") || strings.EqualFold(line, "yes")
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Recorder: transcripts for the administrator mode.

// Exchange is one recorded question/answer pair.
type Exchange struct {
	Point    Point
	Question string
	Answer   string
}

// Recorder wraps an Interactor and records a transcript of every
// exchange; the admin-mode monitor displays it. Recording is
// mutex-guarded, so one Recorder may be shared by concurrent
// translations (provided Inner itself is concurrency-safe): exchanges
// from different dialogues interleave in arrival order, each appended
// atomically. Read the transcript with Transcript, which copies under
// the same lock; the exported Log field may only be accessed directly
// once every translation using the Recorder has returned.
type Recorder struct {
	Inner Interactor
	Log   []Exchange

	mu sync.Mutex
}

func (r *Recorder) record(p Point, q, a string) {
	r.mu.Lock()
	r.Log = append(r.Log, Exchange{Point: p, Question: q, Answer: a})
	r.mu.Unlock()
}

// Transcript returns a copy of the exchanges recorded so far. It is safe
// to call while translations using this Recorder are still running.
func (r *Recorder) Transcript() []Exchange {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Exchange, len(r.Log))
	copy(out, r.Log)
	return out
}

// VerifyIXs implements Interactor.
func (r *Recorder) VerifyIXs(ctx context.Context, question string, spans []IXSpan) ([]bool, error) {
	ans, err := r.Inner.VerifyIXs(ctx, question, spans)
	if err != nil {
		return nil, err
	}
	var qs, as []string
	for i, sp := range spans {
		qs = append(qs, fmt.Sprintf("%q(%s)", sp.Text, sp.Type))
		if i < len(ans) {
			as = append(as, fmt.Sprintf("%v", ans[i]))
		}
	}
	r.record(PointIXVerification, "verify IXs: "+strings.Join(qs, ", "), strings.Join(as, ", "))
	return ans, nil
}

// Disambiguate implements Interactor.
func (r *Recorder) Disambiguate(ctx context.Context, phrase string, options []Choice) (int, error) {
	i, err := r.Inner.Disambiguate(ctx, phrase, options)
	if err != nil {
		return i, err
	}
	var labels []string
	for _, o := range options {
		labels = append(labels, o.Label+" ("+o.Description+")")
	}
	r.record(PointDisambiguation,
		fmt.Sprintf("disambiguate %q among [%s]", phrase, strings.Join(labels, "; ")),
		options[i].Label+" ("+options[i].Description+")")
	return i, nil
}

// SelectTopK implements Interactor.
func (r *Recorder) SelectTopK(ctx context.Context, desc string, def int) (int, error) {
	k, err := r.Inner.SelectTopK(ctx, desc, def)
	if err != nil {
		return k, err
	}
	r.record(PointSignificance, fmt.Sprintf("top-k for %s (default %d)", desc, def), strconv.Itoa(k))
	return k, nil
}

// SelectThreshold implements Interactor.
func (r *Recorder) SelectThreshold(ctx context.Context, desc string, def float64) (float64, error) {
	t, err := r.Inner.SelectThreshold(ctx, desc, def)
	if err != nil {
		return t, err
	}
	r.record(PointSignificance, fmt.Sprintf("threshold for %s (default %g)", desc, def),
		strconv.FormatFloat(t, 'g', -1, 64))
	return t, nil
}

// SelectProjection implements Interactor.
func (r *Recorder) SelectProjection(ctx context.Context, choices []VarChoice) ([]bool, error) {
	ans, err := r.Inner.SelectProjection(ctx, choices)
	if err != nil {
		return nil, err
	}
	var qs, as []string
	for i, ch := range choices {
		qs = append(qs, "$"+ch.Var)
		if i < len(ans) {
			as = append(as, fmt.Sprintf("%v", ans[i]))
		}
	}
	r.record(PointProjection, "project "+strings.Join(qs, ", "), strings.Join(as, ", "))
	return ans, nil
}

// Interface checks.
var (
	_ Interactor = Auto{}
	_ Interactor = (*Scripted)(nil)
	_ Interactor = (*Console)(nil)
	_ Interactor = (*Recorder)(nil)
)
