package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"nl2cm/internal/corpus"
	"nl2cm/internal/emit"
	"nl2cm/internal/interact"
	"nl2cm/internal/ontology"
	"nl2cm/internal/qcache"
)

// allBackends is every registered dialect, checked for byte-identity in
// the differential tests.
func allBackends() []string { return emit.Names() }

// renderAll renders a result in every backend, failing the test on a
// capability error only if the cold side rendered it too (capability
// errors must match as well).
func renderAll(t *testing.T, res *Result) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range allBackends() {
		rend, err := res.Render(name)
		if err != nil {
			out[name] = "ERR: " + err.Error()
			continue
		}
		out[name] = rend.Query
	}
	return out
}

// TestCacheDifferentialCorpus asserts that for every corpus question,
// the translation served through the plan cache — first as the filling
// miss, then as an exact-shape hit — is byte-identical to a cold
// translation on the OASSIS-QL query and every backend rendering.
func TestCacheDifferentialCorpus(t *testing.T) {
	onto := ontology.NewDemoOntology()
	cold := New(onto)
	cached := New(onto)
	cached.Cache = qcache.New(256)
	ctx := context.Background()
	opt := Options{Backends: allBackends()}

	for _, q := range corpus.All() {
		coldRes, coldErr := cold.Translate(ctx, q.Text, opt)
		missRes, missErr := cached.Translate(ctx, q.Text, opt)
		hitRes, hitErr := cached.Translate(ctx, q.Text, opt)
		if (coldErr == nil) != (missErr == nil) || (coldErr == nil) != (hitErr == nil) {
			t.Errorf("%s: error mismatch: cold=%v miss=%v hit=%v", q.ID, coldErr, missErr, hitErr)
			continue
		}
		if coldErr != nil {
			continue
		}
		compareResults(t, q.ID+"/miss", coldRes, missRes)
		compareResults(t, q.ID+"/hit", coldRes, hitRes)
	}
	st := cached.Cache.Stats()
	if st.Hits == 0 {
		t.Errorf("no cache hits over the corpus replay: stats %+v", st)
	}
}

func compareResults(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Verdict.Supported != got.Verdict.Supported {
		t.Errorf("%s: supported %v vs %v", label, want.Verdict.Supported, got.Verdict.Supported)
		return
	}
	if !want.Verdict.Supported {
		return
	}
	if w, g := want.Query.String(), got.Query.String(); w != g {
		t.Errorf("%s: OASSIS-QL differs:\ncold:\n%s\ncached:\n%s", label, w, g)
		return
	}
	wr, gr := renderAll(t, want), renderAll(t, got)
	for _, name := range allBackends() {
		if wr[name] != gr[name] {
			t.Errorf("%s: backend %s differs:\ncold:\n%s\ncached:\n%s", label, name, wr[name], gr[name])
		}
	}
}

// TestCacheRebindDifferential: a same-shape question with different
// entities must be served by re-binding the cached plan — and the
// re-bound translation must be byte-identical to a cold translation of
// that question, provenance excerpts included.
func TestCacheRebindDifferential(t *testing.T) {
	pairs := [][2]string{
		{"Where do families eat near Delaware Park?", "Where do families eat near Central Park?"},
		{"Which restaurants near Woodlawn Beach do locals recommend?", "Which restaurants near Niagara Falls do locals recommend?"},
		{"What should we visit near Anchor Bar?", "What should we visit near Buffalo Zoo?"},
	}
	onto := ontology.NewDemoOntology()
	ctx := context.Background()
	opt := Options{Backends: allBackends()}

	for i, pair := range pairs {
		cached := New(onto)
		cached.Cache = qcache.New(64)
		cold := New(onto)

		// Verify the pair actually shares a shape; otherwise the test
		// exercises nothing.
		sa := qcache.Canonicalize(pair[0], onto)
		sb := qcache.Canonicalize(pair[1], onto)
		if sa.Key != sb.Key {
			t.Fatalf("pair %d: shapes differ:\n  %q\n  %q", i, sa.Key, sb.Key)
		}

		if _, err := cached.Translate(ctx, pair[0], opt); err != nil {
			t.Fatalf("pair %d: warm-up: %v", i, err)
		}
		got, err := cached.Translate(ctx, pair[1], opt)
		if err != nil {
			t.Fatalf("pair %d: rebind translate: %v", i, err)
		}
		want, err := cold.Translate(ctx, pair[1], opt)
		if err != nil {
			t.Fatalf("pair %d: cold translate: %v", i, err)
		}
		compareResults(t, fmt.Sprintf("pair-%d", i), want, got)

		// Provenance excerpts must re-derive from the *new* question.
		for key, rec := range want.Provenance {
			gotRec, ok := got.Provenance[key]
			if !ok {
				t.Errorf("pair %d: rebind lost provenance for %s", i, key)
				continue
			}
			if rec.Text != gotRec.Text {
				t.Errorf("pair %d: provenance text for %s: cold %q, rebound %q", i, key, rec.Text, gotRec.Text)
			}
		}
		if st := cached.Cache.Stats(); st.Rebinds == 0 && want.Verdict.Supported && len(want.Plan.Filters) == 0 {
			t.Errorf("pair %d: expected a rebind, stats %+v", i, st)
		}
	}
}

// TestCacheBypassesInteractiveRequests: a request with an interactor or
// an asking policy must never touch the cache — dialogue answers are
// request-private.
func TestCacheBypassesInteractiveRequests(t *testing.T) {
	onto := ontology.NewDemoOntology()
	tr := New(onto)
	tr.Cache = qcache.New(16)
	ctx := context.Background()
	q := "Where do families eat near Delaware Park?"

	if _, err := tr.Translate(ctx, q, Options{Interactor: interact.Auto{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Translate(ctx, q, Options{Policy: interact.Interactive()}); err != nil {
		t.Fatal(err)
	}
	if st := tr.Cache.Stats(); st.Hits+st.Misses+st.Waits != 0 {
		t.Errorf("interactive requests touched the cache: %+v", st)
	}
}

// TestCacheFeedbackEpochInvalidates: recording disambiguation feedback
// must make previously cached plans unreachable (the translation could
// now rank entities differently).
func TestCacheFeedbackEpochInvalidates(t *testing.T) {
	onto := ontology.NewDemoOntology()
	tr := New(onto)
	tr.Cache = qcache.New(16)
	ctx := context.Background()
	q := "Where do families eat near Delaware Park?"

	if _, err := tr.Translate(ctx, q, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Translate(ctx, q, Options{}); err != nil {
		t.Fatal(err)
	}
	st := tr.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("before feedback: stats %+v, want 1 hit / 1 miss", st)
	}
	tr.Generator.Feedback.Record("buffalo", ontology.E("Buffalo,_NY"))
	if _, err := tr.Translate(ctx, q, Options{}); err != nil {
		t.Fatal(err)
	}
	st = tr.Cache.Stats()
	if st.Misses != 2 {
		t.Errorf("after feedback: stats %+v, want a second miss (epoch invalidation)", st)
	}
}

// TestCacheObserverSeesPlanCacheStage: the observability hook must see
// the Plan Cache stage on cached paths, and the hit trace must name it.
func TestCacheObserverSeesPlanCacheStage(t *testing.T) {
	onto := ontology.NewDemoOntology()
	tr := New(onto)
	tr.Cache = qcache.New(16)
	ctx := context.Background()
	q := "Where do families eat near Delaware Park?"

	seen := map[string]int{}
	var mu sync.Mutex
	opt := Options{
		Trace: true,
		Observer: ObserverFunc(func(stage string, d time.Duration, err error) {
			mu.Lock()
			seen[stage]++
			mu.Unlock()
		}),
	}
	if _, err := tr.Translate(ctx, q, opt); err != nil {
		t.Fatal(err)
	}
	res, err := tr.Translate(ctx, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if seen[StagePlanCache] != 2 {
		t.Errorf("observer saw Plan Cache %d times, want 2 (miss + hit)", seen[StagePlanCache])
	}
	if len(res.Trace) != 1 || res.Trace[0].Module != StagePlanCache {
		t.Errorf("hit trace = %+v, want a single Plan Cache stage", res.Trace)
	}
}
