package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nl2cm/internal/interact"
)

// TestTranslateConcurrentShared exercises the documented sharing model:
// many goroutines translating through one Translator, with the
// disambiguation dialogue enabled so every translation records feedback
// ("Buffalo" is ambiguous in the demo ontology). Run under -race this
// fails if Feedback — the only cross-request mutable state — is
// unguarded.
func TestTranslateConcurrentShared(t *testing.T) {
	tr := newTranslator()
	opt := Options{
		Interactor: interact.Auto{},
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointDisambiguation: true}},
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				res, err := tr.Translate(context.Background(), "Where do you visit in Buffalo?", opt)
				if err != nil {
					errs <- err
					return
				}
				if res.Query == nil {
					errs <- errors.New("nil query")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Translate: %v", err)
	}
	recorded := false
	for _, c := range tr.Onto.Lookup("Buffalo") {
		if tr.Generator.Feedback.Boost("Buffalo", c.Term) > 0 {
			recorded = true
		}
	}
	if !recorded {
		t.Error("no disambiguation feedback accumulated across concurrent translations")
	}
}

// TestTranslatePreCancelled verifies that an already-cancelled context
// aborts before any work, with the failure attributed to the first
// stage and the cause visible to errors.Is.
func TestTranslatePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := newTranslator().Translate(ctx, runningExample, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled via errors.Is", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
	if se.Stage != StageVerification {
		t.Errorf("cancellation attributed to %q, want %q", se.Stage, StageVerification)
	}
}

// TestTranslateMidPipelineCancel cancels the context from an Observer
// callback at the end of the NL Parser stage; the next stage must
// observe it and report itself in the StageError.
func TestTranslateMidPipelineCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := ObserverFunc(func(stage string, d time.Duration, err error) {
		if stage == StageParser {
			cancel()
		}
	})
	_, err := newTranslator().Translate(ctx, runningExample, Options{Observer: obs})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled via errors.Is", err)
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StageError", err)
	}
	if se.Stage != StageIXDetector {
		t.Errorf("cancellation attributed to %q, want %q", se.Stage, StageIXDetector)
	}
}

// TestObserverAndDurations checks that the Observer sees every stage in
// pipeline order with balanced start/end callbacks, and that the admin
// trace carries per-stage durations.
func TestObserverAndDurations(t *testing.T) {
	var started, ended []string
	obs := stageLog{started: &started, ended: &ended}
	res, err := newTranslator().Translate(context.Background(), runningExample, Options{Trace: true, Observer: obs})
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	want := []string{StageVerification, StageParser, StageIXDetector, StageIXVerify,
		StageGenerator, StageIndividual, StageComposer}
	if !equalStrings(started, want) || !equalStrings(ended, want) {
		t.Errorf("observer saw start=%v end=%v, want %v", started, ended, want)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace collected")
	}
	for _, s := range res.Trace {
		if s.Duration < 0 {
			t.Errorf("stage %q has negative duration %v", s.Module, s.Duration)
		}
	}
}

type stageLog struct {
	started, ended *[]string
}

func (l stageLog) StageStart(stage string) { *l.started = append(*l.started, stage) }
func (l stageLog) StageEnd(stage string, d time.Duration, err error) {
	*l.ended = append(*l.ended, stage)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shortAnswers is a faulty Interactor that confirms only the first IX
// span no matter how many were asked about.
type shortAnswers struct{ interact.Auto }

func (shortAnswers) VerifyIXs(ctx context.Context, q string, spans []interact.IXSpan) ([]bool, error) {
	return []bool{true}, nil
}

// TestVerifyIXsShortAnswer is the regression test for the latent panic:
// a custom Interactor returning fewer answers than spans used to index
// out of range; now it is a stage-attributed error.
func TestVerifyIXsShortAnswer(t *testing.T) {
	opt := Options{
		Interactor: shortAnswers{},
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointIXVerification: true}},
	}
	_, err := newTranslator().Translate(context.Background(), runningExample, opt)
	if err == nil {
		t.Fatal("short answer slice accepted")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T (%v), want *StageError", err, err)
	}
	if se.Stage != StageIXVerify {
		t.Errorf("error attributed to %q, want %q", se.Stage, StageIXVerify)
	}
}
