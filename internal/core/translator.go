// Package core wires NL2CM's modules into the translation pipeline of the
// paper's Figure 2: verification → NL parsing → IX detection (IXFinder +
// IXCreator, with optional user verification) → General Query Generator
// (with optional disambiguation dialogues) → Individual Triple Creation →
// Query Composition (with optional significance and projection
// dialogues). It also produces the administrator-mode trace: the
// intermediate output of every module, in pipeline order.
package core

import (
	"fmt"
	"strings"

	"nl2cm/internal/compose"
	"nl2cm/internal/individual"
	"nl2cm/internal/interact"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/qgen"
	"nl2cm/internal/verify"
)

// Stage is one admin-mode trace entry: a module's intermediate output.
type Stage struct {
	// Module names the pipeline module ("NL Parser", "IX Detector", ...).
	Module string
	// Output is the module's rendered intermediate output.
	Output string
}

// Result is the outcome of one translation.
type Result struct {
	// Question is the original NL request.
	Question string
	// Verdict is the verification outcome; when not Supported, the rest
	// of the fields are zero except Trace.
	Verdict verify.Verdict
	// Graph is the parsed dependency graph.
	Graph *nlp.DepGraph
	// IXs are the accepted individual expressions; RejectedIXs those the
	// user declined during verification.
	IXs         []*ix.IX
	RejectedIXs []*ix.IX
	// General is the Query Generator output.
	General *qgen.Result
	// Parts are the individual query parts.
	Parts []individual.Part
	// Query is the final OASSIS-QL query.
	Query *oassisql.Query
	// PureGeneral marks requests with no individual parts: Query then
	// has an empty SATISFYING clause and is effectively a plain
	// ontology (SPARQL) query.
	PureGeneral bool
	// Trace holds the admin-mode intermediate outputs.
	Trace []Stage
	// Interactions is the recorded dialogue transcript.
	Interactions []interact.Exchange
}

// Translator is the NL2CM pipeline. Reuse one instance across requests so
// that disambiguation feedback accumulates (§4.1).
type Translator struct {
	Onto      *ontology.Ontology
	Detector  *ix.Detector
	Generator *qgen.Generator
	Creator   *individual.Creator
	Composer  *compose.Composer
}

// New builds a translator over the ontology with default detector,
// vocabularies, patterns and composition defaults.
func New(onto *ontology.Ontology) *Translator {
	return &Translator{
		Onto:      onto,
		Detector:  ix.NewDetector(),
		Generator: qgen.New(onto),
		Creator:   &individual.Creator{},
		Composer:  compose.New(),
	}
}

// Options configure one translation.
type Options struct {
	// Interactor answers dialogue questions; nil means automatic
	// defaults.
	Interactor interact.Interactor
	// Policy selects which interaction points are active.
	Policy interact.Policy
	// Trace enables admin-mode intermediate output collection.
	Trace bool
}

// Translate runs the full pipeline on one NL question.
func (t *Translator) Translate(question string, opt Options) (*Result, error) {
	res := &Result{Question: question}
	trace := func(module, output string) {
		if opt.Trace {
			res.Trace = append(res.Trace, Stage{Module: module, Output: output})
		}
	}

	// Record the dialogue when tracing.
	interactor := opt.Interactor
	if interactor == nil {
		interactor = interact.Auto{}
	}
	var rec *interact.Recorder
	if opt.Trace {
		rec = &interact.Recorder{Inner: interactor}
		interactor = rec
	}
	collectDialogue := func() {
		if rec != nil {
			res.Interactions = rec.Log
		}
	}

	// 1. Verification.
	res.Verdict = verify.Check(question)
	if !res.Verdict.Supported {
		trace("Verification", fmt.Sprintf("unsupported (%s): %s", res.Verdict.Category, res.Verdict.Reason))
		collectDialogue()
		return res, nil
	}
	trace("Verification", "supported")

	// 2. NL parsing (POS tags + dependency graph).
	g, err := nlp.Parse(question)
	if err != nil {
		return nil, fmt.Errorf("core: parsing question: %w", err)
	}
	res.Graph = g
	trace("NL Parser", g.String())

	// 3. IX detection: IXFinder + IXCreator.
	ixs, err := t.Detector.Detect(g)
	if err != nil {
		return nil, fmt.Errorf("core: detecting IXs: %w", err)
	}
	trace("IX Detector", renderIXs(g, ixs))

	// 3b. Optional user verification of (uncertain) IXs (Figure 4).
	res.IXs, res.RejectedIXs, err = t.verifyIXs(question, g, ixs, interactor, opt.Policy)
	if err != nil {
		return nil, err
	}
	if len(res.RejectedIXs) > 0 {
		trace("IX Verification", renderIXs(g, res.IXs)+"rejected:\n"+renderIXs(g, res.RejectedIXs))
	}

	// 4. General Query Generator (FREyA role) on the full request.
	res.General, err = t.Generator.Generate(g, qgen.Options{
		Interactor: interactor,
		Policy:     opt.Policy,
	})
	if err != nil {
		return nil, fmt.Errorf("core: generating general query parts: %w", err)
	}
	trace("General Query Generator", renderGeneral(res.General))

	// 5. Individual Triple Creation on the accepted IXs.
	res.Parts, err = t.Creator.Create(g, res.IXs, res.General)
	if err != nil {
		return nil, fmt.Errorf("core: creating individual triples: %w", err)
	}
	trace("Individual Triple Creation", renderParts(res.Parts))

	// 6. Query Composition.
	res.Query, err = t.Composer.Compose(compose.Input{
		Graph:      g,
		IXs:        res.IXs,
		General:    res.General,
		Parts:      res.Parts,
		Interactor: interactor,
		Policy:     opt.Policy,
	})
	if err != nil {
		return nil, fmt.Errorf("core: composing query: %w", err)
	}
	res.PureGeneral = len(res.Query.Satisfying) == 0
	trace("Query Composition", res.Query.String())
	collectDialogue()
	return res, nil
}

// verifyIXs runs the Figure-4 dialogue: detected IXs are shown for
// confirmation. Depending on the policy, all IXs or only uncertain ones
// are asked about; with interaction disabled, all are accepted.
func (t *Translator) verifyIXs(question string, g *nlp.DepGraph, ixs []*ix.IX,
	interactor interact.Interactor, policy interact.Policy) (accepted, rejected []*ix.IX, err error) {
	if !policy.Asks(interact.PointIXVerification) || len(ixs) == 0 {
		return ixs, nil, nil
	}
	var toAsk []*ix.IX
	for _, x := range ixs {
		if policy.OnlyWhenUncertain && !x.Uncertain {
			accepted = append(accepted, x)
			continue
		}
		toAsk = append(toAsk, x)
	}
	if len(toAsk) == 0 {
		return accepted, nil, nil
	}
	spans := make([]interact.IXSpan, len(toAsk))
	for i, x := range toAsk {
		start, end := x.Span()
		spans[i] = interact.IXSpan{
			Text:      x.Text(g),
			Start:     start,
			End:       end,
			Type:      strings.Join(x.Types, "+"),
			Pattern:   patternNames(x),
			Uncertain: x.Uncertain,
		}
	}
	answers, err := interactor.VerifyIXs(question, spans)
	if err != nil {
		return nil, nil, fmt.Errorf("core: verifying IXs: %w", err)
	}
	for i, x := range toAsk {
		if answers[i] {
			accepted = append(accepted, x)
		} else {
			rejected = append(rejected, x)
		}
	}
	return accepted, rejected, nil
}

func patternNames(x *ix.IX) string {
	var names []string
	for _, p := range x.Patterns {
		names = append(names, p.Name)
	}
	return strings.Join(names, ",")
}

func renderIXs(g *nlp.DepGraph, ixs []*ix.IX) string {
	if len(ixs) == 0 {
		return "(none)\n"
	}
	var b strings.Builder
	for _, x := range ixs {
		fmt.Fprintf(&b, "IX %q type=%s uncertain=%v anchor=%q\n",
			x.Text(g), strings.Join(x.Types, "+"), x.Uncertain, g.Nodes[x.Anchor].Text)
	}
	return b.String()
}

func renderGeneral(r *qgen.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "target: $%s\n", r.TargetVar)
	for _, t := range r.Triples {
		fmt.Fprintf(&b, "%s %s %s .\n",
			oassisql.TermString(t.S), oassisql.TermString(t.P), oassisql.TermString(t.O))
	}
	if len(r.Unmatched) > 0 {
		fmt.Fprintf(&b, "unmatched: %s\n", strings.Join(r.Unmatched, ", "))
	}
	return b.String()
}

func renderParts(parts []individual.Part) string {
	if len(parts) == 0 {
		return "(none)\n"
	}
	var b strings.Builder
	for i, p := range parts {
		fmt.Fprintf(&b, "part %d (%s):\n", i+1, p.Description)
		for _, t := range p.Triples {
			fmt.Fprintf(&b, "  %s %s %s .\n",
				oassisql.TermString(t.S), oassisql.TermString(t.P), oassisql.TermString(t.O))
		}
	}
	return b.String()
}
