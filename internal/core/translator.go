// Package core wires NL2CM's modules into the translation pipeline of the
// paper's Figure 2: verification → NL parsing → IX detection (IXFinder +
// IXCreator, with optional user verification) → General Query Generator
// (with optional disambiguation dialogues) → Individual Triple Creation →
// Query Composition (with optional significance and projection
// dialogues). It also produces the administrator-mode trace: the
// intermediate output of every module, with per-stage wall-clock
// durations, in pipeline order.
//
// # Concurrency and cancellation
//
// A Translator is safe for concurrent use: the ontology, detector
// patterns, vocabularies and composition defaults are read-only after
// construction, and the only cross-request mutable state — the
// disambiguation feedback store (qgen.Feedback) — locks internally.
// Administrator reconfiguration (swapping patterns, vocabularies or the
// feedback store) must be done before serving traffic, not while
// translations are in flight. Per-request state (Options, the
// Interactor, the admin trace) is never shared between requests.
//
// Translate honors its context between stages and inside interaction
// points; a cancelled translation returns a *StageError wrapping
// ctx.Err(), attributed to the stage that observed the cancellation.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"nl2cm/internal/compose"
	"nl2cm/internal/emit"
	"nl2cm/internal/individual"
	"nl2cm/internal/interact"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/prov"
	"nl2cm/internal/qcache"
	"nl2cm/internal/qgen"
	"nl2cm/internal/verify"
)

// Stage is one admin-mode trace entry: a module's intermediate output
// and how long the module ran.
type Stage struct {
	// Module names the pipeline module ("NL Parser", "IX Detector", ...).
	Module string
	// Output is the module's rendered intermediate output.
	Output string
	// Duration is the module's wall-clock running time.
	Duration time.Duration
}

// Result is the outcome of one translation.
type Result struct {
	// Question is the original NL request.
	Question string
	// Verdict is the verification outcome; when not Supported, the rest
	// of the fields are zero except Trace.
	Verdict verify.Verdict
	// Graph is the parsed dependency graph.
	Graph *nlp.DepGraph
	// IXs are the accepted individual expressions; RejectedIXs those the
	// user declined during verification.
	IXs         []*ix.IX
	RejectedIXs []*ix.IX
	// General is the Query Generator output.
	General *qgen.Result
	// Parts are the individual query parts.
	Parts []individual.Part
	// Plan is the backend-neutral logical query IR the composition
	// assembled; every backend rendering (including Query) derives from
	// it.
	Plan *emit.Plan
	// Query is the final OASSIS-QL query: the Plan rendered through the
	// OASSIS-QL backend.
	Query *oassisql.Query
	// Renderings holds the per-backend renderings requested via
	// Options.Backends, keyed by backend name, each with per-clause
	// provenance. Use Render for on-demand rendering of other backends.
	Renderings map[string]*emit.Rendering
	// PureGeneral marks requests with no individual parts: Query then
	// has an empty SATISFYING clause and is effectively a plain
	// ontology (SPARQL) query.
	PureGeneral bool
	// Provenance maps every emitted triple (rendered OASSIS-QL form) to
	// the source tokens, byte spans and question text it derives from.
	Provenance map[string]prov.Record
	// ComposeDecisions records, per general triple, why composition kept
	// or dropped it (exact IX-overlap token sets).
	ComposeDecisions []compose.Decision
	// Uncovered lists the question's content words that no emitted
	// triple (nor any accepted IX) derives from.
	Uncovered []prov.TokenInfo
	// CoverageTips are rephrasing hints generated from Uncovered.
	CoverageTips []string
	// CacheOutcome reports how the plan cache served this translation:
	// "miss" (cold, now cached), "hit" (exact reuse), "rebound" (cached
	// plan with re-bound entity slots), or "" when the request bypassed
	// the cache (no cache installed, or an interactive request).
	CacheOutcome string
	// DataEpoch is the knowledge-base epoch this translation was served
	// against (the store snapshot's publication counter). Cache-served
	// results carry the epoch they were computed under, which the cache
	// key guarantees equals the serving epoch.
	DataEpoch uint64
	// Trace holds the admin-mode intermediate outputs.
	Trace []Stage
	// Interactions is the recorded dialogue transcript.
	Interactions []interact.Exchange
}

// Translator is the NL2CM pipeline. Reuse one instance across requests so
// that disambiguation feedback accumulates (§4.1); it is safe for
// concurrent use (see the package comment for the sharing model).
type Translator struct {
	Onto      *ontology.Ontology
	Detector  *ix.Detector
	Generator *qgen.Generator
	Creator   *individual.Creator
	Composer  *compose.Composer

	// Cache, when non-nil, serves non-interactive translations through
	// the shape-keyed plan cache (see the qcache package): questions
	// sharing a canonical shape reuse one cold translation, re-binding
	// entity slots where they differ. Interactive requests (a non-nil
	// Options.Interactor or an asking Policy) always bypass it, and
	// entries are keyed on the feedback store's version so learned
	// disambiguation feedback invalidates stale plans. Set it before
	// serving traffic; nil keeps the classic always-cold behavior.
	Cache *qcache.Cache
}

// New builds a translator over the ontology with default detector,
// vocabularies, patterns and composition defaults.
func New(onto *ontology.Ontology) *Translator {
	return &Translator{
		Onto:      onto,
		Detector:  ix.NewDetector(),
		Generator: qgen.New(onto),
		Creator:   &individual.Creator{},
		Composer:  compose.New(),
	}
}

// Options configure one translation.
type Options struct {
	// Interactor answers dialogue questions; nil means automatic
	// defaults. It must not be shared with a concurrent translation
	// unless itself concurrency-safe (interact.Auto is; Scripted and
	// Recorder are not).
	Interactor interact.Interactor
	// Policy selects which interaction points are active.
	Policy interact.Policy
	// Trace enables admin-mode intermediate output collection.
	Trace bool
	// Observer, when non-nil, receives stage start/finish callbacks with
	// per-stage durations (the observability hook).
	Observer Observer
	// Backends lists extra backend dialects to render the composed plan
	// into (e.g. "sql", "mongodb", "cypher"); the results land in
	// Result.Renderings. An unknown name fails the Backend Emitter stage;
	// a plan exceeding a backend's capabilities surfaces that backend's
	// *emit.CapabilityError.
	Backends []string
}

// stageRunner wraps each pipeline module with the cross-cutting
// per-stage concerns: cancellation checks, wall-clock timing, observer
// callbacks, trace collection and StageError attribution.
type stageRunner struct {
	ctx context.Context
	opt Options
	res *Result
}

// run executes one module. The body returns the module's rendered trace
// output (empty to omit the trace entry) and its error; run returns the
// error attributed to the stage.
func (s *stageRunner) run(name string, body func() (string, error)) error {
	if err := s.ctx.Err(); err != nil {
		return &StageError{Stage: name, Err: err}
	}
	if s.opt.Observer != nil {
		s.opt.Observer.StageStart(name)
	}
	start := time.Now()
	out, err := body()
	d := time.Since(start)
	if s.opt.Observer != nil {
		s.opt.Observer.StageEnd(name, d, err)
	}
	if err != nil {
		var se *StageError
		if errors.As(err, &se) {
			return err // already attributed (nested stage)
		}
		return &StageError{Stage: name, Err: err}
	}
	if s.opt.Trace && out != "" {
		s.res.Trace = append(s.res.Trace, Stage{Module: name, Output: out, Duration: d})
	}
	return nil
}

// Translate runs the full pipeline on one NL question. The context
// bounds the whole translation, including user dialogues: cancellation
// or deadline expiry aborts between stages and inside interaction
// points, returning a *StageError that wraps ctx.Err(). When a plan
// cache is installed (Translator.Cache) and the request is
// non-interactive, the pipeline may be skipped entirely in favor of a
// cached same-shape translation.
func (t *Translator) Translate(ctx context.Context, question string, opt Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t.cacheable(opt) {
		return t.translateCached(ctx, question, opt)
	}
	return t.translate(ctx, question, opt)
}

// translate is the always-cold pipeline: the seven Figure-2 stages plus
// the optional backend emitter.
func (t *Translator) translate(ctx context.Context, question string, opt Options) (*Result, error) {
	res := &Result{Question: question, DataEpoch: t.dataEpoch()}
	st := &stageRunner{ctx: ctx, opt: opt, res: res}

	// Record the dialogue when tracing.
	interactor := opt.Interactor
	if interactor == nil {
		interactor = interact.Auto{}
	}
	var rec *interact.Recorder
	if opt.Trace {
		rec = &interact.Recorder{Inner: interactor}
		interactor = rec
	}
	collectDialogue := func() {
		if rec != nil {
			res.Interactions = rec.Transcript()
		}
	}

	// 1. Verification.
	if err := st.run(StageVerification, func() (string, error) {
		res.Verdict = verify.Check(question)
		if !res.Verdict.Supported {
			return fmt.Sprintf("unsupported (%s): %s", res.Verdict.Category, res.Verdict.Reason), nil
		}
		return "supported", nil
	}); err != nil {
		return nil, err
	}
	if !res.Verdict.Supported {
		collectDialogue()
		return res, nil
	}

	// 2. NL parsing (POS tags + dependency graph).
	if err := st.run(StageParser, func() (string, error) {
		g, err := nlp.Parse(question)
		if err != nil {
			return "", fmt.Errorf("parsing question: %w", err)
		}
		res.Graph = g
		return g.String(), nil
	}); err != nil {
		return nil, err
	}
	g := res.Graph

	// 3. IX detection: IXFinder + IXCreator.
	var ixs []*ix.IX
	if err := st.run(StageIXDetector, func() (string, error) {
		var err error
		ixs, err = t.Detector.Detect(ctx, g)
		if err != nil {
			return "", fmt.Errorf("detecting IXs: %w", err)
		}
		return renderIXs(g, ixs), nil
	}); err != nil {
		return nil, err
	}

	// 3b. Optional user verification of (uncertain) IXs (Figure 4).
	if err := st.run(StageIXVerify, func() (string, error) {
		var err error
		res.IXs, res.RejectedIXs, err = t.verifyIXs(ctx, question, g, ixs, interactor, opt.Policy)
		if err != nil {
			return "", err
		}
		if len(res.RejectedIXs) == 0 {
			return "", nil // nothing rejected: no trace entry, as before
		}
		return renderIXs(g, res.IXs) + "rejected:\n" + renderIXs(g, res.RejectedIXs), nil
	}); err != nil {
		collectDialogue()
		return nil, err
	}

	// 4. General Query Generator (FREyA role) on the full request.
	if err := st.run(StageGenerator, func() (string, error) {
		var err error
		res.General, err = t.Generator.Generate(ctx, g, qgen.Options{
			Interactor: interactor,
			Policy:     opt.Policy,
		})
		if err != nil {
			return "", fmt.Errorf("generating general query parts: %w", err)
		}
		return renderGeneral(res.General), nil
	}); err != nil {
		collectDialogue()
		return nil, err
	}

	// 5. Individual Triple Creation on the accepted IXs.
	if err := st.run(StageIndividual, func() (string, error) {
		var err error
		res.Parts, err = t.Creator.Create(ctx, g, res.IXs, res.General)
		if err != nil {
			return "", fmt.Errorf("creating individual triples: %w", err)
		}
		return renderParts(res.Parts), nil
	}); err != nil {
		collectDialogue()
		return nil, err
	}

	// 6. Query Composition (traced: decisions and per-triple origins
	// become the Result's provenance views).
	if err := st.run(StageComposer, func() (string, error) {
		out, err := t.Composer.ComposeTraced(ctx, compose.Input{
			Graph:      g,
			IXs:        res.IXs,
			General:    res.General,
			Parts:      res.Parts,
			Interactor: interactor,
			Policy:     opt.Policy,
		})
		if err != nil {
			return "", fmt.Errorf("composing query: %w", err)
		}
		res.Plan = out.Plan
		res.Query = out.Query
		res.ComposeDecisions = out.Decisions
		res.buildProvenance(out)
		res.PureGeneral = len(res.Query.Satisfying) == 0
		return res.Query.String(), nil
	}); err != nil {
		collectDialogue()
		return nil, err
	}

	// 7. Backend Emitter: render the logical plan into any extra
	// requested dialects. Skipped entirely when none are requested, so
	// the classic pipeline stays seven stages.
	if len(opt.Backends) > 0 {
		if err := st.run(StageEmitter, func() (string, error) {
			res.Renderings = make(map[string]*emit.Rendering, len(opt.Backends))
			var b strings.Builder
			for _, name := range opt.Backends {
				rend, err := emit.Emit(name, res.Plan)
				if err != nil {
					return "", fmt.Errorf("rendering backend %q: %w", name, err)
				}
				res.Renderings[name] = rend
				fmt.Fprintf(&b, "-- %s --\n%s\n", name, rend.Query)
				for _, n := range rend.Notes {
					fmt.Fprintf(&b, "note: %s\n", n)
				}
			}
			return b.String(), nil
		}); err != nil {
			collectDialogue()
			return nil, err
		}
	}
	collectDialogue()
	return res, nil
}

// Render returns the plan rendered in the named backend dialect,
// reusing a rendering already produced via Options.Backends when
// present. It fails with the backend's *emit.CapabilityError when the
// plan uses a feature the dialect cannot express.
func (r *Result) Render(backend string) (*emit.Rendering, error) {
	if rend, ok := r.Renderings[backend]; ok {
		return rend, nil
	}
	if r.Plan == nil {
		return nil, fmt.Errorf("nl2cm: no logical plan to render (unsupported or failed translation)")
	}
	return emit.Emit(backend, r.Plan)
}

// verifyIXs runs the Figure-4 dialogue: detected IXs are shown for
// confirmation. Depending on the policy, all IXs or only uncertain ones
// are asked about; with interaction disabled, all are accepted. An
// Interactor returning the wrong number of answers is an error, not a
// panic.
func (t *Translator) verifyIXs(ctx context.Context, question string, g *nlp.DepGraph, ixs []*ix.IX,
	interactor interact.Interactor, policy interact.Policy) (accepted, rejected []*ix.IX, err error) {
	if !policy.Asks(interact.PointIXVerification) || len(ixs) == 0 {
		return ixs, nil, nil
	}
	var toAsk []*ix.IX
	for _, x := range ixs {
		if policy.OnlyWhenUncertain && !x.Uncertain {
			accepted = append(accepted, x)
			continue
		}
		toAsk = append(toAsk, x)
	}
	if len(toAsk) == 0 {
		return accepted, nil, nil
	}
	spans := make([]interact.IXSpan, len(toAsk))
	for i, x := range toAsk {
		start, end := x.Span()
		bs := x.ByteSpan(g)
		spans[i] = interact.IXSpan{
			Text:      x.Text(g),
			Start:     start,
			End:       end,
			ByteStart: bs.Start,
			ByteEnd:   bs.End,
			Source:    x.SourceText(g),
			Type:      strings.Join(x.Types, "+"),
			Pattern:   patternNames(x),
			Uncertain: x.Uncertain,
		}
	}
	answers, err := interactor.VerifyIXs(ctx, question, spans)
	if err != nil {
		return nil, nil, fmt.Errorf("verifying IXs: %w", err)
	}
	if len(answers) != len(toAsk) {
		return nil, nil, fmt.Errorf("verifying IXs: interactor returned %d answers for %d spans", len(answers), len(toAsk))
	}
	for i, x := range toAsk {
		if answers[i] {
			accepted = append(accepted, x)
		} else {
			rejected = append(rejected, x)
		}
	}
	return accepted, rejected, nil
}

func patternNames(x *ix.IX) string {
	var names []string
	for _, p := range x.Patterns {
		names = append(names, p.Name)
	}
	return strings.Join(names, ",")
}

func renderIXs(g *nlp.DepGraph, ixs []*ix.IX) string {
	if len(ixs) == 0 {
		return "(none)\n"
	}
	var b strings.Builder
	for _, x := range ixs {
		fmt.Fprintf(&b, "IX %q type=%s uncertain=%v anchor=%q\n",
			x.Text(g), strings.Join(x.Types, "+"), x.Uncertain, g.Nodes[x.Anchor].Text)
	}
	return b.String()
}

func renderGeneral(r *qgen.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "target: $%s\n", r.TargetVar)
	for _, t := range r.Triples {
		fmt.Fprintf(&b, "%s .\n", oassisql.TripleString(t.Triple))
	}
	if len(r.Unmatched) > 0 {
		fmt.Fprintf(&b, "unmatched: %s\n", strings.Join(r.Unmatched, ", "))
	}
	return b.String()
}

func renderParts(parts []individual.Part) string {
	if len(parts) == 0 {
		return "(none)\n"
	}
	var b strings.Builder
	for i, p := range parts {
		fmt.Fprintf(&b, "part %d (%s):\n", i+1, p.Description)
		for _, t := range p.Triples {
			fmt.Fprintf(&b, "  %s %s %s .\n",
				oassisql.TermString(t.S), oassisql.TermString(t.P), oassisql.TermString(t.O))
		}
	}
	return b.String()
}
