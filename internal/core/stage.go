package core

import (
	"fmt"
	"time"
)

// Pipeline module names, in Figure-2 order. They identify stages in the
// admin trace (Stage.Module), in failure attribution (StageError.Stage)
// and in Observer callbacks, so the three views of one translation line
// up by name.
const (
	StageVerification = "Verification"
	StageParser       = "NL Parser"
	StageIXDetector   = "IX Detector"
	StageIXVerify     = "IX Verification"
	StageGenerator    = "General Query Generator"
	StageIndividual   = "Individual Triple Creation"
	StageComposer     = "Query Composition"
	// StageEmitter renders the composed logical plan into the requested
	// backend dialects (Options.Backends); it only runs when extra
	// renderings are requested.
	StageEmitter = "Backend Emitter"
	// StageCrowd is the execution side (the OASSIS engine substitute,
	// crowd.Engine): not a translation module, but it shares the
	// StageError / Observer vocabulary so execution failures and timings
	// are attributed the same way as pipeline ones.
	StageCrowd = "Crowd Execution"
	// StagePlanCache is the shape-keyed plan cache probe (and, on a hit,
	// the rebind) that may serve a translation without running the
	// pipeline; it only appears when Translator.Cache is installed.
	StagePlanCache = "Plan Cache"
	// StageQueue is the daemon's admission-control wait: time a request
	// spent queued for an execution slot before translation began. It is
	// recorded by cmd/nl2cmd, not by Translate.
	StageQueue = "Admission Queue"
)

// StageError attributes a pipeline failure to the module that raised it.
// It wraps the cause, so errors.Is/errors.As see through it (for example
// errors.Is(err, context.Canceled) after a cancelled translation), and
// errors.As(err, *StageError) recovers the stage name for traces and
// monitoring.
type StageError struct {
	// Stage is the pipeline module name (one of the Stage* constants).
	Stage string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *StageError) Error() string {
	return fmt.Sprintf("nl2cm: %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// Observer receives stage lifecycle callbacks during one translation:
// the seed of the observability layer (metrics, tracing, progress UIs).
// Callbacks run synchronously on the translating goroutine, in pipeline
// order; a shared Observer used across concurrent translations must be
// safe for concurrent use.
type Observer interface {
	// StageStart fires before the module runs.
	StageStart(stage string)
	// StageEnd fires after the module returns, with its wall-clock
	// duration and error (nil on success).
	StageEnd(stage string, d time.Duration, err error)
}

// ObserverFunc adapts a single end-of-stage callback to the Observer
// interface, for callers that only record timings.
type ObserverFunc func(stage string, d time.Duration, err error)

// StageStart implements Observer as a no-op.
func (ObserverFunc) StageStart(string) {}

// StageEnd implements Observer.
func (f ObserverFunc) StageEnd(stage string, d time.Duration, err error) { f(stage, d, err) }
