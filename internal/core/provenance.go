package core

import (
	"fmt"
	"sort"
	"strings"

	"nl2cm/internal/compose"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/prov"
	"nl2cm/internal/rdf"
	"nl2cm/internal/verify"
)

// buildProvenance fills the Result's provenance views from the traced
// composition output: the triple→spans→text map, the uncovered-token
// report, and its rephrasing tips.
func (r *Result) buildProvenance(out *compose.Output) {
	r.Provenance = map[string]prov.Record{}
	covered := prov.TokenSet{}
	add := func(clause string, sub int, t rdf.Triple, tokens prov.TokenSet) {
		covered = covered.Union(tokens)
		key := oassisql.TripleString(t)
		rec, seen := r.Provenance[key]
		if seen {
			// The same rendered triple in several places (e.g. two
			// subclauses): merge the token sets, keep the first location.
			rec.Tokens = rec.Tokens.Union(tokens)
		} else {
			rec = prov.Record{Triple: key, Clause: clause, Subclause: sub, Tokens: tokens}
		}
		spans := r.Graph.Spans(rec.Tokens)
		rec.Spans = prov.MergeSpans(r.Question, spans)
		rec.Text = prov.Excerpt(r.Question, spans)
		r.Provenance[key] = rec
	}
	for i, t := range out.Query.Where.Triples {
		add(oassisql.ClauseWhere, -1, t, out.WhereOrigins[i])
	}
	for si, sc := range out.Query.Satisfying {
		for i, t := range sc.Pattern.Triples {
			add(oassisql.ClauseSatisfying, si, t, out.SatisfyingOrigins[si][i])
		}
	}

	r.finishUncovered(covered)
}

// finishUncovered derives the uncovered-word report and its rephrasing
// tips from the set of tokens the emitted triples cover. It is shared by
// both provenance builders (traced composition and plan rebind).
func (r *Result) finishUncovered(covered prov.TokenSet) {
	// Tokens inside an accepted IX were understood even when no single
	// triple lists them (auxiliaries, particles).
	understood := covered
	for _, x := range r.IXs {
		understood = understood.Union(x.TokenSet())
	}
	// A detected counting quantifier ("how many", "the most") was
	// understood — it became the plan's analytic step, not a triple.
	if r.General != nil && r.General.Aggregate != nil && r.Plan != nil && r.Plan.Agg != nil {
		understood = understood.Union(prov.NewTokenSet(r.General.Aggregate.Origin...))
	}
	for id := range r.Graph.Nodes {
		n := &r.Graph.Nodes[id]
		if !isContentPOS(n.POS) || understood.Contains(id) {
			continue
		}
		r.Uncovered = append(r.Uncovered, prov.TokenInfo{ID: id, Span: n.Span(), Text: n.Text})
	}
	r.CoverageTips = verify.CoverageTips(r.Question, r.Uncovered)
}

// isContentPOS reports whether the tag marks a content word whose loss
// the uncovered report should flag: nouns, verbs, adjectives, adverbs
// and numbers.
func isContentPOS(pos string) bool {
	for _, p := range []string{"NN", "VB", "JJ", "RB", "CD"} {
		if strings.HasPrefix(pos, p) {
			return true
		}
	}
	return false
}

// AnnotatedQuery renders the final query with a source comment on every
// triple whose provenance is known:
//
//	{[] reach $x # from: "reach ... from Forest Hills"
//	}
//
// Comments are skipped by the OASSIS-QL lexer, so the output re-parses
// to the same query. An empty string is returned before composition.
func (r *Result) AnnotatedQuery() string {
	if r.Query == nil {
		return ""
	}
	p := oassisql.Printer{Annotate: func(clause string, sub, i int, t rdf.Triple) string {
		rec, seen := r.Provenance[oassisql.TripleString(t)]
		if !seen || rec.Text == "" {
			return ""
		}
		return fmt.Sprintf("from: %q", rec.Text)
	}}
	return p.Print(r.Query)
}

// ProvenanceRecords returns the provenance map as a slice ordered by
// query position (WHERE first, then subclauses in order), for stable
// display and JSON output.
func (r *Result) ProvenanceRecords() []prov.Record {
	out := make([]prov.Record, 0, len(r.Provenance))
	for _, rec := range r.Provenance {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Subclause != out[j].Subclause {
			return out[i].Subclause < out[j].Subclause
		}
		return out[i].Triple < out[j].Triple
	})
	return out
}
