package core

import (
	"context"
	"testing"

	"nl2cm/internal/ontology"
	"nl2cm/internal/qcache"
	"nl2cm/internal/rdf"
)

// TestDataEpochInvalidatesCachedPlans asserts the serving-epoch half of
// the cache contract: a store write batch publishes a new data epoch,
// after which a question whose shape is cached must be re-translated
// cold instead of served from the pre-write plan.
func TestDataEpochInvalidatesCachedPlans(t *testing.T) {
	onto := ontology.NewDemoOntology()
	tr := New(onto)
	tr.Cache = qcache.New(64)
	ctx := context.Background()
	const q = "Where do families eat near Delaware Park?"

	res1, err := tr.Translate(ctx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.CacheOutcome != "miss" {
		t.Fatalf("first translation outcome = %q, want miss", res1.CacheOutcome)
	}
	res2, err := tr.Translate(ctx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheOutcome != "hit" {
		t.Fatalf("repeat outcome = %q, want hit", res2.CacheOutcome)
	}
	if res2.DataEpoch != res1.DataEpoch {
		t.Fatalf("hit served under epoch %d, cached at %d", res2.DataEpoch, res1.DataEpoch)
	}

	// Any write batch moves the data epoch; the cached plan for this
	// shape must become unreachable even though feedback never changed.
	if _, _, _, err := onto.Store.Apply(rdf.Batch{Insert: []rdf.Triple{
		rdf.T(ontology.E("Epoch_Test_Entity"), ontology.PredLabel, rdf.NewLiteral("Epoch Test Entity")),
	}}); err != nil {
		t.Fatal(err)
	}
	res3, err := tr.Translate(ctx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.CacheOutcome != "miss" {
		t.Fatalf("post-write outcome = %q, want miss (data epoch must invalidate)", res3.CacheOutcome)
	}
	if res3.DataEpoch <= res2.DataEpoch {
		t.Fatalf("data epoch did not advance: %d then %d", res2.DataEpoch, res3.DataEpoch)
	}
}

// TestDeletedEntityNeverResurrectedFromCache caches a plan whose shape
// slot binds an entity, deletes that entity's label in a newer epoch,
// and asserts no cache-served path re-binds to the dead term: the
// follow-up translation runs cold against the new epoch, where the
// phrase no longer resolves to the deleted entity.
func TestDeletedEntityNeverResurrectedFromCache(t *testing.T) {
	onto := ontology.NewDemoOntology()
	tr := New(onto)
	tr.Cache = qcache.New(64)
	ctx := context.Background()
	park := ontology.E("Delaware_Park")
	const q = "Which restaurants are near Delaware Park?"

	res1, err := tr.Translate(ctx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.CacheOutcome != "miss" {
		t.Fatalf("first translation outcome = %q, want miss", res1.CacheOutcome)
	}
	refersTo := func(res *Result, term rdf.Term) bool {
		if res.Plan == nil {
			return false
		}
		for _, p := range res.Plan.Where {
			if p.Triple.S.Equal(term) || p.Triple.O.Equal(term) {
				return true
			}
		}
		return false
	}
	if !refersTo(res1, park) {
		t.Skipf("fixture drift: plan does not bind %v", park)
	}

	if _, removed, _, err := onto.Store.Apply(rdf.Batch{Delete: []rdf.Triple{
		rdf.T(park, ontology.PredLabel, rdf.NewLiteral("Delaware Park")),
	}}); err != nil || removed != 1 {
		t.Fatalf("Apply delete = %d, %v", removed, err)
	}

	res2, err := tr.Translate(ctx, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheOutcome == "hit" || res2.CacheOutcome == "rebound" {
		t.Fatalf("outcome = %q after entity deletion, want a cold path", res2.CacheOutcome)
	}
	if refersTo(res2, park) {
		t.Fatalf("deleted entity %v resurrected in post-delete plan", park)
	}
}
