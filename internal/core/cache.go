package core

import (
	"context"
	"fmt"
	"time"

	"nl2cm/internal/emit"
	"nl2cm/internal/nlp"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/prov"
	"nl2cm/internal/qcache"
	"nl2cm/internal/rdf"
)

// cacheEntry is what one translation leaves in the plan cache: the full
// cold result plus the entity bindings its question's shape slots held,
// so a later same-shape question can be served by substituting its own
// entities into a clone of the cached plan.
type cacheEntry struct {
	res      *Result
	entities []qcache.Binding
}

// cacheable reports whether this request may be served from (and fill)
// the plan cache: only non-interactive translations qualify, because a
// dialogue's answers are request-specific state no other request may
// inherit. Interactive sessions therefore bypass the cache entirely.
func (t *Translator) cacheable(opt Options) bool {
	return t.Cache != nil && opt.Interactor == nil && len(opt.Policy.Ask) == 0
}

// epoch returns the feedback cache epoch: the feedback store's version,
// so any recorded disambiguation feedback (which can re-rank entity
// candidates and change a translation) makes every previously cached
// plan unreachable.
func (t *Translator) epoch() uint64 {
	if t.Generator == nil || t.Generator.Feedback == nil {
		return 0
	}
	return t.Generator.Feedback.Version()
}

// dataEpoch returns the knowledge-base epoch: the store snapshot's
// publication counter. Every write batch publishes a new epoch, so
// cached plans are invalidated by data changes exactly as by feedback
// changes — a rebind-served hit can never resurrect an entity deleted
// in a newer epoch.
func (t *Translator) dataEpoch() uint64 {
	if t.Onto == nil {
		return 0
	}
	return t.Onto.Epoch()
}

// translateCached serves one translation through the plan cache:
// canonicalize the question to its shape, probe the cache (single-flight
// on misses), and on a hit either reuse the cached result (exact
// question) or rehydrate it by re-binding entity slots. Cold paths run
// the full pipeline and leave their result behind for the next
// same-shape question.
func (t *Translator) translateCached(ctx context.Context, question string, opt Options) (*Result, error) {
	start := time.Now()
	if opt.Observer != nil {
		opt.Observer.StageStart(StagePlanCache)
	}
	endObs := func(err error) {
		if opt.Observer != nil {
			opt.Observer.StageEnd(StagePlanCache, time.Since(start), err)
		}
	}

	shape := qcache.Canonicalize(question, t.Onto)
	key := qcache.Key{
		Shape:     shape.Key,
		Backends:  qcache.BackendKey(opt.Backends),
		Epoch:     t.epoch(),
		DataEpoch: t.dataEpoch(),
	}
	v, flight, outcome := t.Cache.Lookup(key)

	switch outcome {
	case qcache.Wait:
		// Someone else is translating this shape right now; share their
		// work. Their failure is not ours (it may be their request's
		// cancellation), so on error fall back to a cold translation —
		// unless our own context is done too.
		wv, err := flight.Wait(ctx)
		if err == nil {
			v = wv
			break
		}
		if ctx.Err() != nil {
			endObs(ctx.Err())
			return nil, &StageError{Stage: StagePlanCache, Err: ctx.Err()}
		}
		endObs(nil)
		return t.translate(ctx, question, opt)

	case qcache.Miss:
		// We own the fill. Close the cache stage first so the pipeline's
		// stage timings are attributed to the pipeline, then run cold and
		// publish the result for waiters and future requests.
		endObs(nil)
		probe := time.Since(start)
		res, err := t.translate(ctx, question, opt)
		if err != nil {
			flight.Fail(err)
			return nil, err
		}
		// Mutations must land before Fulfill publishes res to waiters.
		res.CacheOutcome = "miss"
		if opt.Trace {
			res.Trace = append(res.Trace, Stage{
				Module:   StagePlanCache,
				Output:   fmt.Sprintf("miss — cached under shape %q, data epoch %d", shape.Key, key.DataEpoch),
				Duration: probe,
			})
		}
		flight.Fulfill(&cacheEntry{res: res, entities: shape.Entities})
		return res, nil
	}

	// Hit (direct, or via a completed flight).
	entry, ok := v.(*cacheEntry)
	if !ok {
		endObs(nil)
		return t.translate(ctx, question, opt)
	}
	if res, served := t.serveHit(question, shape, entry, opt, start); served {
		endObs(nil)
		return res, nil
	}
	// Same shape but not rebindable (filtered plan, unsupported verdict,
	// parse hiccup): translate cold. The shape entry stays — exact
	// repeats of either question still hit.
	endObs(nil)
	return t.translate(ctx, question, opt)
}

// serveHit builds a Result for the question from a cached entry. An
// exact question repeat reuses the cached result wholesale; a same-shape
// question with different entities gets a cloned, re-bound plan with
// re-derived renderings and provenance.
func (t *Translator) serveHit(question string, shape qcache.Shape, entry *cacheEntry, opt Options, start time.Time) (*Result, bool) {
	old := entry.res
	if old.Question == question {
		res := *old
		res.CacheOutcome = "hit"
		if opt.Trace {
			res.Trace = []Stage{{
				Module:   StagePlanCache,
				Output:   fmt.Sprintf("hit (exact) — shape %q, data epoch %d", shape.Key, old.DataEpoch),
				Duration: time.Since(start),
			}}
		} else {
			res.Trace = nil
		}
		return &res, true
	}

	// Re-binding is only sound when every entity mention resolved
	// unambiguously (guaranteed by shape equality) and no filter could
	// mention a substituted term.
	if old.Plan == nil || !old.Verdict.Supported {
		return nil, false
	}
	if len(old.Plan.Filters) > 0 {
		return nil, false
	}
	for _, cc := range old.Plan.Crowd {
		if len(cc.Filters) > 0 {
			return nil, false
		}
	}
	if len(shape.Entities) != len(entry.entities) {
		return nil, false
	}
	g, err := nlp.Parse(question)
	if err != nil {
		return nil, false
	}

	sub := make(map[rdf.Term]rdf.Term, len(shape.Entities))
	for i := range shape.Entities {
		sub[entry.entities[i].Term] = shape.Entities[i].Term
	}
	plan := old.Plan.Clone()
	plan.Question = question
	plan.Rebind(sub)
	// Shape equality guarantees identical token structure, so the cached
	// token sets index the fresh parse correctly; only the byte-level
	// views (source excerpts) need recomputing.
	rebindSources(plan, g)

	res := &Result{
		Question:         question,
		DataEpoch:        old.DataEpoch,
		Verdict:          old.Verdict,
		Graph:            g,
		IXs:              old.IXs,
		RejectedIXs:      old.RejectedIXs,
		General:          old.General,
		Parts:            old.Parts,
		Plan:             plan,
		Query:            emit.OassisQuery(plan),
		ComposeDecisions: old.ComposeDecisions,
	}
	res.PureGeneral = len(res.Query.Satisfying) == 0
	if len(opt.Backends) > 0 {
		res.Renderings = make(map[string]*emit.Rendering, len(opt.Backends))
		for _, name := range opt.Backends {
			rend, err := emit.Emit(name, plan)
			if err != nil {
				return nil, false
			}
			res.Renderings[name] = rend
		}
	}
	res.buildProvenanceFromPlan()
	res.CacheOutcome = "rebound"
	if opt.Trace {
		res.Trace = []Stage{{
			Module: StagePlanCache,
			Output: fmt.Sprintf("hit (rebound %d entity slot(s)) — shape %q, data epoch %d, from %q",
				len(sub), shape.Key, old.DataEpoch, old.Question),
			Duration: time.Since(start),
		}}
	}
	t.Cache.NoteRebind()
	return res, true
}

// rebindSources recomputes every pattern's source excerpt against the
// new question's parse.
func rebindSources(p *emit.Plan, g *nlp.DepGraph) {
	fix := func(pats []emit.Pattern) {
		for i := range pats {
			if len(pats[i].Tokens) > 0 {
				pats[i].Source = g.Excerpt(pats[i].Tokens)
			}
		}
	}
	fix(p.Where)
	for i := range p.Crowd {
		fix(p.Crowd[i].Patterns)
	}
}

// buildProvenanceFromPlan rebuilds the Result's provenance views from
// the plan's own pattern token sets — the rebind-path counterpart of
// buildProvenance, which works from the traced composition output.
func (r *Result) buildProvenanceFromPlan() {
	r.Provenance = map[string]prov.Record{}
	covered := prov.TokenSet{}
	add := func(clause string, sub int, pat emit.Pattern) {
		covered = covered.Union(pat.Tokens)
		key := oassisql.TripleString(pat.Triple)
		rec, seen := r.Provenance[key]
		if seen {
			rec.Tokens = rec.Tokens.Union(pat.Tokens)
		} else {
			rec = prov.Record{Triple: key, Clause: clause, Subclause: sub, Tokens: pat.Tokens}
		}
		spans := r.Graph.Spans(rec.Tokens)
		rec.Spans = prov.MergeSpans(r.Question, spans)
		rec.Text = prov.Excerpt(r.Question, spans)
		r.Provenance[key] = rec
	}
	for _, pat := range r.Plan.Where {
		add(oassisql.ClauseWhere, -1, pat)
	}
	for si, cc := range r.Plan.Crowd {
		for _, pat := range cc.Patterns {
			add(oassisql.ClauseSatisfying, si, pat)
		}
	}
	r.finishUncovered(covered)
}
