package core

import (
	"context"
	"strings"
	"testing"

	"nl2cm/internal/interact"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
)

const runningExample = "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?"

// figure1 is the paper's Figure 1 target text.
const figure1 = `SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1`

func newTranslator() *Translator { return New(ontology.NewDemoOntology()) }

func TestTranslateFigure1Exact(t *testing.T) {
	res, err := newTranslator().Translate(context.Background(), runningExample, Options{})
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if got := res.Query.String(); got != figure1 {
		t.Errorf("translation does not reproduce Figure 1:\n--- got ---\n%s\n--- want ---\n%s", got, figure1)
	}
}

// TestTranslateBackends threads extra backend dialects through Options
// and checks the emitter stage fills Result.Renderings, that the plan is
// exposed, and that Render reuses/produces renderings on demand.
func TestTranslateBackends(t *testing.T) {
	res, err := newTranslator().Translate(context.Background(), runningExample,
		Options{Backends: []string{"sql", "mongodb"}, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("Result.Plan not set")
	}
	if len(res.Plan.Where) == 0 || len(res.Plan.Crowd) == 0 {
		t.Errorf("plan missing parts: %d where, %d crowd", len(res.Plan.Where), len(res.Plan.Crowd))
	}
	for _, name := range []string{"sql", "mongodb"} {
		rend := res.Renderings[name]
		if rend == nil {
			t.Fatalf("no rendering for %q", name)
		}
		if rend.Query == "" || len(rend.Clauses) == 0 {
			t.Errorf("%s rendering empty or without clause provenance: %+v", name, rend)
		}
	}
	// The trace gained the emitter stage.
	last := res.Trace[len(res.Trace)-1]
	if last.Module != StageEmitter || !strings.Contains(last.Output, "-- sql --") {
		t.Errorf("last trace stage = %s:\n%s", last.Module, last.Output)
	}
	// On-demand rendering for a backend not requested up front.
	rend, err := res.Render("cypher")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rend.Query, "MATCH") {
		t.Errorf("cypher rendering = %q", rend.Query)
	}
	// A cached rendering is returned as-is.
	if again, err := res.Render("sql"); err != nil || again != res.Renderings["sql"] {
		t.Errorf("Render did not reuse the cached sql rendering (err=%v)", err)
	}
}

// TestTranslateUnknownBackend attributes an unknown backend name to the
// emitter stage.
func TestTranslateUnknownBackend(t *testing.T) {
	_, err := newTranslator().Translate(context.Background(), runningExample,
		Options{Backends: []string{"oracle"}})
	if err == nil || !strings.Contains(err.Error(), StageEmitter) {
		t.Fatalf("err = %v, want %s failure", err, StageEmitter)
	}
}

func TestTranslateUnsupported(t *testing.T) {
	res, err := newTranslator().Translate(context.Background(), "How should I store coffee?", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Supported {
		t.Fatal("descriptive question accepted")
	}
	if res.Query != nil {
		t.Error("unsupported question produced a query")
	}
	if len(res.Verdict.Tips) == 0 {
		t.Error("no rephrasing tips")
	}
}

func TestTranslatePureGeneral(t *testing.T) {
	res, err := newTranslator().Translate(context.Background(), "Which parks are in Buffalo?", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PureGeneral {
		t.Errorf("PureGeneral = false; query:\n%s", res.Query)
	}
	if len(res.Query.Where.Triples) == 0 {
		t.Error("pure general query has empty WHERE")
	}
}

func TestTranslateTraceStages(t *testing.T) {
	res, err := newTranslator().Translate(context.Background(), runningExample, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var stages []string
	for _, s := range res.Trace {
		stages = append(stages, s.Module)
	}
	// The admin monitor shows the pipeline of Figure 2 in order.
	want := []string{"Verification", "NL Parser", "IX Detector",
		"General Query Generator", "Individual Triple Creation", "Query Composition"}
	if len(stages) != len(want) {
		t.Fatalf("trace stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("trace stages = %v, want %v", stages, want)
		}
	}
	for _, s := range res.Trace {
		if s.Output == "" {
			t.Errorf("stage %s has empty output", s.Module)
		}
	}
}

func TestTranslateNoTraceByDefault(t *testing.T) {
	res, err := newTranslator().Translate(context.Background(), runningExample, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 {
		t.Errorf("trace collected without Trace option: %d stages", len(res.Trace))
	}
}

func TestTranslateIXVerificationRejectsSpan(t *testing.T) {
	// The user rejects the lexical IX ("interesting" is not to be asked
	// to the crowd); only the habit subclause remains.
	opt := Options{
		Interactor: &interact.Scripted{IXAnswers: [][]bool{{false, true}}},
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointIXVerification: true}},
	}
	res, err := newTranslator().Translate(context.Background(), runningExample, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IXs) != 1 || len(res.RejectedIXs) != 1 {
		t.Fatalf("accepted %d rejected %d, want 1/1", len(res.IXs), len(res.RejectedIXs))
	}
	if len(res.Query.Satisfying) != 1 {
		t.Fatalf("subclauses = %d, want 1:\n%s", len(res.Query.Satisfying), res.Query)
	}
	if strings.Contains(res.Query.String(), "interesting") {
		t.Errorf("rejected IX still in query:\n%s", res.Query)
	}
}

func TestTranslateOnlyUncertainAsked(t *testing.T) {
	// With OnlyWhenUncertain, only the lexical (uncertain) IX is shown;
	// a single-flag answer must match.
	opt := Options{
		Interactor: &interact.Scripted{IXAnswers: [][]bool{{true}}},
		Policy: interact.Policy{
			Ask:               map[interact.Point]bool{interact.PointIXVerification: true},
			OnlyWhenUncertain: true,
		},
	}
	res, err := newTranslator().Translate(context.Background(), runningExample, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IXs) != 2 {
		t.Fatalf("accepted %d IXs, want 2", len(res.IXs))
	}
}

func TestTranslateFullInteraction(t *testing.T) {
	// A volunteer-user script covering all four interaction points
	// (Figures 3-6): accept both IXs, set k=3 and threshold 0.2.
	opt := Options{
		Interactor: &interact.Scripted{
			IXAnswers:        [][]bool{{true, true}},
			TopKAnswers:      []int{3},
			ThresholdAnswers: []float64{0.2},
		},
		Policy: interact.Interactive(),
		Trace:  true,
	}
	res, err := newTranslator().Translate(context.Background(), runningExample, opt)
	if err != nil {
		t.Fatal(err)
	}
	q := res.Query.String()
	if !strings.Contains(q, "LIMIT 3") {
		t.Errorf("user k not applied:\n%s", q)
	}
	if !strings.Contains(q, "THRESHOLD = 0.2") {
		t.Errorf("user threshold not applied:\n%s", q)
	}
	if len(res.Interactions) == 0 {
		t.Error("no interaction transcript recorded")
	}
}

func TestTranslateDialogueTranscript(t *testing.T) {
	opt := Options{
		Interactor: &interact.Scripted{},
		Policy:     interact.Interactive(),
		Trace:      true,
	}
	res, err := newTranslator().Translate(context.Background(), runningExample, opt)
	if err != nil {
		t.Fatal(err)
	}
	points := map[interact.Point]bool{}
	for _, ex := range res.Interactions {
		points[ex.Point] = true
	}
	for _, want := range []interact.Point{
		interact.PointIXVerification, interact.PointSignificance, interact.PointProjection,
	} {
		if !points[want] {
			t.Errorf("no transcript entry for %v", want)
		}
	}
}

func TestTranslateFeedbackPersistsAcrossQuestions(t *testing.T) {
	tr := newTranslator()
	// First question: the user picks Buffalo, IL explicitly.
	opt := Options{
		Interactor: &interact.Scripted{DisambiguationAnswers: []int{1}},
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointDisambiguation: true}},
	}
	res1, err := tr.Translate(context.Background(), "Where do you visit in Buffalo?", opt)
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for _, tr := range res1.Query.Satisfying[0].Pattern.Triples {
		if strings.HasPrefix(tr.O.Local(), "Buffalo,_") {
			first = tr.O.Local()
		}
	}
	if first == "Buffalo,_NY" || first == "" {
		t.Fatalf("scripted answer ignored: %q", first)
	}
	// The feedback store now knows the preference.
	if tr.Generator.Feedback.Boost("Buffalo", ontology.E(first)) == 0 {
		t.Error("feedback not recorded through the pipeline")
	}
}

func TestTranslateErrorsPropagate(t *testing.T) {
	opt := Options{
		Interactor: &interact.Scripted{IXAnswers: [][]bool{{true}}}, // wrong shape: 2 spans
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointIXVerification: true}},
	}
	if _, err := newTranslator().Translate(context.Background(), runningExample, opt); err == nil {
		t.Error("shape-mismatched script accepted")
	}
}

func TestTranslateDemoQuestions(t *testing.T) {
	// The paper's named demo questions all translate non-interactively.
	tr := newTranslator()
	for _, q := range []string{
		"Which hotel in Vegas has the best thrill ride?",
		"What type of digital camera should I buy?",
		"Is chocolate milk good for kids?",
	} {
		res, err := tr.Translate(context.Background(), q, Options{})
		if err != nil {
			t.Errorf("Translate(%q): %v", q, err)
			continue
		}
		if !res.Verdict.Supported {
			t.Errorf("Translate(%q) rejected: %s", q, res.Verdict.Reason)
			continue
		}
		if len(res.Query.Satisfying) == 0 {
			t.Errorf("Translate(%q) produced no individual parts:\n%s", q, res.Query)
		}
	}
}

// The paper's §4.1 projection variation: "What are the most interesting
// places we should visit with a tour guide?" — the user can drop the
// guide variable from the output.
func TestTranslateTourGuideProjection(t *testing.T) {
	question := "What are the most interesting places we should visit with a tour guide?"
	// First, default: both variables returned (SELECT VARIABLES).
	res, err := newTranslator().Translate(context.Background(), question, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Query.Select.All {
		t.Fatalf("default SELECT = %+v", res.Query.Select)
	}
	vars := res.Query.Vars()
	if len(vars) != 2 {
		t.Fatalf("query vars = %v, want places + guide", vars)
	}
	// Now the user keeps only the first variable (the places).
	opt := Options{
		Interactor: &interact.Scripted{ProjectionAnswers: [][]bool{{true, false}}},
		Policy:     interact.Policy{Ask: map[interact.Point]bool{interact.PointProjection: true}},
	}
	res2, err := newTranslator().Translate(context.Background(), question, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Query.Select.All || len(res2.Query.Select.Vars) != 1 {
		t.Fatalf("projected SELECT = %+v", res2.Query.Select)
	}
	if res2.Query.Select.Vars[0] != "x" {
		t.Errorf("kept variable = %v, want x", res2.Query.Select.Vars)
	}
	if !strings.HasPrefix(res2.Query.String(), "SELECT $x\n") {
		t.Errorf("query:\n%s", res2.Query)
	}
}

// Pipeline fuzz: random word salads from the question vocabulary must
// never panic, and every produced query must validate and re-parse.
func TestTranslateFuzzRobustness(t *testing.T) {
	vocab := []string{
		"what", "which", "where", "should", "we", "you", "the", "a", "an",
		"most", "interesting", "good", "best", "places", "hotel", "hotels",
		"visit", "eat", "buy", "in", "near", "with", "and", "not", "to",
		"Buffalo", "Vegas", "fall", "kids", "people", "that", "of", "type",
		"camera", "for", "is", "are", "do", "how", "why", "?", ",", ".",
	}
	tr := newTranslator()
	rng := uint64(12345)
	next := func(n int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % n
	}
	for trial := 0; trial < 400; trial++ {
		length := 1 + next(14)
		words := make([]string, length)
		for i := range words {
			words[i] = vocab[next(len(vocab))]
		}
		q := strings.Join(words, " ")
		res, err := tr.Translate(context.Background(), q, Options{})
		if err != nil {
			// Errors are acceptable; panics and invalid output are not.
			continue
		}
		if !res.Verdict.Supported || res.Query == nil {
			continue
		}
		if len(res.Query.Satisfying) > 0 {
			if err := res.Query.Validate(); err != nil {
				t.Fatalf("invalid query for %q: %v\n%s", q, err, res.Query)
			}
		}
		reparsed, err := oassisql.Parse(res.Query.String())
		if err != nil && len(res.Query.Satisfying) > 0 {
			t.Fatalf("unparseable query for %q: %v\n%s", q, err, res.Query)
		}
		_ = reparsed
	}
}
