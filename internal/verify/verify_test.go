package verify

import (
	"strings"
	"testing"

	"nl2cm/internal/prov"
)

func TestSupportedQuestions(t *testing.T) {
	supported := []string{
		"What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?",
		"Which hotel in Vegas has the best thrill ride?",
		"What type of digital camera should I buy?",
		"Is chocolate milk good for kids?",
		"Where do you visit in Buffalo?",
		"At what container should I store coffee?", // the paper's rephrasing
		"How often do you exercise?",               // frequency maps to support
		"Obama should visit Buffalo.",
		"Which parks are in Buffalo?",
		"Recommend a good restaurant near the hotel.",
		"How many parks are in Buffalo?",       // counting translates to COUNT
		"Which city has the most attractions?", // counting superlative
		"How many cameras does Canon sell?",
	}
	for _, q := range supported {
		if v := Check(q); !v.Supported {
			t.Errorf("Check(%q) unsupported (%s: %s), want supported", q, v.Category, v.Reason)
		}
	}
}

func TestUnsupportedQuestions(t *testing.T) {
	cases := []struct {
		q   string
		cat Category
	}{
		{"How should I store coffee?", CatDescriptive}, // the paper's example
		{"How to make good coffee?", CatDescriptive},
		{"How do I get to the airport?", CatDescriptive},
		{"How come the hotel is closed?", CatCausal},
		{"Why is the sky blue?", CatCausal},
		{"Why...?", CatCausal},
		{"For what purpose do people travel?", CatCausal},
		{"For what reason is it closed?", CatCausal},
		{"What is the reason people like Buffalo?", CatCausal},
		{"What is the way to cook rice?", CatCausal},
		{"How much does the hotel cost?", CatAggregate},
		{"How much money should I bring?", CatAggregate},
		{"Explain the rules of chess.", CatDescriptive},
		{"", CatEmpty},
		{"   ", CatEmpty},
		{"?!?", CatEmpty},
		{"Where should we eat? And what should we order?", CatMultiple},
	}
	for _, c := range cases {
		v := Check(c.q)
		if v.Supported {
			t.Errorf("Check(%q) supported, want unsupported (%s)", c.q, c.cat)
			continue
		}
		if v.Category != c.cat {
			t.Errorf("Check(%q) category = %s, want %s", c.q, v.Category, c.cat)
		}
		if v.Reason == "" {
			t.Errorf("Check(%q) has empty reason", c.q)
		}
	}
}

// Every rejection must come with rephrasing tips, as the demo's third
// stage shows ("tips on how to rephrase the question").
func TestRejectionsCarryTips(t *testing.T) {
	for _, q := range []string{
		"How should I store coffee?",
		"Why is the sky blue?",
		"How much does the hotel cost?",
		"",
	} {
		v := Check(q)
		if v.Supported {
			t.Fatalf("Check(%q) supported", q)
		}
		if len(v.Tips) == 0 {
			t.Errorf("Check(%q) has no tips", q)
		}
	}
}

// The paper's coffee pair: the "How" form is rejected with a tip pointing
// at the "At what container" form, which is accepted.
func TestPaperCoffeePair(t *testing.T) {
	rejected := Check("How should I store coffee?")
	if rejected.Supported {
		t.Fatal("descriptive coffee question accepted")
	}
	tipText := strings.Join(rejected.Tips, " ")
	if !strings.Contains(tipText, "At what container should I store coffee?") {
		t.Errorf("tips do not suggest the paper's rephrasing: %v", rejected.Tips)
	}
	if v := Check("At what container should I store coffee?"); !v.Supported {
		t.Errorf("rephrased coffee question rejected: %s", v.Reason)
	}
}

// Rejections caused by a specific phrase must cite its byte span and
// quote the exact source text in a tip.
func TestRejectionsCiteSpans(t *testing.T) {
	cases := []struct {
		q    string
		want string // exact offending phrase, as typed
	}{
		{"How should I store coffee?", "How"},
		{"How to make good coffee?", "How to"},
		{"  Why is the sky blue?", "Why"},
		{"How much does the hotel cost?", "How much"},
		{"For what purpose do people travel?", "For what purpose"},
		{"What is the reason people like Buffalo?", "What is the reason"},
		{"EXPLAIN the rules of chess.", "EXPLAIN"},
	}
	for _, c := range cases {
		v := Check(c.q)
		if v.Supported {
			t.Errorf("Check(%q) supported", c.q)
			continue
		}
		if v.Offending != c.want {
			t.Errorf("Check(%q).Offending = %q, want %q", c.q, v.Offending, c.want)
		}
		if got := v.Span.Text(c.q); got != c.want {
			t.Errorf("Check(%q).Span = [%d,%d) covers %q, want %q", c.q, v.Span.Start, v.Span.End, got, c.want)
		}
		var quoted bool
		for _, tip := range v.Tips {
			if strings.Contains(tip, "\""+c.want+"\"") {
				quoted = true
			}
		}
		if !quoted {
			t.Errorf("Check(%q) tips do not quote %q: %v", c.q, c.want, v.Tips)
		}
		if !strings.Contains(v.Reason, c.want) {
			t.Errorf("Check(%q) reason does not cite the phrase: %q", c.q, v.Reason)
		}
	}
}

func TestCoverageTips(t *testing.T) {
	q := "Where should we eat pancakes?"
	tips := CoverageTips(q, []prov.TokenInfo{
		{ID: 4, Span: prov.Span{Start: 20, End: 28}, Text: "pancakes"},
	})
	if len(tips) != 1 {
		t.Fatalf("CoverageTips = %v, want one tip", tips)
	}
	if !strings.Contains(tips[0], "\"pancakes\"") || !strings.Contains(tips[0], "20") {
		t.Errorf("tip does not quote the uncovered word with its span: %q", tips[0])
	}
	if got := CoverageTips(q, nil); got != nil {
		t.Errorf("CoverageTips(no uncovered) = %v, want nil", got)
	}
}

func TestCaseInsensitive(t *testing.T) {
	if v := Check("HOW TO STORE COFFEE?"); v.Supported {
		t.Error("upper-case descriptive question accepted")
	}
	if v := Check("why is it so?"); v.Supported {
		t.Error("lower-case why question accepted")
	}
}
