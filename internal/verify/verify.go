// Package verify implements NL2CM's input verification step (paper §3):
// before parsing, the question is checked for forms the system does not
// support — chiefly descriptive questions ("How to…?", "Why…?", "For what
// purpose…?"), whose answer semantics OASSIS-QL cannot express. Detected
// unsupported questions produce a warning with rephrasing tips, as in the
// demonstration's third stage ("How should I store coffee?" is rejected
// with the tip to ask "At what container should I store coffee?"). Each
// rejection cites the offending phrase's byte span and quotes it in the
// rephrasing tip.
package verify

import (
	"fmt"
	"strings"
	"unicode"

	"nl2cm/internal/prov"
)

// Category classifies why a question is unsupported.
type Category string

// Unsupported-question categories.
const (
	CatOK          Category = ""
	CatEmpty       Category = "empty"
	CatDescriptive Category = "descriptive" // how-to / manner
	CatCausal      Category = "causal"      // why / purpose / reason
	CatAggregate   Category = "aggregate"   // how much (mass quantity; "how many" counts are supported)
	CatMultiple    Category = "multiple"    // several questions at once
)

// Verdict is the verification outcome.
type Verdict struct {
	// Supported reports whether translation may proceed.
	Supported bool
	// Category explains the rejection.
	Category Category
	// Reason is a user-facing explanation.
	Reason string
	// Tips suggest how to rephrase the question.
	Tips []string
	// Offending quotes the phrase that triggered the rejection, exactly
	// as it appears in the question; empty when no single phrase is to
	// blame (empty or multi-question requests).
	Offending string
	// Span is the offending phrase's byte range in the question.
	Span prov.Span
}

// ok is the accepting verdict.
var ok = Verdict{Supported: true}

// word is a question word with its byte span in the original input.
type word struct {
	text       string // lower-cased
	start, end int
}

// Check verifies one NL question or request.
func Check(question string) Verdict {
	trimmed := strings.TrimSpace(question)
	if !hasLetters(trimmed) {
		return Verdict{
			Category: CatEmpty,
			Reason:   "the request contains no question text",
			Tips:     []string{"Type a question or request, e.g. \"What are the best places to visit in Buffalo?\""},
		}
	}
	// Multiple sentences that are each questions.
	if countQuestions(trimmed) > 1 {
		return Verdict{
			Category: CatMultiple,
			Reason:   "the request contains several questions",
			Tips:     []string{"Ask one question at a time; you can submit the next question afterwards."},
		}
	}
	words := fields(question)
	if len(words) == 0 {
		return Verdict{Category: CatEmpty, Reason: "the request contains no words"}
	}
	first := words[0].text
	second := ""
	if len(words) > 1 {
		second = words[1].text
	}
	switch first {
	case "why":
		return causalVerdict("\"Why...\" questions ask for explanations", cite(question, words[:1]))
	case "how":
		switch second {
		case "to":
			return descriptiveVerdict("\"How to...\" questions ask for descriptions of procedures", cite(question, words[:2]))
		case "many":
			// Counting questions translate to a COUNT aggregate over the
			// general selection.
			return ok
		case "much":
			c := cite(question, words[:2])
			return Verdict{
				Category:  CatAggregate,
				Reason:    fmt.Sprintf("mass-quantity questions (%q at bytes %d–%d) are not supported: they sum an unstated measure, which neither the ontology nor the crowd model records", c.text, c.span.Start, c.span.End),
				Offending: c.text,
				Span:      c.span,
				Tips: []string{
					fmt.Sprintf("Name the measure instead of %q: ask \"What does the hotel cost per night?\" instead of \"How much does the hotel cost?\"", c.text),
					"Countable things can be counted directly: \"How many parks are in Buffalo?\" is supported.",
				},
			}
		case "often", "frequently":
			// Frequency questions map directly to support thresholds.
			return ok
		case "come":
			return causalVerdict("\"How come...\" questions ask for explanations", cite(question, words[:2]))
		default:
			return descriptiveVerdict("\"How...\" questions ask for manners or procedures", cite(question, words[:1]))
		}
	case "for":
		if second == "what" && len(words) > 2 && (words[2].text == "purpose" || words[2].text == "reason") {
			return causalVerdict("\"For what purpose...\" questions ask for explanations", cite(question, words[:3]))
		}
	case "what":
		// "What is the reason/way/purpose ..."
		var lowered []string
		for _, w := range words {
			lowered = append(lowered, w.text)
		}
		rest := strings.Join(lowered, " ")
		for _, bad := range []string{"what is the reason", "what is the purpose", "what is the way", "what's the reason", "what's the way"} {
			if strings.HasPrefix(rest, bad) {
				n := len(strings.Fields(bad))
				return causalVerdict("questions about reasons, purposes or ways ask for explanations", cite(question, words[:n]))
			}
		}
	case "explain", "describe":
		return descriptiveVerdict("requests for explanations or descriptions", cite(question, words[:1]))
	}
	return ok
}

// citation pairs an offending phrase with its byte span.
type citation struct {
	text string
	span prov.Span
}

// cite quotes the given words from the original question.
func cite(question string, ws []word) citation {
	if len(ws) == 0 {
		return citation{}
	}
	span := prov.Span{Start: ws[0].start, End: ws[len(ws)-1].end}
	return citation{text: span.Text(question), span: span}
}

func descriptiveVerdict(what string, c citation) Verdict {
	return Verdict{
		Category:  CatDescriptive,
		Reason:    fmt.Sprintf("%s, which OASSIS-QL queries cannot express (offending phrase %q at bytes %d–%d)", what, c.text, c.span.Start, c.span.End),
		Offending: c.text,
		Span:      c.span,
		Tips: []string{
			fmt.Sprintf("Replace %q with a concrete question: e.g. \"At what container should I store coffee?\" instead of \"How should I store coffee?\"", c.text),
			"Start the question with \"What\", \"Which\" or \"Where\" and name the kind of answer you expect.",
		},
	}
}

func causalVerdict(what string, c citation) Verdict {
	return Verdict{
		Category:  CatCausal,
		Reason:    fmt.Sprintf("%s, which OASSIS-QL queries cannot express (offending phrase %q at bytes %d–%d)", what, c.text, c.span.Start, c.span.End),
		Offending: c.text,
		Span:      c.span,
		Tips: []string{
			fmt.Sprintf("Drop %q and ask about the things involved instead of the reason, e.g. \"Which foods are good for kids?\" instead of \"Why is this food good for kids?\"", c.text),
		},
	}
}

// CoverageTips turns the uncovered-token report — content words no
// emitted triple derives from — into rephrasing tips quoting each word
// with its byte span.
func CoverageTips(question string, uncovered []prov.TokenInfo) []string {
	if len(uncovered) == 0 {
		return nil
	}
	parts := make([]string, 0, len(uncovered))
	for _, u := range uncovered {
		parts = append(parts, fmt.Sprintf("%q (bytes %d–%d)", u.Text, u.Span.Start, u.Span.End))
	}
	return []string{
		fmt.Sprintf("The translation did not use %s; rephrase or drop those words if they matter to your question.", strings.Join(parts, ", ")),
	}
}

func hasLetters(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

// countQuestions counts sentence-final question marks followed by more
// content.
func countQuestions(s string) int {
	n := strings.Count(s, "?")
	if n <= 1 {
		return n
	}
	return n
}

// fields lower-cases and splits the question into words, dropping
// punctuation but keeping each word's byte span in the original input.
func fields(s string) []word {
	keep := func(r rune) bool {
		return unicode.IsLetter(r) || unicode.IsNumber(r) || r == '\''
	}
	var out []word
	start := -1
	for i, r := range s {
		if keep(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, word{text: strings.ToLower(s[start:i]), start: start, end: i})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, word{text: strings.ToLower(s[start:]), start: start, end: len(s)})
	}
	return out
}
