// Package verify implements NL2CM's input verification step (paper §3):
// before parsing, the question is checked for forms the system does not
// support — chiefly descriptive questions ("How to…?", "Why…?", "For what
// purpose…?"), whose answer semantics OASSIS-QL cannot express. Detected
// unsupported questions produce a warning with rephrasing tips, as in the
// demonstration's third stage ("How should I store coffee?" is rejected
// with the tip to ask "At what container should I store coffee?").
package verify

import (
	"strings"
	"unicode"
)

// Category classifies why a question is unsupported.
type Category string

// Unsupported-question categories.
const (
	CatOK          Category = ""
	CatEmpty       Category = "empty"
	CatDescriptive Category = "descriptive" // how-to / manner
	CatCausal      Category = "causal"      // why / purpose / reason
	CatAggregate   Category = "aggregate"   // how many / how much
	CatMultiple    Category = "multiple"    // several questions at once
)

// Verdict is the verification outcome.
type Verdict struct {
	// Supported reports whether translation may proceed.
	Supported bool
	// Category explains the rejection.
	Category Category
	// Reason is a user-facing explanation.
	Reason string
	// Tips suggest how to rephrase the question.
	Tips []string
}

// ok is the accepting verdict.
var ok = Verdict{Supported: true}

// Check verifies one NL question or request.
func Check(question string) Verdict {
	trimmed := strings.TrimSpace(question)
	if !hasLetters(trimmed) {
		return Verdict{
			Category: CatEmpty,
			Reason:   "the request contains no question text",
			Tips:     []string{"Type a question or request, e.g. \"What are the best places to visit in Buffalo?\""},
		}
	}
	// Multiple sentences that are each questions.
	if countQuestions(trimmed) > 1 {
		return Verdict{
			Category: CatMultiple,
			Reason:   "the request contains several questions",
			Tips:     []string{"Ask one question at a time; you can submit the next question afterwards."},
		}
	}
	words := fields(trimmed)
	if len(words) == 0 {
		return Verdict{Category: CatEmpty, Reason: "the request contains no words"}
	}
	first := words[0]
	second := ""
	if len(words) > 1 {
		second = words[1]
	}
	switch first {
	case "why":
		return causalVerdict("\"Why...\" questions ask for explanations")
	case "how":
		switch second {
		case "to":
			return descriptiveVerdict("\"How to...\" questions ask for descriptions of procedures")
		case "many", "much":
			return Verdict{
				Category: CatAggregate,
				Reason:   "counting questions (\"How many/much...\") are not supported: the crowd is asked about habits and opinions, not totals",
				Tips: []string{
					"Ask about the items themselves, e.g. \"Which places should we visit?\" instead of \"How many places should we visit?\"",
				},
			}
		case "often", "frequently":
			// Frequency questions map directly to support thresholds.
			return ok
		case "come":
			return causalVerdict("\"How come...\" questions ask for explanations")
		default:
			return descriptiveVerdict("\"How...\" questions ask for manners or procedures")
		}
	case "for":
		if second == "what" && len(words) > 2 && (words[2] == "purpose" || words[2] == "reason") {
			return causalVerdict("\"For what purpose...\" questions ask for explanations")
		}
	case "what":
		// "What is the reason/way/purpose ..."
		rest := strings.Join(words, " ")
		for _, bad := range []string{"what is the reason", "what is the purpose", "what is the way", "what's the reason", "what's the way"} {
			if strings.HasPrefix(rest, bad) {
				return causalVerdict("questions about reasons, purposes or ways ask for explanations")
			}
		}
	case "explain", "describe":
		return descriptiveVerdict("requests for explanations or descriptions")
	}
	return ok
}

func descriptiveVerdict(what string) Verdict {
	return Verdict{
		Category: CatDescriptive,
		Reason:   what + ", which OASSIS-QL queries cannot express",
		Tips: []string{
			"Rephrase the question to ask about a concrete thing, e.g. \"At what container should I store coffee?\" instead of \"How should I store coffee?\"",
			"Start the question with \"What\", \"Which\" or \"Where\" and name the kind of answer you expect.",
		},
	}
}

func causalVerdict(what string) Verdict {
	return Verdict{
		Category: CatCausal,
		Reason:   what + ", which OASSIS-QL queries cannot express",
		Tips: []string{
			"Ask about the things involved instead of the reason, e.g. \"Which foods are good for kids?\" instead of \"Why is this food good for kids?\"",
		},
	}
}

func hasLetters(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

// countQuestions counts sentence-final question marks followed by more
// content.
func countQuestions(s string) int {
	n := strings.Count(s, "?")
	if n <= 1 {
		return n
	}
	return n
}

// fields lower-cases and splits the question into words, dropping
// punctuation.
func fields(s string) []string {
	f := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsNumber(r) && r != '\''
	})
	return f
}
