package emit

import (
	"sort"
	"strings"
	"testing"

	"nl2cm/internal/ontology"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// bindingMultiset renders bindings as a sorted multiset key, so two
// evaluations compare independent of row order.
func bindingMultiset(bs []sparql.Binding) string {
	keys := make([]string, len(bs))
	for i, b := range bs {
		var parts []string
		for v, t := range b {
			parts = append(parts, v+"="+t.String())
		}
		sort.Strings(parts)
		keys[i] = strings.Join(parts, ";")
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// synthPlans are general-part plans over the synthetic ontology's shape:
// class membership, near chains, located-in joins.
func synthPlans() []*Plan {
	x, y, z := rdf.NewVar("x"), rdf.NewVar("y"), rdf.NewVar("z")
	return []*Plan{
		{
			Select: Select{All: true},
			Where: []Pattern{
				{Triple: rdf.T(x, ontology.PredInstanceOf, ontology.E("class3"))},
			},
		},
		{
			Select: Select{All: true},
			Where: []Pattern{
				{Triple: rdf.T(x, ontology.PredInstanceOf, ontology.E("class1"))},
				{Triple: rdf.T(x, ontology.PredNear, y)},
			},
		},
		{
			Select: Select{All: true},
			Where: []Pattern{
				{Triple: rdf.T(x, ontology.PredNear, y)},
				{Triple: rdf.T(y, ontology.PredNear, z)},
				{Triple: rdf.T(x, ontology.PredLocatedIn, ontology.E("entity0"))},
			},
		},
		{
			Select: Select{All: true},
			Where: []Pattern{
				{Triple: rdf.T(x, ontology.PredRichIn, y)},
				{Triple: rdf.T(y, ontology.PredInstanceOf, z)},
			},
		},
	}
}

// The general WHERE clause must evaluate identically against the RDF
// store and against an external row table behind the Adapter: the
// cross-backend differential of the SQL emitter's plan, SQLite-free.
func TestExternalSourceMatchesRDFStore(t *testing.T) {
	onto := ontology.NewSynthetic(500)
	table := LoadMemTable(onto.Store)
	if table.Len() == 0 {
		t.Fatal("empty export")
	}
	ext := &Adapter{Ext: table}
	for i, p := range synthPlans() {
		// The plan must be expressible as SQL (the table the adapter
		// scans is exactly the emitted statement's `triples` table).
		if _, err := Emit("sql", p); err != nil {
			t.Errorf("plan %d: sql emit: %v", i, err)
			continue
		}
		rdfBindings, err := ExecuteWhere(p, onto.Store)
		if err != nil {
			t.Errorf("plan %d: rdf eval: %v", i, err)
			continue
		}
		extBindings, err := ExecuteWhere(p, ext)
		if err != nil {
			t.Errorf("plan %d: external eval: %v", i, err)
			continue
		}
		if len(rdfBindings) == 0 {
			t.Errorf("plan %d: no bindings from the RDF store (weak test)", i)
		}
		if got, want := bindingMultiset(extBindings), bindingMultiset(rdfBindings); got != want {
			t.Errorf("plan %d: external source diverges from RDF store\nexternal (%d rows)\nrdf (%d rows)",
				i, len(extBindings), len(rdfBindings))
		}
	}
}

func TestAdapterCountMatch(t *testing.T) {
	m := &MemTable{}
	a, b := rdf.NewIRI("urn:a"), rdf.NewIRI("urn:b")
	p := rdf.NewIRI("urn:p")
	m.Add(a, p, b)
	m.Add(b, p, a)
	m.Add(a, p, a)
	ad := &Adapter{Ext: m}
	if n := ad.CountMatch(rdf.T(a, rdf.NewVar("p"), rdf.NewVar("o"))); n != 2 {
		t.Errorf("CountMatch(a ? ?) = %d, want 2", n)
	}
	if n := ad.CountMatch(rdf.T(rdf.NewVar("s"), p, rdf.NewVar("o"))); n != 3 {
		t.Errorf("CountMatch(? p ?) = %d, want 3", n)
	}
	if n := ad.CountMatch(rdf.T(b, p, b)); n != 0 {
		t.Errorf("CountMatch(b p b) = %d, want 0", n)
	}
}

func TestAdapterStopsEarly(t *testing.T) {
	m := &MemTable{}
	p := rdf.NewIRI("urn:p")
	for i := 0; i < 10; i++ {
		m.Add(rdf.NewIRI("urn:s"), p, rdf.NewIntLiteral(int64(i)))
	}
	seen := 0
	(&Adapter{Ext: m}).MatchFunc(rdf.T(rdf.NewVar("s"), p, rdf.NewVar("o")), func(rdf.Triple) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("callback ran %d times after requesting stop at 3", seen)
	}
}
