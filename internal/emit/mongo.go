package emit

import (
	"fmt"
	"strings"

	"nl2cm/internal/oassisql"
)

// MongoBackend renders the general part of a plan as a MongoDB-style
// document filter in JSON. The data model is one document per subject —
// `{_id: <subject>, <predicate>: <object>, ...}` — so each subject
// (variable or entity) of the plan becomes one filter document keyed by
// its predicates:
//
//	{"filter": {
//	  "x": {"instanceOf": "Place", "near": "Forest_Hotel,_Buffalo,_NY"}
//	}}
//
// A variable in object position renders as {"$var": "y"}; when that
// variable is itself a filtered subject, the link is a cross-document
// join the dialect cannot evaluate natively, which emission notes. A
// predicate repeated within one document wraps its values in {"$all":
// [...]}. Crowd clauses are dropped with a note; filters and variable
// predicates fail with a *CapabilityError.
type MongoBackend struct{}

// Name implements Backend.
func (MongoBackend) Name() string { return "mongodb" }

// Caps implements Backend.
func (MongoBackend) Caps() Caps { return Caps{} }

// mongoGroup is one subject's filter document under construction.
type mongoGroup struct {
	key   string   // subject key: variable name or entity surface form
	order []string // predicate keys in first-appearance order
	vals  map[string][]string
}

// Emit implements Backend.
func (MongoBackend) Emit(p *Plan) (*Rendering, error) {
	if len(p.Filters) > 0 {
		return nil, &CapabilityError{Backend: "mongodb", Feature: "FILTER expressions"}
	}
	if p.varPredicates() {
		return nil, &CapabilityError{Backend: "mongodb", Feature: "variable predicates"}
	}
	r := &Rendering{Backend: "mongodb"}
	if n := len(p.Crowd); n > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"dropped %d crowd-mining (SATISFYING) subclause(s): the document dialect has no crowd counterpart", n))
	}

	groups := map[string]*mongoGroup{}
	var groupOrder []string
	group := func(key string) *mongoGroup {
		g, ok := groups[key]
		if !ok {
			g = &mongoGroup{key: key, vals: map[string][]string{}}
			groups[key] = g
			groupOrder = append(groupOrder, key)
		}
		return g
	}
	type clauseRef struct {
		pat  Pattern
		frag string
	}
	var clauses []clauseRef
	var objectVars []string
	for _, pat := range p.Where {
		t := pat.Triple
		key := surface(t.S)
		if t.S.IsVar() {
			key = t.S.Value()
		}
		pred := surface(t.P)
		var val string
		if t.O.IsVar() {
			val = `{"$var": ` + jsonString(t.O.Value()) + `}`
			objectVars = append(objectVars, t.O.Value())
		} else {
			val = jsonString(surface(t.O))
		}
		g := group(key)
		if _, seen := g.vals[pred]; !seen {
			g.order = append(g.order, pred)
		}
		g.vals[pred] = append(g.vals[pred], val)
		clauses = append(clauses, clauseRef{pat: pat, frag: jsonString(pred) + ": " + val})
	}
	for _, v := range objectVars {
		if _, ok := groups[v]; ok {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"cross-document join on $%s requires application-side resolution", v))
		}
	}

	// Render with deterministic (first-appearance) key order.
	var b strings.Builder
	b.WriteString("{\"filter\": {")
	for gi, key := range groupOrder {
		if gi > 0 {
			b.WriteString(",")
		}
		g := groups[key]
		b.WriteString("\n  " + jsonString(key) + ": {")
		for pi, pred := range g.order {
			if pi > 0 {
				b.WriteString(", ")
			}
			vals := g.vals[pred]
			b.WriteString(jsonString(pred) + ": ")
			if len(vals) == 1 {
				b.WriteString(vals[0])
			} else {
				b.WriteString(`{"$all": [` + strings.Join(vals, ", ") + `]}`)
			}
		}
		b.WriteString("}")
	}
	if len(groupOrder) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("}")
	if !p.Select.All && len(p.Select.Vars) > 0 {
		b.WriteString(", \"project\": [")
		for i, v := range p.Select.Vars {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(jsonString(v))
		}
		b.WriteString("]")
	}
	b.WriteString("}")

	r.Query = b.String()
	for _, c := range clauses {
		r.Clauses = append(r.Clauses, Clause{
			Fragment:  c.frag,
			Pattern:   oassisql.TripleString(c.pat.Triple),
			Clause:    ClauseWhere,
			Subclause: -1,
			Tokens:    c.pat.Tokens,
			Source:    c.pat.Source,
		})
	}
	return r, nil
}
