package emit

import (
	"fmt"
	"strings"

	"nl2cm/internal/oassisql"
	"nl2cm/internal/sparql"
)

// MongoBackend renders the general part of a plan as a MongoDB-style
// document filter in JSON. The data model is one document per subject —
// `{_id: <subject>, <predicate>: <object>, ...}` — so each subject
// (variable or entity) of the plan becomes one filter document keyed by
// its predicates:
//
//	{"filter": {
//	  "x": {"instanceOf": "Place", "near": "Forest_Hotel,_Buffalo,_NY"}
//	}}
//
// A variable in object position renders as {"$var": "y"}; when that
// variable is itself a filtered subject, the link is a cross-document
// join the dialect cannot evaluate natively, which emission notes. A
// predicate repeated within one document wraps its values in {"$all":
// [...]}. An aggregated plan adds an "aggregate" key holding a
// $group-style pipeline — $group with one accumulator per aggregate,
// $match for HAVING, $sort and $limit for the result window — which runs
// over the filter's solution rows materialized as documents (noted,
// since that materialization is application-side). Crowd clauses are
// dropped with a note; filters, variable predicates and HAVING
// conditions beyond alias-vs-constant comparisons fail with a
// *CapabilityError.
type MongoBackend struct{}

// Name implements Backend.
func (MongoBackend) Name() string { return "mongodb" }

// Caps implements Backend.
func (MongoBackend) Caps() Caps { return Caps{Aggregates: true} }

// mongoGroup is one subject's filter document under construction.
type mongoGroup struct {
	key   string   // subject key: variable name or entity surface form
	order []string // predicate keys in first-appearance order
	vals  map[string][]string
}

// Emit implements Backend.
func (MongoBackend) Emit(p *Plan) (*Rendering, error) {
	if len(p.Filters) > 0 {
		return nil, &CapabilityError{Backend: "mongodb", Feature: "FILTER expressions"}
	}
	if p.varPredicates() {
		return nil, &CapabilityError{Backend: "mongodb", Feature: "variable predicates"}
	}
	r := &Rendering{Backend: "mongodb"}
	if n := len(p.Crowd); n > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"dropped %d crowd-mining (SATISFYING) subclause(s): the document dialect has no crowd counterpart", n))
	}

	groups := map[string]*mongoGroup{}
	var groupOrder []string
	group := func(key string) *mongoGroup {
		g, ok := groups[key]
		if !ok {
			g = &mongoGroup{key: key, vals: map[string][]string{}}
			groups[key] = g
			groupOrder = append(groupOrder, key)
		}
		return g
	}
	type clauseRef struct {
		pat  Pattern
		frag string
	}
	var clauses []clauseRef
	var objectVars []string
	for _, pat := range p.Where {
		t := pat.Triple
		key := surface(t.S)
		if t.S.IsVar() {
			key = t.S.Value()
		}
		pred := surface(t.P)
		var val string
		if t.O.IsVar() {
			val = `{"$var": ` + jsonString(t.O.Value()) + `}`
			objectVars = append(objectVars, t.O.Value())
		} else {
			val = jsonString(surface(t.O))
		}
		g := group(key)
		if _, seen := g.vals[pred]; !seen {
			g.order = append(g.order, pred)
		}
		g.vals[pred] = append(g.vals[pred], val)
		clauses = append(clauses, clauseRef{pat: pat, frag: jsonString(pred) + ": " + val})
	}
	for _, v := range objectVars {
		if _, ok := groups[v]; ok {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"cross-document join on $%s requires application-side resolution", v))
		}
	}

	// Render with deterministic (first-appearance) key order.
	var b strings.Builder
	b.WriteString("{\"filter\": {")
	for gi, key := range groupOrder {
		if gi > 0 {
			b.WriteString(",")
		}
		g := groups[key]
		b.WriteString("\n  " + jsonString(key) + ": {")
		for pi, pred := range g.order {
			if pi > 0 {
				b.WriteString(", ")
			}
			vals := g.vals[pred]
			b.WriteString(jsonString(pred) + ": ")
			if len(vals) == 1 {
				b.WriteString(vals[0])
			} else {
				b.WriteString(`{"$all": [` + strings.Join(vals, ", ") + `]}`)
			}
		}
		b.WriteString("}")
	}
	if len(groupOrder) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("}")
	if !p.Select.All && len(p.Select.Vars) > 0 {
		b.WriteString(", \"project\": [")
		for i, v := range p.Select.Vars {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(jsonString(v))
		}
		b.WriteString("]")
	}
	if p.Aggregated() {
		pipeline, err := mongoPipeline(p)
		if err != nil {
			return nil, err
		}
		b.WriteString(", \"aggregate\": " + pipeline)
		r.Notes = append(r.Notes, "aggregation pipeline runs over the filter's solution rows materialized as documents (application-side join resolution)")
	}
	b.WriteString("}")

	r.Query = b.String()
	for _, c := range clauses {
		r.Clauses = append(r.Clauses, Clause{
			Fragment:  c.frag,
			Pattern:   oassisql.TripleString(c.pat.Triple),
			Clause:    ClauseWhere,
			Subclause: -1,
			Tokens:    c.pat.Tokens,
			Source:    c.pat.Source,
		})
	}
	return r, nil
}

// mongoAccumulator renders one aggregate as a $group accumulator. COUNT
// becomes {"$sum": 1}; the value aggregates read the variable's field.
func mongoAccumulator(a sparql.Aggregate) string {
	switch a.Func {
	case "COUNT":
		return `{"$sum": 1}`
	case "SUM":
		return `{"$sum": "$` + a.Var + `"}`
	case "AVG":
		return `{"$avg": "$` + a.Var + `"}`
	case "MIN":
		return `{"$min": "$` + a.Var + `"}`
	case "MAX":
		return `{"$max": "$` + a.Var + `"}`
	}
	return "null"
}

// mongoPipeline renders the analytic part as a $group-style pipeline:
// one $group stage keyed by the grouping variables, a $match stage per
// HAVING condition, then $sort and $limit for the result window.
func mongoPipeline(p *Plan) (string, error) {
	var b strings.Builder
	b.WriteString(`[{"$group": {"_id": `)
	if len(p.Agg.GroupBy) == 0 {
		b.WriteString("null")
	} else {
		b.WriteString("{")
		for i, v := range p.Agg.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(jsonString(v) + `: "$` + v + `"`)
		}
		b.WriteString("}")
	}
	for _, a := range p.Agg.Aggs {
		b.WriteString(", " + jsonString(a.As) + ": " + mongoAccumulator(a))
	}
	b.WriteString("}}")
	for _, h := range p.Agg.Having {
		m, err := mongoHavingMatch(h, p.Agg.Aggs)
		if err != nil {
			return "", &CapabilityError{Backend: "mongodb", Feature: "HAVING expression " + h.String()}
		}
		b.WriteString(", " + m)
	}
	if len(p.Agg.OrderBy) > 0 {
		b.WriteString(`, {"$sort": {`)
		for i, k := range p.Agg.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			dir := "1"
			if k.Desc {
				dir = "-1"
			}
			b.WriteString(jsonString(k.Var) + ": " + dir)
		}
		b.WriteString("}}")
	}
	if p.Agg.Limit > 0 {
		fmt.Fprintf(&b, `, {"$limit": %d}`, p.Agg.Limit)
	}
	b.WriteString("]")
	return b.String(), nil
}

// mongoCmpOps maps comparison operators to their $match spellings.
var mongoCmpOps = map[string]string{
	"=": "$eq", "==": "$eq", "!=": "$ne",
	"<": "$lt", "<=": "$lte", ">": "$gt", ">=": "$gte",
}

// mongoHavingMatch renders one HAVING condition as a $match stage. The
// document dialect expresses only comparisons between an aggregate (or
// grouping key) and a constant; anything else errors, which Emit turns
// into a *CapabilityError.
func mongoHavingMatch(e sparql.Expr, aggs []sparql.Aggregate) (string, error) {
	x, ok := e.(*sparql.BinExpr)
	if !ok {
		return "", fmt.Errorf("not a comparison")
	}
	op, ok := mongoCmpOps[x.Op]
	if !ok {
		return "", fmt.Errorf("operator %q", x.Op)
	}
	field := ""
	if a, aok := havingAggregate(x.L, aggs); aok {
		field = a.As
	} else if v, vok := x.L.(*sparql.VarExpr); vok {
		field = v.Name
	} else {
		return "", fmt.Errorf("left side must be an aggregate or grouping key")
	}
	lit, ok := litText(x.R, jsonString)
	if !ok {
		return "", fmt.Errorf("right side must be a constant")
	}
	return `{"$match": {` + jsonString(field) + `: {` + jsonString(op) + `: ` + lit + `}}}`, nil
}
