package emit

import (
	"fmt"
	"strings"

	"nl2cm/internal/oassisql"
	"nl2cm/internal/rdf"
)

// CypherBackend renders the general part of a plan in a Cypher-like
// graph dialect: every triple pattern becomes one MATCH pattern, with
// variables as bare node identifiers, entities as `(:Resource {id:
// '...'})` nodes, literals as `(:Literal {value: '...'})` nodes and
// predicates as relationship types:
//
//	MATCH (x)-[:instanceOf]->(:Resource {id: 'Place'}),
//	      (x)-[:near]->(:Resource {id: 'Forest_Hotel,_Buffalo,_NY'})
//	RETURN x
//
// A variable predicate renders as an untyped relationship binding
// (`-[p]->`). Crowd clauses are dropped with a note; FILTER expressions
// fail with a *CapabilityError.
type CypherBackend struct{}

// Name implements Backend.
func (CypherBackend) Name() string { return "cypher" }

// Caps implements Backend.
func (CypherBackend) Caps() Caps {
	return Caps{Joins: true, VarPredicates: true}
}

// cypherNode renders a term as a node pattern.
func cypherNode(t rdf.Term) string {
	switch {
	case t.IsVar() && IsAnonVar(t.Value()):
		return "()"
	case t.IsVar():
		return "(" + ident(t.Value()) + ")"
	case t.IsLiteral():
		return "(:Literal {value: " + cypherString(t.Value()) + "})"
	case t.IsBlank():
		return "()"
	default:
		return "(:Resource {id: " + cypherString(t.Local()) + "})"
	}
}

// cypherRel renders a predicate as a relationship pattern.
func cypherRel(t rdf.Term) string {
	if t.IsVar() {
		if IsAnonVar(t.Value()) {
			return "-[]->"
		}
		return "-[" + ident(t.Value()) + "]->"
	}
	name := surface(t)
	if name != ident(name) {
		return "-[:`" + strings.ReplaceAll(name, "`", "``") + "`]->"
	}
	return "-[:" + name + "]->"
}

// Emit implements Backend.
func (CypherBackend) Emit(p *Plan) (*Rendering, error) {
	if len(p.Filters) > 0 {
		return nil, &CapabilityError{Backend: "cypher", Feature: "FILTER expressions"}
	}
	r := &Rendering{Backend: "cypher"}
	if n := len(p.Crowd); n > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"dropped %d crowd-mining (SATISFYING) subclause(s): the graph dialect has no crowd counterpart", n))
	}

	bound := map[string]bool{}
	var varOrder []string
	frags := make([]string, len(p.Where))
	for i, pat := range p.Where {
		t := pat.Triple
		frags[i] = cypherNode(t.S) + cypherRel(t.P) + cypherNode(t.O)
		t.EachVar(func(v string) {
			if !bound[v] && !IsAnonVar(v) {
				bound[v] = true
				varOrder = append(varOrder, v)
			}
		})
	}

	var b strings.Builder
	for i, f := range frags {
		switch {
		case i == 0:
			b.WriteString("MATCH ")
		default:
			b.WriteString(",\n      ")
		}
		b.WriteString(f)
	}
	sel := varOrder
	if !p.Select.All {
		sel = nil
		for _, v := range p.Select.Vars {
			if bound[v] {
				sel = append(sel, v)
			} else {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"variable $%s is bound only in a crowd clause; not returnable", v))
			}
		}
	}
	if len(frags) > 0 {
		b.WriteString("\n")
	}
	if len(sel) == 0 {
		b.WriteString("RETURN 1")
		if len(p.Where) == 0 {
			r.Notes = append(r.Notes, "empty general selection")
		}
	} else {
		b.WriteString("RETURN ")
		for i, v := range sel {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ident(v))
		}
	}

	r.Query = b.String()
	for i, pat := range p.Where {
		r.Clauses = append(r.Clauses, Clause{
			Fragment:  frags[i],
			Pattern:   oassisql.TripleString(pat.Triple),
			Clause:    ClauseWhere,
			Subclause: -1,
			Tokens:    pat.Tokens,
			Source:    pat.Source,
		})
	}
	return r, nil
}
