package emit

import (
	"fmt"
	"strings"

	"nl2cm/internal/oassisql"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// CypherBackend renders the general part of a plan in a Cypher-like
// graph dialect: every triple pattern becomes one MATCH pattern, with
// variables as bare node identifiers, entities as `(:Resource {id:
// '...'})` nodes, literals as `(:Literal {value: '...'})` nodes and
// predicates as relationship types:
//
//	MATCH (x)-[:instanceOf]->(:Resource {id: 'Place'}),
//	      (x)-[:near]->(:Resource {id: 'Forest_Hotel,_Buffalo,_NY'})
//	RETURN x
//
// A variable predicate renders as an untyped relationship binding
// (`-[p]->`). An aggregated plan uses Cypher's implicit grouping: the
// grouping keys and aggregate calls share one projection (`RETURN city,
// count(a) AS cnt ORDER BY cnt DESC LIMIT 1`), and a HAVING condition
// inserts a WITH … WHERE stage before the final RETURN — Cypher's
// idiomatic HAVING spelling. Crowd clauses are dropped with a note;
// FILTER expressions and untranslatable HAVING conditions fail with a
// *CapabilityError.
type CypherBackend struct{}

// Name implements Backend.
func (CypherBackend) Name() string { return "cypher" }

// Caps implements Backend.
func (CypherBackend) Caps() Caps {
	return Caps{Joins: true, VarPredicates: true, Aggregates: true}
}

// cypherNode renders a term as a node pattern.
func cypherNode(t rdf.Term) string {
	switch {
	case t.IsVar() && IsAnonVar(t.Value()):
		return "()"
	case t.IsVar():
		return "(" + ident(t.Value()) + ")"
	case t.IsLiteral():
		return "(:Literal {value: " + cypherString(t.Value()) + "})"
	case t.IsBlank():
		return "()"
	default:
		return "(:Resource {id: " + cypherString(t.Local()) + "})"
	}
}

// cypherRel renders a predicate as a relationship pattern.
func cypherRel(t rdf.Term) string {
	if t.IsVar() {
		if IsAnonVar(t.Value()) {
			return "-[]->"
		}
		return "-[" + ident(t.Value()) + "]->"
	}
	name := surface(t)
	if name != ident(name) {
		return "-[:`" + strings.ReplaceAll(name, "`", "``") + "`]->"
	}
	return "-[:" + name + "]->"
}

// Emit implements Backend.
func (CypherBackend) Emit(p *Plan) (*Rendering, error) {
	if len(p.Filters) > 0 {
		return nil, &CapabilityError{Backend: "cypher", Feature: "FILTER expressions"}
	}
	r := &Rendering{Backend: "cypher"}
	if n := len(p.Crowd); n > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"dropped %d crowd-mining (SATISFYING) subclause(s): the graph dialect has no crowd counterpart", n))
	}

	bound := map[string]bool{}
	var varOrder []string
	frags := make([]string, len(p.Where))
	for i, pat := range p.Where {
		t := pat.Triple
		frags[i] = cypherNode(t.S) + cypherRel(t.P) + cypherNode(t.O)
		t.EachVar(func(v string) {
			if !bound[v] && !IsAnonVar(v) {
				bound[v] = true
				varOrder = append(varOrder, v)
			}
		})
	}

	var b strings.Builder
	for i, f := range frags {
		switch {
		case i == 0:
			b.WriteString("MATCH ")
		default:
			b.WriteString(",\n      ")
		}
		b.WriteString(f)
	}
	if len(frags) > 0 {
		b.WriteString("\n")
	}
	if p.Aggregated() {
		if err := cypherAggTail(&b, p, bound, r); err != nil {
			return nil, err
		}
	} else {
		sel := varOrder
		if !p.Select.All {
			sel = nil
			for _, v := range p.Select.Vars {
				if bound[v] {
					sel = append(sel, v)
				} else {
					r.Notes = append(r.Notes, fmt.Sprintf(
						"variable $%s is bound only in a crowd clause; not returnable", v))
				}
			}
		}
		if len(sel) == 0 {
			b.WriteString("RETURN 1")
			if len(p.Where) == 0 {
				r.Notes = append(r.Notes, "empty general selection")
			}
		} else {
			b.WriteString("RETURN ")
			for i, v := range sel {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(ident(v))
			}
		}
	}

	r.Query = b.String()
	for i, pat := range p.Where {
		r.Clauses = append(r.Clauses, Clause{
			Fragment:  frags[i],
			Pattern:   oassisql.TripleString(pat.Triple),
			Clause:    ClauseWhere,
			Subclause: -1,
			Tokens:    pat.Tokens,
			Source:    pat.Source,
		})
	}
	return r, nil
}

// cypherAgg renders one aggregate call in Cypher's lower-case spelling;
// ok=false when its argument is not bound by the general part.
func cypherAgg(a sparql.Aggregate, bound map[string]bool) (string, bool) {
	fn := strings.ToLower(a.Func)
	if a.Var == "" {
		return fn + "(*)", true
	}
	if !bound[a.Var] {
		return "", false
	}
	return fn + "(" + ident(a.Var) + ")", true
}

// cypherAggTail writes the analytic projection after the MATCH patterns.
// Cypher groups implicitly — every non-aggregate projection item is a
// grouping key — so the grouping variables and aggregate calls share one
// item list. A HAVING condition needs the aggregate computed before it
// can be tested, which is Cypher's WITH … WHERE … RETURN staging; the
// same staging reconciles a projection narrower than the grouping keys.
func cypherAggTail(b *strings.Builder, p *Plan, bound map[string]bool, r *Rendering) error {
	var items []string // "city" / "count(a) AS cnt", grouping order
	emitted := map[string]bool{}
	for _, v := range p.Agg.GroupBy {
		if !bound[v] {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"grouping variable $%s is bound only in a crowd clause; dropped from grouping", v))
			continue
		}
		items = append(items, ident(v))
		emitted[v] = true
	}
	byAlias := map[string]sparql.Aggregate{}
	for _, a := range p.Agg.Aggs {
		byAlias[a.As] = a
		call, ok := cypherAgg(a, bound)
		if !ok {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"aggregate argument $%s is bound only in a crowd clause; %s dropped", a.Var, a))
			continue
		}
		items = append(items, call+" AS "+ident(a.As))
		emitted[a.As] = true
	}
	var proj []string
	for _, v := range aggProjection(p) {
		if emitted[v] {
			proj = append(proj, v)
		} else {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"variable $%s is not part of the grouped result; not returnable", v))
		}
	}
	// Single-stage RETURN only when the projection covers every grouping
	// key and aggregate — otherwise the narrower final projection would
	// silently change the implicit grouping.
	staged := len(p.Agg.Having) > 0 || len(proj) != len(items)
	if staged {
		b.WriteString("WITH " + strings.Join(items, ", "))
		for i, h := range p.Agg.Having {
			s, err := cypherHavingExpr(h, p.Agg.Aggs, emitted)
			if err != nil {
				return &CapabilityError{Backend: "cypher", Feature: "HAVING expression " + h.String()}
			}
			if i == 0 {
				b.WriteString("\nWHERE ")
			} else {
				b.WriteString("\n  AND ")
			}
			b.WriteString(s)
		}
		b.WriteString("\nRETURN ")
		for i, v := range proj {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ident(v))
		}
		if len(proj) == 0 {
			b.WriteString("1")
		}
	} else {
		// Emit the items in projection order; sets are equal, so this is
		// a reordering, not a regrouping.
		ordered := make([]string, 0, len(items))
		for _, v := range proj {
			if a, ok := byAlias[v]; ok {
				call, _ := cypherAgg(a, bound)
				ordered = append(ordered, call+" AS "+ident(a.As))
			} else {
				ordered = append(ordered, ident(v))
			}
		}
		if len(ordered) == 0 {
			ordered = []string{"1"}
		}
		b.WriteString("RETURN " + strings.Join(ordered, ", "))
	}
	var keys []string
	for _, k := range p.Agg.OrderBy {
		if !emitted[k.Var] {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"sort key $%s is not part of the grouped result; dropped from ORDER BY", k.Var))
			continue
		}
		key := ident(k.Var)
		if k.Desc {
			key += " DESC"
		}
		keys = append(keys, key)
	}
	if len(keys) > 0 {
		b.WriteString("\nORDER BY " + strings.Join(keys, ", "))
	}
	if p.Agg.Limit > 0 {
		fmt.Fprintf(b, "\nLIMIT %d", p.Agg.Limit)
	}
	return nil
}

// cypherHavingExpr translates a HAVING condition: aggregate references
// become their computed alias (bound by the WITH stage), grouping
// variables stay bare identifiers, and operators take their Cypher
// spellings. Anything else errors.
func cypherHavingExpr(e sparql.Expr, aggs []sparql.Aggregate, emitted map[string]bool) (string, error) {
	if a, ok := havingAggregate(e, aggs); ok {
		if !emitted[a.As] {
			return "", fmt.Errorf("aggregate %s not computed", a)
		}
		return ident(a.As), nil
	}
	switch x := e.(type) {
	case *sparql.VarExpr:
		if emitted[x.Name] {
			return ident(x.Name), nil
		}
		return "", fmt.Errorf("unbound variable $%s", x.Name)
	case *sparql.LitExpr:
		if s, ok := litText(e, cypherString); ok {
			return s, nil
		}
	case *sparql.NotExpr:
		s, err := cypherHavingExpr(x.X, aggs, emitted)
		if err != nil {
			return "", err
		}
		return "NOT (" + s + ")", nil
	case *sparql.BinExpr:
		op, ok := cypherOps[x.Op]
		if !ok {
			return "", fmt.Errorf("operator %q", x.Op)
		}
		l, err := cypherHavingExpr(x.L, aggs, emitted)
		if err != nil {
			return "", err
		}
		r, err := cypherHavingExpr(x.R, aggs, emitted)
		if err != nil {
			return "", err
		}
		return "(" + l + " " + op + " " + r + ")", nil
	}
	return "", fmt.Errorf("untranslatable expression %s", e)
}

// cypherOps maps the filter grammar's binary operators to Cypher
// spellings.
var cypherOps = map[string]string{
	"&&": "AND", "||": "OR",
	"=": "=", "==": "=", "!=": "<>",
	"<": "<", "<=": "<=", ">": ">", ">=": ">=",
	"+": "+", "-": "-",
}
