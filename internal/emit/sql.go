package emit

import (
	"fmt"
	"strings"

	"nl2cm/internal/oassisql"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// SQLBackend renders the general part of a plan as one SELECT over a
// self-joined triple table: schema `triples(s, p, o)`, one alias per
// pattern, variable co-occurrence becoming join conditions and concrete
// terms becoming WHERE conjuncts. The first pattern's alias is the hub
// every later alias joins back to, star-fashion.
//
// An aggregated plan renders its analytic part natively: aggregate
// functions over the bound column references in the SELECT list, GROUP
// BY over the grouping variables' columns, HAVING with the aggregate
// expressions spelled out (portable SQL cannot reference SELECT aliases
// in HAVING), and ORDER BY/LIMIT for the result window — so a
// superlative plan becomes GROUP BY … ORDER BY cnt DESC LIMIT 1.
//
// Capability fallbacks: crowd-mining clauses have no SQL counterpart and
// are dropped with a note; a projected variable bound only in a crowd
// clause is likewise noted. FILTER expressions fail with a
// *CapabilityError (dropping one would silently widen the selection), as
// does a HAVING condition outside the comparison/boolean grammar the
// renderer can translate.
type SQLBackend struct{}

// Name implements Backend.
func (SQLBackend) Name() string { return "sql" }

// Caps implements Backend. A variable predicate is expressible — the
// predicate is just the p column — so only crowd clauses and filters are
// beyond the dialect.
func (SQLBackend) Caps() Caps {
	return Caps{Joins: true, VarPredicates: true, Aggregates: true}
}

// sqlCol maps a triple position to its column name.
var sqlCol = [3]string{"s", "p", "o"}

// Emit implements Backend.
func (SQLBackend) Emit(p *Plan) (*Rendering, error) {
	if len(p.Filters) > 0 {
		return nil, &CapabilityError{Backend: "sql", Feature: "FILTER expressions"}
	}
	r := &Rendering{Backend: "sql"}
	if n := len(p.Crowd); n > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"dropped %d crowd-mining (SATISFYING) subclause(s): SQL has no crowd dialect", n))
	}

	// Walk the patterns once: first occurrence of a variable binds it to
	// a column reference, later occurrences become join conditions,
	// concrete terms become WHERE conjuncts.
	bound := map[string]string{} // variable -> first column reference
	var varOrder []string        // named variables in first-appearance order
	type patSQL struct {
		alias string
		conds []string // concrete-term conjuncts (WHERE)
		joins []string // shared-variable conjuncts (ON)
	}
	pats := make([]patSQL, len(p.Where))
	for i, pat := range p.Where {
		ps := patSQL{alias: fmt.Sprintf("t%d", i)}
		for pos, term := range []rdf.Term{pat.Triple.S, pat.Triple.P, pat.Triple.O} {
			ref := ps.alias + "." + sqlCol[pos]
			if term.IsVar() {
				name := term.Value()
				if first, ok := bound[name]; ok {
					ps.joins = append(ps.joins, ref+" = "+first)
				} else {
					bound[name] = ref
					if !IsAnonVar(name) {
						varOrder = append(varOrder, name)
					}
				}
				continue
			}
			ps.conds = append(ps.conds, ref+" = "+sqlString(surface(term)))
		}
		pats[i] = ps
	}

	// aggSQL renders one aggregate call over the bound column refs;
	// ok=false when its argument is not bound by the general part.
	aggSQL := func(a sparql.Aggregate) (string, bool) {
		if a.Var == "" {
			return a.Func + "(*)", true
		}
		col, ok := bound[a.Var]
		if !ok {
			return "", false
		}
		return a.Func + "(" + col + ")", true
	}

	// SELECT list. An aggregated plan projects group variables and
	// aggregate expressions; a plain one projects the variables the
	// general part binds.
	var selParts []string
	if p.Aggregated() {
		byAlias := map[string]sparql.Aggregate{}
		for _, a := range p.Agg.Aggs {
			byAlias[a.As] = a
		}
		for _, v := range aggProjection(p) {
			if a, ok := byAlias[v]; ok {
				expr, ok := aggSQL(a)
				if !ok {
					r.Notes = append(r.Notes, fmt.Sprintf(
						"aggregate argument $%s is bound only in a crowd clause; %s dropped", a.Var, a))
					continue
				}
				selParts = append(selParts, expr+" AS "+ident(v))
				continue
			}
			if col, ok := bound[v]; ok {
				selParts = append(selParts, col+" AS "+ident(v))
			} else {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"variable $%s is bound only in a crowd clause; not selectable in SQL", v))
			}
		}
	} else {
		sel := varOrder
		if !p.Select.All {
			sel = nil
			for _, v := range p.Select.Vars {
				if _, ok := bound[v]; ok {
					sel = append(sel, v)
				} else {
					r.Notes = append(r.Notes, fmt.Sprintf(
						"variable $%s is bound only in a crowd clause; not selectable in SQL", v))
				}
			}
		}
		for _, v := range sel {
			selParts = append(selParts, bound[v]+" AS "+ident(v))
		}
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(selParts) == 0 {
		b.WriteString("1")
		if len(p.Where) == 0 {
			r.Notes = append(r.Notes, "empty general selection")
		}
	} else {
		b.WriteString(strings.Join(selParts, ", "))
	}

	// FROM/JOIN: the hub alias plus one join per further pattern. Each
	// pattern's concrete-term conjuncts stay grouped on one WHERE line.
	var whereGroups []string
	for i, ps := range pats {
		if i == 0 {
			fmt.Fprintf(&b, "\nFROM triples AS %s", ps.alias)
		} else {
			on := ps.joins
			if len(on) == 0 {
				on = []string{"1 = 1"} // cartesian: no shared variable
			}
			fmt.Fprintf(&b, "\nJOIN triples AS %s ON %s", ps.alias, strings.Join(on, " AND "))
		}
		if len(ps.conds) > 0 {
			whereGroups = append(whereGroups, strings.Join(ps.conds, " AND "))
		}
	}
	for i, g := range whereGroups {
		if i == 0 {
			b.WriteString("\nWHERE ")
		} else {
			b.WriteString("\n  AND ")
		}
		b.WriteString(g)
	}

	// Analytic tail: GROUP BY over the grouping columns, HAVING with the
	// aggregate expressions spelled out, then the result window.
	if p.Aggregated() {
		var groupCols []string
		for _, v := range p.Agg.GroupBy {
			if col, ok := bound[v]; ok {
				groupCols = append(groupCols, col)
			} else {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"grouping variable $%s is bound only in a crowd clause; dropped from GROUP BY", v))
			}
		}
		if len(groupCols) > 0 {
			b.WriteString("\nGROUP BY " + strings.Join(groupCols, ", "))
		}
		for i, h := range p.Agg.Having {
			s, err := sqlHavingExpr(h, bound, p.Agg.Aggs, aggSQL)
			if err != nil {
				return nil, &CapabilityError{Backend: "sql", Feature: "HAVING expression " + h.String()}
			}
			if i == 0 {
				b.WriteString("\nHAVING ")
			} else {
				b.WriteString("\n   AND ")
			}
			b.WriteString(s)
		}
		if keys := sqlOrderKeys(p, bound, aggSQL, r); len(keys) > 0 {
			b.WriteString("\nORDER BY " + strings.Join(keys, ", "))
		}
		if p.Agg.Limit > 0 {
			fmt.Fprintf(&b, "\nLIMIT %d", p.Agg.Limit)
		}
	}

	r.Query = b.String()
	for i, pat := range p.Where {
		frag := strings.Join(append(append([]string{}, pats[i].conds...), pats[i].joins...), " AND ")
		if frag == "" {
			frag = pats[i].alias + " unconstrained"
		}
		r.Clauses = append(r.Clauses, Clause{
			Fragment:  frag,
			Pattern:   oassisql.TripleString(pat.Triple),
			Clause:    ClauseWhere,
			Subclause: -1,
			Tokens:    pat.Tokens,
			Source:    pat.Source,
		})
	}
	return r, nil
}

// sqlOrderKeys renders the analytic ORDER BY keys: an aggregate alias
// orders by its aggregate expression (portable across dialects that do
// not allow alias references there), a grouping variable by its column.
// A key the general part cannot express is noted and skipped.
func sqlOrderKeys(p *Plan, bound map[string]string, aggSQL func(sparql.Aggregate) (string, bool), r *Rendering) []string {
	var keys []string
	for _, k := range p.Agg.OrderBy {
		var expr string
		if a, ok := havingAggregate(&sparql.VarExpr{Name: k.Var}, p.Agg.Aggs); ok {
			s, sok := aggSQL(a)
			if !sok {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"sort key $%s aggregates a crowd-bound variable; dropped from ORDER BY", k.Var))
				continue
			}
			expr = s
		} else if col, ok := bound[k.Var]; ok {
			expr = col
		} else {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"sort key $%s is bound only in a crowd clause; dropped from ORDER BY", k.Var))
			continue
		}
		if k.Desc {
			expr += " DESC"
		}
		keys = append(keys, expr)
	}
	return keys
}

// sqlHavingExpr translates a HAVING condition into SQL: aggregate
// references become the spelled-out aggregate expression, grouping
// variables their column reference, and the boolean/comparison operators
// their SQL forms. Anything else is untranslatable and errors.
func sqlHavingExpr(e sparql.Expr, bound map[string]string, aggs []sparql.Aggregate, aggSQL func(sparql.Aggregate) (string, bool)) (string, error) {
	if a, ok := havingAggregate(e, aggs); ok {
		s, sok := aggSQL(a)
		if !sok {
			return "", fmt.Errorf("aggregate over unbound $%s", a.Var)
		}
		return s, nil
	}
	switch x := e.(type) {
	case *sparql.VarExpr:
		if col, ok := bound[x.Name]; ok {
			return col, nil
		}
		return "", fmt.Errorf("unbound variable $%s", x.Name)
	case *sparql.LitExpr:
		if s, ok := litText(e, sqlString); ok {
			return s, nil
		}
	case *sparql.NotExpr:
		s, err := sqlHavingExpr(x.X, bound, aggs, aggSQL)
		if err != nil {
			return "", err
		}
		return "NOT (" + s + ")", nil
	case *sparql.BinExpr:
		op, ok := sqlOps[x.Op]
		if !ok {
			return "", fmt.Errorf("operator %q", x.Op)
		}
		l, err := sqlHavingExpr(x.L, bound, aggs, aggSQL)
		if err != nil {
			return "", err
		}
		r, err := sqlHavingExpr(x.R, bound, aggs, aggSQL)
		if err != nil {
			return "", err
		}
		return "(" + l + " " + op + " " + r + ")", nil
	}
	return "", fmt.Errorf("untranslatable expression %s", e)
}

// sqlOps maps the filter grammar's binary operators to SQL spellings.
var sqlOps = map[string]string{
	"&&": "AND", "||": "OR",
	"=": "=", "==": "=", "!=": "<>",
	"<": "<", "<=": "<=", ">": ">", ">=": ">=",
	"+": "+", "-": "-",
}
