package emit

import (
	"fmt"
	"strings"

	"nl2cm/internal/oassisql"
	"nl2cm/internal/rdf"
)

// SQLBackend renders the general part of a plan as one SELECT over a
// self-joined triple table: schema `triples(s, p, o)`, one alias per
// pattern, variable co-occurrence becoming join conditions and concrete
// terms becoming WHERE conjuncts. The first pattern's alias is the hub
// every later alias joins back to, star-fashion.
//
// Capability fallbacks: crowd-mining clauses have no SQL counterpart and
// are dropped with a note; a projected variable bound only in a crowd
// clause is likewise noted. FILTER expressions fail with a
// *CapabilityError (dropping one would silently widen the selection).
type SQLBackend struct{}

// Name implements Backend.
func (SQLBackend) Name() string { return "sql" }

// Caps implements Backend. A variable predicate is expressible — the
// predicate is just the p column — so only crowd clauses and filters are
// beyond the dialect.
func (SQLBackend) Caps() Caps {
	return Caps{Joins: true, VarPredicates: true}
}

// sqlCol maps a triple position to its column name.
var sqlCol = [3]string{"s", "p", "o"}

// Emit implements Backend.
func (SQLBackend) Emit(p *Plan) (*Rendering, error) {
	if len(p.Filters) > 0 {
		return nil, &CapabilityError{Backend: "sql", Feature: "FILTER expressions"}
	}
	r := &Rendering{Backend: "sql"}
	if n := len(p.Crowd); n > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf(
			"dropped %d crowd-mining (SATISFYING) subclause(s): SQL has no crowd dialect", n))
	}

	// Walk the patterns once: first occurrence of a variable binds it to
	// a column reference, later occurrences become join conditions,
	// concrete terms become WHERE conjuncts.
	bound := map[string]string{} // variable -> first column reference
	var varOrder []string        // named variables in first-appearance order
	type patSQL struct {
		alias string
		conds []string // concrete-term conjuncts (WHERE)
		joins []string // shared-variable conjuncts (ON)
	}
	pats := make([]patSQL, len(p.Where))
	for i, pat := range p.Where {
		ps := patSQL{alias: fmt.Sprintf("t%d", i)}
		for pos, term := range []rdf.Term{pat.Triple.S, pat.Triple.P, pat.Triple.O} {
			ref := ps.alias + "." + sqlCol[pos]
			if term.IsVar() {
				name := term.Value()
				if first, ok := bound[name]; ok {
					ps.joins = append(ps.joins, ref+" = "+first)
				} else {
					bound[name] = ref
					if !IsAnonVar(name) {
						varOrder = append(varOrder, name)
					}
				}
				continue
			}
			ps.conds = append(ps.conds, ref+" = "+sqlString(surface(term)))
		}
		pats[i] = ps
	}

	// SELECT list: the projected variables that the general part binds.
	sel := varOrder
	if !p.Select.All {
		sel = nil
		for _, v := range p.Select.Vars {
			if _, ok := bound[v]; ok {
				sel = append(sel, v)
			} else {
				r.Notes = append(r.Notes, fmt.Sprintf(
					"variable $%s is bound only in a crowd clause; not selectable in SQL", v))
			}
		}
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(sel) == 0 {
		b.WriteString("1")
		if len(p.Where) == 0 {
			r.Notes = append(r.Notes, "empty general selection")
		}
	} else {
		for i, v := range sel {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s AS %s", bound[v], ident(v))
		}
	}

	// FROM/JOIN: the hub alias plus one join per further pattern. Each
	// pattern's concrete-term conjuncts stay grouped on one WHERE line.
	var whereGroups []string
	for i, ps := range pats {
		if i == 0 {
			fmt.Fprintf(&b, "\nFROM triples AS %s", ps.alias)
		} else {
			on := ps.joins
			if len(on) == 0 {
				on = []string{"1 = 1"} // cartesian: no shared variable
			}
			fmt.Fprintf(&b, "\nJOIN triples AS %s ON %s", ps.alias, strings.Join(on, " AND "))
		}
		if len(ps.conds) > 0 {
			whereGroups = append(whereGroups, strings.Join(ps.conds, " AND "))
		}
	}
	for i, g := range whereGroups {
		if i == 0 {
			b.WriteString("\nWHERE ")
		} else {
			b.WriteString("\n  AND ")
		}
		b.WriteString(g)
	}

	r.Query = b.String()
	for i, pat := range p.Where {
		frag := strings.Join(append(append([]string{}, pats[i].conds...), pats[i].joins...), " AND ")
		if frag == "" {
			frag = pats[i].alias + " unconstrained"
		}
		r.Clauses = append(r.Clauses, Clause{
			Fragment:  frag,
			Pattern:   oassisql.TripleString(pat.Triple),
			Clause:    ClauseWhere,
			Subclause: -1,
			Tokens:    pat.Tokens,
			Source:    pat.Source,
		})
	}
	return r, nil
}
