// Package emit separates "translate" from "render" from "execute": the
// translation pipeline produces a backend-neutral logical query IR (the
// Plan), and pluggable Backends render it into concrete query dialects —
// OASSIS-QL (the paper's language), SQL, a MongoDB-style document filter
// and a Cypher-like graph dialect. The package also provides an
// ExternalSource adapter so the general (WHERE) part of a plan can
// execute against stores other than the in-memory RDF engine.
//
// The Plan mirrors the structure the Query Composition module assembles
// (paper §2.6) without committing to any concrete syntax: general triple
// patterns with filters and projection, plus crowd-mining clauses with
// their significance criteria. Every pattern carries the provenance of
// its source tokens, so each backend's rendering can be traced back to
// the question phrase it derives from, clause by clause.
package emit

import (
	"nl2cm/internal/prov"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// Pattern is one logical triple pattern with its source provenance.
type Pattern struct {
	// Triple is the pattern itself; variables are rdf.KindVariable terms.
	Triple rdf.Triple
	// Tokens is the source-token set the pattern derives from (empty when
	// unknown, e.g. for hand-built plans).
	Tokens prov.TokenSet
	// Source is the question excerpt the pattern derives from ("" when
	// unknown), e.g. `near Forest Hotel , Buffalo`.
	Source string
}

// Significance is a crowd clause's significance criterion: a top/bottom-k
// selection when TopK > 0, a support threshold otherwise.
type Significance struct {
	// TopK selects the k highest- (Desc) or lowest-support bindings;
	// 0 means the Threshold applies instead.
	TopK int
	// Desc orders a top-k selection by descending support.
	Desc bool
	// Threshold is the minimal support in [0,1]; meaningful when TopK==0.
	Threshold float64
}

// CrowdClause is one crowd-mining data pattern (an OASSIS-QL SATISFYING
// subclause): patterns to be mined from the crowd plus a significance
// criterion.
type CrowdClause struct {
	Patterns     []Pattern
	Filters      []sparql.Expr
	Significance Significance
}

// Aggregation is the plan's analytic part: grouping and aggregate
// outputs over the general selection, with optional HAVING conditions
// and a result window. A superlative question compiles to this shape —
// "Which city has the most attractions?" becomes GROUP BY city +
// COUNT(attraction) + ORDER BY count DESC + LIMIT 1. The types are the
// sparql package's, so a plan's aggregation drops straight into a
// sparql.Query for evaluation.
type Aggregation struct {
	// GroupBy lists the grouping variables; empty means one global group.
	GroupBy []string
	// Aggs lists the aggregate outputs; aliases act as output variables.
	Aggs []sparql.Aggregate
	// Having restricts groups after aggregation.
	Having []sparql.Expr
	// OrderBy sorts the grouped results (aliases are sortable).
	OrderBy []sparql.OrderKey
	// Limit caps the grouped results; 0 means no limit.
	Limit int
}

// Select is the plan's projection.
type Select struct {
	// All projects every variable that yields significant patterns
	// (OASSIS-QL "SELECT VARIABLES").
	All bool
	// Vars lists the projected variables when All is false.
	Vars []string
}

// Plan is the backend-neutral logical query: what the translation
// pipeline means, before any dialect renders it.
type Plan struct {
	// Question is the source NL request ("" for hand-built plans).
	Question string
	// Select is the projection.
	Select Select
	// Where holds the general (ontology) selection patterns.
	Where []Pattern
	// Filters restrict the general selection.
	Filters []sparql.Expr
	// Crowd holds the crowd-mining clauses; empty for pure-general plans.
	Crowd []CrowdClause
	// Agg is the analytic part; nil for plain selections.
	Agg *Aggregation
}

// Clone returns a deep-enough copy for re-binding: every slice that
// Rebind or a Source recomputation mutates is copied; immutable parts
// (token sets, filter expressions) are shared.
func (p *Plan) Clone() *Plan {
	q := *p
	q.Select.Vars = append([]string(nil), p.Select.Vars...)
	q.Where = append([]Pattern(nil), p.Where...)
	q.Filters = append([]sparql.Expr(nil), p.Filters...)
	q.Crowd = make([]CrowdClause, len(p.Crowd))
	for i, cc := range p.Crowd {
		q.Crowd[i] = CrowdClause{
			Patterns:     append([]Pattern(nil), cc.Patterns...),
			Filters:      append([]sparql.Expr(nil), cc.Filters...),
			Significance: cc.Significance,
		}
	}
	if p.Agg != nil {
		a := *p.Agg
		a.GroupBy = append([]string(nil), p.Agg.GroupBy...)
		a.Aggs = append([]sparql.Aggregate(nil), p.Agg.Aggs...)
		a.Having = append([]sparql.Expr(nil), p.Agg.Having...)
		a.OrderBy = append([]sparql.OrderKey(nil), p.Agg.OrderBy...)
		q.Agg = &a
	}
	return &q
}

// Rebind substitutes terms in every pattern (general and crowd): the
// entity-slot rehydration step of the plan cache, mapping a cached
// shape's entities onto a new question's. Filters are not rewritten —
// callers must not rebind plans whose filters could mention a
// substituted term.
func (p *Plan) Rebind(sub map[rdf.Term]rdf.Term) {
	apply := func(pats []Pattern) {
		for i := range pats {
			t := &pats[i].Triple
			if n, ok := sub[t.S]; ok {
				t.S = n
			}
			if n, ok := sub[t.P]; ok {
				t.P = n
			}
			if n, ok := sub[t.O]; ok {
				t.O = n
			}
		}
	}
	apply(p.Where)
	for i := range p.Crowd {
		apply(p.Crowd[i].Patterns)
	}
}

// PureGeneral reports whether the plan has no crowd-mining part, i.e. it
// is a plain ontology selection.
func (p *Plan) PureGeneral() bool { return len(p.Crowd) == 0 }

// Aggregated reports whether the plan has an analytic (grouping) step.
func (p *Plan) Aggregated() bool {
	return p.Agg != nil && (len(p.Agg.GroupBy) > 0 || len(p.Agg.Aggs) > 0)
}

// IsAnonVar reports whether a variable name denotes an anonymous term
// ("anything/anyone"); such variables are never projected. The naming
// convention is shared with the oassisql package ("[]" terms).
func IsAnonVar(name string) bool {
	return len(name) >= 5 && name[:5] == "_anon"
}

// Vars returns the named (non-anonymous) variables of the plan in
// first-appearance order: WHERE patterns first, then crowd clauses.
func (p *Plan) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(pats []Pattern) {
		for _, pat := range pats {
			pat.Triple.EachVar(func(v string) {
				if !seen[v] && !IsAnonVar(v) {
					seen[v] = true
					out = append(out, v)
				}
			})
		}
	}
	add(p.Where)
	for _, cc := range p.Crowd {
		add(cc.Patterns)
	}
	return out
}

// WhereTriples returns the bare general triples, for evaluation; nil
// when the plan has no general part.
func (p *Plan) WhereTriples() []rdf.Triple {
	if len(p.Where) == 0 {
		return nil
	}
	out := make([]rdf.Triple, len(p.Where))
	for i, pat := range p.Where {
		out[i] = pat.Triple
	}
	return out
}

// varPredicates reports whether any pattern (general or crowd) has a
// variable in predicate position.
func (p *Plan) varPredicates() bool {
	check := func(pats []Pattern) bool {
		for _, pat := range pats {
			if pat.Triple.P.IsVar() {
				return true
			}
		}
		return false
	}
	if check(p.Where) {
		return true
	}
	for _, cc := range p.Crowd {
		if check(cc.Patterns) {
			return true
		}
	}
	return false
}
