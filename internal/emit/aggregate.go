package emit

import (
	"strings"

	"nl2cm/internal/sparql"
)

// Helpers shared by the backends' renderings of a plan's analytic part.
// A HAVING condition references aggregate values in three equivalent
// forms — an alias variable, a sparql.AggRefExpr, or a raw aggregate
// call — and every dialect renderer needs the same resolution from any
// of them to the plan's Aggregate entry.

// matchAgg finds the aggregate with the given function and argument.
func matchAgg(aggs []sparql.Aggregate, fn, varName string) (sparql.Aggregate, bool) {
	for _, a := range aggs {
		if a.Func == fn && a.Var == varName {
			return a, true
		}
	}
	return sparql.Aggregate{}, false
}

// havingAggregate resolves an expression node denoting an aggregate
// value: a variable naming an alias, an AggRefExpr, or an aggregate
// call. It reports ok=false for every other node.
func havingAggregate(e sparql.Expr, aggs []sparql.Aggregate) (sparql.Aggregate, bool) {
	switch x := e.(type) {
	case *sparql.AggRefExpr:
		if a, ok := matchAgg(aggs, x.Agg.Func, x.Agg.Var); ok {
			return a, true
		}
		return x.Agg, true
	case *sparql.VarExpr:
		for _, a := range aggs {
			if a.As == x.Name {
				return a, true
			}
		}
	case *sparql.CallExpr:
		fn := strings.ToUpper(x.Name)
		if !sparql.AggFuncs[fn] {
			break
		}
		varName := ""
		if len(x.Args) == 1 {
			v, ok := x.Args[0].(*sparql.VarExpr)
			if !ok {
				break
			}
			varName = v.Name
		}
		if a, ok := matchAgg(aggs, fn, varName); ok {
			return a, true
		}
		return sparql.Aggregate{Func: fn, Var: varName, As: strings.ToLower(fn)}, true
	}
	return sparql.Aggregate{}, false
}

// litText renders a literal expression as dialect text, using the given
// string quoter for non-numeric values. ok=false for non-literal nodes.
func litText(e sparql.Expr, quote func(string) string) (string, bool) {
	x, ok := e.(*sparql.LitExpr)
	if !ok {
		return "", false
	}
	switch x.Val.Kind {
	case sparql.VNum:
		return x.String(), true
	case sparql.VBool:
		return x.String(), true
	case sparql.VStr:
		return quote(x.Val.Str), true
	case sparql.VTerm:
		t := x.Val.Term
		if _, isNum := t.Float(); isNum && t.IsLiteral() {
			return t.Value(), true
		}
		return quote(surface(t)), true
	}
	return "", false
}

// aggProjection returns the output order of an aggregated plan: the
// projected variables when explicit, else every group variable followed
// by every aggregate alias.
func aggProjection(p *Plan) []string {
	if !p.Select.All && len(p.Select.Vars) > 0 {
		return p.Select.Vars
	}
	out := append([]string(nil), p.Agg.GroupBy...)
	for _, a := range p.Agg.Aggs {
		out = append(out, a.As)
	}
	return out
}
