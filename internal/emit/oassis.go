package emit

import (
	"nl2cm/internal/oassisql"
)

// OassisBackend renders plans in OASSIS-QL, the paper's crowd-mining
// language. It is the system's reference dialect: the only backend that
// expresses every plan (crowd clauses, filters, variable predicates),
// and the single OASSIS-QL emitter in the codebase — both the pipeline's
// final query and this backend's rendering go through oassisql.Printer,
// so they are byte-identical by construction.
type OassisBackend struct{}

// Name implements Backend.
func (OassisBackend) Name() string { return "oassisql" }

// Caps implements Backend: OASSIS-QL expresses everything a plan can
// hold.
func (OassisBackend) Caps() Caps {
	return Caps{Crowd: true, Joins: true, Filters: true, VarPredicates: true, Aggregates: true}
}

// OassisQuery builds the structural OASSIS-QL query a plan denotes. The
// mapping is exact: general patterns become the WHERE clause, the
// analytic part becomes the language's aggregation extension, and crowd
// clauses become SATISFYING subclauses with their significance criteria.
func OassisQuery(p *Plan) *oassisql.Query {
	q := &oassisql.Query{
		Select: oassisql.SelectClause{All: p.Select.All, Vars: p.Select.Vars},
		Where:  oassisql.Pattern{Triples: p.WhereTriples(), Filters: p.Filters},
	}
	if p.Agg != nil {
		q.Agg = &oassisql.Aggregation{
			GroupBy: p.Agg.GroupBy,
			Aggs:    p.Agg.Aggs,
			Having:  p.Agg.Having,
			OrderBy: p.Agg.OrderBy,
			Limit:   p.Agg.Limit,
		}
	}
	for _, cc := range p.Crowd {
		sc := oassisql.Subclause{Pattern: oassisql.Pattern{Filters: cc.Filters}}
		for _, pat := range cc.Patterns {
			sc.Pattern.Triples = append(sc.Pattern.Triples, pat.Triple)
		}
		if cc.Significance.TopK > 0 {
			sc.TopK = &oassisql.TopK{K: cc.Significance.TopK, Desc: cc.Significance.Desc}
		} else {
			th := cc.Significance.Threshold
			sc.Threshold = &th
		}
		q.Satisfying = append(q.Satisfying, sc)
	}
	return q
}

// Emit implements Backend.
func (OassisBackend) Emit(p *Plan) (*Rendering, error) {
	r := &Rendering{Backend: "oassisql", Query: OassisQuery(p).String()}
	for _, pat := range p.Where {
		r.Clauses = append(r.Clauses, Clause{
			Fragment:  oassisql.TripleString(pat.Triple),
			Pattern:   oassisql.TripleString(pat.Triple),
			Clause:    ClauseWhere,
			Subclause: -1,
			Tokens:    pat.Tokens,
			Source:    pat.Source,
		})
	}
	for si, cc := range p.Crowd {
		for _, pat := range cc.Patterns {
			r.Clauses = append(r.Clauses, Clause{
				Fragment:  oassisql.TripleString(pat.Triple),
				Pattern:   oassisql.TripleString(pat.Triple),
				Clause:    ClauseSatisfying,
				Subclause: si,
				Tokens:    pat.Tokens,
				Source:    pat.Source,
			})
		}
	}
	return r, nil
}
