package emit

import (
	"encoding/json"
	"strings"
	"testing"

	"nl2cm/internal/oassisql"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// demoPlan is the running example's logical form (paper Figure 1).
func demoPlan() *Plan {
	x := rdf.NewVar("x")
	anon := rdf.NewVar("_anon1")
	return &Plan{
		Question: "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?",
		Select:   Select{All: true},
		Where: []Pattern{
			{Triple: rdf.T(x, iri("instanceOf"), iri("Place")), Source: "places"},
			{Triple: rdf.T(x, iri("near"), iri("Forest_Hotel,_Buffalo,_NY")), Source: "near Forest Hotel , Buffalo"},
		},
		Crowd: []CrowdClause{
			{
				Patterns:     []Pattern{{Triple: rdf.T(x, iri("hasLabel"), rdf.NewLiteral("interesting"))}},
				Significance: Significance{TopK: 5, Desc: true},
			},
			{
				Patterns: []Pattern{
					{Triple: rdf.T(anon, iri("visit"), x)},
					{Triple: rdf.T(anon, iri("in"), iri("Fall"))},
				},
				Significance: Significance{Threshold: 0.1},
			},
		},
	}
}

func iri(local string) rdf.Term { return rdf.NewIRI("http://nl2cm.example/" + local) }

func TestRegistryListsFourBackends(t *testing.T) {
	names := Names()
	want := []string{"oassisql", "cypher", "mongodb", "sql"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q (default first, rest sorted)", i, names[i], n)
		}
	}
	for _, n := range names {
		b, ok := Lookup(n)
		if !ok || b.Name() != n {
			t.Errorf("Lookup(%q) inconsistent", n)
		}
	}
	if _, err := Emit("no-such-dialect", demoPlan()); err == nil {
		t.Error("Emit with unknown backend name should fail")
	}
}

func TestOassisEmitMatchesPrinter(t *testing.T) {
	p := demoPlan()
	r, err := Emit("oassisql", p)
	if err != nil {
		t.Fatal(err)
	}
	if want := OassisQuery(p).String(); r.Query != want {
		t.Errorf("oassis rendering diverges from the printer:\ngot:\n%s\nwant:\n%s", r.Query, want)
	}
	if !strings.Contains(r.Query, "WITH SUPPORT THRESHOLD = 0.1") ||
		!strings.Contains(r.Query, "LIMIT 5") {
		t.Errorf("missing significance criteria:\n%s", r.Query)
	}
	// The rendering must re-parse to the same query.
	q2, err := oassisql.Parse(r.Query)
	if err != nil {
		t.Fatalf("rendering does not re-parse: %v", err)
	}
	if q2.String() != r.Query {
		t.Errorf("re-parse round trip changed the query")
	}
	if len(r.Clauses) != 5 {
		t.Errorf("clauses = %d, want 5 (2 where + 3 satisfying)", len(r.Clauses))
	}
}

func TestEveryBackendEmitsTheDemoPlan(t *testing.T) {
	for _, b := range All() {
		r, err := b.Emit(demoPlan())
		if err != nil {
			t.Errorf("%s: %v", b.Name(), err)
			continue
		}
		if r.Query == "" {
			t.Errorf("%s: empty rendering", b.Name())
		}
		if r.Backend != b.Name() {
			t.Errorf("%s: rendering names backend %q", b.Name(), r.Backend)
		}
		// Every general pattern must be traced to a clause with its source.
		whereClauses := 0
		for _, c := range r.Clauses {
			if c.Clause == ClauseWhere {
				whereClauses++
				if c.Pattern == "" || c.Fragment == "" {
					t.Errorf("%s: clause missing pattern/fragment: %+v", b.Name(), c)
				}
			}
		}
		if whereClauses != 2 {
			t.Errorf("%s: %d where clauses, want 2", b.Name(), whereClauses)
		}
		if !b.Caps().Crowd && len(r.Notes) == 0 {
			t.Errorf("%s: dropped crowd clauses without a note", b.Name())
		}
	}
}

func TestSQLRendering(t *testing.T) {
	r, err := Emit("sql", demoPlan())
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT t0.s AS x\n" +
		"FROM triples AS t0\n" +
		"JOIN triples AS t1 ON t1.s = t0.s\n" +
		"WHERE t0.p = 'instanceOf' AND t0.o = 'Place'\n" +
		"  AND t1.p = 'near' AND t1.o = 'Forest_Hotel,_Buffalo,_NY'"
	if r.Query != want {
		t.Errorf("sql rendering:\ngot:\n%s\nwant:\n%s", r.Query, want)
	}
}

func TestMongoRenderingIsValidJSON(t *testing.T) {
	r, err := Emit("mongodb", demoPlan())
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(r.Query), &parsed); err != nil {
		t.Fatalf("rendering is not valid JSON: %v\n%s", err, r.Query)
	}
	filter, ok := parsed["filter"].(map[string]any)
	if !ok {
		t.Fatalf("no filter object:\n%s", r.Query)
	}
	x, ok := filter["x"].(map[string]any)
	if !ok || x["instanceOf"] != "Place" {
		t.Errorf("x document filter wrong: %v", filter)
	}
}

func TestCypherRendering(t *testing.T) {
	r, err := Emit("cypher", demoPlan())
	if err != nil {
		t.Fatal(err)
	}
	want := "MATCH (x)-[:instanceOf]->(:Resource {id: 'Place'}),\n" +
		"      (x)-[:near]->(:Resource {id: 'Forest_Hotel,_Buffalo,_NY'})\n" +
		"RETURN x"
	if r.Query != want {
		t.Errorf("cypher rendering:\ngot:\n%s\nwant:\n%s", r.Query, want)
	}
}

// Hostile literal values must never produce syntactically invalid (or
// injectable) output on any backend.
func TestLiteralEscaping(t *testing.T) {
	cases := []struct {
		name    string
		literal string
		want    map[string]string // backend -> expected escaped fragment
	}{
		{
			name:    "double quote",
			literal: `O"Hara`,
			want: map[string]string{
				"oassisql": `"O\"Hara"`,
				"sql":      `'O"Hara'`,
				"mongodb":  `"O\"Hara"`,
				"cypher":   `'O"Hara'`,
			},
		},
		{
			name:    "backslash",
			literal: `a\b`,
			want: map[string]string{
				"oassisql": `"a\\b"`,
				"sql":      `'a\b'`, // ANSI SQL: backslash has no special meaning
				"mongodb":  `"a\\b"`,
				"cypher":   `'a\\b'`,
			},
		},
		{
			name:    "single quote injection",
			literal: `x'); DROP TABLE triples; --`,
			want: map[string]string{
				"oassisql": `"x'); DROP TABLE triples; --"`,
				"sql":      `'x''); DROP TABLE triples; --'`,
				"mongodb":  `"x'); DROP TABLE triples; --"`,
				"cypher":   `'x\'); DROP TABLE triples; --'`,
			},
		},
		{
			name:    "mixed quotes and backslashes",
			literal: `\"'\`,
			want: map[string]string{
				"oassisql": `"\\\"'\\"`,
				"sql":      `'\"''\'`,
				"mongodb":  `"\\\"'\\"`,
				"cypher":   `'\\"\'\\'`,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Plan{
				Select: Select{All: true},
				Where: []Pattern{{
					Triple: rdf.T(rdf.NewVar("x"), iri("hasLabel"), rdf.NewLiteral(tc.literal)),
				}},
				Crowd: []CrowdClause{{
					Patterns:     []Pattern{{Triple: rdf.T(rdf.NewVar("x"), iri("hasLabel"), rdf.NewLiteral(tc.literal))}},
					Significance: Significance{Threshold: 0.1},
				}},
			}
			for backend, frag := range tc.want {
				r, err := Emit(backend, p)
				if err != nil {
					t.Errorf("%s: %v", backend, err)
					continue
				}
				if !strings.Contains(r.Query, frag) {
					t.Errorf("%s: rendering lacks escaped literal %s:\n%s", backend, frag, r.Query)
				}
			}
			// The OASSIS-QL rendering must survive a parse round trip with
			// the literal value intact.
			r, err := Emit("oassisql", p)
			if err != nil {
				t.Fatal(err)
			}
			q, err := oassisql.Parse(r.Query)
			if err != nil {
				t.Fatalf("oassisql rendering does not re-parse: %v\n%s", err, r.Query)
			}
			if got := q.Where.Triples[0].O.Value(); got != tc.literal {
				t.Errorf("literal round trip: got %q, want %q", got, tc.literal)
			}
			// The mongo rendering must stay valid JSON.
			rm, err := Emit("mongodb", p)
			if err != nil {
				t.Fatal(err)
			}
			var parsed map[string]any
			if err := json.Unmarshal([]byte(rm.Query), &parsed); err != nil {
				t.Errorf("mongodb rendering is not valid JSON: %v\n%s", err, rm.Query)
			}
		})
	}
}

func TestCapabilityNegotiation(t *testing.T) {
	withFilter := demoPlan()
	withFilter.Filters = []sparql.Expr{&sparql.LitExpr{Val: sparql.BoolVal(true)}}
	for _, name := range []string{"sql", "mongodb", "cypher"} {
		_, err := Emit(name, withFilter)
		var ce *CapabilityError
		if err == nil {
			t.Errorf("%s: filters should exceed capabilities", name)
		} else if !asCapabilityError(err, &ce) || ce.Backend != name {
			t.Errorf("%s: error %v is not a CapabilityError for the backend", name, err)
		}
	}
	if _, err := Emit("oassisql", withFilter); err != nil {
		t.Errorf("oassisql must express filters: %v", err)
	}

	varPred := &Plan{
		Select: Select{All: true},
		Where:  []Pattern{{Triple: rdf.T(rdf.NewVar("x"), rdf.NewVar("p"), iri("Place"))}},
	}
	if _, err := Emit("mongodb", varPred); err == nil {
		t.Error("mongodb: variable predicate should exceed capabilities")
	}
	for _, name := range []string{"oassisql", "sql", "cypher"} {
		if _, err := Emit(name, varPred); err != nil {
			t.Errorf("%s: variable predicate should be expressible: %v", name, err)
		}
	}
}

func asCapabilityError(err error, target **CapabilityError) bool {
	ce, ok := err.(*CapabilityError)
	if ok {
		*target = ce
	}
	return ok
}

func TestEmptyGeneralSelection(t *testing.T) {
	p := &Plan{
		Select: Select{All: true},
		Crowd: []CrowdClause{{
			Patterns:     []Pattern{{Triple: rdf.T(rdf.NewVar("_anon1"), iri("visit"), rdf.NewVar("x"))}},
			Significance: Significance{Threshold: 0.1},
		}},
	}
	for _, b := range All() {
		r, err := b.Emit(p)
		if err != nil {
			t.Errorf("%s: empty WHERE must still emit: %v", b.Name(), err)
			continue
		}
		if r.Query == "" {
			t.Errorf("%s: empty rendering", b.Name())
		}
	}
}

func TestPlanVarsOrderAndAnonSkipped(t *testing.T) {
	p := demoPlan()
	vars := p.Vars()
	if len(vars) != 1 || vars[0] != "x" {
		t.Errorf("Vars() = %v, want [x] (anon skipped)", vars)
	}
	if p.PureGeneral() {
		t.Error("demo plan has crowd clauses")
	}
}
