package emit

import (
	"fmt"

	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// ExternalSource is the minimal contract a pluggable (non-RDF) store
// must satisfy for a plan's general WHERE clause to execute against it:
// enumerate every (s, p, o) row, stopping when the callback returns
// false. The Adapter supplies pattern matching and cardinality counting
// on top, so external stores need no query capabilities of their own —
// a table scan is enough.
type ExternalSource interface {
	Each(fn func(s, p, o rdf.Term) bool)
}

// Adapter lifts an ExternalSource into a sparql.Source (and
// sparql.Counter, so the cardinality-driven join planner works), letting
// the streaming evaluator run a plan's general part against any
// row-shaped store.
type Adapter struct {
	Ext ExternalSource
}

// MatchFunc implements sparql.Source by scanning the external rows and
// keeping those the pattern's concrete positions match.
func (a *Adapter) MatchFunc(pattern rdf.Triple, fn func(rdf.Triple) bool) {
	if a.Ext == nil {
		return
	}
	a.Ext.Each(func(s, p, o rdf.Term) bool {
		if pattern.S.IsConcrete() && !pattern.S.Equal(s) {
			return true
		}
		if pattern.P.IsConcrete() && !pattern.P.Equal(p) {
			return true
		}
		if pattern.O.IsConcrete() && !pattern.O.Equal(o) {
			return true
		}
		return fn(rdf.T(s, p, o))
	})
}

// CountMatch implements sparql.Counter with an exact full-scan count.
func (a *Adapter) CountMatch(pattern rdf.Triple) int {
	n := 0
	a.MatchFunc(pattern, func(rdf.Triple) bool { n++; return true })
	return n
}

// MemTable is an in-memory (s, p, o) row table: the reference
// ExternalSource, used by the cross-backend differential tests as the
// SQL-style `triples` table, and a template for real adapters.
type MemTable struct {
	rows [][3]rdf.Term
}

// Add appends one row.
func (m *MemTable) Add(s, p, o rdf.Term) {
	m.rows = append(m.rows, [3]rdf.Term{s, p, o})
}

// Len returns the number of rows.
func (m *MemTable) Len() int { return len(m.rows) }

// Each implements ExternalSource.
func (m *MemTable) Each(fn func(s, p, o rdf.Term) bool) {
	for _, r := range m.rows {
		if !fn(r[0], r[1], r[2]) {
			return
		}
	}
}

// LoadMemTable copies every triple of a sparql.Source (for example an
// *rdf.Store) into a fresh MemTable — the bulk-export path that stands
// in for an ETL into an external store.
func LoadMemTable(src sparql.Source) *MemTable {
	m := &MemTable{}
	all := rdf.T(rdf.NewVar("s"), rdf.NewVar("p"), rdf.NewVar("o"))
	src.MatchFunc(all, func(t rdf.Triple) bool {
		m.Add(t.S, t.P, t.O)
		return true
	})
	return m
}

// ExecuteWhere evaluates the plan's general part (WHERE patterns +
// filters, plus any analytic step: grouping, aggregates, HAVING and the
// result window) against any source — the in-memory RDF store or an
// Adapter-wrapped external one — and returns the solution bindings.
func ExecuteWhere(p *Plan, src sparql.Source) ([]sparql.Binding, error) {
	if src == nil {
		return nil, fmt.Errorf("emit: nil source")
	}
	q := &sparql.Query{Where: p.WhereTriples(), Filters: p.Filters, Limit: -1}
	if p.Agg != nil {
		q.GroupBy = p.Agg.GroupBy
		q.Aggs = p.Agg.Aggs
		q.Having = p.Agg.Having
		q.OrderBy = p.Agg.OrderBy
		if p.Agg.Limit > 0 {
			q.Limit = p.Agg.Limit
		}
	}
	return sparql.Eval(q, src, nil)
}
