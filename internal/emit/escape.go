package emit

import (
	"strconv"
	"strings"

	"nl2cm/internal/rdf"
)

// Literal escaping, one function per dialect. Ontology entity names and
// question literals flow into rendered queries verbatim, so every
// emitter must neutralize its dialect's metacharacters — a value like
// `O'Hara` or `a\b` must never yield a syntactically invalid (or
// injectable) query. OASSIS-QL itself uses strconv.Quote in
// oassisql.TermString, which the sparql lexer unescapes symmetrically.

// sqlString renders a standard (ANSI) SQL string literal: single-quoted,
// embedded single quotes doubled. ANSI string literals give backslashes
// no special meaning, so `a\b` passes through unchanged.
func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// jsonString renders a JSON string literal for the document-filter
// dialect; strconv.Quote escapes quotes, backslashes and control
// characters in JSON-compatible form.
func jsonString(s string) string {
	return strconv.Quote(s)
}

// cypherString renders a Cypher string literal: single-quoted with
// backslash escapes for backslashes and single quotes.
func cypherString(s string) string {
	var b strings.Builder
	b.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\'':
			b.WriteString(`\'`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('\'')
	return b.String()
}

// surface returns a term's dialect-neutral surface value: the bare local
// name for IRIs (matching the OASSIS-QL surface syntax), the lexical
// form for literals, the name for variables and blanks.
func surface(t rdf.Term) string {
	if t.IsIRI() {
		return t.Local()
	}
	return t.Value()
}

// ident renders a variable name as a dialect identifier, mangling any
// character outside [A-Za-z0-9_] to '_' and prefixing a digit-initial
// name. The pipeline only allocates names like "x"/"x12", so this is a
// guard for hand-built plans.
func ident(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}
