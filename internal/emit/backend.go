package emit

import (
	"fmt"
	"sort"
	"sync"

	"nl2cm/internal/prov"
)

// Caps declares what a backend's dialect can express. Capability
// negotiation works in two tiers: a plan feature a backend cannot
// express degrades with a recorded note when dropping it still yields a
// useful query (crowd clauses on a general-only backend), and fails
// with a *CapabilityError when dropping it would silently change the
// general selection's meaning (filters, variable predicates).
type Caps struct {
	// Crowd: the dialect expresses crowd-mining (SATISFYING) clauses with
	// significance criteria. Backends without it emit the general part
	// only and note the dropped clauses.
	Crowd bool `json:"crowd"`
	// Joins: the dialect natively joins patterns over shared variables.
	// Backends without it emit variable placeholders and note that
	// cross-document links need application-side resolution.
	Joins bool `json:"joins"`
	// Filters: the dialect expresses FILTER expressions over the general
	// selection. Plans with filters fail on backends without it.
	Filters bool `json:"filters"`
	// VarPredicates: the dialect allows a variable in predicate position.
	// Plans with one fail on backends without it.
	VarPredicates bool `json:"varPredicates"`
	// Aggregates: the dialect expresses the plan's analytic part (GROUP
	// BY, aggregate functions, HAVING, result windows). Aggregated plans
	// fail with a *CapabilityError on backends without it — dropping a
	// grouping step would silently turn an analytic answer into a row
	// listing.
	Aggregates bool `json:"aggregates"`
}

// Clause is the provenance of one emitted fragment: which piece of the
// rendered query came from which logical pattern, and from which source
// tokens of the question.
type Clause struct {
	// Fragment is the emitted dialect text for the pattern (one SQL
	// conjunct, one JSON field, one MATCH pattern, one triple line).
	Fragment string `json:"fragment"`
	// Pattern is the logical pattern in neutral (OASSIS-QL surface)
	// syntax, the key into core.Result.Provenance.
	Pattern string `json:"pattern"`
	// Clause locates the pattern: "where" or "satisfying".
	Clause string `json:"clause"`
	// Subclause is the crowd-clause index (-1 for the general part).
	Subclause int `json:"subclause"`
	// Tokens is the source-token set the pattern derives from.
	Tokens prov.TokenSet `json:"tokens,omitempty"`
	// Source is the question excerpt the pattern derives from.
	Source string `json:"source,omitempty"`
}

// Clause location names, shared with the oassisql printer's vocabulary.
const (
	ClauseWhere      = "where"
	ClauseSatisfying = "satisfying"
)

// Rendering is one backend's emission of a plan.
type Rendering struct {
	// Backend is the emitting backend's name.
	Backend string `json:"backend"`
	// Query is the rendered query text.
	Query string `json:"query"`
	// Clauses trace each emitted fragment to its logical pattern and
	// source tokens, in emission order.
	Clauses []Clause `json:"clauses,omitempty"`
	// Notes record capability fallbacks applied during emission (dropped
	// crowd clauses, join placeholders).
	Notes []string `json:"notes,omitempty"`
}

// Backend renders plans into one concrete query dialect. Implementations
// must be safe for concurrent use; the shipped ones are stateless.
type Backend interface {
	// Name is the backend's registry key ("oassisql", "sql", ...).
	Name() string
	// Caps declares what the dialect can express.
	Caps() Caps
	// Emit renders the plan. It returns a *CapabilityError when the plan
	// needs a capability the dialect lacks and dropping it would change
	// the general selection's meaning.
	Emit(p *Plan) (*Rendering, error)
}

// CapabilityError reports that a plan exceeds a backend's capabilities
// and no lossy-but-useful fallback exists. Callers typically fall back
// to the OASSIS-QL backend, which expresses every plan.
type CapabilityError struct {
	// Backend is the refusing backend's name.
	Backend string
	// Feature names the unsupported plan feature.
	Feature string
}

// Error implements error.
func (e *CapabilityError) Error() string {
	return fmt.Sprintf("emit: backend %q cannot express %s", e.Backend, e.Feature)
}

// DefaultBackend is the name of the backend every plan can render to.
const DefaultBackend = "oassisql"

// registry holds the registered backends by name.
var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend under its name, replacing any previous
// registration. The four shipped backends self-register.
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[b.Name()] = b
}

// Lookup returns the named backend.
func Lookup(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Names returns the registered backend names, the default backend first,
// the rest sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var rest []string
	for name := range registry {
		if name != DefaultBackend {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	out := make([]string, 0, len(rest)+1)
	if _, ok := registry[DefaultBackend]; ok {
		out = append(out, DefaultBackend)
	}
	return append(out, rest...)
}

// All returns the registered backends in Names order.
func All() []Backend {
	names := Names()
	out := make([]Backend, 0, len(names))
	regMu.RLock()
	defer regMu.RUnlock()
	for _, name := range names {
		out = append(out, registry[name])
	}
	return out
}

// Emit renders the plan with the named backend.
func Emit(name string, p *Plan) (*Rendering, error) {
	b, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("emit: unknown backend %q (have %v)", name, Names())
	}
	return b.Emit(p)
}

func init() {
	Register(OassisBackend{})
	Register(SQLBackend{})
	Register(MongoBackend{})
	Register(CypherBackend{})
}
