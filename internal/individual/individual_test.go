package individual

import (
	"context"
	"strings"
	"testing"

	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/qgen"
	"nl2cm/internal/rdf"
)

// pipeline runs parse -> detect -> generate -> create for a sentence.
func pipeline(t *testing.T, sentence string) (*nlp.DepGraph, []Part) {
	t.Helper()
	g, err := nlp.Parse(sentence)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	det := ix.NewDetector()
	ixs, err := det.Detect(context.Background(), g)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	gen := qgen.New(ontology.NewDemoOntology())
	res, err := gen.Generate(context.Background(), g, qgen.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	parts, err := (&Creator{}).Create(context.Background(), g, ixs, res)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return g, parts
}

// render flattens parts to OASSIS-QL triple strings.
func render(parts []Part) []string {
	var out []string
	for _, p := range parts {
		for _, tr := range p.Triples {
			out = append(out, oassisql.TermString(tr.S)+" "+oassisql.TermString(tr.P)+" "+oassisql.TermString(tr.O))
		}
	}
	return out
}

func contains(lines []string, want string) bool {
	for _, l := range lines {
		if l == want {
			return true
		}
	}
	return false
}

func TestRunningExampleParts(t *testing.T) {
	_, parts := pipeline(t, "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?")
	if len(parts) != 2 {
		t.Fatalf("got %d parts, want 2: %v", len(parts), render(parts))
	}
	lines := render(parts)
	// Figure 1's SATISFYING triples.
	for _, want := range []string{
		`$x hasLabel "interesting"`,
		`[] visit $x`,
		`[] in Fall`,
	} {
		if !contains(lines, want) {
			t.Errorf("missing triple %q in %v", want, lines)
		}
	}
	// The opinion part is superlative ("most interesting"), the habit is
	// not.
	if !parts[0].Superlative {
		t.Error("interesting part not marked superlative")
	}
	if parts[1].Superlative {
		t.Error("visit part wrongly superlative")
	}
	// "should" must not appear anywhere (paper footnote 2).
	for _, l := range lines {
		if strings.Contains(l, "should") {
			t.Errorf("modal leaked into triples: %q", l)
		}
	}
}

func TestAnonymousVariablesDistinct(t *testing.T) {
	_, parts := pipeline(t, "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?")
	var habit Part
	for _, p := range parts {
		if p.Habit {
			habit = p
		}
	}
	if len(habit.Triples) != 2 {
		t.Fatalf("habit part has %d triples: %v", len(habit.Triples), render(parts))
	}
	s0, s1 := habit.Triples[0].S, habit.Triples[1].S
	if !oassisql.IsAnonVar(s0.Value()) || !oassisql.IsAnonVar(s1.Value()) {
		t.Fatalf("subjects not anonymous: %v %v", s0, s1)
	}
	if s0.Equal(s1) {
		t.Error("the two [] subjects share a variable; Figure 1 has distinct ones")
	}
}

func TestNamedSubjectKept(t *testing.T) {
	// "Obama should visit Buffalo" — Obama is not an individual
	// participant and must remain the subject.
	g, parts := pipeline(t, "Obama should visit Buffalo.")
	if len(parts) != 1 {
		t.Fatalf("got %d parts: %v", len(parts), render(parts))
	}
	tr := parts[0].Triples[0]
	if oassisql.IsAnonVar(tr.S.Value()) {
		t.Errorf("Obama projected out: %v", render(parts))
	}
	_ = g
}

func TestParticipantProjectedOut(t *testing.T) {
	_, parts := pipeline(t, "Where do you visit in Buffalo?")
	lines := render(parts)
	for _, l := range lines {
		if strings.Contains(l, "you") {
			t.Errorf("participant leaked: %q", l)
		}
	}
	// the answer variable exists
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "[] visit $") {
		t.Errorf("no visit triple with answer variable: %v", lines)
	}
	if !strings.Contains(joined, "[] in Buffalo,_NY") {
		t.Errorf("no Buffalo modifier triple: %v", lines)
	}
}

func TestPredicateAdjective(t *testing.T) {
	_, parts := pipeline(t, "Is chocolate milk good for kids?")
	lines := render(parts)
	if !contains(lines, `Chocolate_Milk hasLabel "good"`) {
		t.Errorf("missing hasLabel triple: %v", lines)
	}
	if !contains(lines, `Chocolate_Milk for Kids`) {
		t.Errorf("missing prep complement triple: %v", lines)
	}
}

func TestSuperlativeBest(t *testing.T) {
	_, parts := pipeline(t, "Which hotel in Vegas has the best thrill ride?")
	if len(parts) != 1 {
		t.Fatalf("got %d parts: %v", len(parts), render(parts))
	}
	if !parts[0].Superlative {
		t.Error("'best' part not superlative")
	}
	lines := render(parts)
	if !contains(lines, `$y hasLabel "good"`) {
		t.Errorf("lines = %v", lines)
	}
}

func TestFrontedObjectVerb(t *testing.T) {
	_, parts := pipeline(t, "What type of digital camera should I buy?")
	lines := render(parts)
	if !contains(lines, "[] buy $x") {
		t.Errorf("lines = %v", lines)
	}
}

func TestXCompVerb(t *testing.T) {
	_, parts := pipeline(t, "Which souvenirs do you want to buy in Buffalo?")
	lines := render(parts)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "buy") {
		t.Errorf("xcomp action missing: %v", lines)
	}
	if strings.Contains(joined, "want") {
		t.Errorf("matrix verb leaked as predicate: %v", lines)
	}
}

func TestDescriptionsPresent(t *testing.T) {
	_, parts := pipeline(t, "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?")
	for _, p := range parts {
		if p.Description == "" {
			t.Errorf("part has no description: %v", render([]Part{p}))
		}
	}
	// the habit description mentions the temporal modifier (Figure 5:
	// "visit in the fall")
	found := false
	for _, p := range parts {
		if p.Habit && strings.Contains(p.Description, "fall") {
			found = true
		}
	}
	if !found {
		t.Error("habit description does not mention the fall")
	}
}

func TestVariableAlignmentWithGeneralPart(t *testing.T) {
	// The variable in {[] visit $x} must be the same $x as in the WHERE
	// triples (paper §2.6 variable alignment).
	g, err := nlp.Parse("What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?")
	if err != nil {
		t.Fatal(err)
	}
	det := ix.NewDetector()
	ixs, _ := det.Detect(context.Background(), g)
	gen := qgen.New(ontology.NewDemoOntology())
	res, _ := gen.Generate(context.Background(), g, qgen.Options{})
	parts, err := (&Creator{}).Create(context.Background(), g, ixs, res)
	if err != nil {
		t.Fatal(err)
	}
	var habitObj rdf.Term
	for _, p := range parts {
		for _, tr := range p.Triples {
			if tr.P.Local() == "visit" {
				habitObj = tr.O
			}
		}
	}
	if habitObj.Value() != res.TargetVar {
		t.Errorf("visit object = %v, target var = %s", habitObj, res.TargetVar)
	}
}

func TestEmptyIXListYieldsNoParts(t *testing.T) {
	g, err := nlp.Parse("Which parks are in Buffalo?")
	if err != nil {
		t.Fatal(err)
	}
	gen := qgen.New(ontology.NewDemoOntology())
	res, _ := gen.Generate(context.Background(), g, qgen.Options{})
	parts, err := (&Creator{}).Create(context.Background(), g, nil, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 0 {
		t.Errorf("parts = %v", render(parts))
	}
}

func TestTourGuideStaysVariable(t *testing.T) {
	// §4.1: "a tour guide" must remain a variable so the user can choose
	// to receive the guide's name.
	_, parts := pipeline(t, "What are the most interesting places we should visit with a tour guide?")
	lines := render(parts)
	found := false
	for _, l := range lines {
		if strings.HasPrefix(l, "[] with $") {
			found = true
		}
	}
	if !found {
		t.Errorf("tour guide not a variable: %v", lines)
	}
}

func TestBareNounDowngradedToTerm(t *testing.T) {
	// "for breakfast" (no determiner, not in the ontology) becomes a
	// crowd-facing bare term, not an open variable.
	_, parts := pipeline(t, "What do you eat for breakfast?")
	lines := render(parts)
	if !contains(lines, "[] for breakfast") {
		t.Errorf("lines = %v", lines)
	}
}

func TestIntransitiveHabit(t *testing.T) {
	_, parts := pipeline(t, "How often do you exercise in the winter?")
	lines := render(parts)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "exercise") {
		t.Errorf("no exercise triple: %v", lines)
	}
	if !strings.Contains(joined, "[] in Winter") {
		t.Errorf("no winter modifier: %v", lines)
	}
}

func TestPredicateNominalOpinion(t *testing.T) {
	// "Is oatmeal a good breakfast for adults?" — the opinion is about
	// oatmeal, labeled with the predicate phrase.
	_, parts := pipeline(t, "Is oatmeal a good breakfast for adults?")
	lines := render(parts)
	if !contains(lines, `Oatmeal hasLabel "good breakfast"`) {
		t.Errorf("lines = %v", lines)
	}
	if !contains(lines, "Oatmeal for Adults") {
		t.Errorf("lines = %v", lines)
	}
}

func TestWhObjectBecomesTarget(t *testing.T) {
	g, err := nlp.Parse("What do you eat for breakfast?")
	if err != nil {
		t.Fatal(err)
	}
	det := ix.NewDetector()
	ixs, _ := det.Detect(context.Background(), g)
	gen := qgen.New(ontology.NewDemoOntology())
	res, _ := gen.Generate(context.Background(), g, qgen.Options{})
	if _, err := (&Creator{}).Create(context.Background(), g, ixs, res); err != nil {
		t.Fatal(err)
	}
	if res.TargetVar == "" {
		t.Error("wh-object did not become the target variable")
	}
}

func TestPostNominalAdjective(t *testing.T) {
	_, parts := pipeline(t, "Which dishes are rich in fiber and tasty in the winter?")
	// At minimum this must not panic and must keep any produced triples
	// well-formed.
	for _, p := range parts {
		if len(p.Triples) == 0 {
			t.Error("empty part produced")
		}
	}
}

func TestCoordinatedObjects(t *testing.T) {
	// "We visit parks and museums": the coordinated object joins the
	// same data pattern.
	_, parts := pipeline(t, "We visit parks and museums in the summer.")
	lines := render(parts)
	joined := strings.Join(lines, "\n")
	visits := strings.Count(joined, " visit ")
	if visits < 2 {
		t.Errorf("conjunct object dropped: %v", lines)
	}
}
