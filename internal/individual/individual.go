// Package individual implements NL2CM's Individual Triple Creation module
// (paper §2.5): translating completed IXs into OASSIS-QL triples. Unlike
// the General Query Generator, it cannot align request parts with the
// ontology (individual data is unrecorded); instead, a mapping from
// grammatical patterns within the IXs produces query triples:
//
//   - a verb with an individual subject maps to {[] <verb> $obj} — the
//     participant is projected out as "[]" so answers of different crowd
//     members about the same habit aggregate (paper's "places we should
//     visit" -> {[] visit $x});
//   - modal auxiliaries are dropped ("should" does not appear in the
//     query: the SATISFYING clause already denotes individual data,
//     paper footnote 2);
//   - prepositional phrases of the verb map to their own triples with a
//     fresh anonymous subject ({[] in Fall});
//   - an opinion adjective maps to a label triple on the noun it
//     qualifies ({$x hasLabel "interesting"}).
package individual

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/prov"
	"nl2cm/internal/qgen"
	"nl2cm/internal/rdf"
)

// HasLabelPred is the OASSIS-QL predicate connecting an entity to a
// crowd-judged label (Figure 1, line 6).
var HasLabelPred = rdf.NewIRI("hasLabel")

// Part is the translation of one IX: the triples of one SATISFYING
// subclause plus the metadata the composer needs.
type Part struct {
	// IX is the source expression.
	IX *ix.IX
	// Triples form the subclause's data pattern.
	Triples []rdf.Triple
	// Origins records, parallel to Triples, the source-token set each
	// triple derives from.
	Origins []prov.TokenSet
	// Description is a short human phrase for significance dialogues
	// ("visit in the fall", Figure 5).
	Description string
	// Superlative marks parts born from superlative opinions ("most
	// interesting", "best"), which take a top-k selection rather than a
	// support threshold.
	Superlative bool
	// Habit distinguishes habit frequency questions from opinion
	// agreement questions when generating crowd tasks.
	Habit bool
	// Majority marks habits whose participant subject carries a
	// majority quantifier ("what do most people eat"): the crowd
	// criterion is a half-support threshold, not the default.
	Majority bool
}

// add appends a triple with its source-token provenance.
func (p *Part) add(t rdf.Triple, origin prov.TokenSet) {
	p.Triples = append(p.Triples, t)
	p.Origins = append(p.Origins, origin)
}

// Creator maps IXs to individual query parts. Anonymous "[]" variables
// are allocated from the shared query result so names never collide.
type Creator struct{}

// anonCounter allocates fresh anonymous variables per query.
type anonCounter struct{ n int }

func (a *anonCounter) next() rdf.Term {
	a.n++
	return rdf.NewVar(fmt.Sprintf("_anon%d", a.n))
}

// Create translates the IXs, resolving noun tokens through the general
// generator's result so that shared terms reuse the same variable.
// Cancellation is honored between IXs.
func (c *Creator) Create(ctx context.Context, g *nlp.DepGraph, ixs []*ix.IX, general *qgen.Result) ([]Part, error) {
	anon := &anonCounter{}
	var parts []Part
	// Deterministic order: by anchor position.
	sorted := append([]*ix.IX(nil), ixs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Anchor < sorted[j].Anchor })
	for _, x := range sorted {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var p Part
		var err error
		anchor := &g.Nodes[x.Anchor]
		// A participial opinion predicate ("is overrated") behaves like
		// an adjective: lexical-only, with a passive auxiliary.
		participialOpinion := strings.HasPrefix(anchor.POS, "VB") &&
			x.HasType(ix.TypeLexical) && len(x.Types) == 1 &&
			g.FirstDependent(x.Anchor, nlp.RelAuxPass) >= 0
		switch {
		case strings.HasPrefix(anchor.POS, "JJ") || participialOpinion:
			p, err = c.adjectivePart(g, x, general)
		case strings.HasPrefix(anchor.POS, "VB"):
			p, err = c.verbPart(g, x, general, anon)
		default:
			err = fmt.Errorf("individual: IX anchored at unsupported POS %s (%q)", anchor.POS, anchor.Text)
		}
		if err != nil {
			return nil, err
		}
		if len(p.Triples) > 0 {
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// nounTerm resolves a noun node to its query term: the general
// generator's resolution if present, otherwise a fresh variable recorded
// back into the result.
func nounTerm(n int, general *qgen.Result) rdf.Term {
	if t, ok := general.NodeTerms[n]; ok && t != (rdf.Term{}) {
		return t
	}
	v := rdf.NewVar(general.FreshVar())
	general.NodeTerms[n] = v
	return v
}

// groundedTerm resolves a noun inside an individual pattern. A bare
// common noun whose variable the ontology could not ground at all
// ("breakfast", "locals") is downgraded to a crowd-facing term ({[] for
// breakfast}) rather than an open variable, which would force pointless
// open mining. Wh-tokens, grounded variables, and determined nouns ("a
// tour guide" — paper §4.1: the user may want the guide's name, so it
// must stay projectable) remain variables.
func groundedTerm(g *nlp.DepGraph, n int, general *qgen.Result) rdf.Term {
	t := nounTerm(n, general)
	if !t.IsVar() || t.Value() == general.TargetVar {
		return t
	}
	if strings.HasPrefix(g.Nodes[n].POS, "W") {
		return t
	}
	if g.FirstDependent(n, nlp.RelDet) >= 0 {
		return t // "a tour guide": an individual, projectable referent
	}
	for _, tr := range general.Triples {
		if tr.S.Equal(t) || tr.O.Equal(t) {
			return t // the variable is ontology-grounded
		}
	}
	bare := rdf.NewIRI(g.Nodes[n].Lemma)
	general.NodeTerms[n] = bare
	return bare
}

// adjectivePart maps an opinion adjective to {<noun> hasLabel "<lemma>"}
// plus one triple per prepositional complement of the adjective.
func (c *Creator) adjectivePart(g *nlp.DepGraph, x *ix.IX, general *qgen.Result) (Part, error) {
	anchor := &g.Nodes[x.Anchor]
	noun := adjectiveNoun(g, x.Anchor)
	if noun < 0 {
		return Part{}, fmt.Errorf("individual: opinion adjective %q qualifies no noun", anchor.Text)
	}
	label := anchor.Lemma
	if strings.HasPrefix(anchor.POS, "VB") {
		label = anchor.Lower // participial opinion: "overrated"
	}
	labelTokens := prov.NewTokenSet(x.Anchor)
	prepHost := x.Anchor
	// Predicate nominal: "Is oatmeal a good breakfast for adults?" — the
	// opinion is about the copular subject (oatmeal), labeled with the
	// whole predicate phrase ("good breakfast"); the predicate noun's
	// PPs join the pattern.
	if g.FirstDependent(noun, nlp.RelCop) >= 0 {
		if subj := g.FirstDependent(noun, nlp.RelNSubj); subj >= 0 && subj != noun {
			label = anchor.Lemma + " " + g.Nodes[noun].Lemma
			labelTokens = labelTokens.Add(noun)
			prepHost = noun
			noun = subj
		}
	}
	nt := nounTerm(noun, general)
	p := Part{
		IX:          x,
		Superlative: isSuperlative(g, x.Anchor),
		Description: fmt.Sprintf("%s %s", anchor.Text, g.Nodes[noun].Text),
	}
	p.add(rdf.T(nt, HasLabelPred, rdf.NewLiteral(label)), labelTokens.Add(noun))
	for _, prep := range g.Dependents(prepHost, nlp.RelPrep) {
		pobj := g.FirstDependent(prep, nlp.RelPObj)
		if pobj < 0 {
			continue
		}
		ot := groundedTerm(g, pobj, general)
		p.add(rdf.T(nt, rdf.NewIRI(g.Nodes[prep].Lemma), ot), prov.NewTokenSet(noun, prep, pobj))
		p.Description += " " + g.SubtreePhrase(prep)
	}
	return p, nil
}

// adjectiveNoun finds the noun an adjective qualifies: its amod head, its
// subject, or its attributive wh-complement's antecedent.
func adjectiveNoun(g *nlp.DepGraph, adj int) int {
	n := &g.Nodes[adj]
	if n.Rel == nlp.RelAMod && n.Head >= 0 {
		return n.Head
	}
	if s := g.FirstDependent(adj, nlp.RelNSubj); s >= 0 {
		return s
	}
	if a := g.FirstDependent(adj, nlp.RelAttr); a >= 0 {
		return a
	}
	// post-nominal: "dishes rich in fiber"
	if adj > 0 && strings.HasPrefix(g.Nodes[adj-1].POS, "NN") {
		return adj - 1
	}
	return -1
}

// isSuperlative reports whether the adjective carries superlative force:
// a JJS tag or an RBS modifier ("most interesting", "best").
func isSuperlative(g *nlp.DepGraph, adj int) bool {
	if g.Nodes[adj].POS == "JJS" {
		return true
	}
	for _, d := range g.Dependents(adj, nlp.RelAdvMod) {
		if g.Nodes[d].POS == "RBS" {
			return true
		}
	}
	return false
}

// verbPart maps a habit/recommendation verb to {[] <verb> $obj} with one
// extra triple per prepositional phrase.
func (c *Creator) verbPart(g *nlp.DepGraph, x *ix.IX, general *qgen.Result, anon *anonCounter) (Part, error) {
	p := Part{IX: x, Habit: true}

	// Subject: individual participants are projected out as []; named
	// third parties keep their term ("Obama should visit Buffalo").
	subj := g.FirstDependent(x.Anchor, nlp.RelNSubj)
	var subjTerm rdf.Term
	subjNamed := subj >= 0 && !isParticipantNode(g, subj) && strings.HasPrefix(g.Nodes[subj].POS, "NN")
	if subjNamed {
		subjTerm = nounTerm(subj, general)
	} else {
		subjTerm = anon.next()
		p.Majority = isMajority(g, x.Anchor, subj)
	}

	// The verb itself becomes the predicate; an xcomp verb ("want to
	// buy") contributes the real action.
	verb := x.Anchor
	if xc := g.FirstDependent(x.Anchor, nlp.RelXComp); xc >= 0 && x.Contains(xc) {
		verb = xc
	}
	pred := rdf.NewIRI(g.Nodes[verb].Lemma)

	// Object: direct object (tree or gap-filling extra edge), else a
	// fresh variable when the question asks "where/what" about the verb.
	obj := g.FirstDependent(verb, nlp.RelDObj)
	if obj < 0 {
		for _, d := range g.DependentsAll(verb, nlp.RelDObj) {
			obj = d
			break
		}
	}
	if obj < 0 && verb != x.Anchor {
		// object of the matrix verb ("places we want to visit")
		for _, d := range g.DependentsAll(x.Anchor, nlp.RelDObj) {
			obj = d
			break
		}
	}
	var objTerm rdf.Term
	switch {
	case obj >= 0:
		objTerm = nounTerm(obj, general)
		// A fronted wh-object ("What do you eat?") is the question's
		// focus when nothing else claimed it.
		if strings.HasPrefix(g.Nodes[obj].POS, "W") && general.TargetVar == "" && objTerm.IsVar() {
			general.TargetVar = objTerm.Value()
		}
	case hasWhAdverb(g, x.Anchor):
		// "Where do you visit?" — the asked-about thing is the answer
		// variable.
		v := rdf.NewVar(general.FreshVar())
		if general.TargetVar == "" {
			general.TargetVar = v.Value()
		}
		objTerm = v
	default:
		objTerm = rdf.Term{}
	}

	// The main triple derives from the anchor, the action verb, and any
	// subject/object tokens it binds.
	mainTokens := prov.NewTokenSet(x.Anchor, verb)
	if subjNamed {
		mainTokens = mainTokens.Add(subj)
	}
	if objTerm != (rdf.Term{}) {
		if obj >= 0 {
			mainTokens = mainTokens.Add(obj)
		}
		p.add(rdf.T(subjTerm, pred, objTerm), mainTokens)
		// Coordinated objects join the same data pattern: "we visit
		// parks and museums" asks about the combined habit.
		if obj >= 0 {
			for _, conj := range g.Dependents(obj, nlp.RelConj) {
				ct := groundedTerm(g, conj, general)
				p.add(rdf.T(anon.next(), pred, ct), prov.NewTokenSet(verb, conj))
			}
		}
	} else {
		// Intransitive habit ("how often do you exercise"): the verb
		// itself is the pattern, with an anonymous object slot omitted.
		p.add(rdf.T(subjTerm, pred, anon.next()), mainTokens)
	}

	// Prepositional phrases of the verb: {[] in Fall}.
	for _, prep := range g.Dependents(x.Anchor, nlp.RelPrep) {
		pobj := g.FirstDependent(prep, nlp.RelPObj)
		if pobj < 0 {
			continue
		}
		ot := groundedTerm(g, pobj, general)
		p.add(rdf.T(anon.next(), rdf.NewIRI(g.Nodes[prep].Lemma), ot), prov.NewTokenSet(prep, pobj))
	}

	p.Description = describeVerbPart(g, x, verb)
	return p, nil
}

// isParticipantNode reports whether the subject token denotes an
// individual participant (first/second person or generic people), which
// is projected out of the query.
func isParticipantNode(g *nlp.DepGraph, n int) bool {
	node := &g.Nodes[n]
	if node.POS == "PRP" || node.POS == "PRP$" {
		return true
	}
	switch node.Lemma {
	case "person", "one", "everyone", "everybody", "anyone", "anybody",
		"someone", "somebody", "folk", "local", "friend", "family",
		"parent", "kid", "child", "guy", "visitor", "tourist", "traveler",
		"resident":
		return true
	}
	return false
}

// isMajority reports whether the habit's participant subject carries a
// majority quantifier ("what do most people eat"): a superlative
// quantity quantifier immediately preceding the subject, attached to
// the verb (the common parse: "most" RBS advmod) or to the subject
// noun itself.
func isMajority(g *nlp.DepGraph, verb, subj int) bool {
	if subj < 0 {
		return false
	}
	quantifier := func(m int) bool {
		if m < 0 || m+1 != subj {
			return false
		}
		n := &g.Nodes[m]
		if n.POS != "RBS" && n.POS != "JJS" {
			return false
		}
		return n.Lemma == "many" || n.Lemma == "much"
	}
	for _, d := range g.Dependents(verb, nlp.RelAdvMod) {
		if quantifier(d) {
			return true
		}
	}
	for _, rel := range []string{nlp.RelAMod, nlp.RelDet} {
		for _, d := range g.Dependents(subj, rel) {
			if quantifier(d) {
				return true
			}
		}
	}
	return false
}

// hasWhAdverb reports whether the verb carries a wh-adverb dependent
// ("where", "when").
func hasWhAdverb(g *nlp.DepGraph, v int) bool {
	for _, d := range g.Dependents(v, nlp.RelAdvMod) {
		if strings.HasPrefix(g.Nodes[d].POS, "W") {
			return true
		}
	}
	return false
}

// describeVerbPart phrases the part for the significance dialogue:
// "visit in the fall".
func describeVerbPart(g *nlp.DepGraph, x *ix.IX, verb int) string {
	parts := []string{g.Nodes[verb].Lemma}
	for _, prep := range g.Dependents(x.Anchor, nlp.RelPrep) {
		parts = append(parts, g.SubtreePhrase(prep))
	}
	return strings.Join(parts, " ")
}
