package nlp

import "strings"

// irregularVerbs maps inflected forms to their base form.
var irregularVerbs = map[string]string{
	"am": "be", "is": "be", "are": "be", "was": "be", "were": "be",
	"been": "be", "being": "be", "'m": "be", "'re": "be",
	"has": "have", "had": "have", "having": "have", "'ve": "have",
	"does": "do", "did": "do", "done": "do", "doing": "do",
	"went": "go", "gone": "go", "goes": "go", "going": "go",
	"ate": "eat", "eaten": "eat", "drank": "drink", "drunk": "drink",
	"bought": "buy", "sold": "sell", "made": "make", "took": "take",
	"taken": "take", "gave": "give", "given": "give", "got": "get",
	"gotten": "get", "found": "find", "told": "tell", "said": "say",
	"saw": "see", "seen": "see", "came": "come", "knew": "know",
	"known": "know", "thought": "think", "paid": "pay", "kept": "keep",
	"left": "leave", "met": "meet", "ran": "run", "sat": "sit",
	"slept": "sleep", "spoke": "speak", "spoken": "speak",
	"spent": "spend", "stood": "stand", "swam": "swim", "wore": "wear",
	"wrote": "write", "written": "write", "chose": "choose",
	"chosen": "choose", "drove": "drive", "driven": "drive",
	"felt": "feel", "flew": "fly", "flown": "fly", "grew": "grow",
	"grown": "grow", "heard": "hear", "held": "hold", "lost": "lose",
	"read": "read", "rode": "ride", "ridden": "ride", "sent": "send",
	"brought": "bring", "built": "build", "caught": "catch",
	"taught": "teach", "booked": "book", "ca": "can", "wo": "will",
	"sha": "shall", "'ll": "will", "'d": "would", "n't": "not",
}

// irregularNouns maps irregular plurals to singulars.
var irregularNouns = map[string]string{
	"children": "child", "people": "person", "men": "man",
	"women": "woman", "feet": "foot", "teeth": "tooth", "mice": "mouse",
	"geese": "goose", "oxen": "ox", "dice": "die", "lives": "life",
	"wives": "wife", "knives": "knife", "leaves": "leaf",
	"shelves": "shelf", "cities": "city", "countries": "country",
	"activities": "activity", "families": "family", "parties": "party",
	"buses": "bus", "dishes": "dish", "beaches": "beach",
	"sandwiches": "sandwich", "watches": "watch", "boxes": "box",
	"glasses": "glass", "churches": "church",
}

// doubledConsonantStems lists verb stems whose final consonant doubles in
// inflection, so "stopped" lemmatizes to "stop" not "stopp".
var doubledConsonantStems = map[string]bool{
	"stop": true, "plan": true, "shop": true, "travel": true,
	"prefer": true, "swim": true, "run": true, "sit": true, "get": true,
	"jog": true, "chat": true, "drop": true, "grab": true, "trip": true,
}

// Lemma returns the dictionary form of a lower-cased word given its POS
// tag. Unknown regular forms are handled by suffix stripping.
func Lemma(lower, pos string) string {
	switch {
	case strings.HasPrefix(pos, "V") || pos == "MD":
		if base, ok := irregularVerbs[lower]; ok {
			return base
		}
		return verbLemma(lower, pos)
	case pos == "NNS" || pos == "NNPS":
		if base, ok := irregularNouns[lower]; ok {
			return base
		}
		return nounLemma(lower)
	case pos == "JJR" || pos == "RBR":
		return stripComparative(lower, "er")
	case pos == "JJS" || pos == "RBS":
		return stripComparative(lower, "est")
	case pos == "RB":
		if base, ok := irregularVerbs[lower]; ok { // n't -> not
			return base
		}
		return lower
	default:
		if base, ok := irregularNouns[lower]; ok {
			return base
		}
		return lower
	}
}

func verbLemma(w, pos string) string {
	switch pos {
	case "VBZ":
		return nounLemma(w) // third-person -s strips like plural -s
	case "VBG":
		if strings.HasSuffix(w, "ing") && len(w) > 4 {
			return restoreStem(w[:len(w)-3])
		}
	case "VBD", "VBN":
		if strings.HasSuffix(w, "ied") && len(w) > 4 {
			return w[:len(w)-3] + "y"
		}
		if strings.HasSuffix(w, "ed") && len(w) > 3 {
			return restoreStem(w[:len(w)-2])
		}
	}
	return w
}

// restoreStem recovers the base verb from an inflection stem: it prefers
// lexicon-confirmed forms (stem, stem+"e", undoubled stem) and falls back
// to a silent-e heuristic.
func restoreStem(stem string) string {
	if hasTag(stem, "VB") || hasTag(stem, "VBP") {
		return stem
	}
	if hasTag(stem+"e", "VB") || hasTag(stem+"e", "VBP") {
		return stem + "e"
	}
	if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] {
		undoubled := stem[:len(stem)-1]
		if doubledConsonantStems[undoubled] || hasTag(undoubled, "VB") || hasTag(undoubled, "VBP") {
			return undoubled
		}
	}
	if needsSilentE(stem) {
		return stem + "e"
	}
	return stem
}

// needsSilentE guesses whether a stripped stem originally ended in a
// silent e ("mak" -> "make", "stor" -> "store").
func needsSilentE(stem string) bool {
	if len(stem) < 2 {
		return false
	}
	last := stem[len(stem)-1]
	prev := stem[len(stem)-2]
	isVowel := func(c byte) bool { return strings.IndexByte("aeiou", c) >= 0 }
	// consonant preceded by a single vowel preceded by consonant: make,
	// store, bake, ride...
	if !isVowel(last) && last != 'w' && last != 'x' && last != 'y' &&
		isVowel(prev) && len(stem) >= 3 && !isVowel(stem[len(stem)-3]) {
		return true
	}
	// -iv, -at, -iz endings: motivate, organize.
	for _, suf := range []string{"iv", "at", "iz", "us"} {
		if strings.HasSuffix(stem, suf) {
			return true
		}
	}
	return false
}

func nounLemma(w string) string {
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "ses") ||
		strings.HasSuffix(w, "zes") || strings.HasSuffix(w, "ches") ||
		strings.HasSuffix(w, "shes"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "ss"):
		return w
	case strings.HasSuffix(w, "s") && len(w) > 2:
		return w[:len(w)-1]
	default:
		return w
	}
}

func stripComparative(w, suffix string) string {
	switch w {
	case "better", "best":
		return "good"
	case "worse", "worst":
		return "bad"
	case "more", "most":
		return "many"
	case "less", "least":
		return "little"
	}
	if strings.HasSuffix(w, suffix) && len(w) > len(suffix)+2 {
		stem := w[:len(w)-len(suffix)]
		if strings.HasSuffix(stem, "i") {
			return stem[:len(stem)-1] + "y" // easier -> easy
		}
		if len(stem) > 2 && stem[len(stem)-1] == stem[len(stem)-2] {
			return stem[:len(stem)-1] // bigger -> big
		}
		return stem
	}
	return w
}
