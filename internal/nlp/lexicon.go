package nlp

// lexicon maps lower-case surface forms to their possible Penn Treebank
// tags, most likely first. Closed classes (pronouns, determiners,
// prepositions, conjunctions, modals, wh-words) are enumerated
// exhaustively; open classes carry the vocabulary of the paper's demo
// domains (travel, food, shopping, health) plus common question English.
// Words not listed are tagged by the morphological rules in postag.go.
var lexicon = map[string][]string{
	// ---- Wh-words ----
	"what": {"WP", "WDT"}, "who": {"WP"}, "whom": {"WP"},
	"whose": {"WP$"}, "which": {"WDT"}, "where": {"WRB"},
	"when": {"WRB"}, "why": {"WRB"}, "how": {"WRB"},

	// ---- Personal pronouns ----
	"i": {"PRP"}, "you": {"PRP"}, "he": {"PRP"}, "she": {"PRP"},
	"it": {"PRP"}, "we": {"PRP"}, "they": {"PRP"}, "me": {"PRP"},
	"him": {"PRP"}, "her": {"PRP$", "PRP"}, "us": {"PRP"}, "them": {"PRP"},
	"myself": {"PRP"}, "yourself": {"PRP"}, "himself": {"PRP"},
	"herself": {"PRP"}, "itself": {"PRP"}, "ourselves": {"PRP"},
	"yourselves": {"PRP"}, "themselves": {"PRP"}, "oneself": {"PRP"},
	"someone": {"NN"}, "anyone": {"NN"}, "everyone": {"NN"},
	"somebody": {"NN"}, "anybody": {"NN"}, "everybody": {"NN"},
	"something": {"NN"}, "anything": {"NN"}, "everything": {"NN"},
	"nothing": {"NN"}, "one": {"CD", "PRP"},

	// ---- Possessive pronouns ----
	"my": {"PRP$"}, "your": {"PRP$"}, "his": {"PRP$"}, "its": {"PRP$"},
	"our": {"PRP$"}, "their": {"PRP$"}, "mine": {"PRP"}, "yours": {"PRP"},
	"ours": {"PRP"}, "theirs": {"PRP"},

	// ---- Determiners ----
	"the": {"DT"}, "a": {"DT"}, "an": {"DT"}, "this": {"DT"},
	"that": {"DT", "IN", "WDT"}, "these": {"DT"}, "those": {"DT"},
	"each": {"DT"}, "every": {"DT"}, "either": {"DT"}, "neither": {"DT"},
	"some": {"DT"}, "any": {"DT"}, "no": {"DT"}, "all": {"DT", "PDT"},
	"both": {"DT"}, "another": {"DT"}, "such": {"JJ", "PDT"},
	"many": {"JJ"}, "much": {"JJ", "RB"}, "few": {"JJ"}, "several": {"JJ"},
	"most": {"RBS", "JJS"}, "more": {"RBR", "JJR"}, "less": {"RBR", "JJR"},
	"least": {"RBS", "JJS"}, "enough": {"JJ", "RB"},

	// ---- Modal auxiliaries ----
	"can": {"MD"}, "could": {"MD"}, "may": {"MD"}, "might": {"MD"},
	"must": {"MD"}, "shall": {"MD"}, "should": {"MD"}, "will": {"MD"},
	"would": {"MD"}, "ought": {"MD"}, "ca": {"MD"}, "wo": {"MD"},
	"sha": {"MD"}, "'ll": {"MD"}, "'d": {"MD", "VBD"},
	"wanna": {"MD"}, "gonna": {"MD"},
	"need": {"VB", "MD", "NN"}, "dare": {"VB", "MD"},

	// ---- Auxiliaries / copulas ----
	"be": {"VB"}, "am": {"VBP"}, "is": {"VBZ"}, "are": {"VBP"},
	"was": {"VBD"}, "were": {"VBD"}, "been": {"VBN"}, "being": {"VBG"},
	"'m": {"VBP"}, "'re": {"VBP"}, "'s": {"POS", "VBZ"},
	"do": {"VBP", "VB"}, "does": {"VBZ"}, "did": {"VBD"},
	"done": {"VBN"}, "doing": {"VBG"},
	"have": {"VBP", "VB"}, "has": {"VBZ"}, "had": {"VBD", "VBN"},
	"having": {"VBG"}, "'ve": {"VBP"},
	"not": {"RB"}, "n't": {"RB"}, "never": {"RB"},

	// ---- Prepositions / subordinating conjunctions ----
	"in": {"IN"}, "on": {"IN"}, "at": {"IN"}, "by": {"IN"}, "for": {"IN"},
	"with": {"IN"}, "without": {"IN"}, "about": {"IN"}, "against": {"IN"},
	"between": {"IN"}, "among": {"IN"}, "into": {"IN"}, "onto": {"IN"},
	"through": {"IN"}, "during": {"IN"}, "before": {"IN"}, "after": {"IN"},
	"above": {"IN"}, "below": {"IN"}, "under": {"IN"}, "over": {"IN"},
	"near": {"IN", "JJ"}, "nearby": {"JJ", "RB"}, "around": {"IN", "RB"},
	"of": {"IN"}, "to": {"TO"}, "from": {"IN"}, "up": {"RP", "IN"},
	"down": {"RP", "IN"}, "off": {"RP", "IN"}, "out": {"RP", "IN"},
	"since": {"IN"}, "until": {"IN"}, "till": {"IN"}, "while": {"IN"},
	"because": {"IN"}, "although": {"IN"}, "though": {"IN"}, "if": {"IN"},
	"unless": {"IN"}, "whether": {"IN"}, "per": {"IN"}, "via": {"IN"},
	"like": {"IN", "VB"}, "as": {"IN"}, "than": {"IN"}, "within": {"IN"},
	"besides": {"IN"}, "except": {"IN"}, "despite": {"IN"},
	"inside": {"IN"}, "outside": {"IN"}, "beside": {"IN"},
	"across": {"IN"}, "along": {"IN"}, "behind": {"IN"}, "beyond": {"IN"},
	"next": {"JJ", "IN"},

	// ---- Coordinating conjunctions ----
	"and": {"CC"}, "or": {"CC"}, "but": {"CC"}, "nor": {"CC"},
	"yet": {"CC", "RB"}, "so": {"CC", "RB"}, "plus": {"CC"},

	// ---- Adverbs ----
	"very": {"RB"}, "too": {"RB"}, "also": {"RB"}, "just": {"RB"},
	"only": {"RB"}, "even": {"RB"}, "still": {"RB"}, "already": {"RB"},
	"often": {"RB"}, "usually": {"RB"}, "always": {"RB"},
	"sometimes": {"RB"}, "rarely": {"RB"}, "seldom": {"RB"},
	"here": {"RB"}, "there": {"EX", "RB"}, "now": {"RB"}, "then": {"RB"},
	"today": {"NN"}, "tomorrow": {"NN"}, "yesterday": {"NN"},
	"well": {"RB"}, "better": {"JJR", "RBR"}, "best": {"JJS", "RBS"},
	"worse": {"JJR"}, "worst": {"JJS"}, "really": {"RB"}, "quite": {"RB"},
	"rather": {"RB"}, "pretty": {"RB", "JJ"}, "instead": {"RB"},
	"together": {"RB"}, "away": {"RB"}, "back": {"RB", "NN"},
	"please": {"UH", "VB"}, "maybe": {"RB"}, "perhaps": {"RB"},
	"currently": {"RB"}, "recently": {"RB"}, "soon": {"RB"},
	"again": {"RB"}, "once": {"RB"}, "twice": {"RB"}, "else": {"RB"},
	"far": {"RB"}, "early": {"RB", "JJ"}, "late": {"RB", "JJ"},

	// ---- Cardinal words ----
	"zero": {"CD"}, "two": {"CD"}, "three": {"CD"}, "four": {"CD"},
	"five": {"CD"}, "six": {"CD"}, "seven": {"CD"}, "eight": {"CD"},
	"nine": {"CD"}, "ten": {"CD"}, "dozen": {"CD"}, "hundred": {"CD"},
	"thousand": {"CD"}, "first": {"JJ"}, "second": {"JJ"}, "third": {"JJ"},

	// ---- Question / request verbs ----
	"recommend": {"VB", "VBP"}, "suggest": {"VB", "VBP"},
	"advise": {"VB", "VBP"}, "prefer": {"VB", "VBP"},
	"think": {"VB", "VBP"}, "know": {"VB", "VBP"}, "want": {"VB", "VBP"},
	"find": {"VB", "VBP"}, "get": {"VB", "VBP"}, "tell": {"VB", "VBP"},
	"consider": {"VB", "VBP"}, "choose": {"VB", "VBP"},
	"pick": {"VB", "VBP"}, "look": {"VB", "VBP"}, "go": {"VB", "VBP"},
	"take": {"VB", "VBP"}, "make": {"VB", "VBP"}, "give": {"VB", "VBP"},
	"use": {"VB", "VBP", "NN"}, "try": {"VB", "VBP"},
	"avoid": {"VB", "VBP"}, "enjoy": {"VB", "VBP"},
	"love": {"VB", "VBP", "NN"}, "hate": {"VB", "VBP"},
	"watch": {"VB", "VBP", "NN"}, "bring": {"VB", "VBP"},
	"wear": {"VB", "VBP"}, "keep": {"VB", "VBP"},
	"play": {"VB", "VBP"}, "spend": {"VB", "VBP"},
	"listen": {"VB", "VBP"}, "swim": {"VB", "VBP"},

	// ---- Travel domain ----
	"visit": {"VB", "VBP", "NN"}, "travel": {"VB", "NN"},
	"stay": {"VB", "NN"}, "tour": {"NN", "VB"}, "trip": {"NN"},
	"place": {"NN", "VB"}, "places": {"NNS"}, "sight": {"NN"},
	"sights": {"NNS"}, "attraction": {"NN"}, "attractions": {"NNS"},
	"hotel": {"NN"}, "hotels": {"NNS"}, "hostel": {"NN"},
	"museum": {"NN"}, "museums": {"NNS"}, "park": {"NN"},
	"parks": {"NNS"}, "zoo": {"NN"}, "beach": {"NN"}, "beaches": {"NNS"},
	"restaurant": {"NN"}, "restaurants": {"NNS"}, "cafe": {"NN"},
	"bar": {"NN"}, "bars": {"NNS"}, "city": {"NN"}, "cities": {"NNS"},
	"town": {"NN"}, "country": {"NN"}, "downtown": {"NN", "RB"},
	"airport": {"NN"}, "station": {"NN"}, "flight": {"NN"},
	"flights": {"NNS"}, "guide": {"NN", "VB"}, "guides": {"NNS"},
	"locals": {"NNS"}, "local": {"JJ"}, "tourist": {"NN"},
	"tourists": {"NNS"}, "traveler": {"NN"}, "travelers": {"NNS"},
	"vacation": {"NN"}, "holiday": {"NN"}, "fall": {"NN", "VB"},
	"autumn": {"NN"}, "winter": {"NN"}, "spring": {"NN", "VB"},
	"summer": {"NN"}, "season": {"NN"}, "weekend": {"NN"},
	"morning": {"NN"}, "evening": {"NN"}, "night": {"NN"},
	"ride": {"NN", "VB"}, "rides": {"NNS", "VBZ"}, "thrill": {"NN"},
	"casino": {"NN"}, "casinos": {"NNS"}, "show": {"NN", "VB"},
	"shows": {"NNS", "VBZ"}, "area": {"NN"}, "areas": {"NNS"},
	"neighborhood": {"NN"}, "district": {"NN"}, "landmark": {"NN"},
	"landmarks": {"NNS"}, "view": {"NN", "VB"}, "views": {"NNS"},
	"walk": {"VB", "NN"}, "hike": {"VB", "NN"},
	"explore": {"VB"}, "book": {"VB", "NN"}, "booked": {"VBD", "VBN"},

	// ---- Food / health domain ----
	"eat": {"VB", "VBP"}, "drink": {"VB", "NN"}, "cook": {"VB", "NN"},
	"bake": {"VB"}, "store": {"VB", "NN"}, "serve": {"VB", "VBP"},
	"serves": {"VBZ"},
	"order":  {"VB", "NN"}, "taste": {"VB", "NN"}, "dish": {"NN"},
	"dishes": {"NNS"}, "food": {"NN"}, "foods": {"NNS"}, "meal": {"NN"},
	"meals": {"NNS"}, "breakfast": {"NN"}, "lunch": {"NN"},
	"dinner": {"NN"}, "snack": {"NN"}, "snacks": {"NNS"},
	"oatmeal": {"NN"}, "pizza": {"NN"}, "soup": {"NN"}, "salad": {"NN"},
	"dessert": {"NN"}, "desserts": {"NNS"}, "omelette": {"NN"},
	"lentil": {"NN"}, "quinoa": {"NN"}, "chili": {"NN"}, "grain": {"NN"},
	"souvenir": {"NN"}, "souvenirs": {"NNS"}, "pool": {"NN"},
	"fruit": {"NN"}, "fruits": {"NNS"}, "vegetable": {"NN"},
	"vegetables": {"NNS"}, "meat": {"NN"}, "fish": {"NN"},
	"chicken": {"NN"}, "rice": {"NN"}, "pasta": {"NN"}, "bread": {"NN"},
	"cheese": {"NN"}, "milk": {"NN"}, "chocolate": {"NN"},
	"coffee": {"NN"}, "tea": {"NN"}, "water": {"NN"}, "juice": {"NN"},
	"wine": {"NN"}, "beer": {"NN"}, "sugar": {"NN"}, "salt": {"NN"},
	"fiber": {"NN"}, "protein": {"NN"}, "vitamin": {"NN"},
	"vitamins": {"NNS"}, "calorie": {"NN"}, "calories": {"NNS"},
	"diet": {"NN"}, "nutrition": {"NN"}, "healthy": {"JJ"},
	"unhealthy": {"JJ"}, "organic": {"JJ"}, "fresh": {"JJ"},
	"rich": {"JJ"}, "container": {"NN"}, "fridge": {"NN"},
	"kitchen": {"NN"}, "recipe": {"NN"}, "recipes": {"NNS"},
	"kids": {"NNS"}, "kid": {"NN"}, "children": {"NNS"}, "child": {"NN"},
	"adults": {"NNS"}, "people": {"NNS"}, "person": {"NN"},
	"doctor": {"NN"}, "dietician": {"NN"}, "health": {"NN"},
	"exercise": {"NN", "VB"}, "sleep": {"VB", "NN"},

	// ---- Shopping domain ----
	"buy": {"VB", "VBP"}, "shop": {"VB", "NN"}, "sell": {"VB"},
	"pay": {"VB"}, "cost": {"VB", "NN"}, "price": {"NN"},
	"prices": {"NNS"}, "cheap": {"JJ"}, "expensive": {"JJ"},
	"affordable": {"JJ"}, "camera": {"NN"}, "cameras": {"NNS"},
	"digital": {"JJ"}, "phone": {"NN"}, "phones": {"NNS"},
	"laptop": {"NN"}, "computer": {"NN"}, "brand": {"NN"},
	"brands": {"NNS"}, "model": {"NN"}, "models": {"NNS"},
	"type": {"NN", "VB"}, "types": {"NNS"}, "kind": {"NN"},
	"kinds": {"NNS"}, "product": {"NN"}, "products": {"NNS"},
	"item": {"NN"}, "items": {"NNS"}, "gift": {"NN"}, "gifts": {"NNS"},
	"quality": {"NN"}, "battery": {"NN"}, "screen": {"NN"},
	"warranty": {"NN"}, "deal": {"NN"}, "deals": {"NNS"},

	// ---- General adjectives (incl. opinion words used in examples) ----
	"good": {"JJ"}, "bad": {"JJ"}, "great": {"JJ"}, "nice": {"JJ"},
	"interesting": {"JJ"}, "boring": {"JJ"}, "beautiful": {"JJ"},
	"amazing": {"JJ"}, "wonderful": {"JJ"}, "awful": {"JJ"},
	"terrible": {"JJ"}, "fun": {"NN", "JJ"}, "popular": {"JJ"},
	"famous": {"JJ"}, "romantic": {"JJ"}, "quiet": {"JJ"},
	"safe": {"JJ"}, "dangerous": {"JJ"}, "big": {"JJ"}, "small": {"JJ"},
	"large": {"JJ"}, "old": {"JJ"}, "new": {"JJ"}, "young": {"JJ"},
	"tasty": {"JJ"}, "delicious": {"JJ"}, "reliable": {"JJ"},
	"comfortable": {"JJ"}, "convenient": {"JJ"}, "suitable": {"JJ"},
	"important": {"JJ"}, "easy": {"JJ"}, "hard": {"JJ", "RB"},
	"difficult": {"JJ"}, "free": {"JJ"}, "open": {"JJ", "VB"},
	"closed": {"JJ", "VBN"}, "available": {"JJ"}, "worth": {"JJ", "IN"},
	"favorite": {"JJ", "NN"}, "main": {"JJ"}, "top": {"JJ", "NN"},
	"scary": {"JJ"}, "rainy": {"JJ"}, "sunny": {"JJ"}, "windy": {"JJ"},
	"noisy": {"JJ"}, "crazy": {"JJ"}, "spicy": {"JJ"},
	"dirty": {"JJ"}, "busy": {"JJ"}, "funny": {"JJ"}, "cozy": {"JJ"},
	"yummy": {"JJ"}, "pricey": {"JJ"}, "overrated": {"JJ", "VBN"},
	"underrated": {"JJ", "VBN"}, "crowded": {"JJ", "VBN"},

	// ---- Misc nouns/verbs used in examples ----
	"purpose": {"NN"}, "reason": {"NN"}, "way": {"NN"}, "ways": {"NNS"},
	"time": {"NN"}, "times": {"NNS"}, "day": {"NN"}, "days": {"NNS"},
	"week": {"NN"}, "month": {"NN"}, "year": {"NN"}, "years": {"NNS"},
	"hour": {"NN"}, "hours": {"NNS"}, "opening": {"NN", "VBG"},
	"location": {"NN"}, "locations": {"NNS"}, "name": {"NN", "VB"},
	"names": {"NNS"}, "question": {"NN"}, "answer": {"NN", "VB"},
	"information": {"NN"}, "opinion": {"NN"}, "opinions": {"NNS"},
	"habit": {"NN"}, "habits": {"NNS"}, "group": {"NN"},
	"family": {"NN"}, "friend": {"NN"}, "friends": {"NNS"},
	"money": {"NN"}, "thing": {"NN"}, "things": {"NNS"},
	"lot": {"NN"}, "bit": {"NN"}, "number": {"NN"},
}

// lexiconTags returns the candidate tags for a lower-cased word, or nil
// when the word is unknown.
func lexiconTags(lower string) []string {
	return lexicon[lower]
}
