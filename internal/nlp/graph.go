package nlp

import (
	"fmt"
	"strings"

	"nl2cm/internal/prov"
)

// Dependency relation labels emitted by the parser. They follow the
// Stanford typed-dependency naming used by the paper's NL Parser module.
const (
	RelRoot      = "root"
	RelNSubj     = "nsubj"     // nominal subject
	RelNSubjPass = "nsubjpass" // passive nominal subject
	RelDObj      = "dobj"      // direct object
	RelIObj      = "iobj"      // indirect object
	RelAttr      = "attr"      // attributive wh-complement of a copula
	RelDet       = "det"       // determiner
	RelPredet    = "predet"    // predeterminer ("all the ...")
	RelAMod      = "amod"      // adjectival modifier
	RelAdvMod    = "advmod"    // adverbial modifier
	RelAux       = "aux"       // auxiliary or modal
	RelAuxPass   = "auxpass"   // passive auxiliary
	RelCop       = "cop"       // copula
	RelPrep      = "prep"      // preposition attached to head
	RelPObj      = "pobj"      // object of a preposition
	RelNN        = "nn"        // noun compound modifier
	RelNum       = "num"       // numeric modifier
	RelPoss      = "poss"      // possessive modifier
	RelRCMod     = "rcmod"     // relative clause modifier
	RelInfMod    = "infmod"    // infinitival modifier ("places to visit")
	RelXComp     = "xcomp"     // open clausal complement ("want to buy")
	RelConj      = "conj"      // conjunct
	RelCC        = "cc"        // coordination
	RelNeg       = "neg"       // negation
	RelExpl      = "expl"      // expletive "there"
	RelPrt       = "prt"       // verb particle
	RelAppos     = "appos"     // apposition
	RelMark      = "mark"      // clause marker ("that", "if")
	RelPunct     = "punct"     // punctuation
	RelDep       = "dep"       // unclassified dependency
	RelComplm    = "complm"    // complementizer
	RelRel       = "rel"       // relativizer word inside a relative clause
)

// Node is a token plus its position in the dependency tree.
type Node struct {
	Token
	// Head is the index of the head token, or -1 for the root.
	Head int
	// Rel is the typed relation between this node and its head
	// (RelRoot for the root).
	Rel string
}

// Edge is a labeled dependency edge from a head token to a dependent.
type Edge struct {
	Head, Dep int
	Rel       string
}

// DepGraph is a typed dependency graph. The Head/Rel fields of Nodes form
// a tree; Extra holds additional edges (e.g. the object role a relative
// clause verb assigns to the noun it modifies), which makes the full edge
// set a DAG, matching the paper's "directed acyclic graph (typically, a
// tree)".
type DepGraph struct {
	Nodes []Node
	Extra []Edge
	// Source is the original sentence the graph was parsed from. Token
	// byte spans index into it; Parse fills it.
	Source string
}

// Spans returns the byte spans of the given tokens in Source. Indices out
// of range are skipped.
func (g *DepGraph) Spans(ids prov.TokenSet) []prov.Span {
	var out []prov.Span
	for _, id := range ids {
		if id >= 0 && id < len(g.Nodes) {
			out = append(out, g.Nodes[id].Span())
		}
	}
	return out
}

// Excerpt resolves a token set to a quotation of the source sentence,
// adjacent spans merged and gaps elided with "..." — e.g.
// `reach ... from Forest Hills`.
func (g *DepGraph) Excerpt(ids prov.TokenSet) string {
	return prov.Excerpt(g.Source, g.Spans(ids))
}

// Len returns the number of tokens.
func (g *DepGraph) Len() int { return len(g.Nodes) }

// Root returns the index of the root node, or -1 if the graph is empty or
// malformed.
func (g *DepGraph) Root() int {
	for i := range g.Nodes {
		if g.Nodes[i].Head == -1 && g.Nodes[i].Rel == RelRoot {
			return i
		}
	}
	return -1
}

// Edges returns every dependency edge: the tree edges (excluding the
// virtual root edge) followed by the extra edges.
func (g *DepGraph) Edges() []Edge {
	var out []Edge
	for i := range g.Nodes {
		if g.Nodes[i].Head >= 0 {
			out = append(out, Edge{Head: g.Nodes[i].Head, Dep: i, Rel: g.Nodes[i].Rel})
		}
	}
	out = append(out, g.Extra...)
	return out
}

// Dependents returns the indices of tree dependents of head with any of
// the given relations; with no relations given it returns all tree
// dependents. Extra edges are not included.
func (g *DepGraph) Dependents(head int, rels ...string) []int {
	var out []int
	for i := range g.Nodes {
		if g.Nodes[i].Head != head {
			continue
		}
		if len(rels) == 0 {
			out = append(out, i)
			continue
		}
		for _, r := range rels {
			if g.Nodes[i].Rel == r {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// DependentsAll is Dependents but also considers Extra edges.
func (g *DepGraph) DependentsAll(head int, rels ...string) []int {
	out := g.Dependents(head, rels...)
	for _, e := range g.Extra {
		if e.Head != head {
			continue
		}
		if len(rels) == 0 {
			out = append(out, e.Dep)
			continue
		}
		for _, r := range rels {
			if e.Rel == r {
				out = append(out, e.Dep)
				break
			}
		}
	}
	return out
}

// FirstDependent returns the first tree dependent with the relation, or
// -1.
func (g *DepGraph) FirstDependent(head int, rel string) int {
	deps := g.Dependents(head, rel)
	if len(deps) == 0 {
		return -1
	}
	return deps[0]
}

// Subtree returns the indices of the node and all its tree descendants in
// ascending token order.
func (g *DepGraph) Subtree(i int) []int {
	marked := make([]bool, len(g.Nodes))
	g.markSubtree(i, marked)
	var out []int
	for j, m := range marked {
		if m {
			out = append(out, j)
		}
	}
	return out
}

func (g *DepGraph) markSubtree(i int, marked []bool) {
	if marked[i] {
		return
	}
	marked[i] = true
	for j := range g.Nodes {
		if g.Nodes[j].Head == i {
			g.markSubtree(j, marked)
		}
	}
}

// Path returns the indices from node i to the root, starting with i.
func (g *DepGraph) Path(i int) []int {
	var out []int
	for i >= 0 {
		out = append(out, i)
		i = g.Nodes[i].Head
	}
	return out
}

// Phrase renders the tokens at the given indices (sorted ascending by the
// caller) as a space-joined string.
func (g *DepGraph) Phrase(indices []int) string {
	parts := make([]string, 0, len(indices))
	for _, i := range indices {
		parts = append(parts, g.Nodes[i].Text)
	}
	return strings.Join(parts, " ")
}

// SubtreePhrase returns the surface text of the subtree rooted at i.
func (g *DepGraph) SubtreePhrase(i int) string {
	return g.Phrase(g.Subtree(i))
}

// String renders the graph in a CoNLL-like tabular format (used by the
// administrator mode to display the NL Parser's intermediate output).
func (g *DepGraph) String() string {
	var b strings.Builder
	for i := range g.Nodes {
		n := &g.Nodes[i]
		head := n.Head + 1
		fmt.Fprintf(&b, "%d\t%s\t%s\t%s\t%d\t%s\n",
			i+1, n.Text, n.Lemma, n.POS, head, n.Rel)
	}
	for _, e := range g.Extra {
		fmt.Fprintf(&b, "#extra\t%s(%s-%d, %s-%d)\n",
			e.Rel, g.Nodes[e.Head].Text, e.Head+1, g.Nodes[e.Dep].Text, e.Dep+1)
	}
	return b.String()
}

// Validate checks structural invariants: exactly one root, head indices in
// range, acyclic tree edges, and extra edges referencing valid nodes.
func (g *DepGraph) Validate() error {
	roots := 0
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Head == -1 {
			if n.Rel != RelRoot {
				return fmt.Errorf("nlp: node %d has no head but rel %q", i, n.Rel)
			}
			roots++
			continue
		}
		if n.Head < 0 || n.Head >= len(g.Nodes) {
			return fmt.Errorf("nlp: node %d has out-of-range head %d", i, n.Head)
		}
		if n.Head == i {
			return fmt.Errorf("nlp: node %d is its own head", i)
		}
	}
	if len(g.Nodes) > 0 && roots != 1 {
		return fmt.Errorf("nlp: graph has %d roots, want 1", roots)
	}
	// Cycle check: walking up from any node must terminate.
	for i := range g.Nodes {
		seen := map[int]bool{}
		for j := i; j >= 0; j = g.Nodes[j].Head {
			if seen[j] {
				return fmt.Errorf("nlp: cycle through node %d", j)
			}
			seen[j] = true
		}
	}
	for _, e := range g.Extra {
		if e.Head < 0 || e.Head >= len(g.Nodes) || e.Dep < 0 || e.Dep >= len(g.Nodes) {
			return fmt.Errorf("nlp: extra edge %v out of range", e)
		}
	}
	return nil
}
