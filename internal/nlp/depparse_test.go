package nlp

import (
	"strings"
	"testing"
	"testing/quick"
)

// parseOK parses a sentence and fails the test on error.
func parseOK(t *testing.T, sentence string) *DepGraph {
	t.Helper()
	g, err := Parse(sentence)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sentence, err)
	}
	return g
}

// findTok returns the index of the first token with the given text.
func findTok(t *testing.T, g *DepGraph, text string) int {
	t.Helper()
	for i := range g.Nodes {
		if g.Nodes[i].Text == text {
			return i
		}
	}
	t.Fatalf("token %q not in graph:\n%s", text, g)
	return -1
}

// assertEdge asserts a tree edge dep --rel--> head.
func assertEdge(t *testing.T, g *DepGraph, depText, rel, headText string) {
	t.Helper()
	dep := findTok(t, g, depText)
	n := g.Nodes[dep]
	if n.Head < 0 {
		t.Errorf("%q is root, want head %q via %s\n%s", depText, headText, rel, g)
		return
	}
	if g.Nodes[n.Head].Text != headText || n.Rel != rel {
		t.Errorf("%q attached to %q via %s, want %q via %s\n%s",
			depText, g.Nodes[n.Head].Text, n.Rel, headText, rel, g)
	}
}

func assertRoot(t *testing.T, g *DepGraph, text string) {
	t.Helper()
	r := g.Root()
	if r == -1 || g.Nodes[r].Text != text {
		got := "<none>"
		if r >= 0 {
			got = g.Nodes[r].Text
		}
		t.Errorf("root = %q, want %q\n%s", got, text, g)
	}
}

func TestParseRunningExample(t *testing.T) {
	g := parseOK(t, "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?")
	assertRoot(t, g, "places")
	assertEdge(t, g, "What", RelAttr, "places")
	assertEdge(t, g, "are", RelCop, "places")
	assertEdge(t, g, "the", RelDet, "places")
	assertEdge(t, g, "most", RelAdvMod, "interesting")
	assertEdge(t, g, "interesting", RelAMod, "places")
	assertEdge(t, g, "near", RelPrep, "places")
	assertEdge(t, g, "Hotel", RelPObj, "near")
	assertEdge(t, g, "Forest", RelNN, "Hotel")
	assertEdge(t, g, "Buffalo", RelAppos, "Hotel")
	assertEdge(t, g, "we", RelNSubj, "visit")
	assertEdge(t, g, "should", RelAux, "visit")
	assertEdge(t, g, "visit", RelRCMod, "places")
	assertEdge(t, g, "in", RelPrep, "visit")
	assertEdge(t, g, "fall", RelPObj, "in")
	// The relative clause's object gap is filled by an extra edge.
	visit := findTok(t, g, "visit")
	places := findTok(t, g, "places")
	found := false
	for _, e := range g.Extra {
		if e.Head == visit && e.Dep == places && e.Rel == RelDObj {
			found = true
		}
	}
	if !found {
		t.Errorf("missing extra dobj(visit, places)\n%s", g)
	}
}

func TestParseSubjectWhQuestion(t *testing.T) {
	g := parseOK(t, "Which hotel in Vegas has the best thrill ride?")
	assertRoot(t, g, "has")
	assertEdge(t, g, "hotel", RelNSubj, "has")
	assertEdge(t, g, "Which", RelDet, "hotel")
	assertEdge(t, g, "in", RelPrep, "hotel")
	assertEdge(t, g, "Vegas", RelPObj, "in")
	assertEdge(t, g, "ride", RelDObj, "has")
	assertEdge(t, g, "best", RelAMod, "ride")
	assertEdge(t, g, "thrill", RelNN, "ride")
}

func TestParseFrontedObjectQuestion(t *testing.T) {
	g := parseOK(t, "What type of digital camera should I buy?")
	assertRoot(t, g, "buy")
	assertEdge(t, g, "type", RelDObj, "buy")
	assertEdge(t, g, "What", RelDet, "type")
	assertEdge(t, g, "of", RelPrep, "type")
	assertEdge(t, g, "camera", RelPObj, "of")
	assertEdge(t, g, "digital", RelAMod, "camera")
	assertEdge(t, g, "should", RelAux, "buy")
	assertEdge(t, g, "I", RelNSubj, "buy")
}

func TestParseYesNoCopular(t *testing.T) {
	g := parseOK(t, "Is chocolate milk good for kids?")
	assertRoot(t, g, "good")
	assertEdge(t, g, "Is", RelCop, "good")
	assertEdge(t, g, "milk", RelNSubj, "good")
	assertEdge(t, g, "chocolate", RelNN, "milk")
	assertEdge(t, g, "for", RelPrep, "good")
	assertEdge(t, g, "kids", RelPObj, "for")
}

func TestParseWhAdverbQuestion(t *testing.T) {
	g := parseOK(t, "Where do you visit in Buffalo?")
	assertRoot(t, g, "visit")
	assertEdge(t, g, "Where", RelAdvMod, "visit")
	assertEdge(t, g, "do", RelAux, "visit")
	assertEdge(t, g, "you", RelNSubj, "visit")
	assertEdge(t, g, "in", RelPrep, "visit")
	assertEdge(t, g, "Buffalo", RelPObj, "in")
}

func TestParseModalDeclarative(t *testing.T) {
	g := parseOK(t, "Obama should visit Buffalo.")
	assertRoot(t, g, "visit")
	assertEdge(t, g, "Obama", RelNSubj, "visit")
	assertEdge(t, g, "should", RelAux, "visit")
	assertEdge(t, g, "Buffalo", RelDObj, "visit")
}

func TestParseSimpleDeclarative(t *testing.T) {
	g := parseOK(t, "We visit parks in the fall.")
	assertRoot(t, g, "visit")
	assertEdge(t, g, "We", RelNSubj, "visit")
	assertEdge(t, g, "parks", RelDObj, "visit")
	assertEdge(t, g, "in", RelPrep, "visit")
	assertEdge(t, g, "fall", RelPObj, "in")
}

func TestParseFrontedPP(t *testing.T) {
	g := parseOK(t, "At what container should I store coffee?")
	assertRoot(t, g, "store")
	assertEdge(t, g, "At", RelPrep, "store")
	assertEdge(t, g, "container", RelPObj, "At")
	assertEdge(t, g, "coffee", RelDObj, "store")
}

func TestParseInfinitivalModifier(t *testing.T) {
	g := parseOK(t, "What are the best places to visit in Buffalo?")
	assertRoot(t, g, "places")
	assertEdge(t, g, "visit", RelInfMod, "places")
	assertEdge(t, g, "to", RelAux, "visit")
	assertEdge(t, g, "in", RelPrep, "visit")
	// gap object via extra edge
	visit := findTok(t, g, "visit")
	places := findTok(t, g, "places")
	ok := false
	for _, e := range g.Extra {
		if e.Head == visit && e.Dep == places && e.Rel == RelDObj {
			ok = true
		}
	}
	if !ok {
		t.Errorf("missing extra dobj(visit, places)\n%s", g)
	}
}

func TestParseSubjectRelativeClause(t *testing.T) {
	g := parseOK(t, "Which hotel that has a pool is cheap?")
	assertEdge(t, g, "has", RelRCMod, "hotel")
	assertEdge(t, g, "that", RelRel, "has")
	assertEdge(t, g, "pool", RelDObj, "has")
	// extra nsubj from the relative verb to the modified noun
	has := findTok(t, g, "has")
	hotel := findTok(t, g, "hotel")
	ok := false
	for _, e := range g.Extra {
		if e.Head == has && e.Dep == hotel && e.Rel == RelNSubj {
			ok = true
		}
	}
	if !ok {
		t.Errorf("missing extra nsubj(has, hotel)\n%s", g)
	}
}

func TestParseObjectRelativeClause(t *testing.T) {
	g := parseOK(t, "What is a dish that people cook in the winter?")
	assertEdge(t, g, "cook", RelRCMod, "dish")
	assertEdge(t, g, "people", RelNSubj, "cook")
	cook := findTok(t, g, "cook")
	dish := findTok(t, g, "dish")
	ok := false
	for _, e := range g.Extra {
		if e.Head == cook && e.Dep == dish && e.Rel == RelDObj {
			ok = true
		}
	}
	if !ok {
		t.Errorf("missing extra dobj(cook, dish)\n%s", g)
	}
}

func TestParseConjunction(t *testing.T) {
	g := parseOK(t, "We visit parks and museums.")
	assertEdge(t, g, "and", RelCC, "parks")
	assertEdge(t, g, "museums", RelConj, "parks")
}

func TestParseNegation(t *testing.T) {
	g := parseOK(t, "We don't visit museums.")
	assertRoot(t, g, "visit")
	assertEdge(t, g, "do", RelAux, "visit")
	assertEdge(t, g, "n't", RelNeg, "visit")
	assertEdge(t, g, "museums", RelDObj, "visit")
}

func TestParseExistential(t *testing.T) {
	g := parseOK(t, "Are there good restaurants near the hotel?")
	assertRoot(t, g, "Are")
	assertEdge(t, g, "there", RelExpl, "Are")
	assertEdge(t, g, "restaurants", RelNSubj, "Are")
	assertEdge(t, g, "good", RelAMod, "restaurants")
	assertEdge(t, g, "near", RelPrep, "restaurants")
}

func TestParsePossessive(t *testing.T) {
	g := parseOK(t, "My friend's house is big.")
	assertEdge(t, g, "friend", RelPoss, "house")
	assertEdge(t, g, "'s", "possessive", "friend")
	assertEdge(t, g, "My", RelPoss, "friend")
}

func TestParseProgressiveAux(t *testing.T) {
	g := parseOK(t, "Are you visiting Buffalo?")
	assertRoot(t, g, "visiting")
	assertEdge(t, g, "Are", RelAux, "visiting")
	assertEdge(t, g, "you", RelNSubj, "visiting")
	assertEdge(t, g, "Buffalo", RelDObj, "visiting")
}

func TestParseXComp(t *testing.T) {
	g := parseOK(t, "I want to buy a camera.")
	assertRoot(t, g, "want")
	assertEdge(t, g, "buy", RelXComp, "want")
	assertEdge(t, g, "to", RelAux, "buy")
	assertEdge(t, g, "camera", RelDObj, "buy")
}

func TestParseNounFragment(t *testing.T) {
	g := parseOK(t, "Best pizza in town?")
	assertRoot(t, g, "pizza")
	assertEdge(t, g, "Best", RelAMod, "pizza")
	assertEdge(t, g, "in", RelPrep, "pizza")
}

func TestParseEmptyInputFails(t *testing.T) {
	if _, err := ParseDependencies(nil); err == nil {
		t.Fatal("ParseDependencies(nil) succeeded, want error")
	}
}

func TestSubtreeAndPhrase(t *testing.T) {
	g := parseOK(t, "What are the most interesting places near Forest Hotel?")
	places := findTok(t, g, "places")
	phrase := g.SubtreePhrase(places)
	// The subtree of the root covers the whole sentence.
	if !strings.Contains(phrase, "interesting") || !strings.Contains(phrase, "Hotel") {
		t.Errorf("SubtreePhrase(places) = %q", phrase)
	}
	near := findTok(t, g, "near")
	pp := g.SubtreePhrase(near)
	if pp != "near Forest Hotel" {
		t.Errorf("SubtreePhrase(near) = %q, want %q", pp, "near Forest Hotel")
	}
}

func TestPathToRoot(t *testing.T) {
	g := parseOK(t, "We visit parks in the fall.")
	fall := findTok(t, g, "fall")
	path := g.Path(fall)
	if len(path) < 3 || g.Nodes[path[len(path)-1]].Rel != RelRoot {
		t.Errorf("Path(fall) = %v", path)
	}
}

func TestDependentsFiltering(t *testing.T) {
	g := parseOK(t, "We visit parks in the fall.")
	visit := findTok(t, g, "visit")
	if got := g.Dependents(visit, RelNSubj); len(got) != 1 || g.Nodes[got[0]].Text != "We" {
		t.Errorf("Dependents(visit, nsubj) wrong: %v", got)
	}
	all := g.Dependents(visit)
	if len(all) < 3 {
		t.Errorf("Dependents(visit) = %d deps, want >= 3", len(all))
	}
	if g.FirstDependent(visit, RelDObj) == -1 {
		t.Error("FirstDependent(visit, dobj) = -1")
	}
	if g.FirstDependent(visit, RelIObj) != -1 {
		t.Error("FirstDependent(visit, iobj) != -1")
	}
}

func TestValidateDetectsBadGraphs(t *testing.T) {
	// Two roots.
	g := &DepGraph{Nodes: []Node{
		{Token: Token{Text: "a"}, Head: -1, Rel: RelRoot},
		{Token: Token{Text: "b"}, Head: -1, Rel: RelRoot},
	}}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted two roots")
	}
	// Self-loop.
	g = &DepGraph{Nodes: []Node{{Token: Token{Text: "a"}, Head: 0, Rel: RelDep}}}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted self-loop")
	}
	// Out-of-range head.
	g = &DepGraph{Nodes: []Node{
		{Token: Token{Text: "a"}, Head: -1, Rel: RelRoot},
		{Token: Token{Text: "b"}, Head: 7, Rel: RelDep},
	}}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted out-of-range head")
	}
}

// Property: parsing any corpus-like sentence yields a valid graph whose
// edges reference in-range nodes and which has exactly one root.
func TestParseAlwaysValid(t *testing.T) {
	vocab := []string{
		"what", "which", "where", "should", "we", "you", "the", "a",
		"interesting", "good", "places", "hotel", "visit", "eat", "in",
		"near", "Buffalo", "fall", "and", "not", "to", "kids", "?", ",",
	}
	f := func(picks []uint8) bool {
		if len(picks) == 0 {
			return true
		}
		if len(picks) > 16 {
			picks = picks[:16]
		}
		var words []string
		for _, p := range picks {
			words = append(words, vocab[int(p)%len(vocab)])
		}
		g, err := Parse(strings.Join(words, " "))
		if err != nil {
			// Only empty input may fail.
			return strings.TrimSpace(strings.Join(words, " ")) == ""
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 300}
}

func TestParsePassive(t *testing.T) {
	g := parseOK(t, "Which dishes are cooked in the winter?")
	assertRoot(t, g, "cooked")
	assertEdge(t, g, "are", RelAuxPass, "cooked")
	assertEdge(t, g, "dishes", RelNSubj, "cooked")
	assertEdge(t, g, "in", RelPrep, "cooked")
}

func TestParseImperative(t *testing.T) {
	g := parseOK(t, "Recommend a good restaurant near the hotel.")
	assertRoot(t, g, "Recommend")
	assertEdge(t, g, "restaurant", RelDObj, "Recommend")
	assertEdge(t, g, "good", RelAMod, "restaurant")
	assertEdge(t, g, "near", RelPrep, "restaurant")
}

func TestParseWhSubject(t *testing.T) {
	g := parseOK(t, "Who serves the best pizza in Buffalo?")
	assertRoot(t, g, "serves")
	assertEdge(t, g, "Who", RelNSubj, "serves")
	assertEdge(t, g, "pizza", RelDObj, "serves")
	assertEdge(t, g, "best", RelAMod, "pizza")
}

func TestParseCanQuestion(t *testing.T) {
	g := parseOK(t, "Can you suggest a good hotel near the airport?")
	assertRoot(t, g, "suggest")
	assertEdge(t, g, "Can", RelAux, "suggest")
	assertEdge(t, g, "you", RelNSubj, "suggest")
	assertEdge(t, g, "hotel", RelDObj, "suggest")
}

func TestParseDeclarativeCopula(t *testing.T) {
	g := parseOK(t, "Smoothies are a popular breakfast in California.")
	assertRoot(t, g, "breakfast")
	assertEdge(t, g, "are", RelCop, "breakfast")
	assertEdge(t, g, "Smoothies", RelNSubj, "breakfast")
	assertEdge(t, g, "popular", RelAMod, "breakfast")
}

func TestParseComparativeThan(t *testing.T) {
	g := parseOK(t, "Is green tea better than coffee?")
	assertRoot(t, g, "better")
	assertEdge(t, g, "Is", RelCop, "better")
	assertEdge(t, g, "tea", RelNSubj, "better")
	assertEdge(t, g, "than", RelPrep, "better")
	assertEdge(t, g, "coffee", RelPObj, "than")
}
