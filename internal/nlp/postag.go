package nlp

import (
	"strings"
	"unicode"
)

// Tag assigns a Penn Treebank POS tag to every token in place. The tagger
// works in three stages, in the spirit of a transformation-based tagger:
//
//  1. lexicon lookup (most likely tag first);
//  2. morphological guessing for unknown words (suffixes, capitalization,
//     digits);
//  3. contextual repair rules that fix systematic ambiguities (verb vs
//     noun after a determiner, base verb after "to"/modal, past participle
//     after "have", etc.).
func Tag(tokens []Token) {
	// Stage 1+2: initial tags.
	for i := range tokens {
		tokens[i].POS = initialTag(tokens, i)
	}
	// Stage 3: contextual repair.
	for i := range tokens {
		repairTag(tokens, i)
	}
	// Fill lemmas once tags are stable.
	for i := range tokens {
		tokens[i].Lemma = Lemma(tokens[i].Lower, tokens[i].POS)
	}
}

// initialTag produces the stage-1/2 tag for tokens[i].
func initialTag(tokens []Token, i int) string {
	t := tokens[i]
	if t.IsPunct() {
		return punctTag(t.Text)
	}
	if isNumber(t.Text) {
		return "CD"
	}
	if tags := lexiconTags(t.Lower); len(tags) > 0 {
		// A capitalized lexicon word mid-sentence that is listed only as a
		// common noun is still more likely a proper noun ("Fall Creek").
		if isCapitalized(t.Text) && i > 0 && tags[0] == "NN" && looksLikeName(tokens, i) {
			return "NNP"
		}
		return tags[0]
	}
	// Unknown word: capitalization signals a proper noun anywhere; at the
	// start of the sentence only when the word is not sentence-initial
	// common vocabulary (it is unknown, so treat as NNP too).
	if isCapitalized(t.Text) {
		return "NNP"
	}
	return suffixTag(t.Lower)
}

// punctTag maps punctuation to its Penn tag.
func punctTag(s string) string {
	switch s {
	case ",":
		return ","
	case ".", "?", "!":
		return "."
	case ":", ";", "…":
		return ":"
	case "(", "[", "{":
		return "-LRB-"
	case ")", "]", "}":
		return "-RRB-"
	case "\"", "“", "”":
		return "''"
	default:
		return "SYM"
	}
}

func isNumber(s string) bool {
	digits := false
	for _, r := range s {
		switch {
		case unicode.IsDigit(r):
			digits = true
		case r == '.' || r == ',' || r == '-' || r == '$' || r == '%' || r == '/':
			// allowed inside numbers like 1,200.50 or 3/4
		default:
			return false
		}
	}
	return digits
}

func isCapitalized(s string) bool {
	r := []rune(s)
	return len(r) > 0 && unicode.IsUpper(r[0])
}

// looksLikeName reports whether a capitalized mid-sentence token is part
// of a multiword proper name (neighbors capitalized or followed by a
// proper noun).
func looksLikeName(tokens []Token, i int) bool {
	if i > 0 && isCapitalized(tokens[i-1].Text) && tokens[i-1].IsWord() {
		return true
	}
	if i+1 < len(tokens) && isCapitalized(tokens[i+1].Text) && tokens[i+1].IsWord() {
		return true
	}
	return false
}

// suffixTag guesses a tag for an unknown lower-case word from its
// morphology.
func hasVowel(s string) bool {
	return strings.ContainsAny(s, "aeiouy")
}

func suffixTag(w string) string {
	switch {
	case strings.HasSuffix(w, "ing") && len(w) > 4 && hasVowel(w[:len(w)-3]):
		return "VBG"
	case strings.HasSuffix(w, "ed") && len(w) > 3:
		return "VBN"
	case strings.HasSuffix(w, "ly") && len(w) > 3:
		return "RB"
	case strings.HasSuffix(w, "ness") || strings.HasSuffix(w, "ment") ||
		strings.HasSuffix(w, "tion") || strings.HasSuffix(w, "sion") ||
		strings.HasSuffix(w, "ity") || strings.HasSuffix(w, "ism") ||
		strings.HasSuffix(w, "ance") || strings.HasSuffix(w, "ence"):
		return "NN"
	case strings.HasSuffix(w, "ous") || strings.HasSuffix(w, "ful") ||
		strings.HasSuffix(w, "able") || strings.HasSuffix(w, "ible") ||
		strings.HasSuffix(w, "ive") || strings.HasSuffix(w, "al") ||
		strings.HasSuffix(w, "ic") || strings.HasSuffix(w, "ish"):
		return "JJ"
	case strings.HasSuffix(w, "est") && len(w) > 4:
		return "JJS"
	case strings.HasSuffix(w, "er") && len(w) > 3:
		return "NN" // agent nouns (baker) are more common than comparatives here
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 2:
		return "NNS"
	default:
		return "NN"
	}
}

func isNounPOS(pos string) bool {
	return strings.HasPrefix(pos, "NN")
}

// hasTag reports whether the lexicon lists tag among the word's candidates.
func hasTag(lower, tag string) bool {
	for _, t := range lexiconTags(lower) {
		if t == tag {
			return true
		}
	}
	return false
}

// repairTag applies contextual transformation rules to tokens[i].
func repairTag(tokens []Token, i int) {
	t := &tokens[i]
	prev := func(k int) *Token {
		j := i - k
		if j < 0 {
			return nil
		}
		return &tokens[j]
	}
	next := func(k int) *Token {
		j := i + k
		if j >= len(tokens) {
			return nil
		}
		return &tokens[j]
	}

	switch {
	// Rule: TO or MD directly before an ambiguous verb/noun -> base verb.
	case (t.POS == "NN" || t.POS == "VBP" || t.POS == "NNS" || t.POS == "VBZ") &&
		prev(1) != nil && (prev(1).POS == "TO" || prev(1).POS == "MD"):
		if hasTag(t.Lower, "VB") || t.POS == "VBP" {
			t.POS = "VB"
		}

	// Rule: pronoun subject directly before an ambiguous word that can be
	// a verb -> finite present verb ("we visit", "I buy").
	case (t.POS == "NN" || t.POS == "VB") && prev(1) != nil && prev(1).POS == "PRP" &&
		(hasTag(t.Lower, "VBP") || hasTag(t.Lower, "VB") || t.POS == "VB"):
		// Under subject-auxiliary inversion ("should I store", "do you
		// exercise") the verb is the base form; otherwise finite present.
		if prev(2) != nil && (prev(2).POS == "MD" || prev(2).Lower == "do" ||
			prev(2).Lower == "does" || prev(2).Lower == "did") {
			t.POS = "VB"
		} else {
			t.POS = "VBP"
		}

	// Rule: determiner/adjective/possessive before a word tagged as a verb
	// that can be a noun -> noun ("the visit", "a drink", "my store").
	case (t.POS == "VB" || t.POS == "VBP") && prev(1) != nil &&
		(prev(1).POS == "DT" || prev(1).POS == "JJ" || prev(1).POS == "PRP$" ||
			prev(1).POS == "JJS" || prev(1).POS == "JJR") &&
		hasTag(t.Lower, "NN"):
		t.POS = "NN"

	// Rule: "have/has/had" before VBD that can be VBN -> VBN.
	case t.POS == "VBD" && prev(1) != nil &&
		(prev(1).Lower == "have" || prev(1).Lower == "has" || prev(1).Lower == "had" || prev(1).Lower == "'ve") &&
		hasTag(t.Lower, "VBN"):
		t.POS = "VBN"

	// Rule: "that" after a noun and before a verb phrase is a relative
	// pronoun (WDT); before a noun phrase it is a determiner.
	case t.Lower == "that" && prev(1) != nil &&
		(prev(1).POS == "NN" || prev(1).POS == "NNS" || prev(1).POS == "NNP"):
		if n := next(1); n != nil && (strings.HasPrefix(n.POS, "VB") || n.POS == "MD" || n.POS == "PRP") {
			t.POS = "WDT"
		}

	// Rule: sentence-initial "Is/Are/Was/Were/Do/Does/Did/Can/Should..."
	// already handled by lexicon; but an NN at position 0 followed by a
	// PRP ("Store it ...") is an imperative verb.
	case i == 0 && t.POS == "NN" && hasTag(t.Lower, "VB") &&
		next(1) != nil && (next(1).POS == "PRP" || next(1).POS == "DT"):
		t.POS = "VB"

	// Rule: "near" tagged IN but used as adjective after "the/most".
	case t.Lower == "near" && prev(1) != nil && prev(1).POS == "RBS":
		t.POS = "JJ"

	// Rule: a clause-final "like" after a noun is the verb, not the
	// preposition ("Which foods do kids like?").
	case t.POS == "IN" && hasTag(t.Lower, "VB") &&
		prev(1) != nil && (isNounPOS(prev(1).POS) || prev(1).POS == "PRP") &&
		(next(1) == nil || next(1).POS == "." || next(1).POS == ","):
		t.POS = "VBP"
	}

	// Superlative pattern: "most <JJ>" keeps JJ; "the most" alone -> JJS
	// handled by lexicon ordering.
	if t.Lower == "most" && i+1 < len(tokens) && tokens[i+1].POS == "JJ" {
		t.POS = "RBS"
	}
	if t.Lower == "more" && i+1 < len(tokens) && tokens[i+1].POS == "JJ" {
		t.POS = "RBR"
	}
}

// Parse tokenizes, tags, lemmatizes and dependency-parses a sentence,
// returning the typed dependency graph. It is the package's one-call
// entry point and mirrors the role of the Stanford Parser in the paper.
func Parse(sentence string) (*DepGraph, error) {
	tokens := Tokenize(sentence)
	Tag(tokens)
	g, err := ParseDependencies(tokens)
	if g != nil {
		g.Source = sentence
	}
	return g, err
}
