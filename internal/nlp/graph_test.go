package nlp

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, s string) *DepGraph {
	t.Helper()
	g, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphLenAndEdges(t *testing.T) {
	g := mustParse(t, "We visit parks.")
	if g.Len() != 4 {
		t.Errorf("Len = %d, want 4", g.Len())
	}
	edges := g.Edges()
	// every non-root node yields one tree edge
	if len(edges) != g.Len()-1 {
		t.Errorf("edges = %d, want %d", len(edges), g.Len()-1)
	}
	for _, e := range edges {
		if e.Head < 0 || e.Head >= g.Len() || e.Dep < 0 || e.Dep >= g.Len() || e.Rel == "" {
			t.Errorf("malformed edge %+v", e)
		}
	}
}

func TestGraphEdgesIncludeExtra(t *testing.T) {
	g := mustParse(t, "What are the best places to visit?")
	tree := 0
	for i := range g.Nodes {
		if g.Nodes[i].Head >= 0 {
			tree++
		}
	}
	if len(g.Extra) == 0 {
		t.Fatal("expected a gap-filling extra edge")
	}
	if got := len(g.Edges()); got != tree+len(g.Extra) {
		t.Errorf("Edges() = %d, want %d", got, tree+len(g.Extra))
	}
}

func TestDependentsAllMergesExtra(t *testing.T) {
	g := mustParse(t, "What are the best places to visit?")
	visit := -1
	for i := range g.Nodes {
		if g.Nodes[i].Text == "visit" {
			visit = i
		}
	}
	tree := g.Dependents(visit, RelDObj)
	all := g.DependentsAll(visit, RelDObj)
	if len(all) <= len(tree) {
		t.Errorf("DependentsAll = %v, tree = %v; want extra edge included", all, tree)
	}
	// no filter: all dependents
	if len(g.DependentsAll(visit)) < len(g.Dependents(visit)) {
		t.Error("unfiltered DependentsAll lost tree dependents")
	}
}

func TestGraphStringFormat(t *testing.T) {
	g := mustParse(t, "We visit parks.")
	s := g.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("String has %d lines:\n%s", len(lines), s)
	}
	// CoNLL-ish: index, form, lemma, pos, head, rel
	first := strings.Split(lines[0], "\t")
	if len(first) != 6 || first[0] != "1" || first[1] != "We" {
		t.Errorf("first line fields = %v", first)
	}
	// extra edges are annotated
	g2 := mustParse(t, "What are the best places to visit?")
	if !strings.Contains(g2.String(), "#extra") {
		t.Errorf("extra edge not rendered:\n%s", g2)
	}
}

func TestPunctTagVariants(t *testing.T) {
	cases := map[string]string{
		",": ",", ".": ".", "?": ".", "!": ".", ";": ":", ":": ":",
		"(": "-LRB-", ")": "-RRB-", "[": "-LRB-", "]": "-RRB-",
		"\"": "''", "…": ":",
	}
	for in, want := range cases {
		if got := punctTag(in); got != want {
			t.Errorf("punctTag(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNounLemmaVariants(t *testing.T) {
	cases := map[string]string{
		"boxes": "box", "churches": "church", "wishes": "wish",
		"classes": "class", "quizzes": "quizz", "glass": "glass",
		"as": "as",
	}
	for in, want := range cases {
		if got := nounLemma(in); got != want {
			t.Errorf("nounLemma(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLooksLikeNameNeighbors(t *testing.T) {
	toks := Tokenize("visit Forest Hotel today")
	Tag(toks)
	if toks[1].POS != "NNP" || toks[2].POS != "NNP" {
		t.Errorf("Forest Hotel tags = %s %s", toks[1].POS, toks[2].POS)
	}
}

func TestSubtreeOrdered(t *testing.T) {
	g := mustParse(t, "We visit parks in the fall.")
	root := g.Root()
	sub := g.Subtree(root)
	for i := 1; i < len(sub); i++ {
		if sub[i] <= sub[i-1] {
			t.Fatalf("Subtree not ascending: %v", sub)
		}
	}
	if len(sub) != g.Len() {
		t.Errorf("root subtree covers %d of %d nodes", len(sub), g.Len())
	}
}
