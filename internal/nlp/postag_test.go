package nlp

import (
	"strings"
	"testing"
)

// tagOf tags the sentence and returns the tag of the token with the given
// surface text (first occurrence).
func tagOf(t *testing.T, sentence, word string) string {
	t.Helper()
	toks := Tokenize(sentence)
	Tag(toks)
	for _, tok := range toks {
		if tok.Text == word {
			return tok.POS
		}
	}
	t.Fatalf("word %q not found in %q", word, sentence)
	return ""
}

func TestTagClosedClasses(t *testing.T) {
	cases := []struct{ sentence, word, want string }{
		{"What are the places?", "What", "WP"},
		{"Which hotel is good?", "Which", "WDT"},
		{"Where do you visit?", "Where", "WRB"},
		{"We should visit.", "should", "MD"},
		{"We should visit.", "We", "PRP"},
		{"the park", "the", "DT"},
		{"in the fall", "in", "IN"},
		{"places and parks", "and", "CC"},
		{"my friend", "my", "PRP$"},
		{"to visit", "to", "TO"},
	}
	for _, c := range cases {
		if got := tagOf(t, c.sentence, c.word); got != c.want {
			t.Errorf("tag(%q in %q) = %s, want %s", c.word, c.sentence, got, c.want)
		}
	}
}

func TestTagOpenClassDisambiguation(t *testing.T) {
	cases := []struct{ sentence, word, want string }{
		// visit: verb after modal, noun after determiner
		{"We should visit Buffalo.", "visit", "VB"},
		{"The visit was long.", "visit", "NN"},
		// store: verb after modal, noun after determiner
		{"How should I store coffee?", "store", "VB"},
		{"The store is closed.", "store", "NN"},
		// buy after TO
		{"I want to buy a camera.", "buy", "VB"},
		// visit after pronoun subject
		{"We visit parks.", "visit", "VBP"},
		// adjectives
		{"interesting places", "interesting", "JJ"},
		{"the best ride", "best", "JJS"},
		// superlative adverb before adjective
		{"the most interesting places", "most", "RBS"},
	}
	for _, c := range cases {
		if got := tagOf(t, c.sentence, c.word); got != c.want {
			t.Errorf("tag(%q in %q) = %s, want %s", c.word, c.sentence, got, c.want)
		}
	}
}

func TestTagProperNouns(t *testing.T) {
	cases := []struct{ sentence, word, want string }{
		{"We visited Buffalo.", "Buffalo", "NNP"},
		{"Forest Hotel is nice.", "Forest", "NNP"},
		{"Forest Hotel is nice.", "Hotel", "NNP"},
		{"Obama should visit Buffalo.", "Obama", "NNP"},
	}
	for _, c := range cases {
		if got := tagOf(t, c.sentence, c.word); got != c.want {
			t.Errorf("tag(%q in %q) = %s, want %s", c.word, c.sentence, got, c.want)
		}
	}
}

func TestTagNumbersAndPunct(t *testing.T) {
	toks := Tokenize("I paid 1,200.50 dollars!")
	Tag(toks)
	byText := map[string]string{}
	for _, tok := range toks {
		byText[tok.Text] = tok.POS
	}
	if byText["1,200.50"] != "CD" {
		t.Errorf("number tag = %s, want CD", byText["1,200.50"])
	}
	if byText["!"] != "." {
		t.Errorf("punct tag = %s, want .", byText["!"])
	}
}

func TestTagUnknownWordSuffixes(t *testing.T) {
	cases := []struct{ sentence, word, want string }{
		{"the zorbling machine was zorbed", "zorbed", "VBN"},
		{"he spoke zorbly", "zorbly", "RB"},
		{"full of zorbness", "zorbness", "NN"},
		{"a zorbful day", "zorbful", "JJ"},
		{"three zorbs", "zorbs", "NNS"},
	}
	for _, c := range cases {
		if got := tagOf(t, c.sentence, c.word); got != c.want {
			t.Errorf("tag(%q) = %s, want %s", c.word, got, c.want)
		}
	}
}

func TestTagHaveParticiple(t *testing.T) {
	if got := tagOf(t, "We have booked a hotel.", "booked"); got != "VBN" {
		t.Errorf("tag(booked after have) = %s, want VBN", got)
	}
}

func TestTagRelativizerThat(t *testing.T) {
	if got := tagOf(t, "The hotel that has a pool.", "that"); got != "WDT" {
		t.Errorf("tag(that before verb) = %s, want WDT", got)
	}
}

func TestTagNegation(t *testing.T) {
	toks := Tokenize("We don't visit museums.")
	Tag(toks)
	var negTag, visitTag string
	for _, tok := range toks {
		if tok.Text == "n't" {
			negTag = tok.POS
		}
		if tok.Text == "visit" {
			visitTag = tok.POS
		}
	}
	if negTag != "RB" {
		t.Errorf("tag(n't) = %s, want RB", negTag)
	}
	if !strings.HasPrefix(visitTag, "VB") {
		t.Errorf("tag(visit) = %s, want verb", visitTag)
	}
}

func TestLemmaVerbs(t *testing.T) {
	cases := []struct{ word, pos, want string }{
		{"is", "VBZ", "be"}, {"are", "VBP", "be"}, {"was", "VBD", "be"},
		{"visits", "VBZ", "visit"}, {"visiting", "VBG", "visit"},
		{"visited", "VBD", "visit"}, {"making", "VBG", "make"},
		{"stored", "VBN", "store"}, {"studied", "VBD", "study"},
		{"stopped", "VBD", "stop"}, {"went", "VBD", "go"},
		{"bought", "VBD", "buy"}, {"eaten", "VBN", "eat"},
		{"has", "VBZ", "have"}, {"does", "VBZ", "do"},
		{"should", "MD", "should"}, {"ca", "MD", "can"},
		{"wo", "MD", "will"},
	}
	for _, c := range cases {
		if got := Lemma(c.word, c.pos); got != c.want {
			t.Errorf("Lemma(%q,%s) = %q, want %q", c.word, c.pos, got, c.want)
		}
	}
}

func TestLemmaNouns(t *testing.T) {
	cases := []struct{ word, pos, want string }{
		{"places", "NNS", "place"}, {"cities", "NNS", "city"},
		{"dishes", "NNS", "dish"}, {"children", "NNS", "child"},
		{"people", "NNS", "person"}, {"glasses", "NNS", "glass"},
		{"buses", "NNS", "bus"}, {"kids", "NNS", "kid"},
		{"park", "NN", "park"},
	}
	for _, c := range cases {
		if got := Lemma(c.word, c.pos); got != c.want {
			t.Errorf("Lemma(%q,%s) = %q, want %q", c.word, c.pos, got, c.want)
		}
	}
}

func TestLemmaComparatives(t *testing.T) {
	cases := []struct{ word, pos, want string }{
		{"better", "JJR", "good"}, {"best", "JJS", "good"},
		{"worse", "JJR", "bad"}, {"worst", "JJS", "bad"},
		{"bigger", "JJR", "big"}, {"easier", "JJR", "easy"},
		{"cheapest", "JJS", "cheap"},
	}
	for _, c := range cases {
		if got := Lemma(c.word, c.pos); got != c.want {
			t.Errorf("Lemma(%q,%s) = %q, want %q", c.word, c.pos, got, c.want)
		}
	}
}

func TestLemmaNegationClitic(t *testing.T) {
	if got := Lemma("n't", "RB"); got != "not" {
		t.Errorf("Lemma(n't) = %q, want not", got)
	}
}

func TestTagFillsAllFields(t *testing.T) {
	toks := Tokenize("Which museums in Buffalo should we visit with kids?")
	Tag(toks)
	for _, tok := range toks {
		if tok.POS == "" {
			t.Errorf("token %q has empty POS", tok.Text)
		}
		if tok.Lemma == "" {
			t.Errorf("token %q has empty lemma", tok.Text)
		}
	}
}
