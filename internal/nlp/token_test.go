package nlp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func texts(toks []Token) []string {
	if len(toks) == 0 {
		return nil
	}
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello world", []string{"Hello", "world"}},
		{"Hello, world!", []string{"Hello", ",", "world", "!"}},
		{"What are the most interesting places?",
			[]string{"What", "are", "the", "most", "interesting", "places", "?"}},
		{"Forest Hotel, Buffalo, NY", []string{"Forest", "Hotel", ",", "Buffalo", ",", "NY"}},
		{"(in the fall)", []string{"(", "in", "the", "fall", ")"}},
		{"", nil},
		{"   ", nil},
	}
	for _, c := range cases {
		got := texts(Tokenize(c.in))
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeContractions(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"don't", []string{"do", "n't"}},
		{"Don't", []string{"Do", "n't"}},
		{"can't", []string{"ca", "n't"}},
		{"won't", []string{"wo", "n't"}},
		{"I'm", []string{"I", "'m"}},
		{"we're", []string{"we", "'re"}},
		{"they've", []string{"they", "'ve"}},
		{"she'll", []string{"she", "'ll"}},
		{"he'd", []string{"he", "'d"}},
		{"let's", []string{"let", "'s"}},
		{"cannot", []string{"can", "not"}},
		{"the hotel's pool", []string{"the", "hotel", "'s", "pool"}},
	}
	for _, c := range cases {
		got := texts(Tokenize(c.in))
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeAbbreviations(t *testing.T) {
	got := texts(Tokenize("Buffalo, N.Y. is cold."))
	want := []string{"Buffalo", ",", "N.Y.", "is", "cold", "."}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeIndexesSequential(t *testing.T) {
	toks := Tokenize("What type of digital camera should I buy?")
	for i, tok := range toks {
		if tok.Index != i {
			t.Fatalf("token %d has Index %d", i, tok.Index)
		}
		if tok.Lower != strings.ToLower(tok.Text) {
			t.Fatalf("token %q Lower = %q", tok.Text, tok.Lower)
		}
	}
}

func TestTokenPredicates(t *testing.T) {
	if !(Token{Text: "abc"}).IsWord() {
		t.Error("IsWord(abc) = false")
	}
	if (Token{Text: "?"}).IsWord() {
		t.Error("IsWord(?) = true")
	}
	if !(Token{Text: "?"}).IsPunct() {
		t.Error("IsPunct(?) = false")
	}
	if (Token{Text: "abc"}).IsPunct() {
		t.Error("IsPunct(abc) = true")
	}
	if (Token{Text: ""}).IsPunct() {
		t.Error("IsPunct(empty) = true")
	}
	if (Token{Text: "42"}).IsWord() {
		t.Error("IsWord(42) = true")
	}
}

func TestSplitSentences(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"One sentence.", []string{"One sentence."}},
		{"First one. Second one?", []string{"First one.", "Second one?"}},
		{"Is it good? Yes! Fine.", []string{"Is it good?", "Yes!", "Fine."}},
		{"We visited Buffalo. it was cold", []string{"We visited Buffalo. it was cold"}},
		{"no terminal punctuation", []string{"no terminal punctuation"}},
		{"", nil},
	}
	for _, c := range cases {
		got := SplitSentences(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitSentences(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: tokenization never loses non-space characters for plain
// alphanumeric input.
func TestTokenizePreservesLetters(t *testing.T) {
	words := []string{"alpha", "beta", "Gamma", "delta42", "x"}
	f := func(picks []uint8) bool {
		var in []string
		for _, p := range picks {
			in = append(in, words[int(p)%len(words)])
		}
		sentence := strings.Join(in, " ")
		toks := Tokenize(sentence)
		var rebuilt []string
		for _, tok := range toks {
			rebuilt = append(rebuilt, tok.Text)
		}
		return strings.Join(rebuilt, " ") == sentence
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeSpans(t *testing.T) {
	in := "When can I reach the falls from Forest Hills?"
	for _, tok := range Tokenize(in) {
		if got := in[tok.Start:tok.End]; got != tok.Text {
			t.Errorf("token %d %q has span [%d,%d) = %q", tok.Index, tok.Text, tok.Start, tok.End, got)
		}
	}
}

// Spans of contraction pieces must cover the source word, in order, even
// when the piece text is canonicalized ("can't" -> "ca"+"n't").
func TestTokenizeContractionSpans(t *testing.T) {
	in := "  Don't we visit the hotel's pool?"
	toks := Tokenize(in)
	prevEnd := 0
	for _, tok := range toks {
		if tok.Start < prevEnd && tok.End > tok.Start {
			// Overlap is only allowed for fallback pieces sharing a span.
			if in[tok.Start:tok.End] == tok.Text {
				t.Errorf("token %q span [%d,%d) overlaps previous end %d", tok.Text, tok.Start, tok.End, prevEnd)
			}
		}
		if tok.Start < 0 || tok.End > len(in) || tok.End < tok.Start {
			t.Fatalf("token %q has invalid span [%d,%d)", tok.Text, tok.Start, tok.End)
		}
		if tok.End > prevEnd {
			prevEnd = tok.End
		}
	}
	// "Don't" splits exactly: "Do" [2,4), "n't" [4,7).
	if toks[0].Text != "Do" || toks[0].Start != 2 || toks[0].End != 4 {
		t.Errorf("first token = %+v, want Do [2,4)", toks[0])
	}
	if toks[1].Text != "n't" || toks[1].Start != 4 || toks[1].End != 7 {
		t.Errorf("second token = %+v, want n't [4,7)", toks[1])
	}
}

// Property: token spans are valid, non-inverted, and in non-decreasing
// start order for arbitrary input.
func TestTokenizeSpanInvariant(t *testing.T) {
	f := func(s string) bool {
		lastStart := 0
		for _, tok := range Tokenize(s) {
			if tok.Start < 0 || tok.End > len(s) || tok.End < tok.Start || tok.Start < lastStart {
				return false
			}
			lastStart = tok.Start
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every token index matches its slice position for arbitrary
// printable input.
func TestTokenizeIndexInvariant(t *testing.T) {
	f := func(s string) bool {
		for i, tok := range Tokenize(s) {
			if tok.Index != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
