package nlp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func texts(toks []Token) []string {
	if len(toks) == 0 {
		return nil
	}
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello world", []string{"Hello", "world"}},
		{"Hello, world!", []string{"Hello", ",", "world", "!"}},
		{"What are the most interesting places?",
			[]string{"What", "are", "the", "most", "interesting", "places", "?"}},
		{"Forest Hotel, Buffalo, NY", []string{"Forest", "Hotel", ",", "Buffalo", ",", "NY"}},
		{"(in the fall)", []string{"(", "in", "the", "fall", ")"}},
		{"", nil},
		{"   ", nil},
	}
	for _, c := range cases {
		got := texts(Tokenize(c.in))
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeContractions(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"don't", []string{"do", "n't"}},
		{"Don't", []string{"Do", "n't"}},
		{"can't", []string{"ca", "n't"}},
		{"won't", []string{"wo", "n't"}},
		{"I'm", []string{"I", "'m"}},
		{"we're", []string{"we", "'re"}},
		{"they've", []string{"they", "'ve"}},
		{"she'll", []string{"she", "'ll"}},
		{"he'd", []string{"he", "'d"}},
		{"let's", []string{"let", "'s"}},
		{"cannot", []string{"can", "not"}},
		{"the hotel's pool", []string{"the", "hotel", "'s", "pool"}},
	}
	for _, c := range cases {
		got := texts(Tokenize(c.in))
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeAbbreviations(t *testing.T) {
	got := texts(Tokenize("Buffalo, N.Y. is cold."))
	want := []string{"Buffalo", ",", "N.Y.", "is", "cold", "."}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeIndexesSequential(t *testing.T) {
	toks := Tokenize("What type of digital camera should I buy?")
	for i, tok := range toks {
		if tok.Index != i {
			t.Fatalf("token %d has Index %d", i, tok.Index)
		}
		if tok.Lower != strings.ToLower(tok.Text) {
			t.Fatalf("token %q Lower = %q", tok.Text, tok.Lower)
		}
	}
}

func TestTokenPredicates(t *testing.T) {
	if !(Token{Text: "abc"}).IsWord() {
		t.Error("IsWord(abc) = false")
	}
	if (Token{Text: "?"}).IsWord() {
		t.Error("IsWord(?) = true")
	}
	if !(Token{Text: "?"}).IsPunct() {
		t.Error("IsPunct(?) = false")
	}
	if (Token{Text: "abc"}).IsPunct() {
		t.Error("IsPunct(abc) = true")
	}
	if (Token{Text: ""}).IsPunct() {
		t.Error("IsPunct(empty) = true")
	}
	if (Token{Text: "42"}).IsWord() {
		t.Error("IsWord(42) = true")
	}
}

func TestSplitSentences(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"One sentence.", []string{"One sentence."}},
		{"First one. Second one?", []string{"First one.", "Second one?"}},
		{"Is it good? Yes! Fine.", []string{"Is it good?", "Yes!", "Fine."}},
		{"We visited Buffalo. it was cold", []string{"We visited Buffalo. it was cold"}},
		{"no terminal punctuation", []string{"no terminal punctuation"}},
		{"", nil},
	}
	for _, c := range cases {
		got := SplitSentences(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitSentences(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: tokenization never loses non-space characters for plain
// alphanumeric input.
func TestTokenizePreservesLetters(t *testing.T) {
	words := []string{"alpha", "beta", "Gamma", "delta42", "x"}
	f := func(picks []uint8) bool {
		var in []string
		for _, p := range picks {
			in = append(in, words[int(p)%len(words)])
		}
		sentence := strings.Join(in, " ")
		toks := Tokenize(sentence)
		var rebuilt []string
		for _, tok := range toks {
			rebuilt = append(rebuilt, tok.Text)
		}
		return strings.Join(rebuilt, " ") == sentence
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every token index matches its slice position for arbitrary
// printable input.
func TestTokenizeIndexInvariant(t *testing.T) {
	f := func(s string) bool {
		for i, tok := range Tokenize(s) {
			if tok.Index != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
