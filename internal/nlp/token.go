// Package nlp is the natural-language parsing substrate of NL2CM. It
// substitutes for the Stanford Parser used in the paper: a tokenizer, a
// lexicon- and rule-based Part-Of-Speech tagger (Penn Treebank tagset), a
// rule-based lemmatizer, and a deterministic dependency parser that emits
// Stanford-style typed dependencies (nsubj, dobj, amod, prep, pobj, aux,
// ...). Downstream modules consume only the POS tags and the typed
// dependency graph, so the interface matches the paper's.
package nlp

import (
	"strings"
	"unicode"
)

// Token is a single meaningful unit of the input text.
type Token struct {
	// Index is the 0-based position in the sentence.
	Index int
	// Text is the surface form as it appeared (minus splitting).
	Text string
	// Lower is the lower-cased surface form.
	Lower string
	// Lemma is the dictionary form, filled by the lemmatizer.
	Lemma string
	// POS is the Penn Treebank part-of-speech tag, filled by the tagger.
	POS string
}

// contractionSplits maps contracted surface forms to their token splits,
// mirroring Penn Treebank tokenization.
var contractionSplits = map[string][]string{
	"n't":    {"n't"},
	"can't":  {"ca", "n't"},
	"won't":  {"wo", "n't"},
	"shan't": {"sha", "n't"},
	"cannot": {"can", "not"},
	"i'm":    {"i", "'m"},
	"let's":  {"let", "'s"},
	"'s":     {"'s"},
	"'re":    {"'re"},
	"'ve":    {"'ve"},
	"'ll":    {"'ll"},
	"'d":     {"'d"},
}

// clitics are suffixes split off a token, longest first.
var clitics = []string{"n't", "'re", "'ve", "'ll", "'m", "'d", "'s"}

// Tokenize splits a sentence into Penn-Treebank-style tokens: punctuation
// is separated, standard contractions are split ("don't" -> "do", "n't"),
// and whitespace is collapsed. Lemma and POS fields are left empty.
func Tokenize(text string) []Token {
	var raw []string
	for _, field := range strings.Fields(text) {
		raw = append(raw, splitPunct(field)...)
	}
	var out []Token
	for _, w := range raw {
		for _, piece := range splitContraction(w) {
			out = append(out, Token{
				Index: len(out),
				Text:  piece,
				Lower: strings.ToLower(piece),
			})
		}
	}
	return out
}

// splitPunct separates leading/trailing punctuation from a whitespace
// field, keeping internal hyphens, apostrophes, and periods in
// abbreviations.
func splitPunct(w string) []string {
	var lead, trail []string
	// Peel leading punctuation.
	for len(w) > 0 {
		r := rune(w[0])
		if isSplitPunct(r) {
			lead = append(lead, string(r))
			w = w[1:]
			continue
		}
		break
	}
	// Peel trailing punctuation. Keep a period that is part of an
	// abbreviation like "N.Y." (token still contains another period).
	for len(w) > 0 {
		r := rune(w[len(w)-1])
		if !isSplitPunct(r) {
			break
		}
		if r == '.' && strings.Count(w, ".") > 1 {
			break // abbreviation such as U.S. or N.Y.
		}
		trail = append([]string{string(r)}, trail...)
		w = w[:len(w)-1]
	}
	var out []string
	out = append(out, lead...)
	if w != "" {
		out = append(out, w)
	}
	out = append(out, trail...)
	return out
}

func isSplitPunct(r rune) bool {
	switch r {
	case '.', ',', '?', '!', ';', ':', '(', ')', '[', ']', '{', '}', '"', '“', '”', '…':
		return true
	}
	return false
}

// splitContraction splits clitic contractions from a word.
func splitContraction(w string) []string {
	lw := strings.ToLower(w)
	if parts, ok := contractionSplits[lw]; ok {
		return restoreCase(w, parts)
	}
	for _, cl := range clitics {
		if strings.HasSuffix(lw, cl) && len(lw) > len(cl) {
			stem := w[:len(w)-len(cl)]
			suffix := w[len(w)-len(cl):]
			// "n't" needs the n restored to the suffix.
			if cl == "n't" {
				if len(stem) == 0 {
					break
				}
			}
			if stem == "" {
				break
			}
			return []string{stem, suffix}
		}
	}
	return []string{w}
}

// restoreCase maps the canonical lower-case split back onto the original
// casing where lengths allow; it falls back to the canonical pieces.
func restoreCase(orig string, parts []string) []string {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != len(orig) {
		return parts
	}
	out := make([]string, len(parts))
	off := 0
	for i, p := range parts {
		out[i] = orig[off : off+len(p)]
		off += len(p)
	}
	return out
}

// IsWord reports whether the token is alphabetic (contains at least one
// letter), i.e. not pure punctuation or a number.
func (t Token) IsWord() bool {
	for _, r := range t.Text {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

// IsPunct reports whether the token consists solely of punctuation.
func (t Token) IsPunct() bool {
	if t.Text == "" {
		return false
	}
	for _, r := range t.Text {
		if !unicode.IsPunct(r) && !unicode.IsSymbol(r) {
			return false
		}
	}
	return true
}

// SplitSentences performs a light-weight sentence split on terminal
// punctuation followed by whitespace and an upper-case letter.
func SplitSentences(text string) []string {
	var out []string
	start := 0
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r == '.' || r == '?' || r == '!' {
			j := i + 1
			for j < len(runes) && unicode.IsSpace(runes[j]) {
				j++
			}
			if j >= len(runes) || unicode.IsUpper(runes[j]) {
				s := strings.TrimSpace(string(runes[start : i+1]))
				if s != "" {
					out = append(out, s)
				}
				start = j
				i = j - 1
			}
		}
	}
	if tail := strings.TrimSpace(string(runes[start:])); tail != "" {
		out = append(out, tail)
	}
	return out
}
