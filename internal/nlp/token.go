// Package nlp is the natural-language parsing substrate of NL2CM. It
// substitutes for the Stanford Parser used in the paper: a tokenizer, a
// lexicon- and rule-based Part-Of-Speech tagger (Penn Treebank tagset), a
// rule-based lemmatizer, and a deterministic dependency parser that emits
// Stanford-style typed dependencies (nsubj, dobj, amod, prep, pobj, aux,
// ...). Downstream modules consume only the POS tags and the typed
// dependency graph, so the interface matches the paper's.
//
// Every token carries span provenance: Index is its stable token ID
// (tagging, lemmatization and dependency parsing all mutate tokens in
// place, so the ID survives the whole pipeline) and [Start, End) is its
// byte span in the original input, from which downstream layers resolve
// token-ID sets back to source text (see the prov package).
package nlp

import (
	"strings"
	"unicode"

	"nl2cm/internal/prov"
)

// Token is a single meaningful unit of the input text.
type Token struct {
	// Index is the 0-based position in the sentence. It is the token's
	// stable ID: all later pipeline stages (tagger, lemmatizer,
	// dependency parser) mutate tokens in place and never reorder them,
	// so provenance token sets reference this value.
	Index int
	// Text is the surface form as it appeared (minus splitting).
	Text string
	// Lower is the lower-cased surface form.
	Lower string
	// Lemma is the dictionary form, filled by the lemmatizer.
	Lemma string
	// POS is the Penn Treebank part-of-speech tag, filled by the tagger.
	POS string
	// Start and End delimit the token's byte span [Start, End) in the
	// original input. When a contraction split cannot be mapped back to
	// exact byte offsets, the pieces share their source word's span.
	Start, End int
}

// Span returns the token's byte span in the original input.
func (t Token) Span() prov.Span { return prov.Span{Start: t.Start, End: t.End} }

// frag is a piece of the input under tokenization, with its byte span.
type frag struct {
	text       string
	start, end int
}

// contractionSplits maps contracted surface forms to their token splits,
// mirroring Penn Treebank tokenization.
var contractionSplits = map[string][]string{
	"n't":    {"n't"},
	"can't":  {"ca", "n't"},
	"won't":  {"wo", "n't"},
	"shan't": {"sha", "n't"},
	"cannot": {"can", "not"},
	"i'm":    {"i", "'m"},
	"let's":  {"let", "'s"},
	"'s":     {"'s"},
	"'re":    {"'re"},
	"'ve":    {"'ve"},
	"'ll":    {"'ll"},
	"'d":     {"'d"},
}

// clitics are suffixes split off a token, longest first.
var clitics = []string{"n't", "'re", "'ve", "'ll", "'m", "'d", "'s"}

// Tokenize splits a sentence into Penn-Treebank-style tokens: punctuation
// is separated, standard contractions are split ("don't" -> "do", "n't"),
// and whitespace is collapsed. Lemma and POS fields are left empty; each
// token records its byte span in text.
func Tokenize(text string) []Token {
	var raw []frag
	for _, field := range fields(text) {
		raw = append(raw, splitPunct(field)...)
	}
	var out []Token
	for _, w := range raw {
		for _, piece := range splitContraction(w) {
			out = append(out, Token{
				Index: len(out),
				Text:  piece.text,
				Lower: strings.ToLower(piece.text),
				Start: piece.start,
				End:   piece.end,
			})
		}
	}
	return out
}

// fields splits on Unicode whitespace like strings.Fields, keeping byte
// offsets.
func fields(text string) []frag {
	var out []frag
	start := -1
	for i, r := range text {
		if unicode.IsSpace(r) {
			if start >= 0 {
				out = append(out, frag{text: text[start:i], start: start, end: i})
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, frag{text: text[start:], start: start, end: len(text)})
	}
	return out
}

// splitPunct separates leading/trailing punctuation from a whitespace
// field, keeping internal hyphens, apostrophes, and periods in
// abbreviations.
func splitPunct(f frag) []frag {
	w, off := f.text, f.start
	var lead, trail []frag
	// Peel leading punctuation.
	for len(w) > 0 {
		r := rune(w[0])
		if isSplitPunct(r) {
			lead = append(lead, frag{text: string(r), start: off, end: off + 1})
			w = w[1:]
			off++
			continue
		}
		break
	}
	// Peel trailing punctuation. Keep a period that is part of an
	// abbreviation like "N.Y." (token still contains another period).
	end := off + len(w)
	for len(w) > 0 {
		r := rune(w[len(w)-1])
		if !isSplitPunct(r) {
			break
		}
		if r == '.' && strings.Count(w, ".") > 1 {
			break // abbreviation such as U.S. or N.Y.
		}
		trail = append([]frag{{text: string(r), start: end - 1, end: end}}, trail...)
		w = w[:len(w)-1]
		end--
	}
	var out []frag
	out = append(out, lead...)
	if w != "" {
		out = append(out, frag{text: w, start: off, end: end})
	}
	out = append(out, trail...)
	return out
}

func isSplitPunct(r rune) bool {
	switch r {
	case '.', ',', '?', '!', ';', ':', '(', ')', '[', ']', '{', '}', '"', '“', '”', '…':
		return true
	}
	return false
}

// splitContraction splits clitic contractions from a word, carving the
// word's byte span into per-piece spans when the pieces partition it
// (pieces of a case-restoration fallback share the whole word's span).
func splitContraction(f frag) []frag {
	w := f.text
	lw := strings.ToLower(w)
	if parts, ok := contractionSplits[lw]; ok {
		return restoreCase(f, parts)
	}
	for _, cl := range clitics {
		if strings.HasSuffix(lw, cl) && len(lw) > len(cl) {
			stem := w[:len(w)-len(cl)]
			suffix := w[len(w)-len(cl):]
			// "n't" needs the n restored to the suffix.
			if cl == "n't" {
				if len(stem) == 0 {
					break
				}
			}
			if stem == "" {
				break
			}
			cut := f.start + len(stem)
			return []frag{
				{text: stem, start: f.start, end: cut},
				{text: suffix, start: cut, end: f.end},
			}
		}
	}
	return []frag{f}
}

// restoreCase maps the canonical lower-case split back onto the original
// casing (and byte spans) where lengths allow; it falls back to the
// canonical pieces, which then share the source word's span.
func restoreCase(f frag, parts []string) []frag {
	orig := f.text
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]frag, len(parts))
	if total != len(orig) {
		for i, p := range parts {
			out[i] = frag{text: p, start: f.start, end: f.end}
		}
		return out
	}
	off := 0
	for i, p := range parts {
		out[i] = frag{
			text:  orig[off : off+len(p)],
			start: f.start + off,
			end:   f.start + off + len(p),
		}
		off += len(p)
	}
	return out
}

// IsWord reports whether the token is alphabetic (contains at least one
// letter), i.e. not pure punctuation or a number.
func (t Token) IsWord() bool {
	for _, r := range t.Text {
		if unicode.IsLetter(r) {
			return true
		}
	}
	return false
}

// IsPunct reports whether the token consists solely of punctuation.
func (t Token) IsPunct() bool {
	if t.Text == "" {
		return false
	}
	for _, r := range t.Text {
		if !unicode.IsPunct(r) && !unicode.IsSymbol(r) {
			return false
		}
	}
	return true
}

// SplitSentences performs a light-weight sentence split on terminal
// punctuation followed by whitespace and an upper-case letter.
func SplitSentences(text string) []string {
	var out []string
	start := 0
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r == '.' || r == '?' || r == '!' {
			j := i + 1
			for j < len(runes) && unicode.IsSpace(runes[j]) {
				j++
			}
			if j >= len(runes) || unicode.IsUpper(runes[j]) {
				s := strings.TrimSpace(string(runes[start : i+1]))
				if s != "" {
					out = append(out, s)
				}
				start = j
				i = j - 1
			}
		}
	}
	if tail := strings.TrimSpace(string(runes[start:])); tail != "" {
		out = append(out, tail)
	}
	return out
}
