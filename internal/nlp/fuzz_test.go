package nlp

import (
	"testing"
)

// FuzzParse asserts the full NL pipeline (tokenize, tag, lemmatize,
// dependency-parse) never panics, that accepted graphs satisfy Validate,
// and that token span provenance stays within the input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?",
		"Where should I buy a tent?",
		"Don't we visit the hotel's pool?",
		"Is chocolate milk good for kids?",
		"Buffalo, N.Y. is cold.",
		"can't won't cannot let's I'm",
		"(in the fall)",
		"?!?",
		"",
		"  \t\n ",
		"a",
		"été café “quoted” …",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if g == nil {
			t.Fatal("Parse returned nil graph with nil error")
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v\ninput: %q", err, input)
		}
		if g.Source != input {
			t.Fatalf("graph Source = %q, want input %q", g.Source, input)
		}
		lastStart := 0
		for i := range g.Nodes {
			tok := g.Nodes[i].Token
			if tok.Index != i {
				t.Fatalf("token %d has Index %d", i, tok.Index)
			}
			if tok.Start < 0 || tok.End > len(input) || tok.End < tok.Start || tok.Start < lastStart {
				t.Fatalf("token %d %q has invalid span [%d,%d) in input of %d bytes",
					i, tok.Text, tok.Start, tok.End, len(input))
			}
			lastStart = tok.Start
		}
	})
}
