package nlp

import (
	"fmt"
	"strings"
)

// ParseDependencies builds a typed dependency graph for a tagged token
// sequence. The parser is deterministic and targets the question-style
// English that NL2CM receives: wh-questions (copular and with auxiliary
// inversion), yes/no questions, imperatives and simple declaratives, with
// prepositional phrases, relative clauses, infinitival modifiers,
// appositions, conjunctions and possessives.
//
// The produced relations are the Stanford-style labels declared in
// graph.go. The tree is rooted at the main predicate; relative-clause
// verbs additionally assign their gap role to the modified noun through
// Extra edges, keeping the tree acyclic.
func ParseDependencies(tokens []Token) (*DepGraph, error) {
	if len(tokens) == 0 {
		return nil, fmt.Errorf("nlp: empty sentence")
	}
	p := &depParser{g: &DepGraph{Nodes: make([]Node, len(tokens))}}
	for i, t := range tokens {
		p.g.Nodes[i] = Node{Token: t, Head: -2}
	}
	p.chunk()
	p.parseClause()
	p.finish()
	if err := p.g.Validate(); err != nil {
		return nil, fmt.Errorf("nlp: parse produced invalid graph: %w", err)
	}
	return p.g, nil
}

// chunk kinds.
const (
	ckNP    = "NP"
	ckADJP  = "ADJP"
	ckV     = "V"
	ckMD    = "MD"
	ckIN    = "IN"
	ckTO    = "TO"
	ckWRB   = "WRB"
	ckRB    = "RB"
	ckCC    = "CC"
	ckREL   = "REL" // relativizer that/which/who after a noun
	ckEX    = "EX"
	ckRP    = "RP"
	ckPunct = "PUNCT"
	ckX     = "X"
)

type chunk struct {
	kind       string
	start, end int // token span [start, end)
	head       int // head token index
}

type depParser struct {
	g      *DepGraph
	chunks []chunk
}

func (p *depParser) tok(i int) *Node { return &p.g.Nodes[i] }

// attach sets the head and relation of token dep.
func (p *depParser) attach(dep, head int, rel string) {
	if dep == head || dep < 0 {
		return
	}
	n := p.tok(dep)
	if n.Head != -2 {
		return // already attached
	}
	n.Head = head
	n.Rel = rel
}

func (p *depParser) setRoot(i int) {
	n := p.tok(i)
	if n.Head != -2 {
		return
	}
	n.Head = -1
	n.Rel = RelRoot
}

func isNounTag(pos string) bool {
	switch pos {
	case "NN", "NNS", "NNP", "NNPS":
		return true
	}
	return false
}

func isVerbTag(pos string) bool {
	switch pos {
	case "VB", "VBD", "VBG", "VBN", "VBP", "VBZ":
		return true
	}
	return false
}

func isAdjTag(pos string) bool {
	switch pos {
	case "JJ", "JJR", "JJS":
		return true
	}
	return false
}

// chunk groups the token stream into base phrases and assigns NP-internal
// dependencies.
func (p *depParser) chunk() {
	toks := p.g.Nodes
	n := len(toks)
	i := 0
	for i < n {
		t := &toks[i]
		switch {
		case t.IsPunct():
			p.add(chunk{ckPunct, i, i + 1, i})
			i++
		case t.POS == "EX":
			p.add(chunk{ckEX, i, i + 1, i})
			i++
		case t.POS == "PRP":
			p.add(chunk{ckNP, i, i + 1, i})
			i++
		case (t.POS == "WDT" || t.POS == "WP" || t.Lower == "that") &&
			i > 0 && isNounTag(toks[i-1].POS):
			// Relativizer after a noun: "hotel that ...", "dish which ...".
			p.add(chunk{ckREL, i, i + 1, i})
			i++
		case t.POS == "WP" || t.POS == "WDT" || t.POS == "WP$":
			if j := p.npEnd(i + 1); j > i+1 {
				// wh-determiner heading an NP: "what type", "which hotel".
				end, head := p.npInternal(i, j)
				p.add(chunk{ckNP, i, end, head})
				i = end
			} else {
				p.add(chunk{ckNP, i, i + 1, i})
				i++
			}
		case t.POS == "WRB":
			p.add(chunk{ckWRB, i, i + 1, i})
			i++
		case t.POS == "MD":
			p.add(chunk{ckMD, i, i + 1, i})
			i++
		case isVerbTag(t.POS):
			p.add(chunk{ckV, i, i + 1, i})
			i++
		case t.POS == "IN":
			p.add(chunk{ckIN, i, i + 1, i})
			i++
		case t.POS == "TO":
			p.add(chunk{ckTO, i, i + 1, i})
			i++
		case t.POS == "CC":
			p.add(chunk{ckCC, i, i + 1, i})
			i++
		case t.POS == "RP":
			p.add(chunk{ckRP, i, i + 1, i})
			i++
		case t.POS == "RB" || t.POS == "RBR" || t.POS == "RBS":
			// Adverb directly before an adjective belongs to the
			// adjective phrase / NP; handled by npEnd below.
			if j := p.npEnd(i); j > i {
				end, head := p.npInternal(i, j)
				p.add(chunk{ckNP, i, end, head})
				i = end
			} else if j := p.adjpEnd(i); j > i {
				end, head := p.adjpInternal(i, j)
				p.add(chunk{ckADJP, i, end, head})
				i = end
			} else {
				p.add(chunk{ckRB, i, i + 1, i})
				i++
			}
		case t.POS == "DT" || t.POS == "PRP$" || t.POS == "PDT" ||
			isAdjTag(t.POS) || isNounTag(t.POS) || t.POS == "CD" ||
			t.POS == "VBG" || t.POS == "VBN":
			if j := p.npEnd(i); j > i {
				end, head := p.npInternal(i, j)
				p.add(chunk{ckNP, i, end, head})
				i = end
			} else if isAdjTag(t.POS) {
				end, head := p.adjpInternal(i, p.adjpEnd(i))
				p.add(chunk{ckADJP, i, end, head})
				i = end
			} else {
				p.add(chunk{ckX, i, i + 1, i})
				i++
			}
		default:
			p.add(chunk{ckX, i, i + 1, i})
			i++
		}
	}
}

func (p *depParser) add(c chunk) { p.chunks = append(p.chunks, c) }

// npEnd returns the exclusive end of an NP starting at i, or i when no NP
// starts there. An NP must contain at least one noun (or end in CD).
func (p *depParser) npEnd(i int) int {
	toks := p.g.Nodes
	n := len(toks)
	j := i
	if j < n && toks[j].POS == "PDT" {
		j++
	}
	if j < n && (toks[j].POS == "DT" || toks[j].POS == "PRP$" ||
		toks[j].POS == "WDT" || toks[j].POS == "WP$" || toks[j].POS == "WP") {
		j++
	}
	// pre-modifiers: adverbs (only before adjectives), adjectives,
	// participles, cardinals.
	sawNoun := false
	for j < n {
		pos := toks[j].POS
		switch {
		case (pos == "RB" || pos == "RBS" || pos == "RBR") &&
			j+1 < n && (isAdjTag(toks[j+1].POS) || toks[j+1].POS == "VBG" || toks[j+1].POS == "VBN"):
			j++
		case isAdjTag(pos) || pos == "CD" || pos == "VBG" || pos == "VBN":
			// A participle only joins the NP when a noun follows.
			if (pos == "VBG" || pos == "VBN") && !(j+1 < n && p.nounAhead(j+1)) {
				goto done
			}
			j++
		case isNounTag(pos):
			sawNoun = true
			j++
			// possessive marker continues the NP: "friend 's house".
			if j < n && toks[j].POS == "POS" && j+1 < n && p.nounAhead(j+1) {
				j++
			}
		default:
			goto done
		}
	}
done:
	if !sawNoun {
		return i
	}
	// Trim trailing adjectives that were not followed by a noun.
	for j > i && !isNounTag(toks[j-1].POS) && toks[j-1].POS != "CD" {
		j--
	}
	if j == i {
		return i
	}
	return j
}

// nounAhead reports whether a noun occurs at or after i before the NP
// could end (i.e. within the run of NP-internal tags).
func (p *depParser) nounAhead(i int) bool {
	toks := p.g.Nodes
	for ; i < len(toks); i++ {
		pos := toks[i].POS
		if isNounTag(pos) {
			return true
		}
		if isAdjTag(pos) || pos == "CD" || pos == "VBG" || pos == "VBN" ||
			pos == "RB" || pos == "RBS" || pos == "RBR" {
			continue
		}
		return false
	}
	return false
}

// npInternal assigns NP-internal edges for span [start,end) and returns
// (end, head index). The head is the last noun (or last token).
func (p *depParser) npInternal(start, end int) (int, int) {
	toks := p.g.Nodes
	head := end - 1
	for k := end - 1; k >= start; k-- {
		if isNounTag(toks[k].POS) {
			head = k
			break
		}
	}
	for k := start; k < end; k++ {
		if k == head {
			continue
		}
		pos := toks[k].POS
		switch {
		case pos == "PDT":
			p.attach(k, head, RelPredet)
		case pos == "DT" || pos == "WDT" || pos == "WP":
			p.attach(k, head, RelDet)
		case pos == "PRP$" || pos == "WP$":
			// A possessive pronoun modifies the possessor noun when a
			// possessive marker follows it ("my friend 's house"), else
			// the NP head.
			target := head
			for j := k + 1; j < end; j++ {
				if isNounTag(toks[j].POS) {
					if j+1 < end && toks[j+1].POS == "POS" {
						target = j
					}
					break
				}
			}
			p.attach(k, target, RelPoss)
		case pos == "POS":
			// possessive marker attaches to the possessor noun to its left
			if k > start {
				p.attach(k, k-1, "possessive")
				// the possessor noun modifies the head
				if k-1 != head {
					p.tok(k - 1).Head = -2 // allow reattachment
					p.attach(k-1, head, RelPoss)
				}
			}
		case pos == "RB" || pos == "RBS" || pos == "RBR":
			// attaches to the following adjective if any, else the head
			if k+1 < end && (isAdjTag(toks[k+1].POS) || toks[k+1].POS == "VBG" || toks[k+1].POS == "VBN") {
				p.attach(k, k+1, RelAdvMod)
			} else {
				p.attach(k, head, RelAdvMod)
			}
		case isAdjTag(pos) || pos == "VBG" || pos == "VBN":
			p.attach(k, head, RelAMod)
		case pos == "CD":
			p.attach(k, head, RelNum)
		case isNounTag(pos):
			if k < head {
				p.attach(k, head, RelNN)
			} else {
				p.attach(k, head, RelDep)
			}
		default:
			p.attach(k, head, RelDep)
		}
	}
	return end, head
}

// adjpEnd returns the exclusive end of a bare adjective phrase at i.
func (p *depParser) adjpEnd(i int) int {
	toks := p.g.Nodes
	j := i
	for j < len(toks) {
		pos := toks[j].POS
		if (pos == "RB" || pos == "RBS" || pos == "RBR") && j+1 < len(toks) && isAdjTag(toks[j+1].POS) {
			j++
			continue
		}
		if isAdjTag(pos) {
			j++
			continue
		}
		break
	}
	return j
}

func (p *depParser) adjpInternal(start, end int) (int, int) {
	toks := p.g.Nodes
	head := end - 1
	for k := start; k < end-1; k++ {
		if toks[k].POS == "RB" || toks[k].POS == "RBS" || toks[k].POS == "RBR" {
			p.attach(k, k+1, RelAdvMod)
		} else if isAdjTag(toks[k].POS) {
			p.attach(k, head, RelAMod)
		}
	}
	return end, head
}

// ---------- clause-level parsing ----------

type clauseState struct {
	root     int // main predicate token, -1 until known
	lastNP   int // most recent attachable NP/ADJP head
	lastVerb int // most recent verb token
	// pending material waiting for the next predicate:
	pendingAux  []int
	pendingAdv  []int
	pendingNeg  []int
	pendingPrep []int // fronted prepositions ("At what container should...")
	whFront     int   // fronted wh-NP head awaiting a role, -1 if none
	subj        int   // subject NP awaiting its verb, -1 if none
	afterComma  bool
}

func (p *depParser) parseClause() {
	st := &clauseState{root: -1, lastNP: -1, lastVerb: -1, whFront: -1, subj: -1}
	cs := p.chunks
	for k := 0; k < len(cs); k++ {
		c := cs[k]
		switch c.kind {
		case ckPunct:
			st.afterComma = p.tok(c.head).Text == ","
			continue
		case ckWRB:
			st.pendingAdv = append(st.pendingAdv, c.head)
		case ckRB:
			if p.tok(c.head).Lemma == "not" {
				st.pendingNeg = append(st.pendingNeg, c.head)
			} else {
				st.pendingAdv = append(st.pendingAdv, c.head)
			}
		case ckMD:
			st.pendingAux = append(st.pendingAux, c.head)
		case ckEX:
			st.pendingAdv = append(st.pendingAdv, c.head) // resolved at verb as expl
		case ckRP:
			if st.lastVerb >= 0 {
				p.attach(c.head, st.lastVerb, RelPrt)
			}
		case ckCC:
			p.handleCC(k, st)
			k = p.skipConsumed(k)
		case ckIN:
			k = p.handlePrep(k, st)
		case ckTO:
			k = p.handleTo(k, st)
		case ckREL:
			k = p.handleRelativizer(k, st)
		case ckNP, ckADJP:
			k = p.handleNP(k, st)
		case ckV:
			p.handleVerb(k, st)
		case ckX:
			if st.root >= 0 {
				p.attach(c.head, st.root, RelDep)
			}
		}
		if c.kind != ckPunct {
			st.afterComma = false
		}
	}
	p.resolveRoot(st)
}

// nextNonPunct returns the index of the next non-punctuation chunk after
// k, or -1.
func (p *depParser) nextNonPunct(k int) int {
	for j := k + 1; j < len(p.chunks); j++ {
		if p.chunks[j].kind != ckPunct {
			return j
		}
	}
	return -1
}

// consumed marks chunks already handled by lookahead so the main loop
// skips them. Encoded by setting kind to "".
func (p *depParser) consume(k int) { p.chunks[k].kind = "" }

func (p *depParser) skipConsumed(k int) int { return k }

// handleNP processes an NP or ADJP chunk at cs[k]; returns the new loop
// index (for lookahead consumption).
func (p *depParser) handleNP(k int, st *clauseState) int {
	c := p.chunks[k]
	head := c.head
	first := p.tok(c.start)
	isWh := first.POS == "WP" || first.POS == "WDT" || first.POS == "WP$" ||
		strings.HasPrefix(first.POS, "W")

	// Apposition: previous NP head directly followed by ", ProperNoun".
	if st.afterComma && st.lastNP >= 0 && p.tok(head).POS == "NNP" && st.root != head {
		p.attach(head, st.lastNP, RelAppos)
		// keep lastNP pointing at the original noun
		return k
	}

	switch {
	case st.root == -1 && st.whFront == -1 && isWh && !p.followedBySubjectVerb(k):
		// fronted wh-phrase: role determined by the main verb later.
		st.whFront = head
		st.lastNP = head
	case st.root >= 0 && st.lastNP >= 0 && p.relClauseAhead(k):
		// NP starting a reduced relative clause: "places ... we should visit".
		p.parseRelClause(k, st)
		return k
	case st.subj == -1 && st.root == -1 && st.lastVerb == -1:
		// first NP before any verb: subject (declaratives) — or, in
		// questions, decided when the verb arrives.
		st.subj = head
		st.lastNP = head
	case st.lastVerb >= 0 && p.verbLacks(st.lastVerb, RelDObj) && !p.isCopula(st.lastVerb):
		// Existential "are there NP": the NP is the subject of "be".
		if p.isBeToken(st.lastVerb) && p.g.FirstDependent(st.lastVerb, RelExpl) != -1 {
			p.attach(head, st.lastVerb, RelNSubj)
		} else {
			p.attach(head, st.lastVerb, RelDObj)
		}
		st.lastNP = head
	case st.lastVerb >= 0 && p.isCopula(st.lastVerb):
		// predicate nominal/adjectival after a bare copula root: re-root
		// the clause at the predicate.
		be := st.lastVerb
		if p.tok(be).Head == -1 {
			p.tok(be).Head = -2 // demote; re-attached as cop below
			p.tok(be).Rel = ""
			st.root = head
			p.setRoot(head)
			p.attach(be, head, RelCop)
			// move the copula's dependents (subject etc.) to the predicate
			for i := range p.g.Nodes {
				if p.g.Nodes[i].Head == be && p.g.Nodes[i].Rel != RelCop {
					p.g.Nodes[i].Head = head
				}
			}
		}
		st.lastVerb = -1
		st.lastNP = head
	case st.subj >= 0 && st.root == -1:
		// two NPs before a verb: "we" after predicate... treat as new subject
		st.subj = head
		st.lastNP = head
	default:
		if st.root >= 0 {
			p.attach(head, st.root, RelDep)
		}
		st.lastNP = head
	}
	return k
}

// followedBySubjectVerb reports whether chunk k is a wh-NP immediately
// followed by a finite verb, which makes the wh-phrase itself the subject
// ("Who serves the best pizza?").
func (p *depParser) followedBySubjectVerb(k int) bool {
	j := p.nextNonPunct(k)
	if j < 0 {
		return false
	}
	if p.chunks[j].kind != ckV {
		return false
	}
	// "What are X" — copula follows; treat as fronted wh instead.
	if p.isBeToken(p.chunks[j].head) {
		return false
	}
	// "What do you eat" — auxiliary inversion; the wh-phrase is a
	// fronted object, not the subject.
	if aux, _ := p.auxOf(j); aux {
		return false
	}
	return true
}

func (p *depParser) isBeToken(i int) bool { return p.tok(i).Lemma == "be" }

func (p *depParser) isCopula(i int) bool {
	return p.tok(i).Rel == RelCop || (p.isBeToken(i) && p.tok(i).Head == -2)
}

// verbLacks reports whether verb v has no dependent with the relation yet.
func (p *depParser) verbLacks(v int, rel string) bool {
	return p.g.FirstDependent(v, rel) == -1
}

// handleVerb processes a verb chunk.
func (p *depParser) handleVerb(k int, st *clauseState) {
	v := p.chunks[k].head
	tokV := p.tok(v)

	// Is this verb an auxiliary for a following verb? "do you visit",
	// "are you visiting", "have you been". Auxiliary iff lemma in
	// be/do/have and another verb follows before any clause break.
	if aux, main := p.auxOf(k); aux {
		_ = main
		st.pendingAux = append(st.pendingAux, v)
		return
	}

	if p.isBeToken(v) {
		p.handleCopula(k, st)
		return
	}

	// Main (or first) verb of the clause.
	if st.root == -1 {
		st.root = v
		p.setRoot(v)
	} else if tokV.Head == -2 {
		// subsequent verb without explicit linkage: conjunct or dep
		p.attach(v, st.root, RelDep)
	}
	p.flushPending(v, st)

	// Subject.
	if st.subj >= 0 && p.verbLacks(v, RelNSubj) {
		p.attach(st.subj, v, RelNSubj)
		st.subj = -1
	} else if st.whFront >= 0 && p.verbLacks(v, RelNSubj) && p.whIsSubject(st, v) {
		p.attach(st.whFront, v, RelNSubj)
		st.whFront = -1
	}
	// Fronted wh-object: "What ... should I buy" — attach as dobj.
	if st.whFront >= 0 && p.verbLacks(v, RelDObj) && !p.objectAhead(k) {
		p.attach(st.whFront, v, RelDObj)
		st.whFront = -1
	}
	st.lastVerb = v
	st.lastNP = -1 // objects attach before further PPs go to the verb
}

// whIsSubject decides whether a pending fronted wh-phrase is the verb's
// subject (no other subject appeared): "Who visits Buffalo?".
func (p *depParser) whIsSubject(st *clauseState, v int) bool {
	return st.subj == -1 && p.g.FirstDependent(v, RelNSubj) == -1 &&
		len(st.pendingAux) == 0
}

// objectAhead reports whether an NP chunk follows chunk k before any
// preposition/verb, i.e. the verb will get a direct object from the right.
func (p *depParser) objectAhead(k int) bool {
	j := p.nextNonPunct(k)
	if j < 0 {
		return false
	}
	return p.chunks[j].kind == ckNP
}

// auxOf reports whether the verb chunk at k is an auxiliary of a later
// verb: be/do/have followed (within the clause, before commas or
// relativizers) by a subject NP and then a verb, or directly by a verb.
func (p *depParser) auxOf(k int) (bool, int) {
	v := p.chunks[k].head
	lemma := p.tok(v).Lemma
	if lemma != "be" && lemma != "do" && lemma != "have" {
		return false, -1
	}
	sawNP := false
	for j := k + 1; j < len(p.chunks); j++ {
		c := p.chunks[j]
		switch c.kind {
		case ckPunct:
			if p.tok(c.head).Text == "," {
				return false, -1 // clause break
			}
		case ckNP:
			if sawNP {
				return false, -1 // two NPs: the verb later is a rel clause
			}
			sawNP = true
		case ckRB:
			continue
		case ckV:
			vb := p.tok(c.head)
			switch lemma {
			case "do":
				// "do you visit" — always auxiliary before a base verb.
				if vb.POS == "VB" || vb.POS == "VBP" {
					return true, c.head
				}
				return false, -1
			case "be":
				// progressive/passive: "are you visiting", "is it sold".
				if vb.POS == "VBG" || vb.POS == "VBN" {
					return true, c.head
				}
				return false, -1
			case "have":
				if vb.POS == "VBN" {
					return true, c.head
				}
				return false, -1
			}
		case ckREL, ckIN, ckTO, ckMD, ckADJP:
			return false, -1
		}
	}
	return false, -1
}

// handleCopula processes a "be" main verb: the predicate that follows
// becomes the root and the copula attaches to it.
func (p *depParser) handleCopula(k int, st *clauseState) {
	be := p.chunks[k].head
	j := p.nextNonPunct(k)
	// Existential: "Are there good restaurants...".
	if j >= 0 && p.chunks[j].kind == ckEX {
		st.root = be
		p.setRoot(be)
		p.attach(p.chunks[j].head, be, RelExpl)
		p.consume(j)
		p.flushPending(be, st)
		// subject arrives as the next NP
		st.lastVerb = be
		return
	}
	// Find the predicate: in a yes/no question the subject NP comes first
	// ("Is [chocolate milk] [good]"), in a wh-question the predicate NP
	// comes right after ("What are [the most interesting places]").
	var np1, np2 = -1, -1
	var np1c, np2c = -1, -1
	for x := j; x >= 0 && x < len(p.chunks); x = p.nextNonPunct(x) {
		c := p.chunks[x]
		if c.kind == ckNP || c.kind == ckADJP {
			if np1 == -1 {
				np1, np1c = c.head, x
				// The predicate ADJP/NP may follow directly ("Is milk
				// good...") or, for adjectives only, after the subject's
				// PPs ("Is the top floor of the Stratosphere scary?").
				// An NP after PPs is an apposition or relative clause,
				// not a predicate ("places near Forest Hotel, Buffalo,
				// we should visit").
				y := p.nextNonPunct(x)
				skippedPP := false
				for y >= 0 && p.chunks[y].kind == ckIN {
					z := p.nextNonPunct(y)
					if z < 0 || p.chunks[z].kind != ckNP {
						break
					}
					skippedPP = true
					y = p.nextNonPunct(z)
				}
				if y >= 0 && (p.chunks[y].kind == ckADJP ||
					(!skippedPP && p.chunks[y].kind == ckNP && !p.relClauseAhead(y))) {
					np2, np2c = p.chunks[y].head, y
				}
			}
			break
		}
		if c.kind == ckPunct {
			continue
		}
		break
	}
	switch {
	case np2 >= 0:
		// "Is NP1 NP2/ADJP" — NP2 is the predicate, NP1 the subject.
		st.root = np2
		p.setRoot(np2)
		p.attach(be, np2, RelCop)
		p.attach(np1, np2, RelNSubj)
		if st.whFront >= 0 {
			p.attach(st.whFront, np2, RelAttr)
			st.whFront = -1
		}
		p.consume(np1c)
		p.consume(np2c)
		st.lastNP = np2
		st.lastVerb = -1
	case np1 >= 0:
		// "What are NP1" — NP1 is the predicate.
		st.root = np1
		p.setRoot(np1)
		p.attach(be, np1, RelCop)
		if st.whFront >= 0 {
			p.attach(st.whFront, np1, RelAttr)
			st.whFront = -1
		}
		if st.subj >= 0 {
			p.attach(st.subj, np1, RelNSubj)
			st.subj = -1
		}
		p.consume(np1c)
		st.lastNP = np1
		st.lastVerb = -1
	default:
		// bare "be" with no predicate NP: make it the root.
		st.root = be
		p.setRoot(be)
		st.lastVerb = be
	}
	p.flushPendingTo(st.root, st)
}

// flushPending attaches pending auxiliaries/adverbs/negation to verb v.
func (p *depParser) flushPending(v int, st *clauseState) { p.flushPendingTo(v, st) }

func (p *depParser) flushPendingTo(v int, st *clauseState) {
	for _, a := range st.pendingAux {
		rel := RelAux
		if p.isBeToken(a) && p.tok(v).POS == "VBN" {
			rel = RelAuxPass
		}
		p.attach(a, v, rel)
	}
	st.pendingAux = nil
	for _, a := range st.pendingAdv {
		p.attach(a, v, RelAdvMod)
	}
	st.pendingAdv = nil
	for _, a := range st.pendingNeg {
		p.attach(a, v, RelNeg)
	}
	st.pendingNeg = nil
	for _, a := range st.pendingPrep {
		p.attach(a, v, RelPrep)
	}
	st.pendingPrep = nil
}

// relClauseAhead reports whether the chunk at k begins a reduced relative
// clause: NP (subject) followed by optional MD/RB and a verb.
func (p *depParser) relClauseAhead(k int) bool {
	if p.chunks[k].kind != ckNP {
		return false
	}
	j := p.nextNonPunct(k)
	for j >= 0 {
		switch p.chunks[j].kind {
		case ckMD, ckRB:
			j = p.nextNonPunct(j)
		case ckV:
			return true
		default:
			return false
		}
	}
	return false
}

// parseRelClause parses "NPsubj [MD|RB]* V ..." as a relative clause
// modifying st.lastNP, consuming the chunks it uses.
// climbNP walks from an NP head upward out of apposition and
// prepositional-object chains to the noun that heads the whole complex
// NP, so a relative clause in "places near Forest Hotel, Buffalo, we
// should visit" modifies "places" rather than the PP-internal noun.
func (p *depParser) climbNP(i int) int {
	for {
		n := p.tok(i)
		switch n.Rel {
		case RelAppos:
			if n.Head < 0 {
				return i
			}
			i = n.Head
		case RelPObj:
			in := n.Head
			if in < 0 {
				return i
			}
			inNode := p.tok(in)
			if inNode.Rel == RelPrep && inNode.Head >= 0 && isNounTag(p.tok(inNode.Head).POS) {
				i = inNode.Head
				continue
			}
			return i
		default:
			return i
		}
	}
}

func (p *depParser) parseRelClause(k int, st *clauseState) {
	modified := p.climbNP(st.lastNP)
	subj := p.chunks[k].head
	p.consume(k)
	var aux, advs, negs []int
	j := p.nextNonPunct(k)
	for j >= 0 {
		c := p.chunks[j]
		if c.kind == ckMD {
			aux = append(aux, c.head)
			p.consume(j)
			j = p.nextNonPunct(j)
			continue
		}
		if c.kind == ckRB {
			if p.tok(c.head).Lemma == "not" {
				negs = append(negs, c.head)
			} else {
				advs = append(advs, c.head)
			}
			p.consume(j)
			j = p.nextNonPunct(j)
			continue
		}
		break
	}
	if j < 0 || p.chunks[j].kind != ckV {
		return
	}
	v := p.chunks[j].head
	p.consume(j)
	p.attach(v, modified, RelRCMod)
	p.attach(subj, v, RelNSubj)
	for _, a := range aux {
		p.attach(a, v, RelAux)
	}
	for _, a := range advs {
		p.attach(a, v, RelAdvMod)
	}
	for _, a := range negs {
		p.attach(a, v, RelNeg)
	}
	// Gap role: unless the relative verb has its own object NP to the
	// right, the modified noun is its (extra-edge) object.
	if !p.objectAhead(j) {
		p.g.Extra = append(p.g.Extra, Edge{Head: v, Dep: modified, Rel: RelDObj})
	}
	st.lastVerb = v
	st.lastNP = -1
}

// handleRelativizer parses "that/which/who" relative clauses after a noun.
func (p *depParser) handleRelativizer(k int, st *clauseState) int {
	relTok := p.chunks[k].head
	modified := st.lastNP
	if modified < 0 {
		p.attachLater(relTok, st)
		return k
	}
	j := p.nextNonPunct(k)
	if j < 0 {
		p.attachLater(relTok, st)
		return k
	}
	switch p.chunks[j].kind {
	case ckV, ckMD:
		// subject relative: "hotel that has ..." / "places that can host ..."
		var aux []int
		for j >= 0 && p.chunks[j].kind == ckMD {
			aux = append(aux, p.chunks[j].head)
			p.consume(j)
			j = p.nextNonPunct(j)
		}
		if j < 0 || p.chunks[j].kind != ckV {
			return k
		}
		v := p.chunks[j].head
		p.consume(j)
		p.attach(v, modified, RelRCMod)
		p.attach(relTok, v, RelRel)
		for _, a := range aux {
			p.attach(a, v, RelAux)
		}
		p.g.Extra = append(p.g.Extra, Edge{Head: v, Dep: modified, Rel: RelNSubj})
		st.lastVerb = v
		st.lastNP = -1
	case ckNP:
		// object relative: "dish that people cook"
		if p.relClauseAhead(j) {
			p.attach(relTok, modified, RelRel)
			save := st.lastNP
			st.lastNP = modified
			p.parseRelClause(j, st)
			_ = save
		} else {
			p.attachLater(relTok, st)
		}
	default:
		p.attachLater(relTok, st)
	}
	return k
}

func (p *depParser) attachLater(tok int, st *clauseState) {
	if st.root >= 0 {
		p.attach(tok, st.root, RelDep)
	}
}

// handlePrep parses a preposition and its NP object, attaching the PP to
// the immediately preceding head (noun if adjacent, else last verb, else
// root).
func (p *depParser) handlePrep(k int, st *clauseState) int {
	prep := p.chunks[k].head
	j := p.nextNonPunct(k)
	if j < 0 || (p.chunks[j].kind != ckNP && p.chunks[j].kind != ckADJP) {
		// stranded preposition: attach to last verb or root
		if st.lastVerb >= 0 {
			p.attach(prep, st.lastVerb, RelPrep)
		} else if st.root >= 0 {
			p.attach(prep, st.root, RelPrep)
		}
		return k
	}
	obj := p.chunks[j].head
	// Attachment point: prefer the NP directly before the preposition
	// (right association), then the last verb, then the root. Temporal
	// PPs ("in the fall", "at night") modify the predicate, not the noun.
	attachTo := -1
	if st.lastNP >= 0 && p.adjacentNP(k, st.lastNP) &&
		!(temporalNouns[p.tok(obj).Lemma] && (st.lastVerb >= 0 || st.root >= 0)) {
		attachTo = st.lastNP
	} else if st.lastVerb >= 0 {
		attachTo = st.lastVerb
	} else if st.root >= 0 {
		attachTo = st.root
	} else if st.subj >= 0 {
		attachTo = st.subj
	} else if st.whFront >= 0 {
		attachTo = st.whFront
	}
	p.attach(obj, prep, RelPObj)
	if attachTo >= 0 {
		p.attach(prep, attachTo, RelPrep)
	} else {
		st.pendingPrep = append(st.pendingPrep, prep)
	}
	p.consume(j)
	// An NP inside a PP becomes the latest NP for appositions/relative
	// clauses: "near Forest Hotel, Buffalo, we should visit".
	st.lastNP = obj
	st.afterComma = false
	return k
}

// temporalNouns are PP objects that signal a time adverbial, which
// attaches to the predicate rather than a neighboring noun.
var temporalNouns = map[string]bool{
	"fall": true, "autumn": true, "winter": true, "spring": true,
	"summer": true, "morning": true, "evening": true, "night": true,
	"afternoon": true, "weekend": true, "week": true, "month": true,
	"year": true, "day": true, "season": true, "holiday": true,
	"today": true, "tomorrow": true, "hour": true,
}

// adjacentNP reports whether the NP head np's chunk ends directly before
// chunk k (no verb in between).
func (p *depParser) adjacentNP(k int, np int) bool {
	// find the chunk containing np
	for j := k - 1; j >= 0; j-- {
		c := p.chunks[j]
		if c.kind == ckPunct || c.kind == "" {
			continue
		}
		return (c.kind == ckNP || c.kind == ckADJP) && c.head == np
	}
	return false
}

// handleTo parses "to": infinitival ("places to visit", "want to buy") or
// prepositional ("to the park").
func (p *depParser) handleTo(k int, st *clauseState) int {
	to := p.chunks[k].head
	j := p.nextNonPunct(k)
	if j >= 0 && p.chunks[j].kind == ckV {
		v := p.chunks[j].head
		p.consume(j)
		p.attach(to, v, RelAux)
		if st.lastVerb >= 0 {
			// "want to buy": open clausal complement
			p.attach(v, st.lastVerb, RelXComp)
		} else if st.lastNP >= 0 {
			// "places to visit": infinitival modifier with object gap
			p.attach(v, st.lastNP, RelInfMod)
			if !p.objectAhead(j) {
				p.g.Extra = append(p.g.Extra, Edge{Head: v, Dep: st.lastNP, Rel: RelDObj})
			}
		} else if st.root >= 0 {
			p.attach(v, st.root, RelXComp)
		} else {
			// sentence-initial infinitive; make it the root
			st.root = v
			p.setRoot(v)
		}
		st.lastVerb = v
		st.lastNP = -1
		return k
	}
	// prepositional "to"
	return p.handlePrep(k, st)
}

// handleCC links a conjunct NP/verb to the preceding one.
func (p *depParser) handleCC(k int, st *clauseState) {
	cc := p.chunks[k].head
	j := p.nextNonPunct(k)
	if j < 0 {
		p.attachLater(cc, st)
		return
	}
	c := p.chunks[j]
	switch c.kind {
	case ckNP, ckADJP:
		if st.lastNP >= 0 {
			p.attach(cc, st.lastNP, RelCC)
			p.attach(c.head, st.lastNP, RelConj)
			p.consume(j)
			return
		}
	case ckV:
		if st.lastVerb >= 0 {
			p.attach(cc, st.lastVerb, RelCC)
			p.attach(c.head, st.lastVerb, RelConj)
			p.consume(j)
			return
		}
	}
	p.attachLater(cc, st)
}

// resolveRoot guarantees a root and attaches stragglers.
func (p *depParser) resolveRoot(st *clauseState) {
	root := st.root
	if root == -1 {
		// No verb: a fragment like "Best pizza in town?". Root = first
		// NP head, else first token.
		switch {
		case st.whFront >= 0:
			root = st.whFront
		case st.subj >= 0:
			root = st.subj
		case st.lastNP >= 0:
			root = st.lastNP
		default:
			root = 0
		}
		p.setRoot(root)
		// If the root got attached already, find the top of its chain.
		for p.tok(root).Head >= 0 {
			root = p.tok(root).Head
		}
		p.tok(root).Head = -1
		p.tok(root).Rel = RelRoot
		st.root = root
	}
	if st.subj >= 0 {
		p.attach(st.subj, root, RelNSubj)
	}
	if st.whFront >= 0 && st.whFront != root {
		p.attach(st.whFront, root, RelAttr)
	}
	p.flushPendingTo(root, st)
}

// finish attaches any remaining unattached tokens (punctuation and
// stragglers) to the root.
func (p *depParser) finish() {
	root := p.g.Root()
	if root == -1 {
		// ensure a root exists even for degenerate input
		p.g.Nodes[0].Head = -1
		p.g.Nodes[0].Rel = RelRoot
		root = 0
	}
	for i := range p.g.Nodes {
		n := &p.g.Nodes[i]
		if n.Head != -2 {
			continue
		}
		if n.IsPunct() {
			n.Head = root
			n.Rel = RelPunct
		} else {
			n.Head = root
			n.Rel = RelDep
		}
		if i == root {
			n.Head = -1
			n.Rel = RelRoot
		}
	}
	// Guard against accidental cycles from reattachment: walk each node
	// up; on a cycle, cut by re-rooting the offender to root.
	for i := range p.g.Nodes {
		seen := map[int]bool{}
		j := i
		for j >= 0 {
			if seen[j] {
				p.g.Nodes[j].Head = root
				p.g.Nodes[j].Rel = RelDep
				if j == root {
					p.g.Nodes[j].Head = -1
					p.g.Nodes[j].Rel = RelRoot
				}
				break
			}
			seen[j] = true
			j = p.g.Nodes[j].Head
		}
	}
}
