package oassisql

import (
	"fmt"
	"strings"

	"nl2cm/internal/sparql"
)

// Parse parses an OASSIS-QL query in the paper's concrete syntax.
func Parse(input string) (*Query, error) {
	lx, err := sparql.NewLexer(input)
	if err != nil {
		return nil, fmt.Errorf("oassisql: %w", err)
	}
	p := &parser{lx: lx, pat: sparql.NewPatternParser(lx, nil)}
	q, err := p.query()
	if err != nil {
		return nil, fmt.Errorf("oassisql: %w", err)
	}
	if t := lx.Peek(); t.Kind != sparql.TokEOF {
		return nil, fmt.Errorf("oassisql: %v", lx.Errf("trailing input %q", t.Text))
	}
	return q, nil
}

// MustParse parses a query and panics on error; for tests and embedded
// fixtures.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lx  *sparql.Lexer
	pat *sparql.PatternParser
}

func (p *parser) keyword(words ...string) bool {
	t := p.lx.Peek()
	if t.Kind != sparql.TokIdent {
		return false
	}
	for _, w := range words {
		if strings.EqualFold(t.Text, w) {
			p.lx.Next()
			return true
		}
	}
	return false
}

func (p *parser) expectKeyword(w string) error {
	if !p.keyword(w) {
		return p.lx.Errf("expected %s, found %q", w, p.lx.Peek().Text)
	}
	return nil
}

func (p *parser) query() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if p.keyword("VARIABLES") {
		q.Select.All = true
		if err := p.selectAggregates(q, false); err != nil {
			return nil, err
		}
	} else {
		if err := p.selectAggregates(q, true); err != nil {
			return nil, err
		}
		if len(q.Select.Vars) == 0 {
			return nil, p.lx.Errf("expected VARIABLES or variable list after SELECT")
		}
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	triples, filters, err := p.pat.GroupPattern()
	if err != nil {
		return nil, err
	}
	q.Where = Pattern{Triples: triples, Filters: filters}
	if err := p.aggregation(q); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SATISFYING"); err != nil {
		return nil, err
	}
	for {
		sc, err := p.subclause()
		if err != nil {
			return nil, err
		}
		q.Satisfying = append(q.Satisfying, sc)
		if !p.keyword("AND") {
			break
		}
	}
	return q, nil
}

// ensureAgg lazily allocates the query's aggregation extension.
func (p *parser) ensureAgg(q *Query) *Aggregation {
	if q.Agg == nil {
		q.Agg = &Aggregation{}
	}
	return q.Agg
}

// selectAggregates consumes the SELECT list: aggregate calls (which join
// both the projection and the aggregation extension), and — when vars is
// set — plain projected variables interleaved with them.
func (p *parser) selectAggregates(q *Query, vars bool) error {
	taken := func(name string) bool {
		if q.Agg != nil {
			for _, a := range q.Agg.Aggs {
				if a.As == name {
					return true
				}
			}
		}
		for _, v := range q.Select.Vars {
			if v == name {
				return true
			}
		}
		return false
	}
	for {
		if vars && p.lx.Peek().Kind == sparql.TokVar {
			q.Select.Vars = append(q.Select.Vars, p.lx.Next().Text)
			continue
		}
		a, ok, err := p.pat.AggregateCall(taken)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		p.ensureAgg(q).Aggs = append(q.Agg.Aggs, a)
		if vars {
			q.Select.Vars = append(q.Select.Vars, a.As)
		}
	}
}

// aggregation consumes the analytic modifiers between the WHERE pattern
// and SATISFYING: GROUP BY, HAVING(expr), query-level ORDER BY and LIMIT.
func (p *parser) aggregation(q *Query) error {
	for {
		switch {
		case p.keyword("GROUP"):
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			agg := p.ensureAgg(q)
			for p.lx.Peek().Kind == sparql.TokVar {
				agg.GroupBy = append(agg.GroupBy, p.lx.Next().Text)
			}
			if len(agg.GroupBy) == 0 {
				return p.lx.Errf("expected variables after GROUP BY")
			}
		case p.keyword("HAVING"):
			e, err := p.pat.HavingExpr()
			if err != nil {
				return err
			}
			p.ensureAgg(q).Having = append(q.Agg.Having, e)
		case p.keyword("ORDER"):
			if err := p.expectKeyword("BY"); err != nil {
				return err
			}
			keys, err := p.pat.OrderKeys()
			if err != nil {
				return err
			}
			p.ensureAgg(q).OrderBy = append(q.Agg.OrderBy, keys...)
		case p.keyword("LIMIT"):
			n := p.lx.Next()
			if n.Kind != sparql.TokNumber {
				return p.lx.Errf("expected number after LIMIT")
			}
			p.ensureAgg(q).Limit = int(n.Num)
		default:
			if q.Agg != nil {
				if err := q.validateAggregation(); err != nil {
					return p.lx.Errf("%s", strings.TrimPrefix(err.Error(), "oassisql: "))
				}
			}
			return nil
		}
	}
}

func (p *parser) subclause() (Subclause, error) {
	triples, filters, err := p.pat.GroupPattern()
	if err != nil {
		return Subclause{}, err
	}
	sc := Subclause{Pattern: Pattern{Triples: triples, Filters: filters}}
	switch {
	case p.keyword("ORDER"):
		if err := p.expectKeyword("BY"); err != nil {
			return Subclause{}, err
		}
		desc := false
		switch {
		case p.keyword("DESC"):
			desc = true
		case p.keyword("ASC"):
		default:
			return Subclause{}, p.lx.Errf("expected ASC or DESC after ORDER BY")
		}
		if t := p.lx.Next(); !(t.Kind == sparql.TokPunct && t.Text == "(") {
			return Subclause{}, p.lx.Errf("expected ( after %s", map[bool]string{true: "DESC", false: "ASC"}[desc])
		}
		if err := p.expectKeyword("SUPPORT"); err != nil {
			return Subclause{}, err
		}
		if t := p.lx.Next(); !(t.Kind == sparql.TokPunct && t.Text == ")") {
			return Subclause{}, p.lx.Errf("expected ) after SUPPORT")
		}
		if err := p.expectKeyword("LIMIT"); err != nil {
			return Subclause{}, err
		}
		n := p.lx.Next()
		if n.Kind != sparql.TokNumber {
			return Subclause{}, p.lx.Errf("expected number after LIMIT")
		}
		sc.TopK = &TopK{K: int(n.Num), Desc: desc}
	case p.keyword("WITH"):
		if err := p.expectKeyword("SUPPORT"); err != nil {
			return Subclause{}, err
		}
		if err := p.expectKeyword("THRESHOLD"); err != nil {
			return Subclause{}, err
		}
		if t := p.lx.Next(); !(t.Kind == sparql.TokOp && (t.Text == "=" || t.Text == "==")) {
			return Subclause{}, p.lx.Errf("expected = after THRESHOLD")
		}
		n := p.lx.Next()
		if n.Kind != sparql.TokNumber {
			return Subclause{}, p.lx.Errf("expected number after THRESHOLD =")
		}
		v := n.Num
		sc.Threshold = &v
	default:
		return Subclause{}, p.lx.Errf("subclause needs ORDER BY ...(SUPPORT) LIMIT k or WITH SUPPORT THRESHOLD = t")
	}
	return sc, nil
}
