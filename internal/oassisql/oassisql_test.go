package oassisql

import (
	"strings"
	"testing"

	"nl2cm/internal/rdf"
)

// figure1 is the paper's sample query Q (Figure 1), minus line numbers.
const figure1 = `SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1`

func TestParseFigure1(t *testing.T) {
	q, err := Parse(figure1)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !q.Select.All {
		t.Error("Select.All = false, want true (SELECT VARIABLES)")
	}
	if len(q.Where.Triples) != 2 {
		t.Fatalf("WHERE has %d triples, want 2", len(q.Where.Triples))
	}
	if got := q.Where.Triples[1].O.Value(); got != "Forest_Hotel,_Buffalo,_NY" {
		t.Errorf("WHERE entity = %q", got)
	}
	if len(q.Satisfying) != 2 {
		t.Fatalf("SATISFYING has %d subclauses, want 2", len(q.Satisfying))
	}
	sc0 := q.Satisfying[0]
	if sc0.TopK == nil || sc0.TopK.K != 5 || !sc0.TopK.Desc {
		t.Errorf("subclause 0 TopK = %+v, want k=5 desc", sc0.TopK)
	}
	if sc0.Pattern.Triples[0].O != rdf.NewLiteral("interesting") {
		t.Errorf("subclause 0 object = %v", sc0.Pattern.Triples[0].O)
	}
	sc1 := q.Satisfying[1]
	if sc1.Threshold == nil || *sc1.Threshold != 0.1 {
		t.Errorf("subclause 1 Threshold = %v, want 0.1", sc1.Threshold)
	}
	if len(sc1.Pattern.Triples) != 2 {
		t.Fatalf("subclause 1 has %d triples, want 2", len(sc1.Pattern.Triples))
	}
	// The [] subjects are distinct anonymous variables.
	s0, s1 := sc1.Pattern.Triples[0].S, sc1.Pattern.Triples[1].S
	if !s0.IsVar() || !IsAnonVar(s0.Value()) || !s1.IsVar() || !IsAnonVar(s1.Value()) {
		t.Errorf("[] terms = %v, %v; want anonymous variables", s0, s1)
	}
	if s0.Equal(s1) {
		t.Error("the two [] occurrences share one variable, want distinct")
	}
}

func TestPrintFigure1ByteExact(t *testing.T) {
	q, err := Parse(figure1)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.String(); got != figure1 {
		t.Errorf("printer does not reproduce Figure 1:\n--- got ---\n%s\n--- want ---\n%s", got, figure1)
	}
}

func TestRoundTripIdempotent(t *testing.T) {
	q1, err := Parse(figure1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q1.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if q1.String() != q2.String() {
		t.Errorf("round trip not idempotent:\n%s\nvs\n%s", q1.String(), q2.String())
	}
}

func TestParseProjectedSelect(t *testing.T) {
	q, err := Parse(`SELECT $x $y
WHERE
{$x near $y}
SATISFYING
{[] visit $x}
WITH SUPPORT THRESHOLD = 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select.All {
		t.Error("Select.All = true")
	}
	if len(q.Select.Vars) != 2 || q.Select.Vars[0] != "x" || q.Select.Vars[1] != "y" {
		t.Errorf("Select.Vars = %v", q.Select.Vars)
	}
}

func TestParseAscLimit(t *testing.T) {
	q, err := Parse(`SELECT VARIABLES
WHERE
{$x instanceOf Dish}
SATISFYING
{[] eat $x}
ORDER BY ASC(SUPPORT)
LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	sc := q.Satisfying[0]
	if sc.TopK == nil || sc.TopK.Desc || sc.TopK.K != 3 {
		t.Errorf("TopK = %+v, want k=3 asc", sc.TopK)
	}
	if !strings.Contains(q.String(), "ORDER BY ASC(SUPPORT)") {
		t.Errorf("printer output:\n%s", q.String())
	}
}

func TestParseEmptyWhere(t *testing.T) {
	// A purely individual query has an empty WHERE clause.
	q, err := Parse(`SELECT VARIABLES
WHERE
{}
SATISFYING
{[] eat $x}
WITH SUPPORT THRESHOLD = 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Triples) != 0 {
		t.Errorf("WHERE triples = %v", q.Where.Triples)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`WHERE {} SATISFYING {} LIMIT 3`,
		`SELECT WHERE {$x a b} SATISFYING {[] a $x} LIMIT 1`,
		`SELECT VARIABLES WHERE {$x a b}`,                              // no SATISFYING
		`SELECT VARIABLES WHERE {$x a b} SATISFYING {[] v $x}`,         // no criterion
		`SELECT VARIABLES WHERE {$x a b} SATISFYING {[] v $x} LIMIT 5`, // LIMIT without ORDER BY
		`SELECT VARIABLES WHERE {$x a b} SATISFYING {[] v $x} ORDER BY SUPPORT LIMIT 5`,
		`SELECT VARIABLES WHERE {$x a b} SATISFYING {[] v $x} WITH SUPPORT THRESHOLD 0.1`,
		`SELECT VARIABLES WHERE {$x a b} SATISFYING {[] v $x} WITH SUPPORT THRESHOLD = x`,
		`SELECT VARIABLES WHERE {$x a b} SATISFYING {[] v $x} ORDER BY DESC(SUPPORT) LIMIT 5 trailing`,
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestValidate(t *testing.T) {
	th := func(v float64) *float64 { return &v }
	mk := func(mod func(*Query)) *Query {
		q := MustParse(figure1)
		if mod != nil {
			mod(q)
		}
		return q
	}
	if err := mk(nil).Validate(); err != nil {
		t.Errorf("Figure 1 query invalid: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*Query)
	}{
		{"no satisfying", func(q *Query) { q.Satisfying = nil }},
		{"both criteria", func(q *Query) { q.Satisfying[0].Threshold = th(0.5) }},
		{"no criterion", func(q *Query) { q.Satisfying[0].TopK = nil }},
		{"bad threshold", func(q *Query) { q.Satisfying[1].Threshold = th(1.5) }},
		{"negative k", func(q *Query) { q.Satisfying[0].TopK.K = -1 }},
		{"empty subclause", func(q *Query) { q.Satisfying[0].Pattern.Triples = nil }},
		{"unknown select var", func(q *Query) {
			q.Select.All = false
			q.Select.Vars = []string{"nope"}
		}},
		{"empty projection", func(q *Query) {
			q.Select.All = false
			q.Select.Vars = nil
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := mk(c.mod).Validate(); err == nil {
				t.Error("Validate accepted invalid query")
			}
		})
	}
}

func TestQueryVarsOrder(t *testing.T) {
	q := MustParse(figure1)
	vars := q.Vars()
	if len(vars) != 1 || vars[0] != "x" {
		t.Errorf("Vars = %v, want [x]", vars)
	}
}

func TestPatternVarsSkipAnon(t *testing.T) {
	q := MustParse(figure1)
	vars := q.Satisfying[1].Pattern.Vars()
	if len(vars) != 1 || vars[0] != "x" {
		t.Errorf("Vars = %v, want [x] (anonymous [] skipped)", vars)
	}
}

func TestPatternClone(t *testing.T) {
	q := MustParse(figure1)
	c := q.Where.Clone()
	c.Triples[0] = rdf.T(rdf.NewVar("z"), rdf.NewIRI("p"), rdf.NewIRI("o"))
	if q.Where.Triples[0].S.Value() == "z" {
		t.Error("Clone shares triple storage")
	}
}

func TestThresholdFormatting(t *testing.T) {
	th := 0.25
	q := &Query{
		Select:     SelectClause{All: true},
		Where:      Pattern{},
		Satisfying: []Subclause{{Pattern: Pattern{Triples: []rdf.Triple{rdf.T(rdf.NewVar("_anon1"), rdf.NewIRI("eat"), rdf.NewVar("x"))}}, Threshold: &th}},
	}
	if !strings.Contains(q.String(), "THRESHOLD = 0.25") {
		t.Errorf("output:\n%s", q.String())
	}
	one := 1.0
	q.Satisfying[0].Threshold = &one
	if !strings.Contains(q.String(), "THRESHOLD = 1.0") {
		t.Errorf("integral threshold must print with decimal point:\n%s", q.String())
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term rdf.Term
		want string
	}{
		{rdf.NewVar("x"), "$x"},
		{rdf.NewVar("_anon3"), "[]"},
		{rdf.NewIRI("Place"), "Place"},
		{rdf.NewIRI("http://onto/ns#Place"), "Place"},
		{rdf.NewLiteral("interesting"), `"interesting"`},
		{rdf.NewBlank("b"), "[]"},
	}
	for _, c := range cases {
		if got := TermString(c.term); got != c.want {
			t.Errorf("TermString(%v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not a query")
}

func TestParseFilterInsidePatterns(t *testing.T) {
	q, err := Parse(`SELECT VARIABLES
WHERE
{$x instanceOf Place.
FILTER($x != Forest_Hotel)}
SATISFYING
{[] visit $x
FILTER(POS($x) = "noun")}
WITH SUPPORT THRESHOLD = 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Filters) != 1 {
		t.Errorf("WHERE filters = %d", len(q.Where.Filters))
	}
	if len(q.Satisfying[0].Pattern.Filters) != 1 {
		t.Errorf("subclause filters = %d", len(q.Satisfying[0].Pattern.Filters))
	}
	// Filters survive the print/parse round trip.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse:\n%s\n%v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("filter round trip:\n%s\nvs\n%s", q.String(), q2.String())
	}
}
