// Package oassisql defines the OASSIS-QL crowd-mining query language of
// Amsterdamer et al. (SIGMOD 2014), which NL2CM targets: the AST, a
// parser, a printer that reproduces the paper's concrete syntax
// (Figure 1), and structural validation.
//
// An OASSIS-QL query has three parts (paper §2.1):
//
//   - SELECT: which variable bindings the query returns;
//   - WHERE: a SPARQL-like selection over the general-knowledge ontology;
//   - SATISFYING: data patterns to be mined from the crowd, split into
//     subclauses, each holding one semantic event/property and carrying
//     either a support threshold or a top/bottom-k selection.
package oassisql

import (
	"fmt"
	"strings"

	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// Pattern is a basic graph pattern with optional filters.
type Pattern struct {
	Triples []rdf.Triple
	Filters []sparql.Expr
}

// Vars returns the named (non-anonymous) variables of the pattern in
// first-appearance order.
func (p Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range p.Triples {
		for _, v := range t.Vars() {
			if !seen[v] && !IsAnonVar(v) {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Clone deep-copies the pattern's triple slice (filters are immutable).
func (p Pattern) Clone() Pattern {
	c := Pattern{Filters: append([]sparql.Expr(nil), p.Filters...)}
	c.Triples = append([]rdf.Triple(nil), p.Triples...)
	return c
}

// IsAnonVar reports whether a variable name denotes an anonymous "[]"
// term ("anything/anyone"), which the printer renders back as [].
func IsAnonVar(name string) bool { return strings.HasPrefix(name, "_anon") }

// TopK is the ORDER BY …(SUPPORT) LIMIT k form of significance selection.
type TopK struct {
	K int
	// Desc selects the k highest-support patterns; false selects the
	// lowest.
	Desc bool
}

// Subclause is one crowd-mining data pattern of the SATISFYING clause.
// Exactly one of TopK and Threshold must be set.
type Subclause struct {
	Pattern Pattern
	// TopK selects the k highest/lowest-support bindings.
	TopK *TopK
	// Threshold is the minimal support in [0,1]; nil when TopK is used.
	Threshold *float64
}

// SelectClause defines the query output.
type SelectClause struct {
	// All corresponds to "SELECT VARIABLES": return bindings of all
	// variables that yield significant patterns.
	All bool
	// Vars lists the projected variables when All is false.
	Vars []string
}

// Aggregation is the analytic extension to the paper's language:
// grouping and aggregate outputs over the WHERE selection, with optional
// HAVING conditions and a result window. The printer renders aggregates
// SPARQL-style inside the SELECT clause (`SELECT $city COUNT($a) AS
// $cnt`) and the grouping modifiers between the WHERE pattern and
// SATISFYING, so a superlative question prints as GROUP BY + ORDER BY
// DESC + LIMIT 1.
type Aggregation struct {
	// GroupBy lists the grouping variables; empty means one global group.
	GroupBy []string
	// Aggs lists the aggregate outputs; aliases act as output variables.
	Aggs []sparql.Aggregate
	// Having restricts groups after aggregation.
	Having []sparql.Expr
	// OrderBy sorts the grouped results (aliases are sortable).
	OrderBy []sparql.OrderKey
	// Limit caps the grouped results; 0 means no limit.
	Limit int
}

// Query is a parsed OASSIS-QL query.
type Query struct {
	Select     SelectClause
	Where      Pattern
	Satisfying []Subclause
	// Agg is the analytic (GROUP BY / aggregate) extension; nil for
	// queries in the paper's core language.
	Agg *Aggregation
}

// Vars returns every named variable in the query in first-appearance
// order (WHERE first, then SATISFYING subclauses).
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(vs []string) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	add(q.Where.Vars())
	for _, sc := range q.Satisfying {
		add(sc.Pattern.Vars())
	}
	return out
}

// Validate checks structural well-formedness: a non-empty SATISFYING
// clause in which every subclause has exactly one significance criterion,
// thresholds within [0,1], positive k, and projected variables that occur
// in the query.
func (q *Query) Validate() error {
	if len(q.Satisfying) == 0 {
		return fmt.Errorf("oassisql: query has no SATISFYING clause")
	}
	for i, sc := range q.Satisfying {
		switch {
		case sc.TopK == nil && sc.Threshold == nil:
			return fmt.Errorf("oassisql: subclause %d has neither LIMIT nor THRESHOLD", i+1)
		case sc.TopK != nil && sc.Threshold != nil:
			return fmt.Errorf("oassisql: subclause %d has both LIMIT and THRESHOLD", i+1)
		case sc.TopK != nil && sc.TopK.K <= 0:
			return fmt.Errorf("oassisql: subclause %d has non-positive k %d", i+1, sc.TopK.K)
		case sc.Threshold != nil && (*sc.Threshold < 0 || *sc.Threshold > 1):
			return fmt.Errorf("oassisql: subclause %d threshold %g outside [0,1]", i+1, *sc.Threshold)
		case len(sc.Pattern.Triples) == 0:
			return fmt.Errorf("oassisql: subclause %d has no triples", i+1)
		}
	}
	if err := q.validateAggregation(); err != nil {
		return err
	}
	if !q.Select.All {
		if len(q.Select.Vars) == 0 {
			return fmt.Errorf("oassisql: SELECT projects no variables")
		}
		known := map[string]bool{}
		for _, v := range q.Vars() {
			known[v] = true
		}
		if q.Agg != nil {
			for _, a := range q.Agg.Aggs {
				known[a.As] = true
			}
		}
		for _, v := range q.Select.Vars {
			if !known[v] {
				return fmt.Errorf("oassisql: SELECT variable $%s not used in query", v)
			}
		}
	}
	return nil
}

// validateAggregation checks the analytic extension: known aggregate
// functions over variables the query binds, fresh non-colliding aliases,
// and grouping variables that occur in a pattern.
func (q *Query) validateAggregation() error {
	if q.Agg == nil {
		return nil
	}
	pv := map[string]bool{}
	for _, v := range q.Vars() {
		pv[v] = true
	}
	if len(q.Agg.GroupBy) == 0 && len(q.Agg.Aggs) == 0 && len(q.Agg.Having) == 0 &&
		len(q.Agg.OrderBy) == 0 && q.Agg.Limit == 0 {
		return fmt.Errorf("oassisql: empty aggregation extension (use Agg = nil)")
	}
	for _, v := range q.Agg.GroupBy {
		if !pv[v] {
			return fmt.Errorf("oassisql: GROUP BY of undefined variable $%s", v)
		}
	}
	aliases := map[string]bool{}
	for _, a := range q.Agg.Aggs {
		if !sparql.AggFuncs[a.Func] {
			return fmt.Errorf("oassisql: unknown aggregate function %s()", a.Func)
		}
		if a.Var == "" && a.Func != "COUNT" {
			return fmt.Errorf("oassisql: %s(*) is not valid; only COUNT takes *", a.Func)
		}
		if a.Var != "" && !pv[a.Var] {
			return fmt.Errorf("oassisql: aggregate over undefined variable $%s", a.Var)
		}
		switch {
		case a.As == "":
			return fmt.Errorf("oassisql: aggregate %s() has no output alias", a.Func)
		case pv[a.As]:
			return fmt.Errorf("oassisql: aggregate alias $%s collides with a query variable", a.As)
		case aliases[a.As]:
			return fmt.Errorf("oassisql: duplicate aggregate alias $%s", a.As)
		}
		aliases[a.As] = true
	}
	if len(q.Agg.Having) > 0 && len(q.Agg.GroupBy) == 0 && len(q.Agg.Aggs) == 0 {
		return fmt.Errorf("oassisql: HAVING requires GROUP BY or an aggregate")
	}
	for _, k := range q.Agg.OrderBy {
		if !pv[k.Var] && !aliases[k.Var] {
			return fmt.Errorf("oassisql: ORDER BY of undefined variable $%s", k.Var)
		}
	}
	if q.Agg.Limit < 0 {
		return fmt.Errorf("oassisql: negative LIMIT %d", q.Agg.Limit)
	}
	return nil
}

// Equal reports whether two queries are structurally identical up to
// filter-expression rendering.
func (q *Query) Equal(o *Query) bool {
	return q.String() == o.String()
}
