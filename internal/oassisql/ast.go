// Package oassisql defines the OASSIS-QL crowd-mining query language of
// Amsterdamer et al. (SIGMOD 2014), which NL2CM targets: the AST, a
// parser, a printer that reproduces the paper's concrete syntax
// (Figure 1), and structural validation.
//
// An OASSIS-QL query has three parts (paper §2.1):
//
//   - SELECT: which variable bindings the query returns;
//   - WHERE: a SPARQL-like selection over the general-knowledge ontology;
//   - SATISFYING: data patterns to be mined from the crowd, split into
//     subclauses, each holding one semantic event/property and carrying
//     either a support threshold or a top/bottom-k selection.
package oassisql

import (
	"fmt"
	"strings"

	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// Pattern is a basic graph pattern with optional filters.
type Pattern struct {
	Triples []rdf.Triple
	Filters []sparql.Expr
}

// Vars returns the named (non-anonymous) variables of the pattern in
// first-appearance order.
func (p Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range p.Triples {
		for _, v := range t.Vars() {
			if !seen[v] && !IsAnonVar(v) {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// Clone deep-copies the pattern's triple slice (filters are immutable).
func (p Pattern) Clone() Pattern {
	c := Pattern{Filters: append([]sparql.Expr(nil), p.Filters...)}
	c.Triples = append([]rdf.Triple(nil), p.Triples...)
	return c
}

// IsAnonVar reports whether a variable name denotes an anonymous "[]"
// term ("anything/anyone"), which the printer renders back as [].
func IsAnonVar(name string) bool { return strings.HasPrefix(name, "_anon") }

// TopK is the ORDER BY …(SUPPORT) LIMIT k form of significance selection.
type TopK struct {
	K int
	// Desc selects the k highest-support patterns; false selects the
	// lowest.
	Desc bool
}

// Subclause is one crowd-mining data pattern of the SATISFYING clause.
// Exactly one of TopK and Threshold must be set.
type Subclause struct {
	Pattern Pattern
	// TopK selects the k highest/lowest-support bindings.
	TopK *TopK
	// Threshold is the minimal support in [0,1]; nil when TopK is used.
	Threshold *float64
}

// SelectClause defines the query output.
type SelectClause struct {
	// All corresponds to "SELECT VARIABLES": return bindings of all
	// variables that yield significant patterns.
	All bool
	// Vars lists the projected variables when All is false.
	Vars []string
}

// Query is a parsed OASSIS-QL query.
type Query struct {
	Select     SelectClause
	Where      Pattern
	Satisfying []Subclause
}

// Vars returns every named variable in the query in first-appearance
// order (WHERE first, then SATISFYING subclauses).
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(vs []string) {
		for _, v := range vs {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	add(q.Where.Vars())
	for _, sc := range q.Satisfying {
		add(sc.Pattern.Vars())
	}
	return out
}

// Validate checks structural well-formedness: a non-empty SATISFYING
// clause in which every subclause has exactly one significance criterion,
// thresholds within [0,1], positive k, and projected variables that occur
// in the query.
func (q *Query) Validate() error {
	if len(q.Satisfying) == 0 {
		return fmt.Errorf("oassisql: query has no SATISFYING clause")
	}
	for i, sc := range q.Satisfying {
		switch {
		case sc.TopK == nil && sc.Threshold == nil:
			return fmt.Errorf("oassisql: subclause %d has neither LIMIT nor THRESHOLD", i+1)
		case sc.TopK != nil && sc.Threshold != nil:
			return fmt.Errorf("oassisql: subclause %d has both LIMIT and THRESHOLD", i+1)
		case sc.TopK != nil && sc.TopK.K <= 0:
			return fmt.Errorf("oassisql: subclause %d has non-positive k %d", i+1, sc.TopK.K)
		case sc.Threshold != nil && (*sc.Threshold < 0 || *sc.Threshold > 1):
			return fmt.Errorf("oassisql: subclause %d threshold %g outside [0,1]", i+1, *sc.Threshold)
		case len(sc.Pattern.Triples) == 0:
			return fmt.Errorf("oassisql: subclause %d has no triples", i+1)
		}
	}
	if !q.Select.All {
		if len(q.Select.Vars) == 0 {
			return fmt.Errorf("oassisql: SELECT projects no variables")
		}
		known := map[string]bool{}
		for _, v := range q.Vars() {
			known[v] = true
		}
		for _, v := range q.Select.Vars {
			if !known[v] {
				return fmt.Errorf("oassisql: SELECT variable $%s not used in query", v)
			}
		}
	}
	return nil
}

// Equal reports whether two queries are structurally identical up to
// filter-expression rendering.
func (q *Query) Equal(o *Query) bool {
	return q.String() == o.String()
}
