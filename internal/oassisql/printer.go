package oassisql

import (
	"fmt"
	"strconv"
	"strings"

	"nl2cm/internal/rdf"
)

// String renders the query in the paper's concrete syntax. For the
// running example it reproduces Figure 1 line for line:
//
//	SELECT VARIABLES
//	WHERE
//	{$x instanceOf Place.
//	$x near Forest_Hotel,_Buffalo,_NY}
//	SATISFYING
//	{$x hasLabel "interesting"}
//	ORDER BY DESC(SUPPORT)
//	LIMIT 5
//	AND
//	{[] visit $x.
//	[] in Fall}
//	WITH SUPPORT THRESHOLD = 0.1
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Select.All {
		b.WriteString("VARIABLES")
	} else {
		for i, v := range q.Select.Vars {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString("$" + v)
		}
	}
	b.WriteString("\nWHERE\n")
	writePattern(&b, q.Where)
	if len(q.Satisfying) == 0 {
		return b.String()
	}
	b.WriteString("\nSATISFYING")
	for i, sc := range q.Satisfying {
		if i > 0 {
			b.WriteString("\nAND")
		}
		b.WriteByte('\n')
		writePattern(&b, sc.Pattern)
		switch {
		case sc.TopK != nil:
			dir := "DESC"
			if !sc.TopK.Desc {
				dir = "ASC"
			}
			fmt.Fprintf(&b, "\nORDER BY %s(SUPPORT)\nLIMIT %d", dir, sc.TopK.K)
		case sc.Threshold != nil:
			fmt.Fprintf(&b, "\nWITH SUPPORT THRESHOLD = %s", formatThreshold(*sc.Threshold))
		}
	}
	return b.String()
}

func formatThreshold(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// The paper writes thresholds with a decimal point (0.1).
	if !strings.ContainsAny(s, ".e") {
		s += ".0"
	}
	return s
}

func writePattern(b *strings.Builder, p Pattern) {
	b.WriteByte('{')
	for i, t := range p.Triples {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(TermString(t.S))
		b.WriteByte(' ')
		b.WriteString(TermString(t.P))
		b.WriteByte(' ')
		b.WriteString(TermString(t.O))
		if i < len(p.Triples)-1 {
			b.WriteByte('.')
		}
	}
	for _, f := range p.Filters {
		b.WriteString("\nFILTER(")
		b.WriteString(f.String())
		b.WriteByte(')')
	}
	b.WriteByte('}')
}

// TermString renders a term in OASSIS-QL surface syntax: bare local
// names for IRIs, "$x" for variables, "[]" for anonymous variables and
// quoted strings for literals.
func TermString(t rdf.Term) string {
	switch t.Kind() {
	case rdf.KindVariable:
		if IsAnonVar(t.Value()) {
			return "[]"
		}
		return "$" + t.Value()
	case rdf.KindIRI:
		return t.Local()
	case rdf.KindLiteral:
		return strconv.Quote(t.Value())
	case rdf.KindBlank:
		return "[]"
	default:
		return t.String()
	}
}
