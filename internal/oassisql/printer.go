package oassisql

import (
	"fmt"
	"strconv"
	"strings"

	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// Clause names used by Printer.Annotate (and by provenance records) to
// locate a triple in the query.
const (
	ClauseWhere      = "where"
	ClauseSatisfying = "satisfying"
)

// Printer renders a Query in the paper's concrete syntax, optionally
// annotating each data-pattern triple with a trailing comment. The zero
// Printer reproduces Query.String byte for byte; with Annotate set, each
// triple line whose callback returns a non-empty comment gains a
// trailing " # <comment>" (the lexer skips comments, so annotated output
// still parses).
type Printer struct {
	// Annotate returns the comment body (without the leading "# ") for
	// the triple at the given position, or "" for none. clause is
	// ClauseWhere or ClauseSatisfying; sub is the SATISFYING subclause
	// index (-1 for WHERE); i is the triple's index within its pattern.
	Annotate func(clause string, sub, i int, t rdf.Triple) string
}

// String renders the query in the paper's concrete syntax. For the
// running example it reproduces Figure 1 line for line:
//
//	SELECT VARIABLES
//	WHERE
//	{$x instanceOf Place.
//	$x near Forest_Hotel,_Buffalo,_NY}
//	SATISFYING
//	{$x hasLabel "interesting"}
//	ORDER BY DESC(SUPPORT)
//	LIMIT 5
//	AND
//	{[] visit $x.
//	[] in Fall}
//	WITH SUPPORT THRESHOLD = 0.1
func (q *Query) String() string { return Printer{}.Print(q) }

// Print renders the query, consulting the printer's Annotate callback
// for per-triple source comments.
func (p Printer) Print(q *Query) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	byAlias := map[string]sparql.Aggregate{}
	if q.Agg != nil {
		for _, a := range q.Agg.Aggs {
			byAlias[a.As] = a
		}
	}
	if q.Select.All {
		b.WriteString("VARIABLES")
		if q.Agg != nil {
			for _, a := range q.Agg.Aggs {
				b.WriteByte(' ')
				b.WriteString(a.String())
			}
		}
	} else {
		for i, v := range q.Select.Vars {
			if i > 0 {
				b.WriteByte(' ')
			}
			if a, ok := byAlias[v]; ok {
				b.WriteString(a.String())
			} else {
				b.WriteString("$" + v)
			}
		}
	}
	b.WriteString("\nWHERE\n")
	p.writePattern(&b, q.Where, ClauseWhere, -1)
	writeAggregation(&b, q.Agg)
	if len(q.Satisfying) == 0 {
		return b.String()
	}
	b.WriteString("\nSATISFYING")
	for i, sc := range q.Satisfying {
		if i > 0 {
			b.WriteString("\nAND")
		}
		b.WriteByte('\n')
		p.writePattern(&b, sc.Pattern, ClauseSatisfying, i)
		switch {
		case sc.TopK != nil:
			dir := "DESC"
			if !sc.TopK.Desc {
				dir = "ASC"
			}
			fmt.Fprintf(&b, "\nORDER BY %s(SUPPORT)\nLIMIT %d", dir, sc.TopK.K)
		case sc.Threshold != nil:
			fmt.Fprintf(&b, "\nWITH SUPPORT THRESHOLD = %s", formatThreshold(*sc.Threshold))
		}
	}
	return b.String()
}

// writeAggregation renders the analytic extension's grouping modifiers
// between the WHERE pattern and SATISFYING: GROUP BY, HAVING, query-level
// ORDER BY and LIMIT. Aggregate outputs themselves render in the SELECT
// clause.
func writeAggregation(b *strings.Builder, agg *Aggregation) {
	if agg == nil {
		return
	}
	if len(agg.GroupBy) > 0 {
		b.WriteString("\nGROUP BY")
		for _, v := range agg.GroupBy {
			b.WriteString(" $" + v)
		}
	}
	for _, h := range agg.Having {
		b.WriteString("\nHAVING(")
		b.WriteString(h.String())
		b.WriteByte(')')
	}
	if len(agg.OrderBy) > 0 {
		b.WriteString("\nORDER BY")
		for _, k := range agg.OrderBy {
			dir := "ASC"
			if k.Desc {
				dir = "DESC"
			}
			fmt.Fprintf(b, " %s($%s)", dir, k.Var)
		}
	}
	if agg.Limit > 0 {
		fmt.Fprintf(b, "\nLIMIT %d", agg.Limit)
	}
}

func formatThreshold(f float64) string {
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// The paper writes thresholds with a decimal point (0.1).
	if !strings.ContainsAny(s, ".e") {
		s += ".0"
	}
	return s
}

func (p Printer) writePattern(b *strings.Builder, pat Pattern, clause string, sub int) {
	b.WriteByte('{')
	lastComment := false
	for i, t := range pat.Triples {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(TripleString(t))
		if i < len(pat.Triples)-1 {
			b.WriteByte('.')
		}
		lastComment = false
		if p.Annotate != nil {
			if c := p.Annotate(clause, sub, i, t); c != "" {
				b.WriteString(" # ")
				b.WriteString(strings.ReplaceAll(c, "\n", " "))
				lastComment = true
			}
		}
	}
	for _, f := range pat.Filters {
		b.WriteString("\nFILTER(")
		b.WriteString(f.String())
		b.WriteByte(')')
		lastComment = false
	}
	if lastComment {
		// A trailing comment runs to end of line; break it so the
		// closing brace survives re-parsing.
		b.WriteByte('\n')
	}
	b.WriteByte('}')
}

// TripleString renders a triple in OASSIS-QL concrete syntax, without a
// trailing separator: `$x instanceOf Place`.
func TripleString(t rdf.Triple) string {
	return TermString(t.S) + " " + TermString(t.P) + " " + TermString(t.O)
}

// TermString renders a term in OASSIS-QL surface syntax: bare local
// names for IRIs, "$x" for variables, "[]" for anonymous variables and
// quoted strings for literals.
func TermString(t rdf.Term) string {
	switch t.Kind() {
	case rdf.KindVariable:
		if IsAnonVar(t.Value()) {
			return "[]"
		}
		return "$" + t.Value()
	case rdf.KindIRI:
		return t.Local()
	case rdf.KindLiteral:
		return strconv.Quote(t.Value())
	case rdf.KindBlank:
		return "[]"
	default:
		return t.String()
	}
}
