package oassisql

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nl2cm/internal/rdf"
)

// randomTerm builds a term valid in OASSIS-QL triple position pos
// (0=subject, 1=predicate, 2=object).
func randomTerm(r *rand.Rand, pos int, anon *int) rdf.Term {
	idents := []string{"Place", "Hotel", "visit", "eat", "near", "Fall",
		"Forest_Hotel,_Buffalo,_NY", "instanceOf", "hasLabel", "Big_Shot"}
	vars := []string{"x", "y", "z"}
	switch r.Intn(4) {
	case 0:
		return rdf.NewVar(vars[r.Intn(len(vars))])
	case 1:
		if pos != 1 { // predicates cannot be []
			*anon++
			return rdf.NewVar("_anon" + string(rune('0'+*anon%10)) + "x")
		}
		return rdf.NewIRI(idents[r.Intn(len(idents))])
	case 2:
		if pos == 2 && r.Intn(2) == 0 {
			lits := []string{"interesting", "good", "fun", "worth a visit"}
			return rdf.NewLiteral(lits[r.Intn(len(lits))])
		}
		return rdf.NewIRI(idents[r.Intn(len(idents))])
	default:
		return rdf.NewIRI(idents[r.Intn(len(idents))])
	}
}

// randomQuery builds an arbitrary structurally-valid OASSIS-QL query.
func randomQuery(r *rand.Rand) *Query {
	anon := 0
	pattern := func(n int) Pattern {
		var p Pattern
		for i := 0; i < n; i++ {
			p.Triples = append(p.Triples, rdf.T(
				randomTerm(r, 0, &anon),
				randomTerm(r, 1, &anon),
				randomTerm(r, 2, &anon),
			))
		}
		return p
	}
	q := &Query{Select: SelectClause{All: true}}
	q.Where = pattern(r.Intn(3))
	for i := 0; i < 1+r.Intn(3); i++ {
		sc := Subclause{Pattern: pattern(1 + r.Intn(3))}
		if r.Intn(2) == 0 {
			sc.TopK = &TopK{K: 1 + r.Intn(9), Desc: r.Intn(2) == 0}
		} else {
			th := float64(r.Intn(100)) / 100
			sc.Threshold = &th
		}
		q.Satisfying = append(q.Satisfying, sc)
	}
	// Sometimes project a subset of the named variables.
	if vars := q.Vars(); len(vars) > 0 && r.Intn(3) == 0 {
		q.Select.All = false
		q.Select.Vars = vars[:1+r.Intn(len(vars))]
	}
	return q
}

// Property: every structurally valid query print→parse→print round-trips
// to identical text.
func TestRandomQueryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		text := q.String()
		q2, err := Parse(text)
		if err != nil {
			t.Logf("unparseable generated query:\n%s\n%v", text, err)
			return false
		}
		if q2.String() != text {
			t.Logf("round trip mismatch:\n%s\nvs\n%s", text, q2.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Validate accepts every randomly generated query (they are
// constructed to be valid) and parsing preserves subclause count and
// criteria kinds.
func TestRandomQueryStructurePreserved(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuery(r)
		if err := q.Validate(); err != nil {
			t.Logf("generated query invalid: %v\n%s", err, q)
			return false
		}
		q2, err := Parse(q.String())
		if err != nil {
			return false
		}
		if len(q2.Satisfying) != len(q.Satisfying) {
			return false
		}
		for i := range q.Satisfying {
			if (q.Satisfying[i].TopK == nil) != (q2.Satisfying[i].TopK == nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
