package compose

import (
	"context"
	"strings"
	"testing"

	"nl2cm/internal/individual"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/prov"
	"nl2cm/internal/qgen"
	"nl2cm/internal/rdf"
)

// findTok returns the index of the first token with the given lower-case
// form, failing the test when absent.
func findTok(t *testing.T, g *nlp.DepGraph, lower string) int {
	t.Helper()
	for i := range g.Nodes {
		if g.Nodes[i].Lower == lower {
			return i
		}
	}
	t.Fatalf("token %q not found in %q", lower, g.Source)
	return -1
}

// mustParse parses the sentence, failing the test on error.
func mustParse(t *testing.T, sentence string) *nlp.DepGraph {
	t.Helper()
	g, err := nlp.Parse(sentence)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sentence, err)
	}
	return g
}

func decisionFor(t *testing.T, out *Output, rendered string) Decision {
	t.Helper()
	for _, d := range out.Decisions {
		if d.Rendered == rendered {
			return d
		}
	}
	t.Fatalf("no decision for triple %q; have %+v", rendered, out.Decisions)
	return Decision{}
}

// Two IXs sharing one verb through a conjunction ("visit and eat"): a
// general triple derived from the shared verb must be dropped, and the
// decision must cite the exact token intersection with the first
// overlapping IX.
func TestOverlapConjunctionSharedVerb(t *testing.T) {
	g := mustParse(t, "Should we visit and eat the cake?")
	visit, eat, cake := findTok(t, g, "visit"), findTok(t, g, "eat"), findTok(t, g, "cake")
	if pos := g.Nodes[visit].POS; !strings.HasPrefix(pos, "VB") {
		t.Fatalf("precondition: %q tagged %s, want VB*", "visit", pos)
	}
	if pos := g.Nodes[eat].POS; !strings.HasPrefix(pos, "VB") {
		t.Fatalf("precondition: %q tagged %s, want VB*", "eat", pos)
	}
	// Both IXs include the shared conjunction verbs in their completed
	// node sets.
	ix1 := &ix.IX{Anchor: visit, Nodes: []int{visit, eat, cake}}
	ix2 := &ix.IX{Anchor: eat, Nodes: []int{visit, eat}}
	vCake := rdf.NewVar("x")
	gen := &qgen.Result{
		TargetVar: "x",
		NodeTerms: map[int]rdf.Term{cake: vCake},
		Triples: []qgen.Triple{
			{Triple: rdf.T(vCake, rdf.NewIRI("instanceOf"), rdf.NewIRI("Cake")), Origin: []int{cake}},
			{Triple: rdf.T(vCake, rdf.NewIRI("visitedBy"), rdf.NewIRI("People")), Origin: []int{visit, cake}},
			{Triple: rdf.T(vCake, rdf.NewIRI("eatenBy"), rdf.NewIRI("People")), Origin: []int{eat}},
		},
	}
	parts := []individual.Part{{
		IX:      ix1,
		Triples: []rdf.Triple{rdf.T(rdf.NewVar("_anon1"), rdf.NewIRI("visit"), vCake)},
		Origins: []prov.TokenSet{prov.NewTokenSet(visit, cake)},
	}}
	out, err := New().ComposeTraced(context.Background(), Input{Graph: g, IXs: []*ix.IX{ix1, ix2}, General: gen, Parts: parts})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(out.Query.Where.Triples); n != 1 {
		t.Fatalf("WHERE kept %d triples, want 1 (only the noun typing):\n%s", n, out.Query)
	}
	d := decisionFor(t, out, "$x visitedBy People")
	if d.Kept || d.Reason != ReasonIXOverlap {
		t.Errorf("visitedBy decision = %+v, want ix-overlap drop", d)
	}
	if d.IXAnchor != visit {
		t.Errorf("visitedBy overlap attributed to anchor %d, want first IX anchor %d", d.IXAnchor, visit)
	}
	if want := prov.NewTokenSet(visit); !equalSets(d.Overlap, want) {
		t.Errorf("visitedBy overlap = %v, want exactly %v (the verb, not the noun)", d.Overlap, want)
	}
	// The triple from the second conjunct verb is dropped too — the
	// first IX's completed set already contains "eat".
	d = decisionFor(t, out, "$x eatenBy People")
	if d.Kept {
		t.Errorf("eatenBy survived despite conjunction-shared verb: %+v", d)
	}
	d = decisionFor(t, out, "$x instanceOf Cake")
	if !d.Kept || d.Reason != ReasonNoOverlap {
		t.Errorf("noun-typing decision = %+v, want kept with no-ix-overlap", d)
	}
}

// An IX nested inside a relative clause ("hotels that locals recommend"):
// triples about the outer noun stay, the triple derived from the
// clause's verb goes, even though both share the noun token.
func TestOverlapIXInsideRelativeClause(t *testing.T) {
	g := mustParse(t, "Which hotels that locals recommend are near the park?")
	hotels, locals, recommend, park := findTok(t, g, "hotels"), findTok(t, g, "locals"), findTok(t, g, "recommend"), findTok(t, g, "park")
	if pos := g.Nodes[recommend].POS; !strings.HasPrefix(pos, "VB") {
		t.Fatalf("precondition: %q tagged %s, want VB*", "recommend", pos)
	}
	x := &ix.IX{Anchor: recommend, Nodes: []int{hotels, locals, recommend}}
	vH, vP := rdf.NewVar("h"), rdf.NewVar("p")
	gen := &qgen.Result{
		TargetVar: "h",
		NodeTerms: map[int]rdf.Term{hotels: vH, park: vP},
		Triples: []qgen.Triple{
			{Triple: rdf.T(vH, rdf.NewIRI("instanceOf"), rdf.NewIRI("Hotel")), Origin: []int{hotels}},
			{Triple: rdf.T(vH, rdf.NewIRI("near"), vP), Origin: []int{hotels, park}},
			// FREyA wrongly grounded the relative clause's verb.
			{Triple: rdf.T(vH, rdf.NewIRI("recommendedBy"), rdf.NewIRI("Local")), Origin: []int{hotels, locals, recommend}},
		},
	}
	parts := []individual.Part{{
		IX:      x,
		Triples: []rdf.Triple{rdf.T(rdf.NewVar("_anon1"), rdf.NewIRI("recommend"), vH)},
		Origins: []prov.TokenSet{prov.NewTokenSet(recommend, hotels)},
	}}
	out, err := New().ComposeTraced(context.Background(), Input{Graph: g, IXs: []*ix.IX{x}, General: gen, Parts: parts})
	if err != nil {
		t.Fatal(err)
	}
	d := decisionFor(t, out, "$h recommendedBy Local")
	if d.Kept || d.Reason != ReasonIXOverlap {
		t.Fatalf("relative-clause triple not dropped: %+v", d)
	}
	// "locals" is a noun inside the IX: only non-noun tokens may appear
	// in the recorded overlap.
	for _, id := range d.Overlap {
		if pos := g.Nodes[id].POS; strings.HasPrefix(pos, "NN") {
			t.Errorf("overlap contains noun token %d (%q)", id, g.Nodes[id].Text)
		}
	}
	if !decisionFor(t, out, "$h instanceOf Hotel").Kept || !decisionFor(t, out, "$h near $p").Kept {
		t.Errorf("outer-noun triples dropped:\n%+v", out.Decisions)
	}
}

// A general triple partially overlapping an IX span: origin tokens both
// inside and outside the IX. One non-noun shared token suffices to drop
// it, and the recorded overlap is exactly the intersection.
func TestOverlapPartialSpan(t *testing.T) {
	g := mustParse(t, "What places should we visit in the fall near Buffalo?")
	places, visit, in_, fall, near, buffalo := findTok(t, g, "places"), findTok(t, g, "visit"),
		findTok(t, g, "in"), findTok(t, g, "fall"), findTok(t, g, "near"), findTok(t, g, "buffalo")
	x := &ix.IX{Anchor: visit, Nodes: []int{places, visit, in_, fall}}
	vX, vB := rdf.NewVar("x"), rdf.NewVar("b")
	gen := &qgen.Result{
		TargetVar: "x",
		NodeTerms: map[int]rdf.Term{places: vX, buffalo: vB},
		Triples: []qgen.Triple{
			// Partial overlap: "in" is inside the IX (non-noun), "near"
			// and "Buffalo" are outside.
			{Triple: rdf.T(vX, rdf.NewIRI("openIn"), rdf.NewIRI("Fall")), Origin: []int{in_, fall, near}},
			// Noun-only overlap: "fall" (noun) inside the IX, rest outside.
			{Triple: rdf.T(vX, rdf.NewIRI("near"), vB), Origin: []int{fall, near, buffalo}},
			{Triple: rdf.T(vX, rdf.NewIRI("instanceOf"), rdf.NewIRI("Place")), Origin: []int{places}},
		},
	}
	parts := []individual.Part{{
		IX:      x,
		Triples: []rdf.Triple{rdf.T(rdf.NewVar("_anon1"), rdf.NewIRI("visit"), vX)},
		Origins: []prov.TokenSet{prov.NewTokenSet(visit, places)},
	}}
	out, err := New().ComposeTraced(context.Background(), Input{Graph: g, IXs: []*ix.IX{x}, General: gen, Parts: parts})
	if err != nil {
		t.Fatal(err)
	}
	d := decisionFor(t, out, "$x openIn Fall")
	if d.Kept {
		t.Fatalf("partially overlapping triple survived: %+v", d)
	}
	if want := prov.NewTokenSet(in_); !equalSets(d.Overlap, want) {
		t.Errorf("overlap = %v, want exactly the shared non-noun token %v", d.Overlap, want)
	}
	if d := decisionFor(t, out, "$x near $b"); !d.Kept {
		t.Errorf("noun-only partial overlap dropped the triple: %+v", d)
	}
	if d := decisionFor(t, out, "$x instanceOf Place"); !d.Kept {
		t.Errorf("disjoint triple dropped: %+v", d)
	}
}

// The exact-intersection rule must agree with the legacy blocked-token
// heuristic it replaced, across the full pipeline on real sentences.
func TestOverlapMatchesLegacyHeuristic(t *testing.T) {
	for _, sentence := range []string{
		runningExample,
		"Is chocolate milk good for kids?",
		"Which hotel in Vegas has the best thrill ride?",
		"Where do you visit in Buffalo?",
		"What type of digital camera should I buy?",
	} {
		in := build(t, sentence)
		out, err := New().ComposeTraced(context.Background(), in)
		if err != nil {
			t.Fatalf("%q: %v", sentence, err)
		}
		// Recompute the legacy heuristic: block every IX anchor and
		// every non-noun IX node, drop triples touching a blocked token.
		blocked := map[int]bool{}
		for _, x := range in.IXs {
			blocked[x.Anchor] = true
			for _, n := range x.Nodes {
				if !strings.HasPrefix(in.Graph.Nodes[n].POS, "NN") {
					blocked[n] = true
				}
			}
		}
		for i, tr := range in.General.Triples {
			legacyDrop := false
			for _, n := range tr.Origin {
				if blocked[n] {
					legacyDrop = true
					break
				}
			}
			d := out.Decisions[i]
			exactDrop := !d.Kept && d.Reason == ReasonIXOverlap
			if legacyDrop != exactDrop {
				t.Errorf("%q: triple %q legacy drop=%v, exact drop=%v", sentence, d.Rendered, legacyDrop, exactDrop)
			}
		}
	}
}

func equalSets(a, b prov.TokenSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
