// Package compose implements NL2CM's Query Composition module (paper
// §2.6): it combines the general SPARQL triples from the Query Generator
// with the individual OASSIS-QL triples from the Individual Triple
// Creation module into one well-formed OASSIS-QL query.
//
// Composition performs, per the paper: (i) deletion of general triples
// that correspond to detected IXs (FREyA may have wrongly matched
// individual parts against the ontology); (ii) grouping of individual
// triples into SATISFYING subclauses, one per semantic event/property;
// (iii) variable alignment, so each reference to a term in the original
// sentence uses the same variable; (iv) significance criteria — a support
// threshold or a top/bottom-k selection per subclause, from defaults or
// user interaction (Figure 5); and (v) SELECT clause creation, by default
// projecting nothing out, optionally asking the user which terms to
// return (§4.1).
package compose

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nl2cm/internal/individual"
	"nl2cm/internal/interact"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/qgen"
	"nl2cm/internal/rdf"
)

// Defaults are the administrator-configured significance values used when
// the user is not consulted; the shipped values match the paper's
// Figure 1 (LIMIT 5, THRESHOLD 0.1).
type Defaults struct {
	TopK      int
	Threshold float64
}

// StandardDefaults returns the Figure 1 values.
func StandardDefaults() Defaults { return Defaults{TopK: 5, Threshold: 0.1} }

// Composer builds the final query. It carries only the read-only
// significance defaults and is safe for concurrent use.
type Composer struct {
	Defaults Defaults
}

// New returns a composer with the standard defaults.
func New() *Composer { return &Composer{Defaults: StandardDefaults()} }

// Input carries everything composition needs.
type Input struct {
	Graph      *nlp.DepGraph
	IXs        []*ix.IX
	General    *qgen.Result
	Parts      []individual.Part
	Interactor interact.Interactor
	Policy     interact.Policy
}

func (in *Input) interactor() interact.Interactor {
	if in.Interactor == nil {
		return interact.Auto{}
	}
	return in.Interactor
}

// Compose assembles the final OASSIS-QL query, honoring cancellation
// between subclauses (each may open a significance dialogue). A request
// with no individual parts yields a query with an empty SATISFYING
// clause; the caller decides whether to treat it as a plain ontology
// query.
func (c *Composer) Compose(ctx context.Context, in Input) (*oassisql.Query, error) {
	q := &oassisql.Query{Select: oassisql.SelectClause{All: true}}

	// (i) WHERE: general triples minus those corresponding to IXs, minus
	// dangling constraints about projected-out participants.
	q.Where.Triples = c.pruneDangling(c.filterGeneral(in), in)

	// (ii) SATISFYING: one subclause per individual part, each with
	// (iv) a significance criterion.
	for _, part := range in.Parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc := oassisql.Subclause{Pattern: oassisql.Pattern{Triples: part.Triples}}
		if err := c.significance(ctx, in, part, &sc); err != nil {
			return nil, err
		}
		q.Satisfying = append(q.Satisfying, sc)
	}

	// (iii) Variable alignment is guaranteed by construction: both the
	// general and individual modules resolve tokens through
	// in.General.NodeTerms. Verify the invariant rather than trusting it.
	if err := c.checkAlignment(q, in); err != nil {
		return nil, err
	}

	// (v) SELECT: by default no variable is projected out; the user may
	// restrict the output (Figure 6 discussion).
	if err := c.selectClause(ctx, q, in); err != nil {
		return nil, err
	}

	if len(q.Satisfying) > 0 {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("compose: produced invalid query: %w", err)
		}
	}
	return q, nil
}

// filterGeneral deletes general triples whose origin overlaps a detected
// IX's predicate content: its anchor or any non-noun node (the verb,
// adjective or preposition inside the IX). Shared nouns ("places") do not
// trigger deletion — they are exactly the join points between WHERE and
// SATISFYING.
func (c *Composer) filterGeneral(in Input) []rdf.Triple {
	blocked := map[int]bool{}
	for _, x := range in.IXs {
		blocked[x.Anchor] = true
		for _, n := range x.Nodes {
			if !strings.HasPrefix(in.Graph.Nodes[n].POS, "NN") {
				blocked[n] = true
			}
		}
	}
	var out []rdf.Triple
	for _, t := range in.General.Triples {
		overlap := false
		for _, n := range t.Origin {
			if blocked[n] {
				overlap = true
				break
			}
		}
		if !overlap {
			out = append(out, t.Triple)
		}
	}
	return out
}

// pruneDangling removes WHERE triples whose variables are orphans:
// variables that occur in exactly one WHERE triple, in no individual
// part, and are not the question focus. They arise when the Query
// Generator types a participant noun that the Individual Triple Creation
// later projects out ("do people cook ..." -> {$y instanceOf Person}).
func (c *Composer) pruneDangling(triples []rdf.Triple, in Input) []rdf.Triple {
	occur := map[string]int{}
	for _, t := range triples {
		for _, v := range t.Vars() {
			occur[v]++
		}
	}
	keep := map[string]bool{in.General.TargetVar: true}
	for _, part := range in.Parts {
		for _, t := range part.Triples {
			for _, v := range t.Vars() {
				keep[v] = true
			}
		}
	}
	var out []rdf.Triple
	for _, t := range triples {
		vars := t.Vars()
		orphan := len(vars) > 0
		for _, v := range vars {
			if keep[v] || occur[v] > 1 {
				orphan = false
				break
			}
		}
		if !orphan {
			out = append(out, t)
		}
	}
	return out
}

// significance fills the subclause's criterion: a top-k for superlative
// opinions, a support threshold otherwise; values come from defaults or
// the Figure-5 dialogue.
func (c *Composer) significance(ctx context.Context, in Input, part individual.Part, sc *oassisql.Subclause) error {
	ask := in.Policy.Asks(interact.PointSignificance)
	if part.Superlative {
		k := c.Defaults.TopK
		if ask {
			var err error
			k, err = in.interactor().SelectTopK(ctx, part.Description, k)
			if err != nil {
				return fmt.Errorf("compose: selecting top-k: %w", err)
			}
		}
		if k <= 0 {
			return fmt.Errorf("compose: non-positive top-k %d", k)
		}
		sc.TopK = &oassisql.TopK{K: k, Desc: true}
		return nil
	}
	th := c.Defaults.Threshold
	if ask {
		var err error
		th, err = in.interactor().SelectThreshold(ctx, part.Description, th)
		if err != nil {
			return fmt.Errorf("compose: selecting threshold: %w", err)
		}
	}
	if th < 0 || th > 1 {
		return fmt.Errorf("compose: threshold %g outside [0,1]", th)
	}
	sc.Threshold = &th
	return nil
}

// checkAlignment verifies that every named variable of the SATISFYING
// clause that is ontology-grounded (appears in any general triple,
// pre-deletion) uses the same name there — i.e. references to one token
// share one variable.
func (c *Composer) checkAlignment(q *oassisql.Query, in Input) error {
	// Build the set of variables per token from NodeTerms.
	byVar := map[string][]int{}
	for node, t := range in.General.NodeTerms {
		if t.IsVar() {
			byVar[t.Value()] = append(byVar[t.Value()], node)
		}
	}
	coref := func(a, b int) bool {
		if in.Graph.Nodes[a].Lemma == in.Graph.Nodes[b].Lemma {
			return true
		}
		// Transparent-noun delegation ("type of camera") is intentional
		// coreference.
		return in.General.Delegations[a] == b || in.General.Delegations[b] == a
	}
	for v, nodes := range byVar {
		for _, n := range nodes[1:] {
			if !coref(nodes[0], n) {
				return fmt.Errorf("compose: variable $%s bound to distinct terms %q and %q",
					v, in.Graph.Nodes[nodes[0]].Lemma, in.Graph.Nodes[n].Lemma)
			}
		}
	}
	return nil
}

// selectClause builds the SELECT clause, optionally consulting the user
// about which terms to receive instances for.
func (c *Composer) selectClause(ctx context.Context, q *oassisql.Query, in Input) error {
	if !in.Policy.Asks(interact.PointProjection) {
		return nil // default: SELECT VARIABLES
	}
	vars := q.Vars()
	if len(vars) == 0 {
		return nil
	}
	choices := make([]interact.VarChoice, len(vars))
	for i, v := range vars {
		choices[i] = interact.VarChoice{Var: v, Phrase: c.phraseFor(v, in)}
	}
	keep, err := in.interactor().SelectProjection(ctx, choices)
	if err != nil {
		return fmt.Errorf("compose: selecting projection: %w", err)
	}
	var kept []string
	for i, k := range keep {
		if k {
			kept = append(kept, vars[i])
		}
	}
	if len(kept) == len(vars) || len(kept) == 0 {
		return nil // everything kept: plain SELECT VARIABLES
	}
	sort.Strings(kept)
	q.Select.All = false
	q.Select.Vars = kept
	return nil
}

// phraseFor maps a variable back to the question phrase it stands for.
func (c *Composer) phraseFor(v string, in Input) string {
	for node, t := range in.General.NodeTerms {
		if t.IsVar() && t.Value() == v {
			if p, ok := in.General.Phrases[node]; ok && p != "" {
				return p
			}
			return in.Graph.Nodes[node].Text
		}
	}
	return ""
}
