// Package compose implements NL2CM's Query Composition module (paper
// §2.6): it combines the general SPARQL triples from the Query Generator
// with the individual OASSIS-QL triples from the Individual Triple
// Creation module into one well-formed OASSIS-QL query.
//
// Composition performs, per the paper: (i) deletion of general triples
// that correspond to detected IXs (FREyA may have wrongly matched
// individual parts against the ontology); (ii) grouping of individual
// triples into SATISFYING subclauses, one per semantic event/property;
// (iii) variable alignment, so each reference to a term in the original
// sentence uses the same variable; (iv) significance criteria — a support
// threshold or a top/bottom-k selection per subclause, from defaults or
// user interaction (Figure 5); and (v) SELECT clause creation, by default
// projecting nothing out, optionally asking the user which terms to
// return (§4.1).
package compose

import (
	"context"
	"fmt"
	"sort"

	"nl2cm/internal/emit"
	"nl2cm/internal/individual"
	"nl2cm/internal/interact"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/prov"
	"nl2cm/internal/qgen"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// Reasons recorded in Decision.Reason.
const (
	// ReasonNoOverlap marks a general triple kept because its origin
	// tokens intersect no IX's predicate tokens.
	ReasonNoOverlap = "no-ix-overlap"
	// ReasonIXOverlap marks a general triple dropped because it restates
	// a detected IX: its origin intersects the IX's predicate tokens.
	ReasonIXOverlap = "ix-overlap"
	// ReasonDangling marks a general triple dropped because its only
	// variable is an orphan (see pruneDangling).
	ReasonDangling = "dangling-variable"
)

// Decision records why one general triple was kept or dropped during
// composition, in terms of exact source-token sets.
type Decision struct {
	// Triple is the general triple the decision is about.
	Triple rdf.Triple `json:"-"`
	// Rendered is the triple in OASSIS-QL concrete syntax.
	Rendered string `json:"triple"`
	// Tokens is the triple's origin token set.
	Tokens prov.TokenSet `json:"tokens"`
	// Kept reports whether the triple survived into the WHERE clause.
	Kept bool `json:"kept"`
	// Reason is one of the Reason* constants.
	Reason string `json:"reason"`
	// IXAnchor is the anchor token of the overlapping IX (-1 when the
	// decision involved no IX).
	IXAnchor int `json:"ixAnchor"`
	// Overlap is the exact token intersection that triggered an
	// ix-overlap drop.
	Overlap prov.TokenSet `json:"overlap,omitempty"`
	// OrphanVar is the variable that made a dangling drop.
	OrphanVar string `json:"orphanVar,omitempty"`
}

// Output is the traced composition result: the backend-neutral logical
// plan, the OASSIS-QL query derived from it, and the provenance that
// explains both.
type Output struct {
	// Plan is the logical IR the composition assembled; every backend
	// rendering (including Query) derives from it.
	Plan *emit.Plan
	// Query is the plan rendered structurally into OASSIS-QL via the one
	// OASSIS emitter (emit.OassisQuery).
	Query *oassisql.Query
	// WhereOrigins is parallel to Query.Where.Triples: the source-token
	// set of each kept general triple.
	WhereOrigins []prov.TokenSet
	// SatisfyingOrigins[i] is parallel to
	// Query.Satisfying[i].Pattern.Triples.
	SatisfyingOrigins [][]prov.TokenSet
	// Decisions holds one entry per general triple the Query Generator
	// produced, kept or not, in generation order.
	Decisions []Decision
}

// Defaults are the administrator-configured significance values used when
// the user is not consulted; the shipped values match the paper's
// Figure 1 (LIMIT 5, THRESHOLD 0.1).
type Defaults struct {
	TopK      int
	Threshold float64
}

// StandardDefaults returns the Figure 1 values.
func StandardDefaults() Defaults { return Defaults{TopK: 5, Threshold: 0.1} }

// Composer builds the final query. It carries only the read-only
// significance defaults and is safe for concurrent use.
type Composer struct {
	Defaults Defaults
}

// New returns a composer with the standard defaults.
func New() *Composer { return &Composer{Defaults: StandardDefaults()} }

// Input carries everything composition needs.
type Input struct {
	Graph      *nlp.DepGraph
	IXs        []*ix.IX
	General    *qgen.Result
	Parts      []individual.Part
	Interactor interact.Interactor
	Policy     interact.Policy
}

func (in *Input) interactor() interact.Interactor {
	if in.Interactor == nil {
		return interact.Auto{}
	}
	return in.Interactor
}

// Compose assembles the final OASSIS-QL query, honoring cancellation
// between subclauses (each may open a significance dialogue). A request
// with no individual parts yields a query with an empty SATISFYING
// clause; the caller decides whether to treat it as a plain ontology
// query.
func (c *Composer) Compose(ctx context.Context, in Input) (*oassisql.Query, error) {
	out, err := c.ComposeTraced(ctx, in)
	if err != nil {
		return nil, err
	}
	return out.Query, nil
}

// ComposeTraced is Compose plus provenance: the returned Output carries
// the source-token set of every kept triple and a Decision for every
// general triple explaining, in exact token terms, why it was kept or
// dropped.
func (c *Composer) ComposeTraced(ctx context.Context, in Input) (*Output, error) {
	plan := &emit.Plan{Question: in.Graph.Source, Select: emit.Select{All: true}}
	out := &Output{Plan: plan}

	// (i) WHERE: general triples minus those corresponding to IXs, minus
	// dangling constraints about projected-out participants. Each kept
	// triple becomes a logical pattern carrying its source provenance.
	kept, decisions := c.filterGeneral(in)
	kept = c.pruneDangling(kept, in, decisions)
	for _, kt := range kept {
		tokens := kt.triple.TokenSet()
		plan.Where = append(plan.Where, emit.Pattern{
			Triple: kt.triple.Triple,
			Tokens: tokens,
			Source: in.Graph.Excerpt(tokens),
		})
		out.WhereOrigins = append(out.WhereOrigins, tokens)
	}
	out.Decisions = decisions

	// (ii) crowd clauses (SATISFYING): one per individual part, each with
	// (iv) a significance criterion.
	for _, part := range in.Parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sig, err := c.significance(ctx, in, part)
		if err != nil {
			return nil, err
		}
		origins := append([]prov.TokenSet(nil), part.Origins...)
		for len(origins) < len(part.Triples) {
			origins = append(origins, nil) // defensive: keep slices parallel
		}
		cc := emit.CrowdClause{Significance: sig}
		for i, t := range part.Triples {
			cc.Patterns = append(cc.Patterns, emit.Pattern{
				Triple: t,
				Tokens: origins[i],
				Source: in.Graph.Excerpt(origins[i]),
			})
		}
		plan.Crowd = append(plan.Crowd, cc)
		out.SatisfyingOrigins = append(out.SatisfyingOrigins, origins)
	}

	// (iii) Variable alignment is guaranteed by construction: both the
	// general and individual modules resolve tokens through
	// in.General.NodeTerms. Verify the invariant rather than trusting it.
	if err := c.checkAlignment(in); err != nil {
		return nil, err
	}

	// (v) SELECT: by default no variable is projected out; the user may
	// restrict the output (Figure 6 discussion).
	if err := c.selectClause(ctx, plan, in); err != nil {
		return nil, err
	}

	// Analytic step: a detected counting reading ("how many ...", "the
	// most <noun>") becomes the plan's grouping part.
	c.analytic(plan, in)

	// Derive the OASSIS-QL query structurally from the plan — the one
	// OASSIS emitter — and validate the result.
	q := emit.OassisQuery(plan)
	out.Query = q
	if len(q.Satisfying) > 0 {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("compose: produced invalid query: %w", err)
		}
	}
	return out, nil
}

// keptTriple is a general triple that survived a filtering stage, with
// the index of its Decision for later amendment.
type keptTriple struct {
	triple   qgen.Triple
	decision int
}

// filterGeneral deletes general triples whose origin token set intersects
// a detected IX's predicate tokens — the IX's anchor plus its non-noun
// nodes (the verb, adjective or preposition inside the IX), per
// ix.PredicateTokens. Shared nouns ("places") do not trigger deletion —
// they are exactly the join points between WHERE and SATISFYING. Every
// triple receives a Decision carrying the exact intersection.
func (c *Composer) filterGeneral(in Input) ([]keptTriple, []Decision) {
	pred := make([]prov.TokenSet, len(in.IXs))
	for i, x := range in.IXs {
		pred[i] = x.PredicateTokens(in.Graph)
	}
	var kept []keptTriple
	decisions := make([]Decision, 0, len(in.General.Triples))
	for _, t := range in.General.Triples {
		set := t.TokenSet()
		d := Decision{
			Triple:   t.Triple,
			Rendered: oassisql.TripleString(t.Triple),
			Tokens:   set,
			Kept:     true,
			Reason:   ReasonNoOverlap,
			IXAnchor: -1,
		}
		for i, x := range in.IXs {
			if ov := set.Intersect(pred[i]); !ov.Empty() {
				d.Kept = false
				d.Reason = ReasonIXOverlap
				d.IXAnchor = x.Anchor
				d.Overlap = ov
				break
			}
		}
		decisions = append(decisions, d)
		if d.Kept {
			kept = append(kept, keptTriple{triple: t, decision: len(decisions) - 1})
		}
	}
	return kept, decisions
}

// pruneDangling removes WHERE triples whose variables are orphans:
// variables that occur in exactly one WHERE triple, in no individual
// part, and are not the question focus. They arise when the Query
// Generator types a participant noun that the Individual Triple Creation
// later projects out ("do people cook ..." -> {$y instanceOf Person}).
// Drops flip the triple's Decision in place.
func (c *Composer) pruneDangling(kept []keptTriple, in Input, decisions []Decision) []keptTriple {
	occur := map[string]int{}
	for _, kt := range kept {
		for _, v := range kt.triple.Vars() {
			occur[v]++
		}
	}
	keep := map[string]bool{in.General.TargetVar: true}
	if agg := in.General.Aggregate; agg != nil {
		// The analytic step references these variables even when no
		// second triple does ("How many cameras ..." counts a noun whose
		// only triple is its class membership).
		keep[agg.CountVar] = true
		keep[agg.GroupVar] = true
	}
	for _, part := range in.Parts {
		for _, t := range part.Triples {
			for _, v := range t.Vars() {
				keep[v] = true
			}
		}
	}
	var out []keptTriple
	for _, kt := range kept {
		vars := kt.triple.Vars()
		orphan := len(vars) > 0
		orphanVar := ""
		for _, v := range vars {
			if keep[v] || occur[v] > 1 {
				orphan = false
				break
			}
			orphanVar = v
		}
		if orphan {
			d := &decisions[kt.decision]
			d.Kept = false
			d.Reason = ReasonDangling
			d.OrphanVar = orphanVar
			continue
		}
		out = append(out, kt)
	}
	return out
}

// significance picks the crowd clause's criterion: a top-k for
// superlative opinions, a support threshold otherwise; values come from
// defaults or the Figure-5 dialogue.
func (c *Composer) significance(ctx context.Context, in Input, part individual.Part) (emit.Significance, error) {
	ask := in.Policy.Asks(interact.PointSignificance)
	if part.Superlative {
		k := c.Defaults.TopK
		if ask {
			var err error
			k, err = in.interactor().SelectTopK(ctx, part.Description, k)
			if err != nil {
				return emit.Significance{}, fmt.Errorf("compose: selecting top-k: %w", err)
			}
		}
		if k <= 0 {
			return emit.Significance{}, fmt.Errorf("compose: non-positive top-k %d", k)
		}
		return emit.Significance{TopK: k, Desc: true}, nil
	}
	th := c.Defaults.Threshold
	if part.Majority {
		// "What do most people eat?" asks for the majority of the
		// crowd: at least half must support the pattern, regardless of
		// the administrator's default.
		th = 0.5
	}
	if ask {
		var err error
		th, err = in.interactor().SelectThreshold(ctx, part.Description, th)
		if err != nil {
			return emit.Significance{}, fmt.Errorf("compose: selecting threshold: %w", err)
		}
	}
	if th < 0 || th > 1 {
		return emit.Significance{}, fmt.Errorf("compose: threshold %g outside [0,1]", th)
	}
	return emit.Significance{Threshold: th}, nil
}

// analytic installs the plan's grouping step when the general query
// generator detected a counting reading. The step applies only when the
// variables it references survived composition into the WHERE clause:
// a counted or grouping variable whose triples were all deleted (they
// restated an IX, or dangled) leaves nothing to count, and the query
// degrades to a plain selection.
func (c *Composer) analytic(p *emit.Plan, in Input) {
	agg := in.General.Aggregate
	if agg == nil {
		return
	}
	bound := map[string]bool{}
	for _, pat := range p.Where {
		pat.Triple.EachVar(func(v string) { bound[v] = true })
	}
	if !bound[agg.CountVar] {
		return
	}
	a := &emit.Aggregation{
		Aggs: []sparql.Aggregate{{Func: "COUNT", Var: agg.CountVar, As: agg.Alias}},
	}
	if agg.GroupVar != "" {
		if !bound[agg.GroupVar] {
			return
		}
		// The counting superlative: group by the asked-about entity,
		// order the groups by their count and keep the extreme one.
		a.GroupBy = []string{agg.GroupVar}
		a.OrderBy = []sparql.OrderKey{{Var: agg.Alias, Desc: !agg.Ascending}}
		a.Limit = 1
	}
	p.Agg = a
}

// checkAlignment verifies that every named variable of the SATISFYING
// clause that is ontology-grounded (appears in any general triple,
// pre-deletion) uses the same name there — i.e. references to one token
// share one variable.
func (c *Composer) checkAlignment(in Input) error {
	// Build the set of variables per token from NodeTerms.
	byVar := map[string][]int{}
	for node, t := range in.General.NodeTerms {
		if t.IsVar() {
			byVar[t.Value()] = append(byVar[t.Value()], node)
		}
	}
	coref := func(a, b int) bool {
		if in.Graph.Nodes[a].Lemma == in.Graph.Nodes[b].Lemma {
			return true
		}
		// Transparent-noun delegation ("type of camera") is intentional
		// coreference.
		return in.General.Delegations[a] == b || in.General.Delegations[b] == a
	}
	for v, nodes := range byVar {
		for _, n := range nodes[1:] {
			if !coref(nodes[0], n) {
				return fmt.Errorf("compose: variable $%s bound to distinct terms %q and %q",
					v, in.Graph.Nodes[nodes[0]].Lemma, in.Graph.Nodes[n].Lemma)
			}
		}
	}
	return nil
}

// selectClause builds the SELECT clause, optionally consulting the user
// about which terms to receive instances for.
func (c *Composer) selectClause(ctx context.Context, p *emit.Plan, in Input) error {
	if !in.Policy.Asks(interact.PointProjection) {
		return nil // default: SELECT VARIABLES
	}
	vars := p.Vars()
	if len(vars) == 0 {
		return nil
	}
	choices := make([]interact.VarChoice, len(vars))
	for i, v := range vars {
		choices[i] = interact.VarChoice{Var: v, Phrase: c.phraseFor(v, in)}
	}
	keep, err := in.interactor().SelectProjection(ctx, choices)
	if err != nil {
		return fmt.Errorf("compose: selecting projection: %w", err)
	}
	var kept []string
	for i, k := range keep {
		if k {
			kept = append(kept, vars[i])
		}
	}
	if len(kept) == len(vars) || len(kept) == 0 {
		return nil // everything kept: plain SELECT VARIABLES
	}
	sort.Strings(kept)
	p.Select.All = false
	p.Select.Vars = kept
	return nil
}

// phraseFor maps a variable back to the question phrase it stands for.
func (c *Composer) phraseFor(v string, in Input) string {
	for node, t := range in.General.NodeTerms {
		if t.IsVar() && t.Value() == v {
			if p, ok := in.General.Phrases[node]; ok && p != "" {
				return p
			}
			return in.Graph.Nodes[node].Text
		}
	}
	return ""
}
