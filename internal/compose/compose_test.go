package compose

import (
	"context"
	"strings"
	"testing"

	"nl2cm/internal/individual"
	"nl2cm/internal/interact"
	"nl2cm/internal/ix"
	"nl2cm/internal/nlp"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/qgen"
)

// build runs the full upstream pipeline and returns a ready Input.
func build(t *testing.T, sentence string) Input {
	t.Helper()
	g, err := nlp.Parse(sentence)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	det := ix.NewDetector()
	ixs, err := det.Detect(context.Background(), g)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	gen := qgen.New(ontology.NewDemoOntology())
	res, err := gen.Generate(context.Background(), g, qgen.Options{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	parts, err := (&individual.Creator{}).Create(context.Background(), g, ixs, res)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return Input{Graph: g, IXs: ixs, General: res, Parts: parts}
}

const runningExample = "What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?"

func TestComposeFigure1(t *testing.T) {
	q, err := New().Compose(context.Background(), build(t, runningExample))
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	want := `SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1`
	if got := q.String(); got != want {
		t.Errorf("composed query:\n%s\nwant:\n%s", got, want)
	}
}

func TestComposeValidates(t *testing.T) {
	q, err := New().Compose(context.Background(), build(t, runningExample))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// The Query Composition module deletes general triples that correspond
// to detected IXs (paper §3): "good for kids" matched the ontology's
// goodFor relation, but "good" is a lexical IX.
func TestComposeDeletesIXOverlappingGeneralTriples(t *testing.T) {
	in := build(t, "Is chocolate milk good for kids?")
	// The generator produced the spurious general triple.
	spurious := false
	for _, tr := range in.General.Triples {
		if tr.P == ontology.PredGoodFor {
			spurious = true
		}
	}
	if !spurious {
		t.Fatal("precondition failed: no goodFor triple generated")
	}
	q, err := New().Compose(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range q.Where.Triples {
		if tr.P == ontology.PredGoodFor {
			t.Errorf("IX-overlapping triple survived in WHERE:\n%s", q)
		}
	}
}

// Shared nouns between WHERE and SATISFYING must NOT trigger deletion:
// {$x instanceOf Place} stays although "places" is inside the visit IX.
func TestComposeKeepsSharedNounTriples(t *testing.T) {
	q, err := New().Compose(context.Background(), build(t, runningExample))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range q.Where.Triples {
		if tr.P == ontology.PredInstanceOf {
			found = true
		}
	}
	if !found {
		t.Errorf("shared-noun triple deleted:\n%s", q)
	}
}

func TestComposeSignificanceDefaults(t *testing.T) {
	q, err := New().Compose(context.Background(), build(t, runningExample))
	if err != nil {
		t.Fatal(err)
	}
	if q.Satisfying[0].TopK == nil || q.Satisfying[0].TopK.K != 5 {
		t.Errorf("superlative subclause criterion = %+v", q.Satisfying[0])
	}
	if q.Satisfying[1].Threshold == nil || *q.Satisfying[1].Threshold != 0.1 {
		t.Errorf("habit subclause criterion = %+v", q.Satisfying[1])
	}
}

func TestComposeSignificanceInteraction(t *testing.T) {
	in := build(t, runningExample)
	in.Interactor = &interact.Scripted{TopKAnswers: []int{7}, ThresholdAnswers: []float64{0.3}}
	in.Policy = interact.Policy{Ask: map[interact.Point]bool{interact.PointSignificance: true}}
	q, err := New().Compose(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if q.Satisfying[0].TopK.K != 7 {
		t.Errorf("k = %d, want 7 (Figure 5 dialogue)", q.Satisfying[0].TopK.K)
	}
	if *q.Satisfying[1].Threshold != 0.3 {
		t.Errorf("threshold = %g, want 0.3", *q.Satisfying[1].Threshold)
	}
}

func TestComposeBadSignificanceRejected(t *testing.T) {
	in := build(t, runningExample)
	in.Interactor = &interact.Scripted{TopKAnswers: []int{0}}
	in.Policy = interact.Policy{Ask: map[interact.Point]bool{interact.PointSignificance: true}}
	if _, err := New().Compose(context.Background(), in); err == nil {
		t.Error("k=0 accepted")
	}
	in2 := build(t, runningExample)
	in2.Interactor = &interact.Scripted{ThresholdAnswers: []float64{1.5}}
	in2.Policy = interact.Policy{Ask: map[interact.Point]bool{interact.PointSignificance: true}}
	if _, err := New().Compose(context.Background(), in2); err == nil {
		t.Error("threshold 1.5 accepted")
	}
}

func TestComposeProjectionDefaultKeepsAll(t *testing.T) {
	q, err := New().Compose(context.Background(), build(t, runningExample))
	if err != nil {
		t.Fatal(err)
	}
	if !q.Select.All {
		t.Errorf("Select = %+v, want VARIABLES", q.Select)
	}
}

func TestComposeProjectionInteraction(t *testing.T) {
	// "What are the most interesting places we should visit with a tour
	// guide?" — the user keeps the guide but could drop it (paper §4.1).
	in := build(t, "What are the most interesting places in Buffalo we should visit with a tour guide?")
	// Determine variable count first.
	probe, err := New().Compose(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	vars := probe.Vars()
	if len(vars) < 2 {
		t.Skipf("need >= 2 vars for projection test, got %v", vars)
	}
	// Keep only the first variable.
	keep := make([]bool, len(vars))
	keep[0] = true
	in2 := build(t, "What are the most interesting places in Buffalo we should visit with a tour guide?")
	in2.Interactor = &interact.Scripted{ProjectionAnswers: [][]bool{keep}}
	in2.Policy = interact.Policy{Ask: map[interact.Point]bool{interact.PointProjection: true}}
	q, err := New().Compose(context.Background(), in2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select.All || len(q.Select.Vars) != 1 {
		t.Errorf("Select = %+v, want single projected variable", q.Select)
	}
}

func TestComposePureGeneralQuery(t *testing.T) {
	q, err := New().Compose(context.Background(), build(t, "Which parks are in Buffalo?"))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Satisfying) != 0 {
		t.Errorf("pure general question got SATISFYING subclauses:\n%s", q)
	}
	if len(q.Where.Triples) == 0 {
		t.Error("WHERE empty")
	}
	if strings.Contains(q.String(), "SATISFYING") {
		t.Errorf("printer shows empty SATISFYING:\n%s", q)
	}
}

func TestComposedQueryReparses(t *testing.T) {
	q, err := New().Compose(context.Background(), build(t, runningExample))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := oassisql.Parse(q.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", q, q2)
	}
}

// Property-style invariant over the corpus sentences: every composed
// query's subclauses have exactly one significance criterion each, and
// every named SATISFYING variable that appears in some general triple
// uses the same name there.
func TestComposeInvariantsOverSentences(t *testing.T) {
	sentences := []string{
		runningExample,
		"Which hotel in Vegas has the best thrill ride?",
		"What type of digital camera should I buy?",
		"Is chocolate milk good for kids?",
		"Where do you visit in Buffalo?",
		"At what container should I store coffee?",
		"Which dishes rich in fiber do people cook in the winter?",
		"What are the best places to visit in Buffalo with kids?",
		"Obama should visit Buffalo.",
	}
	for _, s := range sentences {
		in := build(t, s)
		q, err := New().Compose(context.Background(), in)
		if err != nil {
			t.Errorf("Compose(%q): %v", s, err)
			continue
		}
		for i, sc := range q.Satisfying {
			oneOf := (sc.TopK != nil) != (sc.Threshold != nil)
			if !oneOf {
				t.Errorf("%q subclause %d criteria invalid", s, i)
			}
			if len(sc.Pattern.Triples) == 0 {
				t.Errorf("%q subclause %d empty", s, i)
			}
		}
		if len(q.Satisfying) > 0 {
			if err := q.Validate(); err != nil {
				t.Errorf("%q: invalid query: %v", s, err)
			}
		}
	}
}
