package ontology

import (
	"fmt"

	"nl2cm/internal/rdf"
)

// NewSynthetic builds a deterministic synthetic ontology with nEntities
// entities for scale benchmarking and stress testing. The generated data
// mimics the shape of real knowledge bases the paper evaluates against
// (LinkedGeoData, DBPedia): a shallow class hierarchy, labels on every
// entity, a few high-frequency predicates and a deliberately rare one, so
// that join-order decisions have measurable consequences.
//
// Per entity it emits an instanceOf triple, a label triple, and one to
// three fact triples, for roughly 4*nEntities triples in total:
//
//   - every entity:      instanceOf class(i mod 16), label "entity i"
//   - every entity:      near entity((i*7+3) mod n)
//   - every 3rd entity:  locatedIn entity((i/30)*30)  (clustered regions)
//   - every 100th:       richIn entity((i*13) mod n)  (the rare predicate)
//
// The class hierarchy is two levels: class0..class15, where class k for
// k >= 4 is a subclass of class(k mod 4). The generator never calls
// MaterializeInference; callers that need the subclass closure apply it.
func NewSynthetic(nEntities int) *Ontology {
	o := New(fmt.Sprintf("Synthetic(%d)", nEntities))
	if nEntities <= 0 {
		return o
	}
	classes := make([]rdf.Term, 16)
	for k := range classes {
		super := rdf.Term{}
		if k >= 4 {
			super = E(fmt.Sprintf("class%d", k%4))
		}
		classes[k] = o.AddClass(fmt.Sprintf("class%d", k), fmt.Sprintf("class %d", k), super)
	}
	ent := func(i int) rdf.Term { return E(fmt.Sprintf("entity%d", i)) }
	for i := 0; i < nEntities; i++ {
		e := o.AddEntity(fmt.Sprintf("entity%d", i), fmt.Sprintf("entity %d", i),
			fmt.Sprintf("synthetic entity %d", i), classes[i%16])
		o.Add(e, PredNear, ent((i*7+3)%nEntities))
		if i%3 == 0 {
			o.Add(e, PredLocatedIn, ent((i/30)*30))
		}
		if i%100 == 0 {
			o.Add(e, PredRichIn, ent((i*13)%nEntities))
		}
	}
	return o
}
