package ontology

import "nl2cm/internal/rdf"

// NewGeoOntology builds the LinkedGeoData substitute: places, cities and
// hotels around the paper's running example (Buffalo, NY), the demo's Las
// Vegas questions, and deliberately ambiguous "Buffalo" entries that
// drive the disambiguation dialogue of Figure 4/FREyA.
func NewGeoOntology() *Ontology {
	o := New("GeoOntology")

	// Classes.
	place := o.AddClass("Place", "place", rdf.Term{})
	city := o.AddClass("City", "city", place)
	park := o.AddClass("Park", "park", place)
	zoo := o.AddClass("Zoo", "zoo", place)
	museum := o.AddClass("Museum", "museum", place)
	hotel := o.AddClass("Hotel", "hotel", place)
	restaurant := o.AddClass("Restaurant", "restaurant", place)
	beach := o.AddClass("Beach", "beach", place)
	season := o.AddClass("Season", "season", rdf.Term{})
	ride := o.AddClass("Ride", "ride", rdf.Term{})
	show := o.AddClass("Show", "show", rdf.Term{})
	o.Alias(place, "places")
	o.Alias(place, "sight")
	o.Alias(place, "sights")
	o.Alias(place, "attraction")
	o.Alias(place, "attractions")
	o.Alias(ride, "thrill ride")

	// Relations.
	o.AddRelation(PredNear, "near", "nearby", "close to", "around")
	o.AddRelation(PredLocatedIn, "in", "located in", "within", "inside", "at")
	o.AddRelation(PredHasFeature, "has", "have", "with", "offer")
	o.AddRelation(PredServes, "serve", "serves")
	o.AddRelation(PredInstanceOf, "instanceof", "instance of", "type of", "kind of")

	// Ambiguous Buffalos (the paper's Figure-4 example names NY and IL).
	buffaloNY := o.AddEntity("Buffalo,_NY", "Buffalo", "city in New York, USA", city)
	buffaloIL := o.AddEntity("Buffalo,_IL", "Buffalo", "village in Illinois, USA", city)
	buffaloWY := o.AddEntity("Buffalo,_WY", "Buffalo", "city in Wyoming, USA", city)
	vegas := o.AddEntity("Las_Vegas", "Las Vegas", "city in Nevada, USA", city)
	o.Alias(vegas, "Vegas")
	nyc := o.AddEntity("New_York_City", "New York City", "city in New York, USA", city)

	// The running example's hotel: its canonical local name matches the
	// paper's Figure 1 entity Forest_Hotel,_Buffalo,_NY.
	forest := o.AddEntity("Forest_Hotel,_Buffalo,_NY", "Forest Hotel",
		"hotel in Buffalo, NY, USA", hotel)
	o.Alias(forest, "Forest Hotel, Buffalo")
	o.Alias(forest, "Forest Hotel, Buffalo, NY")
	o.Add(forest, PredLocatedIn, buffaloNY)
	o.Add(buffaloNY, PredHasFeature, forest)

	// Buffalo, NY sights.
	addPlace := func(local, label, desc string, class, in rdf.Term, nearTo ...rdf.Term) rdf.Term {
		e := o.AddEntity(local, label, desc, class)
		if in.Value() != "" {
			o.Add(e, PredLocatedIn, in)
			// A city "has" the attractions located in it — the inverse
			// feature link counting queries group over ("Which city has
			// the most attractions?").
			o.Add(in, PredHasFeature, e)
		}
		for _, n := range nearTo {
			o.Add(e, PredNear, n)
			o.Add(n, PredNear, e)
		}
		return e
	}
	addPlace("Delaware_Park", "Delaware Park", "park in Buffalo, NY", park, buffaloNY, forest)
	addPlace("Buffalo_Zoo", "Buffalo Zoo", "zoo in Buffalo, NY", zoo, buffaloNY, forest)
	addPlace("Albright-Knox_Gallery", "Albright-Knox Gallery", "art museum in Buffalo, NY", museum, buffaloNY, forest)
	addPlace("Canalside", "Canalside", "waterfront district in Buffalo, NY", place, buffaloNY, forest)
	niagara := addPlace("Niagara_Falls", "Niagara Falls", "waterfalls near Buffalo, NY", place, rdf.Term{})
	o.Add(niagara, PredNear, buffaloNY)
	botanical := addPlace("Botanical_Gardens", "Botanical Gardens", "gardens in Buffalo, NY", park, buffaloNY)
	_ = botanical
	addPlace("Anchor_Bar", "Anchor Bar", "restaurant in Buffalo, NY", restaurant, buffaloNY, forest)
	addPlace("Woodlawn_Beach", "Woodlawn Beach", "beach near Buffalo, NY", beach, buffaloNY)

	// Las Vegas hotels and their thrill rides (demo question: "Which
	// hotel in Vegas has the best thrill ride?").
	strat := addPlace("Stratosphere", "Stratosphere", "hotel in Las Vegas, NV", hotel, vegas)
	nyny := addPlace("New_York-New_York", "New York-New York", "hotel in Las Vegas, NV", hotel, vegas)
	circus := addPlace("Circus_Circus", "Circus Circus", "hotel in Las Vegas, NV", hotel, vegas)
	bigShot := o.AddEntity("Big_Shot", "Big Shot", "thrill ride at the Stratosphere", ride)
	bigApple := o.AddEntity("Big_Apple_Coaster", "Big Apple Coaster", "roller coaster at New York-New York", ride)
	adventuredome := o.AddEntity("Adventuredome", "Adventuredome", "indoor theme park at Circus Circus", ride)
	o.Add(strat, PredHasFeature, bigShot)
	o.Add(nyny, PredHasFeature, bigApple)
	o.Add(circus, PredHasFeature, adventuredome)
	addPlace("Bellagio", "Bellagio", "hotel in Las Vegas, NV", hotel, vegas)
	fountains := o.AddEntity("Fountains_of_Bellagio", "Fountains of Bellagio", "fountain show at the Bellagio", show)
	o.Add(E("Bellagio"), PredHasFeature, fountains)

	// Seasons (the running example's "Fall").
	for _, s := range []struct{ local, label string }{
		{"Fall", "fall"}, {"Winter", "winter"}, {"Spring", "spring"}, {"Summer", "summer"},
	} {
		o.AddEntity(s.local, s.label, "season of the year", season)
	}
	o.Alias(E("Fall"), "autumn")

	// A few extra cities for lookup coverage.
	addPlace("Central_Park", "Central Park", "park in New York City", park, nyc)
	_ = buffaloIL
	_ = buffaloWY
	o.MaterializeInference()
	return o
}

// NewEncyclopedicOntology builds the DBPedia substitute: food and
// nutrition facts (the dietician example), consumer products (the
// shopping demo questions) and health-related entities.
func NewEncyclopedicOntology() *Ontology {
	o := New("EncyclopedicOntology")

	// Classes.
	food := o.AddClass("Food", "food", rdf.Term{})
	dish := o.AddClass("Dish", "dish", food)
	beverage := o.AddClass("Beverage", "beverage", food)
	nutrient := o.AddClass("Nutrient", "nutrient", rdf.Term{})
	product := o.AddClass("Product", "product", rdf.Term{})
	camera := o.AddClass("Camera", "camera", product)
	phone := o.AddClass("Phone", "phone", product)
	brand := o.AddClass("Brand", "brand", rdf.Term{})
	container := o.AddClass("Container", "container", rdf.Term{})
	person := o.AddClass("Person", "person", rdf.Term{})
	o.Alias(dish, "dishes")
	o.Alias(camera, "digital camera")
	o.Alias(camera, "cameras")
	o.Alias(food, "foods")
	o.Alias(person, "people")

	// Relations.
	o.AddRelation(PredRichIn, "rich in", "high in", "full of")
	o.AddRelation(PredContains, "contain", "contains", "made of")
	o.AddRelation(PredMadeBy, "made by", "by", "from")
	o.AddRelation(PredGoodFor, "good for")
	o.AddRelation(PredInstanceOf, "instanceof")

	// Nutrients.
	fiber := o.AddEntity("Fiber", "fiber", "dietary fiber", nutrient)
	protein := o.AddEntity("Protein", "protein", "protein", nutrient)
	calcium := o.AddEntity("Calcium", "calcium", "calcium", nutrient)
	sugar := o.AddEntity("Sugar", "sugar", "sugar", nutrient)

	// Dishes with nutrition facts (the dietician scenario needs
	// fiber-rich dishes in the general KB).
	addDish := func(local, label string, rich ...rdf.Term) rdf.Term {
		e := o.AddEntity(local, label, "food dish", dish)
		for _, n := range rich {
			o.Add(e, PredRichIn, n)
		}
		return e
	}
	addDish("Lentil_Soup", "lentil soup", fiber, protein)
	addDish("Oatmeal", "oatmeal", fiber)
	addDish("Bean_Chili", "bean chili", fiber, protein)
	addDish("Whole_Grain_Bread", "whole grain bread", fiber)
	addDish("Quinoa_Salad", "quinoa salad", fiber, protein)
	addDish("Ice_Cream", "ice cream", sugar, calcium)
	addDish("Grilled_Chicken", "grilled chicken", protein)
	addDish("Cheese_Omelette", "cheese omelette", protein, calcium)

	// Beverages.
	chocMilk := o.AddEntity("Chocolate_Milk", "chocolate milk", "milk beverage", beverage)
	o.Add(chocMilk, PredRichIn, calcium)
	o.Add(chocMilk, PredRichIn, sugar)
	coffee := o.AddEntity("Coffee", "coffee", "brewed beverage", beverage)
	o.AddEntity("Green_Tea", "green tea", "brewed beverage", beverage)
	_ = coffee

	// Containers (the rephrased coffee question needs them).
	o.AddEntity("Airtight_Jar", "airtight jar", "sealed storage container", container)
	o.AddEntity("Ceramic_Canister", "ceramic canister", "opaque storage container", container)
	o.AddEntity("Freezer_Bag", "freezer bag", "plastic storage bag", container)

	// Cameras and brands (the shopping scenario).
	nikon := o.AddEntity("Nikon", "Nikon", "camera maker", brand)
	canon := o.AddEntity("Canon", "Canon", "camera maker", brand)
	sony := o.AddEntity("Sony", "Sony", "electronics maker", brand)
	addCam := func(local, label string, maker rdf.Term, price string) {
		e := o.AddEntity(local, label, "digital camera model", camera)
		o.Add(e, PredMadeBy, maker)
		o.Add(e, PredPriceRange, rdf.NewLiteral(price))
	}
	addCam("Nikon_D3500", "Nikon D3500", nikon, "mid")
	addCam("Canon_EOS_R50", "Canon EOS R50", canon, "high")
	addCam("Sony_ZV-1", "Sony ZV-1", sony, "mid")
	addCam("Canon_PowerShot", "Canon PowerShot", canon, "low")
	o.AddEntity("iPhone", "iPhone", "smartphone", phone)

	// People groups (the "good for kids" question).
	kids := o.AddEntity("Kids", "kids", "children", person)
	o.Alias(kids, "children")
	o.AddEntity("Adults", "adults", "grown-ups", person)

	o.MaterializeInference()
	return o
}

// NewDemoOntology merges the geo and encyclopedic ontologies, matching
// the demo configuration ("The system will use the publicly available
// general data ontologies LinkedGeoData and DBPedia").
func NewDemoOntology() *Ontology {
	return Merge("DemoOntology", NewGeoOntology(), NewEncyclopedicOntology())
}
