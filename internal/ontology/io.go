package ontology

import (
	"fmt"
	"io"
	"sort"

	"nl2cm/internal/rdf"
)

// WriteNTriples serializes the ontology's triples in a deterministic
// order, so administrators can export, diff and edit knowledge bases as
// plain text.
func (o *Ontology) WriteNTriples(w io.Writer) error {
	triples := o.Store.All()
	rdf.SortTriples(triples)
	if err := rdf.WriteNTriples(w, triples); err != nil {
		return fmt.Errorf("ontology: exporting %s: %w", o.Name, err)
	}
	return nil
}

// ReadNTriples builds an ontology from N-Triples data, reconstructing
// the lookup indexes: labels come from <label> triples, class membership
// from subClassOf participation and instanceOf objects. Relation lemma
// mappings are structural knowledge rather than data, so the standard
// relation set is registered; descriptions are not representable in
// plain triples and remain empty.
func ReadNTriples(name string, r io.Reader) (*Ontology, error) {
	triples, err := rdf.ParseNTriples(r)
	if err != nil {
		return nil, fmt.Errorf("ontology: importing %s: %w", name, err)
	}
	o := New(name)
	classes := map[rdf.Term]bool{}
	for _, t := range triples {
		o.Store.MustAdd(t)
		switch t.P {
		case PredSubClassOf:
			classes[t.S] = true
			classes[t.O] = true
		case PredInstanceOf:
			classes[t.O] = true
		}
	}
	for c := range classes {
		o.classes[c] = true
	}
	// Rebuild the label index.
	for _, t := range triples {
		if t.P == PredLabel && t.O.IsLiteral() {
			o.index(t.O.Value(), t.S)
		}
	}
	registerStandardRelations(o)
	return o, nil
}

// registerStandardRelations installs the NL surface lemmas for the
// well-known predicates; they apply to any ontology in the namespace.
func registerStandardRelations(o *Ontology) {
	o.AddRelation(PredNear, "near", "nearby", "close to", "around")
	o.AddRelation(PredLocatedIn, "in", "located in", "within", "inside", "at")
	o.AddRelation(PredHasFeature, "has", "have", "with", "offer")
	o.AddRelation(PredServes, "serve", "serves")
	o.AddRelation(PredRichIn, "rich in", "high in", "full of")
	o.AddRelation(PredContains, "contain", "contains", "made of")
	o.AddRelation(PredMadeBy, "made by", "by", "from")
	o.AddRelation(PredGoodFor, "good for")
	o.AddRelation(PredInstanceOf, "instanceof", "instance of", "type of", "kind of")
}

// Stats summarizes an ontology for admin displays.
type Stats struct {
	Name     string
	Triples  int
	Classes  int
	Entities int
	Labels   int
}

// Summary computes ontology statistics.
func (o *Ontology) Summary() Stats {
	entities := map[rdf.Term]bool{}
	o.Store.MatchFunc(rdf.T(rdf.NewVar("s"), PredInstanceOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
		if !o.classes[t.S] {
			entities[t.S] = true
		}
		return true
	})
	labels := 0
	for range o.labels {
		labels++
	}
	return Stats{
		Name:     o.Name,
		Triples:  o.Store.Len(),
		Classes:  len(o.Classes()),
		Entities: len(entities),
		Labels:   labels,
	}
}

// Entities returns all non-class subjects with an instanceOf fact,
// sorted.
func (o *Ontology) Entities() []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	o.Store.MatchFunc(rdf.T(rdf.NewVar("s"), PredInstanceOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
		if !o.classes[t.S] && !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
