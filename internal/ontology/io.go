package ontology

import (
	"fmt"
	"io"
	"sort"

	"nl2cm/internal/rdf"
)

// WriteNTriples serializes the ontology's triples in a deterministic
// order, so administrators can export, diff and edit knowledge bases as
// plain text.
func (o *Ontology) WriteNTriples(w io.Writer) error {
	triples := o.Store.All()
	rdf.SortTriples(triples)
	if err := rdf.WriteNTriples(w, triples); err != nil {
		return fmt.Errorf("ontology: exporting %s: %w", o.Name, err)
	}
	return nil
}

// ReadNTriples builds an ontology from N-Triples data, reconstructing
// the lookup indexes: labels come from <label> triples, class membership
// from subClassOf participation and instanceOf objects. Relation lemma
// mappings are structural knowledge rather than data, so the standard
// relation set is registered; descriptions are not representable in
// plain triples and remain empty.
func ReadNTriples(name string, r io.Reader) (*Ontology, error) {
	triples, err := rdf.ParseNTriples(r)
	if err != nil {
		return nil, fmt.Errorf("ontology: importing %s: %w", name, err)
	}
	o := New(name)
	for _, t := range triples {
		o.Store.MustAdd(t)
	}
	// Class membership and the label index derive from the store per
	// epoch (subClassOf participation, instanceOf objects, <label>
	// literals); nothing to reconstruct here.
	registerStandardRelations(o)
	return o, nil
}

// registerStandardRelations installs the NL surface lemmas for the
// well-known predicates; they apply to any ontology in the namespace.
func registerStandardRelations(o *Ontology) {
	o.AddRelation(PredNear, "near", "nearby", "close to", "around")
	o.AddRelation(PredLocatedIn, "in", "located in", "within", "inside", "at")
	o.AddRelation(PredHasFeature, "has", "have", "with", "offer")
	o.AddRelation(PredServes, "serve", "serves")
	o.AddRelation(PredRichIn, "rich in", "high in", "full of")
	o.AddRelation(PredContains, "contain", "contains", "made of")
	o.AddRelation(PredMadeBy, "made by", "by", "from")
	o.AddRelation(PredGoodFor, "good for")
	o.AddRelation(PredInstanceOf, "instanceof", "instance of", "type of", "kind of")
}

// Stats summarizes an ontology for admin displays.
type Stats struct {
	Name     string
	Triples  int
	Classes  int
	Entities int
	Labels   int
}

// Summary computes ontology statistics over one pinned epoch.
func (o *Ontology) Summary() Stats {
	snap := o.Snapshot()
	d := o.idx()
	entities := map[rdf.Term]bool{}
	snap.MatchFunc(rdf.T(rdf.NewVar("s"), PredInstanceOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
		if !d.classes[t.S] {
			entities[t.S] = true
		}
		return true
	})
	return Stats{
		Name:     o.Name,
		Triples:  snap.Len(),
		Classes:  len(d.classes),
		Entities: len(entities),
		Labels:   len(d.labels),
	}
}

// Entities returns all non-class subjects with an instanceOf fact,
// sorted.
func (o *Ontology) Entities() []rdf.Term {
	snap := o.Snapshot()
	d := o.idx()
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	snap.MatchFunc(rdf.T(rdf.NewVar("s"), PredInstanceOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
		if !d.classes[t.S] && !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}
