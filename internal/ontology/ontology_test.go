package ontology

import (
	"strings"
	"testing"

	"nl2cm/internal/rdf"
)

func TestLookupExactLabel(t *testing.T) {
	o := NewGeoOntology()
	cands := o.Lookup("Delaware Park")
	if len(cands) == 0 {
		t.Fatal("no candidates for Delaware Park")
	}
	if cands[0].Term != E("Delaware_Park") || cands[0].Score != 1.0 {
		t.Errorf("top candidate = %+v", cands[0])
	}
}

func TestLookupAmbiguousBuffalo(t *testing.T) {
	o := NewGeoOntology()
	cands := o.Lookup("Buffalo")
	// At least the three Buffalo cities must surface, all at top score.
	top := map[string]bool{}
	for _, c := range cands {
		if c.Score == 1.0 {
			top[c.Term.Local()] = true
		}
	}
	for _, want := range []string{"Buffalo,_NY", "Buffalo,_IL", "Buffalo,_WY"} {
		if !top[want] {
			t.Errorf("missing ambiguous candidate %s in %v", want, cands)
		}
	}
	// Descriptions must distinguish them, as the Figure-4 dialogue needs.
	descs := map[string]bool{}
	for _, c := range cands {
		if c.Score == 1.0 {
			descs[c.Description] = true
		}
	}
	if len(descs) < 3 {
		t.Errorf("ambiguous candidates share descriptions: %v", descs)
	}
}

func TestLookupCaseAndPluralInsensitive(t *testing.T) {
	o := NewGeoOntology()
	if c := o.Lookup("PLACES"); len(c) == 0 || c[0].Term != E("Place") {
		t.Errorf("Lookup(PLACES) = %v", c)
	}
	if c := o.Lookup("place"); len(c) == 0 || c[0].Term != E("Place") || !c[0].IsClass {
		t.Errorf("Lookup(place) = %v", c)
	}
}

func TestLookupForestHotelVariants(t *testing.T) {
	o := NewGeoOntology()
	for _, phrase := range []string{
		"Forest Hotel",
		"Forest Hotel, Buffalo",
		"Forest Hotel, Buffalo, NY",
		"forest hotel buffalo",
	} {
		cands := o.Lookup(phrase)
		if len(cands) == 0 {
			t.Errorf("Lookup(%q) empty", phrase)
			continue
		}
		if cands[0].Term.Local() != "Forest_Hotel,_Buffalo,_NY" {
			t.Errorf("Lookup(%q) top = %v", phrase, cands[0].Term)
		}
	}
}

func TestLookupEmptyAndUnknown(t *testing.T) {
	o := NewGeoOntology()
	if c := o.Lookup(""); c != nil {
		t.Errorf("Lookup(\"\") = %v", c)
	}
	if c := o.Lookup("zzzgarbage"); len(c) != 0 {
		t.Errorf("Lookup(zzzgarbage) = %v", c)
	}
}

func TestLookupRelation(t *testing.T) {
	o := NewGeoOntology()
	cases := []struct {
		lemma string
		want  rdf.Term
	}{
		{"near", PredNear}, {"NEAR", PredNear}, {"in", PredLocatedIn},
		{"at", PredLocatedIn}, {"has", PredHasFeature},
	}
	for _, c := range cases {
		got, ok := o.LookupRelation(c.lemma)
		if !ok || got != c.want {
			t.Errorf("LookupRelation(%q) = %v, %v", c.lemma, got, ok)
		}
	}
	if _, ok := o.LookupRelation("frobnicate"); ok {
		t.Error("LookupRelation(frobnicate) ok = true")
	}
}

func TestInstancesOfIncludesSubclasses(t *testing.T) {
	o := NewGeoOntology()
	places := o.InstancesOf(E("Place"))
	want := map[string]bool{}
	for _, p := range places {
		want[p.Local()] = true
	}
	// Direct instances and subclass instances.
	for _, local := range []string{"Delaware_Park", "Buffalo_Zoo", "Forest_Hotel,_Buffalo,_NY", "Buffalo,_NY", "Niagara_Falls"} {
		if !want[local] {
			t.Errorf("InstancesOf(Place) missing %s", local)
		}
	}
	// Parks only.
	parks := o.InstancesOf(E("Park"))
	for _, p := range parks {
		if p.Local() == "Buffalo_Zoo" {
			t.Error("InstancesOf(Park) contains the zoo")
		}
	}
}

func TestNearRelationSymmetric(t *testing.T) {
	o := NewGeoOntology()
	forest := E("Forest_Hotel,_Buffalo,_NY")
	near := o.Store.Subjects(PredNear, forest)
	if len(near) < 3 {
		t.Errorf("only %d places near Forest Hotel", len(near))
	}
	// the reverse direction exists too
	back := o.Store.Objects(E("Delaware_Park"), PredNear)
	found := false
	for _, b := range back {
		if b == forest {
			found = true
		}
	}
	if !found {
		t.Error("near relation not symmetric for Delaware Park")
	}
}

func TestEncyclopedicFiberDishes(t *testing.T) {
	o := NewEncyclopedicOntology()
	rich := o.Store.Subjects(PredRichIn, E("Fiber"))
	if len(rich) < 4 {
		t.Errorf("only %d fiber-rich dishes", len(rich))
	}
	for _, d := range rich {
		if d.Local() == "Ice_Cream" {
			t.Error("ice cream is not fiber-rich")
		}
	}
}

func TestLabelFallsBackToLocalName(t *testing.T) {
	o := New("t")
	term := E("Unlabeled_Thing")
	if got := o.Label(term); got != "Unlabeled_Thing" {
		t.Errorf("Label = %q", got)
	}
	o.AddEntity("Thing2", "the thing", "", rdf.Term{})
	if got := o.Label(E("Thing2")); got != "the thing" {
		t.Errorf("Label = %q", got)
	}
}

func TestMergeCombinesEverything(t *testing.T) {
	m := NewDemoOntology()
	// geo lookup works
	if c := m.Lookup("Buffalo"); len(c) < 3 {
		t.Errorf("merged Lookup(Buffalo) = %d candidates", len(c))
	}
	// encyclopedic lookup works
	if c := m.Lookup("chocolate milk"); len(c) == 0 || c[0].Term != E("Chocolate_Milk") {
		t.Errorf("merged Lookup(chocolate milk) = %v", c)
	}
	// relations from both
	if _, ok := m.LookupRelation("near"); !ok {
		t.Error("merged ontology lost geo relation")
	}
	if _, ok := m.LookupRelation("rich in"); !ok {
		t.Error("merged ontology lost encyclopedic relation")
	}
	if m.Store.Len() < NewGeoOntology().Store.Len() {
		t.Error("merged store smaller than a part")
	}
}

func TestClassesSortedAndFlagged(t *testing.T) {
	o := NewGeoOntology()
	cs := o.Classes()
	if len(cs) < 8 {
		t.Fatalf("only %d classes", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Compare(cs[i]) >= 0 {
			t.Fatal("Classes not sorted")
		}
	}
	if !o.IsClass(E("Place")) || o.IsClass(E("Delaware_Park")) {
		t.Error("IsClass flags wrong")
	}
}

func TestDescriptionsPresentForAmbiguous(t *testing.T) {
	o := NewGeoOntology()
	if d := o.Description(E("Buffalo,_NY")); !strings.Contains(d, "New York") {
		t.Errorf("description = %q", d)
	}
}

func TestAliasLookup(t *testing.T) {
	o := NewGeoOntology()
	if c := o.Lookup("Vegas"); len(c) == 0 || c[0].Term != E("Las_Vegas") {
		t.Errorf("Lookup(Vegas) = %v", c)
	}
	if c := o.Lookup("autumn"); len(c) == 0 || c[0].Term != E("Fall") {
		t.Errorf("Lookup(autumn) = %v", c)
	}
}

func TestSeasonEntities(t *testing.T) {
	o := NewGeoOntology()
	seasons := o.InstancesOf(E("Season"))
	if len(seasons) != 4 {
		t.Errorf("got %d seasons, want 4", len(seasons))
	}
	if c := o.Lookup("fall"); len(c) == 0 || c[0].Term != E("Fall") {
		t.Errorf("Lookup(fall) = %v", c)
	}
}

func TestOntologyNTriplesRoundTrip(t *testing.T) {
	orig := NewGeoOntology()
	var buf strings.Builder
	if err := orig.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadNTriples("reloaded", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Store.Len() != orig.Store.Len() {
		t.Errorf("triples = %d, want %d", loaded.Store.Len(), orig.Store.Len())
	}
	// Label lookup survives the round trip.
	cands := loaded.Lookup("Delaware Park")
	if len(cands) == 0 || cands[0].Term != E("Delaware_Park") {
		t.Errorf("Lookup after reload = %v", cands)
	}
	// Class membership reconstructed.
	if !loaded.IsClass(E("Place")) || !loaded.IsClass(E("Park")) {
		t.Error("classes not reconstructed")
	}
	// Standard relations usable.
	if _, ok := loaded.LookupRelation("near"); !ok {
		t.Error("relations not registered")
	}
	// Subclass instances still reachable.
	if n := len(loaded.InstancesOf(E("Place"))); n < 10 {
		t.Errorf("InstancesOf(Place) = %d after reload", n)
	}
}

func TestReadNTriplesBadInput(t *testing.T) {
	if _, err := ReadNTriples("x", strings.NewReader("not triples")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestOntologySummary(t *testing.T) {
	s := NewGeoOntology().Summary()
	if s.Name != "GeoOntology" || s.Triples == 0 || s.Classes < 8 || s.Entities < 15 {
		t.Errorf("Summary = %+v", s)
	}
}

func TestOntologyEntities(t *testing.T) {
	ents := NewGeoOntology().Entities()
	if len(ents) < 15 {
		t.Fatalf("entities = %d", len(ents))
	}
	for i := 1; i < len(ents); i++ {
		if ents[i-1].Compare(ents[i]) >= 0 {
			t.Fatal("entities not sorted")
		}
	}
	for _, e := range ents {
		if NewGeoOntology().IsClass(e) {
			t.Errorf("class %v listed as entity", e)
		}
	}
}

func TestReloadedOntologyDrivesTranslationLookups(t *testing.T) {
	orig := NewDemoOntology()
	var buf strings.Builder
	if err := orig.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadNTriples("demo2", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	// The ambiguity that drives the Figure-4 dialogue survives.
	top := 0
	for _, c := range loaded.Lookup("Buffalo") {
		if c.Score >= 1.0 {
			top++
		}
	}
	if top < 3 {
		t.Errorf("Buffalo ambiguity lost: %d top candidates", top)
	}
}
