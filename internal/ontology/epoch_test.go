package ontology

import (
	"testing"

	"nl2cm/internal/rdf"
)

// TestInsertedCityResolvesImmediately is the staleness regression test:
// a city inserted through a raw store batch (no AddEntity registration)
// must be resolvable by ResolveEntity, Lookup and Label on the very
// next call, because the label index re-derives per store epoch instead
// of being frozen at construction.
func TestInsertedCityResolvesImmediately(t *testing.T) {
	o := NewDemoOntology()
	if _, ok := o.ResolveEntity("Newville"); ok {
		t.Fatal("Newville resolved before insertion")
	}

	newCity := E("Newville")
	city := E("City")
	_, _, _, err := o.Store.Apply(rdf.Batch{Insert: []rdf.Triple{
		rdf.T(newCity, PredLabel, rdf.NewLiteral("Newville")),
		rdf.T(newCity, PredInstanceOf, city),
	}})
	if err != nil {
		t.Fatal(err)
	}

	got, ok := o.ResolveEntity("Newville")
	if !ok || !got.Equal(newCity) {
		t.Fatalf("ResolveEntity after insert = %v, %v; want %v, true", got, ok, newCity)
	}
	if l := o.Label(newCity); l != "Newville" {
		t.Fatalf("Label after insert = %q, want %q", l, "Newville")
	}
	cands := o.Lookup("Newville")
	if len(cands) != 1 || !cands[0].Term.Equal(newCity) {
		t.Fatalf("Lookup after insert = %v, want exactly the new city", cands)
	}
	if cands[0].IsClass {
		t.Fatal("inserted instance classified as class")
	}

	// Deletion is symmetric: removing the label triples must stop the
	// phrase from resolving in the next epoch.
	if _, removed, _, err := o.Store.Apply(rdf.Batch{Delete: []rdf.Triple{
		rdf.T(newCity, PredLabel, rdf.NewLiteral("Newville")),
	}}); err != nil || removed != 1 {
		t.Fatalf("Apply delete = %d, %v", removed, err)
	}
	if _, ok := o.ResolveEntity("Newville"); ok {
		t.Fatal("Newville still resolves after its label was deleted")
	}
	if l := o.Label(newCity); l != "Newville" && l != newCity.Local() {
		t.Fatalf("Label after delete = %q", l)
	}
}

// TestInsertedClassMembershipDerives checks the class side of the
// per-epoch rebuild: a term appearing as an instanceOf object in a
// batch counts as a class immediately.
func TestInsertedClassMembershipDerives(t *testing.T) {
	o := NewDemoOntology()
	vineyard := E("Vineyard")
	napa := E("Napa_Vineyard")
	if o.IsClass(vineyard) {
		t.Fatal("Vineyard is a class before insertion")
	}
	if _, _, _, err := o.Store.Apply(rdf.Batch{Insert: []rdf.Triple{
		rdf.T(vineyard, PredLabel, rdf.NewLiteral("vineyard")),
		rdf.T(napa, PredLabel, rdf.NewLiteral("Napa Vineyard")),
		rdf.T(napa, PredInstanceOf, vineyard),
	}}); err != nil {
		t.Fatal(err)
	}
	if !o.IsClass(vineyard) {
		t.Fatal("Vineyard not a class after an instanceOf batch")
	}
	if o.IsClass(napa) {
		t.Fatal("instance misclassified as class")
	}
	// A class phrase must not resolve as an entity slot.
	if _, ok := o.ResolveEntity("vineyard"); ok {
		t.Fatal("class phrase resolved as entity")
	}
	if got, ok := o.ResolveEntity("Napa Vineyard"); !ok || !got.Equal(napa) {
		t.Fatalf("ResolveEntity(Napa Vineyard) = %v, %v", got, ok)
	}
}

// TestAliasAfterLookupInvalidates ensures registration-state changes
// (not only store epochs) refresh the derived index: an Alias added
// after the index was first built must be visible to the next Lookup.
func TestAliasAfterLookupInvalidates(t *testing.T) {
	o := NewDemoOntology()
	if _, ok := o.ResolveEntity("Entertainment Capital"); ok {
		t.Fatal("alias resolved before registration")
	}
	o.Alias(E("Las_Vegas"), "Entertainment Capital")
	got, ok := o.ResolveEntity("Entertainment Capital")
	if !ok || !got.Equal(E("Las_Vegas")) {
		t.Fatalf("ResolveEntity after Alias = %v, %v; want Las_Vegas", got, ok)
	}
}
