// Package ontology provides the general-knowledge substrate of NL2CM. The
// paper evaluates against the public LinkedGeoData and DBPedia ontologies;
// this package substitutes embedded synthetic ontologies with the same
// interface obligations: RDF triples over named entities and classes, a
// label index for aligning natural-language phrases with entities and
// relations, and deliberately ambiguous entries (several places named
// "Buffalo") that exercise the system's disambiguation dialogues.
package ontology

import (
	"sort"
	"strings"

	"nl2cm/internal/rdf"
)

// NS is the namespace of all ontology IRIs.
const NS = "http://nl2cm.org/onto/"

// Well-known predicates.
var (
	PredInstanceOf = rdf.NewIRI(NS + "instanceOf")
	PredSubClassOf = rdf.NewIRI(NS + "subClassOf")
	PredLabel      = rdf.NewIRI(NS + "label")
	PredNear       = rdf.NewIRI(NS + "near")
	PredLocatedIn  = rdf.NewIRI(NS + "locatedIn")
	PredContains   = rdf.NewIRI(NS + "contains")
	PredRichIn     = rdf.NewIRI(NS + "richIn")
	PredHasFeature = rdf.NewIRI(NS + "hasFeature")
	PredMadeBy     = rdf.NewIRI(NS + "madeBy")
	PredPriceRange = rdf.NewIRI(NS + "priceRange")
	PredServes     = rdf.NewIRI(NS + "serves")
	PredGoodFor    = rdf.NewIRI(NS + "goodFor")
)

// E builds an entity IRI in the ontology namespace.
func E(local string) rdf.Term { return rdf.NewIRI(NS + local) }

// Candidate is one possible alignment of an NL phrase with an ontology
// entity or relation.
type Candidate struct {
	Term rdf.Term
	// Label is the entity's primary label.
	Label string
	// Description disambiguates homonyms for the user ("city in New
	// York, USA").
	Description string
	// Score ranks candidates; higher is better. Scores combine match
	// quality with learned user feedback (see qgen).
	Score float64
	// IsClass reports whether the candidate is a class rather than an
	// individual.
	IsClass bool
}

// Ontology is a labeled triple store with lookup indexes.
type Ontology struct {
	// Name identifies the ontology in admin-mode traces ("GeoOntology").
	Name  string
	Store *rdf.Store

	// labels maps normalized full labels to entities (exact matches).
	labels map[string][]rdf.Term
	// words maps individual label words to entities (partial matches).
	words map[string][]rdf.Term
	// descriptions holds per-entity disambiguation strings.
	descriptions map[rdf.Term]string
	// primary caches each registered term's primary label (the
	// lexicographically smallest, matching Label's sorted-first pick), so
	// candidate construction during Lookup does not scan the store per
	// term.
	primary map[rdf.Term]string
	// classes records which terms are classes.
	classes map[rdf.Term]bool
	// relations maps lower-cased relation lemmas ("near", "located in")
	// to predicates.
	relations map[string]rdf.Term
}

// New returns an empty ontology with the given name.
func New(name string) *Ontology {
	return &Ontology{
		Name:         name,
		Store:        rdf.NewStore(),
		labels:       map[string][]rdf.Term{},
		words:        map[string][]rdf.Term{},
		descriptions: map[rdf.Term]string{},
		primary:      map[rdf.Term]string{},
		classes:      map[rdf.Term]bool{},
		relations:    map[string]rdf.Term{},
	}
}

// AddEntity registers an entity with its label, description and class,
// and indexes the label (and each of its words) for lookup.
func (o *Ontology) AddEntity(local, label, description string, class rdf.Term) rdf.Term {
	e := E(local)
	o.Store.AddTriple(e, PredLabel, rdf.NewLiteral(label))
	if class.Value() != "" {
		o.Store.AddTriple(e, PredInstanceOf, class)
	}
	o.descriptions[e] = description
	o.cachePrimary(e, label)
	o.index(label, e)
	return e
}

// AddClass registers a class term with a label and optional superclass.
func (o *Ontology) AddClass(local, label string, super rdf.Term) rdf.Term {
	c := E(local)
	o.Store.AddTriple(c, PredLabel, rdf.NewLiteral(label))
	if super.Value() != "" {
		o.Store.AddTriple(c, PredSubClassOf, super)
	}
	o.classes[c] = true
	o.cachePrimary(c, label)
	o.index(label, c)
	return c
}

// cachePrimary records the term's primary label, keeping the smallest
// when a term is registered under several labels — the same pick Label
// makes when it sorts the store's label triples.
func (o *Ontology) cachePrimary(t rdf.Term, label string) {
	if prev, ok := o.primary[t]; !ok || label < prev {
		o.primary[t] = label
	}
}

// AddRelation registers NL surface lemmas for a predicate.
func (o *Ontology) AddRelation(pred rdf.Term, lemmas ...string) {
	for _, l := range lemmas {
		o.relations[strings.ToLower(l)] = pred
	}
}

// Add registers an arbitrary fact triple.
func (o *Ontology) Add(s, p, oTerm rdf.Term) { o.Store.AddTriple(s, p, oTerm) }

// Alias adds an extra lookup label for an existing term.
func (o *Ontology) Alias(term rdf.Term, label string) { o.index(label, term) }

func (o *Ontology) index(label string, term rdf.Term) {
	key := normalize(label)
	o.labels[key] = appendUnique(o.labels[key], term)
	// Index individual words separately (weaker matches), so "Buffalo"
	// finds "Buffalo, NY" without full-label matches being diluted.
	words := strings.Fields(key)
	if len(words) > 1 {
		for _, w := range words {
			if len(w) > 2 {
				o.words[w] = appendUnique(o.words[w], term)
			}
		}
	}
}

func appendUnique(ts []rdf.Term, t rdf.Term) []rdf.Term {
	for _, x := range ts {
		if x.Equal(t) {
			return ts
		}
	}
	return append(ts, t)
}

func normalize(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, ",", " ")
	return strings.Join(strings.Fields(s), " ")
}

// Description returns the disambiguation string for an entity.
func (o *Ontology) Description(t rdf.Term) string { return o.descriptions[t] }

// Label returns the primary label of a term, falling back to the IRI
// local name. Registered terms answer from the primary-label cache;
// label triples added directly to the store are found by scanning it.
func (o *Ontology) Label(t rdf.Term) string {
	if l, ok := o.primary[t]; ok {
		return l
	}
	objs := o.Store.Objects(t, PredLabel)
	if len(objs) > 0 {
		// deterministic choice
		sort.Slice(objs, func(i, j int) bool { return objs[i].Compare(objs[j]) < 0 })
		return objs[0].Value()
	}
	return t.Local()
}

// IsClass reports whether the term is a registered class.
func (o *Ontology) IsClass(t rdf.Term) bool { return o.classes[t] }

// Lookup aligns an NL phrase with ontology terms, returning candidates
// ranked by match quality: exact normalized label match scores 1.0,
// full-phrase prefix matches 0.8, head-word matches 0.6. Deterministic
// order: score desc, then term order.
func (o *Ontology) Lookup(phrase string) []Candidate {
	key := normalize(phrase)
	if key == "" {
		return nil
	}
	scored := map[rdf.Term]float64{}
	consider := func(ts []rdf.Term, score float64) {
		for _, t := range ts {
			if scored[t] < score {
				scored[t] = score
			}
		}
	}
	consider(o.labels[key], 1.0)
	// singular fallback: "places" -> "place"
	if strings.HasSuffix(key, "s") {
		consider(o.labels[strings.TrimSuffix(key, "s")], 0.9)
	}
	// word-index fallback: the phrase is one word of a longer label
	consider(o.words[key], 0.6)
	// word-by-word fallback: some word of the phrase is a known label
	for _, w := range strings.Fields(key) {
		if w == key {
			continue
		}
		consider(o.labels[w], 0.6)
		consider(o.words[w], 0.4)
	}
	out := make([]Candidate, 0, len(scored))
	for t, s := range scored {
		out = append(out, Candidate{
			Term:        t,
			Label:       o.Label(t),
			Description: o.descriptions[t],
			Score:       s,
			IsClass:     o.classes[t],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Term.Compare(out[j].Term) < 0
	})
	return out
}

// ResolveEntity resolves a phrase that exactly (after normalization)
// labels exactly one non-class term — the condition under which the
// phrase is an unambiguous, feedback-independent entity mention. It is
// the shape-canonicalization hook of the plan cache (qcache): ambiguous
// labels like "Buffalo" and class words like "restaurant" return false
// and stay literal in a question's shape key.
func (o *Ontology) ResolveEntity(phrase string) (rdf.Term, bool) {
	ts := o.labels[normalize(phrase)]
	if len(ts) != 1 || o.classes[ts[0]] {
		return rdf.Term{}, false
	}
	return ts[0], true
}

// LookupRelation aligns a relation lemma ("near", "in", "visit") with a
// predicate, if the ontology models it.
func (o *Ontology) LookupRelation(lemma string) (rdf.Term, bool) {
	p, ok := o.relations[strings.ToLower(lemma)]
	return p, ok
}

// Classes returns all registered classes, sorted.
func (o *Ontology) Classes() []rdf.Term {
	var out []rdf.Term
	for c := range o.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// InstancesOf returns the instances of a class, including instances of
// its subclasses (one transitive closure over subClassOf).
func (o *Ontology) InstancesOf(class rdf.Term) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	var visit func(c rdf.Term)
	visited := map[rdf.Term]bool{}
	visit = func(c rdf.Term) {
		if visited[c] {
			return
		}
		visited[c] = true
		for _, inst := range o.Store.Subjects(PredInstanceOf, c) {
			if !seen[inst] {
				seen[inst] = true
				out = append(out, inst)
			}
		}
		for _, sub := range o.Store.Subjects(PredSubClassOf, c) {
			visit(sub)
		}
	}
	visit(class)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// MaterializeInference adds the subclass closure to the store: for every
// (s instanceOf C) and superclass S of C, (s instanceOf S) is added, so
// the plain BGP matcher answers "instanceOf Place" for parks and hotels.
// Call it once after the ontology data is loaded.
func (o *Ontology) MaterializeInference() {
	// superclasses: direct subClassOf edges.
	super := map[rdf.Term][]rdf.Term{}
	o.Store.MatchFunc(rdf.T(rdf.NewVar("c"), PredSubClassOf, rdf.NewVar("s")), func(t rdf.Triple) bool {
		super[t.S] = append(super[t.S], t.O)
		return true
	})
	var allSupers func(c rdf.Term, seen map[rdf.Term]bool) []rdf.Term
	allSupers = func(c rdf.Term, seen map[rdf.Term]bool) []rdf.Term {
		var out []rdf.Term
		for _, s := range super[c] {
			if seen[s] {
				continue
			}
			seen[s] = true
			out = append(out, s)
			out = append(out, allSupers(s, seen)...)
		}
		return out
	}
	type inst struct{ s, c rdf.Term }
	var pairs []inst
	o.Store.MatchFunc(rdf.T(rdf.NewVar("s"), PredInstanceOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
		pairs = append(pairs, inst{t.S, t.O})
		return true
	})
	for _, p := range pairs {
		for _, s := range allSupers(p.c, map[rdf.Term]bool{}) {
			o.Store.AddTriple(p.s, PredInstanceOf, s)
		}
	}
}

// Merge combines several ontologies into one view (the demo uses
// LinkedGeoData and DBPedia together). Later ontologies win on
// description conflicts.
func Merge(name string, parts ...*Ontology) *Ontology {
	m := New(name)
	for _, p := range parts {
		for _, t := range p.Store.All() {
			m.Store.MustAdd(t)
		}
		for k, ts := range p.labels {
			for _, t := range ts {
				m.labels[k] = appendUnique(m.labels[k], t)
			}
		}
		for k, ts := range p.words {
			for _, t := range ts {
				m.words[k] = appendUnique(m.words[k], t)
			}
		}
		for t, d := range p.descriptions {
			m.descriptions[t] = d
		}
		for t, l := range p.primary {
			m.cachePrimary(t, l)
		}
		for c := range p.classes {
			m.classes[c] = true
		}
		for k, v := range p.relations {
			m.relations[k] = v
		}
	}
	return m
}
