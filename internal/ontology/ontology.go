// Package ontology provides the general-knowledge substrate of NL2CM. The
// paper evaluates against the public LinkedGeoData and DBPedia ontologies;
// this package substitutes embedded synthetic ontologies with the same
// interface obligations: RDF triples over named entities and classes, a
// label index for aligning natural-language phrases with entities and
// relations, and deliberately ambiguous entries (several places named
// "Buffalo") that exercise the system's disambiguation dialogues.
package ontology

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"nl2cm/internal/rdf"
)

// NS is the namespace of all ontology IRIs.
const NS = "http://nl2cm.org/onto/"

// Well-known predicates.
var (
	PredInstanceOf = rdf.NewIRI(NS + "instanceOf")
	PredSubClassOf = rdf.NewIRI(NS + "subClassOf")
	PredLabel      = rdf.NewIRI(NS + "label")
	PredNear       = rdf.NewIRI(NS + "near")
	PredLocatedIn  = rdf.NewIRI(NS + "locatedIn")
	PredContains   = rdf.NewIRI(NS + "contains")
	PredRichIn     = rdf.NewIRI(NS + "richIn")
	PredHasFeature = rdf.NewIRI(NS + "hasFeature")
	PredMadeBy     = rdf.NewIRI(NS + "madeBy")
	PredPriceRange = rdf.NewIRI(NS + "priceRange")
	PredServes     = rdf.NewIRI(NS + "serves")
	PredGoodFor    = rdf.NewIRI(NS + "goodFor")
)

// E builds an entity IRI in the ontology namespace.
func E(local string) rdf.Term { return rdf.NewIRI(NS + local) }

// Candidate is one possible alignment of an NL phrase with an ontology
// entity or relation.
type Candidate struct {
	Term rdf.Term
	// Label is the entity's primary label.
	Label string
	// Description disambiguates homonyms for the user ("city in New
	// York, USA").
	Description string
	// Score ranks candidates; higher is better. Scores combine match
	// quality with learned user feedback (see qgen).
	Score float64
	// IsClass reports whether the candidate is a class rather than an
	// individual.
	IsClass bool
}

// Ontology is a labeled triple store with lookup indexes. The store is
// mutable (epoch-snapshot sharded, see rdf.ShardedStore); the label,
// word, primary-label and class indexes are derived from the store per
// epoch, so a triple batch landed through the daemon is resolvable by
// Lookup/ResolveEntity on the very next call — nothing answers from a
// construction-time cache anymore.
type Ontology struct {
	// Name identifies the ontology in admin-mode traces ("GeoOntology").
	Name  string
	Store *rdf.ShardedStore

	// Registration-time state below is structural knowledge that plain
	// triples cannot carry; it augments (never replaces) the per-epoch
	// derived index.

	// descriptions holds per-entity disambiguation strings.
	descriptions map[rdf.Term]string
	// relations maps lower-cased relation lemmas ("near", "located in")
	// to predicates.
	relations map[string]rdf.Term
	// regClasses records classes registered via AddClass, which need no
	// subClassOf/instanceOf participation to count as classes.
	regClasses map[rdf.Term]bool
	// aliases are extra lookup labels (Alias) with no store triple.
	aliases []aliasEntry
	// regVersion bumps on every registration-state mutation so the
	// derived index is invalidated by Alias/AddClass as well as by a
	// store epoch change.
	regVersion atomic.Uint64

	// derived is the index for one (store epoch, regVersion) pair;
	// rebuildMu serializes rebuilds without blocking readers of the
	// current index.
	derived   atomic.Pointer[derivedIndex]
	rebuildMu sync.Mutex
}

type aliasEntry struct {
	label string
	term  rdf.Term
}

// derivedIndex is an immutable lookup index computed from one store
// snapshot plus the registration state at one version.
type derivedIndex struct {
	epoch      uint64
	regVersion uint64
	// labels maps normalized full labels to entities (exact matches).
	labels map[string][]rdf.Term
	// words maps individual label words to entities (partial matches).
	words map[string][]rdf.Term
	// primary caches each labeled term's primary label (the
	// lexicographically smallest), so candidate construction during
	// Lookup does not scan the store per term.
	primary map[rdf.Term]string
	// classes records which terms are classes: registered ones plus any
	// term participating in subClassOf or appearing as an instanceOf
	// object.
	classes map[rdf.Term]bool
}

// New returns an empty ontology with the given name.
func New(name string) *Ontology {
	return &Ontology{
		Name:         name,
		Store:        rdf.NewShardedStore(0),
		descriptions: map[rdf.Term]string{},
		relations:    map[string]rdf.Term{},
		regClasses:   map[rdf.Term]bool{},
	}
}

// Snapshot pins the current store epoch. Consumers that issue several
// reads per query (the crowd engine, qgen's degree probes, the sparql
// evaluator) hold one Snapshot so concurrent batches cannot shift the
// data mid-query.
func (o *Ontology) Snapshot() *rdf.Snapshot { return o.Store.Snapshot() }

// Epoch returns the store's current published epoch.
func (o *Ontology) Epoch() uint64 { return o.Store.Epoch() }

// idx returns the derived index for the current (epoch, regVersion),
// rebuilding it if either moved since the last rebuild.
func (o *Ontology) idx() *derivedIndex {
	snap := o.Store.Snapshot()
	rv := o.regVersion.Load()
	if d := o.derived.Load(); d != nil && d.epoch == snap.Epoch() && d.regVersion == rv {
		return d
	}
	return o.rebuild()
}

// rebuild recomputes the derived index from the latest snapshot and
// registration state. Concurrent callers rebuild once; readers keep
// using the previous index until the new one is published.
func (o *Ontology) rebuild() *derivedIndex {
	o.rebuildMu.Lock()
	defer o.rebuildMu.Unlock()
	// Re-fetch inside the lock: another goroutine may have rebuilt, and
	// the snapshot may have advanced while we waited.
	snap := o.Store.Snapshot()
	rv := o.regVersion.Load()
	if d := o.derived.Load(); d != nil && d.epoch == snap.Epoch() && d.regVersion == rv {
		return d
	}
	d := &derivedIndex{
		epoch:      snap.Epoch(),
		regVersion: rv,
		labels:     map[string][]rdf.Term{},
		words:      map[string][]rdf.Term{},
		primary:    map[rdf.Term]string{},
		classes:    make(map[rdf.Term]bool, len(o.regClasses)),
	}
	for c := range o.regClasses {
		d.classes[c] = true
	}
	snap.MatchFunc(rdf.T(rdf.NewVar("s"), PredSubClassOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
		d.classes[t.S] = true
		d.classes[t.O] = true
		return true
	})
	snap.MatchFunc(rdf.T(rdf.NewVar("s"), PredInstanceOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
		d.classes[t.O] = true
		return true
	})
	// Label triples feed the exact, word and primary indexes. Sort for
	// a deterministic index regardless of shard iteration order.
	type lbl struct {
		term  rdf.Term
		label string
	}
	var lbls []lbl
	snap.MatchFunc(rdf.T(rdf.NewVar("s"), PredLabel, rdf.NewVar("l")), func(t rdf.Triple) bool {
		if t.O.IsLiteral() {
			lbls = append(lbls, lbl{t.S, t.O.Value()})
		}
		return true
	})
	sort.Slice(lbls, func(i, j int) bool {
		if lbls[i].label != lbls[j].label {
			return lbls[i].label < lbls[j].label
		}
		return lbls[i].term.Compare(lbls[j].term) < 0
	})
	for _, l := range lbls {
		d.index(l.label, l.term)
		if prev, ok := d.primary[l.term]; !ok || l.label < prev {
			d.primary[l.term] = l.label
		}
	}
	// Aliases are lookup-only: they never set a primary label.
	for _, a := range o.aliases {
		d.index(a.label, a.term)
	}
	o.derived.Store(d)
	return d
}

func (d *derivedIndex) index(label string, term rdf.Term) {
	key := normalize(label)
	d.labels[key] = appendUnique(d.labels[key], term)
	// Index individual words separately (weaker matches), so "Buffalo"
	// finds "Buffalo, NY" without full-label matches being diluted.
	words := strings.Fields(key)
	if len(words) > 1 {
		for _, w := range words {
			if len(w) > 2 {
				d.words[w] = appendUnique(d.words[w], term)
			}
		}
	}
}

// AddEntity registers an entity with its label, description and class.
// The label lands in the store, so the lookup index derives it on the
// next epoch rebuild.
func (o *Ontology) AddEntity(local, label, description string, class rdf.Term) rdf.Term {
	e := E(local)
	o.Store.AddTriple(e, PredLabel, rdf.NewLiteral(label))
	if class.Value() != "" {
		o.Store.AddTriple(e, PredInstanceOf, class)
	}
	o.descriptions[e] = description
	return e
}

// AddClass registers a class term with a label and optional superclass.
func (o *Ontology) AddClass(local, label string, super rdf.Term) rdf.Term {
	c := E(local)
	o.Store.AddTriple(c, PredLabel, rdf.NewLiteral(label))
	if super.Value() != "" {
		o.Store.AddTriple(c, PredSubClassOf, super)
	}
	o.regClasses[c] = true
	o.regVersion.Add(1)
	return c
}

// AddRelation registers NL surface lemmas for a predicate.
func (o *Ontology) AddRelation(pred rdf.Term, lemmas ...string) {
	for _, l := range lemmas {
		o.relations[strings.ToLower(l)] = pred
	}
}

// Add registers an arbitrary fact triple.
func (o *Ontology) Add(s, p, oTerm rdf.Term) { o.Store.AddTriple(s, p, oTerm) }

// Alias adds an extra lookup label for an existing term.
func (o *Ontology) Alias(term rdf.Term, label string) {
	o.aliases = append(o.aliases, aliasEntry{label, term})
	o.regVersion.Add(1)
}

func appendUnique(ts []rdf.Term, t rdf.Term) []rdf.Term {
	for _, x := range ts {
		if x.Equal(t) {
			return ts
		}
	}
	return append(ts, t)
}

func normalize(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.ReplaceAll(s, ",", " ")
	return strings.Join(strings.Fields(s), " ")
}

// Description returns the disambiguation string for an entity.
func (o *Ontology) Description(t rdf.Term) string { return o.descriptions[t] }

// Label returns the primary label of a term, falling back to the IRI
// local name. Labels added by any means — registration or a store
// batch — answer from the current epoch's derived index.
func (o *Ontology) Label(t rdf.Term) string {
	if l, ok := o.idx().primary[t]; ok {
		return l
	}
	return t.Local()
}

// IsClass reports whether the term is a class in the current epoch.
func (o *Ontology) IsClass(t rdf.Term) bool { return o.idx().classes[t] }

// Lookup aligns an NL phrase with ontology terms, returning candidates
// ranked by match quality: exact normalized label match scores 1.0,
// full-phrase prefix matches 0.8, head-word matches 0.6. Deterministic
// order: score desc, then term order.
func (o *Ontology) Lookup(phrase string) []Candidate {
	key := normalize(phrase)
	if key == "" {
		return nil
	}
	d := o.idx()
	scored := map[rdf.Term]float64{}
	consider := func(ts []rdf.Term, score float64) {
		for _, t := range ts {
			if scored[t] < score {
				scored[t] = score
			}
		}
	}
	consider(d.labels[key], 1.0)
	// singular fallback: "places" -> "place"
	if strings.HasSuffix(key, "s") {
		consider(d.labels[strings.TrimSuffix(key, "s")], 0.9)
	}
	// word-index fallback: the phrase is one word of a longer label
	consider(d.words[key], 0.6)
	// word-by-word fallback: some word of the phrase is a known label
	for _, w := range strings.Fields(key) {
		if w == key {
			continue
		}
		consider(d.labels[w], 0.6)
		consider(d.words[w], 0.4)
	}
	out := make([]Candidate, 0, len(scored))
	for t, s := range scored {
		label := d.primary[t]
		if label == "" {
			label = t.Local()
		}
		out = append(out, Candidate{
			Term:        t,
			Label:       label,
			Description: o.descriptions[t],
			Score:       s,
			IsClass:     d.classes[t],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Term.Compare(out[j].Term) < 0
	})
	return out
}

// ResolveEntity resolves a phrase that exactly (after normalization)
// labels exactly one non-class term — the condition under which the
// phrase is an unambiguous, feedback-independent entity mention. It is
// the shape-canonicalization hook of the plan cache (qcache): ambiguous
// labels like "Buffalo" and class words like "restaurant" return false
// and stay literal in a question's shape key. Resolution runs against
// the current epoch's index, so a freshly inserted entity resolves on
// the next call.
func (o *Ontology) ResolveEntity(phrase string) (rdf.Term, bool) {
	d := o.idx()
	ts := d.labels[normalize(phrase)]
	if len(ts) != 1 || d.classes[ts[0]] {
		return rdf.Term{}, false
	}
	return ts[0], true
}

// LookupRelation aligns a relation lemma ("near", "in", "visit") with a
// predicate, if the ontology models it.
func (o *Ontology) LookupRelation(lemma string) (rdf.Term, bool) {
	p, ok := o.relations[strings.ToLower(lemma)]
	return p, ok
}

// Classes returns all classes of the current epoch, sorted.
func (o *Ontology) Classes() []rdf.Term {
	d := o.idx()
	out := make([]rdf.Term, 0, len(d.classes))
	for c := range d.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// InstancesOf returns the instances of a class, including instances of
// its subclasses (one transitive closure over subClassOf), within one
// pinned snapshot.
func (o *Ontology) InstancesOf(class rdf.Term) []rdf.Term {
	return o.InstancesOfAt(o.Snapshot(), class)
}

// InstancesOfAt is InstancesOf evaluated against a caller-pinned
// snapshot, for consumers (the crowd engine) that must keep several
// reads on one epoch.
func (o *Ontology) InstancesOfAt(snap *rdf.Snapshot, class rdf.Term) []rdf.Term {
	seen := map[rdf.Term]bool{}
	var out []rdf.Term
	var visit func(c rdf.Term)
	visited := map[rdf.Term]bool{}
	visit = func(c rdf.Term) {
		if visited[c] {
			return
		}
		visited[c] = true
		for _, inst := range snap.Subjects(PredInstanceOf, c) {
			if !seen[inst] {
				seen[inst] = true
				out = append(out, inst)
			}
		}
		for _, sub := range snap.Subjects(PredSubClassOf, c) {
			visit(sub)
		}
	}
	visit(class)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// MaterializeInference adds the subclass closure to the store: for every
// (s instanceOf C) and superclass S of C, (s instanceOf S) is added, so
// the plain BGP matcher answers "instanceOf Place" for parks and hotels.
// Call it once after the ontology data is loaded.
func (o *Ontology) MaterializeInference() {
	snap := o.Snapshot()
	// superclasses: direct subClassOf edges.
	super := map[rdf.Term][]rdf.Term{}
	snap.MatchFunc(rdf.T(rdf.NewVar("c"), PredSubClassOf, rdf.NewVar("s")), func(t rdf.Triple) bool {
		super[t.S] = append(super[t.S], t.O)
		return true
	})
	var allSupers func(c rdf.Term, seen map[rdf.Term]bool) []rdf.Term
	allSupers = func(c rdf.Term, seen map[rdf.Term]bool) []rdf.Term {
		var out []rdf.Term
		for _, s := range super[c] {
			if seen[s] {
				continue
			}
			seen[s] = true
			out = append(out, s)
			out = append(out, allSupers(s, seen)...)
		}
		return out
	}
	type inst struct{ s, c rdf.Term }
	var pairs []inst
	snap.MatchFunc(rdf.T(rdf.NewVar("s"), PredInstanceOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
		pairs = append(pairs, inst{t.S, t.O})
		return true
	})
	for _, p := range pairs {
		for _, s := range allSupers(p.c, map[rdf.Term]bool{}) {
			o.Store.AddTriple(p.s, PredInstanceOf, s)
		}
	}
}

// Merge combines several ontologies into one view (the demo uses
// LinkedGeoData and DBPedia together). Later ontologies win on
// description conflicts. Label/word/class indexes are not copied — they
// re-derive from the merged store's first epoch.
func Merge(name string, parts ...*Ontology) *Ontology {
	m := New(name)
	for _, p := range parts {
		for _, t := range p.Store.All() {
			m.Store.MustAdd(t)
		}
		for t, desc := range p.descriptions {
			m.descriptions[t] = desc
		}
		for c := range p.regClasses {
			m.regClasses[c] = true
		}
		m.aliases = append(m.aliases, p.aliases...)
		for k, v := range p.relations {
			m.relations[k] = v
		}
	}
	m.regVersion.Add(1)
	return m
}
