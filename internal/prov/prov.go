// Package prov is NL2CM's span-provenance IR: the shared vocabulary
// through which every pipeline layer records *which input tokens* a
// derived artifact (an IX, a SPARQL triple, an OASSIS-QL triple) came
// from. The NL parser assigns each token a stable ID (its index) and a
// byte span in the original request; downstream modules carry sets of
// those IDs, and the composer resolves them back to spans and source
// text. Exact token-set intersection — not string matching — is what
// drives IX-overlap deletion during query composition, and the final
// core.Result exposes the whole mapping (triple → spans → original
// text) to the UI and the /explain endpoint.
package prov

import (
	"sort"
	"strings"
)

// Span is a half-open byte range [Start, End) in the original request
// text.
type Span struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Empty reports whether the span covers no bytes.
func (s Span) Empty() bool { return s.End <= s.Start }

// Text returns the bytes the span covers, clamped to the source.
func (s Span) Text(source string) string {
	start, end := s.Start, s.End
	if start < 0 {
		start = 0
	}
	if end > len(source) {
		end = len(source)
	}
	if end <= start {
		return ""
	}
	return source[start:end]
}

// TokenSet is a set of stable token IDs, kept sorted and unique. The
// zero value is the empty set.
type TokenSet []int

// NewTokenSet builds a set from the given IDs, dropping duplicates and
// negatives (negative IDs mark "no source token", e.g. anonymous
// variables).
func NewTokenSet(ids ...int) TokenSet {
	var out TokenSet
	for _, id := range ids {
		if id >= 0 {
			out = out.Add(id)
		}
	}
	return out
}

// Add returns the set with id included (negatives are ignored).
func (s TokenSet) Add(id int) TokenSet {
	if id < 0 || s.Contains(id) {
		return s
	}
	out := append(append(TokenSet(nil), s...), id)
	sort.Ints(out)
	return out
}

// Contains reports membership.
func (s TokenSet) Contains(id int) bool {
	i := sort.SearchInts(s, id)
	return i < len(s) && s[i] == id
}

// Empty reports whether the set has no members.
func (s TokenSet) Empty() bool { return len(s) == 0 }

// Union returns the merged set.
func (s TokenSet) Union(o TokenSet) TokenSet {
	out := append(TokenSet(nil), s...)
	for _, id := range o {
		out = out.Add(id)
	}
	return out
}

// Intersect returns the members present in both sets.
func (s TokenSet) Intersect(o TokenSet) TokenSet {
	var out TokenSet
	for _, id := range s {
		if o.Contains(id) {
			out = append(out, id)
		}
	}
	return out
}

// Intersects reports whether the sets share a member.
func (s TokenSet) Intersects(o TokenSet) bool {
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			return true
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Record traces one emitted query triple back to its source. Triple is
// the rendered OASSIS-QL form ("$x instanceOf Place"); Clause and
// Subclause locate it in the final query (Subclause is -1 for WHERE
// triples). Spans are merged byte ranges in the original request and
// Text is their excerpt, gaps elided with "...".
type Record struct {
	Triple    string   `json:"triple"`
	Clause    string   `json:"clause"`
	Subclause int      `json:"subclause"`
	Tokens    TokenSet `json:"tokens"`
	Spans     []Span   `json:"spans"`
	Text      string   `json:"text"`
}

// TokenInfo is one token of the "uncovered tokens" report: a content
// word of the request that no emitted triple derives from.
type TokenInfo struct {
	ID   int    `json:"id"`
	Span Span   `json:"span"`
	Text string `json:"text"`
}

// MergeSpans sorts the spans and merges ranges separated only by
// whitespace in the source, so per-token spans collapse into phrase
// spans ("Forest" + "Hills" → "Forest Hills").
func MergeSpans(source string, spans []Span) []Span {
	var in []Span
	for _, s := range spans {
		if !s.Empty() {
			in = append(in, s)
		}
	}
	if len(in) == 0 {
		return nil
	}
	sort.Slice(in, func(i, j int) bool {
		if in[i].Start != in[j].Start {
			return in[i].Start < in[j].Start
		}
		return in[i].End < in[j].End
	})
	out := []Span{in[0]}
	for _, s := range in[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End || strings.TrimSpace(gap(source, last.End, s.Start)) == "" {
			if s.End > last.End {
				last.End = s.End
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// gap returns the source bytes between two offsets, clamped.
func gap(source string, from, to int) string {
	if from < 0 {
		from = 0
	}
	if to > len(source) {
		to = len(source)
	}
	if to <= from {
		return ""
	}
	return source[from:to]
}

// Excerpt renders merged spans as a source quotation, eliding gaps with
// "..." — the annotated printer's `# from: "reach ... from Forest
// Hills"` form.
func Excerpt(source string, spans []Span) string {
	merged := MergeSpans(source, spans)
	parts := make([]string, 0, len(merged))
	for _, s := range merged {
		if t := s.Text(source); t != "" {
			parts = append(parts, t)
		}
	}
	return strings.Join(parts, " ... ")
}
