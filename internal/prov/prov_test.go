package prov

import (
	"reflect"
	"testing"
)

func TestTokenSetOps(t *testing.T) {
	s := NewTokenSet(3, 1, 3, -2, 5)
	want := TokenSet{1, 3, 5}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("NewTokenSet = %v, want %v", s, want)
	}
	if !s.Contains(3) || s.Contains(2) || s.Contains(-2) {
		t.Errorf("Contains wrong on %v", s)
	}
	o := NewTokenSet(2, 3)
	if got := s.Intersect(o); !reflect.DeepEqual(got, TokenSet{3}) {
		t.Errorf("Intersect = %v, want [3]", got)
	}
	if !s.Intersects(o) {
		t.Error("Intersects(s, o) = false, want true")
	}
	if s.Intersects(NewTokenSet(0, 2, 4)) {
		t.Error("Intersects with disjoint set = true")
	}
	if got := s.Union(o); !reflect.DeepEqual(got, TokenSet{1, 2, 3, 5}) {
		t.Errorf("Union = %v", got)
	}
	if !TokenSet(nil).Empty() || s.Empty() {
		t.Error("Empty wrong")
	}
	// Add must not mutate the receiver's backing array visibly.
	base := NewTokenSet(1, 5)
	a := base.Add(3)
	b := base.Add(4)
	if !reflect.DeepEqual(a, TokenSet{1, 3, 5}) || !reflect.DeepEqual(b, TokenSet{1, 4, 5}) {
		t.Errorf("Add aliasing: a=%v b=%v", a, b)
	}
}

func TestMergeSpansAndExcerpt(t *testing.T) {
	src := "reach the falls from Forest Hills today"
	spans := []Span{
		{Start: 21, End: 27}, // Forest
		{Start: 0, End: 5},   // reach
		{Start: 28, End: 33}, // Hills
		{Start: 16, End: 20}, // from
	}
	merged := MergeSpans(src, spans)
	want := []Span{{Start: 0, End: 5}, {Start: 16, End: 33}}
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("MergeSpans = %v, want %v", merged, want)
	}
	if got, want := Excerpt(src, spans), "reach ... from Forest Hills"; got != want {
		t.Errorf("Excerpt = %q, want %q", got, want)
	}
	if got := Excerpt(src, nil); got != "" {
		t.Errorf("Excerpt(nil) = %q", got)
	}
}

func TestSpanText(t *testing.T) {
	if got := (Span{Start: -3, End: 100}).Text("abc"); got != "abc" {
		t.Errorf("clamped Text = %q", got)
	}
	if got := (Span{Start: 2, End: 1}).Text("abc"); got != "" {
		t.Errorf("inverted Text = %q", got)
	}
}
