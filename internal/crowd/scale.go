package crowd

import (
	"context"
	"fmt"

	"nl2cm/internal/core"
	"nl2cm/internal/crowdscale"
	"nl2cm/internal/oassisql"
)

// ScaleMetrics is the per-execution slice of the streaming executor's
// counters (crowdscale.Stats deltas).
type ScaleMetrics = crowdscale.Stats

// crowdSource adapts a Crowd to crowdscale.Source: answers delegate to
// MemberAnswer in member order, so sequential sampling over the adapter
// consumes exactly the member sequence Crowd.Support aggregates — the
// property the differential tests rely on.
type crowdSource struct{ c *Crowd }

func (s crowdSource) Size() int { return s.c.Size }

func (s crowdSource) Batch(key string, from int, out []float64) {
	for i := range out {
		out[i] = s.c.MemberAnswer(from+i, key)
	}
}

// NewScaleExecutor builds a streaming executor whose answers come from
// the crowd, for use as Engine.Scale. The crowd must not use a trimmed
// mean: sequential-sampling bounds hold for plain means only — an order
// statistic over the full population cannot be decided from a prefix.
func NewScaleExecutor(c *Crowd, cfg crowdscale.Config) (*crowdscale.Executor, error) {
	if c == nil {
		return nil, fmt.Errorf("crowd: nil crowd")
	}
	if c.TrimFraction != 0 {
		return nil, fmt.Errorf("crowd: scale executor cannot honor TrimFraction=%v (sequential bounds hold for plain means only)", c.TrimFraction)
	}
	return crowdscale.New(crowdSource{c: c}, cfg), nil
}

// evalScale computes each group's support estimate and significance
// through the streaming executor: the subclause's criterion is handed to
// the sequential sampler, which early-terminates every task whose
// decision its interval settles. Supports on early-decided tasks are
// running estimates; exhaustive results are matched decision-for-
// decision (see crowdscale.Rule).
func (e *Engine) evalScale(ctx context.Context, idx int, sc oassisql.Subclause, groups []*taskGroup) error {
	keys := make([]string, len(groups))
	for i, g := range groups {
		keys[i] = g.task.Key
	}
	var decs []crowdscale.Decision
	var err error
	switch {
	case sc.Threshold != nil:
		decs, err = e.Scale.DecideThreshold(ctx, keys, *sc.Threshold, e.SampleSize)
	case sc.TopK != nil:
		decs, err = e.Scale.DecideTopK(ctx, keys, sc.TopK.K, sc.TopK.Desc, e.SampleSize)
	default:
		return fmt.Errorf("crowd: subclause %d has no significance criterion", idx+1)
	}
	if err != nil {
		return &core.StageError{Stage: core.StageCrowd, Err: err}
	}
	for i, g := range groups {
		g.task.Support = decs[i].Support
		g.task.Significant = decs[i].Significant
	}
	return nil
}

// scaleSupports fills in exact supports through the executor's queue
// (full fixed-size sampling, batched across the worker pool) — the
// fixed-sample baseline the sequential path is measured against.
func (e *Engine) scaleSupports(ctx context.Context, groups []*taskGroup) error {
	keys := make([]string, len(groups))
	for i, g := range groups {
		keys[i] = g.task.Key
	}
	sup, err := e.Scale.Supports(ctx, keys, e.SampleSize)
	if err != nil {
		return &core.StageError{Stage: core.StageCrowd, Err: err}
	}
	for i, g := range groups {
		g.task.Support = sup[i]
	}
	return nil
}
