package crowd

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nl2cm/internal/core"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// runningExampleQuery returns the rebased Figure 1 query (two
// subclauses) for engine-level tests.
func runningExampleQuery(t *testing.T) *oassisql.Query {
	t.Helper()
	q := oassisql.MustParse(`SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1`)
	rebase(q)
	return q
}

// Regression for a binding-loss bug: distinct bindings that ground to
// the same fact-set shared one crowd task, but only the first binding
// per fact key survived the subclause — the others were silently
// dropped from the result.
func TestSharedFactKeyKeepsAllBindings(t *testing.T) {
	onto := ontology.New("test")
	place := onto.AddClass("Place", "place", rdf.Term{})
	park := onto.AddEntity("Park1", "Park 1", "", place)
	nearby := rdf.NewIRI("nearby")
	spotA := onto.AddEntity("Spot_A", "Spot A", "", rdf.Term{})
	spotB := onto.AddEntity("Spot_B", "Spot B", "", rdf.Term{})
	onto.Add(park, nearby, spotA)
	onto.Add(park, nearby, spotB)

	thr := 0.0
	q := &oassisql.Query{
		Select: oassisql.SelectClause{All: true},
		Where: oassisql.Pattern{Triples: []rdf.Triple{
			rdf.T(rdf.NewVar("x"), ontology.PredInstanceOf, place),
			rdf.T(rdf.NewVar("x"), nearby, rdf.NewVar("p")),
		}},
		Satisfying: []oassisql.Subclause{{
			// The pattern uses only $x, so both ($x, $p) bindings
			// ground to the same fact-set.
			Pattern: oassisql.Pattern{Triples: []rdf.Triple{
				rdf.T(rdf.NewVar("x"), rdf.NewIRI("hasLabel"), rdf.NewLiteral("interesting")),
			}},
			Threshold: &thr,
		}},
	}
	eng := NewEngine(onto, NewCrowd(10, 1))
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.WhereBindings != 2 {
		t.Fatalf("WHERE bindings = %d, want 2", res.WhereBindings)
	}
	// One crowd task (the crowd is asked once per distinct fact-set)…
	if res.TasksIssued != 1 {
		t.Errorf("tasks issued = %d, want 1", res.TasksIssued)
	}
	// …but both bindings survive.
	got := map[string]bool{}
	for _, b := range res.Bindings {
		if p, ok := b["p"]; ok {
			got[p.Local()] = true
		}
	}
	if !got["Spot_A"] || !got["Spot_B"] {
		t.Errorf("surviving bindings = %v, want both Spot_A and Spot_B", res.Bindings)
	}
}

// Regression for the open-variable mis-detection bug: boundness was
// decided by inspecting only bindings[0], so with heterogeneous
// upstream bindings (e.g. after OPTIONAL/UNION) a variable bound in
// the first row but open in another was never instantiated.
func TestExpandOpenVarsHeterogeneousBindings(t *testing.T) {
	eng := demoEngine()
	sc := oassisql.Subclause{Pattern: oassisql.Pattern{Triples: []rdf.Triple{
		rdf.T(rdf.NewVar("_anon1"), rdf.NewIRI("visit"), rdf.NewVar("x")),
	}}}
	bindings := []sparql.Binding{
		// bound row (the extra $y marks it apart from expansion output)
		{"x": ontology.E("Delaware_Park"), "y": ontology.E("Fall")},
		{}, // open row
	}
	out, err := eng.expandOpenVars(sc, bindings, eng.Onto.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) <= 2 {
		t.Fatalf("open row not expanded: got %d bindings", len(out))
	}
	for i, b := range out {
		if _, ok := b["x"]; !ok {
			t.Fatalf("binding %d leaves $x unbound: %v", i, b)
		}
	}
	// The bound row passes through unchanged, exactly once.
	n := 0
	for _, b := range out {
		if len(b) == 2 && b["x"].Equal(ontology.E("Delaware_Park")) {
			n++
		}
	}
	if n != 1 {
		t.Errorf("bound row appears %d times, want 1", n)
	}
}

func TestExecutePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := demoEngine().Execute(ctx, runningExampleQuery(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var se *core.StageError
	if !errors.As(err, &se) || se.Stage != core.StageCrowd {
		t.Fatalf("err = %v, want StageError with stage %q", err, core.StageCrowd)
	}
}

// Cancellation mid-subclause: cancelling when the first subclause
// starts aborts before its crowd tasks are evaluated.
func TestExecuteCancelledMidSubclause(t *testing.T) {
	eng := demoEngine()
	eng.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	eng.Observer = &cancelObserver{cancel: cancel, onStart: "SATISFYING 1"}
	_, err := eng.Execute(ctx, runningExampleQuery(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Cancellation between subclauses: cancelling when the first subclause
// ends prevents the second from running.
func TestExecuteCancelledBetweenSubclauses(t *testing.T) {
	eng := demoEngine()
	ctx, cancel := context.WithCancel(context.Background())
	obs := &cancelObserver{cancel: cancel, onEnd: "SATISFYING 1"}
	eng.Observer = obs
	_, err := eng.Execute(ctx, runningExampleQuery(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if obs.started["SATISFYING 2"] {
		t.Error("second subclause ran despite cancellation")
	}
}

// cancelObserver cancels a context when a named stage starts or ends,
// and records which stages started.
type cancelObserver struct {
	cancel  context.CancelFunc
	onStart string
	onEnd   string
	started map[string]bool
}

func (o *cancelObserver) StageStart(stage string) {
	if o.started == nil {
		o.started = map[string]bool{}
	}
	o.started[stage] = true
	if stage == o.onStart {
		o.cancel()
	}
}

func (o *cancelObserver) StageEnd(stage string, d time.Duration, err error) {
	if stage == o.onEnd {
		o.cancel()
	}
}

// The parallel worker pool must not change results: a Workers=1 engine
// and a Workers=8 engine agree task by task.
func TestExecuteParallelMatchesSequential(t *testing.T) {
	q := runningExampleQuery(t)
	seq := demoEngine()
	seq.Workers = 1
	par := demoEngine()
	par.Workers = 8
	rs, err := seq.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Subclauses) != len(rp.Subclauses) {
		t.Fatalf("subclause counts differ: %d vs %d", len(rs.Subclauses), len(rp.Subclauses))
	}
	for i := range rs.Subclauses {
		a, b := rs.Subclauses[i].Tasks, rp.Subclauses[i].Tasks
		if len(a) != len(b) {
			t.Fatalf("subclause %d task counts differ: %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j].Key != b[j].Key || a[j].Support != b[j].Support || a[j].Significant != b[j].Significant {
				t.Fatalf("subclause %d task %d differs: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
	if len(rs.Bindings) != len(rp.Bindings) {
		t.Fatalf("binding counts differ: %d vs %d", len(rs.Bindings), len(rp.Bindings))
	}
}

// Concurrent executions on one shared engine (run under -race in CI).
func TestExecuteConcurrentStress(t *testing.T) {
	eng := demoEngine()
	q := runningExampleQuery(t)
	want, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8*5)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := eng.Execute(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				if res.TasksIssued != want.TasksIssued || len(res.Bindings) != len(want.Bindings) {
					errs <- errors.New("concurrent execution diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSupportCache(t *testing.T) {
	eng := demoEngine()
	q := runningExampleQuery(t)
	r1, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CacheMisses != r1.TasksIssued || r1.CacheHits != 0 {
		t.Errorf("first run: hits=%d misses=%d tasks=%d, want all misses", r1.CacheHits, r1.CacheMisses, r1.TasksIssued)
	}
	r2, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.CacheHits != r2.TasksIssued || r2.CacheMisses != 0 {
		t.Errorf("second run: hits=%d misses=%d tasks=%d, want all hits", r2.CacheHits, r2.CacheMisses, r2.TasksIssued)
	}
	if r1.Subclauses[0].Tasks[0].Support != r2.Subclauses[0].Tasks[0].Support {
		t.Error("cached support differs from computed support")
	}
	hits, misses := eng.CacheStats()
	if int(hits) != r2.CacheHits || int(misses) != r1.CacheMisses {
		t.Errorf("CacheStats = (%d, %d), want (%d, %d)", hits, misses, r2.CacheHits, r1.CacheMisses)
	}

	// The cache keys on the effective sample size: changing it misses.
	eng.SampleSize = 7
	r3, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if r3.CacheMisses != r3.TasksIssued {
		t.Errorf("sample-size change: misses=%d tasks=%d, want all misses", r3.CacheMisses, r3.TasksIssued)
	}

	// ResetCache drops memoized supports but never rewinds the
	// engine-lifetime counters (the monotonic-stats contract).
	hBefore, mBefore := eng.CacheStats()
	eng.ResetCache()
	if h, m := eng.CacheStats(); h != hBefore || m != mBefore {
		t.Errorf("ResetCache rewound counters: (%d, %d) -> (%d, %d)", hBefore, mBefore, h, m)
	}
	r4, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if r4.CacheMisses != r4.TasksIssued {
		t.Errorf("post-reset run: misses=%d tasks=%d, want all misses (cache dropped)", r4.CacheMisses, r4.TasksIssued)
	}
	if _, m := eng.CacheStats(); m != mBefore+uint64(r4.CacheMisses) {
		t.Errorf("post-reset misses %d, want %d", m, mBefore+uint64(r4.CacheMisses))
	}
}

// The monotonic-counter contract must hold under concurrent Execute and
// ResetCache (run under -race in the crowd-stress gate).
func TestResetCacheRaceSafe(t *testing.T) {
	eng := demoEngine()
	q := runningExampleQuery(t)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				eng.ResetCache()
				eng.Stats()
			}
		}
	}()
	var lastExecs uint64
	for i := 0; i < 10; i++ {
		if _, err := eng.Execute(context.Background(), q); err != nil {
			t.Fatal(err)
		}
		st := eng.Stats()
		if st.Executions <= lastExecs {
			t.Fatalf("Executions not monotonic: %d after %d", st.Executions, lastExecs)
		}
		lastExecs = st.Executions
	}
	close(stop)
	wg.Wait()
	st := eng.Stats()
	if st.Executions != 10 {
		t.Fatalf("Executions = %d, want 10", st.Executions)
	}
	if st.TasksIssued == 0 {
		t.Fatal("TasksIssued not recorded")
	}
}

// Observer callbacks: one Crowd Execution stage wrapping one
// "SATISFYING n" stage per subclause, with durations recorded on the
// result as well.
func TestExecuteObserverAndDurations(t *testing.T) {
	eng := demoEngine()
	var mu sync.Mutex
	var stages []string
	eng.Observer = core.ObserverFunc(func(stage string, d time.Duration, err error) {
		mu.Lock()
		stages = append(stages, stage)
		mu.Unlock()
	})
	res, err := eng.Execute(context.Background(), runningExampleQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SATISFYING 1", "SATISFYING 2", core.StageCrowd}
	if len(stages) != len(want) {
		t.Fatalf("observer stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("observer stages = %v, want %v", stages, want)
		}
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
	for _, sc := range res.Subclauses {
		if sc.Duration <= 0 {
			t.Errorf("subclause %d duration not recorded", sc.Index)
		}
	}
}

// Table-driven coverage of both significance criteria, including the
// threshold boundary and top-k ties (supports arrive sorted descending,
// as evalSubclause produces them).
func TestApplySignificance(t *testing.T) {
	thr := func(v float64) oassisql.Subclause { return oassisql.Subclause{Threshold: &v} }
	topk := func(k int, desc bool) oassisql.Subclause {
		return oassisql.Subclause{TopK: &oassisql.TopK{K: k, Desc: desc}}
	}
	cases := []struct {
		name     string
		sc       oassisql.Subclause
		supports []float64
		want     []bool
	}{
		{"threshold-boundary", thr(0.5), []float64{0.51, 0.5, 0.4999}, []bool{true, true, false}},
		{"threshold-zero-accepts-zero", thr(0), []float64{0.2, 0}, []bool{true, true}},
		{"threshold-none-pass", thr(0.9), []float64{0.5, 0.1}, []bool{false, false}},
		{"topk-desc", topk(2, true), []float64{0.9, 0.5, 0.1}, []bool{true, true, false}},
		{"topk-desc-tie-at-boundary", topk(2, true), []float64{0.9, 0.5, 0.5, 0.1}, []bool{true, true, false, false}},
		{"topk-desc-k-exceeds-len", topk(5, true), []float64{0.9, 0.1}, []bool{true, true}},
		{"topk-asc", topk(2, false), []float64{0.9, 0.5, 0.1, 0.05}, []bool{false, false, true, true}},
		{"topk-asc-tie-at-boundary", topk(1, false), []float64{0.9, 0.1, 0.1}, []bool{false, true, false}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := applySignificance(0, c.sc, c.supports)
			if err != nil {
				t.Fatal(err)
			}
			for i := range c.want {
				if got[i] != c.want[i] {
					t.Fatalf("significance = %v, want %v", got, c.want)
				}
			}
		})
	}
	if _, err := applySignificance(0, oassisql.Subclause{}, []float64{0.1}); err == nil {
		t.Error("missing criterion accepted")
	}
}
