package crowd

import (
	"fmt"
	"sort"
	"strings"

	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// Engine is the OASSIS query engine substitute: it evaluates OASSIS-QL
// queries against an ontology (WHERE) and a simulated crowd (SATISFYING).
type Engine struct {
	Onto  *ontology.Ontology
	Crowd *Crowd
	// SampleSize is the number of crowd members asked per pattern; 0
	// means the whole population.
	SampleSize int
	// OpenVarLimit caps instantiations of variables that the WHERE
	// clause leaves unbound (open crowd mining); 0 means 50.
	OpenVarLimit int
}

// NewEngine builds an engine over the ontology with the given crowd.
func NewEngine(onto *ontology.Ontology, c *Crowd) *Engine {
	return &Engine{Onto: onto, Crowd: c}
}

// Task is one crowd task: a ground data pattern posed to crowd members,
// with its aggregated support.
type Task struct {
	// Binding is the variable assignment that grounded the pattern.
	Binding sparql.Binding
	// Triples is the ground fact-set.
	Triples []rdf.Triple
	// Key is the canonical fact-set key.
	Key string
	// Question is the natural-language form posed to the crowd.
	Question string
	// Support is the aggregated answer.
	Support float64
	// Significant reports whether the pattern passed its subclause's
	// criterion.
	Significant bool
}

// SubclauseResult is the evaluation of one SATISFYING subclause.
type SubclauseResult struct {
	// Index is the subclause position (0-based).
	Index int
	// Tasks are all issued crowd tasks, sorted by descending support.
	Tasks []Task
}

// Significant returns the tasks that passed the criterion.
func (r *SubclauseResult) Significant() []Task {
	var out []Task
	for _, t := range r.Tasks {
		if t.Significant {
			out = append(out, t)
		}
	}
	return out
}

// Result is a full query evaluation.
type Result struct {
	// Bindings are the significant variable bindings: assignments that
	// pass every subclause, projected per the SELECT clause.
	Bindings []sparql.Binding
	// Subclauses are the per-subclause evaluations.
	Subclauses []SubclauseResult
	// WhereBindings counts ontology matches before crowd filtering.
	WhereBindings int
	// TasksIssued counts the crowd tasks generated.
	TasksIssued int
}

// Execute evaluates the query.
func (e *Engine) Execute(q *oassisql.Query) (*Result, error) {
	if q == nil {
		return nil, fmt.Errorf("crowd: nil query")
	}
	// 1. WHERE against the ontology.
	whereQ := &sparql.Query{Where: q.Where.Triples, Filters: q.Where.Filters, Limit: -1}
	bindings, err := sparql.Eval(whereQ, e.Onto.Store, nil)
	if err != nil {
		return nil, fmt.Errorf("crowd: evaluating WHERE: %w", err)
	}
	res := &Result{WhereBindings: len(bindings)}
	if len(q.Satisfying) == 0 {
		res.Bindings = bindings
		return res, nil
	}

	// 2. Each subclause filters the bindings by crowd support.
	surviving := bindings
	for i, sc := range q.Satisfying {
		scRes, kept, err := e.evalSubclause(i, sc, surviving)
		if err != nil {
			return nil, err
		}
		res.Subclauses = append(res.Subclauses, *scRes)
		res.TasksIssued += len(scRes.Tasks)
		surviving = kept
	}

	// 3. Projection.
	res.Bindings = project(surviving, q.Select)
	return res, nil
}

// evalSubclause grounds the subclause pattern under each binding, asks
// the crowd, applies the significance criterion and returns the
// surviving bindings.
func (e *Engine) evalSubclause(idx int, sc oassisql.Subclause, bindings []sparql.Binding) (*SubclauseResult, []sparql.Binding, error) {
	expanded, err := e.expandOpenVars(sc, bindings)
	if err != nil {
		return nil, nil, err
	}
	scRes := &SubclauseResult{Index: idx}
	type entry struct {
		task    Task
		binding sparql.Binding
	}
	var entries []entry
	seen := map[string]bool{}
	for _, b := range expanded {
		ground := groundPattern(sc.Pattern.Triples, b)
		key := FactKey(ground)
		if seen[key] {
			continue
		}
		seen[key] = true
		t := Task{
			Binding:  b,
			Triples:  ground,
			Key:      key,
			Question: e.Verbalize(ground),
			Support:  e.Crowd.Support(key, e.SampleSize),
		}
		entries = append(entries, entry{task: t, binding: b})
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].task.Support > entries[j].task.Support })

	// Significance.
	switch {
	case sc.Threshold != nil:
		for i := range entries {
			entries[i].task.Significant = entries[i].task.Support >= *sc.Threshold
		}
	case sc.TopK != nil:
		order := make([]int, len(entries))
		for i := range order {
			order[i] = i
		}
		if !sc.TopK.Desc {
			// ascending: lowest-support first
			sort.SliceStable(order, func(a, b int) bool {
				return entries[order[a]].task.Support < entries[order[b]].task.Support
			})
		}
		for rank, i := range order {
			if rank < sc.TopK.K {
				entries[i].task.Significant = true
			}
		}
	default:
		return nil, nil, fmt.Errorf("crowd: subclause %d has no significance criterion", idx+1)
	}

	var kept []sparql.Binding
	for _, en := range entries {
		scRes.Tasks = append(scRes.Tasks, en.task)
		if en.task.Significant {
			kept = append(kept, en.binding)
		}
	}
	return scRes, kept, nil
}

// verbDomains approximates the semantic domain of the objects the crowd
// would propose for an open variable of a habit verb: OASSIS lets crowd
// members suggest terms; the simulation draws suggestions from the class
// a competent member would pick from.
var verbDomains = map[string]string{
	"eat": "Food", "cook": "Dish", "bake": "Dish", "drink": "Beverage",
	"order": "Dish", "serve": "Dish", "store": "Food",
	"visit": "Place", "go": "Place", "see": "Place", "stay": "Hotel",
	"explore": "Place", "hike": "Place", "walk": "Place",
	"buy": "Product", "shop": "Product", "recommend": "Place",
	"watch": "Show", "ride": "Ride",
}

// expandOpenVars instantiates subclause variables that the incoming
// bindings leave unbound (open crowd mining: "which places do you
// visit?") over the ontology's entities — restricted to the domain of
// the pattern's habit verb when one is known — capped at OpenVarLimit.
func (e *Engine) expandOpenVars(sc oassisql.Subclause, bindings []sparql.Binding) ([]sparql.Binding, error) {
	open := map[string]bool{}
	for _, v := range sc.Pattern.Vars() {
		open[v] = true
	}
	if len(bindings) > 0 {
		for v := range bindings[0] {
			delete(open, v)
		}
	}
	if len(open) == 0 {
		return bindings, nil
	}
	limit := e.OpenVarLimit
	if limit <= 0 {
		limit = 50
	}
	// Candidate entities: the verb's domain class when known, otherwise
	// everything with an instanceOf fact.
	var entities []rdf.Term
	if class, ok := e.patternDomain(sc); ok {
		entities = e.Onto.InstancesOf(class)
	}
	if len(entities) == 0 {
		seen := map[rdf.Term]bool{}
		e.Onto.Store.MatchFunc(rdf.T(rdf.NewVar("s"), ontology.PredInstanceOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
			if !seen[t.S] && !e.Onto.IsClass(t.S) {
				seen[t.S] = true
				entities = append(entities, t.S)
			}
			return true
		})
		sort.Slice(entities, func(i, j int) bool { return entities[i].Compare(entities[j]) < 0 })
	}
	if len(entities) > limit {
		entities = entities[:limit]
	}
	vars := make([]string, 0, len(open))
	for v := range open {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	out := bindings
	if len(out) == 0 {
		out = []sparql.Binding{{}}
	}
	for _, v := range vars {
		var next []sparql.Binding
		for _, b := range out {
			for _, ent := range entities {
				nb := b.Clone()
				nb[v] = ent
				next = append(next, nb)
			}
		}
		out = next
		if len(out) > limit*limit {
			return nil, fmt.Errorf("crowd: open-variable expansion too large (%d)", len(out))
		}
	}
	return out, nil
}

// patternDomain finds the domain class of a subclause's habit verb.
func (e *Engine) patternDomain(sc oassisql.Subclause) (rdf.Term, bool) {
	for _, t := range sc.Pattern.Triples {
		if class, ok := verbDomains[t.P.Local()]; ok {
			return ontology.E(class), true
		}
	}
	return rdf.Term{}, false
}

// groundPattern substitutes a binding into the pattern. Anonymous
// variables remain (they render as [] and aggregate over participants).
func groundPattern(pattern []rdf.Triple, b sparql.Binding) []rdf.Triple {
	sub := func(t rdf.Term) rdf.Term {
		if t.IsVar() && !oassisql.IsAnonVar(t.Value()) {
			if bt, ok := b[t.Value()]; ok {
				return bt
			}
		}
		return t
	}
	out := make([]rdf.Triple, len(pattern))
	for i, t := range pattern {
		out[i] = rdf.T(sub(t.S), sub(t.P), sub(t.O))
	}
	return out
}

// project applies the SELECT clause to the surviving bindings,
// deduplicating rows.
func project(bindings []sparql.Binding, sel oassisql.SelectClause) []sparql.Binding {
	var out []sparql.Binding
	seen := map[string]bool{}
	for _, b := range bindings {
		nb := sparql.Binding{}
		if sel.All {
			for k, v := range b {
				nb[k] = v
			}
		} else {
			for _, v := range sel.Vars {
				if t, ok := b[v]; ok {
					nb[v] = t
				}
			}
		}
		key := bindingKey(nb)
		if !seen[key] {
			seen[key] = true
			out = append(out, nb)
		}
	}
	return out
}

func bindingKey(b sparql.Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k + "=" + b[k].String() + ";")
	}
	return sb.String()
}

// Verbalize renders a ground fact-set as the natural-language question
// posed to crowd members, using ontology labels: habit patterns become
// frequency questions, label patterns become agreement questions.
func (e *Engine) Verbalize(ground []rdf.Triple) string {
	label := func(t rdf.Term) string {
		if t.IsLiteral() {
			return t.Value()
		}
		if t.IsVar() {
			// Anonymous subjects are the asked member ("you"); any
			// variable in object position reads as "something".
			return "something"
		}
		return e.Onto.Label(t)
	}
	// Label (opinion) pattern: {X hasLabel "adj"} (+ extra triples).
	var opinion *rdf.Triple
	var rest []rdf.Triple
	for i := range ground {
		if ground[i].P.Local() == "hasLabel" {
			opinion = &ground[i]
		} else {
			rest = append(rest, ground[i])
		}
	}
	if opinion != nil {
		q := fmt.Sprintf("Do you agree that %s is %s", label(opinion.S), label(opinion.O))
		for _, t := range rest {
			q += fmt.Sprintf(" %s %s", t.P.Local(), label(t.O))
		}
		return q + "?"
	}
	// Habit pattern: {[] verb X} (+ modifiers {[] prep Y}).
	var main *rdf.Triple
	var mods []rdf.Triple
	for i := range ground {
		p := ground[i].P.Local()
		if isPrepLike(p) {
			mods = append(mods, ground[i])
		} else if main == nil {
			main = &ground[i]
		} else {
			mods = append(mods, ground[i])
		}
	}
	if main == nil {
		return "How often does this hold: " + FactKey(ground) + "?"
	}
	q := fmt.Sprintf("How often do you %s %s", main.P.Local(), label(main.O))
	for _, m := range mods {
		q += fmt.Sprintf(" %s %s", m.P.Local(), label(m.O))
	}
	return q + "?"
}

func isPrepLike(p string) bool {
	switch p {
	case "in", "at", "on", "with", "for", "during", "near", "to", "from", "by":
		return true
	}
	return false
}
