package crowd

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nl2cm/internal/core"
	"nl2cm/internal/crowdscale"
	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/rdf"
	"nl2cm/internal/sparql"
)

// Engine is the OASSIS query engine substitute: it evaluates OASSIS-QL
// queries against an ontology (WHERE) and a simulated crowd (SATISFYING).
//
// Execute is safe for concurrent use once the engine is configured;
// reconfiguration (Crowd, SampleSize, Truth, …) must happen before
// serving traffic, and must be followed by ResetCache, since memoized
// supports are keyed only on (fact key, sample size).
type Engine struct {
	Onto  *ontology.Ontology
	Crowd *Crowd
	// SampleSize is the number of crowd members asked per pattern; 0
	// means the whole population.
	SampleSize int
	// OpenVarLimit caps instantiations of variables that the WHERE
	// clause leaves unbound (open crowd mining); 0 means 50.
	OpenVarLimit int
	// Workers caps how many crowd tasks of one subclause are evaluated
	// concurrently; 0 means runtime.GOMAXPROCS(0), 1 restores fully
	// sequential evaluation. Task and binding order is deterministic
	// either way.
	Workers int
	// Observer, when non-nil, receives core.StageCrowd start/end
	// callbacks around the whole execution and one "SATISFYING n" stage
	// per subclause. An Observer shared across concurrent executions
	// must be safe for concurrent use.
	Observer core.Observer
	// Scale, when non-nil, routes crowd tasks through the streaming
	// crowdscale pipeline instead of the synchronous fan-out: answers
	// stream in batches over a bounded queue and each task stops as soon
	// as sequential sampling decides its significance. Build one with
	// NewScaleExecutor (answers from the Crowd) or crowdscale.New over
	// any Source (e.g. a million-member crowdscale.Population). The
	// engine does not own the executor: callers Close it.
	Scale *crowdscale.Executor
	// ScaleExhaustive, with Scale set, disables early termination: every
	// task is fully sampled through the queue (the fixed-sample baseline
	// for differential tests and benchmarks).
	ScaleExhaustive bool

	// The support cache memoizes Crowd.Support per (fact key, effective
	// sample size): repeated keys across subclauses and requests would
	// otherwise pay the full O(population) aggregation each time. The
	// scale path bypasses it — the executor keeps its own resumable
	// sampling states.
	cacheMu sync.Mutex
	cache   map[supportKey]float64

	// Engine-lifetime counters: monotonic for the life of the process
	// (ResetCache never rewinds them — see its contract).
	hits   atomic.Uint64
	misses atomic.Uint64
	execs  atomic.Uint64
	tasks  atomic.Uint64
}

// supportKey keys one memoized support value.
type supportKey struct {
	key    string
	sample int
}

// NewEngine builds an engine over the ontology with the given crowd.
func NewEngine(onto *ontology.Ontology, c *Crowd) *Engine {
	return &Engine{Onto: onto, Crowd: c}
}

// CacheStats returns the engine-lifetime support-cache hit and miss
// counts. Counters are monotonic: they accumulate across every
// execution since construction and survive ResetCache.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// EngineStats is a snapshot of the engine-lifetime counters, shaped for
// the daemon's /api/stats endpoint. All counts are monotonic per
// process (ResetCache drops cached state, never counters), so deltas
// between successive snapshots are meaningful.
type EngineStats struct {
	// Executions counts Execute calls that reached evaluation.
	Executions uint64 `json:"executions"`
	// TasksIssued counts crowd tasks generated across all executions.
	TasksIssued uint64 `json:"tasks_issued"`
	// SupportCacheHits / SupportCacheMisses count support-cache outcomes
	// on the synchronous path (the scale path keeps its own states).
	SupportCacheHits   uint64 `json:"support_cache_hits"`
	SupportCacheMisses uint64 `json:"support_cache_misses"`
	// CrowdSize and SampleSize describe the configured crowd.
	CrowdSize  int `json:"crowd_size"`
	SampleSize int `json:"sample_size,omitempty"`
	// Scale carries the streaming executor's counters when the engine
	// runs with one (queue depth, early-termination savings, …).
	Scale *crowdscale.Stats `json:"scale,omitempty"`
}

// Stats snapshots the engine-lifetime counters. Safe for concurrent use
// with Execute and ResetCache.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Executions:         e.execs.Load(),
		TasksIssued:        e.tasks.Load(),
		SupportCacheHits:   e.hits.Load(),
		SupportCacheMisses: e.misses.Load(),
		SampleSize:         e.SampleSize,
	}
	if e.Crowd != nil {
		st.CrowdSize = e.Crowd.Size
	}
	if e.Scale != nil {
		s := e.Scale.Stats()
		st.Scale = &s
	}
	return st
}

// ResetCache drops all memoized supports — and, when a scale executor
// is attached, its resumable sampling states. Call it after changing
// the crowd, its Truth, or SampleSize.
//
// Contract: counters (CacheStats, Stats) are engine-lifetime and
// monotonic; ResetCache never rewinds them, so stats readers observe
// monotone values across resets. Safe to call concurrently with
// Execute — in-flight executions may still record hits against the old
// cache they already read.
func (e *Engine) ResetCache() {
	e.cacheMu.Lock()
	e.cache = nil
	e.cacheMu.Unlock()
	if e.Scale != nil {
		e.Scale.Reset()
	}
}

// Task is one crowd task: a ground data pattern posed to crowd members,
// with its aggregated support.
type Task struct {
	// Binding is the first variable assignment that grounded the
	// pattern; distinct bindings grounding to the same fact-set share
	// one task (and all survive when it is significant).
	Binding sparql.Binding
	// Triples is the ground fact-set.
	Triples []rdf.Triple
	// Key is the canonical fact-set key.
	Key string
	// Question is the natural-language form posed to the crowd.
	Question string
	// Support is the aggregated answer.
	Support float64
	// Significant reports whether the pattern passed its subclause's
	// criterion.
	Significant bool
}

// SubclauseResult is the evaluation of one SATISFYING subclause.
type SubclauseResult struct {
	// Index is the subclause position (0-based).
	Index int
	// Tasks are all issued crowd tasks, sorted by descending support.
	Tasks []Task
	// Duration is the subclause's wall-clock evaluation time.
	Duration time.Duration
}

// Significant returns the tasks that passed the criterion.
func (r *SubclauseResult) Significant() []Task {
	var out []Task
	for _, t := range r.Tasks {
		if t.Significant {
			out = append(out, t)
		}
	}
	return out
}

// Result is a full query evaluation.
type Result struct {
	// Bindings are the significant variable bindings: assignments that
	// pass every subclause, projected per the SELECT clause.
	Bindings []sparql.Binding
	// Subclauses are the per-subclause evaluations.
	Subclauses []SubclauseResult
	// WhereBindings counts ontology matches before crowd filtering.
	WhereBindings int
	// TasksIssued counts the crowd tasks generated.
	TasksIssued int
	// CacheHits and CacheMisses count support-cache outcomes during
	// this execution (on the synchronous path, TasksIssued ==
	// CacheHits + CacheMisses; the scale path bypasses the cache).
	CacheHits   int
	CacheMisses int
	// Scale, when the engine ran with a streaming executor, holds the
	// executor counter deltas attributable to this execution: member
	// answers asked, answers early termination saved, batches, queue
	// high water. Approximate when concurrent executions share the
	// executor.
	Scale *ScaleMetrics
	// Elapsed is the execution's wall-clock time.
	Elapsed time.Duration
}

// execCounters collects per-execution cache metrics; workers increment
// them concurrently.
type execCounters struct {
	hits   atomic.Uint64
	misses atomic.Uint64
}

// Execute evaluates the query. The context bounds the whole execution:
// cancellation or deadline expiry aborts between subclauses and between
// crowd-task batches, returning a *core.StageError (stage
// core.StageCrowd) that wraps ctx.Err().
func (e *Engine) Execute(ctx context.Context, q *oassisql.Query) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if q == nil {
		return nil, fmt.Errorf("crowd: nil query")
	}
	start := time.Now()
	e.execs.Add(1)
	var scaleBefore crowdscale.Stats
	if e.Scale != nil {
		scaleBefore = e.Scale.Stats()
	}
	if e.Observer != nil {
		e.Observer.StageStart(core.StageCrowd)
	}
	res, err := e.execute(ctx, q)
	if e.Observer != nil {
		e.Observer.StageEnd(core.StageCrowd, time.Since(start), err)
	}
	if res != nil {
		if e.Scale != nil {
			d := e.Scale.Stats().Delta(scaleBefore)
			res.Scale = &d
		}
		res.Elapsed = time.Since(start)
	}
	return res, err
}

func (e *Engine) execute(ctx context.Context, q *oassisql.Query) (*Result, error) {
	// Pin one store snapshot for the whole execution: the WHERE
	// evaluation and the open-variable expansion below must agree on
	// one epoch even while the daemon applies write batches.
	snap := e.Onto.Snapshot()
	// 1. WHERE against the ontology.
	whereQ := &sparql.Query{Where: q.Where.Triples, Filters: q.Where.Filters, Limit: -1}
	bindings, err := sparql.Eval(whereQ, snap, nil)
	if err != nil {
		return nil, fmt.Errorf("crowd: evaluating WHERE: %w", err)
	}
	res := &Result{WhereBindings: len(bindings)}
	if len(q.Satisfying) == 0 {
		if q.Agg != nil {
			bindings, err = applyAggregation(q, bindings)
			if err != nil {
				return nil, err
			}
		}
		res.Bindings = bindings
		return res, nil
	}

	// 2. Each subclause filters the bindings by crowd support.
	cnt := &execCounters{}
	surviving := bindings
	for i, sc := range q.Satisfying {
		if err := ctx.Err(); err != nil {
			return nil, &core.StageError{Stage: core.StageCrowd, Err: err}
		}
		stage := fmt.Sprintf("SATISFYING %d", i+1)
		if e.Observer != nil {
			e.Observer.StageStart(stage)
		}
		scStart := time.Now()
		scRes, kept, err := e.evalSubclause(ctx, i, sc, surviving, cnt, snap)
		d := time.Since(scStart)
		if e.Observer != nil {
			e.Observer.StageEnd(stage, d, err)
		}
		if err != nil {
			return nil, err
		}
		scRes.Duration = d
		res.Subclauses = append(res.Subclauses, *scRes)
		res.TasksIssued += len(scRes.Tasks)
		e.tasks.Add(uint64(len(scRes.Tasks)))
		surviving = kept
	}
	res.CacheHits = int(cnt.hits.Load())
	res.CacheMisses = int(cnt.misses.Load())

	// 3. Analytic extension: the grouping step runs over the rows the
	// crowd let through, so a counting query over crowd-filtered data
	// counts only significant patterns.
	if q.Agg != nil {
		surviving, err = applyAggregation(q, surviving)
		if err != nil {
			return nil, err
		}
	}

	// 4. Projection.
	res.Bindings = project(surviving, q.Select)
	return res, nil
}

// applyAggregation applies the query's aggregation extension — grouping,
// aggregates, HAVING, ordering and the result window — to
// already-computed rows. The WHERE patterns ride along only so HAVING
// aggregate aliases resolve against the query's pattern variables; no
// re-evaluation happens.
func applyAggregation(q *oassisql.Query, rows []sparql.Binding) ([]sparql.Binding, error) {
	aggQ := &sparql.Query{
		Where:   q.Where.Triples,
		GroupBy: q.Agg.GroupBy,
		Aggs:    q.Agg.Aggs,
		Having:  q.Agg.Having,
		OrderBy: q.Agg.OrderBy,
		Limit:   -1,
	}
	if q.Agg.Limit > 0 {
		aggQ.Limit = q.Agg.Limit
	}
	out, err := sparql.AggregateBindings(aggQ, rows, nil)
	if err != nil {
		return nil, fmt.Errorf("crowd: aggregating: %w", err)
	}
	return out, nil
}

// taskGroup is one crowd task together with every binding that grounds
// to its fact-set.
type taskGroup struct {
	task     Task
	bindings []sparql.Binding
}

// evalSubclause grounds the subclause pattern under each binding, asks
// the crowd (one task per distinct ground fact-set, evaluated on the
// worker pool), applies the significance criterion and returns the
// surviving bindings.
func (e *Engine) evalSubclause(ctx context.Context, idx int, sc oassisql.Subclause, bindings []sparql.Binding, cnt *execCounters, snap *rdf.Snapshot) (*SubclauseResult, []sparql.Binding, error) {
	expanded, err := e.expandOpenVars(sc, bindings, snap)
	if err != nil {
		return nil, nil, err
	}
	scRes := &SubclauseResult{Index: idx}
	// Group bindings by the fact key of their grounded pattern: the
	// crowd is asked once per distinct ground fact-set, but every
	// binding of a significant group survives — distinct bindings may
	// ground to the same fact-set when the pattern uses only a subset
	// of the bound variables.
	var groups []*taskGroup
	byKey := map[string]*taskGroup{}
	for _, b := range expanded {
		ground := groundPattern(sc.Pattern.Triples, b)
		key := FactKey(ground)
		g, ok := byKey[key]
		if !ok {
			g = &taskGroup{task: Task{
				Binding:  b,
				Triples:  ground,
				Key:      key,
				Question: e.Verbalize(ground),
			}}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.bindings = append(g.bindings, b)
	}

	// Three support paths: the streaming sequential sampler (decides
	// significance itself, on estimates), the streaming exhaustive
	// baseline, and the synchronous memoized fan-out. groups are in
	// first-appearance order here — the tie-break order both
	// applySignificance and the sequential sampler guarantee.
	sequential := e.Scale != nil && !e.ScaleExhaustive
	switch {
	case sequential:
		if err := e.evalScale(ctx, idx, sc, groups); err != nil {
			return nil, nil, err
		}
	case e.Scale != nil:
		if err := e.scaleSupports(ctx, groups); err != nil {
			return nil, nil, err
		}
	default:
		if err := e.askCrowd(ctx, groups, cnt); err != nil {
			return nil, nil, err
		}
	}
	sort.SliceStable(groups, func(i, j int) bool { return groups[i].task.Support > groups[j].task.Support })

	// Significance (the sequential path already decided it per task).
	if !sequential {
		supports := make([]float64, len(groups))
		for i, g := range groups {
			supports[i] = g.task.Support
		}
		sig, err := applySignificance(idx, sc, supports)
		if err != nil {
			return nil, nil, err
		}
		for i, g := range groups {
			g.task.Significant = sig[i]
		}
	}
	var kept []sparql.Binding
	for _, g := range groups {
		scRes.Tasks = append(scRes.Tasks, g.task)
		if g.task.Significant {
			kept = append(kept, g.bindings...)
		}
	}
	return scRes, kept, nil
}

// askCrowd fills in each group's support, fanning the tasks out over a
// bounded worker pool. Results are written by index, so output order is
// deterministic regardless of scheduling; cancellation stops feeding
// new tasks and returns once in-flight ones finish.
func (e *Engine) askCrowd(ctx context.Context, groups []*taskGroup, cnt *execCounters) error {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for _, g := range groups {
			if err := ctx.Err(); err != nil {
				return &core.StageError{Stage: core.StageCrowd, Err: err}
			}
			g.task.Support = e.support(g.task.Key, cnt)
		}
		return nil
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				groups[i].task.Support = e.support(groups[i].task.Key, cnt)
			}
		}()
	}
feed:
	for i := range groups {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return &core.StageError{Stage: core.StageCrowd, Err: err}
	}
	return nil
}

// support returns the (memoized) aggregated crowd support for a fact
// key under the engine's sample size. Concurrent misses for the same
// key may compute it twice; the value is deterministic, so the cache
// stays consistent.
func (e *Engine) support(key string, cnt *execCounters) float64 {
	sample := e.SampleSize
	if sample <= 0 || sample > e.Crowd.Size {
		sample = e.Crowd.Size
	}
	ck := supportKey{key: key, sample: sample}
	e.cacheMu.Lock()
	v, ok := e.cache[ck]
	e.cacheMu.Unlock()
	if ok {
		e.hits.Add(1)
		if cnt != nil {
			cnt.hits.Add(1)
		}
		return v
	}
	v = e.Crowd.Support(key, sample)
	e.cacheMu.Lock()
	if e.cache == nil {
		e.cache = map[supportKey]float64{}
	}
	e.cache[ck] = v
	e.cacheMu.Unlock()
	e.misses.Add(1)
	if cnt != nil {
		cnt.misses.Add(1)
	}
	return v
}

// applySignificance marks which of the support values (sorted
// descending, as evalSubclause produces them) pass the subclause's
// criterion: support >= threshold, or membership in the top k (bottom k
// when the ORDER is ascending). Ties at the k boundary resolve by the
// incoming (stable, first-appearance) order.
func applySignificance(idx int, sc oassisql.Subclause, supports []float64) ([]bool, error) {
	sig := make([]bool, len(supports))
	switch {
	case sc.Threshold != nil:
		for i, s := range supports {
			sig[i] = s >= *sc.Threshold
		}
	case sc.TopK != nil:
		order := make([]int, len(supports))
		for i := range order {
			order[i] = i
		}
		if !sc.TopK.Desc {
			// ascending: lowest-support first
			sort.SliceStable(order, func(a, b int) bool {
				return supports[order[a]] < supports[order[b]]
			})
		}
		for rank, i := range order {
			if rank < sc.TopK.K {
				sig[i] = true
			}
		}
	default:
		return nil, fmt.Errorf("crowd: subclause %d has no significance criterion", idx+1)
	}
	return sig, nil
}

// verbDomains approximates the semantic domain of the objects the crowd
// would propose for an open variable of a habit verb: OASSIS lets crowd
// members suggest terms; the simulation draws suggestions from the class
// a competent member would pick from.
var verbDomains = map[string]string{
	"eat": "Food", "cook": "Dish", "bake": "Dish", "drink": "Beverage",
	"order": "Dish", "serve": "Dish", "store": "Food",
	"visit": "Place", "go": "Place", "see": "Place", "stay": "Hotel",
	"explore": "Place", "hike": "Place", "walk": "Place",
	"buy": "Product", "shop": "Product", "recommend": "Place",
	"watch": "Show", "ride": "Ride",
}

// expandOpenVars instantiates subclause variables that the incoming
// bindings leave unbound (open crowd mining: "which places do you
// visit?") over the ontology's entities — restricted to the domain of
// the pattern's habit verb when one is known — capped at OpenVarLimit.
// Boundness is decided per binding: after OPTIONAL/UNION upstream, some
// rows may bind a pattern variable while others leave it open.
func (e *Engine) expandOpenVars(sc oassisql.Subclause, bindings []sparql.Binding, snap *rdf.Snapshot) ([]sparql.Binding, error) {
	pvars := sc.Pattern.Vars()
	if len(bindings) == 0 {
		bindings = []sparql.Binding{{}}
	}
	anyOpen := false
	for _, b := range bindings {
		for _, v := range pvars {
			if _, ok := b[v]; !ok {
				anyOpen = true
				break
			}
		}
		if anyOpen {
			break
		}
	}
	if !anyOpen {
		return bindings, nil
	}
	limit := e.OpenVarLimit
	if limit <= 0 {
		limit = 50
	}
	entities := e.candidateEntities(sc, limit, snap)
	var out []sparql.Binding
	for _, b := range bindings {
		var open []string
		for _, v := range pvars {
			if _, ok := b[v]; !ok {
				open = append(open, v)
			}
		}
		if len(open) == 0 {
			out = append(out, b)
			continue
		}
		rows := []sparql.Binding{b}
		for _, v := range open {
			var next []sparql.Binding
			for _, rb := range rows {
				for _, ent := range entities {
					nb := rb.Clone()
					nb[v] = ent
					next = append(next, nb)
				}
			}
			rows = next
		}
		out = append(out, rows...)
		if len(out) > limit*limit {
			return nil, fmt.Errorf("crowd: open-variable expansion too large (%d)", len(out))
		}
	}
	return out, nil
}

// candidateEntities returns the entities an open variable ranges over:
// the verb's domain class when known, otherwise everything with an
// instanceOf fact, capped at limit. All reads run against the
// execution's pinned snapshot.
func (e *Engine) candidateEntities(sc oassisql.Subclause, limit int, snap *rdf.Snapshot) []rdf.Term {
	var entities []rdf.Term
	if class, ok := e.patternDomain(sc); ok {
		entities = e.Onto.InstancesOfAt(snap, class)
	}
	if len(entities) == 0 {
		seen := map[rdf.Term]bool{}
		snap.MatchFunc(rdf.T(rdf.NewVar("s"), ontology.PredInstanceOf, rdf.NewVar("c")), func(t rdf.Triple) bool {
			if !seen[t.S] && !e.Onto.IsClass(t.S) {
				seen[t.S] = true
				entities = append(entities, t.S)
			}
			return true
		})
		sort.Slice(entities, func(i, j int) bool { return entities[i].Compare(entities[j]) < 0 })
	}
	if len(entities) > limit {
		entities = entities[:limit]
	}
	return entities
}

// patternDomain finds the domain class of a subclause's habit verb.
func (e *Engine) patternDomain(sc oassisql.Subclause) (rdf.Term, bool) {
	for _, t := range sc.Pattern.Triples {
		if class, ok := verbDomains[t.P.Local()]; ok {
			return ontology.E(class), true
		}
	}
	return rdf.Term{}, false
}

// groundPattern substitutes a binding into the pattern. Anonymous
// variables remain (they render as [] and aggregate over participants).
func groundPattern(pattern []rdf.Triple, b sparql.Binding) []rdf.Triple {
	sub := func(t rdf.Term) rdf.Term {
		if t.IsVar() && !oassisql.IsAnonVar(t.Value()) {
			if bt, ok := b[t.Value()]; ok {
				return bt
			}
		}
		return t
	}
	out := make([]rdf.Triple, len(pattern))
	for i, t := range pattern {
		out[i] = rdf.T(sub(t.S), sub(t.P), sub(t.O))
	}
	return out
}

// project applies the SELECT clause to the surviving bindings,
// deduplicating rows.
func project(bindings []sparql.Binding, sel oassisql.SelectClause) []sparql.Binding {
	var out []sparql.Binding
	seen := map[string]bool{}
	for _, b := range bindings {
		nb := sparql.Binding{}
		if sel.All {
			for k, v := range b {
				nb[k] = v
			}
		} else {
			for _, v := range sel.Vars {
				if t, ok := b[v]; ok {
					nb[v] = t
				}
			}
		}
		key := sparql.BindingKey(nb)
		if !seen[key] {
			seen[key] = true
			out = append(out, nb)
		}
	}
	return out
}

// Verbalize renders a ground fact-set as the natural-language question
// posed to crowd members, using ontology labels: habit patterns become
// frequency questions, label patterns become agreement questions.
func (e *Engine) Verbalize(ground []rdf.Triple) string {
	label := func(t rdf.Term) string {
		if t.IsLiteral() {
			return t.Value()
		}
		if t.IsVar() {
			// Anonymous subjects are the asked member ("you"); any
			// variable in object position reads as "something".
			return "something"
		}
		return e.Onto.Label(t)
	}
	// Label (opinion) pattern: {X hasLabel "adj"} (+ extra triples).
	var opinion *rdf.Triple
	var rest []rdf.Triple
	for i := range ground {
		if ground[i].P.Local() == "hasLabel" {
			opinion = &ground[i]
		} else {
			rest = append(rest, ground[i])
		}
	}
	if opinion != nil {
		q := fmt.Sprintf("Do you agree that %s is %s", label(opinion.S), label(opinion.O))
		for _, t := range rest {
			q += fmt.Sprintf(" %s %s", t.P.Local(), label(t.O))
		}
		return q + "?"
	}
	// Habit pattern: {[] verb X} (+ modifiers {[] prep Y}).
	var main *rdf.Triple
	var mods []rdf.Triple
	for i := range ground {
		p := ground[i].P.Local()
		if isPrepLike(p) {
			mods = append(mods, ground[i])
		} else if main == nil {
			main = &ground[i]
		} else {
			mods = append(mods, ground[i])
		}
	}
	if main == nil {
		return "How often does this hold: " + FactKey(ground) + "?"
	}
	q := fmt.Sprintf("How often do you %s %s", main.P.Local(), label(main.O))
	for _, m := range mods {
		q += fmt.Sprintf(" %s %s", m.P.Local(), label(m.O))
	}
	return q + "?"
}

func isPrepLike(p string) bool {
	switch p {
	case "in", "at", "on", "with", "for", "during", "near", "to", "from", "by":
		return true
	}
	return false
}
