// Package crowd simulates the crowd of web users behind the OASSIS query
// engine and implements the engine itself: WHERE clauses are evaluated
// against the ontology, SATISFYING clauses are evaluated by asking
// simulated crowd members about ground data patterns, and the per-pattern
// support — a habit frequency or a level of agreement aggregated over
// members (paper §2.1) — drives threshold and top-k significance
// selection.
//
// The simulation is deterministic per seed: each member's answer for a
// fact-set derives from a latent population mean (curated demo truth or a
// seed-hashed default) plus member-specific noise, so experiments are
// reproducible while still exhibiting a realistic answer spread.
package crowd

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"nl2cm/internal/oassisql"
	"nl2cm/internal/rdf"
)

// Crowd is a simulated population of web users.
type Crowd struct {
	// Size is the population size.
	Size int
	// Seed drives all pseudo-random member behaviour.
	Seed int64
	// Truth optionally fixes the latent population mean support per
	// fact-set key (see FactKey); keys not present get a seed-hashed
	// default in [0.05, 0.65].
	Truth map[string]float64
	// Noise is the per-member answer spread around the mean (default
	// 0.15 when zero).
	Noise float64
	// SpamFraction is the share of members who answer uniformly at
	// random regardless of the question — the low-quality workers real
	// crowdsourcing platforms must cope with.
	SpamFraction float64
	// TrimFraction, when positive, makes Support use a trimmed mean:
	// that share of the highest and lowest answers is discarded before
	// averaging, bounding the influence of spam workers.
	TrimFraction float64
}

// NewCrowd returns a crowd of the given size and seed with no curated
// truth.
func NewCrowd(size int, seed int64) *Crowd {
	return &Crowd{Size: size, Seed: seed}
}

func (c *Crowd) noise() float64 {
	if c.Noise == 0 {
		return 0.15
	}
	return c.Noise
}

// FactKey canonicalizes a ground fact-set: anonymous variables collapse
// to "[]", triples are rendered in OASSIS-QL surface syntax and sorted.
func FactKey(triples []rdf.Triple) string {
	parts := make([]string, 0, len(triples))
	for _, t := range triples {
		parts = append(parts, oassisql.TermString(t.S)+" "+oassisql.TermString(t.P)+" "+oassisql.TermString(t.O))
	}
	sort.Strings(parts)
	return strings.Join(parts, " & ")
}

// hash01 maps arbitrary strings to [0,1) deterministically.
func hash01(seed int64, parts ...string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|", seed)
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// Mean returns the latent population mean support for a fact-set key.
func (c *Crowd) Mean(key string) float64 {
	if v, ok := c.Truth[key]; ok {
		return clamp01(v)
	}
	// Default latent truth: most patterns are niche (low support), some
	// are popular.
	return 0.05 + 0.6*hash01(c.Seed, "mean", key)
}

// IsSpammer reports whether member i is a spam worker (answers
// uniformly at random); membership is deterministic per seed.
func (c *Crowd) IsSpammer(i int) bool {
	if c.SpamFraction <= 0 {
		return false
	}
	return hash01(c.Seed, "spam", fmt.Sprint(i)) < c.SpamFraction
}

// MemberAnswer returns member i's answer for the fact-set key: the
// frequency with which they engage in the habit, or their agreement with
// the statement, in [0,1]. Spam workers answer uniformly at random.
func (c *Crowd) MemberAnswer(i int, key string) float64 {
	if i < 0 || i >= c.Size {
		return 0
	}
	if c.IsSpammer(i) {
		return hash01(c.Seed, "spam-answer", key, fmt.Sprint(i))
	}
	mean := c.Mean(key)
	// Symmetric triangular-ish noise from two hashes.
	n := hash01(c.Seed, "noise", key, fmt.Sprint(i)) - hash01(c.Seed, "noise2", key, fmt.Sprint(i))
	return clamp01(mean + n*c.noise()*2)
}

// Support aggregates answers of a sample of members (the first `sample`
// member indices; the whole population when sample <= 0 or exceeds
// Size). With TrimFraction set, a trimmed mean bounds spam influence.
func (c *Crowd) Support(key string, sample int) float64 {
	if sample <= 0 || sample > c.Size {
		sample = c.Size
	}
	if sample == 0 {
		return 0
	}
	answers := make([]float64, sample)
	for i := 0; i < sample; i++ {
		answers[i] = c.MemberAnswer(i, key)
	}
	if c.TrimFraction > 0 && sample > 2 {
		sort.Float64s(answers)
		k := int(float64(sample) * c.TrimFraction)
		if 2*k >= sample {
			k = (sample - 1) / 2
		}
		answers = answers[k : sample-k]
	}
	sum := 0.0
	for _, a := range answers {
		sum += a
	}
	return sum / float64(len(answers))
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}

// DemoTruth returns the curated latent truth for the demonstration
// scenarios: the running example's expected answers ("the Delaware Park
// and Buffalo Zoo may be returned", paper §2.1), the Vegas thrill-ride
// ranking, food opinions and habits.
func DemoTruth() map[string]float64 {
	return map[string]float64{
		// Interestingness opinions around Forest Hotel, Buffalo.
		`Delaware_Park hasLabel "interesting"`:         0.82,
		`Buffalo_Zoo hasLabel "interesting"`:           0.74,
		`Albright-Knox_Gallery hasLabel "interesting"`: 0.61,
		`Canalside hasLabel "interesting"`:             0.55,
		`Anchor_Bar hasLabel "interesting"`:            0.38,
		`Niagara_Falls hasLabel "interesting"`:         0.93,

		// Fall visiting habits.
		`[] in Fall & [] visit Delaware_Park`:         0.42,
		`[] in Fall & [] visit Buffalo_Zoo`:           0.31,
		`[] in Fall & [] visit Albright-Knox_Gallery`: 0.18,
		`[] in Fall & [] visit Canalside`:             0.12,
		`[] in Fall & [] visit Anchor_Bar`:            0.08,
		`[] in Fall & [] visit Niagara_Falls`:         0.27,

		// Vegas thrill rides ("Which hotel in Vegas has the best thrill
		// ride?").
		`Big_Shot hasLabel "good"`:          0.85,
		`Big_Apple_Coaster hasLabel "good"`: 0.72,
		`Adventuredome hasLabel "good"`:     0.58,

		// Food opinions and habits.
		`Chocolate_Milk for Kids & Chocolate_Milk hasLabel "good"`: 0.64,
		`[] eat Lentil_Soup`:                 0.33,
		`[] eat Oatmeal`:                     0.51,
		`[] eat Bean_Chili`:                  0.22,
		`[] eat Whole_Grain_Bread`:           0.58,
		`[] eat Quinoa_Salad`:                0.17,
		`[] in Winter & [] cook Lentil_Soup`: 0.44,
		`[] in Winter & [] cook Oatmeal`:     0.35,

		// Coffee storage habits.
		`[] at Airtight_Jar & [] store Coffee`:     0.47,
		`[] at Ceramic_Canister & [] store Coffee`: 0.21,
		`[] at Freezer_Bag & [] store Coffee`:      0.11,

		// Camera buying habits.
		`[] buy Nikon_D3500`:     0.28,
		`[] buy Canon_EOS_R50`:   0.19,
		`[] buy Sony_ZV-1`:       0.24,
		`[] buy Canon_PowerShot`: 0.12,
	}
}
