package crowd

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"nl2cm/internal/oassisql"
	"nl2cm/internal/ontology"
	"nl2cm/internal/rdf"
)

func demoEngine() *Engine {
	c := NewCrowd(100, 7)
	c.Truth = DemoTruth()
	return NewEngine(ontology.NewDemoOntology(), c)
}

func TestFactKeyCanonical(t *testing.T) {
	a := []rdf.Triple{
		rdf.T(rdf.NewVar("_anon1"), rdf.NewIRI("visit"), ontology.E("Delaware_Park")),
		rdf.T(rdf.NewVar("_anon2"), rdf.NewIRI("in"), ontology.E("Fall")),
	}
	b := []rdf.Triple{
		rdf.T(rdf.NewVar("_anon9"), rdf.NewIRI("in"), ontology.E("Fall")),
		rdf.T(rdf.NewVar("_anon3"), rdf.NewIRI("visit"), ontology.E("Delaware_Park")),
	}
	if FactKey(a) != FactKey(b) {
		t.Errorf("keys differ:\n%s\n%s", FactKey(a), FactKey(b))
	}
	if FactKey(a) != "[] in Fall & [] visit Delaware_Park" {
		t.Errorf("key = %q", FactKey(a))
	}
}

func TestCrowdDeterministicPerSeed(t *testing.T) {
	c1 := NewCrowd(50, 3)
	c2 := NewCrowd(50, 3)
	c3 := NewCrowd(50, 4)
	key := "some pattern"
	if c1.Support(key, 0) != c2.Support(key, 0) {
		t.Error("same seed, different support")
	}
	if c1.Support(key, 0) == c3.Support(key, 0) {
		t.Error("different seeds agree exactly (suspicious)")
	}
}

func TestCrowdAnswersBounded(t *testing.T) {
	f := func(seed int64, member uint8, key string) bool {
		c := NewCrowd(256, seed)
		v := c.MemberAnswer(int(member), key)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrowdTruthRespected(t *testing.T) {
	c := NewCrowd(500, 11)
	c.Truth = map[string]float64{"popular": 0.9, "niche": 0.05}
	if s := c.Support("popular", 0); math.Abs(s-0.9) > 0.08 {
		t.Errorf("popular support = %g, want ~0.9", s)
	}
	if s := c.Support("niche", 0); s > 0.2 {
		t.Errorf("niche support = %g, want small", s)
	}
}

func TestCrowdSampling(t *testing.T) {
	c := NewCrowd(100, 5)
	full := c.Support("k", 0)
	sampled := c.Support("k", 10)
	if math.Abs(full-sampled) > 0.3 {
		t.Errorf("sample diverges wildly: full=%g sample=%g", full, sampled)
	}
	if c.Support("k", 200) != full {
		t.Error("oversized sample != full population")
	}
	empty := NewCrowd(0, 1)
	if empty.Support("k", 0) != 0 {
		t.Error("empty crowd support != 0")
	}
}

func TestMemberAnswerOutOfRange(t *testing.T) {
	c := NewCrowd(10, 1)
	if c.MemberAnswer(-1, "k") != 0 || c.MemberAnswer(10, "k") != 0 {
		t.Error("out-of-range member answered")
	}
}

// The running example end to end: Figure 1's query against the demo
// crowd must return Delaware Park and Buffalo Zoo (paper §2.1: "the
// Delaware Park and Buffalo Zoo may be returned").
func TestExecuteRunningExample(t *testing.T) {
	q := oassisql.MustParse(`SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5
AND
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.1`)
	// The parsed query uses bare-IRI terms; rebase them into the
	// ontology namespace.
	rebase(q)
	eng := demoEngine()
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.WhereBindings != 5 {
		t.Errorf("WHERE bindings = %d, want 5", res.WhereBindings)
	}
	got := map[string]bool{}
	for _, b := range res.Bindings {
		got[b["x"].Local()] = true
	}
	if !got["Delaware_Park"] || !got["Buffalo_Zoo"] {
		t.Errorf("final bindings = %v, want Delaware_Park and Buffalo_Zoo", got)
	}
	// Anchor Bar fails the 0.1 fall-visit threshold.
	if got["Anchor_Bar"] {
		t.Error("Anchor_Bar passed the visit threshold")
	}
	if res.TasksIssued == 0 {
		t.Error("no crowd tasks issued")
	}
}

// rebase maps bare-IRI terms of a hand-written query into the ontology
// namespace (ontology entities print as local names).
func rebase(q *oassisql.Query) {
	fix := func(t rdf.Term) rdf.Term {
		if t.IsIRI() && !strings.Contains(t.Value(), "/") {
			switch t.Value() {
			case "instanceOf", "near", "locatedIn", "label":
				return rdf.NewIRI(ontology.NS + t.Value())
			case "hasLabel", "visit", "in", "eat", "cook", "buy", "store", "at":
				return t // crowd predicates stay bare
			default:
				return ontology.E(t.Value())
			}
		}
		return t
	}
	for i, tr := range q.Where.Triples {
		q.Where.Triples[i] = rdf.T(fix(tr.S), fix(tr.P), fix(tr.O))
	}
	for s := range q.Satisfying {
		for i, tr := range q.Satisfying[s].Pattern.Triples {
			q.Satisfying[s].Pattern.Triples[i] = rdf.T(fix(tr.S), fix(tr.P), fix(tr.O))
		}
	}
}

func TestExecuteTopKAscending(t *testing.T) {
	q := oassisql.MustParse(`SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY ASC(SUPPORT)
LIMIT 2`)
	rebase(q)
	eng := demoEngine()
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	sig := res.Subclauses[0].Significant()
	if len(sig) != 2 {
		t.Fatalf("significant = %d, want 2", len(sig))
	}
	// Ascending selects the least interesting: Anchor Bar must be in.
	found := false
	for _, task := range sig {
		if strings.Contains(task.Question, "Anchor Bar") {
			found = true
		}
	}
	if !found {
		t.Errorf("bottom-k missing Anchor Bar: %+v", sig)
	}
}

func TestExecuteOpenVariables(t *testing.T) {
	// Pure-individual query: "Where do you visit in Buffalo?" — $x is
	// unbound by WHERE and instantiated over ontology entities.
	q := oassisql.MustParse(`SELECT VARIABLES
WHERE
{}
SATISFYING
{[] visit $x.
[] in Fall}
WITH SUPPORT THRESHOLD = 0.3`)
	rebase(q)
	eng := demoEngine()
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subclauses[0].Tasks) == 0 {
		t.Fatal("no tasks for open variable")
	}
	// Delaware Park (0.42 in the demo truth) passes a 0.3 threshold.
	pass := map[string]bool{}
	for _, b := range res.Bindings {
		pass[b["x"].Local()] = true
	}
	if !pass["Delaware_Park"] {
		t.Errorf("bindings = %v, want Delaware_Park", pass)
	}
}

func TestExecuteProjection(t *testing.T) {
	q := oassisql.MustParse(`SELECT $x
WHERE
{$x instanceOf Hotel.
$x hasFeature $y}
SATISFYING
{$y hasLabel "good"}
ORDER BY DESC(SUPPORT)
LIMIT 1`)
	rebase(q)
	// hasFeature must resolve into the namespace
	for i, tr := range q.Where.Triples {
		if tr.P.Value() == "hasFeature" {
			q.Where.Triples[i] = rdf.T(tr.S, ontology.PredHasFeature, tr.O)
		}
	}
	eng := demoEngine()
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 {
		t.Fatalf("bindings = %v, want 1 (top hotel)", res.Bindings)
	}
	b := res.Bindings[0]
	if _, ok := b["y"]; ok {
		t.Error("projected-out variable $y present in result")
	}
	if b["x"].Local() != "Stratosphere" {
		t.Errorf("best thrill-ride hotel = %v, want Stratosphere", b["x"])
	}
}

func TestExecutePureGeneralQuery(t *testing.T) {
	q := &oassisql.Query{
		Select: oassisql.SelectClause{All: true},
		Where: oassisql.Pattern{Triples: []rdf.Triple{
			rdf.T(rdf.NewVar("x"), ontology.PredInstanceOf, ontology.E("Park")),
		}},
	}
	eng := demoEngine()
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) == 0 || res.TasksIssued != 0 {
		t.Errorf("pure general: bindings=%d tasks=%d", len(res.Bindings), res.TasksIssued)
	}
}

func TestExecuteNilQuery(t *testing.T) {
	if _, err := demoEngine().Execute(context.Background(), nil); err == nil {
		t.Error("nil query accepted")
	}
}

func TestVerbalization(t *testing.T) {
	eng := demoEngine()
	cases := []struct {
		triples []rdf.Triple
		want    string
	}{
		{
			[]rdf.Triple{rdf.T(ontology.E("Delaware_Park"), rdf.NewIRI("hasLabel"), rdf.NewLiteral("interesting"))},
			"Do you agree that Delaware Park is interesting?",
		},
		{
			[]rdf.Triple{
				rdf.T(rdf.NewVar("_anon1"), rdf.NewIRI("visit"), ontology.E("Delaware_Park")),
				rdf.T(rdf.NewVar("_anon2"), rdf.NewIRI("in"), ontology.E("Fall")),
			},
			"How often do you visit Delaware Park in fall?",
		},
	}
	for _, c := range cases {
		if got := eng.Verbalize(c.triples); got != c.want {
			t.Errorf("Verbalize = %q, want %q", got, c.want)
		}
	}
}

// Support decisions are stable: running the same query twice gives
// identical results (no time- or map-order dependence).
func TestExecuteDeterministic(t *testing.T) {
	q := oassisql.MustParse(`SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 3`)
	rebase(q)
	eng := demoEngine()
	r1, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Bindings) != len(r2.Bindings) {
		t.Fatalf("non-deterministic result sizes: %d vs %d", len(r1.Bindings), len(r2.Bindings))
	}
	for i := range r1.Subclauses[0].Tasks {
		a, b := r1.Subclauses[0].Tasks[i], r2.Subclauses[0].Tasks[i]
		if a.Key != b.Key || a.Support != b.Support {
			t.Fatalf("task %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// Sampling efficiency: asking more members shrinks the support
// estimation error — the trade-off the OASSIS engine manages when it
// decides how many crowd members to ask per task.
func TestSamplingErrorDecreases(t *testing.T) {
	c := NewCrowd(2000, 21)
	keys := make([]string, 60)
	for i := range keys {
		keys[i] = fmt.Sprintf("pattern-%d", i)
	}
	meanAbsErr := func(sample int) float64 {
		sum := 0.0
		for _, k := range keys {
			full := c.Support(k, 0)
			est := c.Support(k, sample)
			sum += math.Abs(full - est)
		}
		return sum / float64(len(keys))
	}
	small := meanAbsErr(5)
	large := meanAbsErr(500)
	if large >= small {
		t.Errorf("error did not shrink with sample size: n=5 err=%.4f, n=500 err=%.4f", small, large)
	}
	if large > 0.02 {
		t.Errorf("large-sample error %.4f too big", large)
	}
}

func TestEngineSampleSizeChangesSupport(t *testing.T) {
	eng := demoEngine()
	eng.SampleSize = 3
	q := oassisql.MustParse(`SELECT VARIABLES
WHERE
{$x instanceOf Place.
$x near Forest_Hotel,_Buffalo,_NY}
SATISFYING
{$x hasLabel "interesting"}
ORDER BY DESC(SUPPORT)
LIMIT 5`)
	rebase(q)
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subclauses[0].Tasks) == 0 {
		t.Fatal("no tasks")
	}
	// Results remain deterministic under sampling.
	res2, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Subclauses[0].Tasks[0].Support != res2.Subclauses[0].Tasks[0].Support {
		t.Error("sampled support not deterministic")
	}
}

// Worker quality: spam workers bias the plain mean towards 0.5; the
// trimmed mean bounds their influence on strongly-supported patterns.
func TestSpamWorkersAndTrimmedMean(t *testing.T) {
	clean := NewCrowd(400, 9)
	clean.Truth = map[string]float64{"k": 0.9}
	spammy := NewCrowd(400, 9)
	spammy.Truth = map[string]float64{"k": 0.9}
	spammy.SpamFraction = 0.3
	robust := NewCrowd(400, 9)
	robust.Truth = map[string]float64{"k": 0.9}
	robust.SpamFraction = 0.3
	robust.TrimFraction = 0.2

	truth := 0.9
	errClean := math.Abs(clean.Support("k", 0) - truth)
	errSpam := math.Abs(spammy.Support("k", 0) - truth)
	errRobust := math.Abs(robust.Support("k", 0) - truth)
	if errSpam <= errClean {
		t.Errorf("spam did not hurt: clean=%.3f spam=%.3f", errClean, errSpam)
	}
	if errRobust >= errSpam {
		t.Errorf("trimmed mean did not help: spam=%.3f robust=%.3f", errSpam, errRobust)
	}
}

func TestSpammerMembershipDeterministic(t *testing.T) {
	c := NewCrowd(100, 3)
	c.SpamFraction = 0.25
	n := 0
	for i := 0; i < c.Size; i++ {
		if c.IsSpammer(i) != c.IsSpammer(i) {
			t.Fatal("spammer membership flapped")
		}
		if c.IsSpammer(i) {
			n++
		}
	}
	if n < 10 || n > 45 {
		t.Errorf("spammer count = %d of 100 with fraction 0.25", n)
	}
	clean := NewCrowd(100, 3)
	if clean.IsSpammer(0) {
		t.Error("zero fraction produced a spammer")
	}
}

func TestTrimFractionBounds(t *testing.T) {
	c := NewCrowd(4, 1)
	c.TrimFraction = 0.9 // would trim everything; must clamp
	if v := c.Support("k", 0); v < 0 || v > 1 {
		t.Errorf("over-trimmed support = %g", v)
	}
}

func TestVerbalizeOpinionWithComplement(t *testing.T) {
	eng := demoEngine()
	got := eng.Verbalize([]rdf.Triple{
		rdf.T(ontology.E("Chocolate_Milk"), rdf.NewIRI("hasLabel"), rdf.NewLiteral("good")),
		rdf.T(ontology.E("Chocolate_Milk"), rdf.NewIRI("for"), ontology.E("Kids")),
	})
	want := "Do you agree that chocolate milk is good for kids?"
	if got != want {
		t.Errorf("Verbalize = %q, want %q", got, want)
	}
}

func TestVerbalizeVariableObject(t *testing.T) {
	eng := demoEngine()
	got := eng.Verbalize([]rdf.Triple{
		rdf.T(rdf.NewVar("_anon1"), rdf.NewIRI("eat"), rdf.NewVar("y")),
	})
	if !strings.Contains(got, "something") {
		t.Errorf("Verbalize = %q", got)
	}
}

func TestSubclauseResultSignificant(t *testing.T) {
	r := SubclauseResult{Tasks: []Task{
		{Key: "a", Significant: true},
		{Key: "b"},
		{Key: "c", Significant: true},
	}}
	sig := r.Significant()
	if len(sig) != 2 || sig[0].Key != "a" || sig[1].Key != "c" {
		t.Errorf("Significant = %v", sig)
	}
}

// Trimmed-mean edge cases, including the 2*k >= sample clamp: a trim
// fraction that would discard every answer is reduced so at least one
// (odd sample) or two (even sample) central answers remain.
func TestTrimmedMeanEdges(t *testing.T) {
	expect := func(c *Crowd, key string, sample, trim int) float64 {
		answers := make([]float64, sample)
		for i := 0; i < sample; i++ {
			answers[i] = c.MemberAnswer(i, key)
		}
		sort.Float64s(answers)
		answers = answers[trim : sample-trim]
		sum := 0.0
		for _, a := range answers {
			sum += a
		}
		return sum / float64(len(answers))
	}
	cases := []struct {
		name   string
		size   int
		frac   float64
		sample int
		trim   int // expected per-side trim after clamping
	}{
		{"even-clamped", 4, 0.5, 4, 1},    // k=2, 2k>=4 -> (4-1)/2 = 1
		{"odd-median", 3, 0.4, 3, 1},      // k=1, 2k<3 -> keep median
		{"odd-clamped", 5, 0.6, 5, 2},     // k=3, 2k>=5 -> (5-1)/2 = 2
		{"untrimmed-small", 2, 0.5, 2, 0}, // sample <= 2: no trimming
		{"regular", 10, 0.2, 10, 2},       // k=2, 2k<10: plain trim
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cr := NewCrowd(c.size, 17)
			cr.TrimFraction = c.frac
			got := cr.Support("edge", 0)
			want := expect(cr, "edge", c.sample, c.trim)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("Support = %.6f, want %.6f (trim %d per side)", got, want, c.trim)
			}
		})
	}
}
