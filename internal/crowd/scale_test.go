package crowd

import (
	"context"
	"testing"

	"nl2cm/internal/crowdscale"
	"nl2cm/internal/ontology"
	"nl2cm/internal/sparql"
)

func scaleEngine(t *testing.T, cfg crowdscale.Config) *Engine {
	t.Helper()
	eng := demoEngine()
	x, err := NewScaleExecutor(eng.Crowd, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(x.Close)
	eng.Scale = x
	return eng
}

// The scale path (both stopping rules) must reproduce the exhaustive
// path's significant tasks and final bindings on the running example —
// which exercises both criteria: top-5 desc, then a 0.1 threshold.
func TestScaleMatchesExhaustive(t *testing.T) {
	q := runningExampleQuery(t)
	base := demoEngine()
	want, err := base.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range []crowdscale.Rule{crowdscale.RuleExact, crowdscale.RuleConfidence} {
		eng := scaleEngine(t, crowdscale.Config{Rule: rule})
		got, err := eng.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Subclauses) != len(want.Subclauses) {
			t.Fatalf("rule=%v subclause counts differ", rule)
		}
		for i := range want.Subclauses {
			ws := map[string]bool{}
			for _, task := range want.Subclauses[i].Significant() {
				ws[task.Key] = true
			}
			gs := map[string]bool{}
			for _, task := range got.Subclauses[i].Significant() {
				gs[task.Key] = true
			}
			if len(ws) != len(gs) {
				t.Fatalf("rule=%v subclause %d: %d significant vs %d exhaustive", rule, i, len(gs), len(ws))
			}
			for k := range ws {
				if !gs[k] {
					t.Errorf("rule=%v subclause %d: exhaustive keeps %q, scale does not", rule, i, k)
				}
			}
		}
		wb := map[string]bool{}
		for _, b := range want.Bindings {
			wb[sparql.BindingKey(b)] = true
		}
		for _, b := range got.Bindings {
			if !wb[sparql.BindingKey(b)] {
				t.Errorf("rule=%v extra binding %v", rule, b)
			}
		}
		if len(got.Bindings) != len(want.Bindings) {
			t.Errorf("rule=%v bindings %d, want %d", rule, len(got.Bindings), len(want.Bindings))
		}
	}
}

// ScaleExhaustive routes full sampling through the queue and must agree
// with the synchronous path support-for-support.
func TestScaleExhaustiveOracle(t *testing.T) {
	q := runningExampleQuery(t)
	base := demoEngine()
	want, err := base.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	eng := scaleEngine(t, crowdscale.Config{})
	eng.ScaleExhaustive = true
	got, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Subclauses {
		a, b := want.Subclauses[i].Tasks, got.Subclauses[i].Tasks
		if len(a) != len(b) {
			t.Fatalf("subclause %d task counts differ", i)
		}
		for j := range a {
			if a[j].Key != b[j].Key || a[j].Significant != b[j].Significant {
				t.Fatalf("subclause %d task %d: %+v vs %+v", i, j, a[j], b[j])
			}
			if diff := a[j].Support - b[j].Support; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("subclause %d task %d support %v vs %v", i, j, a[j].Support, b[j].Support)
			}
		}
	}
}

// Result.Scale carries per-execution executor deltas; Engine.Stats
// carries the lifetime view and survives ResetCache.
func TestScaleMetrics(t *testing.T) {
	q := runningExampleQuery(t)
	eng := scaleEngine(t, crowdscale.Config{})
	res, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scale == nil {
		t.Fatal("Result.Scale not populated")
	}
	if res.Scale.TasksDecided != uint64(res.TasksIssued) {
		t.Errorf("scale tasks %d, issued %d", res.Scale.TasksDecided, res.TasksIssued)
	}
	if res.Scale.MemberAnswers == 0 {
		t.Error("no member answers recorded")
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Errorf("scale path touched the support cache: hits=%d misses=%d", res.CacheHits, res.CacheMisses)
	}
	st := eng.Stats()
	if st.Scale == nil || st.Scale.TasksDecided != res.Scale.TasksDecided {
		t.Errorf("engine stats scale section = %+v", st.Scale)
	}
	if st.Executions != 1 || st.TasksIssued != uint64(res.TasksIssued) {
		t.Errorf("engine stats = %+v", st)
	}

	// A repeat run reuses the executor's sampling states: no new answers.
	res2, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Scale.MemberAnswers != 0 {
		t.Errorf("repeat run sampled %d answers despite cached states", res2.Scale.MemberAnswers)
	}
	if res2.Scale.StateHits == 0 {
		t.Error("repeat run recorded no state hits")
	}

	// ResetCache drops the states (next run resamples) but keeps the
	// lifetime counters monotonic.
	before := eng.Stats()
	eng.ResetCache()
	mid := eng.Stats()
	if mid.Scale.States != 0 {
		t.Errorf("ResetCache left %d sampling states", mid.Scale.States)
	}
	if mid.Scale.MemberAnswers != before.Scale.MemberAnswers || mid.Executions != before.Executions {
		t.Error("ResetCache rewound counters")
	}
	res3, err := eng.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Scale.MemberAnswers == 0 {
		t.Error("post-reset run resampled nothing")
	}
}

// The engine-level significance semantics must hold on a Population
// source too (a million-member crowd is addressed lazily; SampleSize
// limits the effective population).
func TestScalePopulationSource(t *testing.T) {
	pop := &crowdscale.Population{N: 1_000_000, Seed: 7, Truth: DemoTruth(), Skew: 1}
	x := crowdscale.New(pop, crowdscale.Config{})
	defer x.Close()
	eng := NewEngine(ontology.NewDemoOntology(), NewCrowd(1_000_000, 7))
	eng.Crowd.Truth = DemoTruth()
	eng.Scale = x
	res, err := eng.Execute(context.Background(), runningExampleQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) == 0 {
		t.Fatal("no significant bindings at 1M members")
	}
	if res.Scale.MemberAnswers >= res.Scale.AnswersSaved {
		t.Errorf("at 1M members early termination should dominate: asked %d, saved %d",
			res.Scale.MemberAnswers, res.Scale.AnswersSaved)
	}
}

func TestNewScaleExecutorRejectsTrimmedMean(t *testing.T) {
	c := NewCrowd(100, 1)
	c.TrimFraction = 0.1
	if _, err := NewScaleExecutor(c, crowdscale.Config{}); err == nil {
		t.Fatal("trimmed-mean crowd accepted")
	}
	if _, err := NewScaleExecutor(nil, crowdscale.Config{}); err == nil {
		t.Fatal("nil crowd accepted")
	}
}
