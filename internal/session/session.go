// Package session is the stateful layer between the HTTP edge and the
// translation pipeline: it makes the paper's multi-turn dialogues
// (Figures 3–6 — IX verification, disambiguation, significance
// selection, projection) drivable by a remote client that can only poll
// and post.
//
// Each translation runs in its own goroutine behind a channel-bridged
// interact.Interactor: when the pipeline reaches an interaction point,
// the goroutine parks and the question becomes visible as the session's
// pending Question; a client answer (Session.Answer) resumes it. A
// question left unanswered past its deadline falls back to the Auto
// answer, so an abandoned dialogue degrades to the §4.1 automatic mode
// instead of leaking a parked goroutine; a session past its TTL (or
// evicted, or deleted) has its context cancelled, which unwinds the
// pipeline with a *core.StageError wrapping ctx.Err().
//
// The Manager owns the lifecycle: bounded capacity with oldest-idle
// eviction, per-session TTL, per-question deadlines, and per-point
// metrics (questions asked/answered/timed out, wait durations) that are
// also emitted through the configured core.Observer.
package session

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"nl2cm/internal/core"
	"nl2cm/internal/interact"
)

// State is a session's lifecycle state. Transitions:
//
//	running → waiting   the pipeline asked a question (bridge parked)
//	waiting → running   the client answered, or the question deadline
//	                    passed and the Auto answer was substituted
//	running → done      translation finished; Result is available
//	running → failed    the pipeline returned a non-cancellation error
//	any     → expired   TTL expiry, eviction or deletion cancelled the
//	                    session's context and unwound the pipeline
type State string

// Session states.
const (
	StateRunning State = "running"
	StateWaiting State = "waiting"
	StateDone    State = "done"
	StateFailed  State = "failed"
	StateExpired State = "expired"
)

// Terminal reports whether no further transition can occur.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateExpired
}

// Kind is the shape of a pending question, which determines the Answer
// fields that apply.
type Kind string

// Question kinds.
const (
	// KindIXVerify asks one accept flag per Question.Spans entry
	// (Answer.Accept), the Figure-4 verification.
	KindIXVerify Kind = "ix-verify"
	// KindChoice asks for the index of one of Question.Choices
	// (Answer.Choice), the "Buffalo, NY vs Buffalo, IL" disambiguation.
	KindChoice Kind = "choice"
	// KindNumber asks for a numeric value (Answer.Number) with a default
	// and bounds: LIMIT/SUPPORT selection, Figure 5.
	KindNumber Kind = "number"
	// KindProjection asks one keep flag per Question.Vars entry
	// (Answer.Accept), the Figure-6 projection dialogue.
	KindProjection Kind = "projection"
)

// Question is one pending dialogue question, typed by Kind. It is
// JSON-serializable for the REST protocol.
type Question struct {
	// ID identifies the question within its session; an Answer must name
	// it, so a stale client cannot answer the wrong question.
	ID int `json:"id"`
	// Point is the interaction point that asked.
	Point interact.Point `json:"-"`
	// PointName is Point.String(), for clients.
	PointName string `json:"point"`
	// Kind selects which answer fields apply.
	Kind Kind `json:"kind"`
	// Prompt is the human-readable question text.
	Prompt string `json:"prompt"`
	// Subject is what is being asked about: the NL question for
	// ix-verify, the ambiguous phrase for choice, the subclause
	// description for number.
	Subject string `json:"subject,omitempty"`
	// Spans are the detected IXs to verify (KindIXVerify).
	Spans []interact.IXSpan `json:"spans,omitempty"`
	// Choices are the candidate meanings (KindChoice).
	Choices []interact.Choice `json:"choices,omitempty"`
	// Vars are the projectable variables (KindProjection).
	Vars []interact.VarChoice `json:"vars,omitempty"`
	// Default, Min, Max and Integer describe a KindNumber question. The
	// Default is also the value substituted when the question times out.
	// Max 0 means unbounded.
	Default float64 `json:"default,omitempty"`
	Min     float64 `json:"min,omitempty"`
	Max     float64 `json:"max,omitempty"`
	Integer bool    `json:"integer,omitempty"`
	// Asked and Deadline bound the question: unanswered past Deadline,
	// it is withdrawn and answered with the Auto default.
	Asked    time.Time `json:"asked"`
	Deadline time.Time `json:"deadline"`
}

// Answer is a client's reply to a pending question. Exactly the fields
// matching the question's Kind must be set; pointer fields distinguish
// "absent" from zero values so a malformed answer fails loudly instead
// of silently picking index 0.
type Answer struct {
	// Accept holds one flag per span (ix-verify) or per var (projection).
	Accept []bool `json:"accept,omitempty"`
	// Choice is the chosen option index (choice).
	Choice *int `json:"choice,omitempty"`
	// Number is the selected value (number).
	Number *float64 `json:"number,omitempty"`
}

// Turn is one completed exchange of a session's dialogue, kept for the
// transcript (admin page, dialogue UI).
type Turn struct {
	Question Question `json:"question"`
	// Answer is the rendered answer.
	Answer string `json:"answer"`
	// Source records who answered: "user", or "auto" when the question
	// deadline passed and the default was substituted.
	Source string `json:"source"`
	// Wait is how long the pipeline was parked on this question.
	Wait time.Duration `json:"wait_nanos"`
}

// Typed errors of the answer protocol, mapped to HTTP statuses by the
// daemon (404 / 409 / 409 / 400 / 503 in order).
var (
	ErrNotFound      = errors.New("session: not found")
	ErrNoPending     = errors.New("session: no pending question")
	ErrWrongQuestion = errors.New("session: answer names a different question")
	ErrBadAnswer     = errors.New("session: invalid answer")
	ErrClosed        = errors.New("session: manager closed")
)

// Snapshot is a point-in-time view of a session, safe to serialize
// after the session has moved on.
type Snapshot struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Question is the pending question, when State is waiting.
	Question *Question `json:"question,omitempty"`
	// Query is the final OASSIS-QL text, when State is done and the
	// question was supported.
	Query string `json:"query,omitempty"`
	// Unsupported and Reason report a verification rejection (done, but
	// no query).
	Unsupported bool   `json:"unsupported,omitempty"`
	Reason      string `json:"reason,omitempty"`
	// Error is the failure cause, when State is failed or expired.
	Error string `json:"error,omitempty"`
	// Turns is the dialogue so far.
	Turns []Turn `json:"turns,omitempty"`
	// Created and Expires bound the session's lifetime.
	Created time.Time `json:"created"`
	Expires time.Time `json:"expires"`
	// Result is the full translation result (nil until done); not part
	// of the wire format — the daemon's HTML views use it.
	Result *core.Result `json:"-"`
}

// Session is one interactive translation. All methods are safe for
// concurrent use.
type Session struct {
	id      string
	mgr     *Manager
	created time.Time
	expires time.Time
	cancel  func()
	done    chan struct{}

	mu         sync.Mutex
	state      State
	pending    *Question
	answerCh   chan Answer
	changed    chan struct{}
	lastActive time.Time
	nextQID    int
	turns      []Turn
	result     *core.Result
	err        error
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Done is closed when the session's translation goroutine has exited
// (any terminal state).
func (s *Session) Done() <-chan struct{} { return s.done }

// Snapshot returns the session's current state.
func (s *Session) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Session) snapshotLocked() Snapshot {
	snap := Snapshot{
		ID:      s.id,
		State:   s.state,
		Created: s.created,
		Expires: s.expires,
		Turns:   append([]Turn(nil), s.turns...),
	}
	if s.pending != nil {
		q := *s.pending
		snap.Question = &q
	}
	if s.err != nil {
		snap.Error = s.err.Error()
	}
	if s.result != nil {
		snap.Result = s.result
		if s.result.Verdict.Supported {
			snap.Query = s.result.Query.String()
		} else {
			snap.Unsupported = true
			snap.Reason = s.result.Verdict.Reason
		}
	}
	return snap
}

// notifyLocked wakes every WaitQuestion waiter; callers hold s.mu.
func (s *Session) notifyLocked() {
	close(s.changed)
	s.changed = make(chan struct{})
}

// WaitQuestion blocks until the session has a pending question or is
// terminal — the two states a client can act on — but no longer than
// max, and no longer than ctx allows. It returns the snapshot at that
// moment, whatever it is.
func (s *Session) WaitQuestion(ctx context.Context, max time.Duration) Snapshot {
	timer := time.NewTimer(max)
	defer timer.Stop()
	for {
		s.mu.Lock()
		if s.pending != nil || s.state.Terminal() {
			snap := s.snapshotLocked()
			s.mu.Unlock()
			return snap
		}
		changed := s.changed
		s.mu.Unlock()
		select {
		case <-changed:
		case <-timer.C:
			return s.Snapshot()
		case <-ctx.Done():
			return s.Snapshot()
		}
	}
}

// Answer resolves the pending question qid. It validates the answer
// against the question's Kind (ErrBadAnswer), rejects stale or absent
// question ids (ErrWrongQuestion, ErrNoPending), and resumes the parked
// pipeline goroutine on success.
func (s *Session) Answer(qid int, a Answer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		if s.state.Terminal() {
			return fmt.Errorf("%w: session is %s", ErrNoPending, s.state)
		}
		return ErrNoPending
	}
	if s.pending.ID != qid {
		return fmt.Errorf("%w: pending is #%d, answer names #%d", ErrWrongQuestion, s.pending.ID, qid)
	}
	if err := validateAnswer(s.pending, a); err != nil {
		return err
	}
	s.answerCh <- a // buffered(1): never blocks while the bridge waits
	s.pending, s.answerCh = nil, nil
	s.state = StateRunning
	s.lastActive = time.Now()
	s.notifyLocked()
	return nil
}

// validateAnswer checks an answer's shape against its question so the
// pipeline only ever sees well-formed replies.
func validateAnswer(q *Question, a Answer) error {
	switch q.Kind {
	case KindIXVerify:
		if len(a.Accept) != len(q.Spans) {
			return fmt.Errorf("%w: %d accept flags for %d spans", ErrBadAnswer, len(a.Accept), len(q.Spans))
		}
	case KindProjection:
		if len(a.Accept) != len(q.Vars) {
			return fmt.Errorf("%w: %d accept flags for %d variables", ErrBadAnswer, len(a.Accept), len(q.Vars))
		}
	case KindChoice:
		if a.Choice == nil {
			return fmt.Errorf("%w: missing \"choice\"", ErrBadAnswer)
		}
		if *a.Choice < 0 || *a.Choice >= len(q.Choices) {
			return fmt.Errorf("%w: choice %d out of range (%d options)", ErrBadAnswer, *a.Choice, len(q.Choices))
		}
	case KindNumber:
		if a.Number == nil {
			return fmt.Errorf("%w: missing \"number\"", ErrBadAnswer)
		}
		n := *a.Number
		if q.Integer && n != math.Trunc(n) {
			return fmt.Errorf("%w: %g is not an integer", ErrBadAnswer, n)
		}
		if n < q.Min || (q.Max > 0 && n > q.Max) {
			return fmt.Errorf("%w: %g outside [%g, %g]", ErrBadAnswer, n, q.Min, q.Max)
		}
	default:
		return fmt.Errorf("%w: unknown question kind %q", ErrBadAnswer, q.Kind)
	}
	return nil
}

// ---------------------------------------------------------------------
// The channel bridge: pipeline side.

// ask parks the calling (pipeline) goroutine until the question is
// answered, its deadline passes, or ctx is cancelled. It returns the
// answer and whether a user provided it; !answered with a nil error
// means the deadline passed and the caller must substitute the Auto
// default.
func (s *Session) ask(ctx context.Context, q *Question) (ans Answer, answered bool, err error) {
	timeout := s.mgr.cfg.QuestionTimeout
	now := time.Now()
	q.Asked = now
	q.Deadline = now.Add(timeout)
	q.PointName = q.Point.String()

	ch := make(chan Answer, 1)
	s.mu.Lock()
	q.ID = s.nextQID
	s.nextQID++
	s.pending = q
	s.answerCh = ch
	s.state = StateWaiting
	s.notifyLocked()
	s.mu.Unlock()

	stage := StageName(q.Point)
	if obs := s.mgr.cfg.Observer; obs != nil {
		obs.StageStart(stage)
	}
	s.mgr.pointAsked(q.Point)

	defer func() {
		wait := time.Since(q.Asked)
		if obs := s.mgr.cfg.Observer; obs != nil {
			obs.StageEnd(stage, wait, err)
		}
		s.recordTurn(q, ans, answered, err, wait)
	}()

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case a := <-ch:
		s.mgr.pointAnswered(q.Point, time.Since(q.Asked))
		return a, true, nil
	case <-timer.C:
		// Withdraw the question; a concurrent Answer may win the race,
		// in which case it already cleared pending and sent on ch.
		s.mu.Lock()
		if s.pending == q {
			s.pending, s.answerCh = nil, nil
			s.state = StateRunning
			s.notifyLocked()
			s.mu.Unlock()
			s.mgr.pointTimedOut(q.Point)
			return Answer{}, false, nil
		}
		s.mu.Unlock()
		a := <-ch
		s.mgr.pointAnswered(q.Point, time.Since(q.Asked))
		return a, true, nil
	case <-ctx.Done():
		s.mu.Lock()
		if s.pending == q {
			s.pending, s.answerCh = nil, nil
			s.notifyLocked()
		}
		s.mu.Unlock()
		s.mgr.pointAborted(q.Point)
		return Answer{}, false, ctx.Err()
	}
}

// recordTurn appends the exchange to the transcript (aborted questions
// are not turns: the dialogue ended).
func (s *Session) recordTurn(q *Question, a Answer, answered bool, err error, wait time.Duration) {
	if err != nil {
		return
	}
	turn := Turn{Question: *q, Source: "auto", Wait: wait}
	if answered {
		turn.Source = "user"
		turn.Answer = renderAnswer(q, a)
	} else {
		turn.Answer = renderDefault(q)
	}
	s.mu.Lock()
	s.turns = append(s.turns, turn)
	s.mu.Unlock()
}

// renderAnswer formats a user answer for the transcript.
func renderAnswer(q *Question, a Answer) string {
	switch q.Kind {
	case KindIXVerify:
		return renderFlags(a.Accept, func(i int) string { return q.Spans[i].Text })
	case KindProjection:
		return renderFlags(a.Accept, func(i int) string { return "$" + q.Vars[i].Var })
	case KindChoice:
		c := q.Choices[*a.Choice]
		return c.Label + " (" + c.Description + ")"
	case KindNumber:
		return strconv.FormatFloat(*a.Number, 'g', -1, 64)
	}
	return ""
}

// renderDefault formats the substituted Auto answer of a timed-out
// question.
func renderDefault(q *Question) string {
	switch q.Kind {
	case KindIXVerify:
		return "accept all (timeout)"
	case KindProjection:
		return "keep all (timeout)"
	case KindChoice:
		c := q.Choices[0]
		return c.Label + " (" + c.Description + ") (timeout)"
	case KindNumber:
		return strconv.FormatFloat(q.Default, 'g', -1, 64) + " (timeout)"
	}
	return ""
}

func renderFlags(flags []bool, name func(int) string) string {
	parts := make([]string, len(flags))
	for i, f := range flags {
		v := "no"
		if f {
			v = "yes"
		}
		parts[i] = name(i) + "=" + v
	}
	return strings.Join(parts, ", ")
}

// StageName is the Observer stage label for one interaction point's
// dialogue wait (e.g. "User Dialogue (disambiguation)"), keeping session
// metrics in the same namespace as the pipeline's Stage* constants.
func StageName(p interact.Point) string {
	return "User Dialogue (" + p.String() + ")"
}

// bridge adapts a Session to interact.Interactor: each method builds the
// typed question, parks on ask, and converts the answer (or the Auto
// fallback) back to the pipeline's types.
type bridge struct{ s *Session }

// VerifyIXs implements interact.Interactor.
func (b bridge) VerifyIXs(ctx context.Context, question string, spans []interact.IXSpan) ([]bool, error) {
	q := &Question{
		Point:   interact.PointIXVerification,
		Kind:    KindIXVerify,
		Prompt:  "Please verify: which parts of your question should be asked to the crowd?",
		Subject: question,
		Spans:   spans,
	}
	a, answered, err := b.s.ask(ctx, q)
	if err != nil {
		return nil, err
	}
	if !answered {
		return interact.Auto{}.VerifyIXs(ctx, question, spans)
	}
	return a.Accept, nil
}

// Disambiguate implements interact.Interactor.
func (b bridge) Disambiguate(ctx context.Context, phrase string, options []interact.Choice) (int, error) {
	q := &Question{
		Point:   interact.PointDisambiguation,
		Kind:    KindChoice,
		Prompt:  fmt.Sprintf("Which %q did you mean?", phrase),
		Subject: phrase,
		Choices: options,
	}
	a, answered, err := b.s.ask(ctx, q)
	if err != nil {
		return -1, err
	}
	if !answered {
		return interact.Auto{}.Disambiguate(ctx, phrase, options)
	}
	return *a.Choice, nil
}

// SelectTopK implements interact.Interactor.
func (b bridge) SelectTopK(ctx context.Context, desc string, def int) (int, error) {
	q := &Question{
		Point:   interact.PointSignificance,
		Kind:    KindNumber,
		Prompt:  fmt.Sprintf("How many results for %s?", desc),
		Subject: desc,
		Default: float64(def),
		Min:     1,
		Integer: true,
	}
	a, answered, err := b.s.ask(ctx, q)
	if err != nil {
		return 0, err
	}
	if !answered {
		return def, nil
	}
	return int(*a.Number), nil
}

// SelectThreshold implements interact.Interactor.
func (b bridge) SelectThreshold(ctx context.Context, desc string, def float64) (float64, error) {
	q := &Question{
		Point:   interact.PointSignificance,
		Kind:    KindNumber,
		Prompt:  fmt.Sprintf("Minimal frequency for %s, between 0 and 1?", desc),
		Subject: desc,
		Default: def,
		Min:     0,
		Max:     1,
	}
	a, answered, err := b.s.ask(ctx, q)
	if err != nil {
		return 0, err
	}
	if !answered {
		return def, nil
	}
	return *a.Number, nil
}

// SelectProjection implements interact.Interactor.
func (b bridge) SelectProjection(ctx context.Context, choices []interact.VarChoice) ([]bool, error) {
	q := &Question{
		Point:  interact.PointProjection,
		Kind:   KindProjection,
		Prompt: "For which terms do you want to receive instances?",
		Vars:   choices,
	}
	a, answered, err := b.s.ask(ctx, q)
	if err != nil {
		return nil, err
	}
	if !answered {
		return interact.Auto{}.SelectProjection(ctx, choices)
	}
	return a.Accept, nil
}

var _ interact.Interactor = bridge{}
