package session

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"nl2cm/internal/core"
	"nl2cm/internal/interact"
)

// Config configures a Manager. The zero value of every optional field
// has a sensible default (see the constants below); Translator is
// required.
type Config struct {
	// Translator runs the translations; it must be safe for concurrent
	// use (core.Translator is).
	Translator *core.Translator
	// Policy selects the active interaction points. A policy with a nil
	// Ask map defaults to interact.Interactive() — an all-points session
	// is the reason to open one.
	Policy interact.Policy
	// Capacity bounds live sessions; at capacity, starting a new session
	// evicts first any terminal session, then the oldest-idle live one
	// (its context is cancelled, unwinding the parked pipeline).
	Capacity int
	// TTL bounds a session's total lifetime, answered or not. The
	// session's context carries the deadline, so expiry needs no
	// janitor: the parked pipeline unwinds by itself.
	TTL time.Duration
	// QuestionTimeout bounds each question's wait; past it, the Auto
	// answer is substituted and the translation continues.
	QuestionTimeout time.Duration
	// Trace collects the admin-mode module trace in each session result.
	Trace bool
	// Observer, when non-nil, receives the pipeline's per-stage
	// callbacks plus one synthetic stage per dialogue question (see
	// StageName). It is shared by all sessions and must be safe for
	// concurrent use.
	Observer core.Observer
	// OnDone, when non-nil, is called (on the session's goroutine) after
	// a session reaches a terminal state — the daemon uses it to snapshot
	// results and schedule feedback flushes.
	OnDone func(*Session)
}

// Config defaults.
const (
	DefaultCapacity        = 256
	DefaultTTL             = 10 * time.Minute
	DefaultQuestionTimeout = 2 * time.Minute
)

// Manager owns every live dialogue session: creation, lookup, eviction,
// expiry sweeping, shutdown, and the per-point dialogue metrics. All
// methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool
	stats    stats

	running atomic.Int64 // live translation goroutines (leak check hook)
	wg      sync.WaitGroup
}

// stats accumulates manager-lifetime counters; guarded by Manager.mu.
type stats struct {
	Started, Completed, Failed, Expired, Evicted uint64
	points                                       [4]pointStats
}

type pointStats struct {
	Asked, Answered, TimedOut, Aborted uint64
	TotalWait                          time.Duration
}

// PointMetrics is one interaction point's dialogue counters.
type PointMetrics struct {
	// Point is the interaction point's name.
	Point string
	// Asked counts questions surfaced to clients; Answered those a user
	// resolved, TimedOut those that fell back to the Auto answer, and
	// Aborted those cancelled with their session.
	Asked, Answered, TimedOut, Aborted uint64
	// TotalWait accumulates the pipeline's parked time across answered
	// questions.
	TotalWait time.Duration
}

// AvgWait is the mean parked time per answered question.
func (p PointMetrics) AvgWait() time.Duration {
	if p.Answered == 0 {
		return 0
	}
	return p.TotalWait / time.Duration(p.Answered)
}

// Metrics is a snapshot of the manager's counters.
type Metrics struct {
	// Started counts sessions ever created; Completed, Failed and
	// Expired partition the finished ones, and Evicted counts sessions
	// (live or terminal) removed to make room or by deletion.
	Started, Completed, Failed, Expired, Evicted uint64
	// Live is the number of sessions currently in the table.
	Live int
	// Points holds one entry per interaction point, in pipeline order.
	Points []PointMetrics
}

// NewManager builds a Manager over the config, applying defaults.
func NewManager(cfg Config) *Manager {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.QuestionTimeout <= 0 {
		cfg.QuestionTimeout = DefaultQuestionTimeout
	}
	if cfg.Policy.Ask == nil {
		cfg.Policy = interact.Interactive()
	}
	return &Manager{cfg: cfg, sessions: map[string]*Session{}}
}

// Start creates a session and launches its translation. The returned
// session is already registered; its first question (if any) appears
// asynchronously — use Session.WaitQuestion to meet it.
func (m *Manager) Start(question string) (*Session, error) {
	now := time.Now()
	s := &Session{
		id:      newID(),
		mgr:     m,
		created: now,
		expires: now.Add(m.cfg.TTL),
		done:    make(chan struct{}),
		state:   StateRunning,
		changed: make(chan struct{}),
	}
	s.lastActive = now
	ctx, cancel := context.WithDeadline(context.Background(), s.expires)
	s.cancel = cancel

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	m.sweepLocked(now)
	for len(m.sessions) >= m.cfg.Capacity {
		m.evictLocked()
	}
	m.sessions[s.id] = s
	m.stats.Started++
	m.mu.Unlock()

	m.wg.Add(1)
	m.running.Add(1)
	go m.run(ctx, s, question)
	return s, nil
}

// run is the session's translation goroutine: it drives the pipeline
// through the channel bridge and records the terminal state.
func (m *Manager) run(ctx context.Context, s *Session, question string) {
	defer m.wg.Done()
	defer m.running.Add(-1)
	defer s.cancel()

	res, err := m.cfg.Translator.Translate(ctx, question, core.Options{
		Interactor: bridge{s},
		Policy:     m.cfg.Policy,
		Trace:      m.cfg.Trace,
		Observer:   m.cfg.Observer,
	})

	s.mu.Lock()
	s.pending, s.answerCh = nil, nil
	switch {
	case err == nil:
		s.state = StateDone
		s.result = res
	case ctx.Err() != nil:
		// TTL expiry, eviction or deletion: the session's own context
		// ended the translation.
		s.state = StateExpired
		s.err = err
	default:
		s.state = StateFailed
		s.err = err
	}
	state := s.state
	s.notifyLocked()
	s.mu.Unlock()
	close(s.done)

	m.mu.Lock()
	switch state {
	case StateDone:
		m.stats.Completed++
	case StateFailed:
		m.stats.Failed++
	default:
		m.stats.Expired++
	}
	m.mu.Unlock()

	if m.cfg.OnDone != nil {
		m.cfg.OnDone(s)
	}
}

// Get returns the session, sweeping expired entries first so a client
// polling a dead session sees a clean 404 rather than a stale expired
// record lingering forever.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(time.Now())
	s, ok := m.sessions[id]
	return s, ok
}

// Delete removes the session and cancels its translation. It reports
// whether the session existed.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.stats.Evicted++
	}
	m.mu.Unlock()
	if ok {
		s.cancel()
	}
	return ok
}

// sweepLocked drops sessions whose TTL has passed; their contexts have
// already fired, so the runner goroutines are unwinding on their own.
func (m *Manager) sweepLocked(now time.Time) {
	for id, s := range m.sessions {
		if now.After(s.expires) {
			delete(m.sessions, id)
		}
	}
}

// evictLocked removes one session to make room: a terminal one if any
// exists, otherwise the live session idle the longest.
func (m *Manager) evictLocked() {
	var victim *Session
	victimTerminal := false
	var victimIdle time.Time
	for _, s := range m.sessions {
		s.mu.Lock()
		terminal := s.state.Terminal()
		idle := s.lastActive
		s.mu.Unlock()
		switch {
		case victim == nil,
			terminal && !victimTerminal,
			terminal == victimTerminal && idle.Before(victimIdle):
			victim, victimTerminal, victimIdle = s, terminal, idle
		}
	}
	if victim == nil {
		return
	}
	delete(m.sessions, victim.id)
	m.stats.Evicted++
	victim.cancel() // no-op for terminal sessions, aborts live ones
}

// Close cancels every session and waits for all translation goroutines
// to exit. Further Starts fail with ErrClosed.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	for id, s := range m.sessions {
		delete(m.sessions, id)
		s.cancel()
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// Running reports the number of live translation goroutines — the hook
// for goroutine-leak assertions in tests.
func (m *Manager) Running() int64 { return m.running.Load() }

// Metrics returns a snapshot of the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		Started:   m.stats.Started,
		Completed: m.stats.Completed,
		Failed:    m.stats.Failed,
		Expired:   m.stats.Expired,
		Evicted:   m.stats.Evicted,
		Live:      len(m.sessions),
	}
	for i, p := range m.stats.points {
		out.Points = append(out.Points, PointMetrics{
			Point:     interact.Point(i).String(),
			Asked:     p.Asked,
			Answered:  p.Answered,
			TimedOut:  p.TimedOut,
			Aborted:   p.Aborted,
			TotalWait: p.TotalWait,
		})
	}
	return out
}

func (m *Manager) pointAsked(p interact.Point) {
	m.mu.Lock()
	m.stats.points[p].Asked++
	m.mu.Unlock()
}

func (m *Manager) pointAnswered(p interact.Point, wait time.Duration) {
	m.mu.Lock()
	m.stats.points[p].Answered++
	m.stats.points[p].TotalWait += wait
	m.mu.Unlock()
}

func (m *Manager) pointTimedOut(p interact.Point) {
	m.mu.Lock()
	m.stats.points[p].TimedOut++
	m.mu.Unlock()
}

func (m *Manager) pointAborted(p interact.Point) {
	m.mu.Lock()
	m.stats.points[p].Aborted++
	m.mu.Unlock()
}

// newID returns an unguessable session id (the id is the only
// credential a dialogue has).
func newID() string {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("session: id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
