package session

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"nl2cm/internal/core"
	"nl2cm/internal/interact"
	"nl2cm/internal/ontology"
)

// demoOnto is shared read-only across tests (building it is the
// expensive part of a Manager).
var (
	demoOnto     *ontology.Ontology
	demoOntoOnce sync.Once
)

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	demoOntoOnce.Do(func() { demoOnto = ontology.NewDemoOntology() })
	if cfg.Translator == nil {
		cfg.Translator = core.New(demoOnto)
	}
	m := NewManager(cfg)
	t.Cleanup(m.Close)
	return m
}

const buffaloQ = "Where do you visit in Buffalo?"

// answerFor builds a valid answer for any question: accept/keep all,
// pick the choice whose description contains wantChoice (first option
// if empty), defaults for numbers.
func answerFor(q *Question, wantChoice string) Answer {
	switch q.Kind {
	case KindIXVerify:
		a := make([]bool, len(q.Spans))
		for i := range a {
			a[i] = true
		}
		return Answer{Accept: a}
	case KindProjection:
		a := make([]bool, len(q.Vars))
		for i := range a {
			a[i] = true
		}
		return Answer{Accept: a}
	case KindChoice:
		c := 0
		for i, opt := range q.Choices {
			if wantChoice != "" && strings.Contains(opt.Description, wantChoice) {
				c = i
				break
			}
		}
		return Answer{Choice: &c}
	case KindNumber:
		n := q.Default
		return Answer{Number: &n}
	}
	return Answer{}
}

// drive answers every question of the session (choosing wantChoice on
// disambiguations) until it is terminal, and returns the final snapshot.
func drive(t *testing.T, s *Session, wantChoice string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap := s.WaitQuestion(context.Background(), time.Until(deadline))
		if snap.State.Terminal() {
			return snap
		}
		if snap.Question == nil {
			t.Fatalf("session %s neither terminal nor waiting: %+v", s.ID(), snap)
		}
		if err := s.Answer(snap.Question.ID, answerFor(snap.Question, wantChoice)); err != nil &&
			!errors.Is(err, ErrNoPending) && !errors.Is(err, ErrWrongQuestion) {
			t.Fatalf("Answer: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s did not finish", s.ID())
		}
	}
}

// TestFullDialogue walks the paper's Figures 3–6 flow over the session
// API: IX verification, the Buffalo disambiguation, significance,
// projection — and checks the answered choice trains the feedback store.
func TestFullDialogue(t *testing.T) {
	tr := core.New(ontology.NewDemoOntology())
	m := newManager(t, Config{Translator: tr})
	s, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}

	// First question: IX verification with at least one span.
	snap := s.WaitQuestion(context.Background(), 10*time.Second)
	if snap.State != StateWaiting || snap.Question == nil {
		t.Fatalf("state = %s, question = %+v", snap.State, snap.Question)
	}
	if snap.Question.Kind != KindIXVerify || len(snap.Question.Spans) == 0 {
		t.Fatalf("first question = %+v, want ix-verify with spans", snap.Question)
	}

	final := drive(t, s, "Illinois")
	if final.State != StateDone {
		t.Fatalf("final state = %s (err %s)", final.State, final.Error)
	}
	if !strings.Contains(final.Query, "Buffalo,_IL") {
		t.Errorf("query did not use the chosen entity:\n%s", final.Query)
	}
	if len(final.Turns) < 3 {
		t.Errorf("transcript has %d turns, want the full dialogue", len(final.Turns))
	}
	for _, turn := range final.Turns {
		if turn.Source != "user" {
			t.Errorf("turn %+v not answered by user", turn.Question.Prompt)
		}
	}
	// The disambiguation trained the shared feedback store.
	boosted := false
	for _, c := range tr.Generator.RankCandidates("Buffalo") {
		if strings.Contains(c.Description, "Illinois") {
			boosted = tr.Generator.Feedback.Boost("Buffalo", c.Term) > 0
		}
	}
	if !boosted {
		t.Error("answered disambiguation did not record feedback")
	}

	mt := m.Metrics()
	if mt.Completed != 1 || mt.Started != 1 {
		t.Errorf("metrics = %+v", mt)
	}
	var dis PointMetrics
	for _, p := range mt.Points {
		if p.Point == interact.PointDisambiguation.String() {
			dis = p
		}
	}
	if dis.Asked != 1 || dis.Answered != 1 || dis.AvgWait() <= 0 {
		t.Errorf("disambiguation metrics = %+v", dis)
	}
}

// TestQuestionTimeoutFallsBackToAuto is the degradation regression: an
// unanswered question times out to the Auto answer and the session still
// completes with a query.
func TestQuestionTimeoutFallsBackToAuto(t *testing.T) {
	m := newManager(t, Config{QuestionTimeout: 20 * time.Millisecond})
	s, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("session did not complete on auto fallbacks")
	}
	snap := s.Snapshot()
	if snap.State != StateDone {
		t.Fatalf("state = %s (err %s)", snap.State, snap.Error)
	}
	if !strings.Contains(snap.Query, "Buffalo,_NY") {
		t.Errorf("auto fallback did not pick the top candidate:\n%s", snap.Query)
	}
	var timedOut uint64
	for _, p := range m.Metrics().Points {
		timedOut += p.TimedOut
	}
	if timedOut == 0 {
		t.Error("no question counted as timed out")
	}
	for _, turn := range snap.Turns {
		if turn.Source != "auto" {
			t.Errorf("turn %q source = %s, want auto", turn.Question.Prompt, turn.Source)
		}
	}
}

// TestAnswerValidation exercises the typed protocol errors.
func TestAnswerValidation(t *testing.T) {
	m := newManager(t, Config{})
	s, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.WaitQuestion(context.Background(), 10*time.Second)
	if snap.Question == nil {
		t.Fatalf("no pending question: %+v", snap)
	}
	q := snap.Question

	if err := s.Answer(q.ID+7, answerFor(q, "")); !errors.Is(err, ErrWrongQuestion) {
		t.Errorf("stale id err = %v", err)
	}
	if err := s.Answer(q.ID, Answer{Accept: make([]bool, len(q.Spans)+1)}); !errors.Is(err, ErrBadAnswer) {
		t.Errorf("shape mismatch err = %v", err)
	}
	// Malformed answers left the question pending; a correct one lands.
	if err := s.Answer(q.ID, answerFor(q, "")); err != nil {
		t.Errorf("valid answer rejected: %v", err)
	}
	if err := s.Answer(q.ID, answerFor(q, "")); !errors.Is(err, ErrNoPending) && !errors.Is(err, ErrWrongQuestion) {
		t.Errorf("double answer err = %v", err)
	}

	final := drive(t, s, "")
	if final.State != StateDone {
		t.Fatalf("final state = %s", final.State)
	}
	if err := s.Answer(0, Answer{}); !errors.Is(err, ErrNoPending) {
		t.Errorf("answer after done err = %v", err)
	}
}

// TestNumberValidation checks numeric bounds for significance questions.
func TestNumberValidation(t *testing.T) {
	q := &Question{Kind: KindNumber, Min: 0, Max: 1}
	bad := 1.5
	if err := validateAnswer(q, Answer{Number: &bad}); !errors.Is(err, ErrBadAnswer) {
		t.Errorf("out-of-range threshold err = %v", err)
	}
	if err := validateAnswer(q, Answer{}); !errors.Is(err, ErrBadAnswer) {
		t.Errorf("missing number err = %v", err)
	}
	qi := &Question{Kind: KindNumber, Min: 1, Integer: true}
	frac := 2.5
	if err := validateAnswer(qi, Answer{Number: &frac}); !errors.Is(err, ErrBadAnswer) {
		t.Errorf("fractional top-k err = %v", err)
	}
	ok := 3.0
	if err := validateAnswer(qi, Answer{Number: &ok}); err != nil {
		t.Errorf("valid top-k rejected: %v", err)
	}
	qc := &Question{Kind: KindChoice, Choices: []interact.Choice{{Label: "a"}}}
	if err := validateAnswer(qc, Answer{}); !errors.Is(err, ErrBadAnswer) {
		t.Errorf("missing choice err = %v", err)
	}
}

// TestSessionTTLExpiry: an abandoned session expires, its goroutine
// exits, and the manager forgets it.
func TestSessionTTLExpiry(t *testing.T) {
	m := newManager(t, Config{TTL: 50 * time.Millisecond})
	s, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-s.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("abandoned session did not expire")
	}
	snap := s.Snapshot()
	if snap.State != StateExpired {
		t.Fatalf("state = %s, want expired", snap.State)
	}
	// The pipeline unwound with a stage-attributed deadline error
	// (Snapshot carries it as text).
	if !strings.Contains(snap.Error, "context deadline exceeded") || !strings.Contains(snap.Error, "nl2cm:") {
		t.Errorf("expiry error = %q, want a stage-attributed deadline cause", snap.Error)
	}
	// After the TTL, the session is swept from the table.
	if _, ok := m.Get(s.ID()); ok {
		t.Error("expired session still retrievable")
	}
	if m.Metrics().Expired != 1 {
		t.Errorf("metrics = %+v", m.Metrics())
	}
}

// TestDeleteAbortsSession: DELETE cancels the parked pipeline promptly.
func TestDeleteAbortsSession(t *testing.T) {
	m := newManager(t, Config{})
	s, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}
	s.WaitQuestion(context.Background(), 10*time.Second) // parked on Q1
	if !m.Delete(s.ID()) {
		t.Fatal("Delete found nothing")
	}
	select {
	case <-s.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("deleted session still running")
	}
	if st := s.Snapshot().State; st != StateExpired {
		t.Errorf("state after delete = %s", st)
	}
	if _, ok := m.Get(s.ID()); ok {
		t.Error("deleted session still retrievable")
	}
	if m.Delete(s.ID()) {
		t.Error("double delete succeeded")
	}
}

// TestCapacityEviction: at capacity, the oldest-idle session is evicted
// (cancelled) to admit the newcomer.
func TestCapacityEviction(t *testing.T) {
	m := newManager(t, Config{Capacity: 2})
	s1, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}
	s1.WaitQuestion(context.Background(), 10*time.Second)
	time.Sleep(5 * time.Millisecond) // order lastActive
	s2, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}
	s2.WaitQuestion(context.Background(), 10*time.Second)
	s3, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}
	// s1 was idle longest: evicted and cancelled.
	select {
	case <-s1.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("evicted session still running")
	}
	if st := s1.Snapshot().State; st != StateExpired {
		t.Errorf("evicted session state = %s", st)
	}
	if _, ok := m.Get(s1.ID()); ok {
		t.Error("evicted session still retrievable")
	}
	for _, s := range []*Session{s2, s3} {
		if _, ok := m.Get(s.ID()); !ok {
			t.Errorf("session %s missing", s.ID())
		}
	}
	if m.Metrics().Evicted != 1 {
		t.Errorf("metrics = %+v", m.Metrics())
	}
}

// TestStartAfterClose: a closed manager refuses new sessions.
func TestStartAfterClose(t *testing.T) {
	m := newManager(t, Config{})
	m.Close()
	if _, err := m.Start(buffaloQ); !errors.Is(err, ErrClosed) {
		t.Errorf("Start after Close err = %v", err)
	}
}

// TestObserverSeesDialogueStages: every parked question emits a
// StageName stage through the configured Observer.
func TestObserverSeesDialogueStages(t *testing.T) {
	var mu sync.Mutex
	stages := map[string]time.Duration{}
	obs := core.ObserverFunc(func(stage string, d time.Duration, err error) {
		mu.Lock()
		stages[stage] += d
		mu.Unlock()
	})
	m := newManager(t, Config{Observer: obs})
	s, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}
	if final := drive(t, s, ""); final.State != StateDone {
		t.Fatalf("state = %s", final.State)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, p := range []interact.Point{interact.PointIXVerification, interact.PointDisambiguation} {
		if stages[StageName(p)] <= 0 {
			t.Errorf("observer missed stage %q (saw %v)", StageName(p), stages)
		}
	}
	// The pipeline's own stages still flow through the same observer.
	if stages[core.StageParser] <= 0 {
		t.Errorf("observer missed pipeline stage %q", core.StageParser)
	}
}

// TestUnsupportedQuestion: a rejected question terminates with the
// verdict, not an error.
func TestUnsupportedQuestion(t *testing.T) {
	m := newManager(t, Config{})
	s, err := m.Start("Why is the sky blue?")
	if err != nil {
		t.Fatal(err)
	}
	snap := s.WaitQuestion(context.Background(), 10*time.Second)
	if snap.State != StateDone || !snap.Unsupported || snap.Reason == "" {
		t.Errorf("snapshot = %+v", snap)
	}
}
