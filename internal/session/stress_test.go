package session

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestSessionStress drives many concurrent sessions with interleaved
// answers, deliberate abandonment (question timeout), deletion, and a
// capacity small enough to force eviction — the -race gate for the whole
// subsystem. Every session must reach a terminal state and no
// translation goroutine may survive Close.
func TestSessionStress(t *testing.T) {
	const n = 24
	m := newManager(t, Config{
		Capacity:        n / 2, // force eviction under load
		TTL:             5 * time.Second,
		QuestionTimeout: 100 * time.Millisecond,
	})
	questions := []string{
		buffaloQ,
		"What are the most interesting places near Forest Hotel, Buffalo, we should visit in the fall?",
		"Which hotel in Vegas has the best thrill ride?",
	}
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			s, err := m.Start(questions[i%len(questions)])
			if err != nil {
				errs <- fmt.Errorf("worker %d: %w", i, err)
				return
			}
			switch i % 4 {
			case 0: // answer everything
				for {
					snap := s.WaitQuestion(context.Background(), 10*time.Second)
					if snap.State.Terminal() {
						errs <- nil
						return
					}
					if snap.Question == nil {
						errs <- fmt.Errorf("worker %d: stuck without question", i)
						return
					}
					err := s.Answer(snap.Question.ID, answerFor(snap.Question, "Illinois"))
					if err != nil && !errors.Is(err, ErrNoPending) && !errors.Is(err, ErrWrongQuestion) {
						errs <- fmt.Errorf("worker %d: %w", i, err)
						return
					}
				}
			case 1: // answer the first question, then abandon (timeouts finish it)
				snap := s.WaitQuestion(context.Background(), 10*time.Second)
				if snap.Question != nil {
					s.Answer(snap.Question.ID, answerFor(snap.Question, ""))
				}
				errs <- nil
			case 2: // delete mid-dialogue
				s.WaitQuestion(context.Background(), 10*time.Second)
				m.Delete(s.ID())
				errs <- nil
			default: // abandon immediately
				errs <- nil
			}
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Abandoned sessions finish on question timeouts well inside the TTL.
	waitRunnersGone(t, m, 15*time.Second)
	mt := m.Metrics()
	if mt.Started != n {
		t.Errorf("started = %d, want %d", mt.Started, n)
	}
	if mt.Completed+mt.Failed+mt.Expired != n {
		t.Errorf("terminal states %d+%d+%d don't cover %d sessions",
			mt.Completed, mt.Failed, mt.Expired, n)
	}
	if mt.Failed != 0 {
		t.Errorf("%d sessions failed", mt.Failed)
	}
}

// TestAbandonedSessionsLeakNoGoroutines is the acceptance check: 100
// sessions are started and abandoned mid-dialogue; after expiry,
// eviction and cancellation, no parked translation goroutine remains.
func TestAbandonedSessionsLeakNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	m := newManager(t, Config{
		Capacity:        40, // forces eviction of live sessions
		TTL:             300 * time.Millisecond,
		QuestionTimeout: 10 * time.Second, // > TTL: only expiry can unpark
	})
	for i := 0; i < 100; i++ {
		s, err := m.Start(buffaloQ)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			// A third get explicitly deleted rather than expiring.
			go func() {
				s.WaitQuestion(context.Background(), 2*time.Second)
				m.Delete(s.ID())
			}()
		}
	}
	waitRunnersGone(t, m, 20*time.Second)
	m.Close() // idempotent with Cleanup; flushes the table
	// Let auxiliary goroutines (test helpers) drain before comparing.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines grew %d -> %d after abandoning 100 sessions\n%s",
			before, after, buf[:runtime.Stack(buf, true)])
	}
}

// waitRunnersGone polls Manager.Running until every translation
// goroutine has exited.
func waitRunnersGone(t *testing.T, m *Manager, max time.Duration) {
	t.Helper()
	deadline := time.Now().Add(max)
	for m.Running() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d translation goroutines still parked", m.Running())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentAnswersOneSession hammers a single session with racing
// answer attempts; exactly the valid ones land and the session still
// completes.
func TestConcurrentAnswersOneSession(t *testing.T) {
	m := newManager(t, Config{})
	s, err := m.Start(buffaloQ)
	if err != nil {
		t.Fatal(err)
	}
	for {
		snap := s.WaitQuestion(context.Background(), 10*time.Second)
		if snap.State.Terminal() {
			if snap.State != StateDone {
				t.Fatalf("state = %s (%s)", snap.State, snap.Error)
			}
			if !strings.Contains(snap.Query, "SATISFYING") {
				t.Errorf("query = %q", snap.Query)
			}
			return
		}
		q := snap.Question
		done := make(chan error, 8)
		for w := 0; w < 8; w++ {
			go func() { done <- s.Answer(q.ID, answerFor(q, "")) }()
		}
		landed := 0
		for w := 0; w < 8; w++ {
			if err := <-done; err == nil {
				landed++
			} else if !errors.Is(err, ErrNoPending) && !errors.Is(err, ErrWrongQuestion) {
				t.Fatalf("unexpected answer error: %v", err)
			}
		}
		if landed != 1 {
			t.Fatalf("%d answers landed for one question", landed)
		}
	}
}
