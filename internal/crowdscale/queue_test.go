package crowdscale

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// slowSource answers 0.5 after a delay — constant answers keep the
// interval straddling a 0.5 threshold until full sampling, so decisions
// stay in flight long enough to cancel.
type slowSource struct {
	n     int
	delay time.Duration
}

func (s *slowSource) Size() int { return s.n }
func (s *slowSource) Batch(key string, from int, out []float64) {
	time.Sleep(s.delay)
	for i := range out {
		out[i] = 0.5
	}
}

func TestQueueCancelAndCloseNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	x := New(&slowSource{n: 1 << 20, delay: 2 * time.Millisecond},
		Config{Workers: 2, QueueDepth: 2, InitialBatch: 8})
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := x.DecideThreshold(ctx, []string{"a", "b", "c", "d", "e", "f"}, 0.5, 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled decide returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("decide did not return after cancel")
	}
	x.Close()
	x.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelledEnqueueDoesNotPoisonState drives decisions into enqueue
// failures (tiny full queue + cancelled contexts) and then checks the
// shared sampling states are still completable: a reservation whose
// enqueue failed must be rolled back or re-dispatched, or the key could
// never reach full sampling and every later decision on it would hang.
func TestCancelledEnqueueDoesNotPoisonState(t *testing.T) {
	// Constant 0.5 answers against threshold 0.5 decide only at full
	// sampling, so the follow-up decide must cover every member —
	// including any range a cancelled round reserved but never ran.
	src := &slowSource{n: 3000, delay: time.Millisecond}
	x := New(src, Config{Workers: 1, QueueDepth: 1, InitialBatch: 8, Rule: RuleExact})
	defer x.Close()
	keys := []string{"a", "b", "c", "d", "e", "f"}
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, err := x.DecideThreshold(ctx, keys, 0.5, 0)
			errc <- err
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled decide returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cancelled decide did not return")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	decs, err := x.DecideThreshold(ctx, keys, 0.5, 0)
	if err != nil {
		t.Fatalf("post-cancel decide on the same keys failed: %v", err)
	}
	for _, d := range decs {
		if !d.Significant || !d.Exact {
			t.Fatalf("key %s decided %+v, want exact significant at support 0.5", d.Key, d)
		}
	}
	// Exhaustive supports double as an overlap check: a re-dispatched
	// range applied twice would push the mean above 0.5.
	sup, err := x.Supports(ctx, keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sup {
		if s != 0.5 {
			t.Fatalf("key %s support %v after cancellations, want exactly 0.5", keys[i], s)
		}
	}
}

func TestQueueClosedExecutorErrors(t *testing.T) {
	x := New(&slowSource{n: 1000, delay: 0}, Config{Workers: 1})
	x.Close()
	if _, err := x.DecideThreshold(context.Background(), []string{"a"}, 0.5, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("DecideThreshold after Close = %v, want ErrClosed", err)
	}
	if _, err := x.DecideTopK(context.Background(), []string{"a", "b"}, 1, true, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("DecideTopK after Close = %v, want ErrClosed", err)
	}
	if _, err := x.Supports(context.Background(), []string{"a"}, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Supports after Close = %v, want ErrClosed", err)
	}
}

func TestQueueBackpressureCompletes(t *testing.T) {
	// Queue depth 1 with one worker: producers must block and resume
	// without deadlock.
	p := &Population{N: 5000, Seed: 1, Truth: map[string]float64{"hot": 0.9, "cold": 0.1}}
	x := New(p, Config{Workers: 1, QueueDepth: 1, InitialBatch: 16, Rule: RuleExact})
	defer x.Close()
	decs, err := x.DecideThreshold(context.Background(), []string{"hot", "cold", "k1", "k2", "k3"}, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !decs[0].Significant || decs[1].Significant {
		t.Fatalf("hot/cold decided %v/%v", decs[0].Significant, decs[1].Significant)
	}
	if st := x.Stats(); st.QueueHighWater < 1 {
		t.Fatalf("queue high water %d, want >= 1", st.QueueHighWater)
	}
}

func TestQueueConcurrentDecidesAndReset(t *testing.T) {
	p := &Population{N: 20000, Seed: 2}
	x := New(p, Config{Workers: 4, QueueDepth: 8, InitialBatch: 64})
	defer x.Close()
	keys := []string{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for r := 0; r < 5; r++ {
				switch (g + r) % 4 {
				case 0:
					if _, err := x.DecideThreshold(ctx, keys, 0.4, 0); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := x.DecideTopK(ctx, keys, 2, true, 0); err != nil {
						t.Error(err)
					}
				case 2:
					if _, err := x.Supports(ctx, keys[:2], 1000); err != nil {
						t.Error(err)
					}
				case 3:
					x.Reset()
					x.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := x.Stats()
	if st.TasksDecided == 0 || st.MemberAnswers == 0 {
		t.Fatalf("no work recorded: %+v", st)
	}
}

func TestStatsMonotonicAcrossReset(t *testing.T) {
	p := &Population{N: 2000, Seed: 4, Truth: map[string]float64{"k": 0.8}}
	x := New(p, Config{Workers: 2})
	defer x.Close()
	if _, err := x.DecideThreshold(context.Background(), []string{"k"}, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	before := x.Stats()
	if before.States != 1 || before.StateMisses != 1 {
		t.Fatalf("unexpected pre-reset stats %+v", before)
	}
	x.Reset()
	mid := x.Stats()
	if mid.States != 0 {
		t.Fatalf("reset kept %d states", mid.States)
	}
	if mid.TasksDecided != before.TasksDecided || mid.MemberAnswers != before.MemberAnswers {
		t.Fatalf("reset rewound counters: %+v -> %+v", before, mid)
	}
	if _, err := x.DecideThreshold(context.Background(), []string{"k"}, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	after := x.Stats()
	if after.StateMisses != before.StateMisses+1 {
		t.Fatalf("post-reset decide should re-create the state: %+v", after)
	}
	if after.MemberAnswers <= mid.MemberAnswers {
		t.Fatal("post-reset decide resampled nothing")
	}
}

func TestStateCacheResume(t *testing.T) {
	p := &Population{N: 100000, Seed: 6, Truth: map[string]float64{"k": 0.9}}
	x := New(p, Config{Workers: 2})
	defer x.Close()
	ctx := context.Background()
	if _, err := x.DecideThreshold(ctx, []string{"k"}, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	mid := x.Stats()
	// Same key, same criterion: the cached state already decides it.
	decs, err := x.DecideThreshold(ctx, []string{"k"}, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	after := x.Stats()
	if after.MemberAnswers != mid.MemberAnswers {
		t.Fatalf("repeat decision sampled %d extra answers", after.MemberAnswers-mid.MemberAnswers)
	}
	if after.StateHits != mid.StateHits+1 {
		t.Fatalf("state hits %d -> %d, want +1", mid.StateHits, after.StateHits)
	}
	if !decs[0].Significant {
		t.Fatal("cached state flipped the decision")
	}
	// A cache-hit decision that sampled nothing must not inflate the
	// early-termination savings: those counters measure sampling work
	// actually avoided in the deciding call.
	if after.TasksDecided != mid.TasksDecided+1 {
		t.Fatalf("tasks decided %d -> %d, want +1", mid.TasksDecided, after.TasksDecided)
	}
	if after.AnswersSaved != mid.AnswersSaved || after.EarlyDecided != mid.EarlyDecided {
		t.Fatalf("cache-hit decision moved savings: saved %d -> %d, early %d -> %d",
			mid.AnswersSaved, after.AnswersSaved, mid.EarlyDecided, after.EarlyDecided)
	}
	// The first decide did sample: it must have recorded its savings.
	if mid.EarlyDecided != 1 || mid.AnswersSaved == 0 {
		t.Fatalf("sampling decide recorded no savings: %+v", mid)
	}
}

func TestMaxStatesEphemeral(t *testing.T) {
	p := &Population{N: 100, Seed: 8}
	x := New(p, Config{Workers: 1, MaxStates: 2})
	defer x.Close()
	ctx := context.Background()
	if _, err := x.DecideThreshold(ctx, []string{"a", "b", "c", "d"}, 0.5, 0); err != nil {
		t.Fatal(err)
	}
	if st := x.Stats(); st.States > 2 {
		t.Fatalf("state cache grew to %d past MaxStates 2", st.States)
	}
}
