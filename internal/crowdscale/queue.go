package crowdscale

import (
	"context"
	"sync"
	"sync/atomic"
)

// Executor owns the streaming crowd-task pipeline: a bounded job queue
// drained by a fixed worker pool, plus the per-task sampling states the
// sequential sampler accumulates into. One Executor is shared across
// executions (and engines); Decide and Supports calls are safe for
// concurrent use, and the bounded queue applies backpressure to all of
// them. Close shuts the pool down; after Close every call returns
// ErrClosed.
type Executor struct {
	src Source
	cfg Config

	jobs      chan job
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// mu guards states and every taskState field.
	mu     sync.Mutex
	states map[stateKey]*taskState

	// Monotonic counters (see Stats).
	tasks, batches, answers, saved    atomic.Uint64
	early, full, stateHits, stateMiss atomic.Uint64
	queueHW                           atomic.Int64
}

// job asks a worker to answer members [from, to) of one task key and
// fold the partial sum into the task's sampling state. reply is buffered
// by the dispatching round so workers never block on it.
type job struct {
	key      string
	st       *taskState
	from, to int
	reply    chan<- struct{}
}

// stateKey identifies one sampling state: the fact key under one
// effective population size (engines with different SampleSize limits
// must not share partial sums).
type stateKey struct {
	key  string
	effN int
}

// taskState is the incremental support aggregation for one task:
// sampled answers so far, their sum, the reserved (dispatched but
// possibly unapplied) range end, the next batch size, and any reserved
// ranges whose enqueue failed (gaps). All fields are guarded by
// Executor.mu. Every reserved member is either covered by an enqueued
// job (workers will apply it) or recorded in gaps (the next dispatch
// re-covers it), so ranges never overlap and "sampled == effN" still
// means the support is exhaustive.
type taskState struct {
	sum      float64
	sampled  int
	reserved int
	batch    int
	gaps     [][2]int
}

// reserve returns the next member range to dispatch, capped at limit
// members: a gap left by a failed enqueue if one is pending, else an
// extension of the reserved frontier. frontier reports which; from == to
// means everything up to effN is already reserved. Caller holds
// Executor.mu and must pair a failed enqueue of the range with
// unreserve.
func (st *taskState) reserve(limit, effN int) (from, to int, frontier bool) {
	if n := len(st.gaps); n > 0 {
		g := st.gaps[n-1]
		st.gaps = st.gaps[:n-1]
		return g[0], g[1], false
	}
	from = st.reserved
	to = from + limit
	if to > effN {
		to = effN
	}
	st.reserved = to
	return from, to, true
}

// unreserve rolls back a reservation whose job never made it onto the
// queue, so the range is dispatched again later instead of poisoning the
// state (a reserved range with no job would keep sampled below effN
// forever). If the frontier is still where reserve left it the range is
// un-reserved in place (reported true); otherwise later reservations
// exist beyond it and the range is recorded as a gap. Caller holds
// Executor.mu.
func (st *taskState) unreserve(from, to int) bool {
	if to <= from {
		return false
	}
	if st.reserved == to {
		st.reserved = from
		return true
	}
	st.gaps = append(st.gaps, [2]int{from, to})
	return false
}

// New builds an executor over the source and starts its worker pool.
// Call Close when done with it.
func New(src Source, cfg Config) *Executor {
	x := &Executor{
		src:    src,
		cfg:    cfg,
		jobs:   make(chan job, cfg.queueDepth()),
		done:   make(chan struct{}),
		states: make(map[stateKey]*taskState),
	}
	for w := 0; w < cfg.workers(); w++ {
		x.wg.Add(1)
		go x.worker()
	}
	return x
}

// Close stops the worker pool and waits for it to exit. Jobs still
// queued are abandoned (their rounds observe ErrClosed). Close is
// idempotent and safe to call concurrently with in-flight decisions.
func (x *Executor) Close() {
	x.closeOnce.Do(func() { close(x.done) })
	x.wg.Wait()
}

// Reset drops all cached sampling states, so the next decision
// resamples from scratch — call it after the source's answer behaviour
// changes. Counters are monotonic and not rewound.
func (x *Executor) Reset() {
	x.mu.Lock()
	x.states = make(map[stateKey]*taskState)
	x.mu.Unlock()
}

// Population returns the source's population size.
func (x *Executor) Population() int { return x.src.Size() }

// Stats snapshots the executor's counters.
func (x *Executor) Stats() Stats {
	x.mu.Lock()
	states := len(x.states)
	x.mu.Unlock()
	return Stats{
		TasksDecided:      x.tasks.Load(),
		BatchesDispatched: x.batches.Load(),
		MemberAnswers:     x.answers.Load(),
		AnswersSaved:      x.saved.Load(),
		EarlyDecided:      x.early.Load(),
		FullySampled:      x.full.Load(),
		StateHits:         x.stateHits.Load(),
		StateMisses:       x.stateMiss.Load(),
		States:            states,
		QueueHighWater:    x.queueHW.Load(),
		Workers:           x.cfg.workers(),
		Population:        x.src.Size(),
	}
}

// worker drains the job queue until Close: compute the batch's answers,
// fold the sum into the task state, signal the round.
func (x *Executor) worker() {
	defer x.wg.Done()
	var buf []float64
	for {
		select {
		case <-x.done:
			return
		case j := <-x.jobs:
			if n := j.to - j.from; n > 0 {
				if cap(buf) < n {
					buf = make([]float64, n)
				}
				b := buf[:n]
				x.src.Batch(j.key, j.from, b)
				sum := 0.0
				for _, v := range b {
					sum += v
				}
				x.mu.Lock()
				j.st.sum += sum
				j.st.sampled += n
				x.mu.Unlock()
				x.answers.Add(uint64(n))
				x.batches.Add(1)
			}
			j.reply <- struct{}{}
		}
	}
}

// enqueue submits one job, blocking under backpressure until a queue
// slot frees, the context is cancelled, or the executor closes.
func (x *Executor) enqueue(ctx context.Context, j job) error {
	select {
	case x.jobs <- j:
	default:
		select {
		case x.jobs <- j:
		case <-ctx.Done():
			return ctx.Err()
		case <-x.done:
			return ErrClosed
		}
	}
	if q := int64(len(x.jobs)); q > x.queueHW.Load() {
		// Benign race: HW is a gauge, last-writer-wins is fine.
		x.queueHW.Store(q)
	}
	return nil
}

// state returns the sampling state for (key, effN), creating it on
// demand. A hit means earlier decisions already accumulated answers for
// the key. Beyond MaxStates new states are ephemeral (uncached).
func (x *Executor) state(key string, effN int) *taskState {
	k := stateKey{key: key, effN: effN}
	x.mu.Lock()
	defer x.mu.Unlock()
	if st, ok := x.states[k]; ok {
		x.stateHits.Add(1)
		return st
	}
	x.stateMiss.Add(1)
	st := &taskState{}
	if len(x.states) < x.cfg.maxStates() {
		x.states[k] = st
	}
	return st
}

// round dispatches the next batch for every listed task and waits for
// all of them to be applied. A task whose range is fully reserved (a
// concurrent decision's batches are in flight) gets an empty job, so
// the round still yields and re-checks. Abandoned rounds (cancellation)
// leave their enqueued jobs to complete in the background — reply
// channels are buffered, so workers never block on a gone round — while
// a reservation whose enqueue failed is rolled back so the range is
// re-dispatched rather than lost.
func (x *Executor) round(ctx context.Context, keys []string, sts []*taskState, idxs []int, effN int) error {
	reply := make(chan struct{}, len(idxs))
	sent := 0
	for _, i := range idxs {
		st := sts[i]
		x.mu.Lock()
		b := st.batch
		if b <= 0 {
			b = x.cfg.initialBatch()
		}
		from, to, frontier := st.reserve(b, effN)
		if frontier {
			nb := int(float64(b) * x.cfg.growth())
			if nb > x.cfg.maxBatch() {
				nb = x.cfg.maxBatch()
			}
			st.batch = nb
		}
		x.mu.Unlock()
		if err := x.enqueue(ctx, job{key: keys[i], st: st, from: from, to: to, reply: reply}); err != nil {
			x.mu.Lock()
			if st.unreserve(from, to) && frontier {
				st.batch = b
			}
			x.mu.Unlock()
			return err
		}
		sent++
	}
	for r := 0; r < sent; r++ {
		select {
		case <-reply:
		case <-ctx.Done():
			return ctx.Err()
		case <-x.done:
			return ErrClosed
		}
	}
	return nil
}

// effPop normalizes a caller's effective-population request against the
// source size (<= 0 or too large means the whole population).
func (x *Executor) effPop(effN int) int {
	if n := x.src.Size(); effN <= 0 || effN > n {
		return n
	}
	return effN
}

// Supports fully samples every key (resuming cached states) and returns
// the exact supports — the fixed-sample oracle over the same source,
// batched through the queue so even exhaustive evaluation of a
// million-member population is parallel. Mainly used for differential
// testing and fixed-vs-sequential benchmarks.
func (x *Executor) Supports(ctx context.Context, keys []string, effN int) ([]float64, error) {
	effN = x.effPop(effN)
	out := make([]float64, len(keys))
	if effN == 0 {
		return out, nil
	}
	sts := make([]*taskState, len(keys))
	for i, k := range keys {
		sts[i] = x.state(k, effN)
	}
	chunk := x.cfg.maxBatch()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Dispatch the remaining unreserved ranges (gaps first) in
		// maxBatch chunks, at most pendingCap in flight per drain cycle.
		// The cap is checked before reserving, and a failed enqueue
		// rolls its reservation back: a reserved range must always have
		// a matching job or a recorded gap, or sampling could never
		// complete.
		const pendingCap = 64
		reply := make(chan struct{}, pendingCap)
		sent := 0
	dispatch:
		for i, st := range sts {
			for {
				if sent == pendingCap {
					break dispatch // drain this cycle before reserving more
				}
				x.mu.Lock()
				from, to, _ := st.reserve(chunk, effN)
				x.mu.Unlock()
				if to == from {
					break
				}
				if err := x.enqueue(ctx, job{key: keys[i], st: st, from: from, to: to, reply: reply}); err != nil {
					x.mu.Lock()
					st.unreserve(from, to)
					x.mu.Unlock()
					return nil, err
				}
				sent++
			}
		}
		if sent == 0 {
			// Everything reserved: either applied, or another call's jobs
			// are in flight; enqueue one empty job per pending state to
			// yield, then re-check.
			x.mu.Lock()
			var waiting []int
			for i, st := range sts {
				if st.sampled < effN {
					waiting = append(waiting, i)
				}
			}
			x.mu.Unlock()
			if len(waiting) == 0 {
				break
			}
			reply = make(chan struct{}, len(waiting))
			for _, i := range waiting {
				if err := x.enqueue(ctx, job{key: keys[i], st: sts[i], from: 0, to: 0, reply: reply}); err != nil {
					return nil, err
				}
				sent++
			}
		}
		for r := 0; r < sent; r++ {
			select {
			case <-reply:
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-x.done:
				return nil, ErrClosed
			}
		}
	}
	x.mu.Lock()
	for i, st := range sts {
		out[i] = st.sum / float64(effN)
	}
	x.mu.Unlock()
	for range keys {
		x.tasks.Add(1)
		x.full.Add(1)
	}
	return out, nil
}
