package crowdscale

import (
	"math"
	"testing"
)

func TestPopulationDeterministic(t *testing.T) {
	p := &Population{N: 1000, Seed: 42, Skew: 1.5, SpamFraction: 0.1, Segments: 4, SegmentBias: 0.1}
	q := &Population{N: 1000, Seed: 42, Skew: 1.5, SpamFraction: 0.1, Segments: 4, SegmentBias: 0.1}
	a := make([]float64, 1000)
	b := make([]float64, 1000)
	for _, key := range []string{"likes(child,gymboree)", "visit(park)", "x"} {
		p.Batch(key, 0, a)
		q.Batch(key, 0, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("key %q member %d: %v != %v", key, i, a[i], b[i])
			}
			if a[i] < 0 || a[i] > 1 {
				t.Fatalf("key %q member %d: answer %v out of [0,1]", key, i, a[i])
			}
			if got := p.Answer(i, key); got != a[i] {
				t.Fatalf("Answer(%d) = %v, Batch gave %v", i, got, a[i])
			}
		}
	}
	r := &Population{N: 1000, Seed: 43}
	r.Batch("x", 0, b)
	p2 := &Population{N: 1000, Seed: 42}
	p2.Batch("x", 0, a)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produced %d/1000 identical answers", same)
	}
}

func TestPopulationBatchOffsets(t *testing.T) {
	p := &Population{N: 500, Seed: 7, SpamFraction: 0.2}
	whole := make([]float64, 500)
	p.Batch("k", 0, whole)
	part := make([]float64, 100)
	p.Batch("k", 250, part)
	for i := range part {
		if part[i] != whole[250+i] {
			t.Fatalf("offset batch diverges at member %d", 250+i)
		}
	}
	// Out-of-range members answer 0.
	edge := make([]float64, 10)
	p.Batch("k", 495, edge)
	for i := 5; i < 10; i++ {
		if edge[i] != 0 {
			t.Fatalf("member %d beyond N answered %v", 495+i, edge[i])
		}
	}
}

func TestPopulationTruthMean(t *testing.T) {
	p := &Population{N: 50000, Seed: 11, Truth: map[string]float64{"t": 0.5}}
	buf := make([]float64, p.N)
	p.Batch("t", 0, buf)
	sum := 0.0
	for _, v := range buf {
		sum += v
	}
	if mean := sum / float64(p.N); math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("empirical mean %v far from truth 0.5", mean)
	}
	if got := p.Mean("t"); got != 0.5 {
		t.Fatalf("Mean = %v, want 0.5", got)
	}
}

func TestPopulationSpamFraction(t *testing.T) {
	p := &Population{N: 100000, Seed: 3, SpamFraction: 0.25}
	spam := 0
	for i := 0; i < p.N; i++ {
		if p.IsSpammer(i) {
			spam++
		}
	}
	if frac := float64(spam) / float64(p.N); math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("spammer fraction %v far from 0.25", frac)
	}
	if (&Population{N: 10, Seed: 3}).IsSpammer(0) {
		t.Fatal("IsSpammer with zero SpamFraction")
	}
}

func TestPopulationSkewLowersMeans(t *testing.T) {
	flat := &Population{N: 10, Seed: 5}
	skew := &Population{N: 10, Seed: 5, Skew: 2}
	sumFlat, sumSkew := 0.0, 0.0
	keys := 500
	for i := 0; i < keys; i++ {
		key := "pattern-" + string(rune('a'+i%26)) + "-" + string(rune('0'+i%10)) + "-" + string(rune('A'+(i/260)%26))
		sumFlat += flat.Mean(key)
		sumSkew += skew.Mean(key)
	}
	mf, ms := sumFlat/float64(keys), sumSkew/float64(keys)
	if ms >= mf {
		t.Fatalf("skewed mean-of-means %v not below flat %v", ms, mf)
	}
	if mf < 0.30 || mf > 0.40 {
		t.Fatalf("flat mean-of-means %v outside expected [0.30, 0.40] around 0.35", mf)
	}
}

func TestPopulationSegments(t *testing.T) {
	p := &Population{N: 10000, Seed: 9, Segments: 4, SegmentBias: 0.2}
	counts := make([]int, 4)
	for i := 0; i < p.N; i++ {
		s := p.Segment(i)
		if s < 0 || s >= 4 {
			t.Fatalf("segment %d out of range", s)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < p.N/8 {
			t.Fatalf("segment %d holds only %d/%d members", s, c, p.N)
		}
	}
	// Per-segment empirical means differ when bias is on.
	buf := make([]float64, p.N)
	p.Truth = map[string]float64{"k": 0.5}
	p.Batch("k", 0, buf)
	segSum := make([]float64, 4)
	for i, v := range buf {
		segSum[p.Segment(i)] += v
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for s := range segSum {
		m := segSum[s] / float64(counts[s])
		lo = math.Min(lo, m)
		hi = math.Max(hi, m)
	}
	if hi-lo < 0.02 {
		t.Fatalf("segment means span only %v with bias 0.2", hi-lo)
	}
}
