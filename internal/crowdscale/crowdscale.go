// Package crowdscale scales the simulated-crowd execution layer to
// populations of millions of members. It replaces the exhaustive
// ask-everyone support computation of the crowd package with a streaming
// task pipeline:
//
//   - an Executor owns a bounded task queue with a fixed worker pool;
//     crowd tasks are dispatched as member-range batches and the bounded
//     queue applies backpressure to producers,
//   - incremental support aggregation early-terminates each task with
//     sequential sampling: answers arrive batch by batch and a task
//     stops as soon as its confidence interval decides the significance
//     criterion (threshold comparison, or membership in the top-k via a
//     racing argument), instead of asking a fixed sample,
//   - a Source addresses the population lazily by (seed, member index) —
//     no member profile is ever materialized, so a million-member crowd
//     costs memory proportional to the sampling state, not the
//     population,
//   - Population is a synthetic million-profile generator with skew,
//     spammer and taste-segment controls for scale experiments.
//
// Two stopping rules are available. RuleConfidence (the default) stops a
// task once a Serfling-corrected Hoeffding interval around the running
// mean excludes the decision boundary: sample cost is near-constant in
// the population size when the true support is away from the boundary,
// and falls back to full sampling when it is not, so decisions are
// wrong only with probability <= Delta per check. RuleExact uses only
// worst-case bounds (every unseen answer could be 0 or 1), which decides
// later but is provably identical to exhaustive evaluation — the
// differential-testing mode.
//
// Either way a task that reaches full sampling is decided exactly, so
// results never degrade — early termination only removes work that
// cannot change the outcome (RuleExact) or is overwhelmingly unlikely
// to (RuleConfidence).
package crowdscale

import (
	"errors"
	"math"
	"runtime"
)

// ErrClosed is returned by Decide/Supports calls on a closed Executor.
var ErrClosed = errors.New("crowdscale: executor closed")

// Source is a crowd population addressed lazily by member index: answers
// are derived on demand, never stored. Implementations must be safe for
// concurrent use and deterministic — the same (member, key) always
// yields the same answer — so sequential sampling is reproducible and
// exhaustive evaluation over the same source is a valid oracle.
//
// RuleConfidence additionally requires that answers be independent of
// member index (index-exchangeable): the sampler reads a prefix of the
// index order and treats it as a without-replacement draw from the
// population, so a source whose answers trend with member index (e.g.
// members sorted by enthusiasm) makes confidence decisions
// systematically wrong, not Delta-wrong. Derive member behaviour by
// hashing the index, as Population does, or pre-shuffle the index
// order. RuleExact uses only worst-case bounds and is correct for any
// deterministic source.
type Source interface {
	// Size is the population size.
	Size() int
	// Batch fills out[i] with the answer of member from+i for the fact
	// key, each in [0, 1]. Batching lets implementations amortize
	// per-key work (hashing the key once per dispatch, not per member).
	Batch(key string, from int, out []float64)
}

// Rule selects the sequential-sampling stopping rule.
type Rule int

const (
	// RuleConfidence stops when a Hoeffding confidence interval (with
	// Serfling's finite-population correction) around the running mean
	// decides the criterion. Sublinear in the population size; wrong
	// with probability <= Delta per boundary check.
	RuleConfidence Rule = iota
	// RuleExact stops only when the unseen remainder of the population
	// cannot change the decision (worst-case bounds). Decisions are
	// provably identical to exhaustive evaluation.
	RuleExact
)

// Config tunes an Executor. The zero value is usable: every field has a
// documented default.
type Config struct {
	// Workers is the size of the worker pool; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the task queue; producers sending beyond it
	// block (backpressure). 0 means 4*Workers, minimum 16.
	QueueDepth int
	// InitialBatch is the first batch size per task; 0 means 64.
	InitialBatch int
	// GrowthFactor multiplies a task's batch size each round; values
	// <= 1 mean 2.
	GrowthFactor float64
	// MaxBatch caps one dispatched batch; 0 means 8192.
	MaxBatch int
	// Rule is the stopping rule (default RuleConfidence).
	Rule Rule
	// Delta is the per-check error probability of RuleConfidence;
	// 0 means 1e-9.
	Delta float64
	// MaxStates caps the sampling-state cache (per distinct fact key and
	// effective population); beyond it states are ephemeral. 0 means
	// 65536.
	MaxStates int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	d := 4 * c.workers()
	if d < 16 {
		d = 16
	}
	return d
}

func (c Config) initialBatch() int {
	if c.InitialBatch > 0 {
		return c.InitialBatch
	}
	return 64
}

func (c Config) growth() float64 {
	if c.GrowthFactor > 1 {
		return c.GrowthFactor
	}
	return 2
}

func (c Config) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return 8192
}

func (c Config) delta() float64 {
	if c.Delta > 0 {
		return c.Delta
	}
	return 1e-9
}

func (c Config) maxStates() int {
	if c.MaxStates > 0 {
		return c.MaxStates
	}
	return 65536
}

// Decision is the outcome of one task's sequential sampling.
type Decision struct {
	// Key is the task's canonical fact key.
	Key string
	// Significant reports whether the task passed the criterion.
	Significant bool
	// Support is the running support estimate at stopping time; the
	// exhaustive value when Exact, and 0 when the decision needed no
	// samples at all (Sampled == 0 — e.g. top-k membership with k at
	// least the number of tasks is settled structurally).
	Support float64
	// Sampled is how many member answers back the decision (cumulative
	// over the task's sampling state, which persists across calls).
	Sampled int
	// Exact reports that every member of the effective population was
	// sampled, making Support the exhaustive value.
	Exact bool
}

// Stats is a point-in-time snapshot of an Executor's counters. All
// counters are monotonic for the life of the executor — Reset drops
// sampling states but never rewinds counters.
type Stats struct {
	// TasksDecided counts significance decisions made.
	TasksDecided uint64 `json:"tasks_decided"`
	// BatchesDispatched counts non-empty batches run by workers.
	BatchesDispatched uint64 `json:"batches_dispatched"`
	// MemberAnswers counts individual member answers computed.
	MemberAnswers uint64 `json:"member_answers"`
	// AnswersSaved counts member answers a fixed-sample engine would
	// have computed but sequential stopping avoided (population minus
	// samples, accumulated per early decision that sampled this call).
	AnswersSaved uint64 `json:"answers_saved"`
	// EarlyDecided counts decisions where sequential stopping ended
	// sampling early in the deciding call; FullySampled counts
	// decisions backed by the fully sampled effective population. Early
	// decisions answered purely from a cached state (no sampling in the
	// call) add to neither, so EarlyDecided and AnswersSaved measure
	// real stopping work rather than cache hits; TasksDecided can
	// therefore exceed EarlyDecided + FullySampled.
	EarlyDecided uint64 `json:"early_decided"`
	FullySampled uint64 `json:"fully_sampled"`
	// StateHits / StateMisses count sampling-state cache outcomes: a hit
	// reuses answers accumulated by earlier decisions of the same key.
	StateHits   uint64 `json:"state_hits"`
	StateMisses uint64 `json:"state_misses"`
	// States is the number of cached sampling states.
	States int `json:"states"`
	// QueueHighWater is the deepest observed task-queue backlog.
	QueueHighWater int64 `json:"queue_high_water"`
	// Workers and Population describe the executor's configuration.
	Workers    int `json:"workers"`
	Population int `json:"population"`
}

// Delta returns the counter difference s - prev, keeping the
// configuration and gauge fields (States, QueueHighWater, Workers,
// Population) at their current values.
func (s Stats) Delta(prev Stats) Stats {
	d := s
	d.TasksDecided -= prev.TasksDecided
	d.BatchesDispatched -= prev.BatchesDispatched
	d.MemberAnswers -= prev.MemberAnswers
	d.AnswersSaved -= prev.AnswersSaved
	d.EarlyDecided -= prev.EarlyDecided
	d.FullySampled -= prev.FullySampled
	d.StateHits -= prev.StateHits
	d.StateMisses -= prev.StateMisses
	return d
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}
