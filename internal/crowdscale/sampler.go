package crowdscale

import (
	"context"
	"fmt"
	"math"
)

// bounds returns the interval [lo, hi] certainly (RuleExact) or with
// high probability (RuleConfidence) containing the task's exhaustive
// support over effN members, given the sampling state. Caller holds
// x.mu. At full sampling the interval collapses to the exact value.
func (x *Executor) bounds(st *taskState, effN int) (lo, hi float64) {
	n := st.sampled
	if n >= effN {
		v := st.sum / float64(effN)
		return v, v
	}
	if n == 0 {
		return 0, 1
	}
	// Worst-case envelope: every unseen answer could be 0 or 1.
	lo = st.sum / float64(effN)
	hi = (st.sum + float64(effN-n)) / float64(effN)
	if x.cfg.Rule == RuleConfidence {
		// Hoeffding around the running mean with Serfling's correction
		// for sampling without replacement: rho = 1 - (n-1)/N. The
		// confidence interval can only tighten the worst-case envelope.
		// Sound only under the Source contract's index-exchangeability
		// requirement — the sampled prefix must look like a random
		// without-replacement draw.
		mean := st.sum / float64(n)
		rho := 1 - float64(n-1)/float64(effN)
		eps := math.Sqrt(rho * math.Log(2/x.cfg.delta()) / (2 * float64(n)))
		if l := mean - eps; l > lo {
			lo = l
		}
		if h := mean + eps; h < hi {
			hi = h
		}
	}
	return lo, hi
}

// finish records one decision into dec and the counters. entry is the
// state's sampled count when the deciding call started: early/saved are
// only accumulated when the call sampled beyond it, so cache-hit
// decisions that dispatched nothing never inflate the savings. Caller
// holds x.mu.
func (x *Executor) finish(dec *Decision, st *taskState, effN, entry int, sig bool) {
	dec.Significant = sig
	dec.Sampled = st.sampled
	if effN == 0 || st.sampled >= effN {
		dec.Exact = true
		if effN > 0 {
			dec.Support = st.sum / float64(effN)
		}
		x.full.Add(1)
	} else {
		if st.sampled > 0 {
			dec.Support = st.sum / float64(st.sampled)
		}
		if st.sampled > entry {
			x.early.Add(1)
			x.saved.Add(uint64(effN - st.sampled))
		}
	}
	x.tasks.Add(1)
}

// DecideThreshold decides, for each fact key, whether its support over
// the first effN members is >= thr — the exhaustive criterion — by
// sequential sampling: batches stream through the task queue and each
// key stops as soon as its interval excludes thr (or it is fully
// sampled). Keys are decided independently; the returned decisions are
// index-aligned with keys.
func (x *Executor) DecideThreshold(ctx context.Context, keys []string, thr float64, effN int) ([]Decision, error) {
	effN = x.effPop(effN)
	decs := make([]Decision, len(keys))
	sts := make([]*taskState, len(keys))
	for i, k := range keys {
		decs[i].Key = k
		sts[i] = x.state(k, effN)
	}
	entry := make([]int, len(keys))
	x.mu.Lock()
	for i, st := range sts {
		entry[i] = st.sampled
	}
	x.mu.Unlock()
	active := make([]int, 0, len(keys))
	for i := range keys {
		active = append(active, i)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Decide what the current states already settle (a cached state
		// may decide a key with no sampling at all).
		x.mu.Lock()
		undecided := active[:0]
		for _, i := range active {
			st := sts[i]
			lo, hi := x.bounds(st, effN)
			switch {
			case effN == 0:
				x.finish(&decs[i], st, effN, entry[i], 0 >= thr)
			case lo >= thr:
				x.finish(&decs[i], st, effN, entry[i], true)
			case hi < thr:
				x.finish(&decs[i], st, effN, entry[i], false)
			default:
				undecided = append(undecided, i)
			}
		}
		active = undecided
		x.mu.Unlock()
		if len(active) == 0 {
			return decs, nil
		}
		if err := x.round(ctx, keys, sts, active, effN); err != nil {
			return nil, err
		}
	}
}

// beforeSurely reports that task j certainly precedes task i in the
// final significance order: descending support (ascending when !desc),
// ties resolved by the incoming order (lower index first) — exactly the
// stable sort the exhaustive path applies. With RuleConfidence bounds
// "certainly" is "with high probability".
func beforeSurely(lo, hi []float64, j, i int, desc bool) bool {
	if desc {
		if lo[j] > hi[i] {
			return true
		}
		return lo[j] >= hi[i] && j < i
	}
	if hi[j] < lo[i] {
		return true
	}
	return hi[j] <= lo[i] && j < i
}

// DecideTopK decides which keys rank in the top k by support over the
// first effN members (bottom k when !desc), under the exhaustive
// tie-breaking rule (first-appearance order). It races the tasks:
// batches stream in rounds and a task is settled once at most k-1
// others can possibly precede it (in) or at least k surely do (out);
// only tasks whose uncertainty still blocks a decision keep sampling.
// Keys must be in first-appearance order and are assumed distinct.
func (x *Executor) DecideTopK(ctx context.Context, keys []string, k int, desc bool, effN int) ([]Decision, error) {
	effN = x.effPop(effN)
	m := len(keys)
	decs := make([]Decision, m)
	sts := make([]*taskState, m)
	for i, key := range keys {
		decs[i].Key = key
		sts[i] = x.state(key, effN)
	}
	entry := make([]int, m)
	x.mu.Lock()
	for i, st := range sts {
		entry[i] = st.sampled
	}
	x.mu.Unlock()
	decided := make([]bool, m)
	lo := make([]float64, m)
	hi := make([]float64, m)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x.mu.Lock()
		for i := range keys {
			lo[i], hi[i] = x.bounds(sts[i], effN)
		}
		// Settle every task the current bounds decide.
		remaining := 0
		for i := range keys {
			if decided[i] {
				continue
			}
			sure, possible := 0, 0
			for j := range keys {
				if j == i {
					continue
				}
				if beforeSurely(lo, hi, j, i, desc) {
					sure++
					possible++
				} else if !beforeSurely(lo, hi, i, j, desc) {
					possible++
				}
			}
			switch {
			case k <= 0 || sure >= k:
				x.finish(&decs[i], sts[i], effN, entry[i], false)
				decided[i] = true
			case possible <= k-1:
				x.finish(&decs[i], sts[i], effN, entry[i], true)
				decided[i] = true
			default:
				remaining++
			}
		}
		if remaining == 0 {
			x.mu.Unlock()
			return decs, nil
		}
		// Sample every unfinished task that is undecided or whose
		// interval overlaps an undecided one (its uncertainty blocks the
		// decision). Any uncertain pair has at least one unfinished,
		// overlapping member, so this set is never empty while tasks
		// remain undecided.
		var sample []int
		for i := range keys {
			if sts[i].sampled >= effN || effN == 0 {
				continue
			}
			relevant := !decided[i]
			if !relevant {
				for u := range keys {
					if !decided[u] && !(hi[i] < lo[u] || hi[u] < lo[i]) {
						relevant = true
						break
					}
				}
			}
			if relevant {
				sample = append(sample, i)
			}
		}
		x.mu.Unlock()
		if len(sample) == 0 {
			// Cannot happen: undecided tasks with fully-sampled bounds
			// are settled exactly above. Guard against looping forever.
			return nil, fmt.Errorf("crowdscale: top-%d race stalled with %d undecided tasks", k, remaining)
		}
		if err := x.round(ctx, keys, sts, sample, effN); err != nil {
			return nil, err
		}
	}
}
