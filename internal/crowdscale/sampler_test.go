package crowdscale

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"
)

// exhaustiveSupport is the brute-force oracle: mean answer of the first
// effN members, computed with a straight pass over the source.
func exhaustiveSupport(src Source, key string, effN int) float64 {
	if effN <= 0 {
		return 0
	}
	buf := make([]float64, effN)
	src.Batch(key, 0, buf)
	sum := 0.0
	for _, v := range buf {
		sum += v
	}
	return sum / float64(effN)
}

// topKOracle replicates the exhaustive significance order: stable sort
// by support (desc or asc), ties broken by first-appearance order, top k
// significant.
func topKOracle(supports []float64, k int, desc bool) []bool {
	idx := make([]int, len(supports))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if desc {
			return supports[idx[a]] > supports[idx[b]]
		}
		return supports[idx[a]] < supports[idx[b]]
	})
	sig := make([]bool, len(supports))
	for r, i := range idx {
		sig[i] = r < k
	}
	return sig
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fact-%03d", i)
	}
	return keys
}

func TestDecideThresholdMatchesOracle(t *testing.T) {
	for _, rule := range []Rule{RuleExact, RuleConfidence} {
		for _, seed := range []int64{1, 2, 3, 4} {
			p := &Population{N: 3000, Seed: seed, Skew: 1, SpamFraction: 0.05}
			x := New(p, Config{Workers: 4, Rule: rule})
			keys := testKeys(40)
			for _, thr := range []float64{0.1, 0.35, 0.5, 0.9} {
				decs, err := x.DecideThreshold(context.Background(), keys, thr, 0)
				if err != nil {
					t.Fatal(err)
				}
				for i, d := range decs {
					want := exhaustiveSupport(p, keys[i], p.N) >= thr
					if d.Significant != want {
						t.Errorf("rule=%v seed=%d thr=%v key=%s: got %v (support est %v, sampled %d/%d), oracle %v",
							rule, seed, thr, keys[i], d.Significant, d.Support, d.Sampled, p.N, want)
					}
				}
			}
			x.Close()
		}
	}
}

func TestDecideThresholdEffN(t *testing.T) {
	p := &Population{N: 5000, Seed: 9}
	x := New(p, Config{Workers: 2, Rule: RuleExact})
	defer x.Close()
	keys := testKeys(10)
	effN := 321
	decs, err := x.DecideThreshold(context.Background(), keys, 0.4, effN)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range decs {
		want := exhaustiveSupport(p, keys[i], effN) >= 0.4
		if d.Significant != want {
			t.Errorf("key %s: got %v, oracle over first %d members %v", keys[i], d.Significant, effN, want)
		}
		if d.Sampled > effN {
			t.Errorf("key %s sampled %d > effN %d", keys[i], d.Sampled, effN)
		}
	}
}

func TestDecideThresholdEmptyPopulation(t *testing.T) {
	p := &Population{N: 0, Seed: 1}
	x := New(p, Config{Workers: 1})
	defer x.Close()
	decs, err := x.DecideThreshold(context.Background(), []string{"a", "b"}, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decs {
		if d.Significant || !d.Exact || d.Support != 0 {
			t.Fatalf("empty population decision %+v", d)
		}
	}
	// Threshold 0 is trivially met even with nobody to ask.
	decs, err = x.DecideThreshold(context.Background(), []string{"a"}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !decs[0].Significant {
		t.Fatal("threshold 0 not met by empty population")
	}
}

func TestDecideTopKMatchesOracle(t *testing.T) {
	for _, rule := range []Rule{RuleExact, RuleConfidence} {
		for _, desc := range []bool{true, false} {
			p := &Population{N: 2000, Seed: 12, Skew: 0.5}
			x := New(p, Config{Workers: 4, Rule: rule})
			keys := testKeys(12)
			supports := make([]float64, len(keys))
			for i, k := range keys {
				supports[i] = exhaustiveSupport(p, keys[i], p.N)
				_ = k
			}
			for _, k := range []int{0, 1, 3, 11, 12, 20} {
				decs, err := x.DecideTopK(context.Background(), keys, k, desc, 0)
				if err != nil {
					t.Fatal(err)
				}
				want := topKOracle(supports, k, desc)
				for i, d := range decs {
					if d.Significant != want[i] {
						t.Errorf("rule=%v desc=%v k=%d key=%s: got %v, oracle %v (support %v)",
							rule, desc, k, keys[i], d.Significant, want[i], supports[i])
					}
				}
			}
			x.Close()
		}
	}
}

func TestDecideTopKZeroSampleSupportFinite(t *testing.T) {
	// k >= number of tasks settles membership structurally before any
	// sampling; the support estimate must be a finite 0, not 0/0.
	p := &Population{N: 1000, Seed: 17}
	x := New(p, Config{Workers: 1})
	defer x.Close()
	decs, err := x.DecideTopK(context.Background(), []string{"a", "b"}, 5, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decs {
		if !d.Significant {
			t.Fatalf("key %s not in top-5 of 2", d.Key)
		}
		if d.Sampled != 0 {
			t.Fatalf("key %s sampled %d for a structural decision", d.Key, d.Sampled)
		}
		if math.IsNaN(d.Support) || d.Support != 0 {
			t.Fatalf("key %s zero-sample support %v, want 0", d.Key, d.Support)
		}
	}
	st := x.Stats()
	if st.EarlyDecided != 0 || st.AnswersSaved != 0 {
		t.Fatalf("structural decisions counted as early-termination savings: %+v", st)
	}
}

// constSource answers a fixed value per key: exact ties force the top-k
// race down to full sampling and the stable first-appearance tie-break.
type constSource struct {
	n    int
	vals map[string]float64
}

func (c *constSource) Size() int { return c.n }
func (c *constSource) Batch(key string, from int, out []float64) {
	v := c.vals[key]
	for i := range out {
		out[i] = v
	}
}

func TestDecideTopKStableTieBreak(t *testing.T) {
	src := &constSource{n: 500, vals: map[string]float64{
		"first": 0.5, "second": 0.5, "top": 0.9, "bottom": 0.1,
	}}
	for _, rule := range []Rule{RuleExact, RuleConfidence} {
		x := New(src, Config{Workers: 2, Rule: rule})
		keys := []string{"first", "second", "top", "bottom"}
		decs, err := x.DecideTopK(context.Background(), keys, 2, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, d := range decs {
			got[d.Key] = d.Significant
		}
		// Stable desc order: top, first, second, bottom — k=2 keeps
		// top and first ("first" wins the tie by appearing earlier).
		want := map[string]bool{"top": true, "first": true, "second": false, "bottom": false}
		for k, w := range want {
			if got[k] != w {
				t.Errorf("rule=%v key %s significant=%v, want %v", rule, k, got[k], w)
			}
		}
		// Ascending k=2 keeps bottom and first.
		decs, err = x.DecideTopK(context.Background(), keys, 2, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range decs {
			want := d.Key == "bottom" || d.Key == "first"
			if d.Significant != want {
				t.Errorf("rule=%v asc key %s significant=%v, want %v", rule, d.Key, d.Significant, want)
			}
		}
		x.Close()
	}
}

func TestConfidenceRuleSublinear(t *testing.T) {
	p := &Population{N: 1_000_000, Seed: 21, Truth: map[string]float64{
		"popular": 0.9, "niche": 0.1,
	}}
	x := New(p, Config{Workers: 4, Rule: RuleConfidence})
	defer x.Close()
	decs, err := x.DecideThreshold(context.Background(), []string{"popular", "niche"}, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decs {
		if d.Exact {
			t.Errorf("key %s fully sampled a million members", d.Key)
		}
		if d.Sampled > 20000 {
			t.Errorf("key %s sampled %d answers for a 0.4-wide margin", d.Key, d.Sampled)
		}
	}
	if decs[0].Significant != true || decs[1].Significant != false {
		t.Fatalf("decisions %v/%v", decs[0].Significant, decs[1].Significant)
	}
	st := x.Stats()
	if st.EarlyDecided != 2 || st.AnswersSaved == 0 {
		t.Fatalf("savings not recorded: %+v", st)
	}
	if st.MemberAnswers+st.AnswersSaved != 2*uint64(p.N) {
		t.Fatalf("answers %d + saved %d != 2*N", st.MemberAnswers, st.AnswersSaved)
	}
}

func TestExactRuleStopsEarlyOnWideMargin(t *testing.T) {
	// With truth 0.95 vs threshold 0.1, worst-case bounds decide before
	// full sampling even without a confidence interval.
	p := &Population{N: 100000, Seed: 30, Truth: map[string]float64{"k": 0.95}}
	x := New(p, Config{Workers: 2, Rule: RuleExact})
	defer x.Close()
	decs, err := x.DecideThreshold(context.Background(), []string{"k"}, 0.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !decs[0].Significant {
		t.Fatal("wide-margin key not significant")
	}
	if decs[0].Sampled >= p.N {
		t.Fatalf("exact rule sampled all %d members despite a decidable margin", p.N)
	}
}

func TestSupportsMatchesStraightSum(t *testing.T) {
	p := &Population{N: 30000, Seed: 14, SpamFraction: 0.1}
	x := New(p, Config{Workers: 4, MaxBatch: 1024})
	defer x.Close()
	keys := testKeys(5)
	got, err := x.Supports(context.Background(), keys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want := exhaustiveSupport(p, k, p.N)
		if math.Abs(got[i]-want) > 1e-9 {
			t.Errorf("key %s: Supports %v, straight sum %v", k, got[i], want)
		}
	}
}
