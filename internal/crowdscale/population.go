package crowdscale

import (
	"hash/fnv"
	"math"
)

// Population is a synthetic crowd of arbitrary size whose members are
// derived lazily from (Seed, member index, fact key): no profile is ever
// materialized, so a million-member population costs no memory beyond
// the struct itself. It is the scale counterpart of crowd.Crowd with the
// same answer model (latent per-key mean plus per-member noise) and
// extra controls for realistic scale experiments:
//
//   - Skew biases the default latent means toward low support, so most
//     patterns are niche and a few are popular (the long tail a real
//     crowd exhibits),
//   - SpamFraction marks a deterministic share of members as spam
//     workers who answer uniformly at random,
//   - Segments/SegmentBias split the population into taste segments
//     whose members shift each key's mean by a per-(segment, key)
//     offset, modelling correlated subpopulations rather than pure
//     i.i.d. noise.
//
// All behaviour is a pure function of the fields, so experiments are
// reproducible; hashing is allocation-free on the Batch path.
type Population struct {
	// N is the population size.
	N int
	// Seed drives all pseudo-random member behaviour.
	Seed int64
	// Truth optionally fixes the latent mean support per fact key; keys
	// not present get a seed-hashed default in [0.05, 0.65].
	Truth map[string]float64
	// Skew, when positive, skews default latent means toward low
	// support (u^(1+Skew) shaping); 0 keeps them uniform.
	Skew float64
	// Noise is the per-member answer spread around the mean (default
	// 0.15 when zero).
	Noise float64
	// SpamFraction is the share of members who answer uniformly at
	// random regardless of the question.
	SpamFraction float64
	// Segments is the number of taste segments (values < 2 disable
	// segmentation); a member's segment is fixed across keys.
	Segments int
	// SegmentBias scales the per-(segment, key) mean shift, drawn
	// uniformly from [-SegmentBias, +SegmentBias].
	SegmentBias float64
}

// Size implements Source.
func (p *Population) Size() int { return p.N }

// splitmix64 is the SplitMix64 finalizer: a fast, high-quality integer
// mixer (Steele et al.), used here to derive independent uniform streams
// from (seed, member, key) without allocating.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// u01 maps a mixed 64-bit value to [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// keyHash folds the fact key and the seed into the per-key stream base.
func (p *Population) keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return splitmix64(h.Sum64() ^ splitmix64(uint64(p.Seed)))
}

func (p *Population) noise() float64 {
	if p.Noise == 0 {
		return 0.15
	}
	return p.Noise
}

// Mean returns the latent population mean support for a fact key.
func (p *Population) Mean(key string) float64 {
	if v, ok := p.Truth[key]; ok {
		return clamp01(v)
	}
	return p.defaultMean(p.keyHash(key))
}

func (p *Population) defaultMean(kh uint64) float64 {
	u := u01(splitmix64(kh ^ 0xA24BAED4963EE407))
	if p.Skew > 0 {
		u = math.Pow(u, 1+p.Skew)
	}
	return 0.05 + 0.6*u
}

// memberStream derives the member-only stream (spammer flag, segment):
// independent of the key, so a member's identity is consistent across
// questions.
func (p *Population) memberStream(member int) uint64 {
	return splitmix64(uint64(p.Seed)*0x9E3779B97F4A7C15 ^ (uint64(member)+1)*0xD1B54A32D192ED03)
}

// IsSpammer reports whether the member answers uniformly at random.
func (p *Population) IsSpammer(member int) bool {
	if p.SpamFraction <= 0 {
		return false
	}
	return u01(p.memberStream(member)) < p.SpamFraction
}

// Segment returns the member's taste segment (0 when segmentation is
// disabled).
func (p *Population) Segment(member int) int {
	if p.Segments < 2 {
		return 0
	}
	return int((p.memberStream(member) >> 17) % uint64(p.Segments))
}

// Batch implements Source: answers of members [from, from+len(out)) for
// the key. The key is hashed once per call; the per-member work is a
// handful of integer mixes, so sampling a million members is cheap and
// allocation-free.
func (p *Population) Batch(key string, from int, out []float64) {
	kh := p.keyHash(key)
	mean := 0.0
	if v, ok := p.Truth[key]; ok {
		mean = clamp01(v)
	} else {
		mean = p.defaultMean(kh)
	}
	noise := p.noise()
	for i := range out {
		m := from + i
		if m < 0 || m >= p.N {
			out[i] = 0
			continue
		}
		ms := p.memberStream(m)
		if p.SpamFraction > 0 && u01(ms) < p.SpamFraction {
			out[i] = u01(splitmix64(kh ^ ms))
			continue
		}
		bias := 0.0
		if p.Segments > 1 && p.SegmentBias != 0 {
			seg := (ms >> 17) % uint64(p.Segments)
			bias = p.SegmentBias * (2*u01(splitmix64(kh^(seg+1)*0xBF58476D1CE4E5B9)) - 1)
		}
		r := splitmix64(kh ^ (uint64(m)+1)*0x9E3779B97F4A7C15)
		n := (u01(r) - u01(splitmix64(r))) * 2 * noise
		out[i] = clamp01(mean + bias + n)
	}
}

// Answer returns one member's answer for the key (a single-element
// Batch; tests and spot checks).
func (p *Population) Answer(member int, key string) float64 {
	var one [1]float64
	p.Batch(key, member, one[:])
	return one[0]
}
