package qcache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nl2cm/internal/ontology"
)

func TestCanonicalizeAbstractsUniqueEntities(t *testing.T) {
	onto := ontology.NewDemoOntology()
	a := Canonicalize("Where do families eat near Delaware Park?", onto)
	b := Canonicalize("Where do families eat near Central Park?", onto)
	if a.Key != b.Key {
		t.Fatalf("same-shape questions got different keys:\n  %q\n  %q", a.Key, b.Key)
	}
	if len(a.Entities) != 1 || len(b.Entities) != 1 {
		t.Fatalf("entity slots = %d / %d, want 1 / 1", len(a.Entities), len(b.Entities))
	}
	if a.Entities[0].Term.Equal(b.Entities[0].Term) {
		t.Fatalf("both questions bound the same entity %v", a.Entities[0].Term)
	}
	if a.Entities[0].Phrase != "Delaware Park" {
		t.Errorf("phrase = %q, want %q", a.Entities[0].Phrase, "Delaware Park")
	}
}

func TestCanonicalizeKeepsAmbiguousAndClassWordsLiteral(t *testing.T) {
	onto := ontology.NewDemoOntology()
	// "Buffalo" labels three cities: it must stay literal, because its
	// resolution is feedback/dialogue-dependent.
	s := Canonicalize("What should we visit in Buffalo?", onto)
	if len(s.Entities) != 0 {
		t.Fatalf("ambiguous mention was abstracted: %+v", s.Entities)
	}
	for _, w := range []string{"buffalo"} {
		if !strings.Contains(s.Key, w) {
			t.Errorf("shape key %q lost literal word %q", s.Key, w)
		}
	}
	// Class words ("restaurant") are query structure, not slots.
	s = Canonicalize("Which restaurant serves families?", onto)
	if len(s.Entities) != 0 {
		t.Fatalf("class word was abstracted: %+v", s.Entities)
	}
}

func TestCanonicalizeGreedyLongestMention(t *testing.T) {
	onto := ontology.NewDemoOntology()
	s := Canonicalize("What is near Forest Hotel, Buffalo?", onto)
	if len(s.Entities) != 1 {
		t.Fatalf("entities = %+v, want the aliased hotel as one slot", s.Entities)
	}
	if s.Entities[0].Phrase != "Forest Hotel, Buffalo" {
		t.Errorf("phrase = %q, want the full alias", s.Entities[0].Phrase)
	}
	// The marker records the token count (Forest Hotel , Buffalo = 4),
	// so mentions with different token structures never share a shape.
	if !strings.Contains(s.Key, "⟨e4⟩") {
		t.Errorf("shape key %q lacks the 4-token marker", s.Key)
	}
}

func TestCanonicalizeTokenCountSplitsShapes(t *testing.T) {
	onto := ontology.NewDemoOntology()
	two := Canonicalize("What is near Delaware Park?", onto)
	one := Canonicalize("What is near Canalside?", onto)
	if two.Key == one.Key {
		t.Fatalf("2-token and 1-token mentions share shape %q; cached token sets would go stale", two.Key)
	}
}

func TestBackendKeyCanonicalizes(t *testing.T) {
	if got := BackendKey([]string{"sql", "cypher", "sql"}); got != "cypher,sql" {
		t.Errorf("BackendKey = %q, want %q", got, "cypher,sql")
	}
	if got := BackendKey(nil); got != "" {
		t.Errorf("BackendKey(nil) = %q, want empty", got)
	}
}

func TestCacheHitMissEvict(t *testing.T) {
	c := New(2)
	ctx := context.Background()
	fill := func(v string) func() (any, error) {
		return func() (any, error) { return v, nil }
	}
	key := func(s string) Key { return Key{Shape: s} }

	if _, o, _ := c.Do(ctx, key("a"), fill("A")); o != Miss {
		t.Fatalf("first access = %v, want miss", o)
	}
	if v, o, _ := c.Do(ctx, key("a"), fill("wrong")); o != Hit || v.(string) != "A" {
		t.Fatalf("second access = %v %v, want hit A", v, o)
	}
	c.Do(ctx, key("b"), fill("B"))
	c.Do(ctx, key("c"), fill("C")) // evicts "a" (LRU tail)
	if _, o, _ := c.Do(ctx, key("a"), fill("A2")); o != Miss {
		t.Fatalf("evicted key came back as %v, want miss", o)
	}
	st := c.Stats()
	if st.Evictions < 1 {
		t.Errorf("evictions = %d, want ≥1", st.Evictions)
	}
	if st.Entries > 2 {
		t.Errorf("entries = %d, want ≤ capacity 2", st.Entries)
	}
}

func TestCacheEpochInvalidates(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	fill := func() (any, error) { return "v", nil }
	if _, o, _ := c.Do(ctx, Key{Shape: "s", Epoch: 0}, fill); o != Miss {
		t.Fatal("expected miss at epoch 0")
	}
	if _, o, _ := c.Do(ctx, Key{Shape: "s", Epoch: 0}, fill); o != Hit {
		t.Fatal("expected hit at epoch 0")
	}
	if _, o, _ := c.Do(ctx, Key{Shape: "s", Epoch: 1}, fill); o != Miss {
		t.Fatal("epoch bump did not invalidate the entry")
	}
}

func TestCacheDataEpochInvalidates(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	fill := func() (any, error) { return "v", nil }
	if _, o, _ := c.Do(ctx, Key{Shape: "s", Epoch: 1, DataEpoch: 3}, fill); o != Miss {
		t.Fatal("expected miss at data epoch 3")
	}
	if _, o, _ := c.Do(ctx, Key{Shape: "s", Epoch: 1, DataEpoch: 3}, fill); o != Hit {
		t.Fatal("expected hit at data epoch 3")
	}
	// A store write publishes a new data epoch: the cached plan must not
	// be reachable anymore, independent of the feedback epoch.
	if _, o, _ := c.Do(ctx, Key{Shape: "s", Epoch: 1, DataEpoch: 4}, fill); o != Miss {
		t.Fatal("data-epoch bump did not invalidate the entry")
	}
	// The two epoch axes must not collide in the internal key: feedback
	// epoch 34 with data epoch 0 is distinct from 3 with 40, etc.
	if _, o, _ := c.Do(ctx, Key{Shape: "s", Epoch: 13, DataEpoch: 4}, fill); o != Miss {
		t.Fatal("expected miss for unseen (epoch, data-epoch) pair")
	}
	if _, o, _ := c.Do(ctx, Key{Shape: "s", Epoch: 1, DataEpoch: 34}, fill); o != Miss {
		t.Fatal("epoch axes collided in the internal key")
	}
}

func TestSingleFlightDeduplicates(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	const workers = 16
	var fills atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]any, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, _, err := c.Do(ctx, Key{Shape: "shared"}, func() (any, error) {
				fills.Add(1)
				return "computed", nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Errorf("fill ran %d times for one key, want exactly 1", n)
	}
	for i, v := range results {
		if v != "computed" {
			t.Errorf("worker %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Waits != workers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+waits", st, workers-1)
	}
}

func TestFailedFlightIsNotCached(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, Key{Shape: "s"}, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, o, _ := c.Do(ctx, Key{Shape: "s"}, func() (any, error) { return "ok", nil }); o != Miss {
		t.Fatalf("after a failed fill the next access = %v, want miss", o)
	}
}

func TestFlightDoubleSettleIsSafe(t *testing.T) {
	c := New(8)
	_, f, o := c.Lookup(Key{Shape: "s"})
	if o != Miss {
		t.Fatal("expected miss")
	}
	f.Fulfill("v")
	f.Fail(errors.New("late")) // deferred-cleanup pattern: must be a no-op
	if v, _, o := c.Lookup(Key{Shape: "s"}); o != Hit || v.(string) != "v" {
		t.Fatalf("entry lost after late Fail: %v %v", v, o)
	}
}

// TestCacheStress hammers a small cache from many goroutines with
// overlapping shape keys — concurrent hits, misses, waits and evictions
// on the same keys. Run with -race; the invariant checked is that every
// access returns the value computed for its key.
func TestCacheStress(t *testing.T) {
	c := New(4) // smaller than the key space: constant eviction pressure
	ctx := context.Background()
	const (
		workers = 8
		iters   = 400
		shapes  = 10
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				shape := fmt.Sprintf("shape-%d", (w+i)%shapes)
				want := "value-for-" + shape
				v, _, err := c.Do(ctx, Key{Shape: shape}, func() (any, error) {
					return want, nil
				})
				if err != nil {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
				if v.(string) != want {
					t.Errorf("worker %d iter %d: got %v, want %v", w, i, v, want)
					return
				}
				if i%7 == 0 {
					c.NoteRebind()
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if total := st.Hits + st.Misses + st.Waits; total != workers*iters {
		t.Errorf("hits+misses+waits = %d, want %d", total, workers*iters)
	}
	if st.Entries > 4 {
		t.Errorf("entries = %d, want ≤ capacity 4", st.Entries)
	}
}

// TestSingleFlightWaiterCancellation: a waiter whose context ends while
// the filler is still running gets its own context error, and the
// filler's later Fulfill still lands in the cache.
func TestSingleFlightWaiterCancellation(t *testing.T) {
	c := New(8)
	key := Key{Shape: "slow"}
	_, owner, o := c.Lookup(key)
	if o != Miss {
		t.Fatal("expected miss")
	}
	_, waiterFlight, o := c.Lookup(key)
	if o != Wait {
		t.Fatalf("second lookup = %v, want wait", o)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := waiterFlight.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v, want context.Canceled", err)
	}
	owner.Fulfill("done")
	if v, _, o := c.Lookup(key); o != Hit || v.(string) != "done" {
		t.Fatalf("after fulfill: %v %v, want hit done", v, o)
	}
}
