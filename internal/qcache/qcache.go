// Package qcache is the cross-request translation cache: NLIDB workloads
// are dominated by a small number of recurring question *shapes*
// ("Where do families eat near Delaware Park?" and "Where do families
// eat near Central Park?" are the same request about different
// entities), so the expensive crowd-independent pipeline work —
// parsing, IX detection, query generation, composition, backend
// emission — can be amortized across every question of a shape.
//
// The package has two halves:
//
//   - Canonicalize turns a question into its Shape: the lowercased
//     token sequence with every unambiguous entity mention abstracted to
//     a slot marker, plus the ordered entity bindings that filled the
//     slots. Two questions with equal shape keys differ only in which
//     entities they name.
//
//   - Cache is a size-bounded LRU keyed on (shape, backend set,
//     feedback epoch, data epoch) with single-flight deduplication:
//     concurrent misses on one key run the underlying computation once,
//     and everyone waits for it. The epochs are the caller's
//     invalidation levers — the feedback epoch drops every cached plan
//     the moment learned feedback could change a translation, and the
//     data epoch (the store snapshot's publication counter) drops them
//     the moment the knowledge base itself changes.
//
// The cache stores opaque values (any): the core package owns the
// Result type and would otherwise be a dependency cycle.
package qcache

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"

	"nl2cm/internal/nlp"
	"nl2cm/internal/rdf"
)

// EntityResolver resolves a surface phrase to the single entity it
// unambiguously names. Phrases naming several entities (the three
// "Buffalo"s) or classes ("restaurant") must return false: ambiguous
// mentions stay literal in the shape key, because their resolution can
// depend on learned feedback or dialogue, and class words are query
// structure, not bindable slots. *ontology.Ontology implements it.
type EntityResolver interface {
	ResolveEntity(phrase string) (rdf.Term, bool)
}

// Binding is one entity slot of a shape, in question order.
type Binding struct {
	// Phrase is the surface mention ("Delaware Park").
	Phrase string
	// Term is the entity the phrase unambiguously names.
	Term rdf.Term
}

// Shape is the canonical form of a question: the key two same-shape
// questions share, and this question's slot bindings.
type Shape struct {
	// Key is the canonical token sequence, entity mentions abstracted to
	// ⟨eN⟩ markers (N = token count of the mention, so shapes only match
	// when their token structures match and cached token provenance
	// stays valid across a rebind).
	Key string
	// Entities are the slot bindings in question order.
	Entities []Binding
}

// maxMentionTokens bounds the n-gram window Canonicalize slides over
// the question; the longest demo label ("Forest Hotel, Buffalo, NY")
// tokenizes to 6 tokens.
const maxMentionTokens = 8

// Canonicalize computes the shape of a question: tokens are lowercased,
// and each maximal phrase the resolver maps to a unique entity becomes
// a slot marker. Matching is greedy longest-first, so "Forest Hotel,
// Buffalo" binds the aliased hotel rather than "Forest Hotel" plus a
// dangling ", Buffalo".
func Canonicalize(question string, res EntityResolver) Shape {
	toks := nlp.Tokenize(question)
	var b strings.Builder
	var ents []Binding
	for i := 0; i < len(toks); {
		n := matchMention(question, toks, i, res, &ents)
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		if n > 0 {
			fmt.Fprintf(&b, "⟨e%d⟩", n)
			i += n
			continue
		}
		b.WriteString(toks[i].Lower)
		i++
	}
	return Shape{Key: b.String(), Entities: ents}
}

// matchMention tries the longest entity mention starting at token i,
// appending its binding and returning the token count (0 when none).
func matchMention(question string, toks []nlp.Token, i int, res EntityResolver, ents *[]Binding) int {
	max := maxMentionTokens
	if rest := len(toks) - i; rest < max {
		max = rest
	}
	for n := max; n >= 1; n-- {
		phrase := question[toks[i].Start:toks[i+n-1].End]
		if t, ok := res.ResolveEntity(phrase); ok {
			*ents = append(*ents, Binding{Phrase: phrase, Term: t})
			return n
		}
	}
	return 0
}

// BackendKey canonicalizes a backend list into a key component: sorted,
// deduplicated, comma-joined, so request-order differences do not split
// the cache.
func BackendKey(backends []string) string {
	if len(backends) == 0 {
		return ""
	}
	uniq := make([]string, 0, len(backends))
	seen := make(map[string]bool, len(backends))
	for _, b := range backends {
		if !seen[b] {
			seen[b] = true
			uniq = append(uniq, b)
		}
	}
	// insertion sort: backend lists are tiny
	for i := 1; i < len(uniq); i++ {
		for j := i; j > 0 && uniq[j] < uniq[j-1]; j-- {
			uniq[j], uniq[j-1] = uniq[j-1], uniq[j]
		}
	}
	return strings.Join(uniq, ",")
}

// Key identifies one cache entry.
type Key struct {
	// Shape is the canonical question shape (Shape.Key).
	Shape string
	// Backends is the requested backend set (BackendKey).
	Backends string
	// Epoch versions the learned state the entry was computed under;
	// bumping it (e.g. on a feedback-store change) makes every older
	// entry unreachable.
	Epoch uint64
	// DataEpoch versions the knowledge-base snapshot the entry was
	// computed against (rdf.Snapshot.Epoch). A store write batch
	// publishes a new epoch, so cached plans — including rebind-served
	// hits — can never resurrect entities deleted in a newer epoch or
	// miss ones inserted since.
	DataEpoch uint64
}

func (k Key) internal() string {
	return fmt.Sprintf("%d|%d|%s|%s", k.Epoch, k.DataEpoch, k.Backends, k.Shape)
}

// Outcome classifies one cache access.
type Outcome int

const (
	// Miss: no entry, no flight — the caller owns computing the value.
	Miss Outcome = iota
	// Hit: a cached value was returned.
	Hit
	// Wait: another goroutine is computing this key; wait on the flight.
	Wait
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Wait:
		return "wait"
	default:
		return "miss"
	}
}

// Stats are the cache's monotonic counters.
type Stats struct {
	// Hits counts lookups served from a cached entry.
	Hits uint64
	// Misses counts lookups that started a fill.
	Misses uint64
	// Waits counts lookups coalesced onto another goroutine's fill.
	Waits uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Rebinds counts hits served by re-binding entity slots to new
	// entities (noted by the caller via NoteRebind).
	Rebinds uint64
	// Entries is the current entry count (a gauge, not a counter).
	Entries int
}

// Cache is the size-bounded single-flight LRU. The zero value is not
// usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	items   map[string]*list.Element // of *entry
	lru     *list.List               // front = most recent
	flights map[string]*Flight

	hits, misses, waits, evictions, rebinds uint64
}

type entry struct {
	key string
	val any
}

// DefaultCapacity bounds the cache when New is given a non-positive
// capacity.
const DefaultCapacity = 1024

// New returns a cache holding at most capacity entries.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:     capacity,
		items:   make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*Flight),
	}
}

// Flight is one in-progress fill. The goroutine that received Miss owns
// it and must call exactly one of Fulfill or Fail; everyone that
// received Wait blocks in Wait until it does.
type Flight struct {
	c    *Cache
	key  string
	done chan struct{}
	val  any
	err  error
}

// Lookup probes the cache. On Hit the value is returned; on Wait the
// caller should Wait on the flight; on Miss the caller owns the flight
// and must Fulfill or Fail it (deferring Fail(ctx.Err()) is safe: a
// fulfilled flight ignores later calls).
func (c *Cache) Lookup(key Key) (any, *Flight, Outcome) {
	k := key.internal()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, nil, Hit
	}
	if f, ok := c.flights[k]; ok {
		c.waits++
		return nil, f, Wait
	}
	f := &Flight{c: c, key: k, done: make(chan struct{})}
	c.flights[k] = f
	c.misses++
	return nil, f, Miss
}

// Wait blocks until the flight's owner settles it or the context ends.
// A settled flight returns the computed value or the owner's error; the
// owner's error may reflect *its* request's cancellation, so callers
// should fall back to computing for themselves rather than propagating
// it.
func (f *Flight) Wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Fulfill stores the value under the flight's key and releases waiters.
func (f *Flight) Fulfill(val any) { f.settle(val, nil) }

// Fail releases waiters with the error; nothing is cached.
func (f *Flight) Fail(err error) {
	if err == nil {
		err = context.Canceled
	}
	f.settle(nil, err)
}

func (f *Flight) settle(val any, err error) {
	f.c.mu.Lock()
	if f.c.flights[f.key] != f { // already settled
		f.c.mu.Unlock()
		return
	}
	delete(f.c.flights, f.key)
	f.val, f.err = val, err
	if err == nil {
		f.c.insertLocked(f.key, val)
	}
	f.c.mu.Unlock()
	close(f.done)
}

// insertLocked adds an entry, evicting from the LRU tail past capacity.
func (c *Cache) insertLocked(k string, val any) {
	if el, ok := c.items[k]; ok {
		el.Value.(*entry).val = val
		c.lru.MoveToFront(el)
		return
	}
	c.items[k] = c.lru.PushFront(&entry{key: k, val: val})
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.evictions++
	}
}

// Do is the convenience form of Lookup: on Miss it runs fill and
// settles the flight; on Wait it blocks for the filler's value. The
// returned Outcome tells which path was taken.
func (c *Cache) Do(ctx context.Context, key Key, fill func() (any, error)) (any, Outcome, error) {
	v, f, o := c.Lookup(key)
	switch o {
	case Hit:
		return v, Hit, nil
	case Wait:
		v, err := f.Wait(ctx)
		return v, Wait, err
	}
	v, err := fill()
	if err != nil {
		f.Fail(err)
		return nil, Miss, err
	}
	f.Fulfill(v)
	return v, Miss, nil
}

// NoteRebind counts a hit that was served by entity re-binding.
func (c *Cache) NoteRebind() {
	c.mu.Lock()
	c.rebinds++
	c.mu.Unlock()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Waits:     c.waits,
		Evictions: c.evictions,
		Rebinds:   c.rebinds,
		Entries:   c.lru.Len(),
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
