package corpus

import (
	"strings"
	"testing"
)

func TestCorpusWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, q := range All() {
		if q.ID == "" || q.Text == "" || q.Domain == "" {
			t.Errorf("incomplete question: %+v", q)
		}
		if seen[q.ID] {
			t.Errorf("duplicate ID %s", q.ID)
		}
		seen[q.ID] = true
		if !q.Supported && q.UnsupportedCategory == "" {
			t.Errorf("%s: unsupported without category", q.ID)
		}
		if !q.Supported && len(q.Gold) > 0 {
			t.Errorf("%s: unsupported question has gold IXs", q.ID)
		}
		for _, g := range q.Gold {
			if g.AnchorLemma == "" || len(g.Types) == 0 {
				t.Errorf("%s: malformed gold IX %+v", q.ID, g)
			}
			for _, ty := range g.Types {
				switch ty {
				case "lexical", "participant", "syntactic":
				default:
					t.Errorf("%s: unknown IX type %q", q.ID, ty)
				}
			}
		}
	}
}

func TestCorpusSize(t *testing.T) {
	if n := len(All()); n < 40 {
		t.Errorf("corpus has %d questions, want >= 40", n)
	}
	if n := len(Supported()); n < 30 {
		t.Errorf("corpus has %d supported questions, want >= 30", n)
	}
	if n := len(Unsupported()); n < 8 {
		t.Errorf("corpus has %d unsupported questions, want >= 8", n)
	}
}

func TestCorpusDomains(t *testing.T) {
	domains := Domains()
	want := map[string]bool{"travel": true, "shopping": true, "health": true, "food": true, "general": true}
	for _, d := range domains {
		delete(want, d)
	}
	if len(want) > 0 {
		t.Errorf("missing domains: %v", want)
	}
	for _, d := range domains {
		if len(ByDomain(d)) == 0 {
			t.Errorf("domain %s empty", d)
		}
	}
}

func TestRunningExamplePresent(t *testing.T) {
	q, ok := ByID(RunningExampleID)
	if !ok {
		t.Fatal("running example missing")
	}
	if !strings.Contains(q.Text, "Forest Hotel") {
		t.Errorf("running example text = %q", q.Text)
	}
	if !q.HasGoldAnchor("interesting") || !q.HasGoldAnchor("visit") {
		t.Errorf("running example gold = %+v", q.Gold)
	}
	if q.HasGoldAnchor("nope") {
		t.Error("HasGoldAnchor(nope) = true")
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("missing-99"); ok {
		t.Error("ByID(missing) ok = true")
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Text = "mutated"
	if All()[0].Text == "mutated" {
		t.Error("All() exposes internal storage")
	}
}

// The demo's paper-named examples are present: the Vegas thrill ride,
// digital camera, chocolate milk and the coffee pair.
func TestPaperExamplesPresent(t *testing.T) {
	wants := []string{
		"Which hotel in Vegas has the best thrill ride?",
		"What type of digital camera should I buy?",
		"Is chocolate milk good for kids?",
		"How should I store coffee?",
		"At what container should I store coffee?",
	}
	all := All()
	for _, w := range wants {
		found := false
		for _, q := range all {
			if q.Text == w {
				found = true
			}
		}
		if !found {
			t.Errorf("paper example missing from corpus: %q", w)
		}
	}
}
